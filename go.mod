module elastisched

go 1.22
