package elastisched_test

import (
	"bytes"
	"strings"
	"testing"

	es "elastisched"
)

func smallWorkload(t *testing.T, mut func(*es.WorkloadParams)) *es.Workload {
	t.Helper()
	p := es.DefaultWorkloadParams()
	p.N = 100
	p.TargetLoad = 0.85
	if mut != nil {
		mut(&p)
	}
	w, err := es.GenerateWorkload(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSimulateEveryAlgorithm(t *testing.T) {
	batch := smallWorkload(t, nil)
	hetero := smallWorkload(t, func(p *es.WorkloadParams) { p.PD = 0.4 })
	elastic := smallWorkload(t, func(p *es.WorkloadParams) { p.PE = 0.2; p.PR = 0.1 })
	heteroElastic := smallWorkload(t, func(p *es.WorkloadParams) { p.PD = 0.4; p.PE = 0.2; p.PR = 0.1 })

	for _, name := range es.AlgorithmNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, _, err := es.NewScheduler(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			w := batch
			if s.Heterogeneous() {
				w = hetero
				if strings.HasSuffix(name, "E") && strings.Contains(name, "-") {
					w = heteroElastic
				}
			} else if strings.HasSuffix(name, "-E") {
				w = elastic
			}
			res, err := es.Simulate(w, name, es.Options{Cs: 7, Paranoid: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary.JobsFinished != 100 {
				t.Fatalf("finished %d/100", res.Summary.JobsFinished)
			}
		})
	}
}

func TestSimulateUnknownAlgorithm(t *testing.T) {
	if _, err := es.Simulate(smallWorkload(t, nil), "NOPE", es.Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSimulateDefaultsGeometry(t *testing.T) {
	res, err := es.Simulate(smallWorkload(t, nil), "EASY", es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MachineSize != 320 {
		t.Errorf("default machine %d, want 320", res.Summary.MachineSize)
	}
}

func TestBuildWorkload(t *testing.T) {
	w, err := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 64, Duration: 100, Arrival: 0, RequestedStart: -1},
		{ID: 2, Size: 96, Duration: 50, Arrival: 10, RequestedStart: 200},
	}, []es.CommandSpec{
		{JobID: 1, Issue: 20, Type: "ET", Amount: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumBatch() != 1 || w.NumDedicated() != 1 || len(w.Commands) != 1 {
		t.Fatalf("built workload wrong: %d batch, %d ded, %d cmds",
			w.NumBatch(), w.NumDedicated(), len(w.Commands))
	}
	res, err := es.Simulate(w, "Hybrid-LOS-E", es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.JobsFinished != 2 || res.ECC.Applied != 1 {
		t.Errorf("result wrong: %+v", res.Summary)
	}
}

func TestBuildWorkloadBadCommandType(t *testing.T) {
	_, err := es.BuildWorkload(
		[]es.JobSpec{{ID: 1, Size: 64, Duration: 100, RequestedStart: -1}},
		[]es.CommandSpec{{JobID: 1, Issue: 5, Type: "ZZ", Amount: 1}},
	)
	if err == nil {
		t.Fatal("bad command type accepted")
	}
}

func TestCWFRoundTripThroughFacade(t *testing.T) {
	w := smallWorkload(t, func(p *es.WorkloadParams) { p.PD = 0.3; p.PE = 0.2; p.PR = 0.1 })
	var buf bytes.Buffer
	if err := es.WriteCWF(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := es.ParseCWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := es.Simulate(w, "Hybrid-LOS-E", es.Options{Cs: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := es.Simulate(w2, "Hybrid-LOS-E", es.Options{Cs: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Summary != r2.Summary {
		t.Fatal("round-tripped workload simulates differently")
	}
}

func TestParseSWFFacade(t *testing.T) {
	swf := `; header
1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1
2 10 -1 50 32 -1 -1 32 50 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	w, err := es.ParseSWF(strings.NewReader(swf))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2 {
		t.Fatalf("parsed %d jobs", len(w.Jobs))
	}
	res, err := es.Simulate(w, "LOS", es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.JobsFinished != 2 {
		t.Error("SWF replay incomplete")
	}
}

func TestNewSchedulerECCFlag(t *testing.T) {
	_, ecc, err := es.NewScheduler("Delayed-LOS-E", 7)
	if err != nil || !ecc {
		t.Error("Delayed-LOS-E should carry the ECC flag")
	}
	_, ecc, err = es.NewScheduler("Delayed-LOS", 7)
	if err != nil || ecc {
		t.Error("Delayed-LOS should not carry the ECC flag")
	}
}

func TestConstructorsDirect(t *testing.T) {
	if es.NewDelayedLOS(7).Name() != "Delayed-LOS" {
		t.Error("NewDelayedLOS wrong")
	}
	if es.NewHybridLOS(7).Name() != "Hybrid-LOS" {
		t.Error("NewHybridLOS wrong")
	}
}

func TestExperimentsExposed(t *testing.T) {
	if len(es.Experiments()) < 12 {
		t.Error("experiment suite incomplete")
	}
	if _, err := es.ExperimentByID("table4"); err != nil {
		t.Error(err)
	}
}

func TestSDSCLikeParams(t *testing.T) {
	p := es.SDSCLikeParams()
	if p.M != 128 || p.Unit != 1 {
		t.Errorf("SDSC params wrong: M=%d unit=%d", p.M, p.Unit)
	}
}

func TestCalibrateCsFacade(t *testing.T) {
	p := es.DefaultWorkloadParams()
	p.N = 60
	p.PS = 0.2
	p.TargetLoad = 0.9
	best, err := es.CalibrateCs(p, 4, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if best < 1 || best > 4 {
		t.Errorf("calibrated C_s = %d", best)
	}
}

func TestSimulateContiguousOptions(t *testing.T) {
	w := smallWorkload(t, nil)
	frag, err := es.Simulate(w, "EASY", es.Options{Contiguous: true})
	if err != nil {
		t.Fatal(err)
	}
	mig, err := es.Simulate(w, "EASY", es.Options{Contiguous: true, Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	scatter, err := es.Simulate(w, "EASY", es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if frag.Summary.MeanWait < scatter.Summary.MeanWait {
		t.Error("fragmented run waits less than scatter")
	}
	if mig.Summary.MeanWait > frag.Summary.MeanWait {
		t.Error("migration did not help")
	}
}

func TestSimulateWithTrace(t *testing.T) {
	w := smallWorkload(t, nil)
	rec := es.NewTrace(320, 32)
	res, err := es.Simulate(w, "Delayed-LOS", es.Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Spans()) != res.Summary.JobsFinished {
		t.Errorf("trace has %d spans, summary says %d jobs", len(rec.Spans()), res.Summary.JobsFinished)
	}
	if rec.ASCII(60) == "" || rec.SVG(400, 200) == "" {
		t.Error("trace rendering empty")
	}
}

// TestSimulateSharded exercises the scale-out facade: a 4-cluster run
// completes every job, defaults geometry per cluster, reports the global
// machine, and rejects a Trace (no deterministic merged schedule exists).
func TestSimulateSharded(t *testing.T) {
	w := smallWorkload(t, nil)
	res, err := es.SimulateSharded(w, "Delayed-LOS", es.Options{Cs: 7}, es.ShardedOptions{Clusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.JobsFinished != 100 {
		t.Fatalf("finished %d/100", res.Merged.JobsFinished)
	}
	if res.Merged.MachineSize != 4*320 {
		t.Errorf("global machine %d, want 1280", res.Merged.MachineSize)
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("got %d cluster results, want 4", len(res.Clusters))
	}
	if _, err := es.SimulateSharded(w, "Delayed-LOS", es.Options{Trace: es.NewTrace(320, 32)}, es.ShardedOptions{Clusters: 2}); err == nil {
		t.Error("sharded run with a trace accepted")
	}
	if _, err := es.SimulateSharded(w, "NOPE", es.Options{}, es.ShardedOptions{Clusters: 2}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
