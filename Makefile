# elastisched build and reproduction targets.

GO ?= go

.PHONY: all build vet test race cover bench bench-json bench-gate fuzz scale-smoke chaos malleable-smoke repro examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	gofmt -l . && $(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Regenerate every paper figure/table as benchmarks (also records the
# reproduction report to bench_output.txt).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Snapshot the packing-kernel, event-kernel, and end-to-end sweep
# benchmarks as BENCH_<date>.json (see DESIGN.md, "Packing-engine
# performance" and "End-to-end simulation throughput"). Commit the
# refreshed file whenever kernel or engine performance work lands.
bench-json:
	$(GO) run ./cmd/benchjson

# Gate the current tree against the newest committed BENCH_*.json: fails
# when any recorded benchmark regressed past the tolerance factor (loose on
# ns/op, which is machine-sensitive; tight on deterministic alloc counts).
bench-gate:
	$(GO) run ./cmd/benchgate

# Short fuzz pass over the trace parsers, the DP packing kernels, the
# persistent capacity profile, and the indexed machine differential.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzParseLine -fuzztime=10s ./internal/cwf
	$(GO) test -run=Fuzz -fuzz=FuzzParse -fuzztime=10s ./internal/cwf
	$(GO) test -run=Fuzz -fuzz=FuzzDPEquivalence -fuzztime=10s ./internal/core
	$(GO) test -run=Fuzz -fuzz=FuzzProfileOps -fuzztime=10s ./internal/sched
	$(GO) test -run=Fuzz -fuzz=FuzzFaultTrace -fuzztime=10s ./internal/fault
	$(GO) test -run=Fuzz -fuzz=FuzzMachineIndexed -fuzztime=10s ./internal/machine
	$(GO) test -run=Fuzz -fuzz=FuzzMalleableOps -fuzztime=10s ./internal/engine

# Scale-out smoke: the sharded-dispatch determinism bar (every routing
# policy x 1/2/4/8 workers), the routing/exact-merge suite, the epoch
# protocol's stealing-determinism and property suite, one iteration each of
# the skewed routing and stealing benchmarks, and the indexed machine at
# M=32k, under the race detector (mirrors CI's scale-smoke).
scale-smoke:
	$(GO) test -race -run 'TestSharded|TestRout|TestRoute|TestLeastWork|TestBestFit|TestMerged|TestSingleCluster' -count=1 ./internal/dispatch
	$(GO) test -race -run 'TestEpoch|TestSteal|TestAffinity|TestCommandsFollow' -count=1 ./internal/dispatch
	$(GO) test -run=NONE -bench='BenchmarkShardedSkewE2E/route=.*/clusters=8' -benchtime=1x ./internal/dispatch
	$(GO) test -run=NONE -bench='BenchmarkShardedStealE2E' -benchtime=1x ./internal/dispatch
	$(GO) test -race -run=NONE -bench='BenchmarkMachineScale/indexed/M=32k' -benchtime=1x ./internal/machine

# Chaos harness: every registry algorithm under seeded node-group fault
# traces and retry policies, each schedule certified by the audit oracle,
# plus mid-outage snapshot/restore round trips (see DESIGN.md section 10).
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 -v ./internal/experiment

# Malleability smoke: the -M decorated policies under Contiguous x Faults
# chaos with the resize-lawfulness audit rules, the work-conservation
# property under adversarial random resize streams, and a short
# interleaved-ops fuzz pass (mirrors CI's chaos-smoke malleable cell).
malleable-smoke:
	$(GO) test -race -run 'TestChaosMalleable' -count=1 -v ./internal/experiment
	$(GO) test -race -run 'TestPropertyResizeWorkConservation' -count=1 ./internal/engine
	$(GO) test -run=NONE -fuzz=FuzzMalleableOps -fuzztime=10s ./internal/engine

# Full evaluation suite with TSV outputs under results/.
repro:
	$(GO) run ./cmd/expsuite -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/elastic
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/fragmentation

clean:
	rm -rf results test_output.txt bench_output.txt
