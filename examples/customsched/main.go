// Custom scheduling policy: implementing the Scheduler interface and
// running it through the same engine, workloads and metrics as the paper's
// algorithms.
//
// The example policy is "WidestFit": each cycle it starts the *largest*
// waiting job that is placeable, repeating until nothing fits — a greedy
// bin-packing heuristic (cf. the largest-job-first discussion in the
// paper's Section II). It has no starvation protection, which the
// comparison against EASY and Delayed-LOS makes visible in the maximum
// waiting time.
//
// Run with:
//
//	go run ./examples/customsched
package main

import (
	"fmt"
	"log"

	es "elastisched"
	"elastisched/internal/job"
	"elastisched/internal/sched"
)

// WidestFit starts the largest placeable job each pass. The engine
// re-invokes Schedule until no cycle makes progress, so one start per pass
// is enough to drain everything that fits.
type WidestFit struct{}

// Name implements the Scheduler interface.
func (WidestFit) Name() string { return "WidestFit" }

// Heterogeneous reports that this policy handles batch jobs only.
func (WidestFit) Heterogeneous() bool { return false }

// Schedule starts the widest placeable waiting job, if any.
func (WidestFit) Schedule(ctx *sched.Context) {
	var best *job.Job
	for _, j := range ctx.Batch.Jobs() {
		if !ctx.Fits(j.Size) {
			continue
		}
		if best == nil || j.Size > best.Size {
			best = j
		}
	}
	if best != nil {
		ctx.Start(best)
	}
}

func main() {
	params := es.DefaultWorkloadParams()
	params.Seed = 9
	params.N = 400
	params.PS = 0.5
	params.TargetLoad = 0.9
	w, err := es.GenerateWorkload(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %12s %15s %15s %10s\n",
		"policy", "utilization", "mean wait (s)", "max wait (s)", "slowdown")

	// The custom policy through the same engine...
	res, err := es.SimulateWith(w, WidestFit{}, false, es.Options{Paranoid: true})
	if err != nil {
		log.Fatal(err)
	}
	row := func(name string, s es.Summary) {
		fmt.Printf("%-12s %12.4f %15.1f %15.0f %10.3f\n",
			name, s.Utilization, s.MeanWait, s.MaxWait, s.Slowdown)
	}
	row("WidestFit", res.Summary)

	// ...against two built-ins on the identical workload.
	for _, name := range []string{"EASY", "Delayed-LOS"} {
		r, err := es.Simulate(w, name, es.Options{Cs: 7})
		if err != nil {
			log.Fatal(err)
		}
		row(name, r.Summary)
	}

	fmt.Println("\nWidestFit packs greedily but lets narrow jobs starve behind wide")
	fmt.Println("ones (compare the max wait); EASY bounds the head job's wait with a")
	fmt.Println("reservation, and Delayed-LOS additionally packs with Basic_DP.")
}
