// Heterogeneous workloads: the paper's motivating scenario (Section I-B).
//
// A research cluster runs background simulation campaigns as flexible batch
// jobs, while a traffic-analysis group holds rigid, reserved-capacity slots
// for real-time sensor data processing at fixed hours of the day. One
// scheduler must serve both: batch jobs packed for utilization, dedicated
// jobs triggered exactly at their requested start times.
//
// The example builds that day programmatically, runs Hybrid-LOS against the
// EASY-D and LOS-D baselines, and reports how well each protects the rigid
// slots while keeping the batch queue moving.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"math/rand"

	es "elastisched"
)

const (
	machine = 320
	hour    = 3600
)

func main() {
	r := rand.New(rand.NewSource(7))
	var jobs []es.JobSpec
	id := 0

	// Background simulation campaigns: ~40 batch jobs across the day,
	// mixed sizes, one to three hours long (offered load around 0.8).
	for i := 0; i < 40; i++ {
		id++
		size := 32 * (1 + r.Intn(4)) // 32..128 processors
		jobs = append(jobs, es.JobSpec{
			ID:             id,
			Size:           size,
			Duration:       int64(hour + r.Intn(2*hour)),
			Arrival:        int64(r.Intn(20 * hour)),
			RequestedStart: -1,
		})
	}

	// Rigid real-time windows: 96 processors for one hour, every three
	// hours starting 06:00 — reserved a few hours in advance.
	for h := 6; h <= 21; h += 3 {
		id++
		start := int64(h * hour)
		jobs = append(jobs, es.JobSpec{
			ID:             id,
			Size:           96,
			Duration:       hour,
			Arrival:        start - 4*hour,
			RequestedStart: start,
		})
	}

	w, err := es.BuildWorkload(jobs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day plan: %d batch jobs + %d rigid slots on %d processors (offered load %.2f)\n\n",
		40, 6, machine, w.Load(machine))

	fmt.Printf("%-12s %12s %15s %18s %15s\n",
		"algorithm", "utilization", "batch wait (s)", "rigid delay (s)", "slots on time")
	for _, algo := range []string{"EASY-D", "LOS-D", "Hybrid-LOS"} {
		res, err := es.Simulate(w, algo, es.Options{M: machine, Unit: 32, Cs: 7})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-12s %12.4f %15.1f %18.1f %14.0f%%\n",
			algo, s.Utilization, s.MeanBatchWait, s.MeanDedWait, 100*s.DedicatedOnTime)
	}

	fmt.Println("\nHybrid-LOS makes explicit reservations (freeze end time/capacity)")
	fmt.Println("for each upcoming rigid slot and packs batch jobs around them with")
	fmt.Println("Reservation_DP (paper Algorithm 2). Its one deliberate exception —")
	fmt.Println("a batch head that exhausted its C_s skips starts immediately, even")
	fmt.Println("into a freeze (Algorithm 2, lines 35-37) — trades an occasional")
	fmt.Println("rigid-slot delay for the utilization gain visible above.")
}
