// Runtime elasticity: Elastic Control Commands (paper Section III-C).
//
// A user submits a long parameter sweep, then realizes mid-run that it needs
// three more hours (ET); another cancels most of a reservation early (RT).
// The example shows (1) commands applied to both queued and running jobs,
// (2) the CWF round-trip that carries them, and (3) the aggregate effect of
// elasticity on the -E scheduler family under the paper's P_E/P_R mix.
//
// Run with:
//
//	go run ./examples/elastic
package main

import (
	"bytes"
	"fmt"
	"log"

	es "elastisched"
)

const hour = 3600

func main() {
	// --- Part 1: a hand-built elastic scenario -------------------------
	jobs := []es.JobSpec{
		{ID: 1, Size: 160, Duration: 6 * hour, Arrival: 0, RequestedStart: -1},
		{ID: 2, Size: 160, Duration: 4 * hour, Arrival: 10, RequestedStart: -1},
		{ID: 3, Size: 320, Duration: 2 * hour, Arrival: 20, RequestedStart: -1},
	}
	cmds := []es.CommandSpec{
		// Job 1, already running, asks for three more hours.
		{JobID: 1, Issue: 2 * hour, Type: "ET", Amount: 3 * hour},
		// Job 2, running next to it, releases three of its four hours.
		{JobID: 2, Issue: 1 * hour, Type: "RT", Amount: 3 * hour},
		// Job 3, still queued behind both, trims its own estimate.
		{JobID: 3, Issue: 30 * 60, Type: "RT", Amount: 1 * hour},
	}
	w, err := es.BuildWorkload(jobs, cmds)
	if err != nil {
		log.Fatal(err)
	}

	// CWF round-trip: the commands travel in the trace itself (fields
	// 19-21 of the Cloud Workload Format).
	var buf bytes.Buffer
	if err := es.WriteCWF(&buf, w); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CWF trace with embedded ECCs:")
	fmt.Println(buf.String())
	w2, err := es.ParseCWF(&buf)
	if err != nil {
		log.Fatal(err)
	}

	res, err := es.Simulate(w2, "Delayed-LOS-E", es.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Delayed-LOS-E: %v\n", res.Summary)
	fmt.Printf("ECCs: %d applied (%d clamped), +%ds extended, -%ds reduced\n\n",
		res.ECC.Applied, res.ECC.Clamped, res.ECC.ExtendedSeconds, res.ECC.ReducedSeconds)

	// --- Part 2: elasticity at scale (paper Figure 11 regime) ----------
	params := es.DefaultWorkloadParams()
	params.Seed = 11
	params.N = 500
	params.PS = 0.5
	params.PE = 0.2 // paper's extension probability
	params.PR = 0.1 // paper's reduction probability
	params.TargetLoad = 0.9
	big, err := es.GenerateWorkload(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic elastic workload: %d jobs, %d ECCs\n\n", len(big.Jobs), len(big.Commands))
	fmt.Printf("%-16s %12s %16s %10s\n", "algorithm", "utilization", "mean wait (s)", "slowdown")
	for _, algo := range []string{"EASY-E", "LOS-E", "Delayed-LOS-E"} {
		res, err := es.Simulate(big, algo, es.Options{Cs: 7})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-16s %12.4f %16.1f %10.3f\n", algo, s.Utilization, s.MeanWait, s.Slowdown)
	}
	fmt.Println("\nAll three process the same command stream; the LOS-family packing")
	fmt.Println("reacts to the changed residual times at the next scheduling event.")

	// --- Part 3: true malleability — scheduler-initiated shrink/expand --
	// ET/RT/EP/RP above are CLIENT-initiated. With Options.Malleable the
	// SCHEDULER becomes an initiator too: jobs submitted with processor
	// bounds may be shrunk at runtime to admit a blocked queue head and
	// grown back when capacity idles, with the remaining work held
	// invariant (a shrink stretches the remaining runtime, a grow
	// compresses it, plus a per-resize reconfiguration charge).
	//
	// Two bounded 160-proc jobs fill the machine; a rigid 320-proc job
	// arrives an hour in. Rigidly it waits ~5 hours for both to drain.
	// Malleably, EASY-M shrinks each runner to 32 procs, admits the wide
	// job immediately, and re-expands the survivors when it leaves.
	jobs3 := []es.JobSpec{
		{ID: 1, Size: 160, Duration: 6 * hour, Arrival: 0, RequestedStart: -1, MinProcs: 32, MaxProcs: 320},
		{ID: 2, Size: 160, Duration: 5 * hour, Arrival: 0, RequestedStart: -1, MinProcs: 32, MaxProcs: 160},
		{ID: 3, Size: 256, Duration: 1 * hour, Arrival: 1 * hour, RequestedStart: -1},
	}
	w3, err := es.BuildWorkload(jobs3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscheduler-initiated malleability (same workload, same -M policy):")
	fmt.Printf("%-18s %14s %10s %16s %12s\n", "mode", "mean wait (s)", "resizes", "ceded proc-s", "reconfig s")
	for _, mode := range []struct {
		name string
		opt  es.Options
	}{
		// With Malleable off the bounds are inert annotations and the -M
		// decorator proposes nothing: byte-identical to rigid EASY.
		{"rigid (off)", es.Options{}},
		{"malleable", es.Options{Malleable: true, ResizeOverhead: 120}},
	} {
		res, err := es.Simulate(w3, "EASY-M", mode.opt)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-18s %14.1f %10d %16.0f %12.0f\n",
			mode.name, s.MeanWait, s.SchedulerResizes, s.ShrunkProcSeconds, s.ReconfigOverheadSeconds)
	}
	fmt.Println("\nThe shrink-to-admit rule trades the runners' width for the head's")
	fmt.Println("wait; expand-when-idle returns the width once the head departs.")
}
