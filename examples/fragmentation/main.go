// Fragmentation and migration: the BlueGene-style partitioning discussion
// of the paper's Section II (Krevat et al.).
//
// The paper's schedulers treat the machine as a capacity counter. Real
// torus machines require contiguous partitions, so freed capacity can be
// scattered into runs too short for the next job — fragmentation — and
// migration (compacting running jobs) recovers it. This example runs the
// same workload three ways and renders the contiguous schedule's Gantt
// chart so the holes are visible.
//
// Run with:
//
//	go run ./examples/fragmentation
package main

import (
	"fmt"
	"log"

	es "elastisched"
)

func main() {
	params := es.DefaultWorkloadParams()
	params.Seed = 5
	params.N = 300
	params.PS = 0.5
	params.TargetLoad = 0.9
	w, err := es.GenerateWorkload(params)
	if err != nil {
		log.Fatal(err)
	}

	type mode struct {
		name                string
		contiguous, migrate bool
	}
	modes := []mode{
		{"scatter (paper's model)", false, false},
		{"contiguous partitions", true, false},
		{"contiguous + migration", true, true},
	}
	fmt.Printf("EASY on the same 300-job workload, offered load %.2f\n\n", w.Load(320))
	fmt.Printf("%-26s %12s %15s %16s %12s\n",
		"allocation mode", "utilization", "mean wait (s)", "peak waste (cpu)", "migrations")
	for _, m := range modes {
		res, err := es.Simulate(w, "EASY", es.Options{
			Contiguous: m.contiguous, Migrate: m.migrate,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %12.4f %15.1f %16d %12d\n",
			m.name, res.Summary.Utilization, res.Summary.MeanWait,
			res.PeakFragmentedWaste, res.Migrations)
	}

	fmt.Println("\nFragmentation inflates waiting time although total free capacity")
	fmt.Println("is unchanged; compaction recovers the capacity-only numbers. The")
	fmt.Println("paper's future-work section (VI) notes that size elasticity on such")
	fmt.Println("machines must maintain exactly this space continuity.")
}
