// Trace replay: loading a Standard Workload Format archive log and varying
// its load by arrival-time scaling — the technique of the paper's Figure 1
// (and of the LOS paper it builds on).
//
// Archive logs are not redistributable here, so the example first writes an
// SDSC-like log with the Lublin generator, then treats that file exactly as
// a downloaded archive trace: parse SWF, scale arrivals for each target
// load, replay under EASY and LOS.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	es "elastisched"
	"elastisched/internal/swf"
	"elastisched/internal/workload"
)

func main() {
	// Fabricate the "archive log" (stand-in for SDSC SP2).
	params := workload.SDSCLike()
	params.Seed = 3
	params.N = 400
	params.TargetLoad = 0.95 // the log's native load before scaling
	gen, err := workload.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	var logBuf bytes.Buffer
	if err := es.WriteCWF(&logBuf, gen); err != nil {
		log.Fatal(err)
	}
	raw := logBuf.Bytes()

	fmt.Println("replaying SDSC-like log on 128 processors (EASY vs LOS)")
	fmt.Printf("%-8s %14s %14s %16s %16s\n", "load", "EASY util", "LOS util", "EASY wait (s)", "LOS wait (s)")

	for _, target := range []float64{0.5, 0.65, 0.8, 0.95} {
		// Parse the log afresh and stretch inter-arrival gaps: scaling
		// submit times by nativeLoad/targetLoad lowers the offered load to
		// the target without touching job sizes or runtimes.
		parsed, err := swf.Parse(bytes.NewReader(raw))
		if err != nil {
			log.Fatal(err)
		}
		swf.ScaleArrivals(parsed, 0.95/target)
		w, err := es.ParseSWF(bytes.NewReader(render(parsed)))
		if err != nil {
			log.Fatal(err)
		}

		var row [4]float64
		for i, algo := range []string{"EASY", "LOS"} {
			res, err := es.Simulate(w, algo, es.Options{M: 128, Unit: 1})
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res.Summary.Utilization
			row[2+i] = res.Summary.MeanWait
		}
		fmt.Printf("%-8.2f %14.4f %14.4f %16.1f %16.1f\n", target, row[0], row[1], row[2], row[3])
	}
	fmt.Println("\nOn archive-like traces LOS packs at least as well as EASY — the")
	fmt.Println("regime the LOS paper reported. The paper's claim is that this")
	fmt.Println("ordering breaks when job sizes vary (compare expsuite -exp fig7).")
}

// render writes a parsed SWF log back to bytes.
func render(l *swf.Log) []byte {
	var buf bytes.Buffer
	if err := swf.Write(&buf, l); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
