// Quickstart: generate a synthetic cloud workload with the paper's Lublin
// model, run the paper's Delayed-LOS scheduler against EASY backfilling and
// LOS, and print the three headline metrics (utilization, mean waiting
// time, slowdown).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	es "elastisched"
)

func main() {
	// The paper's machine: a BlueGene/P with 320 processors allocated in
	// node groups of 32. P_S = 0.2 means large jobs dominate — the regime
	// where Delayed-LOS's packing freedom matters most (paper Figure 7).
	params := es.DefaultWorkloadParams()
	params.Seed = 42
	params.N = 500
	params.PS = 0.2
	params.TargetLoad = 0.9

	w, err := es.GenerateWorkload(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d batch jobs, offered load %.2f on %d processors\n\n",
		len(w.Jobs), w.Load(params.M), params.M)

	fmt.Printf("%-14s %12s %16s %10s\n", "algorithm", "utilization", "mean wait (s)", "slowdown")
	for _, algo := range []string{"EASY", "LOS", "Delayed-LOS"} {
		res, err := es.Simulate(w, algo, es.Options{Cs: 8})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-14s %12.4f %16.1f %10.3f\n", algo, s.Utilization, s.MeanWait, s.Slowdown)
	}

	fmt.Println("\nDelayed-LOS may skip the head job up to C_s times when a better")
	fmt.Println("packing exists (paper Algorithm 1), which is why its waiting time")
	fmt.Println("drops below both baselines on large-job-heavy workloads.")
}
