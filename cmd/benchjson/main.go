// Command benchjson runs the repository's performance benchmarks and
// writes a machine-readable JSON snapshot (BENCH_<date>.json by default)
// so kernel regressions show up in review as a diff against the
// committed numbers. See DESIGN.md, "Packing-engine performance", for
// the regeneration workflow.
//
// Usage:
//
//	go run ./cmd/benchjson                         # BENCH_<today>.json
//	go run ./cmd/benchjson -out bench.json -count 3
//	go run ./cmd/benchjson -baseline old_bench.txt # embed prior raw output
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"elastisched/internal/benchparse"
)

type doc struct {
	Generated string `json:"generated"`
	benchparse.Env
	Benchmarks []benchparse.Bench `json:"benchmarks"`
	// Baseline carries pre-change numbers parsed from -baseline, so one
	// file documents the before/after pair.
	Baseline []benchparse.Bench `json:"baseline,omitempty"`
}

func main() {
	var (
		out      = flag.String("out", "", "output file (empty = BENCH_<today>.json)")
		benchRE  = flag.String("bench", ".", "benchmark name regexp passed to go test")
		pkgs     = flag.String("pkgs", "./internal/core,./internal/sched,./internal/simkit,./internal/engine,./internal/experiment,./internal/machine,./internal/dispatch", "comma-separated packages to benchmark")
		count    = flag.Int("count", 1, "-count passed to go test")
		benchT   = flag.String("benchtime", "", "-benchtime passed to go test (empty = default)")
		baseline = flag.String("baseline", "", "raw `go test -bench` output to embed as the baseline section")
	)
	flag.Parse()

	args := []string{"test", "-run=NONE", "-bench", *benchRE, "-benchmem", "-count", fmt.Sprint(*count)}
	if *benchT != "" {
		args = append(args, "-benchtime", *benchT)
	}
	args = append(args, strings.Split(*pkgs, ",")...)

	var buf bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr) // live progress and capture
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("go %s: %w", strings.Join(args, " "), err))
	}

	benches, env, err := benchparse.Parse(&buf)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed — check -bench %q", *benchRE))
	}
	env.Go = runtime.Version()

	d := doc{
		Generated:  time.Now().Format("2006-01-02"),
		Env:        env,
		Benchmarks: benches,
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		d.Baseline, _, err = benchparse.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + d.Generated + ".json"
	}
	js, err := json.MarshalIndent(&d, "", "  ")
	if err != nil {
		fatal(err)
	}
	js = append(js, '\n')
	if err := os.WriteFile(path, js, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(benches))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
