// Command cwfgen generates synthetic Cloud Workload Format traces with the
// paper's Lublin-model generator (Section IV-D).
//
// Usage:
//
//	cwfgen -n 500 -ps 0.5 -pd 0.5 -pe 0.2 -pr 0.1 -load 0.9 -seed 1 -o trace.cwf
//
// Omitting -o writes to stdout. -load 0 disables load targeting and uses
// the raw beta_arr arrival process.
package main

import (
	"flag"
	"fmt"
	"os"

	es "elastisched"
	"elastisched/internal/workload"
)

func main() {
	p := workload.DefaultParams()
	var out string
	var sdsc bool

	flag.Int64Var(&p.Seed, "seed", p.Seed, "generator seed")
	flag.IntVar(&p.N, "n", p.N, "number of job submissions")
	flag.IntVar(&p.M, "m", p.M, "machine size in processors")
	flag.IntVar(&p.Unit, "unit", p.Unit, "allocation quantum (node group size)")
	flag.Float64Var(&p.PS, "ps", p.PS, "probability a job is small (P_S)")
	flag.Float64Var(&p.PD, "pd", p.PD, "probability a job is dedicated (P_D)")
	flag.Float64Var(&p.PE, "pe", p.PE, "probability of an ET command (P_E)")
	flag.Float64Var(&p.PR, "pr", p.PR, "probability of an RT command (P_R)")
	flag.Float64Var(&p.PM, "pm", p.PM, "probability a batch job is malleable (P_M, emits processor bounds)")
	flag.Float64Var(&p.TargetLoad, "load", 0.9, "target offered load (0 = raw beta_arr)")
	flag.Float64Var(&p.BetaArr, "beta-arr", p.BetaArr, "arrival Gamma scale (paper varies in [0.4101,0.6101])")
	flag.Float64Var(&p.DedLeadMean, "ded-lead", p.DedLeadMean, "mean dedicated start lead time (s)")
	flag.BoolVar(&p.SizeECC, "size-ecc", false, "emit EP/RP (size) commands instead of ET/RT")
	flag.BoolVar(&sdsc, "sdsc", false, "use the SDSC-like configuration (128 procs, power-of-two sizes)")
	flag.Float64Var(&p.EstFactor, "est-factor", 0, "over-estimate runtimes by this fixed factor (0/1 = exact)")
	flag.Float64Var(&p.EstUniformMax, "est-uniform", 0, "per-job estimate factor uniform in [1, this] (0 = off)")
	arrival := flag.String("arrival", "interarrival", "arrival model: interarrival | hourly | daily")
	flag.StringVar(&out, "o", "", "output file (default stdout)")
	flag.Parse()

	switch *arrival {
	case "interarrival":
		p.Mode = workload.InterArrival
	case "hourly":
		p.Mode = workload.HourlyCount
	case "daily":
		p.Mode = workload.DailyCycle
	default:
		fmt.Fprintf(os.Stderr, "cwfgen: unknown -arrival %q\n", *arrival)
		os.Exit(1)
	}

	if sdsc {
		s := workload.SDSCLike()
		s.Seed, s.N, s.PD, s.PE, s.PR, s.PM, s.TargetLoad = p.Seed, p.N, p.PD, p.PE, p.PR, p.PM, p.TargetLoad
		s.EstFactor, s.EstUniformMax, s.Mode = p.EstFactor, p.EstUniformMax, p.Mode
		p = s
	}

	w, err := es.GenerateWorkload(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cwfgen:", err)
		os.Exit(1)
	}
	f := os.Stdout
	if out != "" {
		f, err = os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cwfgen:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if err := es.WriteCWF(f, w); err != nil {
		fmt.Fprintln(os.Stderr, "cwfgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cwfgen: %d jobs (%d dedicated), %d ECCs, offered load %.3f on %d procs\n",
		len(w.Jobs), w.NumDedicated(), len(w.Commands), w.Load(p.M), p.M)
}
