package main

import (
	"bytes"
	"strings"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
)

// The fixture pair differs only in the EP amount of job 1 (bounds 32..128,
// size 64): 32 stays inside the window, 96 would grow the job to 160.
func TestValidatesBoundedFixture(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-m", "320", "testdata/bounded_ok.cwf"}, nil, &out, &errOut); code != 0 {
		t.Fatalf("valid fixture rejected: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("valid fixture report missing OK:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "EP=1") {
		t.Errorf("valid fixture report missing the EP command:\n%s", out.String())
	}
}

func TestRejectsBoundsViolationFixture(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-m", "320", "testdata/bounds_violation.cwf"}, nil, &out, &errOut); code != 2 {
		t.Fatalf("bounds-violating fixture accepted: exit %d", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, "INVALID") || !strings.Contains(msg, "beyond its max procs") {
		t.Errorf("rejection does not name the bounds violation: %q", msg)
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"testdata/does_not_exist.cwf"}, nil, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestFiveNum(t *testing.T) {
	out := fiveNum([]float64{1, 2, 3, 4, 100})
	for _, want := range []string{"min=1", "med=3", "max=100"} {
		if !strings.Contains(out, want) {
			t.Errorf("fiveNum missing %q: %s", want, out)
		}
	}
}

func TestCommandMix(t *testing.T) {
	cmds := []cwf.Command{
		{Type: cwf.ExtendTime}, {Type: cwf.ExtendTime}, {Type: cwf.ReduceTime}, {Type: cwf.ReduceProc},
	}
	out := commandMix(cmds)
	if out != "ET=2 RT=1 EP=0 RP=1" {
		t.Errorf("commandMix = %q", out)
	}
}

func TestLastEnd(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Dur: 100, ReqStart: -1},
		{ID: 2, Arrival: 50, Dur: 10, ReqStart: 500, Class: job.Dedicated},
	}
	if got := lastEnd(jobs); got != 510 {
		t.Errorf("lastEnd = %d, want 510", got)
	}
}
