package main

import (
	"strings"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
)

func TestFiveNum(t *testing.T) {
	out := fiveNum([]float64{1, 2, 3, 4, 100})
	for _, want := range []string{"min=1", "med=3", "max=100"} {
		if !strings.Contains(out, want) {
			t.Errorf("fiveNum missing %q: %s", want, out)
		}
	}
}

func TestCommandMix(t *testing.T) {
	cmds := []cwf.Command{
		{Type: cwf.ExtendTime}, {Type: cwf.ExtendTime}, {Type: cwf.ReduceTime}, {Type: cwf.ReduceProc},
	}
	out := commandMix(cmds)
	if out != "ET=2 RT=1 EP=0 RP=1" {
		t.Errorf("commandMix = %q", out)
	}
}

func TestLastEnd(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Dur: 100, ReqStart: -1},
		{ID: 2, Arrival: 50, Dur: 10, ReqStart: 500, Class: job.Dedicated},
	}
	if got := lastEnd(jobs); got != 510 {
		t.Errorf("lastEnd = %d, want 510", got)
	}
}
