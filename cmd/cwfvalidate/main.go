// Command cwfvalidate lints a CWF or SWF trace and reports its statistics:
// job counts by class, size/runtime distributions, ECC composition, offered
// load, and estimate accuracy — the checks one runs before feeding a trace
// to the simulator.
//
// Usage:
//
//	cwfvalidate -m 320 trace.cwf
//	cwfgen -ps 0.2 -pd 0.5 | cwfvalidate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	es "elastisched"
	"elastisched/internal/cwf"
	"elastisched/internal/job"
	"elastisched/internal/plot"
)

func main() {
	m := flag.Int("m", 320, "machine size in processors for validation and load")
	hist := flag.Bool("hist", false, "print size/runtime/inter-arrival histograms")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	w, err := es.ParseCWF(in)
	if err != nil {
		fatal(err)
	}
	if err := w.Validate(*m); err != nil {
		fmt.Fprintf(os.Stderr, "cwfvalidate: INVALID: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("jobs:        %d (%d batch, %d dedicated)\n", len(w.Jobs), w.NumBatch(), w.NumDedicated())
	fmt.Printf("commands:    %d (%s)\n", len(w.Commands), commandMix(w.Commands))
	fmt.Printf("offered load on %d procs: %.3f\n", *m, w.Load(*m))

	if len(w.Jobs) > 0 {
		sizes := make([]float64, 0, len(w.Jobs))
		runs := make([]float64, 0, len(w.Jobs))
		overEst := 0
		for _, j := range w.Jobs {
			sizes = append(sizes, float64(j.Size))
			runs = append(runs, float64(j.EffectiveRuntime()))
			if j.Actual > 0 && j.Dur > j.Actual {
				overEst++
			}
		}
		fmt.Printf("job size:    %s procs\n", fiveNum(sizes))
		fmt.Printf("job runtime: %s s\n", fiveNum(runs))
		fmt.Printf("span:        %d .. %d s\n", w.Jobs[0].Arrival, lastEnd(w.Jobs))
		if overEst > 0 {
			fmt.Printf("estimates:   %d/%d jobs over-estimated\n", overEst, len(w.Jobs))
		} else {
			fmt.Printf("estimates:   exact (estimate = runtime)\n")
		}
	}
	if *hist && len(w.Jobs) > 0 {
		sizes := make([]float64, 0, len(w.Jobs))
		runs := make([]float64, 0, len(w.Jobs))
		gaps := make([]float64, 0, len(w.Jobs))
		for i, j := range w.Jobs {
			sizes = append(sizes, float64(j.Size))
			runs = append(runs, float64(j.EffectiveRuntime()))
			if i > 0 {
				gaps = append(gaps, float64(j.Arrival-w.Jobs[i-1].Arrival))
			}
		}
		fmt.Println()
		fmt.Println(plot.Histogram("job size (processors)", sizes, 10, false))
		fmt.Println(plot.Histogram("job runtime (s, log bins)", runs, 12, true))
		fmt.Println(plot.Histogram("inter-arrival gap (s, log bins)", gaps, 12, true))
	}
	fmt.Println("OK")
}

func commandMix(cmds []cwf.Command) string {
	count := map[cwf.ReqType]int{}
	for _, c := range cmds {
		count[c.Type]++
	}
	return fmt.Sprintf("ET=%d RT=%d EP=%d RP=%d",
		count[cwf.ExtendTime], count[cwf.ReduceTime], count[cwf.ExtendProc], count[cwf.ReduceProc])
}

func lastEnd(jobs []*job.Job) int64 {
	var last int64
	for _, j := range jobs {
		end := j.Arrival + j.Dur
		if j.Class == job.Dedicated && j.ReqStart > j.Arrival {
			end = j.ReqStart + j.Dur
		}
		if end > last {
			last = end
		}
	}
	return last
}

// fiveNum renders min/p25/median/p75/max.
func fiveNum(xs []float64) string {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	q := func(p float64) float64 { return ys[int(p*float64(len(ys)-1))] }
	return fmt.Sprintf("min=%.0f p25=%.0f med=%.0f p75=%.0f max=%.0f",
		ys[0], q(0.25), q(0.5), q(0.75), ys[len(ys)-1])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cwfvalidate:", err)
	os.Exit(1)
}
