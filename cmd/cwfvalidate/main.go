// Command cwfvalidate lints a CWF or SWF trace and reports its statistics:
// job counts by class, size/runtime distributions, ECC composition, offered
// load, and estimate accuracy — the checks one runs before feeding a trace
// to the simulator.
//
// Exit status: 0 for a valid trace, 2 for an invalid one (including EP/RP
// commands that would push a bounded job outside its [MinProcs, MaxProcs]
// window), 1 for I/O or usage errors.
//
// Usage:
//
//	cwfvalidate -m 320 trace.cwf
//	cwfgen -ps 0.2 -pd 0.5 | cwfvalidate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	es "elastisched"
	"elastisched/internal/cwf"
	"elastisched/internal/job"
	"elastisched/internal/plot"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the fixture tests can
// drive the whole parse-validate-report path and assert on exit codes.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cwfvalidate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	m := fs.Int("m", 320, "machine size in processors for validation and load")
	hist := fs.Bool("hist", false, "print size/runtime/inter-arrival histograms")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "cwfvalidate:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	w, err := es.ParseCWF(in)
	if err != nil {
		fmt.Fprintln(stderr, "cwfvalidate:", err)
		return 1
	}
	if err := w.Validate(*m); err != nil {
		fmt.Fprintf(stderr, "cwfvalidate: INVALID: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "jobs:        %d (%d batch, %d dedicated)\n", len(w.Jobs), w.NumBatch(), w.NumDedicated())
	fmt.Fprintf(stdout, "commands:    %d (%s)\n", len(w.Commands), commandMix(w.Commands))
	fmt.Fprintf(stdout, "offered load on %d procs: %.3f\n", *m, w.Load(*m))

	if len(w.Jobs) > 0 {
		sizes := make([]float64, 0, len(w.Jobs))
		runs := make([]float64, 0, len(w.Jobs))
		overEst := 0
		for _, j := range w.Jobs {
			sizes = append(sizes, float64(j.Size))
			runs = append(runs, float64(j.EffectiveRuntime()))
			if j.Actual > 0 && j.Dur > j.Actual {
				overEst++
			}
		}
		fmt.Fprintf(stdout, "job size:    %s procs\n", fiveNum(sizes))
		fmt.Fprintf(stdout, "job runtime: %s s\n", fiveNum(runs))
		fmt.Fprintf(stdout, "span:        %d .. %d s\n", w.Jobs[0].Arrival, lastEnd(w.Jobs))
		if overEst > 0 {
			fmt.Fprintf(stdout, "estimates:   %d/%d jobs over-estimated\n", overEst, len(w.Jobs))
		} else {
			fmt.Fprintf(stdout, "estimates:   exact (estimate = runtime)\n")
		}
	}
	if *hist && len(w.Jobs) > 0 {
		sizes := make([]float64, 0, len(w.Jobs))
		runs := make([]float64, 0, len(w.Jobs))
		gaps := make([]float64, 0, len(w.Jobs))
		for i, j := range w.Jobs {
			sizes = append(sizes, float64(j.Size))
			runs = append(runs, float64(j.EffectiveRuntime()))
			if i > 0 {
				gaps = append(gaps, float64(j.Arrival-w.Jobs[i-1].Arrival))
			}
		}
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, plot.Histogram("job size (processors)", sizes, 10, false))
		fmt.Fprintln(stdout, plot.Histogram("job runtime (s, log bins)", runs, 12, true))
		fmt.Fprintln(stdout, plot.Histogram("inter-arrival gap (s, log bins)", gaps, 12, true))
	}
	fmt.Fprintln(stdout, "OK")
	return 0
}

func commandMix(cmds []cwf.Command) string {
	count := map[cwf.ReqType]int{}
	for _, c := range cmds {
		count[c.Type]++
	}
	return fmt.Sprintf("ET=%d RT=%d EP=%d RP=%d",
		count[cwf.ExtendTime], count[cwf.ReduceTime], count[cwf.ExtendProc], count[cwf.ReduceProc])
}

func lastEnd(jobs []*job.Job) int64 {
	var last int64
	for _, j := range jobs {
		end := j.Arrival + j.Dur
		if j.Class == job.Dedicated && j.ReqStart > j.Arrival {
			end = j.ReqStart + j.Dur
		}
		if end > last {
			last = end
		}
	}
	return last
}

// fiveNum renders min/p25/median/p75/max.
func fiveNum(xs []float64) string {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	q := func(p float64) float64 { return ys[int(p*float64(len(ys)-1))] }
	return fmt.Sprintf("min=%.0f p25=%.0f med=%.0f p75=%.0f max=%.0f",
		ys[0], q(0.25), q(0.5), q(0.75), ys[len(ys)-1])
}
