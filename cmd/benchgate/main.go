// Command benchgate re-runs the benchmarks recorded in a committed
// BENCH_<date>.json snapshot and fails when any of them regressed beyond a
// tolerance factor. It is the cheap, automatable half of the regeneration
// workflow: benchjson records numbers for review, benchgate checks fresh
// runs against them.
//
// Benchmark timings are machine- and load-sensitive, so the default
// tolerance is deliberately loose (1.75x) — the gate exists to catch
// order-of-magnitude regressions (an accidentally disabled cache, a
// restored quadratic path), not single-digit drift. Alloc counts are
// deterministic and get a tight gate: any increase beyond 10% fails.
//
// Usage:
//
//	go run ./cmd/benchgate                      # all BENCH_*.json, newest wins per benchmark
//	go run ./cmd/benchgate -file BENCH_x.json -tolerance 1.5
//	go run ./cmd/benchgate -bench 'Simulate500' -pkgs ./internal/engine
//
// With no -file, every committed BENCH_*.json is merged into one baseline:
// files are visited in name (date) order and the newest recording of each
// benchmark wins, so specialised snapshots (e.g. a scaling-curve file) add
// their benchmarks to the gate without un-gating the ones recorded earlier.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"elastisched/internal/benchparse"
)

type snapshot struct {
	Generated  string             `json:"generated"`
	Benchmarks []benchparse.Bench `json:"benchmarks"`
}

func main() {
	var (
		file      = flag.String("file", "", "snapshot to gate against (empty = merge all BENCH_*.json, newest wins per benchmark)")
		benchRE   = flag.String("bench", ".", "benchmark name regexp passed to go test")
		pkgs      = flag.String("pkgs", "./internal/core,./internal/sched,./internal/simkit,./internal/engine,./internal/machine,./internal/dispatch", "comma-separated packages to benchmark")
		tolerance = flag.Float64("tolerance", 1.75, "max allowed ns/op ratio current/recorded")
		count     = flag.Int("count", 1, "-count passed to go test (best run is compared)")
	)
	flag.Parse()

	paths := []string{*file}
	if *file == "" {
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(matches) == 0 {
			fatal(fmt.Errorf("no BENCH_*.json snapshot found (run cmd/benchjson first)"))
		}
		sort.Strings(matches)
		paths = matches
	}
	recorded := map[string]benchparse.Bench{}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var snap snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, b := range snap.Benchmarks {
			recorded[b.Pkg+"."+b.Name] = b
		}
	}
	baseline := strings.Join(paths, "+")

	args := []string{"test", "-run=NONE", "-bench", *benchRE, "-benchmem", "-count", fmt.Sprint(*count)}
	args = append(args, strings.Split(*pkgs, ",")...)
	var buf bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("go %s: %w", strings.Join(args, " "), err))
	}
	current, _, err := benchparse.Parse(&buf)
	if err != nil {
		fatal(err)
	}

	// With -count > 1 keep the fastest run per benchmark: the minimum is the
	// best estimate of the code's cost under machine noise.
	best := map[string]benchparse.Bench{}
	for _, b := range current {
		key := b.Pkg + "." + b.Name
		if prev, ok := best[key]; !ok || b.NsPerOp < prev.NsPerOp {
			best[key] = b
		}
	}

	failed, compared := 0, 0
	for key, cur := range best {
		rec, ok := recorded[key]
		if !ok || rec.NsPerOp <= 0 {
			continue
		}
		compared++
		if ratio := cur.NsPerOp / rec.NsPerOp; ratio > *tolerance {
			failed++
			fmt.Printf("benchgate: FAIL %s: %.0f ns/op vs recorded %.0f (%.2fx > %.2fx)\n",
				key, cur.NsPerOp, rec.NsPerOp, ratio, *tolerance)
		}
		if rec.AllocsPerOp > 0 {
			if ratio := float64(cur.AllocsPerOp) / float64(rec.AllocsPerOp); ratio > 1.10 {
				failed++
				fmt.Printf("benchgate: FAIL %s: %d allocs/op vs recorded %d (+%.0f%%)\n",
					key, cur.AllocsPerOp, rec.AllocsPerOp, 100*(ratio-1))
			}
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmark in the fresh run matches %s — check -bench/-pkgs", baseline))
	}
	if failed > 0 {
		fmt.Printf("benchgate: %d of %d gated benchmarks regressed beyond tolerance (vs %s)\n", failed, compared, baseline)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d benchmarks within %.2fx of %s\n", compared, *tolerance, baseline)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
