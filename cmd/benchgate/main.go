// Command benchgate re-runs the benchmarks recorded in a committed
// BENCH_<date>.json snapshot and fails when any of them regressed beyond a
// tolerance factor. It is the cheap, automatable half of the regeneration
// workflow: benchjson records numbers for review, benchgate checks fresh
// runs against them.
//
// Benchmark timings are machine- and load-sensitive, so the default
// tolerance is deliberately loose (1.75x) — the gate exists to catch
// order-of-magnitude regressions (an accidentally disabled cache, a
// restored quadratic path), not single-digit drift. Alloc counts are
// deterministic and get a tight gate: any increase beyond 10% fails.
//
// Usage:
//
//	go run ./cmd/benchgate                      # all BENCH_*.json, newest wins per benchmark
//	go run ./cmd/benchgate -file BENCH_x.json -tolerance 1.5
//	go run ./cmd/benchgate -bench 'Simulate500' -pkgs ./internal/engine
//
// With no -file, every committed BENCH_*.json is merged into one baseline:
// files are visited in name (date) order and the newest recording of each
// benchmark wins, so specialised snapshots (e.g. a scaling-curve file) add
// their benchmarks to the gate without un-gating the ones recorded earlier.
//
// Besides the absolute per-benchmark gates, a built-in ratio-gate table
// pins relative claims between pairs of benchmarks of the SAME fresh run —
// machine speed cancels out of the ratio, so these gates hold on any
// hardware. Gates over ns/op pin wall-clock claims (round-robin must stay
// slower than least-work at 8 clusters, BenchmarkShardedSkewE2E); gates
// over a ReportMetric column pin simulation-quality claims (the epoch
// protocol's stealing cells must keep beating the static splits on mean
// wait and makespan, BenchmarkShardedStealE2E). A ratio gate is skipped
// when -bench/-pkgs filter out either side.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"elastisched/internal/benchparse"
)

type snapshot struct {
	Generated  string             `json:"generated"`
	Benchmarks []benchparse.Bench `json:"benchmarks"`
}

// ratioGates pin relative claims between two benchmarks of the same fresh
// run: slower/faster must stay at or above min. Both sides come from the
// current run (never the recording), so machine speed cancels. With metric
// empty the ratio is over ns/op — machine-sensitive, so the min sits below
// the recorded ratio to absorb run-to-run noise. With metric set the ratio
// is over that b.ReportMetric column; the simulation metrics (mean wait,
// makespan) are deterministic for the committed workloads, so those gates
// can sit right at the claimed boundary.
var ratioGates = []struct {
	slower, faster string
	metric         string
	min            float64
	claim          string
}{
	{
		slower: "elastisched/internal/dispatch.BenchmarkShardedSkewE2E/route=roundrobin/clusters=8",
		faster: "elastisched/internal/dispatch.BenchmarkShardedSkewE2E/route=least-work/clusters=8",
		min:    1.3,
		claim:  "least-work beats round-robin on the skewed workload at 8 clusters",
	},
	{
		slower: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=roundrobin/steal=false",
		faster: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=roundrobin/steal=true",
		metric: "meanwait",
		min:    20,
		claim:  "barrier stealing repairs round-robin's giant collisions (mean wait)",
	},
	{
		slower: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=least-work/steal=false",
		faster: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=roundrobin/steal=true",
		metric: "meanwait",
		min:    1.1,
		claim:  "round-robin with stealing beats static least-work (mean wait)",
	},
	{
		slower: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=least-work/steal=false",
		faster: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=least-work/steal=true",
		metric: "meanwait",
		min:    1.4,
		claim:  "stealing improves least-work's own split (mean wait)",
	},
	{
		slower: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=least-work/steal=false",
		faster: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=feedback/steal=true",
		metric: "meanwait",
		min:    1.4,
		claim:  "feedback routing with stealing beats static least-work (mean wait)",
	},
	{
		slower: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=least-work/steal=false",
		faster: "elastisched/internal/dispatch.BenchmarkShardedStealE2E/route=least-work/steal=true",
		metric: "makespan",
		min:    1.0,
		claim:  "stealing never stretches least-work's makespan",
	},
}

// requiredGates lists benchmarks the gate must actually have compared
// against a recording on a default run — a silently skipped benchmark
// (renamed, or dropped from the fresh run) would otherwise let a
// regression through without a FAIL line. The Simulate500 family runs
// with malleability off, so this is the rigid hot-path guard: the resize
// pipeline's delta fan-out must cost runs without bounds nothing
// measurable beyond tolerance, and the gate must notice if it does.
// The Faults/EASY cell is the fault-path counterpart: outage sampling,
// kill/requeue, and the periodic checkpoint chain all sit on the event
// hot loop, so that cell regressing means the fault pipeline got
// slower, not the scheduler. Only enforced when -bench and -pkgs keep
// their defaults; a filtered invocation legitimately compares a subset.
var requiredGates = []string{
	"elastisched/internal/engine.BenchmarkSimulate500/FCFS",
	"elastisched/internal/engine.BenchmarkSimulate500/EASY",
	"elastisched/internal/engine.BenchmarkSimulate500/CONS",
	"elastisched/internal/engine.BenchmarkSimulate500/LOS",
	"elastisched/internal/engine.BenchmarkSimulate500/Delayed-LOS",
	"elastisched/internal/engine.BenchmarkSimulate500/Hybrid-LOS",
	"elastisched/internal/engine.BenchmarkSimulate500Faults/EASY",
}

func main() {
	var (
		file      = flag.String("file", "", "snapshot to gate against (empty = merge all BENCH_*.json, newest wins per benchmark)")
		benchRE   = flag.String("bench", ".", "benchmark name regexp passed to go test")
		pkgs      = flag.String("pkgs", "./internal/core,./internal/sched,./internal/simkit,./internal/engine,./internal/machine,./internal/dispatch", "comma-separated packages to benchmark")
		tolerance = flag.Float64("tolerance", 1.75, "max allowed ns/op ratio current/recorded")
		count     = flag.Int("count", 1, "-count passed to go test (best run is compared)")
	)
	flag.Parse()

	paths := []string{*file}
	if *file == "" {
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(matches) == 0 {
			fatal(fmt.Errorf("no BENCH_*.json snapshot found (run cmd/benchjson first)"))
		}
		sort.Strings(matches)
		paths = matches
	}
	recorded := map[string]benchparse.Bench{}
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var snap snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for _, b := range snap.Benchmarks {
			recorded[b.Pkg+"."+b.Name] = b
		}
	}
	baseline := strings.Join(paths, "+")

	args := []string{"test", "-run=NONE", "-bench", *benchRE, "-benchmem", "-count", fmt.Sprint(*count)}
	args = append(args, strings.Split(*pkgs, ",")...)
	var buf bytes.Buffer
	cmd := exec.Command("go", args...)
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("go %s: %w", strings.Join(args, " "), err))
	}
	current, _, err := benchparse.Parse(&buf)
	if err != nil {
		fatal(err)
	}

	// With -count > 1 keep the fastest run per benchmark: the minimum is the
	// best estimate of the code's cost under machine noise.
	best := map[string]benchparse.Bench{}
	for _, b := range current {
		key := b.Pkg + "." + b.Name
		if prev, ok := best[key]; !ok || b.NsPerOp < prev.NsPerOp {
			best[key] = b
		}
	}

	failed, compared := 0, 0
	comparedKeys := map[string]bool{}
	for key, cur := range best {
		rec, ok := recorded[key]
		if !ok || rec.NsPerOp <= 0 {
			continue
		}
		compared++
		comparedKeys[key] = true
		if ratio := cur.NsPerOp / rec.NsPerOp; ratio > *tolerance {
			failed++
			fmt.Printf("benchgate: FAIL %s: %.0f ns/op vs recorded %.0f (%.2fx > %.2fx)\n",
				key, cur.NsPerOp, rec.NsPerOp, ratio, *tolerance)
		}
		if rec.AllocsPerOp > 0 {
			if ratio := float64(cur.AllocsPerOp) / float64(rec.AllocsPerOp); ratio > 1.10 {
				failed++
				fmt.Printf("benchgate: FAIL %s: %d allocs/op vs recorded %d (+%.0f%%)\n",
					key, cur.AllocsPerOp, rec.AllocsPerOp, 100*(ratio-1))
			}
		}
	}
	for _, g := range ratioGates {
		slow, okS := best[g.slower]
		fast, okF := best[g.faster]
		if !okS || !okF {
			continue
		}
		num, den := slow.NsPerOp, fast.NsPerOp
		if g.metric != "" {
			num, den = slow.Metrics[g.metric], fast.Metrics[g.metric]
		}
		if den <= 0 {
			continue
		}
		compared++
		if ratio := num / den; ratio < g.min {
			failed++
			fmt.Printf("benchgate: FAIL ratio %s: %.2fx < %.2fx (%s)\n",
				g.slower, ratio, g.min, g.claim)
		} else {
			fmt.Printf("benchgate: ratio %.2fx >= %.2fx — %s\n", ratio, g.min, g.claim)
		}
	}
	if *benchRE == "." && strings.Contains(*pkgs, "./internal/engine") {
		for _, key := range requiredGates {
			if comparedKeys[key] {
				continue
			}
			failed++
			switch {
			case recorded[key].NsPerOp <= 0:
				fmt.Printf("benchgate: FAIL required %s: not in any committed BENCH_*.json — re-run cmd/benchjson\n", key)
			default:
				fmt.Printf("benchgate: FAIL required %s: recorded but missing from the fresh run\n", key)
			}
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmark in the fresh run matches %s — check -bench/-pkgs", baseline))
	}
	if failed > 0 {
		fmt.Printf("benchgate: %d of %d gated benchmarks regressed beyond tolerance (vs %s)\n", failed, compared, baseline)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d benchmarks within %.2fx of %s\n", compared, *tolerance, baseline)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
