// Command simrun replays a CWF (or plain SWF) workload under one or more
// scheduling algorithms and reports the paper's metrics.
//
// Usage:
//
//	simrun -algos EASY,LOS,Delayed-LOS -m 320 -unit 32 trace.cwf
//	cwfgen -ps 0.2 -load 0.9 | simrun -algos Delayed-LOS -cs 8
//
// With no file argument the workload is read from stdin.
//
// Long runs can be split across invocations: -until stops the simulation
// after the last event at or before the given time (reporting partial
// metrics), -checkpoint writes the stopped session's complete state to a
// file, and -resume continues from such a file (no workload input needed —
// the snapshot is self-contained, including the algorithm):
//
//	simrun -algos Delayed-LOS -until 50000 -checkpoint part1.snap trace.cwf
//	simrun -resume part1.snap
//
// Scale-out runs shard the workload across parallel cluster simulations:
// -clusters N dispatches the jobs over N clusters of -procs processors
// each (a global machine of N×procs), reporting the merged metrics.
// -route picks the dispatch policy — roundrobin (default), least-work
// (balance queued processor-seconds), or best-fit (size-aware bin
// packing). Results are deterministic for a given workload, cluster count
// and policy. Gantt rendering and session control (-gantt, -jobs, -until,
// -checkpoint, -resume) need a single cluster:
//
//	cwfgen -n 2000 | simrun -algos Delayed-LOS -procs 320 -clusters 4 -route least-work
//
// -epoch E switches the dispatcher to its barrier-synchronized protocol
// (clusters exchange queue digests every E sim-seconds), unlocking the
// dynamic features: -steal lets idle clusters pull queued jobs from
// backlogged ones at each barrier, -route feedback routes arrivals by the
// last barrier's observed loads, and -affinity K pins every Kth submission
// to a home cluster that routing and stealing respect. Dynamic results stay
// deterministic and worker-count independent:
//
//	cwfgen -n 2000 | simrun -algos Delayed-LOS -procs 320 -clusters 4 -epoch 5000 -steal -route feedback
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	es "elastisched"
	"elastisched/internal/fault"
	"elastisched/internal/prof"
)

// Typed flag-combination errors, testable with errors.Is.
var (
	// ErrProcsConflict rejects -procs and -m set to different values: they
	// are aliases (-procs is the scale-out spelling of the machine size).
	ErrProcsConflict = errors.New("simrun: -procs and -m are aliases; set only one (or the same value)")
	// ErrShardedRender rejects per-placement rendering of a sharded run:
	// parallel clusters have no single schedule to draw.
	ErrShardedRender = errors.New("simrun: -gantt and -jobs require -clusters 1")
	// ErrShardedSession rejects session control of a sharded run: capping,
	// checkpointing and resuming operate on one session.
	ErrShardedSession = errors.New("simrun: -until, -checkpoint and -resume require -clusters 1")
	// ErrRouteNeedsClusters rejects a non-default -route without a sharded
	// run to apply it to.
	ErrRouteNeedsClusters = errors.New("simrun: -route needs -clusters > 1")
	// ErrDynamicNeedsClusters rejects the epoch-protocol knobs without a
	// sharded run to apply them to.
	ErrDynamicNeedsClusters = errors.New("simrun: -epoch, -steal and -affinity need -clusters > 1")
	// ErrCheckpointNeedsFaults rejects checkpoint knobs without fault
	// injection to restart from.
	ErrCheckpointNeedsFaults = errors.New("simrun: -ckpt-policy, -ckpt-interval and -ckpt-cost need -mtbf or -fault-trace")
)

// resolveProcs merges the -m and -procs aliases.
func resolveProcs(m, procs int) (int, error) {
	if m != 0 && procs != 0 && m != procs {
		return 0, fmt.Errorf("%w: -m %d vs -procs %d", ErrProcsConflict, m, procs)
	}
	if procs != 0 {
		return procs, nil
	}
	return m, nil
}

// validateSharded rejects flag combinations that need a single cluster,
// and sharding knobs applied to a single-cluster run.
func validateSharded(clusters int, so sweepOpts, resuming bool) error {
	if clusters <= 1 {
		if so.route != "" && so.route != "roundrobin" {
			return fmt.Errorf("%w (got -route %s)", ErrRouteNeedsClusters, so.route)
		}
		if so.epoch != 0 || so.steal || so.affinity != 0 {
			return ErrDynamicNeedsClusters
		}
		return nil
	}
	if so.gantt != "" || so.jobsOut != "" {
		return ErrShardedRender
	}
	if so.until >= 0 || so.checkFile != "" || resuming {
		return ErrShardedSession
	}
	return nil
}

func main() {
	var (
		algosFlag = flag.String("algos", "EASY,LOS,Delayed-LOS", "comma-separated algorithm names")
		m         = flag.Int("m", 0, "machine size in processors (0 = from the trace's MaxNodes header, else 320)")
		procs     = flag.Int("procs", 0, "per-cluster machine size in processors (alias of -m)")
		clusters  = flag.Int("clusters", 1, "parallel cluster simulations behind a global dispatcher (global machine = clusters x procs)")
		routeF    = flag.String("route", "roundrobin", "sharded dispatch policy: roundrobin, least-work, best-fit, or feedback (feedback needs -epoch)")
		epochF    = flag.Int64("epoch", 0, "epoch length in sim seconds for the dispatcher's barrier-synchronized protocol (0 = static one-shot routing; with -clusters > 1)")
		stealF    = flag.Bool("steal", false, "let idle clusters steal queued jobs at each epoch barrier (needs -epoch)")
		affinityF = flag.Int("affinity", 0, "pin every Nth submission to a home cluster that routing and stealing respect (needs -epoch)")
		unit      = flag.Int("unit", 0, "allocation quantum (0 = gcd of machine size and job sizes)")
		cs        = flag.Int("cs", 0, "maximum skip count C_s (0 = default)")
		lookahead = flag.Int("lookahead", 0, "DP window bound (0 = default 50)")
		maxECC    = flag.Int("max-ecc", 0, "max ECCs per job (0 = unlimited)")
		list      = flag.Bool("list", false, "list algorithm names and exit")
		gantt     = flag.String("gantt", "", "write a schedule Gantt chart of the FIRST algorithm (.svg file, or '-' for ASCII on stdout)")
		jobsOut   = flag.String("jobs", "", "write per-job placement records of the FIRST algorithm as TSV ('-' for stdout)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		until     = flag.Int64("until", -1, "stop after the last event at or before this time and report partial metrics (-1 = run to completion)")
		checkFile = flag.String("checkpoint", "", "write the stopped session's snapshot to this file (single algorithm only)")
		resumeF   = flag.String("resume", "", "resume from a snapshot file instead of reading a workload")

		mtbf       = flag.Float64("mtbf", 0, "per-node-group mean time between failures in s (0 = fault injection off)")
		mttr       = flag.Float64("mttr", 0, "per-node-group mean time to repair in s (with -mtbf)")
		faultSeed  = flag.Int64("fault-seed", 1, "fault trace sampling seed (with -mtbf)")
		faultFile  = flag.String("fault-trace", "", "scripted fault trace file (\"<time> fail|repair <groups>\" lines; exclusive with -mtbf)")
		retryMode  = flag.String("retry", "requeue", "policy for batch jobs killed by a failure: requeue or drop")
		restart    = flag.String("restart", "full", "runtime a requeued job restarts with: full or remaining")
		maxRetries = flag.Int("max-retries", 0, "requeues per job before it is dropped (0 = unlimited)")
		backoff    = flag.Int64("retry-backoff", 0, "delay in s before a killed job is resubmitted")
		ckptPolicy = flag.String("ckpt-policy", "none", "checkpoint policy for running batch jobs: none, periodic, on-resize or daly (kills then restart from the last checkpoint; with -mtbf/-fault-trace)")
		ckptIvl    = flag.Int64("ckpt-interval", 0, "periodic checkpoint interval in s (with -ckpt-policy periodic)")
		ckptCost   = flag.Int64("ckpt-cost", 0, "charge in s per checkpoint and per restart-from-checkpoint (with -ckpt-policy)")

		malleable  = flag.Bool("malleable", false, "enable work-conserving runtime resizing (use -M algorithm variants for scheduler-initiated shrink/expand)")
		resizeOvhd = flag.Int64("resize-overhead", 0, "reconfiguration penalty in s charged per resize (with -malleable)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(es.AlgorithmNames(), "\n"))
		return
	}

	mv, err := resolveProcs(*m, *procs)
	if err != nil {
		fatal(err)
	}
	so := sweepOpts{
		gantt: *gantt, jobsOut: *jobsOut, until: *until, checkFile: *checkFile,
		clusters: *clusters, route: *routeF,
		epoch: *epochF, steal: *stealF, affinity: *affinityF,
	}
	if err := validateSharded(*clusters, so, *resumeF != ""); err != nil {
		fatal(err)
	}

	if *resumeF != "" {
		if err := resumeRun(*resumeF, *until, *checkFile, *cs, *lookahead); err != nil {
			fatal(err)
		}
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
		}
	}()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	w, err := es.ParseCWF(in)
	if err != nil {
		fatal(err)
	}
	if mv == 0 {
		if declared := w.MaxNodes(); declared > 0 {
			mv = declared
			fmt.Fprintf(os.Stderr, "simrun: machine size %d from trace header\n", mv)
		} else {
			mv = 320
		}
	}
	if *unit == 0 {
		*unit = autoUnit(w, mv)
	}
	if *clusters > 1 {
		fmt.Printf("workload: %d jobs (%d dedicated), %d ECCs (machine %d x unit %d, %d clusters via %s, global %d)\n",
			len(w.Jobs), w.NumDedicated(), len(w.Commands), mv, *unit, *clusters, *routeF, mv**clusters)
	} else {
		fmt.Printf("workload: %d jobs (%d dedicated), %d ECCs, offered load %.3f (machine %d x unit %d)\n",
			len(w.Jobs), w.NumDedicated(), len(w.Commands), w.Load(mv), mv, *unit)
	}

	algos := strings.Split(*algosFlag, ",")
	if *checkFile != "" && len(algos) > 1 {
		fatal(fmt.Errorf("-checkpoint requires a single algorithm, got %d", len(algos)))
	}

	fc, err := faultConfig(*mtbf, *mttr, *faultSeed, *faultFile, *retryMode, *restart, *maxRetries, *backoff,
		*ckptPolicy, *ckptIvl, *ckptCost)
	if err != nil {
		fatal(err)
	}
	opt := es.Options{
		M: mv, Unit: *unit, Cs: *cs, Lookahead: *lookahead, MaxECCPerJob: *maxECC,
		Faults: fc, Malleable: *malleable, ResizeOverhead: *resizeOvhd,
	}
	if err := runSweep(w, algos, opt, os.Stdout, so); err != nil {
		fatal(err)
	}
}

// sweepOpts bundles the rendering, session-control and sharding knobs of
// one sweep.
type sweepOpts struct {
	gantt, jobsOut string
	until          int64
	checkFile      string
	// clusters > 1 dispatches each run across parallel cluster simulations;
	// route names the dispatch policy ("" = roundrobin). epoch > 0 switches
	// to the barrier-synchronized protocol; steal and affinity select its
	// exchange features.
	clusters int
	route    string
	epoch    int64
	steal    bool
	affinity int
}

// runSweep runs every algorithm in order, writing one result row per
// completed run. A failing run aborts the sweep, but the rows already
// completed are flushed first: a mid-sweep abort keeps its partial results.
func runSweep(w *es.Workload, algos []string, opt es.Options, out io.Writer, so sweepOpts) error {
	faulty := opt.Faults != nil
	ckpt := faulty && opt.Faults.Checkpoint != es.CheckpointNone
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, resultHeader(faulty, ckpt, opt.Malleable))
	var sweepErr error
	for i, name := range algos {
		name = strings.TrimSpace(name)
		aopt := opt
		var rec *es.Trace
		if (so.gantt != "" || so.jobsOut != "") && i == 0 {
			rec = es.NewTrace(opt.M, opt.Unit)
			aopt.Trace = rec
		}
		if so.clusters > 1 {
			sres, err := es.SimulateSharded(w, name, aopt, es.ShardedOptions{
				Clusters: so.clusters, Route: so.route,
				Epoch: so.epoch, Steal: so.steal, Affinity: so.affinity,
			})
			if err != nil {
				sweepErr = fmt.Errorf("%s: %w", name, err)
				break
			}
			fmt.Fprint(tw, summaryRow(name, sres.Merged, sres.ECC.Applied, faulty, ckpt, opt.Malleable))
			continue
		}
		var res *es.Result
		var err error
		if so.until >= 0 || so.checkFile != "" {
			res, err = runCapped(w, name, aopt, so.until, so.checkFile)
		} else {
			res, err = es.Simulate(w, name, aopt)
		}
		if err != nil {
			sweepErr = fmt.Errorf("%s: %w", name, err)
			break
		}
		fmt.Fprint(tw, resultRow(name, res, faulty, ckpt, opt.Malleable))
		if rec != nil && so.gantt != "" {
			if so.gantt == "-" {
				fmt.Fprintln(out, rec.ASCII(100))
			} else if err := os.WriteFile(so.gantt, []byte(rec.SVG(1000, 420)), 0o644); err != nil {
				sweepErr = err
				break
			} else {
				fmt.Fprintf(os.Stderr, "simrun: wrote %s\n", so.gantt)
			}
		}
		if rec != nil && so.jobsOut != "" {
			if err := writeJobs(so.jobsOut, rec); err != nil {
				sweepErr = err
				break
			}
		}
	}
	if err := tw.Flush(); err != nil && sweepErr == nil {
		sweepErr = err
	}
	return sweepErr
}

// faultConfig assembles Options.Faults from the fault flags; nil when fault
// injection is off. Checkpoint knobs are validated up front with the fault
// package's typed errors (errors.Is-testable) rather than per-algorithm at
// engine start.
func faultConfig(mtbf, mttr float64, seed int64, traceFile, retry, restart string, maxRetries int, backoff int64,
	ckptPolicy string, ckptIvl, ckptCost int64) (*es.FaultConfig, error) {
	ckpt, err := es.ParseCheckpointPolicy(ckptPolicy)
	if err != nil {
		return nil, err
	}
	if mtbf <= 0 && traceFile == "" {
		if ckpt != es.CheckpointNone || ckptIvl != 0 || ckptCost != 0 {
			return nil, ErrCheckpointNeedsFaults
		}
		return nil, nil
	}
	if err := fault.ValidateCheckpoint(ckpt, ckptIvl, ckptCost, mtbf); err != nil {
		return nil, err
	}
	fc := &es.FaultConfig{MTBF: mtbf, MTTR: mttr, Seed: seed}
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		t, err := es.ParseFaultTrace(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", traceFile, err)
		}
		fc.Trace = t
	}
	switch retry {
	case "requeue":
		fc.Retry.Mode = es.Requeue
	case "drop":
		fc.Retry.Mode = es.Drop
	default:
		return nil, fmt.Errorf("-retry: want requeue or drop, got %q", retry)
	}
	switch restart {
	case "full":
		fc.Retry.Restart = es.FullRuntime
	case "remaining":
		fc.Retry.Restart = es.RemainingRuntime
	default:
		return nil, fmt.Errorf("-restart: want full or remaining, got %q", restart)
	}
	fc.Retry.MaxRetries = maxRetries
	fc.Retry.Backoff = backoff
	fc.Checkpoint = ckpt
	fc.CheckpointInterval = ckptIvl
	fc.CheckpointCost = ckptCost
	return fc, nil
}

// resultHeader renders the tabwriter header; fault-injected sweeps carry
// the failure-accounting columns (plus the checkpoint economics when a
// policy is on) and malleable sweeps the resize columns.
func resultHeader(faulty, ckpt, malleable bool) string {
	h := "algorithm\tutil\tmean wait (s)\tmean run (s)\tslowdown\tded on-time\tECCs applied"
	if faulty {
		h += "\tkilled\tretried\tdropped\tdown proc-s"
	}
	if ckpt {
		h += "\tckpts\tckpt proc-s\tlost proc-s"
	}
	if malleable {
		h += "\tresizes\tshrunk proc-s\treconfig s"
	}
	return h
}

// resultRow renders one algorithm's tabwriter line.
func resultRow(name string, res *es.Result, faulty, ckpt, malleable bool) string {
	return summaryRow(name, res.Summary, res.ECC.Applied, faulty, ckpt, malleable)
}

// summaryRow renders a tabwriter line from any summary — a single run's or
// a sharded run's merged view.
func summaryRow(name string, s es.Summary, eccApplied int, faulty, ckpt, malleable bool) string {
	row := fmt.Sprintf("%s\t%.4f\t%.1f\t%.1f\t%.3f\t%.2f\t%d",
		name, s.Utilization, s.MeanWait, s.MeanRun, s.Slowdown, s.DedicatedOnTime, eccApplied)
	if faulty {
		row += fmt.Sprintf("\t%d\t%d\t%d\t%.0f", s.KilledJobs, s.RetriedJobs, s.DroppedJobs, s.DownProcSeconds)
	}
	if ckpt {
		row += fmt.Sprintf("\t%d\t%.0f\t%.0f", s.CheckpointsTaken, s.CheckpointOverheadSeconds, s.LostWorkSeconds)
	}
	if malleable {
		row += fmt.Sprintf("\t%d\t%.0f\t%.0f", s.SchedulerResizes, s.ShrunkProcSeconds, s.ReconfigOverheadSeconds)
	}
	return row + "\n"
}

// runCapped drives the workload through a session so the run can be capped
// at -until and checkpointed.
func runCapped(w *es.Workload, name string, opt es.Options, until int64, checkFile string) (*es.Result, error) {
	sess, err := es.NewSession(name, opt)
	if err != nil {
		return nil, err
	}
	if err := sess.Load(w); err != nil {
		return nil, err
	}
	if err := drive(sess, until, checkFile); err != nil {
		return nil, err
	}
	return sess.Result()
}

// drive advances a session to the cap (or completion) and writes the
// checkpoint if requested.
func drive(sess *es.Session, until int64, checkFile string) error {
	var err error
	if until >= 0 {
		err = sess.RunUntil(until)
	} else {
		err = sess.Run()
	}
	if err != nil {
		return err
	}
	if checkFile == "" {
		return nil
	}
	sn, err := sess.Snapshot()
	if err != nil {
		return err
	}
	f, err := os.Create(checkFile)
	if err != nil {
		return err
	}
	if err := sn.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simrun: wrote %s (t=%d, %d events pending)\n", checkFile, sess.Now(), sess.Pending())
	return nil
}

// resumeRun continues a checkpointed session: the snapshot is
// self-contained, so no workload input is read.
func resumeRun(path string, until int64, checkFile string, cs, lookahead int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sn, err := es.DecodeSessionSnapshot(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	sess, err := es.ResumeSnapshot(sn, es.Options{Cs: cs, Lookahead: lookahead})
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "simrun: resumed %s under %s at t=%d (%d jobs, %d events pending)\n",
		path, sn.Scheduler, sess.Now(), len(sn.Jobs), sess.Pending())
	if err := drive(sess, until, checkFile); err != nil {
		return fmt.Errorf("%s: %w", sn.Scheduler, err)
	}
	res, err := sess.Result()
	if err != nil {
		return fmt.Errorf("%s: %w", sn.Scheduler, err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	faulty := sn.Retry != nil
	ckpt := sn.Checkpoint != ""
	fmt.Fprintln(tw, resultHeader(faulty, ckpt, sn.Malleable))
	fmt.Fprint(tw, resultRow(sn.Scheduler, res, faulty, ckpt, sn.Malleable))
	return tw.Flush()
}

// autoUnit derives the allocation quantum as the gcd of the machine size
// and every job size — 32 for BlueGene/P-style traces, 1 for irregular
// archive logs.
func autoUnit(w *es.Workload, m int) int {
	g := m
	for _, j := range w.Jobs {
		g = gcd(g, j.Size)
		if g == 1 {
			break
		}
	}
	if g <= 0 {
		return 1
	}
	return g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// writeJobs dumps per-job placement records as TSV.
func writeJobs(path string, rec *es.Trace) error {
	var b strings.Builder
	b.WriteString("job\tclass\tsize\tarrival\treq_start\tstart\tend\twait\n")
	for _, sp := range rec.Spans() {
		fmt.Fprintf(&b, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			sp.JobID, sp.Class, sp.Size, sp.Arrival, sp.ReqStart, sp.Start, sp.End, sp.Wait())
	}
	if path == "-" {
		_, err := io.WriteString(os.Stdout, b.String())
		return err
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "simrun: wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
