package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	es "elastisched"
	"elastisched/internal/fault"
)

// TestCheckpointResumeMatchesUninterrupted is the CLI-level round trip:
// run capped at a mid-trace time with a checkpoint file, resume from that
// file, and the combined run's result must deep-equal the uninterrupted
// simulation.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	var specs []es.JobSpec
	for i := 0; i < 40; i++ {
		specs = append(specs, es.JobSpec{
			ID: i + 1, Size: 32 * (1 + i%6), Duration: int64(600 + 137*i),
			Arrival: int64(200 * i), RequestedStart: -1,
		})
	}
	w, err := es.BuildWorkload(specs, []es.CommandSpec{
		{JobID: 10, Issue: 2100, Type: "ET", Amount: 900},
		{JobID: 30, Issue: 6200, Type: "RT", Amount: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := es.Options{M: 320, Unit: 32}
	want, err := es.Simulate(w, "Delayed-LOS-E", opt)
	if err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(t.TempDir(), "mid.snap")
	partial, err := runCapped(w, "Delayed-LOS-E", opt, 3500, snap)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Summary.Jobs >= want.Summary.Jobs {
		t.Fatalf("cap at t=3500 did not stop early: %d of %d jobs done", partial.Summary.Jobs, want.Summary.Jobs)
	}

	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sess, err := es.ResumeSession(f, es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed run diverged from uninterrupted run:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// sweepWorkload builds a small deterministic workload for sweep tests.
func sweepWorkload(t *testing.T) *es.Workload {
	t.Helper()
	var specs []es.JobSpec
	for i := 0; i < 30; i++ {
		specs = append(specs, es.JobSpec{
			ID: i + 1, Size: 32 * (1 + i%5), Duration: int64(500 + 90*i),
			Arrival: int64(150 * i), RequestedStart: -1,
		})
	}
	w, err := es.BuildWorkload(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSweepAbortFlushesPartialResults: when an algorithm mid-sweep fails,
// runSweep must return the error (so main exits non-zero) AND the rows of
// the algorithms that already completed must have been flushed.
func TestSweepAbortFlushesPartialResults(t *testing.T) {
	w := sweepWorkload(t)
	var out bytes.Buffer
	err := runSweep(w, []string{"EASY", "no-such-algorithm", "FCFS"},
		es.Options{M: 320, Unit: 32}, &out, sweepOpts{until: -1})
	if err == nil {
		t.Fatal("sweep with an unknown algorithm reported success")
	}
	if !strings.Contains(err.Error(), "no-such-algorithm") {
		t.Errorf("error does not name the failing algorithm: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "algorithm") || !strings.Contains(got, "EASY") {
		t.Errorf("completed EASY row lost on abort; output:\n%s", got)
	}
	if strings.Contains(got, "FCFS") {
		t.Errorf("sweep continued past the failing algorithm; output:\n%s", got)
	}
}

// TestFaultConfigFlags covers the flag-to-FaultConfig assembly, including
// the typed rejections.
func TestFaultConfigFlags(t *testing.T) {
	if fc, err := faultConfig(0, 0, 1, "", "requeue", "full", 0, 0, "none", 0, 0); err != nil || fc != nil {
		t.Errorf("faults-off config = (%v, %v), want (nil, nil)", fc, err)
	}
	fc, err := faultConfig(50000, 1200, 9, "", "drop", "remaining", 3, 60, "none", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := es.RetryPolicy{Mode: es.Drop, Restart: es.RemainingRuntime, MaxRetries: 3, Backoff: 60}
	if fc.MTBF != 50000 || fc.MTTR != 1200 || fc.Seed != 9 || fc.Retry != want {
		t.Errorf("faultConfig = %+v, want MTBF 50000 MTTR 1200 seed 9 retry %+v", fc, want)
	}
	if _, err := faultConfig(50000, 0, 1, "", "bogus", "full", 0, 0, "none", 0, 0); err == nil {
		t.Error("bad -retry accepted")
	}
	if _, err := faultConfig(50000, 0, 1, "", "requeue", "bogus", 0, 0, "none", 0, 0); err == nil {
		t.Error("bad -restart accepted")
	}
	if _, err := faultConfig(0, 0, 1, filepath.Join(t.TempDir(), "absent"), "requeue", "full", 0, 0, "none", 0, 0); err == nil {
		t.Error("missing -fault-trace file accepted")
	}
	script := filepath.Join(t.TempDir(), "faults.txt")
	if err := os.WriteFile(script, []byte("# outage\n3000 fail 0,1\n3400 repair 0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fc, err = faultConfig(0, 0, 1, script, "requeue", "full", 0, 0, "none", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Trace == nil || len(fc.Trace.Events) != 2 {
		t.Errorf("scripted trace not loaded: %+v", fc)
	}
}

// TestCheckpointConfigFlags covers the -ckpt-* flag assembly and its
// typed rejections, errors.Is-testable.
func TestCheckpointConfigFlags(t *testing.T) {
	// Lawful periodic config rides on the fault config.
	fc, err := faultConfig(50000, 1200, 9, "", "requeue", "remaining", 0, 0, "periodic", 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Checkpoint != es.CheckpointPeriodic || fc.CheckpointInterval != 600 || fc.CheckpointCost != 30 {
		t.Errorf("checkpoint knobs not threaded: %+v", fc)
	}
	// Daly derives its interval from the sampling MTBF.
	fc, err = faultConfig(50000, 1200, 9, "", "requeue", "full", 0, 0, "daly", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Checkpoint != es.CheckpointDaly {
		t.Errorf("daly policy not threaded: %+v", fc)
	}
	if got, want := fc.ResolvedCheckpointInterval(), es.DalyInterval(50000, 30); got != want {
		t.Errorf("resolved daly interval = %d, want %d", got, want)
	}

	if _, err := faultConfig(0, 0, 1, "", "requeue", "full", 0, 0, "periodic", 600, 30); !errors.Is(err, ErrCheckpointNeedsFaults) {
		t.Errorf("checkpoint without faults = %v, want ErrCheckpointNeedsFaults", err)
	}
	if _, err := faultConfig(0, 0, 1, "", "requeue", "full", 0, 0, "none", 0, 30); !errors.Is(err, ErrCheckpointNeedsFaults) {
		t.Errorf("cost without faults = %v, want ErrCheckpointNeedsFaults", err)
	}
	if _, err := faultConfig(50000, 0, 1, "", "requeue", "full", 0, 0, "hourly", 0, 0); !errors.Is(err, fault.ErrUnknownCheckpointPolicy) {
		t.Errorf("bad policy = %v, want ErrUnknownCheckpointPolicy", err)
	}
	if _, err := faultConfig(50000, 0, 1, "", "requeue", "full", 0, 0, "none", 600, 0); !errors.Is(err, fault.ErrIntervalWithoutPeriodic) {
		t.Errorf("interval without periodic = %v, want ErrIntervalWithoutPeriodic", err)
	}
	if _, err := faultConfig(50000, 0, 1, "", "requeue", "full", 0, 0, "periodic", 0, 0); !errors.Is(err, fault.ErrNonPositiveInterval) {
		t.Errorf("periodic without interval = %v, want ErrNonPositiveInterval", err)
	}
	if _, err := faultConfig(50000, 0, 1, "", "requeue", "full", 0, 0, "periodic", 600, -1); !errors.Is(err, fault.ErrNegativeCheckpointCost) {
		t.Errorf("negative cost = %v, want ErrNegativeCheckpointCost", err)
	}

	// A scripted trace carries no sampling rate: daly has no MTBF to
	// derive its interval from and must be rejected up front.
	script := filepath.Join(t.TempDir(), "faults.txt")
	if err := os.WriteFile(script, []byte("3000 fail 0,1\n3400 repair 0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := faultConfig(0, 0, 1, script, "requeue", "full", 0, 0, "daly", 0, 30); !errors.Is(err, fault.ErrDalyNeedsMTBF) {
		t.Errorf("daly on scripted trace = %v, want ErrDalyNeedsMTBF", err)
	}
	// Periodic on a scripted trace is fine: the interval is explicit.
	fc, err = faultConfig(0, 0, 1, script, "requeue", "full", 0, 0, "periodic", 600, 30)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Checkpoint != es.CheckpointPeriodic {
		t.Errorf("scripted periodic not threaded: %+v", fc)
	}
}

// TestFaultSweepReportsFailureColumns runs a fault-injected sweep through
// the CLI path and checks the failure-accounting columns appear.
func TestFaultSweepReportsFailureColumns(t *testing.T) {
	w := sweepWorkload(t)
	script := filepath.Join(t.TempDir(), "faults.txt")
	if err := os.WriteFile(script, []byte("1000 fail 0,1,2,3,4,5,6,7,8,9\n1500 repair 0,1,2,3,4,5,6,7,8,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fc, err := faultConfig(0, 0, 1, script, "requeue", "full", 0, 0, "none", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runSweep(w, []string{"EASY"}, es.Options{M: 320, Unit: 32, Faults: fc}, &out, sweepOpts{until: -1}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "killed") || !strings.Contains(got, "down proc-s") {
		t.Errorf("fault columns missing from header:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got:\n%s", got)
	}
	if fields := strings.Fields(lines[1]); fields[len(fields)-1] == "0" {
		t.Errorf("full-machine outage recorded zero down proc-seconds:\n%s", got)
	}
}

// TestFaultCheckpointResume is the fault-injected CLI round trip: cap a
// scripted-outage run mid-outage with a checkpoint, resume from the file,
// and the combined result must deep-equal the uninterrupted run.
func TestFaultCheckpointResume(t *testing.T) {
	w := sweepWorkload(t)
	tr, err := es.ParseFaultTrace(strings.NewReader("2000 fail 0,1\n2600 repair 0,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	opt := es.Options{M: 320, Unit: 32, Faults: &es.FaultConfig{Trace: tr}}
	want, err := es.Simulate(w, "EASY", opt)
	if err != nil {
		t.Fatal(err)
	}
	if want.Summary.KilledJobs == 0 {
		t.Fatal("outage killed nothing; the round trip would not cover the fault path")
	}

	snap := filepath.Join(t.TempDir(), "mid.snap")
	if _, err := runCapped(w, "EASY", opt, 2200, snap); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sess, err := es.ResumeSession(f, es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed fault run diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestDalyCheckpointResume pins the daly round trip through the façade:
// the snapshot stores the resolved base interval plus the MTBF the
// per-job intervals derive from, and ResumeSnapshot must rebuild a
// config that validates (daly rejects an explicit interval) and keeps
// deriving the same span-aware intervals as the uninterrupted run.
func TestDalyCheckpointResume(t *testing.T) {
	w := sweepWorkload(t)
	opt := es.Options{M: 320, Unit: 32, Faults: &es.FaultConfig{
		MTBF: 40000, MTTR: 2000, Seed: 7,
		Checkpoint: es.CheckpointDaly, CheckpointCost: 60,
	}}
	want, err := es.Simulate(w, "EASY", opt)
	if err != nil {
		t.Fatal(err)
	}
	if want.Summary.CheckpointsTaken == 0 {
		t.Fatal("daly run took no checkpoints; the round trip would not cover the policy")
	}

	snap := filepath.Join(t.TempDir(), "daly.snap")
	if _, err := runCapped(w, "EASY", opt, 2200, snap); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sess, err := es.ResumeSession(f, es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed daly run diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestAutoUnit(t *testing.T) {
	w, err := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 64, Duration: 10, RequestedStart: -1},
		{ID: 2, Size: 96, Duration: 10, RequestedStart: -1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := autoUnit(w, 320); got != 32 {
		t.Errorf("autoUnit = %d, want 32", got)
	}
	w2, _ := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 7, Duration: 10, RequestedStart: -1},
	}, nil)
	if got := autoUnit(w2, 128); got != 1 {
		t.Errorf("autoUnit = %d, want 1 (gcd of 128 and 7)", got)
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{12, 8, 4}, {7, 128, 1}, {32, 320, 32}, {5, 0, 5}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

// TestResolveProcs covers the -m/-procs aliasing, including the typed
// conflict rejection.
func TestResolveProcs(t *testing.T) {
	for _, c := range []struct {
		m, procs, want int
	}{
		{0, 0, 0}, {320, 0, 320}, {0, 640, 640}, {320, 320, 320},
	} {
		got, err := resolveProcs(c.m, c.procs)
		if err != nil || got != c.want {
			t.Errorf("resolveProcs(%d,%d) = (%d,%v), want (%d,nil)", c.m, c.procs, got, err, c.want)
		}
	}
	if _, err := resolveProcs(320, 640); !errors.Is(err, ErrProcsConflict) {
		t.Errorf("conflicting -m/-procs: got %v, want errors.Is(err, ErrProcsConflict)", err)
	}
}

// TestValidateSharded pins the typed rejections of single-cluster-only
// flags under -clusters > 1.
func TestValidateSharded(t *testing.T) {
	if err := validateSharded(1, sweepOpts{gantt: "-", until: 100, checkFile: "x"}, true); err != nil {
		t.Errorf("clusters=1 rejected: %v", err)
	}
	if err := validateSharded(4, sweepOpts{until: -1}, false); err != nil {
		t.Errorf("plain sharded run rejected: %v", err)
	}
	if err := validateSharded(1, sweepOpts{until: -1, route: "roundrobin"}, false); err != nil {
		t.Errorf("default route on clusters=1 rejected: %v", err)
	}
	if err := validateSharded(1, sweepOpts{until: -1, route: "least-work"}, false); !errors.Is(err, ErrRouteNeedsClusters) {
		t.Errorf("-route without clusters: got %v, want errors.Is(err, ErrRouteNeedsClusters)", err)
	}
	if err := validateSharded(4, sweepOpts{until: -1, route: "least-work"}, false); err != nil {
		t.Errorf("routed sharded run rejected: %v", err)
	}
	for name, so := range map[string]sweepOpts{
		"epoch":    {until: -1, epoch: 500},
		"steal":    {until: -1, steal: true},
		"affinity": {until: -1, affinity: 3},
	} {
		if err := validateSharded(1, so, false); !errors.Is(err, ErrDynamicNeedsClusters) {
			t.Errorf("-%s without clusters: got %v, want errors.Is(err, ErrDynamicNeedsClusters)", name, err)
		}
	}
	if err := validateSharded(4, sweepOpts{until: -1, epoch: 500, steal: true, affinity: 3, route: "feedback"}, false); err != nil {
		t.Errorf("dynamic sharded run rejected: %v", err)
	}
	for name, tc := range map[string]struct {
		so       sweepOpts
		resuming bool
		want     error
	}{
		"gantt":      {sweepOpts{gantt: "-", until: -1}, false, ErrShardedRender},
		"jobs":       {sweepOpts{jobsOut: "-", until: -1}, false, ErrShardedRender},
		"until":      {sweepOpts{until: 100}, false, ErrShardedSession},
		"checkpoint": {sweepOpts{until: -1, checkFile: "x"}, false, ErrShardedSession},
		"resume":     {sweepOpts{until: -1}, true, ErrShardedSession},
	} {
		if err := validateSharded(2, tc.so, tc.resuming); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want errors.Is(err, %v)", name, err, tc.want)
		}
	}
}

// TestShardedSweep runs a multi-cluster sweep through the CLI path: the
// merged row appears and repeated runs agree byte-for-byte.
func TestShardedSweep(t *testing.T) {
	w := sweepWorkload(t)
	var out1, out2 bytes.Buffer
	so := sweepOpts{until: -1, clusters: 2}
	if err := runSweep(w, []string{"EASY", "Delayed-LOS"}, es.Options{M: 320, Unit: 32}, &out1, so); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(w, []string{"EASY", "Delayed-LOS"}, es.Options{M: 320, Unit: 32}, &out2, so); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("sharded sweep not reproducible:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "Delayed-LOS") {
		t.Errorf("sharded sweep missing result row:\n%s", out1.String())
	}
}

// TestShardedSweepRoutes drives every routing policy through the CLI path:
// each produces a result row, and an unknown policy aborts the sweep.
func TestShardedSweepRoutes(t *testing.T) {
	w := sweepWorkload(t)
	for _, route := range []string{"roundrobin", "least-work", "best-fit"} {
		var out bytes.Buffer
		so := sweepOpts{until: -1, clusters: 2, route: route}
		if err := runSweep(w, []string{"EASY"}, es.Options{M: 320, Unit: 32}, &out, so); err != nil {
			t.Fatalf("%s: %v", route, err)
		}
		if !strings.Contains(out.String(), "EASY") {
			t.Errorf("%s: missing result row:\n%s", route, out.String())
		}
	}
	var out bytes.Buffer
	so := sweepOpts{until: -1, clusters: 2, route: "no-such-policy"}
	if err := runSweep(w, []string{"EASY"}, es.Options{M: 320, Unit: 32}, &out, so); err == nil {
		t.Error("unknown -route accepted")
	}
}

// TestShardedSweepDynamic drives the epoch protocol through the CLI path:
// stealing and feedback routing produce result rows and repeat byte-for-byte,
// while dynamic knobs without an epoch abort the sweep.
func TestShardedSweepDynamic(t *testing.T) {
	w := sweepWorkload(t)
	so := sweepOpts{until: -1, clusters: 2, epoch: 500, steal: true, route: "feedback"}
	var out1, out2 bytes.Buffer
	if err := runSweep(w, []string{"EASY"}, es.Options{M: 320, Unit: 32}, &out1, so); err != nil {
		t.Fatal(err)
	}
	if err := runSweep(w, []string{"EASY"}, es.Options{M: 320, Unit: 32}, &out2, so); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Errorf("dynamic sharded sweep not reproducible:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), "EASY") {
		t.Errorf("dynamic sharded sweep missing result row:\n%s", out1.String())
	}
	var out bytes.Buffer
	noEpoch := sweepOpts{until: -1, clusters: 2, steal: true}
	if err := runSweep(w, []string{"EASY"}, es.Options{M: 320, Unit: 32}, &out, noEpoch); err == nil {
		t.Error("-steal without -epoch accepted")
	}
}
