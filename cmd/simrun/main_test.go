package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	es "elastisched"
)

// TestCheckpointResumeMatchesUninterrupted is the CLI-level round trip:
// run capped at a mid-trace time with a checkpoint file, resume from that
// file, and the combined run's result must deep-equal the uninterrupted
// simulation.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	var specs []es.JobSpec
	for i := 0; i < 40; i++ {
		specs = append(specs, es.JobSpec{
			ID: i + 1, Size: 32 * (1 + i%6), Duration: int64(600 + 137*i),
			Arrival: int64(200 * i), RequestedStart: -1,
		})
	}
	w, err := es.BuildWorkload(specs, []es.CommandSpec{
		{JobID: 10, Issue: 2100, Type: "ET", Amount: 900},
		{JobID: 30, Issue: 6200, Type: "RT", Amount: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := es.Options{M: 320, Unit: 32}
	want, err := es.Simulate(w, "Delayed-LOS-E", opt)
	if err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(t.TempDir(), "mid.snap")
	partial, err := runCapped(w, "Delayed-LOS-E", opt, 3500, snap)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Summary.Jobs >= want.Summary.Jobs {
		t.Fatalf("cap at t=3500 did not stop early: %d of %d jobs done", partial.Summary.Jobs, want.Summary.Jobs)
	}

	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sess, err := es.ResumeSession(f, es.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed run diverged from uninterrupted run:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestAutoUnit(t *testing.T) {
	w, err := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 64, Duration: 10, RequestedStart: -1},
		{ID: 2, Size: 96, Duration: 10, RequestedStart: -1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := autoUnit(w, 320); got != 32 {
		t.Errorf("autoUnit = %d, want 32", got)
	}
	w2, _ := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 7, Duration: 10, RequestedStart: -1},
	}, nil)
	if got := autoUnit(w2, 128); got != 1 {
		t.Errorf("autoUnit = %d, want 1 (gcd of 128 and 7)", got)
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{12, 8, 4}, {7, 128, 1}, {32, 320, 32}, {5, 0, 5}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
