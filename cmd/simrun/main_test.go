package main

import (
	"testing"

	es "elastisched"
)

func TestAutoUnit(t *testing.T) {
	w, err := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 64, Duration: 10, RequestedStart: -1},
		{ID: 2, Size: 96, Duration: 10, RequestedStart: -1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := autoUnit(w, 320); got != 32 {
		t.Errorf("autoUnit = %d, want 32", got)
	}
	w2, _ := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 7, Duration: 10, RequestedStart: -1},
	}, nil)
	if got := autoUnit(w2, 128); got != 1 {
		t.Errorf("autoUnit = %d, want 1 (gcd of 128 and 7)", got)
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{12, 8, 4}, {7, 128, 1}, {32, 320, 32}, {5, 0, 5}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
