package main

import "testing"

func TestWorkloadFor(t *testing.T) {
	p := workloadFor(0.2, 0.9)
	if p.PS != 0.2 || p.TargetLoad != 0.9 {
		t.Errorf("workloadFor wrong: PS=%g load=%g", p.PS, p.TargetLoad)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
