package sched

import "elastisched/internal/job"

// FCFS is plain first-come first-served: jobs start strictly in queue order;
// the head blocks everything behind it.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "FCFS" }

// Heterogeneous implements Scheduler; FCFS is batch-only.
func (FCFS) Heterogeneous() bool { return false }

// Schedule starts head jobs while they fit.
func (FCFS) Schedule(ctx *Context) {
	for {
		h := ctx.Batch.Head()
		if h == nil || !ctx.Fits(h.Size) || !ctx.Start(h) {
			return
		}
	}
}

// SJF is shortest-job-first by user-estimated runtime (Section II related
// work): the waiting queue is scanned in increasing duration order and any
// fitting job starts. No reservations, so large jobs can starve.
type SJF struct{}

// Name implements Scheduler.
func (SJF) Name() string { return "SJF" }

// Heterogeneous implements Scheduler; SJF is batch-only.
func (SJF) Heterogeneous() bool { return false }

// Schedule starts the shortest fitting job, one per pass (the engine's
// fixed-point loop continues until nothing fits).
func (SJF) Schedule(ctx *Context) {
	best := pick(ctx, func(a, b *job.Job) bool {
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Arrival < b.Arrival
	})
	if best != nil {
		ctx.Start(best)
	}
}

// LJF is largest-job-first by size (Section II related work), motivated by
// first-fit-decreasing bin packing.
type LJF struct{}

// Name implements Scheduler.
func (LJF) Name() string { return "LJF" }

// Heterogeneous implements Scheduler; LJF is batch-only.
func (LJF) Heterogeneous() bool { return false }

// Schedule starts the largest fitting job, one per pass.
func (LJF) Schedule(ctx *Context) {
	best := pick(ctx, func(a, b *job.Job) bool {
		if a.Size != b.Size {
			return a.Size > b.Size
		}
		return a.Arrival < b.Arrival
	})
	if best != nil {
		ctx.Start(best)
	}
}

// pick returns the placeable waiting job that wins under less, or nil.
func pick(ctx *Context, less func(a, b *job.Job) bool) *job.Job {
	var best *job.Job
	for _, j := range ctx.Batch.Jobs() {
		if !ctx.Fits(j.Size) {
			continue
		}
		if best == nil || less(j, best) {
			best = j
		}
	}
	return best
}
