// Package sched defines the scheduler interface and the baseline policies
// the paper compares against: FCFS, SJF/LJF (related work, Section II), EASY
// backfilling, conservative backfilling, and the dedicated-queue appendage
// that turns a batch scheduler into its -D variant (EASY-D, LOS-D).
//
// The LOS family (LOS, Delayed-LOS, Hybrid-LOS — the paper's contribution)
// lives in package core and builds on the primitives here.
package sched

import (
	"fmt"

	"elastisched/internal/job"
	"elastisched/internal/machine"
)

// Context is the scheduler's view of the system at one scheduling cycle. The
// engine constructs it after every event timestamp and re-invokes Schedule
// until a fixed point (no starts, no queue mutations) is reached.
type Context struct {
	Now       int64
	Machine   *machine.Machine
	Batch     *job.BatchQueue
	Dedicated *job.DedicatedQueue
	Active    *job.ActiveList

	// StartFn allocates the machine, moves the job to the active list and
	// schedules its completion; it returns false when the machine cannot
	// place the job (possible only under contiguous allocation, where
	// fragmentation can defeat a capacity-feasible request). Provided by
	// the engine.
	StartFn func(*job.Job) bool

	// Progress records whether this cycle changed state (started a job or
	// moved a dedicated job); the engine loops until a cycle makes none.
	Progress bool
	// Starts counts jobs started in this cycle.
	Starts int

	// win is Window's reusable scratch buffer. Each Window call overwrites
	// it; callers consume the returned slice before requesting another
	// window, so one buffer per context suffices.
	win []*job.Job
}

// Free returns m, the current number of unallocated processors.
func (c *Context) Free() int { return c.Machine.Free() }

// M returns the machine size the scheduler may plan against: the total
// minus any capacity lost to failed node groups. With no faults injected
// it is the paper's M.
func (c *Context) M() int { return c.Machine.Available() }

// Fits reports whether a job of the given size is placeable right now —
// capacity on scatter machines, a free contiguous run on contiguous ones.
func (c *Context) Fits(size int) bool { return c.Machine.Fits(size) }

// Start dispatches j and removes it from the batch queue. It returns false
// (leaving the job queued) if the machine could not place it.
func (c *Context) Start(j *job.Job) bool {
	if !c.StartFn(j) {
		return false
	}
	c.Batch.Remove(j)
	c.Progress = true
	c.Starts++
	return true
}

// Touch marks queue-shape progress that is not a start (e.g. a dedicated
// job moved to the batch queue) so the engine keeps cycling.
func (c *Context) Touch() { c.Progress = true }

// Scheduler is a scheduling policy. Schedule inspects the context and starts
// zero or more jobs. It must be idempotent at a fixed point: when it can
// start nothing, a repeated call must also start nothing.
type Scheduler interface {
	// Name returns the algorithm name as used in the paper's Table III
	// (e.g. "EASY", "LOS-D", "Delayed-LOS", "Hybrid-LOS").
	Name() string
	// Heterogeneous reports whether the policy manages the dedicated queue.
	// The engine refuses to run a heterogeneous workload on a policy that
	// does not.
	Heterogeneous() bool
	Schedule(ctx *Context)
}

// Snapshotter is the optional state-capture extension of Scheduler, the
// policy half of the engine's session snapshot/restore. A policy that
// carries logical cross-cycle state (anything beyond its configuration and
// per-job fields, which the engine snapshots itself) implements it so a
// restored session resumes with the exact decision state of the captured
// run. The contract:
//
//   - SnapshotState returns a self-contained, self-versioned encoding of
//     the policy's logical state. Pure caches and scratch buffers (the DP
//     cycle memo, reusable selection slices) must be EXCLUDED: they are
//     required to be behaviour-neutral, so a restored policy rebuilds them
//     cold. The encoding must survive a byte-for-byte round trip through
//     any transport (the engine stores it opaquely).
//   - RestoreState reinstates state captured by SnapshotState on a freshly
//     constructed policy of the same type and configuration, and rejects
//     encodings it does not recognize.
//
// Logically stateless policies (FCFS, EASY, CONS, and the LOS family)
// simply do not implement the interface and round-trip for free: their
// only cross-cycle state — the behaviour-neutral Scratch memo, and the
// delta-maintained caches of Stateful policies, which ResetDeltas
// invalidates on restore — is rebuilt cold.
type Snapshotter interface {
	Scheduler
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// Freeze is a reservation constraint pair (freeze end time, freeze end
// capacity) — the paper's (fret, frec), the LOS paper's shadow time and
// extra capacity. A job started now that would still be running at Time
// consumes Capacity; jobs that finish strictly before Time are
// unconstrained by it.
type Freeze struct {
	Time     int64
	Capacity int
}

// Allows reports whether starting j at now respects the freeze.
func (f *Freeze) Allows(now int64, j *job.Job) bool {
	if f == nil {
		return true
	}
	if now+j.Dur < f.Time {
		return true
	}
	return j.Size <= f.Capacity
}

// Commit accounts for starting j at now: if it runs into the freeze window
// it consumes freeze capacity.
func (f *Freeze) Commit(now int64, j *job.Job) {
	if f == nil {
		return
	}
	if now+j.Dur >= f.Time {
		f.Capacity -= j.Size
	}
}

// MoveDueDedicated implements Move_Dedicated_Head_To_Batch_Head (Algorithm
// 3) for the head of the dedicated queue if its requested start time has
// been reached: the job is removed from W^d and pushed onto the head of W^b
// with its skip count forced to cs so the batch scheduler starts it at the
// first opportunity. It returns true if a job was moved.
func MoveDueDedicated(ctx *Context, cs int) bool {
	h := ctx.Dedicated.Head()
	if h == nil || h.ReqStart > ctx.Now {
		return false
	}
	ctx.Dedicated.PopHead()
	h.SCount = cs
	h.Rigid = true
	ctx.Batch.PushFront(h)
	ctx.Touch()
	return true
}

// DedicatedFreeze computes the freeze pair (fret_d, frec_d) protecting the
// earliest pending dedicated reservation, per Algorithm 2 lines 8-30.
//
// When every dedicated job sharing the head's requested start time fits in
// the capacity the machine will have at that time (given currently running
// jobs), the freeze end time is the requested start itself and the freeze
// capacity is what remains after those dedicated jobs are placed; onTime is
// true. Otherwise the dedicated jobs will inevitably start late: the freeze
// moves to the completion of the s-th running job whose release makes the
// dedicated demand fit, and onTime is false.
//
// Precondition: the dedicated queue is non-empty and its head's start time
// is in the future (ctx.Now < head.ReqStart).
func DedicatedFreeze(ctx *Context) (fz Freeze, onTime bool) {
	head := ctx.Dedicated.Head()
	if head == nil {
		panic("sched: DedicatedFreeze with empty dedicated queue")
	}
	now := ctx.Now
	m := ctx.Free()
	M := ctx.M()
	active := ctx.Active.Jobs()

	// Lines 9-15: capacity available at the requested start time,
	// considering only running jobs.
	fret := head.ReqStart
	frec := M
	if last := ctx.Active.Last(); last != nil && fret <= last.EndTime {
		// Find s: first running job still holding processors at fret.
		stillRunning := 0
		for _, a := range active {
			if a.EndTime >= fret {
				stillRunning += a.Size
			}
		}
		frec = M - stillRunning
	}

	// Lines 16-22: do all same-start dedicated jobs fit at fret?
	tot := ctx.Dedicated.TotalAtHeadStart()
	if tot <= frec {
		return Freeze{Time: fret, Capacity: frec - tot}, true
	}

	// Lines 24-30: insufficient capacity at the requested start; the
	// dedicated demand can only be placed once enough running jobs drain.
	cum := m
	for _, a := range active {
		cum += a.Size
		if tot <= cum {
			return Freeze{Time: now + a.Residual(now), Capacity: cum - tot}, false
		}
	}
	// tot exceeds even the whole machine (several same-start dedicated
	// jobs): freeze to the last completion with zero spare capacity. The
	// paper's pseudocode does not reach this case; clamping keeps the
	// invariant frec >= 0.
	fz = Freeze{Time: now, Capacity: 0}
	if last := ctx.Active.Last(); last != nil {
		fz.Time = last.EndTime
	}
	return fz, false
}

// WaitingWindow returns the first `lookahead` batch-queued jobs whose size
// fits within capacity m, in queue order. lookahead <= 0 means no limit.
// This is the candidate set handed to the dynamic programs; limiting it to
// 50 jobs is the LOS paper's complexity containment.
func WaitingWindow(q *job.BatchQueue, m, lookahead int) []*job.Job {
	jobs := q.Jobs()
	out := make([]*job.Job, 0, minInt(len(jobs), 8))
	for _, j := range jobs {
		if lookahead > 0 && len(out) >= lookahead {
			break
		}
		if j.Size <= m {
			out = append(out, j)
		}
	}
	return out
}

// Window returns the DP candidate set at this instant: the first
// `lookahead` queued jobs that fit capacity m AND are individually
// placeable on the machine right now (identical to WaitingWindow on
// scatter machines; on contiguous machines, fragmentation-blocked jobs are
// excluded so the packing programs do not select unplaceable work).
// The returned slice is valid only until the next Window call on this
// context.
func (c *Context) Window(m, lookahead int) []*job.Job {
	out := c.win[:0]
	for _, j := range c.Batch.Jobs() {
		if lookahead > 0 && len(out) >= lookahead {
			break
		}
		if j.Size <= m && c.Fits(j.Size) {
			out = append(out, j)
		}
	}
	c.win = out
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Describe renders a one-line summary of the context, for debug traces.
func Describe(ctx *Context) string {
	return fmt.Sprintf("t=%d free=%d/%d waitB=%d waitD=%d active=%d",
		ctx.Now, ctx.Free(), ctx.M(), ctx.Batch.Len(), ctx.Dedicated.Len(), ctx.Active.Len())
}
