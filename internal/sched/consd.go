package sched

import "elastisched/internal/job"

// ConservativeD extends conservative backfilling to heterogeneous
// workloads (an extra baseline beyond the paper's EASY-D/LOS-D): every
// pending dedicated job holds a hard reservation at its requested start
// time in the capacity profile, and every batch job receives its earliest
// reservation around those; nothing may delay anything that reserved
// earlier.
type ConservativeD struct{}

// Name implements Scheduler.
func (ConservativeD) Name() string { return "CONS-D" }

// Heterogeneous implements Scheduler.
func (ConservativeD) Heterogeneous() bool { return true }

// Schedule moves due dedicated jobs to the queue head, then runs the
// conservative pass with dedicated reservations pinned in the profile.
func (ConservativeD) Schedule(ctx *Context) {
	if MoveDueDedicated(ctx, 0) {
		return
	}
	prof := NewProfile(ctx.Now, ctx.M(), ctx.Active)
	// Pin the future dedicated demand. A dedicated job whose slot is
	// already infeasible (overlapping demand beyond the machine) degrades
	// to its earliest feasible start, mirroring the unavoidable delay of
	// Algorithm 2 lines 24-30.
	for _, d := range ctx.Dedicated.Jobs() {
		at := d.ReqStart
		if !prof.CanPlace(at, d.Dur, d.Size) {
			at = prof.EarliestFit(at, d.Dur, d.Size)
		}
		prof.Reserve(at, at+d.Dur, d.Size)
	}
	queue := append([]*job.Job(nil), ctx.Batch.Jobs()...)
	for _, j := range queue {
		at := prof.EarliestFit(ctx.Now, j.Dur, j.Size)
		prof.Reserve(at, at+j.Dur, j.Size)
		if at == ctx.Now {
			ctx.Start(j)
		}
	}
}
