package sched

// ConservativeD extends conservative backfilling to heterogeneous
// workloads (an extra baseline beyond the paper's EASY-D/LOS-D): every
// pending dedicated job holds a hard reservation at its requested start
// time in the capacity profile, and every batch job receives its earliest
// reservation around those; nothing may delay anything that reserved
// earlier.
//
// The zero value is ready to use. Like Conservative, the policy carries a
// persistent delta-maintained capacity base; a fresh instance is required
// per run.
type ConservativeD struct {
	consCore
}

// Name implements Scheduler.
func (*ConservativeD) Name() string { return "CONS-D" }

// Heterogeneous implements Scheduler.
func (*ConservativeD) Heterogeneous() bool { return true }

// Schedule moves due dedicated jobs to the queue head, then runs the
// conservative pass with dedicated reservations pinned in the profile.
func (s *ConservativeD) Schedule(ctx *Context) {
	if MoveDueDedicated(ctx, 0) {
		// The queue changed shape under the pass's feet; the fixed-point
		// re-invocation must run in full.
		s.invalidate()
		return
	}
	s.pass(ctx, true)
}
