package sched

import (
	"testing"

	"elastisched/internal/job"
)

func TestFreezeNilAllowsEverything(t *testing.T) {
	var f *Freeze
	j := &job.Job{ID: 1, Size: 320, Dur: 1000}
	if !f.Allows(0, j) {
		t.Error("nil freeze must allow")
	}
	f.Commit(0, j) // must not panic
}

func TestFreezeAllowsShortJob(t *testing.T) {
	f := &Freeze{Time: 100, Capacity: 0}
	short := &job.Job{ID: 1, Size: 320, Dur: 50} // ends at 50 < 100
	if !f.Allows(0, short) {
		t.Error("job ending before freeze must be allowed")
	}
	boundary := &job.Job{ID: 2, Size: 320, Dur: 100} // ends exactly at 100
	if f.Allows(0, boundary) {
		t.Error("job ending exactly at freeze time consumes capacity (paper's strict <)")
	}
}

func TestFreezeAllowsWithinCapacity(t *testing.T) {
	f := &Freeze{Time: 100, Capacity: 64}
	long := &job.Job{ID: 1, Size: 64, Dur: 500}
	if !f.Allows(0, long) {
		t.Error("long job within freeze capacity must be allowed")
	}
	f.Commit(0, long)
	if f.Capacity != 0 {
		t.Errorf("capacity after commit = %d, want 0", f.Capacity)
	}
	next := &job.Job{ID: 2, Size: 32, Dur: 500}
	if f.Allows(0, next) {
		t.Error("freeze capacity exhausted; long job must be rejected")
	}
}

func TestFreezeCommitShortJobFree(t *testing.T) {
	f := &Freeze{Time: 100, Capacity: 64}
	short := &job.Job{ID: 1, Size: 320, Dur: 50}
	f.Commit(10, short) // ends at 60 < 100
	if f.Capacity != 64 {
		t.Error("short job must not consume freeze capacity")
	}
}

func TestMoveDueDedicated(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addBatch(1, 32, 100)
	d := h.addDed(2, 64, 100, 50)
	h.now = 50
	c := h.ctx()
	if !MoveDueDedicated(c, 7) {
		t.Fatal("due dedicated job not moved")
	}
	if h.ded.Len() != 0 {
		t.Error("dedicated queue should be empty")
	}
	if h.batch.Head() != d {
		t.Error("moved job should be batch head")
	}
	if d.SCount != 7 || !d.Rigid {
		t.Errorf("moved job scount=%d rigid=%v, want 7, true", d.SCount, d.Rigid)
	}
	if !c.Progress {
		t.Error("move must mark progress")
	}
}

func TestMoveDueDedicatedNotDue(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addDed(1, 64, 100, 500)
	h.now = 100
	if MoveDueDedicated(h.ctx(), 7) {
		t.Error("future dedicated job moved")
	}
}

func TestMoveDueDedicatedEmpty(t *testing.T) {
	h := newHarness(t, 320, 32)
	if MoveDueDedicated(h.ctx(), 7) {
		t.Error("move on empty dedicated queue")
	}
}

func TestDedicatedFreezeAllFit(t *testing.T) {
	// Machine 320; one job of 128 runs until t=200. Dedicated job of 96
	// wants t=100: at t=100 the running job still holds 128, so capacity
	// is 192; 96 fits; freeze = (100, 192-96).
	h := newHarness(t, 320, 32)
	h.addRunning(1, 128, 200)
	h.addDed(2, 96, 100, 100)
	h.now = 0
	fz, onTime := DedicatedFreeze(h.ctx())
	if !onTime {
		t.Fatal("should be on time")
	}
	if fz.Time != 100 || fz.Capacity != 96 {
		t.Errorf("freeze = %+v, want {100 96}", fz)
	}
}

func TestDedicatedFreezeAfterAllRunning(t *testing.T) {
	// Dedicated start after every running job ends: full machine available.
	h := newHarness(t, 320, 32)
	h.addRunning(1, 128, 200)
	h.addDed(2, 96, 100, 300)
	fz, onTime := DedicatedFreeze(h.ctx())
	if !onTime || fz.Time != 300 || fz.Capacity != 320-96 {
		t.Errorf("freeze = %+v onTime=%v, want {300 224} true", fz, onTime)
	}
}

func TestDedicatedFreezeBoundaryRelease(t *testing.T) {
	// A job ending exactly at the requested start still counts as holding
	// its processors there (the paper's a_s.res >= start - t).
	h := newHarness(t, 320, 32)
	h.addRunning(1, 320, 100)
	h.addDed(2, 32, 10, 100)
	fz, onTime := DedicatedFreeze(h.ctx())
	if onTime {
		t.Fatal("machine fully held at start; cannot be on time")
	}
	// Insufficient-capacity branch: freeze moves to the release making the
	// demand fit: t + a_1.res = 100, capacity 320-32.
	if fz.Time != 100 || fz.Capacity != 288 {
		t.Errorf("freeze = %+v, want {100 288}", fz)
	}
}

func TestDedicatedFreezeInsufficientCapacity(t *testing.T) {
	// Two running jobs: 160 ends at 50, 160 ends at 150. Dedicated 320 at
	// t=100 cannot fit there (second job still running): the freeze slips
	// to t=150 where the whole machine frees.
	h := newHarness(t, 320, 32)
	h.addRunning(1, 160, 50)
	h.addRunning(2, 160, 150)
	h.addDed(3, 320, 10, 100)
	fz, onTime := DedicatedFreeze(h.ctx())
	if onTime {
		t.Fatal("320-proc job cannot start on time at t=100")
	}
	if fz.Time != 150 || fz.Capacity != 0 {
		t.Errorf("freeze = %+v, want {150 0}", fz)
	}
}

func TestDedicatedFreezeSameStartAggregation(t *testing.T) {
	// Two dedicated jobs share the start; their combined demand counts.
	h := newHarness(t, 320, 32)
	h.addDed(1, 160, 10, 100)
	h.addDed(2, 128, 10, 100)
	fz, onTime := DedicatedFreeze(h.ctx())
	if !onTime || fz.Time != 100 || fz.Capacity != 32 {
		t.Errorf("freeze = %+v onTime=%v, want {100 32} true", fz, onTime)
	}
}

func TestDedicatedFreezeDemandExceedsMachine(t *testing.T) {
	// Combined same-start demand beyond M: clamped, never negative.
	h := newHarness(t, 320, 32)
	h.addRunning(1, 64, 500)
	h.addDed(2, 320, 10, 100)
	h.addDed(3, 320, 10, 100)
	fz, onTime := DedicatedFreeze(h.ctx())
	if onTime {
		t.Fatal("640 procs can never fit")
	}
	if fz.Capacity < 0 {
		t.Errorf("freeze capacity negative: %+v", fz)
	}
}

func TestDedicatedFreezeEmptyPanics(t *testing.T) {
	h := newHarness(t, 320, 32)
	defer func() {
		if recover() == nil {
			t.Error("DedicatedFreeze with empty queue did not panic")
		}
	}()
	DedicatedFreeze(h.ctx())
}

func TestWaitingWindow(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addBatch(1, 64, 10)
	h.addBatch(2, 320, 10) // too big for m=128
	h.addBatch(3, 96, 10)
	h.addBatch(4, 128, 10)
	w := WaitingWindow(h.batch, 128, 0)
	if len(w) != 3 || w[0].ID != 1 || w[1].ID != 3 || w[2].ID != 4 {
		t.Fatalf("window wrong: %v", w)
	}
	w = WaitingWindow(h.batch, 128, 2)
	if len(w) != 2 || w[1].ID != 3 {
		t.Fatalf("lookahead cap wrong: %v", w)
	}
}

func TestContextStartTracksProgress(t *testing.T) {
	h := newHarness(t, 320, 32)
	j := h.addBatch(1, 64, 10)
	c := h.ctx()
	if c.Progress || c.Starts != 0 {
		t.Fatal("fresh context dirty")
	}
	c.Start(j)
	if !c.Progress || c.Starts != 1 {
		t.Error("Start did not record progress")
	}
	if h.batch.Len() != 0 || h.active.Len() != 1 {
		t.Error("Start did not move the job")
	}
	if c.Free() != 320-64 {
		t.Errorf("free = %d, want 256", c.Free())
	}
}

func TestDescribe(t *testing.T) {
	h := newHarness(t, 320, 32)
	if Describe(h.ctx()) == "" {
		t.Error("empty description")
	}
}
