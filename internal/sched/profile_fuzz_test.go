package sched

import (
	"math/rand"
	"testing"

	"elastisched/internal/job"
)

// profileOpsMachine drives one Profile through an interleaved sequence of
// Reserve / Release / retime / Advance / fitReserve operations decoded from
// a byte stream, cross-checking it after every mutation against a profile
// rebuilt from scratch out of the surviving reservations — the exact
// invariant the delta-maintained scheduler state relies on: applying the
// inverse deltas must leave the profile indistinguishable from a rebuild.
//
// The harness tracks the outstanding reservations itself and only issues
// operations that keep free capacity within [0, m], mirroring the engine
// (which never releases capacity it did not reserve and never reserves past
// what EarliestFit approved).
type profileOpsMachine struct {
	t    *testing.T
	m    int
	now  int64
	p    Profile
	live [][3]int64 // from, to, size of outstanding reservations
}

func (pm *profileOpsMachine) rebuilt() *Profile {
	fresh := NewProfile(pm.now, pm.m, job.NewActiveList())
	for _, x := range pm.live {
		from := x[0]
		if from < pm.now {
			from = pm.now
		}
		fresh.Reserve(from, x[1], int(x[2]))
	}
	return fresh
}

// check compares the delta-maintained profile against the rebuilt reference
// at every boundary either profile knows about, plus midpoints.
func (pm *profileOpsMachine) check() {
	fresh := pm.rebuilt()
	probe := func(t int64) {
		if t < pm.now {
			return
		}
		if got, want := pm.p.FreeAt(t), fresh.FreeAt(t); got != want {
			pm.t.Fatalf("now=%d: FreeAt(%d) = %d, rebuilt reference %d (live %v)",
				pm.now, t, got, want, pm.live)
		}
	}
	for _, ts := range [][]int64{pm.p.times[pm.p.head:], fresh.times[fresh.head:]} {
		for _, bt := range ts {
			probe(bt)
			probe(bt + 1)
		}
	}
}

// step decodes and executes one operation. Returns false when the stream is
// exhausted.
func (pm *profileOpsMachine) step(data []byte, i *int) bool {
	if *i+4 > len(data) {
		return false
	}
	op := data[*i] % 6
	a := int64(data[*i+1])
	b := 1 + int64(data[*i+2])%120
	c := 1 + int(data[*i+3])%pm.m
	*i += 4

	switch op {
	case 0: // Reserve at an approved position
		from := pm.now + a
		if pm.p.CanPlace(from, b, c) {
			pm.p.Reserve(from, from+b, c)
			pm.live = append(pm.live, [3]int64{from, from + b, int64(c)})
		}
	case 1: // fitReserve vs EarliestFit-then-Reserve on the reference
		fresh := pm.rebuilt()
		want := fresh.EarliestFit(pm.now+a, b, c)
		got := pm.p.fitReserve(pm.now+a, b, c)
		if got != want {
			pm.t.Fatalf("now=%d: fitReserve(%d,%d,%d) = %d, reference EarliestFit %d (live %v)",
				pm.now, pm.now+a, b, c, got, want, pm.live)
		}
		pm.live = append(pm.live, [3]int64{got, got + b, int64(c)})
	case 2: // Release an outstanding reservation (the engine's job-finish delta)
		if len(pm.live) == 0 {
			return true
		}
		k := int(a) % len(pm.live)
		x := pm.live[k]
		from := x[0]
		if from < pm.now {
			from = pm.now
		}
		pm.p.Release(from, x[1], int(x[2]))
		pm.live = append(pm.live[:k], pm.live[k+1:]...)
	case 3: // retime an outstanding reservation (the ECC extend/reduce delta)
		if len(pm.live) == 0 {
			return true
		}
		k := int(a) % len(pm.live)
		x := &pm.live[k]
		newTo := pm.now + b
		switch oldTo := x[1]; {
		case newTo > oldTo:
			if pm.p.CanPlace(oldTo, newTo-oldTo, int(x[2])) {
				pm.p.Reserve(oldTo, newTo, int(x[2]))
				x[1] = newTo
			}
		case newTo < oldTo:
			from := newTo
			if from < x[0] {
				from = x[0] // shrinking below the start empties the reservation
			}
			if from < pm.now {
				from = pm.now
			}
			pm.p.Release(from, oldTo, int(x[2]))
			x[1] = newTo
		}
		if x[1] <= pm.now || x[1] <= x[0] {
			pm.live = append(pm.live[:k], pm.live[k+1:]...)
		}
	case 4: // Advance time
		pm.now += a % 64
		pm.p.Advance(pm.now)
		keep := pm.live[:0]
		for _, x := range pm.live {
			if x[1] > pm.now {
				keep = append(keep, x)
			}
		}
		pm.live = keep
	case 5: // pure queries against the rebuilt reference
		fresh := pm.rebuilt()
		from, dur := pm.now+a, b
		if got, want := pm.p.CanPlace(from, dur, c), fresh.CanPlace(from, dur, c); got != want {
			pm.t.Fatalf("now=%d: CanPlace(%d,%d,%d) = %v, rebuilt reference %v (live %v)",
				pm.now, from, dur, c, got, want, pm.live)
		}
		if got, want := pm.p.EarliestFit(from, dur, c), fresh.EarliestFit(from, dur, c); got != want {
			pm.t.Fatalf("now=%d: EarliestFit(%d,%d,%d) = %d, rebuilt reference %d (live %v)",
				pm.now, from, dur, c, got, want, pm.live)
		}
		return true // no mutation: skip the full cross-check
	}
	pm.check()
	return true
}

func runProfileOps(t *testing.T, m int, data []byte) {
	pm := &profileOpsMachine{t: t, m: m}
	pm.p.Rebuild(0, m, job.NewActiveList())
	for i := 0; pm.step(data, &i); {
	}
}

// FuzzProfileOps mutates a profile through arbitrary interleavings of the
// persistent-profile operations and requires it to match a profile rebuilt
// from scratch after every mutation.
func FuzzProfileOps(f *testing.F) {
	f.Add([]byte{0, 10, 50, 64, 1, 0, 30, 64, 2, 0, 0, 0, 4, 20, 0, 0})
	f.Add([]byte{1, 0, 100, 200, 3, 0, 10, 0, 4, 63, 0, 0, 5, 5, 40, 100})
	f.Fuzz(func(t *testing.T, data []byte) {
		runProfileOps(t, 320, data)
	})
}

// TestProfileDeltaMaintenanceMatchesRebuild drives the same state machine
// from seeded pseudo-random streams, so the rebuild equivalence is checked
// on every plain `go test` run, not only under the fuzzer.
func TestProfileDeltaMaintenanceMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 400; trial++ {
		data := make([]byte, 160)
		r.Read(data)
		m := 32 * (1 + r.Intn(10))
		runProfileOps(t, m, data)
	}
}
