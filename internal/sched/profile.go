package sched

import (
	"fmt"
	"sort"

	"elastisched/internal/job"
)

// Profile is a step function of free machine capacity over future time,
// built from running jobs and extended with reservations. Conservative
// backfilling uses it to give every waiting job a reservation; it is also
// handy for tests that need to reason about future capacity.
//
// The structure is persistent: it is designed to survive across scheduling
// cycles rather than be rebuilt per cycle. Advance drops expired leading
// steps in O(1) by moving a head offset, Release is the exact inverse of
// Reserve so job-completion and ECC extend/reduce deltas can be applied
// incrementally, and Rebuild/CopyFrom reuse the retained backing arrays so
// a per-cycle working copy allocates nothing in steady state. The dead
// prefix left behind by Advance doubles as gap slack: boundary insertions
// in the front half of the step array shift the short prefix left into it
// instead of shifting the whole tail right.
//
// Invariants: times[head:] is strictly ascending; free[i] applies on
// [times[i], times[i+1]) and the final segment is unbounded; the final
// segment's free capacity is always m (Reserve and Release operate on
// bounded intervals only), so every job fits eventually.
type Profile struct {
	m     int
	head  int     // first live step; times[head] is the horizon start
	times []int64 // step boundaries, ascending from head; dead prefix before
	free  []int   // free[i] applies on [times[i], times[i+1])
}

// NewProfile builds the free-capacity profile implied by the running jobs:
// capacity steps up at each kill-by time.
func NewProfile(now int64, m int, active *job.ActiveList) *Profile {
	p := &Profile{}
	p.Rebuild(now, m, active)
	return p
}

// Rebuild resets the profile to the free capacity implied by the running
// jobs, reusing the existing backing arrays. It is the cold path of the
// persistent profile: delta-maintained users call it once (and again after
// restore-from-snapshot), per-cycle users call it instead of NewProfile to
// avoid reallocating the step arrays.
func (p *Profile) Rebuild(now int64, m int, active *job.ActiveList) {
	jobs := active.Jobs()
	if cap(p.times) < len(jobs)+1 {
		p.times = make([]int64, 0, 2*len(jobs)+8)
		p.free = make([]int, 0, 2*len(jobs)+8)
	}
	p.m = m
	p.head = 0
	p.times = append(p.times[:0], now)
	p.free = append(p.free[:0], m)
	for _, a := range jobs {
		p.Reserve(now, a.EndTime, a.Size)
	}
}

// CopyFrom makes p an exact copy of src's live window, reusing p's backing
// arrays. The copy lands at offset zero, so src's dead prefix is not
// inherited.
func (p *Profile) CopyFrom(src *Profile) {
	p.m = src.m
	p.head = 0
	p.times = append(p.times[:0], src.times[src.head:]...)
	p.free = append(p.free[:0], src.free[src.head:]...)
}

// Advance drops leading steps that have fully expired before now by moving
// the head offset — no copying, no allocation. The step containing now
// stays live even though its recorded boundary predates now; profile
// queries always ask about times at or after now, so the stale boundary is
// unobservable. The dead prefix is reclaimed (compacted away) only once it
// dominates the array, keeping the amortized cost O(1) per dropped step.
func (p *Profile) Advance(now int64) {
	for p.head+1 < len(p.times) && p.times[p.head+1] <= now {
		p.head++
	}
	if p.head > 32 && p.head > len(p.times)/2 {
		n := copy(p.times, p.times[p.head:])
		copy(p.free, p.free[p.head:])
		p.times = p.times[:n]
		p.free = p.free[:n]
		p.head = 0
	}
}

// Horizon returns the profile's first live boundary. Queries before the
// horizon are clamped to it.
func (p *Profile) Horizon() int64 { return p.times[p.head] }

// Len returns the number of live steps.
func (p *Profile) Len() int { return len(p.times) - p.head }

// FreeAt returns the free capacity at time t (t >= horizon start).
func (p *Profile) FreeAt(t int64) int {
	live := p.times[p.head:]
	i := sort.Search(len(live), func(i int) bool { return live[i] > t }) - 1
	if i < 0 {
		return p.m
	}
	return p.free[p.head+i]
}

// Reserve subtracts size processors over [from, to). It panics if the
// reservation overcommits the machine — callers must check with CanPlace
// or EarliestFit first. Only the affected step range is touched: the
// boundaries are ascending, so the range is located by binary search
// instead of scanning every step.
func (p *Profile) Reserve(from, to int64, size int) {
	if from >= to {
		return
	}
	p.apply(from, to, -size)
}

// Release is the exact inverse of Reserve: it returns size processors over
// [from, to). It panics if the release would raise free capacity above the
// machine size — releasing capacity that was never reserved is always a
// caller bug. Releasing may leave redundant boundaries (adjacent steps with
// equal free capacity); they are harmless to every query and get dropped by
// Advance/Rebuild like any other boundary.
func (p *Profile) Release(from, to int64, size int) {
	if from >= to {
		return
	}
	p.apply(from, to, size)
}

func (p *Profile) apply(from, to int64, delta int) {
	lo := p.split(from, p.head)
	h := p.head
	hi := p.split(to, lo)
	if p.head < h {
		// The second split shifted the prefix (including lo) one slot left.
		lo--
	}
	for i := lo; i < hi; i++ {
		p.free[i] += delta
		if p.free[i] < 0 {
			panic(fmt.Sprintf("sched: profile overcommitted at t=%d (%d free)", p.times[i], p.free[i]))
		}
		if p.free[i] > p.m {
			panic(fmt.Sprintf("sched: profile over-released at t=%d (%d free of %d)", p.times[i], p.free[i], p.m))
		}
	}
}

// split ensures t is a step boundary and returns the absolute index of the
// first boundary at or after t (t's own boundary, or the horizon when t
// precedes it). The binary search starts at absolute index loHint — apply
// passes the from-boundary's index when splitting to, so each Reserve or
// Release costs one full-window search, not three.
//
// When an insertion is needed, the cheaper side is shifted: if Advance
// left a dead prefix and t falls in the front half of the live window, the
// short prefix slides one slot left into it (head moves down, earlier
// indices shift by one); otherwise the tail shifts right. Reservations
// made at or near the current instant — the common case in a persistent
// profile whose horizon trails now — therefore do not pay for the whole
// tail.
func (p *Profile) split(t int64, loHint int) int {
	// Exact-hint fast path: callers that walked the profile (fitReserve's
	// anchor sweep) pass the segment t falls in, skipping the search.
	if lt := p.times[loHint]; lt == t {
		return loHint
	} else if lt < t && loHint+1 < len(p.times) && t == p.times[loHint+1] {
		return loHint + 1
	} else if lt < t && (loHint+1 == len(p.times) || t < p.times[loHint+1]) {
		return p.insert(t, loHint+1)
	}
	sub := p.times[loHint:]
	k := loHint + sort.Search(len(sub), func(i int) bool { return sub[i] >= t })
	if k < len(p.times) && p.times[k] == t {
		return k
	}
	if k == p.head {
		// t precedes the horizon: capacity before the horizon is not
		// tracked; clamp to the horizon start.
		return k
	}
	return p.insert(t, k)
}

// insert adds boundary t at index k (p.times[k-1] < t, and t < p.times[k]
// when k is not the end), shifting the cheaper side, and returns t's index
// after the shift. The new step inherits the free capacity of the segment
// it splits.
func (p *Profile) insert(t int64, k int) int {
	if p.head > 0 && k-p.head <= (len(p.times)-p.head)/2 {
		copy(p.times[p.head-1:], p.times[p.head:k])
		copy(p.free[p.head-1:], p.free[p.head:k])
		p.head--
		p.times[k-1] = t
		p.free[k-1] = p.free[k-2]
		return k - 1
	}
	p.times = append(p.times, 0)
	copy(p.times[k+1:], p.times[k:])
	p.times[k] = t
	p.free = append(p.free, 0)
	copy(p.free[k+1:], p.free[k:])
	p.free[k] = p.free[k-1]
	return k
}

// CanPlace reports whether size processors are free over [from, from+dur).
// The first overlapping segment is located by binary search; only segments
// intersecting the interval are inspected.
func (p *Profile) CanPlace(from int64, dur int64, size int) bool {
	end := from + dur
	live := p.times[p.head:]
	// First segment whose end extends past from: the one before the first
	// boundary strictly greater than from (the final segment is unbounded).
	i := sort.Search(len(live), func(i int) bool { return live[i] > from }) - 1
	if i < 0 {
		i = 0
	}
	for k := p.head + i; k < len(p.times) && p.times[k] < end; k++ {
		if p.free[k] < size {
			return false
		}
	}
	return true
}

// EarliestFit returns the earliest time >= from at which a (size, dur) job
// fits. A single forward sweep maintains the earliest still-viable start
// (the anchor): a segment with too little capacity pushes the anchor past
// its end; once the feasible run starting at the anchor spans dur — or
// reaches the final, unbounded segment — the anchor is the answer. The
// minimal feasible start is always either `from` or the end of a blocking
// segment, so the sweep is exact; it costs O(live steps) where probing
// every boundary with CanPlace cost O(live steps^2).
func (p *Profile) EarliestFit(from int64, dur int64, size int) int64 {
	if size > p.m {
		panic(fmt.Sprintf("sched: job of size %d cannot ever fit machine %d", size, p.m))
	}
	start := p.head
	if p.head+1 < len(p.times) && p.times[p.head+1] <= from {
		// from is past the first segment; locate its segment. The common
		// caller (the conservative pass) asks at from == now, which Advance
		// keeps inside the first live segment — no search needed there.
		live := p.times[p.head:]
		i := sort.Search(len(live), func(i int) bool { return live[i] > from }) - 1
		start = p.head + i
	}
	anchor := from
	for k := start; k < len(p.times); k++ {
		if p.free[k] < size {
			// The final segment always has free == m >= size, so a blocking
			// segment always has a successor.
			anchor = p.times[k+1]
			continue
		}
		if k+1 == len(p.times) || p.times[k+1]-anchor >= dur {
			return anchor
		}
	}
	return anchor
}

// fitReserve is EarliestFit immediately followed by Reserve, fused: the
// anchor sweep already identifies the segment holding the start (aseg) and
// the segment holding the end (the one the sweep stops in), so both split
// calls hit the exact-hint fast path and the reservation costs no binary
// search. Behaviour is identical to
//
//	at := p.EarliestFit(from, dur, size); p.Reserve(at, at+dur, size)
//
// which the differential tests assert.
func (p *Profile) fitReserve(from, dur int64, size int) int64 {
	if size > p.m {
		panic(fmt.Sprintf("sched: job of size %d cannot ever fit machine %d", size, p.m))
	}
	start := p.head
	if p.head+1 < len(p.times) && p.times[p.head+1] <= from {
		live := p.times[p.head:]
		i := sort.Search(len(live), func(i int) bool { return live[i] > from }) - 1
		start = p.head + i
	}
	anchor, aseg := from, start
	k := start
	for ; k < len(p.times); k++ {
		if p.free[k] < size {
			anchor = p.times[k+1]
			aseg = k + 1
			continue
		}
		if k+1 == len(p.times) || p.times[k+1]-anchor >= dur {
			break
		}
	}
	if dur <= 0 {
		return anchor
	}
	// The run [anchor, anchor+dur) ends inside segment k (or exactly at its
	// end boundary): k is the first segment whose feasible run reaches dur,
	// so times[k] < anchor+dur <= times[k+1] (when k is not final).
	to := anchor + dur
	n0 := len(p.times)
	lo := p.split(anchor, aseg)
	if len(p.times) > n0 {
		k++ // right-shift insertion moved k's segment up one; a left-shift
		// insertion leaves indices at and after k unchanged
	}
	h1 := p.head
	hi := p.split(to, k)
	if p.head < h1 {
		lo-- // the second split shifted the prefix (including lo) one slot left
	}
	for i := lo; i < hi; i++ {
		p.free[i] -= size
		if p.free[i] < 0 {
			panic(fmt.Sprintf("sched: profile overcommitted at t=%d (%d free)", p.times[i], p.free[i]))
		}
	}
	return anchor
}
