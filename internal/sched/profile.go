package sched

import (
	"fmt"
	"sort"

	"elastisched/internal/job"
)

// Profile is a step function of free machine capacity over future time,
// built from running jobs and extended with reservations. Conservative
// backfilling uses it to give every waiting job a reservation; it is also
// handy for tests that need to reason about future capacity.
type Profile struct {
	m     int
	times []int64 // step boundaries, ascending; times[0] is the horizon start
	free  []int   // free[i] applies on [times[i], times[i+1])
}

// NewProfile builds the free-capacity profile implied by the running jobs:
// capacity steps up at each kill-by time. The step slices are pre-sized
// for the active set — CONS/CONS-D rebuild a profile over the full
// active+reservation set every cycle, so construction is a hot path.
func NewProfile(now int64, m int, active *job.ActiveList) *Profile {
	jobs := active.Jobs()
	p := &Profile{
		m:     m,
		times: append(make([]int64, 0, len(jobs)+1), now),
		free:  append(make([]int, 0, len(jobs)+1), m),
	}
	for _, a := range jobs {
		p.Reserve(now, a.EndTime, a.Size)
	}
	return p
}

// FreeAt returns the free capacity at time t (t >= horizon start).
func (p *Profile) FreeAt(t int64) int {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t }) - 1
	if i < 0 {
		return p.m
	}
	return p.free[i]
}

// Reserve subtracts size processors over [from, to). It panics if the
// reservation overcommits the machine — callers must check with CanPlace
// or EarliestFit first. Only the affected step range is touched: the
// boundaries are ascending, so the range is located by binary search
// instead of scanning every step.
func (p *Profile) Reserve(from, to int64, size int) {
	if from >= to {
		return
	}
	p.split(from)
	p.split(to)
	lo := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= from })
	for i := lo; i < len(p.times) && p.times[i] < to; i++ {
		p.free[i] -= size
		if p.free[i] < 0 {
			panic(fmt.Sprintf("sched: profile overcommitted at t=%d (%d free)", p.times[i], p.free[i]))
		}
	}
}

// split ensures t is a step boundary.
func (p *Profile) split(t int64) {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= t })
	if i < len(p.times) && p.times[i] == t {
		return
	}
	if i == 0 {
		// t precedes the horizon: capacity before the horizon is not
		// tracked; clamp to the horizon start.
		return
	}
	p.times = append(p.times, 0)
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.free = append(p.free, 0)
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = p.free[i-1]
}

// CanPlace reports whether size processors are free over [from, from+dur).
// The first overlapping segment is located by binary search; only segments
// intersecting the interval are inspected.
func (p *Profile) CanPlace(from int64, dur int64, size int) bool {
	end := from + dur
	// First segment whose end extends past from: the one before the first
	// boundary strictly greater than from (the final segment is unbounded).
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > from }) - 1
	if i < 0 {
		i = 0
	}
	for ; i < len(p.times) && p.times[i] < end; i++ {
		if p.free[i] < size {
			return false
		}
	}
	return true
}

// EarliestFit returns the earliest time >= from at which a (size, dur) job
// fits. Candidate starts are the step boundaries; the scan begins at the
// first boundary past from (binary search) and rejects a candidate start
// cheaply when its own segment is already too full, before probing the
// full interval with CanPlace.
func (p *Profile) EarliestFit(from int64, dur int64, size int) int64 {
	if size > p.m {
		panic(fmt.Sprintf("sched: job of size %d cannot ever fit machine %d", size, p.m))
	}
	if p.CanPlace(from, dur, size) {
		return from
	}
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > from })
	for ; i < len(p.times); i++ {
		if p.free[i] < size {
			continue // a start here fails in its own segment
		}
		if p.CanPlace(p.times[i], dur, size) {
			return p.times[i]
		}
	}
	// After the last boundary the machine is idle.
	return p.times[len(p.times)-1]
}

// Conservative is conservative backfilling: every waiting job gets a
// reservation at its earliest feasible start given all earlier jobs'
// reservations; a job starts now only if its reservation is now. Unlike
// EASY, no start may delay *any* earlier-arrived job.
type Conservative struct{}

// Name implements Scheduler.
func (Conservative) Name() string { return "CONS" }

// Heterogeneous implements Scheduler; conservative is batch-only here.
func (Conservative) Heterogeneous() bool { return false }

// Schedule rebuilds the reservation profile and starts every job whose
// earliest feasible start is the current time.
func (Conservative) Schedule(ctx *Context) {
	prof := NewProfile(ctx.Now, ctx.M(), ctx.Active)
	queue := append([]*job.Job(nil), ctx.Batch.Jobs()...)
	for _, j := range queue {
		at := prof.EarliestFit(ctx.Now, j.Dur, j.Size)
		prof.Reserve(at, at+j.Dur, j.Size)
		if at == ctx.Now {
			ctx.Start(j)
		}
	}
}
