package sched

import "elastisched/internal/job"

// EASY is aggressive backfilling (Mu'alem & Feitelson): jobs start in FIFO
// order while they fit; when the head blocks, a reservation (shadow time +
// extra capacity) is computed for it from the running jobs' residual times,
// and any later job may jump ahead provided it does not delay that
// reservation.
//
// With Ded set, EASY becomes the paper's EASY-D: dedicated jobs whose
// requested start time has been reached are moved to the head of the queue
// (where EASY's head priority starts them as soon as they fit), and batch
// starts additionally respect a freeze protecting the earliest pending
// dedicated reservation.
type EASY struct {
	// Ded enables the dedicated-queue appendage (EASY-D).
	Ded bool

	// deltaTracker makes EASY Stateful: its only cross-cycle state is the
	// settled flag, which lets the engine's fixed-point verification pass
	// (and any cycle whose deltas were all absorbed) return in O(1). EASY
	// needs no persistent profile — its shadow reservation is a single
	// (time, capacity) pair recomputed in O(active) when a pass does run.
	deltaTracker
}

// Name implements Scheduler.
func (e *EASY) Name() string {
	if e.Ded {
		return "EASY-D"
	}
	return "EASY"
}

// Heterogeneous implements Scheduler.
func (e *EASY) Heterogeneous() bool { return e.Ded }

// Schedule runs one EASY cycle. A completed pass that started *nothing*
// and rejected nothing settles: the shadow and dedicated freezes are pure
// functions of queue/active state, and Freeze.Allows only gets stricter as
// now advances, so re-running against unchanged state at any later instant
// still starts nothing — until the engine reports a delta the cycle is
// skipped outright. A pass that did start jobs must not settle: its starts
// change the active set, and the freezes recomputed from it on the
// engine's same-instant verification cycle can move later, admitting a
// candidate this pass rejected (observable with EASY-D, where a backfill
// can flip the dedicated freeze from the on-time to the drain branch).
func (e *EASY) Schedule(ctx *Context) {
	if e.canSkip(ctx) {
		return
	}
	if e.Ded {
		// Rigid jobs keep FIFO-of-due-time order at the queue head: move one
		// per cycle; the engine's fixed-point loop drains the rest.
		if MoveDueDedicated(ctx, 0) {
			e.settled = false
			return
		}
	}
	var dfz *Freeze
	if e.Ded && !ctx.Dedicated.Empty() {
		f, _ := DedicatedFreeze(ctx)
		dfz = &f
	}

	// Phase 1: start in order while the head fits and respects the freeze.
	clean, started := true, false
	for {
		h := ctx.Batch.Head()
		if h == nil {
			if clean && !started {
				e.settle()
			}
			return
		}
		if !ctx.Fits(h.Size) || !dfz.Allows(ctx.Now, h) {
			break
		}
		if !ctx.Start(h) {
			// The machine rejected a capacity-feasible start (contiguous
			// fragmentation); the settled-pass argument does not hold.
			clean = false
			break
		}
		started = true
		dfz.Commit(ctx.Now, h)
	}

	// Phase 2: the head is blocked; reserve for it and backfill behind it.
	head := ctx.Batch.Head()
	sfz := e.shadowFor(ctx, head, dfz)

	// Start removes the started job from the queue (order preserved, head
	// untouched), so after a start the next candidate has shifted into the
	// current index. Walking by index with that compensation visits each job
	// exactly once in queue order without snapshotting the queue.
	jobs := ctx.Batch.Jobs()
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		if !ctx.Fits(j.Size) {
			continue
		}
		if !sfz.Allows(ctx.Now, j) || !dfz.Allows(ctx.Now, j) {
			continue
		}
		if !ctx.Start(j) {
			clean = false
			continue
		}
		started = true
		sfz.Commit(ctx.Now, j)
		dfz.Commit(ctx.Now, j)
		jobs = ctx.Batch.Jobs()
		i--
	}
	if clean && !started {
		e.settle()
	}
}

// shadowFor computes the head job's reservation: the earliest time enough
// running jobs have drained for it to fit, plus the extra capacity left at
// that time. If the head is blocked only by the dedicated freeze (it fits
// the machine now), its start is pushed to the freeze end; the reservation
// then protects the dedicated demand plus the head.
func (e *EASY) shadowFor(ctx *Context, head *job.Job, dfz *Freeze) Freeze {
	free := ctx.Free()
	if head.Size <= free {
		// Blocked by the dedicated freeze only.
		extra := 0
		if dfz != nil && dfz.Capacity > head.Size {
			extra = dfz.Capacity - head.Size
		}
		t := ctx.Now
		if dfz != nil {
			t = dfz.Time
		}
		return Freeze{Time: t, Capacity: extra}
	}
	cum := free
	for _, a := range ctx.Active.Jobs() {
		cum += a.Size
		if head.Size <= cum {
			return Freeze{Time: a.EndTime, Capacity: cum - head.Size}
		}
	}
	// Head exceeds the machine even when idle; validation prevents this,
	// but stay safe: no backfilling past it.
	return Freeze{Time: ctx.Now, Capacity: 0}
}
