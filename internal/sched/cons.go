package sched

import (
	"math"

	"elastisched/internal/job"
)

// consCore is the persistent scheduling state shared by CONS and CONS-D.
//
// base is the delta-maintained half: a capacity profile of the running
// jobs only, kept current across cycles by the engine's Stateful feed
// (start/finish/retime/resize) instead of being rebuilt from the active
// list every cycle. cur is the reservation half: base plus every waiting
// job's reservation, built by a full pass into retained arrays (so a
// steady-state cycle allocates nothing) and — when the pass completes
// cleanly — kept alive across cycles.
//
// Two properties make the retained reservations reusable:
//
//   - Settled skip: a completed clean pass is a fixed point. Re-running it
//     against unchanged state, every started job's capacity is already in
//     the rebuilt base at exactly the reservation the pass granted, so
//     every remaining job receives the identical reservation and nothing
//     new starts. The engine's mandatory verification cycle — half of all
//     cycles — reduces to a flag check.
//
//   - Arrival increments: a batch arrival lands at the queue tail, and
//     conservative backfilling computes reservations in FIFO order, so the
//     newcomer cannot move any earlier job's reservation. If nothing else
//     changed, the earlier reservations are also time-stable: EarliestFit
//     from a later now returns the same start while every feasible window
//     it found still lies in the future. The arrival cycle therefore only
//     fits the new tail jobs into the retained profile — O(new jobs), not
//     O(queue). The guard is nextResAt, the earliest retained reservation:
//     once now reaches it, a retained job could be due to start (or its
//     reservation has gone stale), and the cycle falls back to a full
//     pass.
//
// Reservations are invalidated — never patched — by every other delta
// (completion, ECC retime/resize/rewrite, dedicated arrival): the next
// cycle rebuilds them from base, which IS patched in place.
type consCore struct {
	deltaTracker
	base      Profile    // running jobs only, delta-maintained
	baseValid bool       // base reflects the current running set
	cur       Profile    // base + reservations (retained while curValid)
	curValid  bool       // cur holds a complete settled reservation set
	nextResAt int64      // earliest retained reservation start
	pending   []*job.Job // batch arrivals since the settled pass
	sizeMin   []int      // suffix-min of queued sizes (early-stop scratch)
}

// invalidate drops the retained reservation set and forces the next cycle
// to run a full pass.
func (c *consCore) invalidate() {
	c.settled = false
	c.curValid = false
	c.pending = c.pending[:0]
}

// ResetDeltas implements Stateful; the rebuild-on-restore rule lives here.
func (c *consCore) ResetDeltas() {
	c.deltaTracker.ResetDeltas()
	c.baseValid = false
	c.curValid = false
	c.pending = c.pending[:0]
}

// JobStarted implements Stateful: the new running job claims capacity up
// to its kill-by time. Starts are always the policy's own, already
// reserved in cur by the pass that made them, so the reservation set
// stays valid.
func (c *consCore) JobStarted(j *job.Job, now int64) {
	if c.baseValid {
		c.base.Reserve(now, j.EndTime, j.Size)
	}
}

// JobArrived implements Stateful. A batch arrival under a valid retained
// reservation set is queued for incremental placement; anything else
// (dedicated arrivals move the pin set; arrivals into an already-invalid
// state add nothing to patch) forces a full pass.
func (c *consCore) JobArrived(j *job.Job, now int64) {
	if j.Class == job.Batch && c.live && c.settled && c.curValid {
		c.pending = append(c.pending, j)
		return
	}
	c.invalidate()
}

// JobFinished implements Stateful: the remainder of the job's capacity
// claim is handed back.
func (c *consCore) JobFinished(j *job.Job, now int64) {
	if c.baseValid {
		c.base.Release(now, j.EndTime, j.Size)
	}
	c.invalidate()
}

// JobRetimed implements Stateful: only the window between the old and new
// kill-by times changes hands.
func (c *consCore) JobRetimed(j *job.Job, oldEnd, now int64) {
	if c.baseValid {
		switch newEnd := j.EndTime; {
		case newEnd > oldEnd:
			c.base.Reserve(oldEnd, newEnd, j.Size)
		case newEnd < oldEnd:
			c.base.Release(newEnd, oldEnd, j.Size)
		}
	}
	c.invalidate()
}

// JobResized implements Stateful: the size delta applies from now to the
// job's (unchanged) kill-by time.
func (c *consCore) JobResized(j *job.Job, oldSize int, now int64) {
	if c.baseValid {
		if j.Size > oldSize {
			c.base.Reserve(now, j.EndTime, j.Size-oldSize)
		} else if j.Size < oldSize {
			c.base.Release(now, j.EndTime, oldSize-j.Size)
		}
	}
	c.invalidate()
}

// QueueChanged implements Stateful.
func (c *consCore) QueueChanged() { c.invalidate() }

// JobKilled implements Stateful: like a completion, the remainder of the
// victim's capacity claim is handed back — the failure that killed it
// additionally fires CapacityChanged, which rebuilds base anyway, but the
// release keeps base exact for any kill delivered on its own.
func (c *consCore) JobKilled(j *job.Job, now int64) {
	if c.baseValid {
		c.base.Release(now, j.EndTime, j.Size)
	}
	c.invalidate()
}

// CapacityChanged implements Stateful. The paper-mandated fallback: base
// was built against the old in-service machine size, and a shrink under
// existing reservations cannot be patched soundly (the profile has no
// notion of which future windows lose capacity), so both halves are
// dropped and the next cycle rebuilds from the Context.
func (c *consCore) CapacityChanged(now int64) {
	c.baseValid = false
	c.invalidate()
}

// pass runs one conservative scheduling cycle. With pinDedicated, pending
// dedicated jobs reserve first at their requested start times (degrading
// to earliest-feasible when infeasible, mirroring the unavoidable delay of
// Algorithm 2 lines 24-30).
func (c *consCore) pass(ctx *Context, pinDedicated bool) {
	if c.canSkip(ctx) {
		if len(c.pending) == 0 {
			return
		}
		if c.curValid && ctx.Now < c.nextResAt && !c.pendingOversized(ctx.M()) {
			c.passPending(ctx)
			return
		}
	}
	c.fullPass(ctx, pinDedicated)
}

// pendingOversized reports whether any pending arrival outsizes the
// in-service machine — possible only during a node-group outage, when a
// job validated against the full machine exceeds what is left Up. Such a
// job cannot take a reservation, so the incremental path is unusable.
func (c *consCore) pendingOversized(m int) bool {
	for _, j := range c.pending {
		if j.Size > m {
			return true
		}
	}
	return false
}

// passPending fits only the batch jobs that arrived since the settled
// pass into the retained reservation profile.
func (c *consCore) passPending(ctx *Context) {
	c.cur.Advance(ctx.Now)
	clean := true
	for _, j := range c.pending {
		at := c.cur.fitReserve(ctx.Now, j.Dur, j.Size)
		if at == ctx.Now {
			if !ctx.Start(j) {
				clean = false
			}
		} else if at < c.nextResAt {
			c.nextResAt = at
		}
	}
	c.pending = c.pending[:0]
	if !clean {
		// The machine refused a capacity-feasible start (fragmentation
		// under contiguous allocation); the profile cannot see placement
		// constraints, so neither fixed-point argument holds.
		c.invalidate()
	}
}

// fullPass rebuilds the reservation set: every waiting job gets a
// reservation at its earliest feasible start given all earlier jobs'
// reservations, and starts if that reservation is now.
func (c *consCore) fullPass(ctx *Context, pinDedicated bool) {
	prof := c.cycleProfile(ctx)
	c.pending = c.pending[:0]
	c.nextResAt = math.MaxInt64
	M := ctx.M()
	if pinDedicated {
		for _, d := range ctx.Dedicated.Jobs() {
			if d.Size > M {
				// Larger than the in-service machine (a node-group outage):
				// no reservation is possible until a repair restores
				// capacity, which invalidates this pass via CapacityChanged.
				continue
			}
			at := d.ReqStart
			if !prof.CanPlace(at, d.Dur, d.Size) {
				at = prof.EarliestFit(at, d.Dur, d.Size)
			}
			prof.Reserve(at, at+d.Dur, d.Size)
		}
	}

	// Walk the queue in place. Start removes the started job with order
	// preserved, so after a start the next candidate has shifted into the
	// current index; compensating with i-- visits each job exactly once in
	// queue order without the per-cycle queue snapshot the old
	// implementation allocated.
	jobs := ctx.Batch.Jobs()

	// Suffix-min of queued sizes for the congestion early-stop: once the
	// capacity free at this instant drops below every remaining job's
	// size, no remaining job can start now, and their reservations —
	// which exist only to constrain this cycle's starts — influence
	// nothing observable. The pass may then stop early; the reservation
	// set is incomplete, so it is not retained for arrival increments.
	// k tracks the original queue position across in-place removals.
	min := c.sizeMin[:0]
	if cap(min) < len(jobs) {
		min = make([]int, len(jobs))
	}
	min = min[:len(jobs)]
	for k := len(jobs) - 1; k >= 0; k-- {
		min[k] = jobs[k].Size
		if k+1 < len(jobs) && min[k+1] < min[k] {
			min[k] = min[k+1]
		}
	}
	c.sizeMin = min

	clean, complete := true, true
	// Free capacity at this instant, maintained incrementally: only a
	// reservation at now itself can lower it.
	freeNow := prof.FreeAt(ctx.Now)
	for i, k := 0, 0; i < len(jobs); i, k = i+1, k+1 {
		if freeNow < min[k] {
			complete = false
			break
		}
		j := jobs[i]
		if j.Size > M {
			// The job outsizes the in-service machine (node-group outage).
			// Conservative backfilling forbids later jobs from delaying it,
			// and no reservation can be computed without knowing the repair
			// time, so the pass stalls here until CapacityChanged replans.
			complete = false
			break
		}
		at := prof.fitReserve(ctx.Now, j.Dur, j.Size)
		if at == ctx.Now {
			freeNow -= j.Size
			if ctx.Start(j) {
				jobs = ctx.Batch.Jobs()
				i--
			} else {
				clean = false
			}
		} else if at < c.nextResAt {
			c.nextResAt = at
		}
	}
	if clean {
		// Early-stopped passes still settle — the skipped jobs provably
		// could not start — but only a complete reservation set supports
		// arrival increments.
		c.settle()
		c.curValid = c.live && complete
	} else {
		c.invalidate()
	}
}

// cycleProfile produces the full pass's working profile: a copy of the
// delta-maintained base when the engine feeds deltas, a from-scratch
// rebuild otherwise (standalone use, or the first cycle after Load or
// restore-from-snapshot).
func (c *consCore) cycleProfile(ctx *Context) *Profile {
	if c.live {
		if !c.baseValid {
			c.base.Rebuild(ctx.Now, ctx.M(), ctx.Active)
			c.baseValid = true
		} else {
			c.base.Advance(ctx.Now)
		}
		c.cur.CopyFrom(&c.base)
	} else {
		c.cur.Rebuild(ctx.Now, ctx.M(), ctx.Active)
	}
	return &c.cur
}

// Conservative is conservative backfilling: every waiting job gets a
// reservation at its earliest feasible start given all earlier jobs'
// reservations; a job starts now only if its reservation is now. Unlike
// EASY, no start may delay *any* earlier-arrived job.
//
// The zero value is ready to use. The policy carries persistent scratch
// state (the delta-maintained capacity base); like every policy, a fresh
// instance is required per run and instances must not be shared.
type Conservative struct {
	consCore
}

// Name implements Scheduler.
func (*Conservative) Name() string { return "CONS" }

// Heterogeneous implements Scheduler; conservative is batch-only here.
func (*Conservative) Heterogeneous() bool { return false }

// Schedule runs the conservative pass over the batch queue.
func (c *Conservative) Schedule(ctx *Context) {
	c.pass(ctx, false)
}
