package sched

import (
	"testing"

	"elastisched/internal/job"
)

// benchActive builds an active list of n running jobs with staggered end
// times, the shape CONS/CONS-D see when rebuilding their profile each
// cycle.
func benchActive(n, size int) *job.ActiveList {
	a := job.NewActiveList()
	for i := 0; i < n; i++ {
		a.Insert(&job.Job{ID: i + 1, Size: size, EndTime: int64(100 + 37*i), State: job.Running})
	}
	return a
}

func BenchmarkProfileBuild64(b *testing.B) {
	active := benchActive(64, 32)
	m := 64 * 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewProfile(0, m, active)
	}
}

func BenchmarkProfileEarliestFit(b *testing.B) {
	// A profile with 64 steps; the query walks past most of them before
	// finding a slot for half the machine.
	active := benchActive(64, 32)
	m := 64 * 32
	p := NewProfile(0, m, active)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EarliestFit(0, 500, m/2)
	}
}

func BenchmarkProfileCanPlace(b *testing.B) {
	active := benchActive(64, 32)
	m := 64 * 32
	p := NewProfile(0, m, active)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CanPlace(1200, 300, m/2)
	}
}

func BenchmarkProfileReserveSweep(b *testing.B) {
	// Conservative's per-cycle pattern: build once, then reserve a queue's
	// worth of future slots.
	active := benchActive(32, 32)
	m := 64 * 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewProfile(0, m, active)
		for k := 0; k < 32; k++ {
			at := p.EarliestFit(0, 200, 64)
			p.Reserve(at, at+200, 64)
		}
	}
}
