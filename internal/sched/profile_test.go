package sched

import (
	"testing"

	"elastisched/internal/job"
)

func newProfile(t *testing.T, now int64, m int, running ...[2]int64) *Profile {
	t.Helper()
	a := job.NewActiveList()
	for i, r := range running {
		j := &job.Job{ID: 100 + i, Size: int(r[0]), EndTime: r[1], State: job.Running}
		a.Insert(j)
	}
	return NewProfile(now, m, a)
}

func TestProfileFreeAt(t *testing.T) {
	// 320-proc machine; 128 held until t=100, 64 until t=200.
	p := newProfile(t, 0, 320, [2]int64{128, 100}, [2]int64{64, 200})
	cases := []struct {
		at   int64
		want int
	}{
		{0, 128}, {50, 128}, {99, 128}, {100, 256}, {150, 256}, {200, 320}, {1000, 320},
	}
	for _, c := range cases {
		if got := p.FreeAt(c.at); got != c.want {
			t.Errorf("FreeAt(%d) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestProfileReserveSubtracts(t *testing.T) {
	p := newProfile(t, 0, 320)
	p.Reserve(50, 150, 96)
	if p.FreeAt(0) != 320 || p.FreeAt(50) != 224 || p.FreeAt(149) != 224 || p.FreeAt(150) != 320 {
		t.Errorf("reserve window wrong: %d %d %d %d",
			p.FreeAt(0), p.FreeAt(50), p.FreeAt(149), p.FreeAt(150))
	}
}

func TestProfileReserveEmptyWindow(t *testing.T) {
	p := newProfile(t, 0, 320)
	p.Reserve(100, 100, 96) // from >= to: no-op
	if p.FreeAt(100) != 320 {
		t.Error("zero-length reservation changed capacity")
	}
}

func TestProfileOvercommitPanics(t *testing.T) {
	p := newProfile(t, 0, 320)
	p.Reserve(0, 100, 320)
	defer func() {
		if recover() == nil {
			t.Error("overcommit did not panic")
		}
	}()
	p.Reserve(50, 60, 1)
}

func TestProfileCanPlace(t *testing.T) {
	p := newProfile(t, 0, 320, [2]int64{256, 100})
	if !p.CanPlace(0, 50, 64) {
		t.Error("64 procs for 50s should fit now")
	}
	if p.CanPlace(0, 50, 96) {
		t.Error("96 procs should not fit while 256 held")
	}
	if !p.CanPlace(100, 1000, 320) {
		t.Error("whole machine should fit after t=100")
	}
	if p.CanPlace(99, 2, 320) {
		t.Error("placement straddling the release should fail")
	}
}

func TestProfileEarliestFit(t *testing.T) {
	// 192 held until t=100, another 64 until t=200: free is 64, then 256,
	// then 320.
	p := newProfile(t, 0, 320, [2]int64{192, 100}, [2]int64{64, 200})
	if got := p.EarliestFit(0, 10, 64); got != 0 {
		t.Errorf("64 procs now: got %d, want 0", got)
	}
	if got := p.EarliestFit(0, 10, 128); got != 100 {
		t.Errorf("128 procs: got %d, want 100", got)
	}
	if got := p.EarliestFit(0, 10, 320); got != 200 {
		t.Errorf("320 procs: got %d, want 200", got)
	}
}

func TestProfileEarliestFitRespectsFrom(t *testing.T) {
	p := newProfile(t, 0, 320)
	if got := p.EarliestFit(77, 10, 64); got != 77 {
		t.Errorf("EarliestFit(from=77) = %d, want 77", got)
	}
}

func TestProfileEarliestFitImpossibleSizePanics(t *testing.T) {
	p := newProfile(t, 0, 320)
	defer func() {
		if recover() == nil {
			t.Error("oversized job did not panic")
		}
	}()
	p.EarliestFit(0, 10, 400)
}

func TestConservativeStartsFIFOWhenFree(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addBatch(1, 128, 100)
	h.addBatch(2, 128, 100)
	h.cycle(&Conservative{})
	h.wantStartedSet(1, 2)
}

func TestConservativeNeverDelaysAnyReservation(t *testing.T) {
	// Head 320 blocked until t=100; a short job may backfill, but a job
	// that would delay the *second* queued job's reservation must not
	// (this is the conservative/EASY distinction).
	//
	// Running: 160 until t=100. Queue: J1=320 (reserved t=100..600),
	// J2=160 (reserved t=600..700), J3=160 dur 600.
	// EASY would start J3 now (it fits and doesn't delay J1: at t=100 J3
	// still holds 160, 160 free = J1 blocked!). Wait — EASY's extra check
	// handles J1. For conservative, J3 must respect both J1 and J2.
	h := newHarness(t, 320, 32)
	h.addRunning(9, 160, 100)
	h.addBatch(1, 320, 500)
	h.addBatch(2, 160, 100)
	h.addBatch(3, 160, 600)
	h.cycle(&Conservative{})
	// J3 running 0..600 would hold 160 during J1's reservation 100..600:
	// free at 100 would be 160 < 320. Conservative refuses. J2 likewise
	// (it would hold 160 during 0..100? no: J2 starting now ends at 100,
	// exactly when J1 starts — allowed). So only J2 backfills.
	h.wantStarted(2)
}

func TestConservativeFlags(t *testing.T) {
	c := &Conservative{}
	if c.Name() != "CONS" || c.Heterogeneous() {
		t.Error("conservative flags wrong")
	}
}

func TestFCFSStrictOrder(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addRunning(9, 160, 100)
	h.addBatch(1, 320, 100) // blocked
	h.addBatch(2, 32, 10)   // would fit, but FCFS never backfills
	h.cycle(FCFS{})
	h.wantStarted()
}

func TestFCFSDrainsWhileFitting(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addBatch(1, 160, 100)
	h.addBatch(2, 160, 100)
	h.addBatch(3, 32, 100)
	h.cycle(FCFS{})
	h.wantStarted(1, 2)
}

func TestSJFPicksShortest(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addRunning(9, 288, 1000)
	h.addBatch(1, 32, 500)
	h.addBatch(2, 32, 50)
	h.cycle(SJF{})
	// Only one 32-slot free: the shorter job 2 wins.
	h.wantStarted(2)
}

func TestLJFPicksLargest(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addBatch(1, 64, 100)
	h.addBatch(2, 256, 100)
	h.cycle(LJF{})
	// Both start (they fit together), but the larger goes first.
	h.wantStarted(2, 1)
}

func TestBaselineFlags(t *testing.T) {
	if (FCFS{}).Name() != "FCFS" || (SJF{}).Name() != "SJF" || (LJF{}).Name() != "LJF" {
		t.Error("names wrong")
	}
	if (FCFS{}).Heterogeneous() || (SJF{}).Heterogeneous() || (LJF{}).Heterogeneous() {
		t.Error("baselines are batch-only")
	}
}

func TestConservativeDStartsDueDedicated(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addDed(1, 96, 100, 30)
	h.now = 30
	h.cycle(&ConservativeD{})
	h.wantStarted(1)
}

func TestConservativeDProtectsFutureDedicated(t *testing.T) {
	// Dedicated needs the whole machine at t=100: a long batch job must
	// wait, a short one may run.
	h := newHarness(t, 320, 32)
	h.addDed(1, 320, 100, 100)
	h.addBatch(2, 64, 500) // would overlap the reservation
	h.addBatch(3, 64, 50)  // ends before it
	h.cycle(&ConservativeD{})
	h.wantStartedSet(3)
}

func TestConservativeDDegradedDedicatedSlot(t *testing.T) {
	// A running job holds the machine past the requested start: the
	// dedicated reservation degrades to the earliest feasible slot and
	// batch work must respect that slot too.
	h := newHarness(t, 320, 32)
	h.addRunning(9, 320, 150)
	h.addDed(1, 320, 100, 100) // will actually go at 150
	h.addBatch(2, 320, 40)     // would fit 150..190? no: dedicated holds 150..250
	h.cycle(&ConservativeD{})
	h.wantStarted() // nothing can start now; no panic from overcommit
}

func TestConservativeDFlags(t *testing.T) {
	c := &ConservativeD{}
	if c.Name() != "CONS-D" || !c.Heterogeneous() {
		t.Error("flags wrong")
	}
}
