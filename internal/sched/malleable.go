package sched

import (
	"errors"

	"elastisched/internal/job"
)

// Resize is a scheduler-initiated resize proposal: grow or shrink the
// running malleable job to NewSize processors. The engine validates the
// proposal against the job's bounds and the machine before applying it;
// an unapplicable proposal (contiguous fragmentation) is dropped without
// effect.
type Resize struct {
	Job     *job.Job
	NewSize int
}

// Malleable is the optional runtime-elasticity extension of Scheduler.
// After each Schedule call of the fixed-point loop the engine asks a
// malleable policy for resize proposals and applies them through the same
// pipeline that serves client EP/RP commands (work-conserving rescale,
// delta fan-out). The contract mirrors Schedule's idempotence rule:
// at a fixed point — nothing started, no proposal applied — a repeated
// call must return no proposals, or the engine's cycle loop will not
// terminate.
//
// Policies only see proposals for jobs with malleable bounds
// (job.Malleable()); the engine rejects proposals outside the job's
// quantized [MinProcs, MaxProcs] window, for dedicated jobs, and for
// jobs holding failed or draining node groups.
type Malleable interface {
	Scheduler
	ProposeResizes(ctx *Context) []Resize
}

// AutoResize is a decorator that adds a generic malleability policy to any
// Scheduler, so every registry algorithm gets a "-M" variant comparable
// head-to-head with its rigid base. The policy is deliberately simple and
// work-conserving:
//
//   - Shrink to admit: when the head of the batch queue cannot start for
//     lack of free processors, shrink running malleable batch jobs —
//     largest shrinkable reserve first, ties by job ID — but only if the
//     total shrinkable capacity actually covers the head's deficit
//     (shrinking without admitting anyone would only stretch runtimes).
//   - Expand when idle: when both waiting queues are empty and processors
//     sit free, grow running malleable jobs back toward MaxProcs in job-ID
//     order, so capacity freed by completions is reabsorbed instead of
//     idling.
//
// Both rules propose nothing when their trigger is absent, which makes the
// decorator fixed-point safe: after a successful shrink the head fits (the
// deficit is gone), and after an expansion round every malleable job is at
// its feasible maximum.
//
// Scheduling itself is delegated to the wrapped policy unchanged. The
// decorator forwards the Stateful delta feed and the Snapshotter state
// contract to the inner policy when it implements them, so CONS-M keeps
// CONS's incremental profile and restore behaviour.
type AutoResize struct {
	Inner Scheduler

	// scratch for candidate collection and proposal assembly, retained
	// across cycles so the hot path stays allocation-free. Both backing
	// arrays hold *job.Job pointers from the previous cycle until the next
	// call clears them (see clearScratch).
	cand []*job.Job
	out  []Resize
}

// NewAutoResize wraps inner with the generic malleability policy.
func NewAutoResize(inner Scheduler) *AutoResize {
	return &AutoResize{Inner: inner}
}

// Name implements Scheduler: the wrapped policy's name with a "-M" suffix.
func (a *AutoResize) Name() string { return a.Inner.Name() + "-M" }

// Heterogeneous implements Scheduler by delegation.
func (a *AutoResize) Heterogeneous() bool { return a.Inner.Heterogeneous() }

// Schedule implements Scheduler by delegation.
func (a *AutoResize) Schedule(ctx *Context) { a.Inner.Schedule(ctx) }

// healthy reports whether every node group the job holds is Up — jobs
// touched by an ongoing outage are the fault path's business, not the
// scheduler's.
func healthy(ctx *Context, j *job.Job) bool {
	return ctx.Machine.AllUp(j.ID)
}

// quantMin returns the job's minimum allocation rounded up to a whole
// number of node groups (never below one group).
func quantMin(j *job.Job, unit int) int {
	min := ((j.MinProcs + unit - 1) / unit) * unit
	if min < unit {
		min = unit
	}
	return min
}

// quantMax returns the job's maximum allocation rounded down to a whole
// number of node groups, floored at the job's current size (bounds are
// validated at load time, so this only guards degenerate hand-built jobs).
func quantMax(j *job.Job, unit int) int {
	max := (j.MaxProcs / unit) * unit
	if max < j.Size {
		max = j.Size
	}
	return max
}

// ProposeResizes implements Malleable with the shrink-to-admit /
// expand-when-idle policy described on AutoResize. The returned slice is
// scratch reused by the next call: the engine consumes proposals before
// re-invoking the policy, and callers must not retain it.
func (a *AutoResize) ProposeResizes(ctx *Context) []Resize {
	a.clearScratch()
	if head := ctx.Batch.Head(); head != nil {
		return a.shrinkToAdmit(ctx, head)
	}
	if ctx.Dedicated.Len() == 0 {
		return a.expandIdle(ctx)
	}
	return nil
}

// clearScratch drops the job pointers the scratch backing arrays retained
// from the previous cycle, so finished workloads are not pinned in memory
// for the life of the decorator.
func (a *AutoResize) clearScratch() {
	cand := a.cand[:cap(a.cand)]
	for i := range cand {
		cand[i] = nil
	}
	out := a.out[:cap(a.out)]
	for i := range out {
		out[i].Job = nil
	}
}

// shrinkToAdmit proposes shrinks that free exactly enough capacity for the
// blocked batch head, or nothing if the reachable reserve cannot cover it.
func (a *AutoResize) shrinkToAdmit(ctx *Context, head *job.Job) []Resize {
	unit := ctx.Machine.Unit()
	deficit := head.Size - ctx.Free()
	if deficit <= 0 || head.Size > ctx.M() {
		// The head fits already (contiguous fragmentation is the machine's
		// problem, not a capacity one), or it outsizes the in-service
		// machine — shrinking others cannot help either way.
		return nil
	}

	cand := a.cand[:0]
	reserve := 0
	for _, j := range ctx.Active.Jobs() {
		if j.Class != job.Batch || !j.Malleable() {
			continue
		}
		if r := j.Size - quantMin(j, unit); r > 0 && healthy(ctx, j) {
			cand = append(cand, j)
			reserve += r
		}
	}
	a.cand = cand
	if reserve < deficit {
		return nil
	}

	// Largest shrinkable reserve first, ties by job ID: fewest victims.
	sortByReserve(cand, unit)

	out := a.out[:0]
	for _, j := range cand {
		if deficit <= 0 {
			break
		}
		take := j.Size - quantMin(j, unit)
		if take > deficit {
			// Only give up what the head still needs, in whole groups.
			take = ((deficit + unit - 1) / unit) * unit
		}
		out = append(out, Resize{Job: j, NewSize: j.Size - take})
		deficit -= take
	}
	a.out = out
	return out
}

// expandIdle proposes grows that spread the machine's free capacity over
// running malleable jobs, in job-ID order, each capped at its MaxProcs.
func (a *AutoResize) expandIdle(ctx *Context) []Resize {
	free := ctx.Free()
	if free <= 0 {
		return nil
	}
	unit := ctx.Machine.Unit()

	cand := a.cand[:0]
	for _, j := range ctx.Active.Jobs() {
		if j.Class != job.Batch || !j.Malleable() {
			continue
		}
		if j.Size < quantMax(j, unit) && healthy(ctx, j) {
			cand = append(cand, j)
		}
	}
	a.cand = cand
	if len(cand) == 0 {
		return nil
	}
	sortByID(cand)

	out := a.out[:0]
	for _, j := range cand {
		if free < unit {
			break
		}
		grow := quantMax(j, unit) - j.Size
		if grow > free {
			grow = (free / unit) * unit
		}
		if grow <= 0 {
			continue
		}
		out = append(out, Resize{Job: j, NewSize: j.Size + grow})
		free -= grow
	}
	a.out = out
	return out
}

// sortByReserve orders jobs by shrinkable reserve descending, ties by ID
// ascending. Insertion sort: candidate sets are a handful of jobs.
func sortByReserve(jobs []*job.Job, unit int) {
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		rj := j.Size - quantMin(j, unit)
		k := i - 1
		for k >= 0 {
			rk := jobs[k].Size - quantMin(jobs[k], unit)
			if rk > rj || (rk == rj && jobs[k].ID < j.ID) {
				break
			}
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
}

// sortByID orders jobs by ID ascending.
func sortByID(jobs []*job.Job) {
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && jobs[k].ID > j.ID {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
}

// ResetDeltas implements Stateful by forwarding to the inner policy when
// it participates in the delta contract. It also drops the proposal
// scratch's retained job pointers: a reset marks a session (re)start, after
// which the previous workload's jobs must be collectable.
func (a *AutoResize) ResetDeltas() {
	a.clearScratch()
	if s, ok := a.Inner.(Stateful); ok {
		s.ResetDeltas()
	}
}

// JobArrived implements Stateful by forwarding.
func (a *AutoResize) JobArrived(j *job.Job, now int64) {
	if s, ok := a.Inner.(Stateful); ok {
		s.JobArrived(j, now)
	}
}

// JobStarted implements Stateful by forwarding.
func (a *AutoResize) JobStarted(j *job.Job, now int64) {
	if s, ok := a.Inner.(Stateful); ok {
		s.JobStarted(j, now)
	}
}

// JobFinished implements Stateful by forwarding.
func (a *AutoResize) JobFinished(j *job.Job, now int64) {
	if s, ok := a.Inner.(Stateful); ok {
		s.JobFinished(j, now)
	}
}

// JobRetimed implements Stateful by forwarding.
func (a *AutoResize) JobRetimed(j *job.Job, oldEnd, now int64) {
	if s, ok := a.Inner.(Stateful); ok {
		s.JobRetimed(j, oldEnd, now)
	}
}

// JobResized implements Stateful by forwarding.
func (a *AutoResize) JobResized(j *job.Job, oldSize int, now int64) {
	if s, ok := a.Inner.(Stateful); ok {
		s.JobResized(j, oldSize, now)
	}
}

// QueueChanged implements Stateful by forwarding.
func (a *AutoResize) QueueChanged() {
	if s, ok := a.Inner.(Stateful); ok {
		s.QueueChanged()
	}
}

// JobKilled implements Stateful by forwarding.
func (a *AutoResize) JobKilled(j *job.Job, now int64) {
	if s, ok := a.Inner.(Stateful); ok {
		s.JobKilled(j, now)
	}
}

// CapacityChanged implements Stateful by forwarding.
func (a *AutoResize) CapacityChanged(now int64) {
	if s, ok := a.Inner.(Stateful); ok {
		s.CapacityChanged(now)
	}
}

// SnapshotState implements Snapshotter by forwarding; a stateless inner
// policy round-trips as nil state, matching the engine's handling of
// non-Snapshotter schedulers.
func (a *AutoResize) SnapshotState() ([]byte, error) {
	if s, ok := a.Inner.(Snapshotter); ok {
		return s.SnapshotState()
	}
	return nil, nil
}

// RestoreState implements Snapshotter by forwarding.
func (a *AutoResize) RestoreState(b []byte) error {
	if s, ok := a.Inner.(Snapshotter); ok {
		return s.RestoreState(b)
	}
	if len(b) != 0 {
		return errNoInnerState
	}
	return nil
}

var errNoInnerState = errors.New("sched: restore state for a stateless wrapped policy")
