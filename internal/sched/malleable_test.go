package sched

import (
	"testing"
)

// TestProposeResizesAllocFree pins the -M hot path: after the first call
// grows the scratch buffers, ProposeResizes must not allocate on either the
// shrink-to-admit or the expand-when-idle shape — it runs once per
// scheduling cycle, so a per-call slice costs an allocation per simulated
// instant.
func TestProposeResizesAllocFree(t *testing.T) {
	shrink := newHarness(t, 320, 32)
	for i := 0; i < 4; i++ {
		j := shrink.addRunning(100+i, 64, 1000)
		j.MinProcs = 32
		j.MaxProcs = 128
	}
	// Head of 192 against 64 free: deficit 128, covered by 4×32 reserve.
	shrink.addBatch(1, 192, 500)

	expand := newHarness(t, 320, 32)
	for i := 0; i < 2; i++ {
		j := expand.addRunning(200+i, 64, 1000)
		j.MinProcs = 32
		j.MaxProcs = 128
	}

	for _, tc := range []struct {
		name string
		ctx  *Context
	}{
		{"shrink-to-admit", shrink.ctx()},
		{"expand-when-idle", expand.ctx()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAutoResize(&EASY{})
			if got := a.ProposeResizes(tc.ctx); len(got) == 0 {
				t.Fatal("no proposals; the shape exercises nothing")
			}
			if n := testing.AllocsPerRun(100, func() { a.ProposeResizes(tc.ctx) }); n != 0 {
				t.Errorf("ProposeResizes allocates %.1f per call after warm-up", n)
			}
		})
	}
}

// TestProposeResizesScratchCleared: the scratch arrays must not pin job
// pointers from a previous cycle once a new cycle (or a delta reset) has
// run — a decorator outlives workloads in sweep loops.
func TestProposeResizesScratchCleared(t *testing.T) {
	h := newHarness(t, 320, 32)
	for i := 0; i < 4; i++ {
		j := h.addRunning(100+i, 64, 1000)
		j.MinProcs = 32
		j.MaxProcs = 128
	}
	h.addBatch(1, 192, 500)
	a := NewAutoResize(&EASY{})
	if got := a.ProposeResizes(h.ctx()); len(got) == 0 {
		t.Fatal("no proposals; the test exercises nothing")
	}
	a.ResetDeltas()
	for i, j := range a.cand[:cap(a.cand)] {
		if j != nil {
			t.Errorf("cand[%d] still pins job %d after reset", i, j.ID)
		}
	}
	for i, r := range a.out[:cap(a.out)] {
		if r.Job != nil {
			t.Errorf("out[%d] still pins job %d after reset", i, r.Job.ID)
		}
	}
}
