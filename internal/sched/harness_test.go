package sched

import (
	"testing"

	"elastisched/internal/job"
	"elastisched/internal/machine"
)

// harness builds scheduler contexts without the full engine: Start allocates
// the machine and moves the job to the active list, so single-instant
// scheduling decisions can be asserted precisely.
type harness struct {
	t    *testing.T
	now  int64
	mach *machine.Machine

	batch  *job.BatchQueue
	ded    *job.DedicatedQueue
	active *job.ActiveList

	started []*job.Job
}

func newHarness(t *testing.T, m, unit int) *harness {
	return &harness{
		t:      t,
		mach:   machine.New(m, unit),
		batch:  job.NewBatchQueue(),
		ded:    job.NewDedicatedQueue(),
		active: job.NewActiveList(),
	}
}

// addBatch queues a waiting batch job.
func (h *harness) addBatch(id, size int, dur int64) *job.Job {
	j := &job.Job{ID: id, Size: size, Dur: dur, ReqStart: -1, Class: job.Batch, LastSkip: -1}
	h.batch.Push(j)
	return j
}

// addDed queues a waiting dedicated job.
func (h *harness) addDed(id, size int, dur, start int64) *job.Job {
	j := &job.Job{ID: id, Size: size, Dur: dur, ReqStart: start, Class: job.Dedicated, LastSkip: -1}
	h.ded.Push(j)
	return j
}

// addRunning places a job on the machine ending at end.
func (h *harness) addRunning(id, size int, end int64) *job.Job {
	j := &job.Job{ID: id, Size: size, Dur: end - h.now, ReqStart: -1, Class: job.Batch, State: job.Running, EndTime: end}
	if err := h.mach.Alloc(id, size); err != nil {
		h.t.Fatalf("harness: %v", err)
	}
	h.active.Insert(j)
	return j
}

// ctx builds a fresh context at the harness's current time.
func (h *harness) ctx() *Context {
	c := &Context{
		Now:       h.now,
		Machine:   h.mach,
		Batch:     h.batch,
		Dedicated: h.ded,
		Active:    h.active,
	}
	c.StartFn = func(j *job.Job) bool {
		if err := h.mach.Alloc(j.ID, j.Size); err != nil {
			if h.mach.Contiguous() {
				return false
			}
			h.t.Fatalf("harness start: %v", err)
		}
		j.State = job.Running
		j.StartTime = h.now
		j.EndTime = h.now + j.Dur
		h.active.Insert(j)
		h.started = append(h.started, j)
		return true
	}
	return c
}

// cycle invokes the scheduler to a fixed point, like the engine does.
func (h *harness) cycle(s Scheduler) []*job.Job {
	h.started = nil
	for i := 0; ; i++ {
		if i > 10000 {
			h.t.Fatal("harness: scheduler livelock")
		}
		c := h.ctx()
		s.Schedule(c)
		if !c.Progress {
			break
		}
	}
	return h.started
}

// startedIDs returns the IDs started by the last cycle, in order.
func (h *harness) startedIDs() []int {
	out := make([]int, 0, len(h.started))
	for _, j := range h.started {
		out = append(out, j.ID)
	}
	return out
}

// wantStarted asserts exactly these IDs started (order-sensitive).
func (h *harness) wantStarted(ids ...int) {
	h.t.Helper()
	got := h.startedIDs()
	if len(got) != len(ids) {
		h.t.Fatalf("started %v, want %v", got, ids)
	}
	for i := range ids {
		if got[i] != ids[i] {
			h.t.Fatalf("started %v, want %v", got, ids)
		}
	}
}

// wantStartedSet asserts these IDs started in any order.
func (h *harness) wantStartedSet(ids ...int) {
	h.t.Helper()
	got := map[int]bool{}
	for _, j := range h.started {
		got[j.ID] = true
	}
	if len(got) != len(ids) {
		h.t.Fatalf("started %v, want set %v", h.startedIDs(), ids)
	}
	for _, id := range ids {
		if !got[id] {
			h.t.Fatalf("started %v, want set %v", h.startedIDs(), ids)
		}
	}
}
