package sched

import (
	"math/rand"
	"sort"
	"testing"

	"elastisched/internal/job"
)

// refProfile is a brute-force free-capacity model: a flat list of
// reservations with no step structure. Every query recomputes from the
// list, so it cannot share bugs with Profile's binary-searched step
// function. The horizon clamp matches Profile: reservations are assumed
// to start at or after the horizon.
type refProfile struct {
	m       int
	horizon int64
	res     [][3]int64 // from, to, size
}

func (r *refProfile) reserve(from, to int64, size int) {
	if from >= to {
		return
	}
	r.res = append(r.res, [3]int64{from, to, int64(size)})
}

func (r *refProfile) freeAt(t int64) int {
	if t < r.horizon {
		return r.m
	}
	f := r.m
	for _, x := range r.res {
		if x[0] <= t && t < x[1] {
			f -= int(x[2])
		}
	}
	return f
}

// boundaries returns the sorted, deduplicated step boundaries implied by
// the reservation list — the same set Profile.split would have created.
func (r *refProfile) boundaries() []int64 {
	b := []int64{r.horizon}
	for _, x := range r.res {
		for _, t := range []int64{x[0], x[1]} {
			if t >= r.horizon {
				b = append(b, t)
			}
		}
	}
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	out := b[:1]
	for _, t := range b[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

func (r *refProfile) canPlace(from, dur int64, size int) bool {
	end := from + dur
	if r.freeAt(from) < size {
		return false
	}
	for _, t := range r.boundaries() {
		if t > from && t < end && r.freeAt(t) < size {
			return false
		}
	}
	return true
}

func (r *refProfile) earliestFit(from, dur int64, size int) int64 {
	if r.canPlace(from, dur, size) {
		return from
	}
	b := r.boundaries()
	for _, t := range b {
		if t <= from {
			continue
		}
		if r.canPlace(t, dur, size) {
			return t
		}
	}
	return b[len(b)-1]
}

// TestProfileEquivalenceRandomized cross-checks the binary-searched
// Profile against the brute-force reference on randomized reservation
// sets and queries.
func TestProfileEquivalenceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4000; trial++ {
		m := 32 * (1 + r.Intn(16))
		p := NewProfile(0, m, job.NewActiveList())
		ref := &refProfile{m: m}

		// Build a random, never-overcommitted reservation set.
		for k := 0; k < 1+r.Intn(10); k++ {
			from := int64(r.Intn(300))
			to := from + int64(1+r.Intn(200))
			size := 1 + r.Intn(m)
			if !ref.canPlace(from, to-from, size) {
				continue
			}
			ref.reserve(from, to, size)
			p.Reserve(from, to, size)
		}

		for q := 0; q < 20; q++ {
			at := int64(r.Intn(600))
			if got, want := p.FreeAt(at), ref.freeAt(at); got != want {
				t.Fatalf("trial %d: FreeAt(%d) = %d, reference %d (res %v)",
					trial, at, got, want, ref.res)
			}
			from := int64(r.Intn(400))
			dur := int64(1 + r.Intn(200))
			size := 1 + r.Intn(m)
			if got, want := p.CanPlace(from, dur, size), ref.canPlace(from, dur, size); got != want {
				t.Fatalf("trial %d: CanPlace(%d,%d,%d) = %v, reference %v (res %v)",
					trial, from, dur, size, got, want, ref.res)
			}
			if got, want := p.EarliestFit(from, dur, size), ref.earliestFit(from, dur, size); got != want {
				t.Fatalf("trial %d: EarliestFit(%d,%d,%d) = %d, reference %d (res %v)",
					trial, from, dur, size, got, want, ref.res)
			}
		}
	}
}

// TestProfileEquivalenceFromRunning seeds the profile through NewProfile's
// active-list path (rather than bare Reserve calls) and cross-checks the
// same three queries.
func TestProfileEquivalenceFromRunning(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		m := 320
		a := job.NewActiveList()
		ref := &refProfile{m: m}
		used := 0
		for k := 0; used < m && k < 8; k++ {
			size := 32 * (1 + r.Intn(4))
			if used+size > m {
				break
			}
			used += size
			end := int64(1 + r.Intn(400))
			a.Insert(&job.Job{ID: 100 + k, Size: size, EndTime: end, State: job.Running})
			ref.reserve(0, end, size)
		}
		p := NewProfile(0, m, a)
		for q := 0; q < 15; q++ {
			from := int64(r.Intn(500))
			dur := int64(1 + r.Intn(300))
			size := 32 * (1 + r.Intn(10))
			if got, want := p.EarliestFit(from, dur, size), ref.earliestFit(from, dur, size); got != want {
				t.Fatalf("trial %d: EarliestFit(%d,%d,%d) = %d, reference %d (res %v)",
					trial, from, dur, size, got, want, ref.res)
			}
			if got, want := p.CanPlace(from, dur, size), ref.canPlace(from, dur, size); got != want {
				t.Fatalf("trial %d: CanPlace(%d,%d,%d) = %v, reference %v (res %v)",
					trial, from, dur, size, got, want, ref.res)
			}
		}
	}
}
