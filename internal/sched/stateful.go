package sched

import "elastisched/internal/job"

// Stateful is the optional delta-feed extension of Scheduler — the policy
// half of the engine's incremental-state contract. A policy that maintains
// cross-cycle caches derived from engine state (the persistent capacity
// profile of CONS/CONS-D, the settled flag of EASY) implements it; the
// engine then reports every state change the policy did not make itself,
// so the policy can update its caches by delta instead of rebuilding them
// from the Context every cycle.
//
// The contract:
//
//   - ResetDeltas arms delta delivery. The engine calls it after Load and
//     after Restore, before the first scheduling cycle. Until it is
//     called, the policy must assume no deltas arrive and derive all state
//     from the Context on every Schedule call — this keeps standalone use
//     (tests, harnesses driving Schedule directly) working unchanged.
//     After Restore it doubles as the invalidation signal: caches are
//     rebuilt from the restored Context, never carried across sessions.
//   - The Job* methods report state changes: JobArrived fires when a job
//     joins a waiting queue; JobStarted fires for every dispatch,
//     including starts the policy itself made through Context.Start;
//     JobFinished fires when a job leaves the machine (its EndTime still
//     holds the kill-by value the capacity plan was built on); JobRetimed
//     fires when ECC extend/reduce moves a running job's kill-by time from
//     oldEnd to j.EndTime; JobResized fires when ECC grow/shrink moves a
//     running job's allocation from oldSize to j.Size.
//   - QueueChanged reports a waiting-set mutation not covered above: an
//     ECC rewriting a queued job's requirements in place.
//   - JobKilled fires when a node-group failure kills a running job: the
//     job leaves the machine mid-run, releasing its capacity claim from
//     now to its kill-by time (the resubmitted copy, if any, is announced
//     by a fresh JobArrived).
//   - CapacityChanged fires when the in-service machine size (Context.M)
//     shrinks or grows — node groups failing or being repaired. Capacity
//     plans built against the old size are stale; policies fall back to a
//     rebuild rather than patching (failures are rare, and a shrink under
//     existing reservations cannot be patched soundly in general).
//
// Deltas other than JobStarted are delivered between Schedule calls, never
// during one; JobStarted is delivered synchronously inside Context.Start.
// All caches must be behaviour-neutral: a policy fed deltas must make
// exactly the starts it would make rebuilding from the Context each cycle
// (the session property test checks this by running every algorithm cold
// after restore and requiring deep-equal results).
type Stateful interface {
	Scheduler
	ResetDeltas()
	JobArrived(j *job.Job, now int64)
	JobStarted(j *job.Job, now int64)
	JobFinished(j *job.Job, now int64)
	JobRetimed(j *job.Job, oldEnd, now int64)
	JobResized(j *job.Job, oldSize int, now int64)
	QueueChanged()
	JobKilled(j *job.Job, now int64)
	CapacityChanged(now int64)
}

// deltaTracker is the bookkeeping half of a Stateful policy: it records
// whether a delta feed is attached (live) and whether the policy has
// reached a settled fixed point — a completed scheduling pass after which
// a re-run against unchanged state provably starts nothing. While settled
// and undisturbed, Schedule may return immediately: the engine's
// fixed-point verification pass (and any later cycle whose deltas were all
// absorbed) becomes O(1) instead of a full reschedule.
//
// Embedders inherit default delta handlers that clear the settled flag on
// every external change; handlers that additionally maintain a capacity
// cache (consCore) shadow them.
type deltaTracker struct {
	live    bool // engine attached a delta feed (ResetDeltas was called)
	settled bool // last pass reached a fixed point; no external change since
}

// ResetDeltas implements Stateful.
func (d *deltaTracker) ResetDeltas() { d.live = true; d.settled = false }

// JobArrived implements Stateful.
func (d *deltaTracker) JobArrived(*job.Job, int64) { d.settled = false }

// JobStarted implements Stateful. Starts do not unsettle: the only starts
// that occur are the policy's own, and the pass that made them accounted
// for them before settling.
func (d *deltaTracker) JobStarted(*job.Job, int64) {}

// JobFinished implements Stateful.
func (d *deltaTracker) JobFinished(*job.Job, int64) { d.settled = false }

// JobRetimed implements Stateful.
func (d *deltaTracker) JobRetimed(*job.Job, int64, int64) { d.settled = false }

// JobResized implements Stateful.
func (d *deltaTracker) JobResized(*job.Job, int, int64) { d.settled = false }

// QueueChanged implements Stateful.
func (d *deltaTracker) QueueChanged() { d.settled = false }

// JobKilled implements Stateful.
func (d *deltaTracker) JobKilled(*job.Job, int64) { d.settled = false }

// CapacityChanged implements Stateful.
func (d *deltaTracker) CapacityChanged(int64) { d.settled = false }

// settle records a clean fixed point. Only meaningful with a live feed:
// without one there is no signal to unsettle, so the flag stays off and
// every cycle runs in full.
func (d *deltaTracker) settle() {
	if d.live {
		d.settled = true
	}
}

// canSkip reports whether a scheduling cycle may be skipped outright: the
// feed is live, the last pass settled, no delta arrived since — and no
// dedicated head has come due (moving it is queue work time alone can
// trigger, which no delta announces).
func (d *deltaTracker) canSkip(ctx *Context) bool {
	if !d.live || !d.settled {
		return false
	}
	if h := ctx.Dedicated.Head(); h != nil && h.ReqStart <= ctx.Now {
		return false
	}
	return true
}
