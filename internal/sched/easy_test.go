package sched

import "testing"

func TestEASYStartsInOrderWhileFitting(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addBatch(1, 128, 100)
	h.addBatch(2, 128, 100)
	h.addBatch(3, 64, 100)
	h.cycle(&EASY{})
	h.wantStarted(1, 2, 3)
}

func TestEASYHeadBlocksFIFOWithoutBackfillRoom(t *testing.T) {
	// Running job holds 288 until t=100. Head needs 64 (blocked). The next
	// job (32, dur 200) would run past t=100 and delay the head's
	// reservation (at t=100 free is 32+288=320, head takes 64, extra 256...
	// wait: extra is large, so it backfills). Use a tighter scenario:
	// running 288 ends t=100; head 320 reserves t=100 with extra 0; job 2
	// (32, dur 200) runs past the shadow and exceeds extra -> must wait.
	h := newHarness(t, 320, 32)
	h.addRunning(9, 288, 100)
	h.addBatch(1, 320, 100)
	h.addBatch(2, 32, 200)
	h.cycle(&EASY{})
	h.wantStarted() // nothing can move
}

func TestEASYBackfillsShortJob(t *testing.T) {
	// Same as above but job 2 finishes before the shadow time: backfill.
	h := newHarness(t, 320, 32)
	h.addRunning(9, 288, 100)
	h.addBatch(1, 320, 100)
	h.addBatch(2, 32, 50) // ends at 50 < 100
	h.cycle(&EASY{})
	h.wantStarted(2)
}

func TestEASYBackfillsIntoExtraCapacity(t *testing.T) {
	// Running 160 ends t=100. Head needs 320: shadow t=100, extra = 0.
	// Running leaves 160 free now; job 2 (96, long) fits now and...
	// extra = free_at_shadow - head = (160+160) - 320 = 0, so a long job
	// cannot backfill; a short one can.
	h := newHarness(t, 320, 32)
	h.addRunning(9, 160, 100)
	h.addBatch(1, 320, 500)
	h.addBatch(2, 96, 1000) // long: would delay head
	h.addBatch(3, 96, 50)   // short: fine
	h.cycle(&EASY{})
	h.wantStarted(3)
}

func TestEASYBackfillRespectsDecrementedExtra(t *testing.T) {
	// Head 256 blocked until the 128-job ends at t=100 (then free =
	// 64+128+128 = 320...). Construct: running A=128 ends 100, B=128 ends
	// 300. free = 64. Head 256: cumulative release: 64+128=192 at t=100,
	// +128=320 at t=300 -> shadow t=300, extra = 320-256 = 64.
	// Job2 (64, dur 1000) backfills into extra, exhausting it.
	// Job3 (64, dur 1000) must then wait even though it fits now... but
	// after job2 starts free = 0, so it cannot fit anyway. Make machine
	// bigger via smaller head: use extra-tracking directly:
	h := newHarness(t, 320, 32)
	h.addRunning(8, 96, 100)
	h.addRunning(9, 96, 300)
	// free = 128. Head 224: release 96 at 100 -> 224 cumulative = 128+96 =
	// 224 >= 224, shadow t=100, extra = 224-224 = 0.
	h.addBatch(1, 224, 500)
	h.addBatch(2, 64, 50)  // ends before shadow: ok
	h.addBatch(3, 64, 500) // would consume extra 0: blocked
	h.cycle(&EASY{})
	h.wantStarted(2)
}

func TestEASYDMovesDueDedicatedToHead(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addBatch(1, 320, 100) // head hog, does not fit alongside dedicated
	d := h.addDed(2, 64, 100, 50)
	h.now = 50
	h.addRunning(9, 288, 200)
	h.cycle(&EASY{Ded: true})
	// Neither fits (free 32), but the dedicated job must now sit at the
	// batch head.
	if h.batch.Head() != d {
		t.Fatal("due dedicated job not at batch head")
	}
}

func TestEASYDProtectsFutureDedicated(t *testing.T) {
	// Free machine. Dedicated job needs the whole machine at t=100. A long
	// batch job would still be running then: must not start. A short one
	// may.
	h := newHarness(t, 320, 32)
	h.addDed(1, 320, 100, 100)
	h.addBatch(2, 64, 500) // runs past t=100
	h.addBatch(3, 64, 50)  // done before t=100
	h.cycle(&EASY{Ded: true})
	h.wantStartedSet(3)
}

func TestEASYDAllowsBatchWithinDedicatedSpare(t *testing.T) {
	// Dedicated needs 96 at t=100; machine idle, so 224 spare remains at
	// the freeze: long batch jobs up to 224 may start now.
	h := newHarness(t, 320, 32)
	h.addDed(1, 96, 100, 100)
	h.addBatch(2, 128, 10000)
	h.addBatch(3, 96, 10000)
	h.addBatch(4, 64, 10000) // 128+96+64 = 288 > 224: must wait
	h.cycle(&EASY{Ded: true})
	h.wantStartedSet(2, 3)
}

func TestEASYDStartsDueDedicatedImmediately(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.addDed(1, 96, 100, 30)
	h.now = 30
	h.cycle(&EASY{Ded: true})
	h.wantStarted(1)
}

func TestEASYPlainIgnoresDedicatedQueue(t *testing.T) {
	e := &EASY{}
	if e.Heterogeneous() {
		t.Error("plain EASY should be batch-only")
	}
	if e.Name() != "EASY" {
		t.Errorf("name %q", e.Name())
	}
	d := &EASY{Ded: true}
	if !d.Heterogeneous() || d.Name() != "EASY-D" {
		t.Error("EASY-D flags wrong")
	}
}

func TestEASYEmptyQueueNoop(t *testing.T) {
	h := newHarness(t, 320, 32)
	h.cycle(&EASY{})
	h.wantStarted()
}

func TestEASYHeadLargerThanMachineStalls(t *testing.T) {
	// Prevented by validation, but the scheduler must not panic or spin.
	h := newHarness(t, 320, 32)
	j := h.addBatch(1, 352, 100)
	_ = j
	h.cycle(&EASY{})
	h.wantStarted()
}
