// Package workload generates synthetic Cloud Workload Format workloads
// following Section IV-D of the paper: the Lublin–Feitelson analytical model
// for runtimes and arrivals, the paper's two-stage uniform job-size model,
// a Bernoulli batch/dedicated split (P_D), and Elastic Control Command
// injection (P_E extensions, P_R reductions).
//
// Runtimes are exp(hyper-Gamma) with the mixing probability tied linearly to
// job size (p = pa*size + pb, clamped), the mechanism of the reference
// Lublin implementation; Table I of the paper gives the parameters verbatim.
// Arrivals use Gamma(alpha_arr, beta_arr) inter-arrival gaps with a daily
// rush-hour modulation controlled by ARAR (Table II); beta_arr is the load
// knob. Because the paper reports its x-axis in offered Load rather than
// beta_arr, the generator can also rescale arrival times to hit an exact
// target load — the same arrival-time-scaling technique the paper uses to
// vary the load of the SDSC log in Figure 1.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"elastisched/internal/cwf"
	"elastisched/internal/dist"
	"elastisched/internal/job"
)

// ArrivalMode selects how arrival instants are produced.
type ArrivalMode uint8

const (
	// InterArrival draws successive gaps from Gamma(AlphaArr, BetaArr)
	// scaled by ArrUnit seconds (default).
	InterArrival ArrivalMode = iota
	// HourlyCount draws a per-hour job count from Gamma(AlphaNum, BetaNum)
	// and spreads the arrivals uniformly within each hour — the "number of
	// jobs that arrive in each interval" reading of the paper's Table II.
	HourlyCount
	// DailyCycle is the Lublin-style cyclic day: the per-hour count from
	// HourlyCount is further modulated by an empirical hour-of-day weight
	// profile (quiet nights, a mid-day plateau peaking in the afternoon),
	// producing the characteristic daily rhythm of supercomputer logs.
	DailyCycle
)

// dayProfile is the relative arrival weight per hour of day, shaped after
// the published supercomputer-log daily cycles (minimum around 04-05h,
// plateau 09-17h, slow evening decline). Mean weight is 1.
var dayProfile = [24]float64{
	0.50, 0.42, 0.38, 0.35, 0.34, 0.38,
	0.50, 0.72, 1.10, 1.45, 1.60, 1.66,
	1.58, 1.62, 1.64, 1.60, 1.52, 1.40,
	1.24, 1.08, 0.92, 0.78, 0.66, 0.56,
}

// SizeModel selects the job-size distribution.
type SizeModel uint8

const (
	// TwoStageUniform is the paper's BlueGene/P model: small jobs
	// 32/64/96 with probability PS, large jobs 128..320 otherwise.
	TwoStageUniform SizeModel = iota
	// PowerOfTwo is an SDSC-SP2-like model: serial jobs with probability
	// 0.25, power-of-two jobs (2^k, k uniform in [1, log2(M)]) with
	// probability 0.5, and odd sizes uniform in [2, M/2] otherwise —
	// matching the archive observation that roughly two thirds of parallel
	// jobs use power-of-two partitions while the rest are irregular. Used
	// for the Figure 1 trace where packing properties must resemble the
	// real archive log rather than the 32-way quantized cloud workload.
	PowerOfTwo
)

// Params configures the generator. Zero value is not usable; start from
// DefaultParams.
type Params struct {
	Seed int64
	N    int // number of job submissions (N_J)

	M    int // machine size in processors
	Unit int // allocation quantum (node group size)

	Sizes SizeModel
	// PS is the probability a job is small (paper's P_S).
	PS float64
	// PD is the probability a job is dedicated (paper's P_D).
	PD float64
	// PE and PR are the per-job probabilities of injecting an ET or RT
	// elastic control command (paper fixes 0.2 and 0.1).
	PE, PR float64

	// Runtime model (paper Table I): runtime = exp(hyper-Gamma) seconds.
	Alpha1, Beta1 float64 // first Gamma (short jobs)
	Alpha2, Beta2 float64 // second Gamma (long jobs)
	PA, PB        float64 // p = PA*size + PB, clamped to [PClampLo, PClampHi]
	PClampLo      float64
	PClampHi      float64
	MaxRuntime    int64 // kill cap, seconds
	MinRuntime    int64

	// Estimate model. The paper's synthetic workloads use exact estimates
	// (estimate = actual runtime); the related work it cites (Mu'alem &
	// Feitelson) observes that backfilling improves when users
	// over-estimate by about 2x. EstFactor > 1 sets estimate =
	// EstFactor * actual for every job; EstUniformMax > 1 instead draws a
	// per-job factor uniformly from [1, EstUniformMax] (the "f-model" of
	// estimate inaccuracy). Both zero/one means exact estimates.
	EstFactor     float64
	EstUniformMax float64

	// Arrival model (paper Table II).
	Mode               ArrivalMode
	AlphaArr, BetaArr  float64
	AlphaNum, BetaNum  float64
	ARAR               float64 // arrive rush-to-all ratio
	ArrUnit            float64 // seconds per inter-arrival Gamma unit
	RushStart, RushEnd int     // rush hours of day [start, end)

	// TargetLoad, when > 0, rescales arrival times so the generated
	// workload's offered load matches it (two fixed-point iterations).
	TargetLoad float64

	// Dedicated jobs: requested start = arrival + 1 + Exp(DedLeadMean).
	DedLeadMean float64
	// ECC amount = 1 + Exp(ECCAmountFrac * dur); issue time uniform over
	// [arrival, arrival + dur].
	ECCAmountFrac float64
	// MaxECCPerJob caps commands per job (the paper allows imposing one).
	MaxECCPerJob int
	// SizeECC emits EP/RP (processor extension/reduction) commands instead
	// of ET/RT — the paper's future-work resource-dimension elasticity.
	// Amounts are in processors (mean ECCAmountFrac * size).
	SizeECC bool

	// PM is the probability a batch job is malleable: it gets processor
	// bounds MinProcs = Unit and MaxProcs = its submitted size, so the
	// scheduler may shrink it at runtime and later restore it (no growth
	// beyond submission). Flags are drawn in a post-pass with a separate
	// random stream seeded from Seed, so PM = 0 (the default) leaves the
	// generated workload byte-identical to the pre-malleability generator.
	PM float64
}

// DefaultParams returns the paper's experimental configuration: BlueGene/P
// with 320 processors in groups of 32, Table I runtime parameters, Table II
// arrival parameters, P_E = 0.2, P_R = 0.1.
func DefaultParams() Params {
	return Params{
		Seed: 1, N: 500,
		M: 320, Unit: 32,
		Sizes: TwoStageUniform,
		PS:    0.5, PD: 0, PE: 0, PR: 0,
		Alpha1: 4.2, Beta1: 0.94,
		Alpha2: 312, Beta2: 0.03,
		PA: -0.0054, PB: 0.78,
		PClampLo: 0.05, PClampHi: 0.95,
		MaxRuntime: 36 * 3600, MinRuntime: 1,
		Mode:     InterArrival,
		AlphaArr: 13.2303, BetaArr: 0.4101,
		AlphaNum: 15.1737, BetaNum: 0.9631,
		ARAR:      1.0225,
		ArrUnit:   60,
		RushStart: 8, RushEnd: 18,
		DedLeadMean:   3600,
		ECCAmountFrac: 0.25,
		MaxECCPerJob:  1,
	}
}

// SDSCLike returns parameters mimicking the SDSC SP2 log used for Figure 1:
// 128 processors, no allocation quantization, power-of-two job sizes. Load
// is then varied by arrival-time scaling (TargetLoad).
func SDSCLike() Params {
	p := DefaultParams()
	p.M = 128
	p.Unit = 1
	p.Sizes = PowerOfTwo
	return p
}

// CTCLike mimics the Cornell Theory Center SP2 log (the second trace the
// LOS paper evaluates): 512 processors, irregular sizes, markedly longer
// runtimes (CTC jobs skew long: the long-Gamma component dominates).
func CTCLike() Params {
	p := SDSCLike()
	p.M = 512
	p.PB = 0.6 // lower short-job probability at every size
	return p
}

// KTHLike mimics the KTH SP2 log (the third LOS-paper trace): a small
// 100-processor machine with mostly narrow jobs and shorter runtimes.
func KTHLike() Params {
	p := SDSCLike()
	p.M = 100
	p.PB = 0.9 // higher short-job probability
	return p
}

// Validate rejects inconsistent parameter sets.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("workload: N must be positive, got %d", p.N)
	}
	if p.M <= 0 || p.Unit <= 0 || p.M%p.Unit != 0 {
		return fmt.Errorf("workload: bad machine geometry M=%d unit=%d", p.M, p.Unit)
	}
	for name, v := range map[string]float64{"PS": p.PS, "PD": p.PD, "PE": p.PE, "PR": p.PR, "PM": p.PM} {
		if v < 0 || v > 1 {
			return fmt.Errorf("workload: probability %s=%g outside [0,1]", name, v)
		}
	}
	if p.PE+p.PR > 1 {
		return fmt.Errorf("workload: PE+PR=%g exceeds 1", p.PE+p.PR)
	}
	if p.Alpha1 <= 0 || p.Beta1 <= 0 || p.Alpha2 <= 0 || p.Beta2 <= 0 {
		return fmt.Errorf("workload: non-positive runtime Gamma parameters")
	}
	if p.AlphaArr <= 0 || p.BetaArr <= 0 {
		return fmt.Errorf("workload: non-positive arrival Gamma parameters")
	}
	if p.MaxRuntime < p.MinRuntime || p.MinRuntime < 1 {
		return fmt.Errorf("workload: bad runtime bounds [%d,%d]", p.MinRuntime, p.MaxRuntime)
	}
	if p.TargetLoad < 0 {
		return fmt.Errorf("workload: negative target load %g", p.TargetLoad)
	}
	if p.EstFactor < 0 || p.EstUniformMax < 0 {
		return fmt.Errorf("workload: negative estimate factor (%g, %g)", p.EstFactor, p.EstUniformMax)
	}
	return nil
}

// Generate produces a CWF workload from the parameters.
func Generate(p Params) (*cwf.Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(p.Seed))

	arrivals := p.arrivalTimes(r)
	type protoJob struct {
		size    int
		dur     int64 // user estimate
		actual  int64 // true runtime; 0 when equal to the estimate
		dedLead int64 // -1 for batch
	}
	protos := make([]protoJob, p.N)
	for i := range protos {
		size := p.sampleSize(r)
		actual := p.sampleRuntime(r, size)
		est := actual
		switch {
		case p.EstUniformMax > 1:
			f := 1 + r.Float64()*(p.EstUniformMax-1)
			est = int64(math.Round(float64(actual) * f))
		case p.EstFactor > 1:
			est = int64(math.Round(float64(actual) * p.EstFactor))
		}
		protos[i] = protoJob{size: size, dur: est, dedLead: -1}
		if est != actual {
			protos[i].actual = actual
		}
		if r.Float64() < p.PD {
			lead := 1 + int64(dist.Exponential{Mean: p.DedLeadMean}.Sample(r))
			protos[i].dedLead = lead
		}
	}

	eff := func(i int) int64 {
		if protos[i].actual > 0 && protos[i].actual < protos[i].dur {
			return protos[i].actual
		}
		return protos[i].dur
	}
	if p.TargetLoad > 0 {
		var area float64
		for i, pr := range protos {
			area += float64(pr.size) * float64(eff(i))
		}
		arrivals = rescaleToLoad(arrivals, area, p.M, p.TargetLoad,
			eff, func(i int) int64 { return protos[i].dedLead })
	}

	w := &cwf.Workload{
		Header: []string{
			"Cloud Workload Format (CWF) synthetic trace",
			fmt.Sprintf("MaxNodes: %d", p.M),
			fmt.Sprintf("Generator: lublin+two-stage-uniform seed=%d N=%d PS=%g PD=%g PE=%g PR=%g", p.Seed, p.N, p.PS, p.PD, p.PE, p.PR),
		},
		// One backing array for all jobs instead of N little heap objects;
		// commands pre-sized to their expected count. (Consumers receive
		// *job.Job as before — the engine copies jobs before mutating them,
		// so sharing a backing array is as safe as sharing the pointers.)
		Jobs:     make([]*job.Job, 0, p.N),
		Commands: make([]cwf.Command, 0, int(float64(p.N)*(p.PE+p.PR))+8),
	}
	backing := make([]job.Job, p.N)
	for i, pr := range protos {
		j := &backing[i]
		*j = job.Job{
			ID:       i + 1,
			Size:     pr.size,
			Dur:      pr.dur,
			Actual:   pr.actual,
			Arrival:  arrivals[i],
			ReqStart: -1,
			Class:    job.Batch,
		}
		if pr.dedLead >= 0 {
			j.Class = job.Dedicated
			j.ReqStart = j.Arrival + pr.dedLead
		}
		w.Jobs = append(w.Jobs, j)

		// ECC injection: ET with probability PE, RT with PR (disjoint).
		u := r.Float64()
		var typ cwf.ReqType
		switch {
		case u < p.PE:
			typ = cwf.ExtendTime
		case u < p.PE+p.PR:
			typ = cwf.ReduceTime
		default:
			continue
		}
		var amt int64
		if p.SizeECC {
			if typ == cwf.ExtendTime {
				typ = cwf.ExtendProc
			} else {
				typ = cwf.ReduceProc
			}
			amt = 1 + int64(dist.Exponential{Mean: p.ECCAmountFrac * float64(j.Size)}.Sample(r))
			if typ == cwf.ReduceProc && amt >= int64(j.Size) {
				amt = int64(j.Size) - 1
			}
		} else {
			amt = 1 + int64(dist.Exponential{Mean: p.ECCAmountFrac * float64(j.Dur)}.Sample(r))
			if typ == cwf.ReduceTime && amt >= j.Dur {
				amt = j.Dur - 1
			}
		}
		if amt <= 0 {
			continue
		}
		issue := j.Arrival + int64(r.Float64()*float64(j.Dur))
		w.Commands = append(w.Commands, cwf.Command{JobID: j.ID, Issue: issue, Type: typ, Amount: amt})
	}
	if p.PM > 0 {
		// Malleability post-pass on its own random stream: the main
		// generation stream above consumes exactly the same draws whether or
		// not PM is set, so PM = 0 workloads stay byte-identical. Jobs that
		// already carry EP/RP commands keep their profile-defined sizes —
		// bounds capped at the submitted size would contradict a pending
		// extension, so such jobs stay rigid (the draw is still consumed to
		// keep flag assignment stable across SizeECC settings).
		sized := make(map[int]bool)
		for _, c := range w.Commands {
			if c.Type == cwf.ExtendProc || c.Type == cwf.ReduceProc {
				sized[c.JobID] = true
			}
		}
		mr := rand.New(rand.NewSource(p.Seed ^ 0x6d616c6c)) // "mall"
		for _, j := range w.Jobs {
			if j.Class != job.Batch || j.Size <= p.Unit {
				continue
			}
			if mr.Float64() < p.PM && !sized[j.ID] {
				j.MinProcs = p.Unit
				j.MaxProcs = j.Size
			}
		}
	}
	w.Sort()
	if err := w.Validate(p.M); err != nil {
		return nil, fmt.Errorf("workload: generated invalid workload: %v", err)
	}
	return w, nil
}

// sampleSize draws a job size in processors.
func (p Params) sampleSize(r *rand.Rand) int {
	switch p.Sizes {
	case PowerOfTwo:
		u := r.Float64()
		switch {
		case u < 0.25:
			return 1
		case u < 0.75:
			maxLog := int(math.Log2(float64(p.M)))
			return 1 << (1 + r.Intn(maxLog))
		default:
			return 2 + r.Intn(p.M/2-1)
		}
	default:
		return dist.TwoStageUniform{
			PSmall:  p.PS,
			SmallLo: 1, SmallHi: 3,
			LargeLo: 4, LargeHi: p.M / p.Unit,
			Unit: p.Unit,
		}.Sample(r)
	}
}

// sampleRuntime draws a runtime correlated with job size via
// p = PA*size + PB (clamped): the probability of the *short* Gamma falls as
// the size grows, so large jobs run longer, as in the Lublin model.
func (p Params) sampleRuntime(r *rand.Rand, size int) int64 {
	mix := dist.Clamp(p.PA*float64(size)+p.PB, p.PClampLo, p.PClampHi)
	hg := dist.HyperGamma{
		First:  dist.Gamma{Alpha: p.Alpha1, Beta: p.Beta1},
		Second: dist.Gamma{Alpha: p.Alpha2, Beta: p.Beta2},
		P:      mix,
	}
	rt := int64(math.Round(math.Exp(hg.Sample(r))))
	if rt < p.MinRuntime {
		rt = p.MinRuntime
	}
	if rt > p.MaxRuntime {
		rt = p.MaxRuntime
	}
	return rt
}

// arrivalTimes produces N non-decreasing arrival instants starting at 0.
func (p Params) arrivalTimes(r *rand.Rand) []int64 {
	out := make([]int64, 0, p.N)
	switch p.Mode {
	case HourlyCount, DailyCycle:
		var hour int64
		var offs []float64 // per-hour scratch, reused across hours
		for len(out) < p.N {
			weight := p.rushWeight(int(hour % 24))
			if p.Mode == DailyCycle {
				weight *= dayProfile[int(hour%24)]
			}
			n := int(math.Round(dist.Gamma{Alpha: p.AlphaNum, Beta: p.BetaNum}.Sample(r) * weight))
			offs = offs[:0]
			for i := 0; i < n; i++ {
				offs = append(offs, r.Float64()*3600)
			}
			sort.Float64s(offs)
			for _, o := range offs {
				if len(out) == p.N {
					break
				}
				out = append(out, hour*3600+int64(o))
			}
			hour++
		}
	default:
		g := dist.Gamma{Alpha: p.AlphaArr, Beta: p.BetaArr}
		var t float64
		for len(out) < p.N {
			gap := g.Sample(r) * p.ArrUnit
			hourOfDay := int(t/3600) % 24
			gap /= p.rushWeight(hourOfDay)
			if gap < 1 {
				gap = 1
			}
			t += gap
			out = append(out, int64(t))
		}
	}
	return out
}

// rushWeight returns the relative arrival-rate multiplier for an hour of
// day, implementing the ARAR (arrive rush-to-all ratio) modulation.
func (p Params) rushWeight(hour int) float64 {
	if p.ARAR <= 0 {
		return 1
	}
	if hour >= p.RushStart && hour < p.RushEnd {
		return p.ARAR
	}
	return 1 / p.ARAR
}

// rescaleToLoad multiplies the arrival span by a factor so the offered load
// (area / (span * M)) matches target. Two iterations account for the tail
// of the last job's duration in the span.
func rescaleToLoad(arrivals []int64, area float64, m int, target float64,
	dur func(i int) int64, dedLead func(i int) int64) []int64 {
	if len(arrivals) == 0 {
		return arrivals
	}
	cur := make([]int64, len(arrivals))
	copy(cur, arrivals)
	for iter := 0; iter < 3; iter++ {
		first, last := cur[0], cur[0]
		for i, a := range cur {
			if a < first {
				first = a
			}
			end := a + dur(i)
			if l := dedLead(i); l >= 0 {
				end = a + l + dur(i)
			}
			if end > last {
				last = end
			}
		}
		span := float64(last - first)
		if span <= 0 {
			break
		}
		realized := area / (span * float64(m))
		factor := realized / target
		if math.Abs(factor-1) < 1e-4 {
			break
		}
		for i := range cur {
			cur[i] = first + int64(float64(cur[i]-first)*factor)
		}
	}
	return cur
}
