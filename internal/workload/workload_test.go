package workload

import (
	"math"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
	"elastisched/internal/stats"
)

func gen(t *testing.T, mut func(*Params)) *cwf.Workload {
	t.Helper()
	p := DefaultParams()
	if mut != nil {
		mut(&p)
	}
	w, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateCount(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 123 })
	if len(w.Jobs) != 123 {
		t.Fatalf("generated %d jobs, want 123", len(w.Jobs))
	}
}

func TestDeterministic(t *testing.T) {
	a := gen(t, func(p *Params) { p.PD, p.PE, p.PR = 0.3, 0.2, 0.1 })
	b := gen(t, func(p *Params) { p.PD, p.PE, p.PR = 0.3, 0.2, 0.1 })
	if len(a.Jobs) != len(b.Jobs) || len(a.Commands) != len(b.Commands) {
		t.Fatal("same seed gave different counts")
	}
	for i := range a.Jobs {
		x, y := a.Jobs[i], b.Jobs[i]
		if x.ID != y.ID || x.Size != y.Size || x.Dur != y.Dur || x.Arrival != y.Arrival ||
			x.Class != y.Class || x.ReqStart != y.ReqStart {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	for i := range a.Commands {
		if a.Commands[i] != b.Commands[i] {
			t.Fatalf("command %d differs across identical seeds", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := gen(t, nil)
	b := gen(t, func(p *Params) { p.Seed = 2 })
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].Size != b.Jobs[i].Size || a.Jobs[i].Dur != b.Jobs[i].Dur {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSizesInPaperSupport(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 2000 })
	for _, j := range w.Jobs {
		if j.Size%32 != 0 || j.Size < 32 || j.Size > 320 {
			t.Fatalf("job %d size %d outside BlueGene/P support", j.ID, j.Size)
		}
	}
}

func TestSmallFractionTracksPS(t *testing.T) {
	for _, ps := range []float64{0.2, 0.5, 0.8} {
		w := gen(t, func(p *Params) { p.N = 4000; p.PS = ps })
		small := 0
		for _, j := range w.Jobs {
			if j.Size <= 96 {
				small++
			}
		}
		got := float64(small) / float64(len(w.Jobs))
		if math.Abs(got-ps) > 0.03 {
			t.Errorf("PS=%g: small fraction %g", ps, got)
		}
	}
}

func TestDedicatedFractionTracksPD(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 4000; p.PD = 0.5 })
	got := float64(w.NumDedicated()) / float64(len(w.Jobs))
	if math.Abs(got-0.5) > 0.03 {
		t.Errorf("dedicated fraction %g, want ~0.5", got)
	}
	for _, j := range w.Jobs {
		if j.Class == job.Dedicated && j.ReqStart <= j.Arrival {
			t.Fatalf("dedicated job %d starts at/before arrival", j.ID)
		}
	}
}

func TestECCFractionTracksPEPR(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 4000; p.PE = 0.2; p.PR = 0.1 })
	got := float64(len(w.Commands)) / float64(len(w.Jobs))
	if math.Abs(got-0.3) > 0.03 {
		t.Errorf("ECC fraction %g, want ~0.3", got)
	}
	ext, red := 0, 0
	for _, c := range w.Commands {
		switch c.Type {
		case cwf.ExtendTime:
			ext++
		case cwf.ReduceTime:
			red++
		default:
			t.Fatalf("unexpected command type %v", c.Type)
		}
		if c.Amount <= 0 {
			t.Fatal("non-positive ECC amount")
		}
	}
	if ext == 0 || red == 0 {
		t.Error("expected both ET and RT commands")
	}
	if float64(ext)/float64(ext+red) < 0.55 {
		t.Errorf("ET share %d/%d, want about 2/3", ext, ext+red)
	}
}

func TestSizeECCMode(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 1000; p.PE = 0.2; p.PR = 0.1; p.SizeECC = true })
	if len(w.Commands) == 0 {
		t.Fatal("no size commands generated")
	}
	for _, c := range w.Commands {
		if c.Type != cwf.ExtendProc && c.Type != cwf.ReduceProc {
			t.Fatalf("SizeECC produced %v", c.Type)
		}
	}
}

func TestRuntimeBounds(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 3000 })
	for _, j := range w.Jobs {
		if j.Dur < 1 || j.Dur > 36*3600 {
			t.Fatalf("runtime %d outside [1, 36h]", j.Dur)
		}
	}
}

func TestRuntimeSizeCorrelation(t *testing.T) {
	// Lublin correlation: large jobs run longer on average (p falls with
	// size, selecting the long Gamma more often).
	w := gen(t, func(p *Params) { p.N = 6000; p.PS = 0.5 })
	var smallSum, largeSum, smallN, largeN float64
	for _, j := range w.Jobs {
		if j.Size <= 96 {
			smallSum += float64(j.Dur)
			smallN++
		} else {
			largeSum += float64(j.Dur)
			largeN++
		}
	}
	if smallSum/smallN >= largeSum/largeN {
		t.Errorf("small jobs run longer on average (%.0f vs %.0f): correlation inverted",
			smallSum/smallN, largeSum/largeN)
	}
}

func TestArrivalsNonDecreasing(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 2000 })
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].Arrival < w.Jobs[i-1].Arrival {
			t.Fatal("arrivals not sorted")
		}
	}
	if w.Jobs[0].Arrival < 0 {
		t.Fatal("negative arrival")
	}
}

func TestTargetLoadHit(t *testing.T) {
	for _, target := range []float64{0.5, 0.7, 0.9, 1.0} {
		w := gen(t, func(p *Params) { p.TargetLoad = target })
		got := w.Load(320)
		if math.Abs(got-target)/target > 0.05 {
			t.Errorf("target load %g: realized %g", target, got)
		}
	}
}

func TestBetaArrChangesRate(t *testing.T) {
	lo := gen(t, func(p *Params) { p.BetaArr = 0.4101 })
	hi := gen(t, func(p *Params) { p.BetaArr = 0.6101 })
	loSpan := lo.Jobs[len(lo.Jobs)-1].Arrival - lo.Jobs[0].Arrival
	hiSpan := hi.Jobs[len(hi.Jobs)-1].Arrival - hi.Jobs[0].Arrival
	if hiSpan <= loSpan {
		t.Errorf("larger beta_arr should stretch arrivals: %d vs %d", hiSpan, loSpan)
	}
}

func TestHourlyCountMode(t *testing.T) {
	w := gen(t, func(p *Params) { p.Mode = HourlyCount; p.N = 500 })
	if len(w.Jobs) != 500 {
		t.Fatalf("hourly mode generated %d jobs", len(w.Jobs))
	}
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].Arrival < w.Jobs[i-1].Arrival {
			t.Fatal("hourly mode arrivals not sorted")
		}
	}
}

func TestSDSCLike(t *testing.T) {
	p := SDSCLike()
	p.N = 1000
	w, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	serial, pow2, odd := 0, 0, 0
	for _, j := range w.Jobs {
		switch {
		case j.Size == 1:
			serial++
		case j.Size&(j.Size-1) == 0 && j.Size <= 128:
			pow2++
		case j.Size >= 2 && j.Size <= 64:
			odd++
		default:
			t.Fatalf("SDSC-like size %d outside the model's support", j.Size)
		}
	}
	if serial == 0 || pow2 == 0 || odd == 0 {
		t.Error("expected a mix of serial, power-of-two and irregular jobs")
	}
	frac := float64(serial) / float64(len(w.Jobs))
	if math.Abs(frac-0.25) > 0.04 {
		t.Errorf("serial fraction %g, want ~0.25", frac)
	}
}

func TestGeneratedWorkloadValidates(t *testing.T) {
	w := gen(t, func(p *Params) { p.PD, p.PE, p.PR = 0.4, 0.2, 0.1 })
	if err := w.Validate(320); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.Unit = 0 },
		func(p *Params) { p.M = 100; p.Unit = 32 },
		func(p *Params) { p.PS = 1.5 },
		func(p *Params) { p.PD = -0.1 },
		func(p *Params) { p.PE = 0.8; p.PR = 0.5 },
		func(p *Params) { p.Alpha1 = 0 },
		func(p *Params) { p.BetaArr = 0 },
		func(p *Params) { p.MinRuntime = 0 },
		func(p *Params) { p.MaxRuntime = 1; p.MinRuntime = 10 },
		func(p *Params) { p.TargetLoad = -1 },
	}
	for i, mut := range cases {
		p := DefaultParams()
		mut(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRescaleToLoadStretchesAndCompresses(t *testing.T) {
	// Construct arrivals manually: rescale should move load toward target.
	arr := []int64{0, 100, 200, 300}
	durs := []int64{50, 50, 50, 50}
	area := float64(4 * 320 * 50) // four full-machine 50s jobs
	out := rescaleToLoad(arr, area, 320, 0.5,
		func(i int) int64 { return durs[i] }, func(int) int64 { return -1 })
	span := float64(out[3] + 50 - out[0])
	got := area / (span * 320)
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("rescaled load %g, want ~0.5", got)
	}
}

func TestRushWeight(t *testing.T) {
	p := DefaultParams()
	if p.rushWeight(12) <= p.rushWeight(2) {
		t.Error("rush hours should have higher weight")
	}
	p.ARAR = 0
	if p.rushWeight(12) != 1 {
		t.Error("ARAR<=0 should disable modulation")
	}
}

func TestECCIssueWithinJobLife(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 2000; p.PE = 0.3; p.PR = 0.1 })
	byID := map[int]*job.Job{}
	for _, j := range w.Jobs {
		byID[j.ID] = j
	}
	for _, c := range w.Commands {
		j := byID[c.JobID]
		if c.Issue < j.Arrival || c.Issue > j.Arrival+j.Dur {
			t.Fatalf("command %v outside job life [%d, %d]", c, j.Arrival, j.Arrival+j.Dur)
		}
	}
}

func TestRTNeverBelowOneSecond(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 3000; p.PE = 0; p.PR = 1; p.ECCAmountFrac = 5 })
	byID := map[int]*job.Job{}
	for _, j := range w.Jobs {
		byID[j.ID] = j
	}
	for _, c := range w.Commands {
		if c.Type != cwf.ReduceTime {
			t.Fatal("expected RT only")
		}
		if c.Amount >= byID[c.JobID].Dur {
			t.Fatalf("RT amount %d >= dur %d", c.Amount, byID[c.JobID].Dur)
		}
	}
}

func TestEstFactorScalesEstimates(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 500; p.EstFactor = 2 })
	for _, j := range w.Jobs {
		if j.Actual == 0 {
			t.Fatalf("job %d has no actual runtime under EstFactor=2", j.ID)
		}
		want := int64(math.Round(float64(j.Actual) * 2))
		if j.Dur != want {
			t.Fatalf("job %d estimate %d, want %d (2x %d)", j.ID, j.Dur, want, j.Actual)
		}
	}
}

func TestEstUniformFactorInRange(t *testing.T) {
	w := gen(t, func(p *Params) { p.N = 1000; p.EstUniformMax = 5 })
	inflated := 0
	for _, j := range w.Jobs {
		actual := j.Actual
		if actual == 0 {
			actual = j.Dur // factor rounded to 1
		}
		f := float64(j.Dur) / float64(actual)
		if f < 0.99 || f > 5.01 {
			t.Fatalf("job %d factor %g outside [1, 5]", j.ID, f)
		}
		if j.Dur > actual {
			inflated++
		}
	}
	if inflated < len(w.Jobs)/2 {
		t.Errorf("only %d/%d jobs inflated", inflated, len(w.Jobs))
	}
}

func TestExactEstimatesByDefault(t *testing.T) {
	w := gen(t, nil)
	for _, j := range w.Jobs {
		if j.Actual != 0 {
			t.Fatalf("job %d has actual %d under exact estimates", j.ID, j.Actual)
		}
	}
}

func TestNegativeEstFactorRejected(t *testing.T) {
	p := DefaultParams()
	p.EstFactor = -1
	if _, err := Generate(p); err == nil {
		t.Error("negative EstFactor accepted")
	}
}

func TestTargetLoadUsesActualRuntimes(t *testing.T) {
	// With 3x over-estimation the offered load must still land on target
	// because load is defined over actual runtimes.
	w := gen(t, func(p *Params) { p.EstFactor = 3; p.TargetLoad = 0.8 })
	got := w.Load(320)
	if math.Abs(got-0.8)/0.8 > 0.05 {
		t.Errorf("realized load %g, want ~0.8", got)
	}
}

func TestDailyCycleMode(t *testing.T) {
	w := gen(t, func(p *Params) { p.Mode = DailyCycle; p.N = 3000 })
	if len(w.Jobs) != 3000 {
		t.Fatalf("generated %d jobs", len(w.Jobs))
	}
	// Daytime (09-17h) must receive clearly more arrivals than night
	// (00-06h).
	day, night := 0, 0
	for _, j := range w.Jobs {
		h := int(j.Arrival/3600) % 24
		switch {
		case h >= 9 && h < 17:
			day++
		case h < 6:
			night++
		}
	}
	if day <= 2*night {
		t.Errorf("daily cycle too flat: day=%d night=%d", day, night)
	}
	for i := 1; i < len(w.Jobs); i++ {
		if w.Jobs[i].Arrival < w.Jobs[i-1].Arrival {
			t.Fatal("daily-cycle arrivals not sorted")
		}
	}
}

func TestDayProfileNormalized(t *testing.T) {
	var sum float64
	for _, wgt := range dayProfile {
		sum += wgt
	}
	if math.Abs(sum/24-1) > 0.02 {
		t.Errorf("day profile mean %.3f, want ~1", sum/24)
	}
}

// TestRuntimeModelGoodnessOfFit applies the Kolmogorov-Smirnov test the
// paper's workload-model source uses: the log of generated runtimes for a
// fixed job size must follow the hyper-Gamma mixture with the Table I
// parameters (p clamped at 0.05 for 320-processor jobs).
func TestRuntimeModelGoodnessOfFit(t *testing.T) {
	p := DefaultParams()
	p.N = 7000
	p.PS = 0 // large jobs only
	w, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var logs []float64
	for _, j := range w.Jobs {
		if j.Size == 320 && j.Dur > 1 && j.Dur < p.MaxRuntime {
			logs = append(logs, math.Log(float64(j.Dur)))
		}
	}
	if len(logs) < 500 {
		t.Fatalf("only %d full-machine jobs", len(logs))
	}
	mix := 0.05 // clamped p for size 320
	cdf := func(y float64) float64 {
		return mix*stats.GammaCDF(4.2, 0.94, y) + (1-mix)*stats.GammaCDF(312, 0.03, y)
	}
	d, pv, err := stats.KSOneSample(logs, cdf)
	if err != nil {
		t.Fatal(err)
	}
	if pv < 1e-3 {
		t.Errorf("KS rejects the runtime model: D=%.4f p=%.5f (n=%d)", d, pv, len(logs))
	}
}

// TestRuntimeDistributionStableAcrossSeeds: two independently seeded
// workloads must draw runtimes from the same distribution (two-sample KS).
func TestRuntimeDistributionStableAcrossSeeds(t *testing.T) {
	sample := func(seed int64) []float64 {
		p := DefaultParams()
		p.N = 3000
		p.Seed = seed
		w, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, p.N)
		for _, j := range w.Jobs {
			out = append(out, float64(j.Dur))
		}
		return out
	}
	_, pv, err := stats.KSTwoSample(sample(21), sample(22))
	if err != nil {
		t.Fatal(err)
	}
	if pv < 1e-3 {
		t.Errorf("seeds draw from different distributions: p=%g", pv)
	}
}

func TestCTCAndKTHLike(t *testing.T) {
	for _, c := range []struct {
		name string
		p    Params
		m    int
	}{
		{"CTC", CTCLike(), 512},
		{"KTH", KTHLike(), 100},
	} {
		c.p.N = 800
		w, err := Generate(c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := w.Validate(c.m); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, j := range w.Jobs {
			if j.Size > c.m {
				t.Fatalf("%s: size %d exceeds machine %d", c.name, j.Size, c.m)
			}
		}
	}
	// CTC (long-skewed) should run longer than KTH (short-skewed) on
	// average for comparable sizes.
	mean := func(p Params) float64 {
		p.N = 2000
		w, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, j := range w.Jobs {
			sum += float64(j.Dur)
		}
		return sum / float64(len(w.Jobs))
	}
	if mean(CTCLike()) <= mean(KTHLike()) {
		t.Error("CTC-like runtimes should exceed KTH-like")
	}
}

func TestRescaleDegenerateCases(t *testing.T) {
	if out := rescaleToLoad(nil, 0, 320, 0.5, nil, nil); out != nil {
		t.Error("empty arrivals should pass through")
	}
	// Single arrival: span is dominated by the job duration; rescale must
	// not move the only point or divide by zero.
	arr := []int64{100}
	out := rescaleToLoad(arr, 320*50, 320, 0.5,
		func(int) int64 { return 50 }, func(int) int64 { return -1 })
	if len(out) != 1 || out[0] != 100 {
		t.Errorf("single arrival mangled: %v", out)
	}
}
