// Package simkit provides a minimal deterministic discrete-event simulation
// kernel: a monotonic clock and a cancellable priority event queue.
//
// It plays the role GridSim/ALEA play in the paper's Java framework: events
// (job arrival, job completion, dedicated-job due times, elastic control
// commands) are delivered in non-decreasing time order, with FIFO ordering
// among events that share a timestamp. Event handles can be cancelled, which
// is required when an Elastic Control Command moves a running job's kill-by
// time and its completion event must be rescheduled.
//
// The kernel recycles event records through a free list so the steady-state
// schedule/dispatch cycle performs no heap allocation. Handles carry a
// generation counter: a handle taken out on a record that has since fired
// (or been cancelled) and been reissued for a new event can never cancel
// the new occupant.
//
// Cancellation is lazy: a cancelled event's record is voided (generation
// bump) but its queue entry stays until it surfaces at the top, where it is
// discarded. The queue therefore never needs random-access removal, its
// entries embed the (time, seq) ordering key — no pointer chasing in the
// hot comparisons — and sift operations never write back into event
// records. A compaction pass bounds the garbage when cancellations dominate.
package simkit

import (
	"fmt"
	"sort"
)

// Time is simulation time in integer seconds. Integer time keeps event
// ordering exact and runs reproducible for a given seed.
type Time = int64

// Handler is the callback attached to a scheduled event.
type Handler func(now Time)

// ArgHandler is a handler that receives a caller-supplied argument. AtArg
// lets long-lived callers (the engine's arrival/completion paths) schedule
// with one shared ArgHandler instead of allocating a fresh closure per
// event.
type ArgHandler func(now Time, arg any)

// event is one scheduled occurrence's record. Records are pooled: gen
// increments each time the record is voided (fired, cancelled, or
// recycled), invalidating outstanding handles.
type event struct {
	time Time
	gen  uint64
	fn   Handler
	afn  ArgHandler
	arg  any
}

// Handle identifies one scheduled event. The zero Handle is valid and
// refers to no event: Scheduled reports false, Time reports !ok, and
// Cancel is a guaranteed no-op. Handles stay safe after the event fires or
// is cancelled: the record's generation counter has moved on, so a stale
// Cancel is a no-op even if the record has been reissued — callers that
// keep handles in lookup tables (the engine's completion table) may Cancel
// whatever the table returns, including the zero Handle for an absent ID,
// without guarding.
type Handle struct {
	ev  *event
	gen uint64
}

// Scheduled reports whether the handle's event is still pending.
func (h Handle) Scheduled() bool { return h.ev != nil && h.ev.gen == h.gen }

// Time returns the pending event's fire time; ok is false if the event has
// already fired or been cancelled.
func (h Handle) Time() (t Time, ok bool) {
	if !h.Scheduled() {
		return 0, false
	}
	return h.ev.time, true
}

// chunkShift sizes the event arena's chunks (1<<chunkShift records each).
const chunkShift = 7

// Engine is the event loop. The zero value is not usable; use New.
//
// Event records live in chunked arenas and are addressed by a small integer
// id. Queue entries carry the id, not a pointer, so the queue is a
// pointer-free array: sift operations move plain bytes with no GC write
// barriers, and the collector never scans the queue.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stepped uint64 // events dispatched
	live    int    // scheduled, uncancelled events
	dead    int    // cancelled entries still buried in the queue
	chunks  [][]event
	freeIDs []int32
}

// at returns the record for an event id.
func (e *Engine) at(id int32) *event {
	return &e.chunks[id>>chunkShift][id&(1<<chunkShift-1)]
}

// New returns an empty engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Dispatched returns the number of events dispatched so far.
func (e *Engine) Dispatched() uint64 { return e.stepped }

// Pending returns the number of scheduled events. O(1): a live counter is
// maintained across At, Cancel, and dispatch.
func (e *Engine) Pending() int { return e.live }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) is an error in the caller; the engine panics to surface the bug
// instead of silently reordering history.
func (e *Engine) At(t Time, fn Handler) Handle {
	ev := e.at(e.acquire(t))
	ev.fn = fn
	return Handle{ev, ev.gen}
}

// AtArg schedules fn(t, arg) at absolute time t. Unlike At, the callback is
// a shared function plus an argument, so a caller dispatching many events
// through one handler performs no per-event closure allocation.
func (e *Engine) AtArg(t Time, fn ArgHandler, arg any) Handle {
	ev := e.at(e.acquire(t))
	ev.afn = fn
	ev.arg = arg
	return Handle{ev, ev.gen}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn Handler) Handle {
	return e.At(e.now+d, fn)
}

// acquire takes an event record from the free list (or grows the arena by
// one chunk), stamps it, and enqueues it.
func (e *Engine) acquire(t Time) int32 {
	if t < e.now {
		panic(fmt.Sprintf("simkit: scheduling event at %d before now %d", t, e.now))
	}
	if len(e.freeIDs) == 0 {
		// Grow the arena a chunk at a time: cold-start scheduling costs one
		// allocation per 1<<chunkShift events, not one per event.
		base := int32(len(e.chunks)) << chunkShift
		e.chunks = append(e.chunks, make([]event, 1<<chunkShift))
		for i := int32(1<<chunkShift - 1); i >= 0; i-- {
			e.freeIDs = append(e.freeIDs, base+i)
		}
	}
	id := e.freeIDs[len(e.freeIDs)-1]
	e.freeIDs = e.freeIDs[:len(e.freeIDs)-1]
	ev := e.at(id)
	ev.time = t
	e.queue.push(entry{time: t, seq: e.seq, gen: ev.gen, id: id})
	e.seq++
	e.live++
	return id
}

// recycle invalidates outstanding handles and returns the record to the
// free list. Callback references are dropped so the arena does not pin
// closures or arguments.
func (e *Engine) recycle(id int32) {
	ev := e.at(id)
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	e.freeIDs = append(e.freeIDs, id)
}

// Cancel voids a scheduled event. Cancelling an already-fired,
// already-cancelled, or zero handle is a no-op and returns false — the
// generation check makes a stale handle harmless even after its record has
// been reissued. The queue entry is dropped lazily when it surfaces; if
// cancelled entries come to dominate the queue, it is compacted.
func (e *Engine) Cancel(h Handle) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen {
		return false
	}
	// Void the record but keep it out of the pool: its queue entry still
	// references it and will release it when popped.
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	e.live--
	e.dead++
	if e.dead > 64 && e.dead > len(e.queue)/2 {
		e.compact()
	}
	return true
}

// compact removes every cancelled entry from the queue and restores the
// heap invariant. Pop order depends only on the (time, seq) total order, so
// rebuilding the heap layout cannot change dispatch order.
func (e *Engine) compact() {
	q := e.queue[:0]
	for _, en := range e.queue {
		if en.gen == e.at(en.id).gen {
			q = append(q, en)
		} else {
			e.recycle(en.id)
		}
	}
	e.queue = q
	for i := len(q)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
	e.dead = 0
}

// Step dispatches the single earliest pending event and advances the clock
// to its timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		en := e.queue.pop()
		ev := e.at(en.id)
		if ev.gen != en.gen {
			// Cancelled: release the record, keep looking.
			e.dead--
			e.recycle(en.id)
			continue
		}
		e.now = en.time
		e.stepped++
		e.live--
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		// Recycle before invoking: the record is reusable by events the
		// handler schedules, and the generation bump voids the fired
		// event's handles.
		e.recycle(en.id)
		if afn != nil {
			afn(e.now, arg)
		} else {
			fn(e.now)
		}
		return true
	}
	return false
}

// StepTimestamp dispatches every event that shares the earliest pending
// timestamp, including events scheduled *at that same timestamp* by the
// handlers themselves. It returns the timestamp and true, or (0, false) if
// no events were pending. This is the granularity at which the scheduler is
// re-invoked: once per distinct simulated instant.
func (e *Engine) StepTimestamp() (Time, bool) {
	t, ok := e.PeekTime()
	if !ok {
		return 0, false
	}
	for {
		tt, ok := e.PeekTime()
		if !ok || tt != t {
			return t, true
		}
		e.Step()
	}
}

// PeekTime returns the timestamp of the earliest pending event, pruning
// any cancelled entries that have reached the top of the queue.
func (e *Engine) PeekTime() (Time, bool) {
	for len(e.queue) > 0 {
		en := &e.queue[0]
		if en.gen != e.at(en.id).gen {
			e.dead--
			e.recycle(e.queue.pop().id)
			continue
		}
		return en.time, true
	}
	return 0, false
}

// Run dispatches events until the queue is empty and returns the final
// clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil dispatches events with timestamps <= deadline and then stops,
// leaving later events pending. The clock is left at the last dispatched
// event (it does not jump to the deadline).
func (e *Engine) RunUntil(deadline Time) {
	for {
		t, ok := e.PeekTime()
		if !ok || t > deadline {
			return
		}
		e.Step()
	}
}

// PendingEvent describes one live scheduled event, for state capture. Arg
// is the AtArg argument (nil for At/After events); Handle identifies the
// event so callers can match it against handles they retained (e.g. a
// completion table). Ordering in the slice returned by PendingInOrder is
// dispatch order.
type PendingEvent struct {
	Handle Handle
	Time   Time
	Arg    any
}

// PendingInOrder returns every live (uncancelled, unfired) event in the
// exact order the engine would dispatch them: ascending (time, seq). It is
// the capture half of a snapshot: a caller that re-schedules equivalent
// events into a fresh engine in this order reproduces the dispatch order
// exactly, because seq numbers are assigned monotonically at scheduling
// time.
func (e *Engine) PendingInOrder() []PendingEvent {
	type ordered struct {
		time Time
		seq  uint64
		id   int32
	}
	live := make([]ordered, 0, e.live)
	for _, en := range e.queue {
		if en.gen == e.at(en.id).gen {
			live = append(live, ordered{en.time, en.seq, en.id})
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].time != live[j].time {
			return live[i].time < live[j].time
		}
		return live[i].seq < live[j].seq
	})
	out := make([]PendingEvent, len(live))
	for i, o := range live {
		ev := e.at(o.id)
		out[i] = PendingEvent{Handle: Handle{ev, ev.gen}, Time: o.time, Arg: ev.arg}
	}
	return out
}

// RestoreClock primes the engine with the clock and dispatch counter of a
// captured run, the restore half of a snapshot. The intended sequence on a
// fresh engine is: re-schedule the captured pending events in
// PendingInOrder order (all of them land at times >= the captured now),
// then RestoreClock. Restoring onto an engine whose clock has already
// advanced past now is a caller bug and panics.
func (e *Engine) RestoreClock(now Time, dispatched uint64) {
	if e.now > now {
		panic(fmt.Sprintf("simkit: RestoreClock(%d) with clock already at %d", now, e.now))
	}
	for _, en := range e.queue {
		if en.gen == e.at(en.id).gen && en.time < now {
			panic(fmt.Sprintf("simkit: RestoreClock(%d) with event pending at %d", now, en.time))
		}
	}
	e.now = now
	e.stepped = dispatched
}

// entry is one queue slot. It embeds the ordering key so heap comparisons
// never chase the event record, and carries the generation the event was
// scheduled with so a cancelled record (generation moved on) is
// recognizable when the entry surfaces. Entries hold the record's arena id
// rather than a pointer, keeping the queue pointer-free.
type entry struct {
	time Time
	seq  uint64
	gen  uint64
	id   int32
}

// eventHeap is a min-heap on (time, seq), implemented directly (no
// container/heap) so push and pop stay monomorphic. seq is unique across
// all entries, so the pop order is a total order independent of the heap's
// internal layout.
type eventHeap []entry

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

// siftUp and siftDown shift a hole instead of swapping: the displaced
// entry is held in a register and written exactly once at its final slot,
// halving the memory traffic of the swap formulation. The comparisons are
// the same (time, seq) order as less; seq uniqueness makes ties
// impossible, so strict comparisons suffice.
func (h eventHeap) siftUp(i int) {
	en := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if p.time < en.time || (p.time == en.time && p.seq < en.seq) {
			break
		}
		h[i] = p
		i = parent
	}
	h[i] = en
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	en := h[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		lt, ls := h[left].time, h[left].seq
		if right := left + 1; right < n {
			if h[right].time < lt || (h[right].time == lt && h[right].seq < ls) {
				least = right
				lt, ls = h[right].time, h[right].seq
			}
		}
		if en.time < lt || (en.time == lt && en.seq < ls) {
			break
		}
		h[i] = h[least]
		i = least
	}
	h[i] = en
}

func (h *eventHeap) push(en entry) {
	*h = append(*h, en)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap) pop() entry {
	old := *h
	n := len(old) - 1
	en := old[0]
	old[0] = old[n]
	*h = old[:n]
	if n > 1 {
		(*h).siftDown(0)
	}
	return en
}
