// Package simkit provides a minimal deterministic discrete-event simulation
// kernel: a monotonic clock and a cancellable priority event queue.
//
// It plays the role GridSim/ALEA play in the paper's Java framework: events
// (job arrival, job completion, dedicated-job due times, elastic control
// commands) are delivered in non-decreasing time order, with FIFO ordering
// among events that share a timestamp. Event handles can be cancelled, which
// is required when an Elastic Control Command moves a running job's kill-by
// time and its completion event must be rescheduled.
package simkit

import (
	"container/heap"
	"fmt"
)

// Time is simulation time in integer seconds. Integer time keeps event
// ordering exact and runs reproducible for a given seed.
type Time = int64

// Handler is the callback attached to a scheduled event.
type Handler func(now Time)

// Event is a scheduled occurrence. Events are ordered by (Time, sequence);
// the sequence number preserves FIFO order of same-time events.
type Event struct {
	time      Time
	seq       uint64
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
	fn        Handler
}

// Time returns the time the event fires (or was going to fire).
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine is the event loop. The zero value is not usable; use New.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stepped uint64 // events dispatched
}

// New returns an empty engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Dispatched returns the number of events dispatched so far.
func (e *Engine) Dispatched() uint64 { return e.stepped }

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) is an error in the caller; the engine panics to surface the bug
// instead of silently reordering history.
func (e *Engine) At(t Time, fn Handler) *Event {
	if t < e.now {
		panic(fmt.Sprintf("simkit: scheduling event at %d before now %d", t, e.now))
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Time, fn Handler) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return false
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
	return true
}

// Step dispatches the single earliest pending event and advances the clock
// to its timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.time
		e.stepped++
		ev.fn(e.now)
		return true
	}
	return false
}

// StepTimestamp dispatches every event that shares the earliest pending
// timestamp, including events scheduled *at that same timestamp* by the
// handlers themselves. It returns the timestamp and true, or (0, false) if
// the queue was empty. This is the granularity at which the scheduler is
// re-invoked: once per distinct simulated instant.
func (e *Engine) StepTimestamp() (Time, bool) {
	t, ok := e.PeekTime()
	if !ok {
		return 0, false
	}
	for {
		nt, ok := e.PeekTime()
		if !ok || nt != t {
			break
		}
		e.Step()
	}
	return t, true
}

// PeekTime returns the timestamp of the earliest pending event.
func (e *Engine) PeekTime() (Time, bool) {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return ev.time, true
	}
	return 0, false
}

// Run dispatches events until the queue is empty and returns the final
// clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil dispatches events with timestamps <= deadline and then stops,
// leaving later events pending. The clock is left at the last dispatched
// event (it does not jump to the deadline).
func (e *Engine) RunUntil(deadline Time) {
	for {
		t, ok := e.PeekTime()
		if !ok || t > deadline {
			return
		}
		e.Step()
	}
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
