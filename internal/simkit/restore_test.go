package simkit

import (
	"math/rand"
	"testing"
)

// Satellite regression: Cancel of the zero Handle is a guaranteed no-op —
// the engine's completion table returns zero Handles for absent IDs and
// passes them to Cancel unguarded (the RetimeRunning path).
func TestCancelZeroHandleIsNoOp(t *testing.T) {
	e := New()
	fired := 0
	e.At(5, func(Time) { fired++ })
	e.At(9, func(Time) { fired++ })
	for i := 0; i < 3; i++ {
		if e.Cancel(Handle{}) {
			t.Fatal("Cancel(Handle{}) returned true")
		}
	}
	if e.Pending() != 2 {
		t.Fatalf("zero-handle Cancel perturbed the queue: %d pending, want 2", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("%d events fired, want 2", fired)
	}
}

// A handle that went stale because its record was recycled must not cancel
// the successor event, and must not report it scheduled.
func TestCancelStaleHandleIsNoOp(t *testing.T) {
	e := New()
	stale := e.At(1, func(Time) {})
	e.Run() // fires; the record becomes reusable
	fired := false
	fresh := e.At(10, func(Time) { fired = true })
	if e.Cancel(stale) {
		t.Error("stale Cancel returned true")
	}
	if stale.Scheduled() {
		t.Error("stale handle reports Scheduled")
	}
	e.Run()
	if !fired {
		t.Error("stale Cancel killed the recycled event")
	}
	_ = fresh
}

func TestPendingInOrderReturnsDispatchOrder(t *testing.T) {
	e := New()
	// Mixed times with duplicates; same-time events must come back in FIFO
	// (scheduling) order.
	times := []Time{30, 10, 20, 10, 30, 10, 40}
	type tag struct{ i int }
	var handles []Handle
	for i, at := range times {
		handles = append(handles, e.AtArg(at, func(Time, any) {}, &tag{i}))
	}
	e.Cancel(handles[2]) // the 20; cancelled events must not appear
	pend := e.PendingInOrder()
	wantIdx := []int{1, 3, 5, 0, 4, 6} // 10,10,10,30,30,40 in scheduling order
	if len(pend) != len(wantIdx) {
		t.Fatalf("PendingInOrder returned %d events, want %d", len(pend), len(wantIdx))
	}
	for k, pe := range pend {
		want := wantIdx[k]
		if got := pe.Arg.(*tag).i; got != want {
			t.Errorf("position %d: event %d, want %d", k, got, want)
		}
		if pe.Time != times[wantIdx[k]] {
			t.Errorf("position %d: time %d, want %d", k, pe.Time, times[wantIdx[k]])
		}
		if pe.Handle != handles[want] {
			t.Errorf("position %d: handle mismatch", k)
		}
	}
}

// Replaying PendingInOrder into a fresh engine and calling RestoreClock
// must reproduce the original dispatch sequence exactly.
func TestRestoreReplayMatchesOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := New()
	var origSeq []int
	mk := func(e *Engine, out *[]int) ArgHandler {
		return func(_ Time, arg any) { *out = append(*out, arg.(int)) }
	}
	oh := mk(orig, &origSeq)
	for i := 0; i < 200; i++ {
		orig.AtArg(Time(rng.Intn(50)), oh, i)
	}
	orig.RunUntil(20) // advance partway

	pend := orig.PendingInOrder()
	restored := New()
	var restSeq []int
	rh := mk(restored, &restSeq)
	for _, pe := range pend {
		restored.AtArg(pe.Time, rh, pe.Arg)
	}
	restored.RestoreClock(orig.Now(), orig.Dispatched())
	if restored.Now() != orig.Now() || restored.Dispatched() != orig.Dispatched() {
		t.Fatalf("clock/counter not restored: %d/%d vs %d/%d",
			restored.Now(), restored.Dispatched(), orig.Now(), orig.Dispatched())
	}

	orig.Run()
	restored.Run()
	tail := origSeq[len(origSeq)-len(restSeq):]
	if len(restSeq) != len(tail) {
		t.Fatalf("restored run dispatched %d events, original tail %d", len(restSeq), len(tail))
	}
	for i := range tail {
		if restSeq[i] != tail[i] {
			t.Fatalf("dispatch order diverged at %d: got %v, want %v", i, restSeq, tail)
		}
	}
	if restored.Dispatched() != orig.Dispatched() {
		t.Errorf("final dispatch counters differ: %d vs %d", restored.Dispatched(), orig.Dispatched())
	}
}

func TestRestoreClockRejectsPastEvents(t *testing.T) {
	e := New()
	e.At(5, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("RestoreClock with an event before now did not panic")
		}
	}()
	e.RestoreClock(10, 3)
}

func TestRestoreClockRejectsRewind(t *testing.T) {
	e := New()
	e.At(5, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("RestoreClock rewinding the clock did not panic")
		}
	}()
	e.RestoreClock(2, 0)
}
