package simkit

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events dispatched out of FIFO order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New()
	e.At(7, func(now Time) {
		if now != 7 {
			t.Errorf("handler saw now=%d, want 7", now)
		}
	})
	if e.Now() != 0 {
		t.Fatalf("initial clock %d, want 0", e.Now())
	}
	e.Run()
	if e.Now() != 7 {
		t.Errorf("final clock %d, want 7", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at Time
	e.At(10, func(Time) {
		e.After(5, func(now Time) { at = now })
	})
	e.Run()
	if at != 15 {
		t.Errorf("After(5) from t=10 fired at %d, want 15", at)
	}
}

func TestCancelPreventsDispatch(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(10, func(Time) { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for a pending event")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if ev.Scheduled() {
		t.Error("Scheduled() true after cancel")
	}
}

func TestCancelTwiceIsFalse(t *testing.T) {
	e := New()
	ev := e.At(10, func(Time) {})
	e.Cancel(ev)
	if e.Cancel(ev) {
		t.Error("second Cancel returned true")
	}
	if e.Cancel(Handle{}) {
		t.Error("Cancel of zero handle returned true")
	}
}

func TestCancelFiredEventIsFalse(t *testing.T) {
	e := New()
	ev := e.At(1, func(Time) {})
	e.Run()
	if e.Cancel(ev) {
		t.Error("Cancel of already-fired event returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []Time
	evs := make([]Handle, 0, 10)
	for i := Time(1); i <= 10; i++ {
		i := i
		evs = append(evs, e.At(i, func(now Time) { got = append(got, now) }))
	}
	e.Cancel(evs[4]) // t=5
	e.Cancel(evs[7]) // t=8
	e.Run()
	for _, ts := range got {
		if ts == 5 || ts == 8 {
			t.Fatalf("cancelled timestamp %d fired", ts)
		}
	}
	if len(got) != 8 {
		t.Fatalf("dispatched %d, want 8", len(got))
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func(Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling before now did not panic")
			}
		}()
		e.At(5, func(Time) {})
	})
	e.Run()
}

func TestStepTimestampBatchesOneInstant(t *testing.T) {
	e := New()
	count5, count9 := 0, 0
	e.At(5, func(Time) { count5++ })
	e.At(5, func(Time) {
		count5++
		// Cascade at the same instant: must be included in this batch.
		e.At(5, func(Time) { count5++ })
	})
	e.At(9, func(Time) { count9++ })

	ts, ok := e.StepTimestamp()
	if !ok || ts != 5 {
		t.Fatalf("StepTimestamp = (%d, %v), want (5, true)", ts, ok)
	}
	if count5 != 3 || count9 != 0 {
		t.Fatalf("after first instant: count5=%d count9=%d, want 3, 0", count5, count9)
	}
	ts, ok = e.StepTimestamp()
	if !ok || ts != 9 || count9 != 1 {
		t.Fatalf("second instant = (%d, %v) count9=%d, want (9, true) 1", ts, ok, count9)
	}
	if _, ok := e.StepTimestamp(); ok {
		t.Error("StepTimestamp on empty queue returned ok")
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	e := New()
	fired := map[Time]bool{}
	for _, at := range []Time{1, 5, 10, 15} {
		at := at
		e.At(at, func(Time) { fired[at] = true })
	}
	e.RunUntil(10)
	if !fired[1] || !fired[5] || !fired[10] {
		t.Errorf("events at/before deadline not all fired: %v", fired)
	}
	if fired[15] {
		t.Error("event after deadline fired")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestPeekTimeSkipsCancelled(t *testing.T) {
	e := New()
	ev := e.At(3, func(Time) {})
	e.At(8, func(Time) {})
	e.Cancel(ev)
	if tm, ok := e.PeekTime(); !ok || tm != 8 {
		t.Errorf("PeekTime = (%d, %v), want (8, true)", tm, ok)
	}
}

func TestDispatchedCounter(t *testing.T) {
	e := New()
	for i := Time(0); i < 5; i++ {
		e.At(i, func(Time) {})
	}
	e.Run()
	if e.Dispatched() != 5 {
		t.Errorf("Dispatched = %d, want 5", e.Dispatched())
	}
}

func TestHandlersCanScheduleChains(t *testing.T) {
	e := New()
	depth := 0
	var chain func(now Time)
	chain = func(now Time) {
		depth++
		if depth < 100 {
			e.After(1, chain)
		}
	}
	e.At(0, chain)
	end := e.Run()
	if depth != 100 {
		t.Errorf("chain depth %d, want 100", depth)
	}
	if end != 99 {
		t.Errorf("final time %d, want 99", end)
	}
}

// Property: for any set of event times, dispatch order is the sorted order.
func TestPropertyDispatchSorted(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var got []Time
		for _, x := range times {
			at := Time(x)
			e.At(at, func(now Time) { got = append(got, now) })
		}
		e.Run()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := New()
	stale := e.At(1, func(Time) {})
	e.Run() // fires; the record returns to the free list

	// The next At must reuse the record (LIFO free list); the stale handle
	// now points at a live event of a later generation.
	fired := false
	fresh := e.At(5, func(Time) { fired = true })
	if fresh.ev != stale.ev {
		t.Fatalf("free list did not recycle the record")
	}
	if e.Cancel(stale) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if !fresh.Scheduled() {
		t.Fatal("fresh event lost its scheduling")
	}
	e.Run()
	if !fired {
		t.Error("recycled event did not fire")
	}
}

func TestStaleHandleAfterCancelCannotCancelRecycledEvent(t *testing.T) {
	e := New()
	stale := e.At(10, func(Time) {})
	if !e.Cancel(stale) {
		t.Fatal("first cancel failed")
	}
	// Cancellation is lazy: the record returns to the free list when its
	// dead queue entry is popped. Drain to flush it out.
	e.Run()
	fired := false
	fresh := e.At(20, func(Time) { fired = true })
	if fresh.ev != stale.ev {
		t.Fatalf("free list did not recycle the record")
	}
	if e.Cancel(stale) {
		t.Fatal("stale handle cancelled the reissued event")
	}
	e.Run()
	if !fired {
		t.Error("reissued event did not fire")
	}
}

func TestEventRecordsAreReused(t *testing.T) {
	e := New()
	e.At(1, func(Time) {})
	e.Run()
	// The free list is refilled in blocks; what matters is that the
	// steady-state schedule/dispatch cycle never grows it — every At is
	// served by the record the previous Step released.
	size := len(e.freeIDs)
	if size == 0 {
		t.Fatal("free list empty after drain")
	}
	for i := Time(2); i < 100; i++ {
		e.At(i, func(Time) {})
		e.Step()
		if len(e.freeIDs) != size {
			t.Fatalf("t=%d: free list holds %d records, want %d", i, len(e.freeIDs), size)
		}
	}
}

func TestPendingCounter(t *testing.T) {
	e := New()
	if e.Pending() != 0 {
		t.Fatalf("Pending on empty engine = %d", e.Pending())
	}
	hs := make([]Handle, 0, 10)
	for i := Time(1); i <= 10; i++ {
		hs = append(hs, e.At(i, func(Time) {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	e.Cancel(hs[3])
	e.Cancel(hs[3]) // double cancel must not double count
	if e.Pending() != 9 {
		t.Fatalf("Pending after cancel = %d, want 9", e.Pending())
	}
	e.Step()
	if e.Pending() != 8 {
		t.Fatalf("Pending after step = %d, want 8", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}

func TestAtArgDeliversArgument(t *testing.T) {
	e := New()
	var got []int
	record := func(_ Time, arg any) { got = append(got, arg.(int)) }
	for i := 0; i < 5; i++ {
		e.AtArg(Time(i), record, i)
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("dispatched %d arg events, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Errorf("arg %d = %d, want %d", i, v, i)
		}
	}
}

func TestHandleTime(t *testing.T) {
	e := New()
	h := e.At(42, func(Time) {})
	if tm, ok := h.Time(); !ok || tm != 42 {
		t.Errorf("Time = (%d, %v), want (42, true)", tm, ok)
	}
	e.Run()
	if _, ok := h.Time(); ok {
		t.Error("Time ok after fire")
	}
}

// Property: cancelling a random subset removes exactly those events.
func TestPropertyCancelSubset(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		e := New()
		n := 1 + r.Intn(50)
		fired := 0
		evs := make([]Handle, n)
		for i := 0; i < n; i++ {
			evs[i] = e.At(Time(r.Intn(100)), func(Time) { fired++ })
		}
		cancelled := 0
		for _, ev := range evs {
			if r.Float64() < 0.3 {
				if e.Cancel(ev) {
					cancelled++
				}
			}
		}
		e.Run()
		if fired != n-cancelled {
			t.Fatalf("trial %d: fired %d, want %d", trial, fired, n-cancelled)
		}
	}
}
