package simkit

import "testing"

// BenchmarkEventThroughput measures raw kernel dispatch rate: schedule and
// drain 10k events per iteration.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for k := Time(0); k < 10000; k++ {
			e.At(k, func(Time) {})
		}
		e.Run()
	}
}

// BenchmarkCancelHeavy measures cancellation churn: half the scheduled
// events are cancelled before the drain.
func BenchmarkCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		evs := make([]*Event, 0, 10000)
		for k := Time(0); k < 10000; k++ {
			evs = append(evs, e.At(k, func(Time) {}))
		}
		for k := 0; k < len(evs); k += 2 {
			e.Cancel(evs[k])
		}
		e.Run()
	}
}
