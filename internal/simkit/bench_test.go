package simkit

import "testing"

// BenchmarkEventThroughput measures raw kernel dispatch rate: schedule and
// drain 10k events per iteration.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for k := Time(0); k < 10000; k++ {
			e.At(k, func(Time) {})
		}
		e.Run()
	}
}

// BenchmarkScheduleDispatch measures the steady-state schedule/dispatch
// cycle on a long-lived engine: one At and one Step per iteration against a
// standing backlog, the regime a mid-simulation event kernel lives in. The
// target is zero allocations per operation.
func BenchmarkScheduleDispatch(b *testing.B) {
	e := New()
	fn := func(Time) {}
	const backlog = 512
	for i := 0; i < backlog; i++ {
		e.At(Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	t := Time(backlog)
	for i := 0; i < b.N; i++ {
		e.At(t, fn)
		e.Step()
		t++
	}
}

// BenchmarkCancelReschedule measures the ECC retiming pattern: a pending
// event is cancelled and rescheduled at a new timestamp, over and over,
// against a standing backlog.
func BenchmarkCancelReschedule(b *testing.B) {
	e := New()
	fn := func(Time) {}
	const far = Time(1) << 40
	for i := 0; i < 64; i++ {
		e.At(far+Time(i), fn)
	}
	h := e.At(far+100, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(h)
		h = e.At(far+100+Time(i%1000), fn)
	}
}

// BenchmarkCancelHeavy measures cancellation churn: half the scheduled
// events are cancelled before the drain.
func BenchmarkCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		evs := make([]Handle, 0, 10000)
		for k := Time(0); k < 10000; k++ {
			evs = append(evs, e.At(k, func(Time) {}))
		}
		for k := 0; k < len(evs); k += 2 {
			e.Cancel(evs[k])
		}
		e.Run()
	}
}
