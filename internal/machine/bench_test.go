package machine

import (
	"fmt"
	"testing"
)

// churn drives a contiguous machine through a steady-state alloc/release
// cycle under fragmentation pressure. Job IDs are recycled so the owner
// table stays bounded; the LCG stream is fixed, and because the indexed
// findRun returns the same leftmost start as the dense scan, dense and
// indexed sub-benchmarks execute the identical placement sequence.
type churn struct {
	m     *Machine
	live  []int
	idles []int // recycled job IDs
	next  int
	rng   uint64
}

func newChurn(total, unit int, dense bool) *churn {
	m := NewContiguous(total, unit)
	if dense {
		m.forceDense()
	}
	c := &churn{m: m, rng: 0x9E3779B97F4A7C15}
	// Fill the machine with 1..4-group jobs, then punch holes by releasing
	// every third job so findRun always works against a fragmented map.
	unitSz := unit
	for {
		n := c.roll()%4 + 1
		if c.m.Free() < n*unitSz {
			break
		}
		id := c.takeID()
		if c.m.Alloc(id, n*unitSz) != nil {
			c.idles = append(c.idles, id)
			break
		}
		c.live = append(c.live, id)
	}
	keep := c.live[:0]
	for i, id := range c.live {
		if i%3 == 0 {
			if err := c.m.Release(id); err != nil {
				panic(err)
			}
			c.idles = append(c.idles, id)
		} else {
			keep = append(keep, id)
		}
	}
	c.live = keep
	return c
}

func (c *churn) roll() int {
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	return int(c.rng >> 33)
}

func (c *churn) takeID() int {
	if n := len(c.idles); n > 0 {
		id := c.idles[n-1]
		c.idles = c.idles[:n-1]
		return id
	}
	id := c.next
	c.next++
	return id
}

// step is one benchmark operation: release a pseudo-random live job, then
// allocate a fresh one of pseudo-random size (skipped when fragmentation
// leaves no contiguous run, which keeps pressure on longestFreeRun too).
func (c *churn) step() {
	if len(c.live) > 0 {
		k := c.roll() % len(c.live)
		id := c.live[k]
		c.live[k] = c.live[len(c.live)-1]
		c.live = c.live[:len(c.live)-1]
		if err := c.m.Release(id); err != nil {
			panic(err)
		}
		c.idles = append(c.idles, id)
	}
	n := c.roll()%4 + 1
	size := n * c.m.Unit()
	if !c.m.Fits(size) {
		return
	}
	id := c.takeID()
	if err := c.m.Alloc(id, size); err != nil {
		panic(err)
	}
	c.live = append(c.live, id)
}

// BenchmarkMachineScale measures the steady-state alloc/release cycle of a
// contiguous machine across four orders of magnitude, dense scans vs the
// run index. The paper's rack is M=320; the ROADMAP's scale-out target is
// the 320k–1M band, where the dense O(G) scans collapse and the index's
// O(log G) paths stay flat.
func BenchmarkMachineScale(b *testing.B) {
	sizes := []struct {
		label string
		total int
	}{
		{"M=320", 320},
		{"M=32k", 32 * 1024},
		{"M=320k", 320 * 1024},
		{"M=1M", 1 << 20},
	}
	for _, mode := range []string{"dense", "indexed"} {
		for _, sz := range sizes {
			b.Run(fmt.Sprintf("%s/%s", mode, sz.label), func(b *testing.B) {
				c := newChurn(sz.total, 32, mode == "dense")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.step()
				}
			})
		}
	}
}

// BenchmarkCompact pins the Compact fix: moved jobs are found by walking
// the owned-ID list, not by scanning the owner table up to the highest job
// ID ever seen. The sparse IDs here (stride 512) made the old per-move
// ownerOf scan an O(G·maxID) worst case.
func BenchmarkCompact(b *testing.B) {
	const (
		unit   = 32
		groups = 1024
		stride = 512
	)
	m := NewContiguous(groups*unit, unit)
	ids := make([]int, 0, groups)
	for g := 0; g < groups; g++ {
		id := g * stride
		if err := m.Alloc(id, unit); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Punch holes at every other group, compact the survivors left,
		// then refill the reclaimed tail — one fragmentation/compaction
		// cycle per iteration.
		for k := 0; k < len(ids); k += 2 {
			if err := m.Release(ids[k]); err != nil {
				b.Fatal(err)
			}
		}
		m.Compact()
		for k := 0; k < len(ids); k += 2 {
			if err := m.Alloc(ids[k], unit); err != nil {
				b.Fatal(err)
			}
		}
	}
}
