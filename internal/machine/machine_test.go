package machine

import (
	"math/rand"
	"testing"
)

func TestNewGeometry(t *testing.T) {
	m := New(320, 32)
	if m.Total() != 320 || m.Unit() != 32 || m.Free() != 320 || m.Used() != 0 {
		t.Fatalf("bad initial state: %+v", m)
	}
	if len(m.Groups()) != 10 {
		t.Fatalf("expected 10 node groups, got %d", len(m.Groups()))
	}
}

func TestNewBadGeometryPanics(t *testing.T) {
	for _, c := range []struct{ total, unit int }{{0, 1}, {-5, 1}, {320, 0}, {320, 33}, {100, 32}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.total, c.unit)
				}
			}()
			New(c.total, c.unit)
		}()
	}
}

func TestAllocRelease(t *testing.T) {
	m := New(320, 32)
	if err := m.Alloc(1, 96); err != nil {
		t.Fatal(err)
	}
	if m.Free() != 224 || m.Used() != 96 || m.Held(1) != 96 {
		t.Fatalf("after alloc: free=%d used=%d held=%d", m.Free(), m.Used(), m.Held(1))
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if m.Free() != 320 || m.Held(1) != 0 {
		t.Fatalf("after release: free=%d held=%d", m.Free(), m.Held(1))
	}
}

func TestAllocErrors(t *testing.T) {
	m := New(320, 32)
	if err := m.Alloc(1, 33); err == nil {
		t.Error("non-quantized allocation accepted")
	}
	if err := m.Alloc(1, 0); err == nil {
		t.Error("zero allocation accepted")
	}
	if err := m.Alloc(1, 352); err == nil {
		t.Error("oversized allocation accepted")
	}
	if err := m.Alloc(1, 320); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(2, 32); err == nil {
		t.Error("allocation beyond free capacity accepted")
	}
	if err := m.Alloc(1, 32); err == nil {
		t.Error("double allocation for same job accepted")
	}
}

func TestReleaseUnknownErrors(t *testing.T) {
	m := New(320, 32)
	if err := m.Release(42); err == nil {
		t.Error("release of unknown job accepted")
	}
	m.Alloc(1, 32)
	m.Release(1)
	if err := m.Release(1); err == nil {
		t.Error("double release accepted")
	}
}

func TestFits(t *testing.T) {
	m := New(320, 32)
	m.Alloc(1, 288)
	if !m.Fits(32) {
		t.Error("32 should fit in 32 free")
	}
	if m.Fits(64) {
		t.Error("64 should not fit in 32 free")
	}
	if m.Fits(0) || m.Fits(-1) {
		t.Error("non-positive sizes never fit")
	}
}

func TestQuantize(t *testing.T) {
	m := New(320, 32)
	cases := []struct {
		in, want int
		ok       bool
	}{
		{1, 32, true}, {32, 32, true}, {33, 64, true}, {320, 320, true},
		{321, 0, false}, {0, 0, false}, {-3, 0, false},
	}
	for _, c := range cases {
		got, err := m.Quantize(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("Quantize(%d) = (%d, %v), want (%d, ok=%v)", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestUtilization(t *testing.T) {
	m := New(320, 32)
	m.Alloc(1, 160)
	if u := m.Utilization(); u != 0.5 {
		t.Errorf("utilization %g, want 0.5", u)
	}
}

func TestResizeShrink(t *testing.T) {
	m := New(320, 32)
	m.Alloc(1, 128)
	if err := m.Resize(1, 64); err != nil {
		t.Fatal(err)
	}
	if m.Held(1) != 64 || m.Free() != 256 {
		t.Fatalf("after shrink: held=%d free=%d", m.Held(1), m.Free())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeGrow(t *testing.T) {
	m := New(320, 32)
	m.Alloc(1, 64)
	if err := m.Resize(1, 192); err != nil {
		t.Fatal(err)
	}
	if m.Held(1) != 192 || m.Free() != 128 {
		t.Fatalf("after grow: held=%d free=%d", m.Held(1), m.Free())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeGrowBeyondFree(t *testing.T) {
	m := New(320, 32)
	m.Alloc(1, 64)
	m.Alloc(2, 224)
	if err := m.Resize(1, 128); err == nil {
		t.Error("grow beyond free capacity accepted")
	}
	if m.Held(1) != 64 {
		t.Error("failed grow mutated allocation")
	}
}

func TestResizeErrors(t *testing.T) {
	m := New(320, 32)
	if err := m.Resize(9, 64); err == nil {
		t.Error("resize of unknown job accepted")
	}
	m.Alloc(1, 64)
	if err := m.Resize(1, 33); err == nil {
		t.Error("non-quantized resize accepted")
	}
	if err := m.Resize(1, 0); err == nil {
		t.Error("zero resize accepted")
	}
	if err := m.Resize(1, 64); err != nil {
		t.Error("no-op resize should succeed")
	}
}

func TestGroupOwnership(t *testing.T) {
	m := New(96, 32)
	m.Alloc(1, 64)
	m.Alloc(2, 32)
	groups := m.Groups()
	count := map[int]int{}
	for _, g := range groups {
		count[g]++
	}
	if count[1] != 2 || count[2] != 1 || count[-1] != 0 {
		t.Fatalf("group ownership wrong: %v", groups)
	}
	m.Release(1)
	count = map[int]int{}
	for _, g := range m.Groups() {
		count[g]++
	}
	if count[-1] != 2 || count[2] != 1 {
		t.Fatalf("groups after release wrong: %v", m.Groups())
	}
}

func TestUnitOneMachine(t *testing.T) {
	m := New(128, 1)
	if err := m.Alloc(1, 7); err != nil {
		t.Fatal(err)
	}
	if m.Free() != 121 {
		t.Fatalf("free = %d, want 121", m.Free())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: invariants hold under random alloc/release/resize traffic, and
// the free counter always equals total minus the sum of held allocations.
func TestPropertyInvariantsUnderTraffic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := New(320, 32)
	held := map[int]int{}
	nextID := 1
	for op := 0; op < 5000; op++ {
		switch {
		case len(held) == 0 || r.Float64() < 0.45:
			size := 32 * (1 + r.Intn(10))
			if size <= m.Free() {
				if err := m.Alloc(nextID, size); err != nil {
					t.Fatalf("op %d: alloc: %v", op, err)
				}
				held[nextID] = size
				nextID++
			}
		case r.Float64() < 0.7:
			for id := range held {
				if err := m.Release(id); err != nil {
					t.Fatalf("op %d: release: %v", op, err)
				}
				delete(held, id)
				break
			}
		default:
			for id, size := range held {
				want := 32 * (1 + r.Intn(10))
				err := m.Resize(id, want)
				if want <= size || want-size <= m.Free()+0 {
					// shrink or affordable grow may still fail only if
					// grow exceeded free; recheck coherently below.
					_ = err
				}
				if err == nil {
					held[id] = want
				}
				break
			}
		}
		sum := 0
		for _, s := range held {
			sum += s
		}
		if m.Free() != 320-sum {
			t.Fatalf("op %d: free=%d, want %d", op, m.Free(), 320-sum)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}

func TestContiguousAllocUsesRuns(t *testing.T) {
	m := NewContiguous(320, 32)
	if !m.Contiguous() {
		t.Fatal("flag lost")
	}
	m.Alloc(1, 96)
	g := m.Groups()
	if g[0] != 1 || g[1] != 1 || g[2] != 1 {
		t.Fatalf("allocation not at the first run: %v", g)
	}
}

func TestContiguousFragmentationBlocks(t *testing.T) {
	m := NewContiguous(320, 32)
	// Fill alternating pairs to fragment: jobs of 1 group each.
	for i := 0; i < 5; i++ {
		if err := m.Alloc(10+i, 32); err != nil {
			t.Fatal(err)
		}
	}
	// Free groups are 5..9 contiguous (first-fit packed 0..4): release the
	// middle of the allocated prefix to fragment.
	m.Release(12) // frees group 2
	// Free: group 2 and groups 5..9 => longest run 5, free 6*32=192.
	if !m.Fits(5 * 32) {
		t.Error("160 should fit in the 5-run")
	}
	if m.Fits(6 * 32) {
		t.Error("192 must NOT fit contiguously despite 192 free")
	}
	if m.FragmentedWaste() != 32 {
		t.Errorf("fragmented waste = %d, want 32", m.FragmentedWaste())
	}
	if err := m.Alloc(99, 6*32); err == nil {
		t.Error("fragmented allocation accepted")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactDefragments(t *testing.T) {
	m := NewContiguous(320, 32)
	for i := 0; i < 5; i++ {
		m.Alloc(10+i, 32)
	}
	m.Release(11)
	m.Release(13)
	// Free: groups 1, 3, 5..9 => longest run 5.
	if m.Fits(7 * 32) {
		t.Fatal("224 should not fit before compaction")
	}
	moved := m.Compact()
	if moved == 0 {
		t.Fatal("compaction moved nothing")
	}
	if !m.Fits(7 * 32) {
		t.Error("224 should fit after compaction")
	}
	if m.Migrations() != moved {
		t.Errorf("migrations counter %d, want %d", m.Migrations(), moved)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remaining jobs keep their sizes.
	for _, id := range []int{10, 12, 14} {
		if m.Held(id) != 32 {
			t.Errorf("job %d held %d after compaction", id, m.Held(id))
		}
	}
}

func TestCompactNoopWhenPacked(t *testing.T) {
	m := NewContiguous(320, 32)
	m.Alloc(1, 64)
	m.Alloc(2, 64)
	if moved := m.Compact(); moved != 0 {
		t.Errorf("packed machine compaction moved %d", moved)
	}
}

func TestContiguousResizeGrowsOnlyAdjacent(t *testing.T) {
	m := NewContiguous(320, 32)
	m.Alloc(1, 64) // groups 0,1
	m.Alloc(2, 32) // group 2
	if err := m.Resize(1, 128); err == nil {
		t.Error("grow across job 2 accepted on contiguous machine")
	}
	m.Release(2)
	if err := m.Resize(1, 128); err != nil {
		t.Errorf("adjacent grow failed: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScatterFitsIgnoresFragmentation(t *testing.T) {
	m := New(320, 32)
	for i := 0; i < 5; i++ {
		m.Alloc(10+i, 32)
	}
	m.Release(12)
	if !m.Fits(6 * 32) {
		t.Error("scatter machine must fit any free capacity")
	}
	if m.FragmentedWaste() != 0 {
		t.Error("scatter machine has no fragmented waste")
	}
}
