package machine

import (
	"fmt"
	"reflect"
	"testing"
)

// diffPair drives an indexed contiguous machine and the retained dense
// reference through the same operation stream, failing the moment their
// observable state diverges. The dense machine is the pre-index
// implementation (forceDense restores its scan paths), so this is the
// differential harness the run index is validated against — the same
// pattern as the reference DPs (PR 1) and the profile differential (PR 4).
type diffPair struct {
	t       testing.TB
	indexed *Machine
	dense   *Machine
	live    []int // job IDs currently allocated
	sizes   map[int]int
	nextID  int
}

func newDiffPair(t testing.TB, total, unit int) *diffPair {
	ix := NewContiguous(total, unit)
	dn := NewContiguous(total, unit)
	dn.forceDense()
	return &diffPair{t: t, indexed: ix, dense: dn, sizes: map[int]int{}}
}

// check compares every piece of observable state and validates both
// machines' invariants (the indexed machine's CheckInvariants additionally
// cross-checks every index leaf and the root aggregate against the dense
// scan).
func (p *diffPair) check(op string) {
	p.t.Helper()
	if err := p.indexed.CheckInvariants(); err != nil {
		p.t.Fatalf("after %s: indexed invariants: %v", op, err)
	}
	if err := p.dense.CheckInvariants(); err != nil {
		p.t.Fatalf("after %s: dense invariants: %v", op, err)
	}
	type obs struct {
		Free, Used, Avail, Down, Waste, Longest int
		Groups                                  []int
	}
	a := obs{p.indexed.Free(), p.indexed.Used(), p.indexed.Available(), p.indexed.DownProcs(),
		p.indexed.FragmentedWaste(), p.indexed.longestFreeRun(), p.indexed.Groups()}
	b := obs{p.dense.Free(), p.dense.Used(), p.dense.Available(), p.dense.DownProcs(),
		p.dense.FragmentedWaste(), p.dense.longestFreeRun(), p.dense.Groups()}
	if !reflect.DeepEqual(a, b) {
		p.t.Fatalf("after %s: indexed %+v != dense %+v", op, a, b)
	}
	sa, sb := p.indexed.Snapshot(), p.dense.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		p.t.Fatalf("after %s: snapshots diverge:\nindexed %+v\ndense   %+v", op, sa, sb)
	}
	for n := 1; n <= len(sa.Groups)+1; n++ {
		if ia, id := p.indexed.findRun(n), p.dense.findRun(n); ia != id {
			p.t.Fatalf("after %s: findRun(%d) indexed %d != dense %d", op, n, ia, id)
		}
	}
}

// both applies one mutation to the pair and asserts the outcomes agree.
func (p *diffPair) alloc(groups int) {
	p.t.Helper()
	id := p.nextID
	p.nextID++
	size := groups * p.indexed.Unit()
	ea := p.indexed.Alloc(id, size)
	eb := p.dense.Alloc(id, size)
	if (ea == nil) != (eb == nil) {
		p.t.Fatalf("alloc(%d,%d): indexed err %v, dense err %v", id, size, ea, eb)
	}
	if ea == nil {
		p.live = append(p.live, id)
		p.sizes[id] = size
	}
	p.check(fmt.Sprintf("alloc(%d,%d)", id, size))
}

func (p *diffPair) release(pick int) {
	p.t.Helper()
	if len(p.live) == 0 {
		return
	}
	i := pick % len(p.live)
	id := p.live[i]
	p.live[i] = p.live[len(p.live)-1]
	p.live = p.live[:len(p.live)-1]
	delete(p.sizes, id)
	if ea, eb := p.indexed.Release(id), p.dense.Release(id); (ea == nil) != (eb == nil) {
		p.t.Fatalf("release(%d): indexed err %v, dense err %v", id, ea, eb)
	}
	p.check(fmt.Sprintf("release(%d)", id))
}

func (p *diffPair) resize(pick, groups int) {
	p.t.Helper()
	if len(p.live) == 0 {
		return
	}
	id := p.live[pick%len(p.live)]
	size := groups * p.indexed.Unit()
	ea := p.indexed.Resize(id, size)
	eb := p.dense.Resize(id, size)
	if (ea == nil) != (eb == nil) {
		p.t.Fatalf("resize(%d,%d): indexed err %v, dense err %v", id, size, ea, eb)
	}
	if ea == nil {
		p.sizes[id] = size
	}
	p.check(fmt.Sprintf("resize(%d,%d)", id, size))
}

// fail takes groups out of service on both machines and releases the
// victims immediately, as the engine does, so the pair sits at an instant
// boundary (no Draining groups) after every step.
func (p *diffPair) fail(gs []int) {
	p.t.Helper()
	fa, va, ea := p.indexed.FailGroups(gs)
	fb, vb, eb := p.dense.FailGroups(gs)
	if (ea == nil) != (eb == nil) || fa != fb || !reflect.DeepEqual(va, vb) {
		p.t.Fatalf("fail(%v): indexed (%d,%v,%v) != dense (%d,%v,%v)", gs, fa, va, ea, fb, vb, eb)
	}
	for _, id := range va {
		if ea, eb := p.indexed.Release(id), p.dense.Release(id); (ea == nil) != (eb == nil) {
			p.t.Fatalf("fail(%v): victim release(%d): indexed err %v, dense err %v", gs, id, ea, eb)
		}
		for i, v := range p.live {
			if v == id {
				p.live[i] = p.live[len(p.live)-1]
				p.live = p.live[:len(p.live)-1]
				break
			}
		}
		delete(p.sizes, id)
	}
	p.check(fmt.Sprintf("fail(%v)", gs))
}

func (p *diffPair) repair(gs []int) {
	p.t.Helper()
	ra, ea := p.indexed.RepairGroups(gs)
	rb, eb := p.dense.RepairGroups(gs)
	if (ea == nil) != (eb == nil) || ra != rb {
		p.t.Fatalf("repair(%v): indexed (%d,%v) != dense (%d,%v)", gs, ra, ea, rb, eb)
	}
	p.check(fmt.Sprintf("repair(%v)", gs))
}

func (p *diffPair) compact() {
	p.t.Helper()
	if ma, mb := p.indexed.Compact(), p.dense.Compact(); ma != mb {
		p.t.Fatalf("compact: indexed moved %d, dense moved %d", ma, mb)
	}
	p.check("compact")
}

// roundTrip snapshots the indexed machine, restores it, and verifies the
// restored copy re-snapshots identically and self-validates — the
// snapshot-at-random-prefix leg of the differential suite.
func (p *diffPair) roundTrip() {
	p.t.Helper()
	sn := p.indexed.Snapshot()
	m2, err := FromSnapshot(sn)
	if err != nil {
		p.t.Fatalf("round trip: %v", err)
	}
	if sn2 := m2.Snapshot(); !reflect.DeepEqual(sn, sn2) {
		p.t.Fatalf("round trip: snapshot changed:\nbefore %+v\nafter  %+v", sn, sn2)
	}
	if err := m2.CheckInvariants(); err != nil {
		p.t.Fatalf("round trip: restored invariants: %v", err)
	}
}

// step dispatches one operation from three driver bytes.
func (p *diffPair) step(op, a, b byte) {
	G := p.indexed.NumGroups()
	switch op % 7 {
	case 0, 1: // allocation-heavy mix keeps the machine busy
		p.alloc(int(a)%G + 1)
	case 2:
		p.release(int(a))
	case 3:
		p.resize(int(a), int(b)%G+1)
	case 4:
		p.fail([]int{int(a) % G, int(b) % G})
	case 5:
		p.repair([]int{int(a) % G, int(b) % G})
	case 6:
		p.compact()
	}
}

// TestIndexedMatchesDenseUnderTraffic is the seeded deterministic slice of
// the differential suite: a fixed LCG stream over every operation type.
func TestIndexedMatchesDenseUnderTraffic(t *testing.T) {
	for _, geo := range []struct{ total, unit int }{{320, 32}, {96, 8}, {33, 11}, {64, 1}} {
		t.Run(fmt.Sprintf("%d_%d", geo.total, geo.unit), func(t *testing.T) {
			p := newDiffPair(t, geo.total, geo.unit)
			rng := uint64(2026)
			next := func() byte {
				rng = rng*6364136223846793005 + 1442695040888963407
				return byte(rng >> 33)
			}
			for i := 0; i < 600; i++ {
				p.step(next(), next(), next())
				if i%97 == 0 {
					p.roundTrip()
				}
			}
		})
	}
}

// FuzzMachineIndexed lets the fuzzer steer the operation stream: byte
// triples select and parameterize operations, and every 16th step round-
// trips the indexed machine through its snapshot.
func FuzzMachineIndexed(f *testing.F) {
	f.Add([]byte{0, 3, 0, 0, 9, 0, 2, 1, 0, 4, 0, 1, 6, 0, 0})
	f.Add([]byte{1, 255, 0, 4, 1, 2, 5, 1, 2, 3, 0, 2, 2, 0, 0})
	f.Add([]byte{0, 10, 0, 0, 10, 0, 4, 0, 5, 5, 0, 5, 0, 2, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 3*200 {
			ops = ops[:3*200]
		}
		p := newDiffPair(t, 320, 32)
		for i := 0; i+2 < len(ops); i += 3 {
			p.step(ops[i], ops[i+1], ops[i+2])
			if i%(3*16) == 0 {
				p.roundTrip()
			}
		}
	})
}

// TestScatterLazyFreeStack exercises the hole-marking free stack of scatter
// machines under fail/repair churn: invariants (stack/live/hole accounting)
// hold at every step and snapshots round-trip.
func TestScatterLazyFreeStack(t *testing.T) {
	m := New(320, 32)
	rng := uint64(7)
	next := func() int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng >> 33)
	}
	live := []int{}
	nextID := 0
	for i := 0; i < 2000; i++ {
		switch next() % 5 {
		case 0, 1:
			id := nextID
			nextID++
			if m.Alloc(id, (next()%10+1)*32) == nil {
				live = append(live, id)
			}
		case 2:
			if len(live) > 0 {
				k := next() % len(live)
				if err := m.Release(live[k]); err != nil {
					t.Fatal(err)
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case 3:
			_, victims, err := m.FailGroups([]int{next() % 10, next() % 10})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range victims {
				if err := m.Release(id); err != nil {
					t.Fatal(err)
				}
				for k, v := range live {
					if v == id {
						live[k] = live[len(live)-1]
						live = live[:len(live)-1]
						break
					}
				}
			}
		case 4:
			if _, err := m.RepairGroups([]int{next() % 10, next() % 10}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i%111 == 0 {
			sn := m.Snapshot()
			m2, err := FromSnapshot(sn)
			if err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if sn2 := m2.Snapshot(); !reflect.DeepEqual(sn, sn2) {
				t.Fatalf("step %d: snapshot round trip diverged", i)
			}
		}
	}
}
