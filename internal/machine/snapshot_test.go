package machine

import (
	"reflect"
	"testing"
)

// snapMachine builds a machine with a mixed allocation history so the free
// stack and owner table are in a non-trivial order.
func snapMachine() *Machine {
	m := New(320, 32)
	for _, a := range []struct{ id, size int }{{1, 64}, {2, 96}, {3, 32}, {4, 64}} {
		if err := m.Alloc(a.id, a.size); err != nil {
			panic(err)
		}
	}
	if err := m.Release(2); err != nil { // punch a hole: free stack order now matters
		panic(err)
	}
	if err := m.Resize(4, 32); err != nil {
		panic(err)
	}
	return m
}

func TestSnapshotRoundTripPreservesPlacement(t *testing.T) {
	m := snapMachine()
	r, err := FromSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != m.Total() || r.Unit() != m.Unit() || r.Free() != m.Free() || r.Used() != m.Used() {
		t.Fatalf("geometry/occupancy mismatch: %d/%d free=%d vs %d/%d free=%d",
			r.Total(), r.Unit(), r.Free(), m.Total(), m.Unit(), m.Free())
	}
	for _, id := range []int{1, 3, 4} {
		if !reflect.DeepEqual(r.OwnedGroups(id), m.OwnedGroups(id)) {
			t.Errorf("job %d groups %v, want %v", id, r.OwnedGroups(id), m.OwnedGroups(id))
		}
	}
	// Free-stack order determines future handouts: both machines must give
	// the next allocation the same groups.
	if err := m.Alloc(9, 96); err != nil {
		t.Fatal(err)
	}
	if err := r.Alloc(9, 96); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.OwnedGroups(9), m.OwnedGroups(9)) {
		t.Errorf("post-restore allocation diverged: %v vs %v", r.OwnedGroups(9), m.OwnedGroups(9))
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRoundTripContiguous(t *testing.T) {
	m := NewContiguous(256, 32)
	m.EnableMigration()
	for _, a := range []struct{ id, size int }{{1, 64}, {2, 32}, {3, 64}} {
		if err := m.Alloc(a.id, a.size); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Release(2); err != nil {
		t.Fatal(err)
	}
	m.Compact()
	r, err := FromSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contiguous() || r.Migrations() != m.Migrations() {
		t.Fatalf("contiguous/migration state lost: contiguous=%v migrations=%d want %d",
			r.Contiguous(), r.Migrations(), m.Migrations())
	}
	if !reflect.DeepEqual(r.OwnedGroups(1), m.OwnedGroups(1)) || !reflect.DeepEqual(r.OwnedGroups(3), m.OwnedGroups(3)) {
		t.Error("owned groups diverged after contiguous round trip")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestFromSnapshotRejectsCorruption(t *testing.T) {
	base := func() Snapshot { return snapMachine().Snapshot() }
	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"bad geometry", func(s *Snapshot) { s.Unit = 33 }},
		{"group count", func(s *Snapshot) { s.Groups = s.Groups[:4] }},
		{"owner out of range", func(s *Snapshot) { s.Owners[0].Groups[0] = 99 }},
		{"free stack duplicate", func(s *Snapshot) { s.FreeStack = append(s.FreeStack, s.FreeStack[0]) }},
		{"free stack not free", func(s *Snapshot) { s.FreeStack[0] = s.Owners[0].Groups[0] }},
		{"owner not in groups", func(s *Snapshot) { s.Owners[0].JobID = 77 }},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", tc.name)
		}
	}
}
