package machine

import "testing"

// checked wraps CheckInvariants as a test helper.
func checked(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailFreeGroupsShrinksCapacity(t *testing.T) {
	m := New(320, 32)
	failed, victims, err := m.FailGroups([]int{0, 5})
	if err != nil || failed != 2 || len(victims) != 0 {
		t.Fatalf("FailGroups = (%d, %v, %v)", failed, victims, err)
	}
	if m.Free() != 320-64 || m.Available() != 320-64 || m.DownProcs() != 64 {
		t.Fatalf("free=%d avail=%d down=%d", m.Free(), m.Available(), m.DownProcs())
	}
	if m.GroupHealth(0) != Down || m.GroupHealth(5) != Down || m.GroupHealth(1) != Up {
		t.Fatalf("health: %v %v %v", m.GroupHealth(0), m.GroupHealth(5), m.GroupHealth(1))
	}
	checked(t, m)

	// Failing an already-down group changes nothing.
	failed, _, err = m.FailGroups([]int{5})
	if err != nil || failed != 0 {
		t.Fatalf("re-fail = (%d, %v)", failed, err)
	}
	checked(t, m)

	// Allocation must avoid the down groups.
	if err := m.Alloc(1, 256); err != nil {
		t.Fatal(err)
	}
	for _, g := range m.OwnedGroups(1) {
		if g == 0 || g == 5 {
			t.Fatalf("job allocated down group %d", g)
		}
	}
	checked(t, m)

	repaired, err := m.RepairGroups([]int{0, 5, 0})
	if err != nil || repaired != 2 {
		t.Fatalf("RepairGroups = (%d, %v)", repaired, err)
	}
	if m.Free() != 64 || m.DownProcs() != 0 || m.Available() != 320 {
		t.Fatalf("after repair free=%d down=%d avail=%d", m.Free(), m.DownProcs(), m.Available())
	}
	checked(t, m)
}

func TestFailOccupiedGroupDrainsUntilRelease(t *testing.T) {
	m := New(128, 32)
	if err := m.Alloc(7, 64); err != nil {
		t.Fatal(err)
	}
	held := m.OwnedGroups(7)
	failed, victims, err := m.FailGroups([]int{held[0]})
	if err != nil || failed != 1 {
		t.Fatalf("FailGroups = (%d, %v, %v)", failed, victims, err)
	}
	if len(victims) != 1 || victims[0] != 7 {
		t.Fatalf("victims = %v, want [7]", victims)
	}
	if m.GroupHealth(held[0]) != Draining {
		t.Fatalf("group %d = %v, want Draining", held[0], m.GroupHealth(held[0]))
	}
	if m.Available() != 96 || m.Used() != 64 {
		t.Fatalf("avail=%d used=%d", m.Available(), m.Used())
	}
	checked(t, m)

	if err := m.Release(7); err != nil {
		t.Fatal(err)
	}
	if m.GroupHealth(held[0]) != Down {
		t.Fatalf("after release group %d = %v, want Down", held[0], m.GroupHealth(held[0]))
	}
	if m.Free() != 96 || m.Used() != 0 || m.DownProcs() != 32 {
		t.Fatalf("after release free=%d used=%d down=%d", m.Free(), m.Used(), m.DownProcs())
	}
	checked(t, m)
}

func TestFailGroupsDeduplicatesVictims(t *testing.T) {
	m := New(128, 32)
	if err := m.Alloc(3, 128); err != nil {
		t.Fatal(err)
	}
	_, victims, err := m.FailGroups([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || victims[0] != 3 {
		t.Fatalf("victims = %v, want [3]", victims)
	}
	checked(t, m)
}

func TestFailRepairBoundsChecked(t *testing.T) {
	m := New(64, 32)
	if _, _, err := m.FailGroups([]int{2}); err == nil {
		t.Fatal("fail of out-of-range group succeeded")
	}
	if _, err := m.RepairGroups([]int{-1}); err == nil {
		t.Fatal("repair of out-of-range group succeeded")
	}
	checked(t, m)
}

func TestRepairSkipsDrainingGroup(t *testing.T) {
	m := New(64, 32)
	if err := m.Alloc(1, 32); err != nil {
		t.Fatal(err)
	}
	g := m.OwnedGroups(1)[0]
	if _, _, err := m.FailGroups([]int{g}); err != nil {
		t.Fatal(err)
	}
	repaired, err := m.RepairGroups([]int{g})
	if err != nil || repaired != 0 {
		t.Fatalf("repair of draining group = (%d, %v), want (0, nil)", repaired, err)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if repaired, _ := m.RepairGroups([]int{g}); repaired != 1 {
		t.Fatal("down group not repairable after release")
	}
	checked(t, m)
}

func TestContiguousFitsSkipsDownGroups(t *testing.T) {
	m := NewContiguous(160, 32)
	// Fail the middle group: two free runs of 2 remain.
	if _, _, err := m.FailGroups([]int{2}); err != nil {
		t.Fatal(err)
	}
	if m.Fits(96) {
		t.Fatal("96 procs should not fit contiguously around a down group")
	}
	if !m.Fits(64) {
		t.Fatal("64 procs should fit")
	}
	if err := m.Alloc(1, 64); err != nil {
		t.Fatal(err)
	}
	for _, g := range m.OwnedGroups(1) {
		if g == 2 {
			t.Fatal("contiguous alloc used down group")
		}
	}
	checked(t, m)
}

func TestCompactSuspendedWhileDown(t *testing.T) {
	m := NewContiguous(160, 32)
	if err := m.Alloc(1, 32); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.FailGroups([]int{3}); err != nil {
		t.Fatal(err)
	}
	if moved := m.Compact(); moved != 0 {
		t.Fatalf("Compact moved %d jobs with a down group present", moved)
	}
	checked(t, m)
}

func TestSnapshotRoundTripWithDownGroups(t *testing.T) {
	m := New(320, 32)
	if err := m.Alloc(1, 96); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.FailGroups([]int{9, 8}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Health == nil {
		t.Fatal("snapshot with down groups must carry health")
	}
	back, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Free() != m.Free() || back.DownProcs() != m.DownProcs() || back.Available() != m.Available() {
		t.Fatalf("restore mismatch: free %d/%d down %d/%d", back.Free(), m.Free(), back.DownProcs(), m.DownProcs())
	}
	if back.GroupHealth(9) != Down || back.GroupHealth(8) != Down {
		t.Fatal("restored health lost down groups")
	}
	checked(t, back)
}

func TestSnapshotOmitsHealthWhenAllUp(t *testing.T) {
	m := New(320, 32)
	if s := m.Snapshot(); s.Health != nil {
		t.Fatal("all-up snapshot should omit health")
	}
}

func TestFromSnapshotRejectsCorruptHealth(t *testing.T) {
	m := New(64, 32)
	if _, _, err := m.FailGroups([]int{0}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()

	bad := s
	bad.Health = []GroupState{Down} // wrong length
	if _, err := FromSnapshot(bad); err == nil {
		t.Fatal("short health accepted")
	}

	bad = s
	bad.Health = []GroupState{Draining, Up}
	if _, err := FromSnapshot(bad); err == nil {
		t.Fatal("draining health accepted")
	}

	bad = s
	bad.Health = []GroupState{Up, Down}
	bad.Groups = []int{-1, 4} // down group owned
	bad.Owners = []OwnerSnap{{JobID: 4, Groups: []int{1}}}
	bad.FreeStack = []int{0}
	if _, err := FromSnapshot(bad); err == nil {
		t.Fatal("owned down group accepted")
	}

	bad = s
	bad.FreeStack = []int{0, 1} // stack includes the down group 0
	if _, err := FromSnapshot(bad); err == nil {
		t.Fatal("free stack over down group accepted")
	}
}
