// Package machine models the parallel machine the paper simulates: IBM's
// BlueGene/P with M = 320 processors clustered into node groups of 32, so
// only integer multiples of 32 processors can be assigned to a job.
//
// The paper's schedulers treat the machine as a capacity counter (no
// topology constraints); this package additionally tracks which node groups
// each job holds, which catches double-allocation bugs and supports
// visualization and allocation-policy ablations.
package machine

import (
	"fmt"
	"slices"
)

// GroupState is the health of one node group. Node groups are the failure
// domain: a fault takes whole groups out of service and a repair returns
// them, so capacity shrinks and grows in unit-sized quanta.
type GroupState uint8

const (
	// Up is a healthy group: free or allocated normally.
	Up GroupState = iota
	// Draining is a failed group still held by a running job. It is the
	// transient state between FailGroups and the victim's Release, which
	// moves it to Down; at scheduling boundaries no group is Draining.
	Draining
	// Down is a failed, unoccupied group: excluded from allocation until
	// repaired.
	Down
)

// String returns the state name.
func (s GroupState) String() string {
	switch s {
	case Up:
		return "up"
	case Draining:
		return "draining"
	case Down:
		return "down"
	}
	return fmt.Sprintf("GroupState(%d)", uint8(s))
}

// Machine is a fixed pool of processors with quantized allocation.
type Machine struct {
	total int
	unit  int
	free  int
	// contiguous requires every allocation to occupy a single run of
	// adjacent node groups, modelling torus-partitioned systems like
	// BlueGene (Section II, Krevat et al.). Fragmentation then matters:
	// enough total capacity may be free yet unallocatable.
	contiguous bool
	// groups[i] is the job ID occupying node group i, or -1 when free.
	groups []int
	// health[i] is node group i's GroupState. Down groups are unowned
	// (groups[i] == -1) but excluded from the free pool; Draining groups
	// are still owned by their victim job until it is released.
	health []GroupState
	// downProcs counts the processors of all Down and Draining groups —
	// the capacity currently out of service. drainingProcs is the Draining
	// share of it (owned by victims not yet released).
	downProcs     int
	drainingProcs int
	// owner maps jobID -> owned group indices (nil = no allocation). Job
	// IDs are small dense integers, so a growable slice replaces the map
	// the allocation hot path used to hash into.
	owner [][]int
	// ownedIDs lists the job IDs currently holding an allocation, in no
	// particular order (swap-removed on release); ownerPos[id] is the
	// job's position in it, +1 (0 = not allocated). Compact iterates this
	// list instead of the whole owner table, so its cost tracks the number
	// of running jobs, not the largest job ID ever allocated.
	ownedIDs []int
	ownerPos []int
	// freeStack holds the free group indices of a scatter machine (top is
	// allocated next), making Alloc O(groups requested) instead of a scan
	// of the whole machine. Entries are removed lazily: FailGroups of a
	// free group overwrites its slot with the -1 hole marker in O(1)
	// (stackPos locates the slot) instead of splicing the slice, and pops
	// skip holes. staleFree counts the holes; the stack is compacted in
	// place — order preserved — once holes dominate. Unused under
	// contiguous allocation, where placement needs runs, not single groups.
	freeStack []int
	stackPos  []int
	staleFree int
	// idx is the contiguous machine's free-run segment tree (nil on
	// scatter machines, and nil when the dense reference paths are forced
	// for differential tests and benchmarks).
	idx *runIndex
	// migratory marks that the owner is willing to Compact on demand: a
	// capacity-feasible request is then always placeable, so Fits ignores
	// fragmentation.
	migratory bool
	// migrations counts jobs moved by Compact.
	migrations int
	// idxPool recycles owner index slices between Release and Alloc so the
	// steady-state alloc/release cycle does not heap-allocate.
	idxPool [][]int
	// compact is Compact's reusable placement scratch.
	compact []placedJob
}

// placedJob is Compact's view of one running job: its current leftmost
// group and group count.
type placedJob struct {
	id    int
	first int
	n     int
}

// New returns a machine with total processors allocated in multiples of
// unit. unit must divide total; pass unit=1 for unquantized machines (e.g.
// when replaying SWF traces from non-BlueGene systems). Allocations may
// scatter across node groups (the paper's capacity-only model).
func New(total, unit int) *Machine {
	if total <= 0 {
		panic(fmt.Sprintf("machine: non-positive size %d", total))
	}
	if unit <= 0 || total%unit != 0 {
		panic(fmt.Sprintf("machine: unit %d does not divide total %d", unit, total))
	}
	m := &Machine{total: total, unit: unit, free: total}
	// At most one job per group can run at once, so total/unit bounds the
	// owned-ID list; cap the presize so huge machines don't pay up front.
	c := total / unit
	if c > 1024 {
		c = 1024
	}
	m.ownedIDs = make([]int, 0, c)
	m.groups = make([]int, total/unit)
	for i := range m.groups {
		m.groups[i] = -1
	}
	m.health = make([]GroupState, total/unit)
	m.stackPos = make([]int, total/unit)
	m.freeStack = make([]int, 0, total/unit)
	m.rebuildFreeStack()
	return m
}

// NewContiguous returns a machine whose allocations must be contiguous
// node-group runs (first-fit placement).
func NewContiguous(total, unit int) *Machine {
	m := New(total, unit)
	m.contiguous = true
	// Contiguous placement is run-driven: the free stack is unused and the
	// run index replaces the dense scans.
	m.freeStack = nil
	m.stackPos = nil
	m.buildIndex()
	return m
}

// buildIndex (re)builds the free-run segment tree from the group and
// health maps.
func (m *Machine) buildIndex() {
	if m.idx == nil {
		m.idx = newRunIndex(len(m.groups))
	}
	m.idx.rebuild(m.groups, m.health)
}

// forceDense drops the run index, restoring the dense O(G) scan paths —
// the retained reference implementation the differential tests and the
// scaling benchmarks compare against. Test/bench only.
func (m *Machine) forceDense() { m.idx = nil }

// noteGroup refreshes group g's leaf in the run index after its occupancy
// or health changed. No-op on scatter machines.
func (m *Machine) noteGroup(g int) {
	if m.idx != nil {
		m.idx.set(g, m.groups[g] == -1 && m.health[g] == Up)
	}
}

// rebuildFreeStack refills the scatter free stack from the group map, in
// descending index order so groups are handed out lowest-first from a
// fresh machine.
func (m *Machine) rebuildFreeStack() {
	m.freeStack = m.freeStack[:0]
	m.staleFree = 0
	for i := range m.stackPos {
		m.stackPos[i] = 0
	}
	for i := len(m.groups) - 1; i >= 0; i-- {
		if m.groups[i] == -1 && m.health[i] == Up {
			m.pushFree(i)
		}
	}
}

// pushFree puts group g on top of the scatter free stack.
func (m *Machine) pushFree(g int) {
	m.freeStack = append(m.freeStack, g)
	m.stackPos[g] = len(m.freeStack)
}

// holeFreeStack removes group g from the scatter free stack in O(1) by
// overwriting its slot with a hole; pops skip holes. Once holes dominate
// the stack it is compacted in place, preserving entry order, so the
// amortized cost stays constant and the allocation order is exactly the
// dense stack's.
func (m *Machine) holeFreeStack(g int) {
	pos := m.stackPos[g] - 1
	if pos < 0 || m.freeStack[pos] != g {
		panic(fmt.Sprintf("machine: free group %d missing from free stack", g))
	}
	m.freeStack[pos] = -1
	m.stackPos[g] = 0
	m.staleFree++
	if m.staleFree > 64 && m.staleFree > len(m.freeStack)/2 {
		m.compactFreeStack()
	}
}

// compactFreeStack squeezes the holes out of the free stack, keeping the
// live entries in order.
func (m *Machine) compactFreeStack() {
	live := m.freeStack[:0]
	for _, g := range m.freeStack {
		if g >= 0 {
			live = append(live, g)
			m.stackPos[g] = len(live)
		}
	}
	m.freeStack = live
	m.staleFree = 0
}

// liveFree returns the number of live (non-hole) free-stack entries.
func (m *Machine) liveFree() int { return len(m.freeStack) - m.staleFree }

// ownerOf returns jobID's group indices, or nil.
func (m *Machine) ownerOf(jobID int) []int {
	if jobID < 0 || jobID >= len(m.owner) {
		return nil
	}
	return m.owner[jobID]
}

// setOwner records jobID's group indices, growing the table on demand, and
// registers the job in the owned-ID list. Growth is chunked (doubling, 64
// minimum) so the owner and position tables cost O(log maxJobID)
// allocations over a run instead of one pair per new job ID.
func (m *Machine) setOwner(jobID int, idx []int) {
	if jobID >= len(m.owner) {
		n := 2 * len(m.owner)
		if n < jobID+1 {
			n = jobID + 1
		}
		if n < 64 {
			n = 64
		}
		owner := make([][]int, n)
		copy(owner, m.owner)
		m.owner = owner
		pos := make([]int, n)
		copy(pos, m.ownerPos)
		m.ownerPos = pos
	}
	m.owner[jobID] = idx
	m.ownedIDs = append(m.ownedIDs, jobID)
	m.ownerPos[jobID] = len(m.ownedIDs)
}

// dropOwner clears jobID's allocation record, swap-removing it from the
// owned-ID list in O(1).
func (m *Machine) dropOwner(jobID int) {
	m.owner[jobID] = nil
	pos := m.ownerPos[jobID] - 1
	last := m.ownedIDs[len(m.ownedIDs)-1]
	m.ownedIDs[pos] = last
	m.ownerPos[last] = pos + 1
	m.ownedIDs = m.ownedIDs[:len(m.ownedIDs)-1]
	m.ownerPos[jobID] = 0
}

// Contiguous reports whether allocations must be contiguous.
func (m *Machine) Contiguous() bool { return m.contiguous }

// EnableMigration declares that the owner compacts on placement failure,
// making Fits capacity-only again.
func (m *Machine) EnableMigration() { m.migratory = true }

// Migrations returns how many job moves Compact has performed.
func (m *Machine) Migrations() int { return m.migrations }

// Total returns M, the machine size in processors.
func (m *Machine) Total() int { return m.total }

// Unit returns the allocation quantum in processors (32 for BlueGene/P).
func (m *Machine) Unit() int { return m.unit }

// Free returns the number of unallocated, in-service processors (m in the
// paper).
func (m *Machine) Free() int { return m.free }

// Used returns the number of allocated processors, including those of
// Draining groups (still held by their victim until release).
func (m *Machine) Used() int { return m.total - m.free - m.downFreeProcs() }

// downFreeProcs returns the processors of Down groups (out of service and
// unowned); Draining procs are owned, so they count as Used.
func (m *Machine) downFreeProcs() int { return m.downProcs - m.drainingProcs }

// Available returns the in-service machine size: total minus the
// processors of Down and Draining groups. Schedulers plan against this
// capacity; with no faults injected it equals Total.
func (m *Machine) Available() int { return m.total - m.downProcs }

// DownProcs returns the processors currently out of service (Down or
// Draining groups).
func (m *Machine) DownProcs() int { return m.downProcs }

// NumGroups returns the number of node groups (total/unit).
func (m *Machine) NumGroups() int { return len(m.groups) }

// GroupHealth returns node group g's state.
func (m *Machine) GroupHealth(g int) GroupState { return m.health[g] }

// Utilization returns the instantaneous fraction of busy processors.
func (m *Machine) Utilization() float64 { return float64(m.Used()) / float64(m.total) }

// Fits reports whether size processors could be allocated right now. Under
// contiguous allocation this checks for a free run, not just free capacity.
func (m *Machine) Fits(size int) bool {
	if size <= 0 || size > m.free {
		return false
	}
	if !m.contiguous || m.migratory {
		return true
	}
	need := (size + m.unit - 1) / m.unit
	return m.longestFreeRun() >= need
}

// FragmentedWaste returns the free processors unusable by the largest
// currently placeable contiguous request: free minus the longest free run
// (always 0 for scatter machines).
func (m *Machine) FragmentedWaste() int {
	if !m.contiguous {
		return 0
	}
	return m.free - m.longestFreeRun()*m.unit
}

// longestFreeRun returns the length of the longest run of free, healthy
// groups: O(1) off the run index, with the dense scan as the retained
// reference path.
func (m *Machine) longestFreeRun() int {
	if m.idx != nil {
		return m.idx.longestRun()
	}
	return m.longestFreeRunDense()
}

// longestFreeRunDense is the dense O(G) reference scan.
func (m *Machine) longestFreeRunDense() int {
	best, cur := 0, 0
	for i, g := range m.groups {
		if g == -1 && m.health[i] == Up {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// findRun returns the first index of a free, healthy run of length need,
// or -1: O(log G) off the run index, with the dense scan as the retained
// reference path. Both return the same leftmost index.
func (m *Machine) findRun(need int) int {
	if m.idx != nil {
		return m.idx.findRun(need)
	}
	return m.findRunDense(need)
}

// findRunDense is the dense O(G) reference scan.
func (m *Machine) findRunDense(need int) int {
	cur := 0
	for i, g := range m.groups {
		if g == -1 && m.health[i] == Up {
			cur++
			if cur == need {
				return i - need + 1
			}
		} else {
			cur = 0
		}
	}
	return -1
}

// Quantize rounds size up to the allocation unit and caps it at the machine
// size. It returns an error for non-positive sizes.
func (m *Machine) Quantize(size int) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("machine: non-positive allocation %d", size)
	}
	q := ((size + m.unit - 1) / m.unit) * m.unit
	if q > m.total {
		return 0, fmt.Errorf("machine: allocation %d exceeds machine size %d", size, m.total)
	}
	return q, nil
}

// Alloc reserves size processors for jobID. size must already be a multiple
// of the unit (the workload generator guarantees it; trace loaders call
// Quantize first). It returns an error if the request cannot be satisfied.
func (m *Machine) Alloc(jobID, size int) error {
	if jobID < 0 {
		return fmt.Errorf("machine: negative job ID %d", jobID)
	}
	if size <= 0 || size%m.unit != 0 {
		return fmt.Errorf("machine: allocation %d for job %d not a multiple of unit %d", size, jobID, m.unit)
	}
	if size > m.free {
		return fmt.Errorf("machine: allocation %d for job %d exceeds free capacity %d", size, jobID, m.free)
	}
	if m.ownerOf(jobID) != nil {
		return fmt.Errorf("machine: job %d already holds an allocation", jobID)
	}
	need := size / m.unit
	idx := m.takeIdx(need)
	if m.contiguous {
		at := m.findRun(need)
		if at < 0 {
			m.idxPool = append(m.idxPool, idx)
			return fmt.Errorf("machine: no contiguous run of %d groups for job %d (free %d, fragmented)", need, jobID, m.free)
		}
		for i := at; i < at+need; i++ {
			m.groups[i] = jobID
			m.noteGroup(i)
			idx = append(idx, i)
		}
	} else {
		idx = m.takeFree(jobID, need, idx)
	}
	m.setOwner(jobID, idx)
	m.free -= size
	return nil
}

// takeFree pops the top need live groups off the scatter free stack,
// assigning them to jobID in stack order (deepest of the popped segment
// first — the order the hole-free stack handed them out), and appends
// their indices to idx. Holes crossed on the way are discarded, so the pop
// cost is amortized O(need).
func (m *Machine) takeFree(jobID, need int, idx []int) []int {
	if m.liveFree() < need {
		// free counter said yes but the free stack disagrees: corruption.
		panic(fmt.Sprintf("machine: free=%d but only %d/%d groups available", m.free, m.liveFree(), need))
	}
	top, live := len(m.freeStack), 0
	for live < need {
		top--
		if m.freeStack[top] >= 0 {
			live++
		} else {
			m.staleFree--
		}
	}
	for _, g := range m.freeStack[top:] {
		if g < 0 {
			continue
		}
		m.groups[g] = jobID
		m.stackPos[g] = 0
		idx = append(idx, g)
	}
	m.freeStack = m.freeStack[:top]
	return idx
}

// takeIdx returns an empty index slice with capacity >= need, reusing a
// released slice when one is large enough.
func (m *Machine) takeIdx(need int) []int {
	for i := len(m.idxPool) - 1; i >= 0; i-- {
		if s := m.idxPool[i]; cap(s) >= need {
			m.idxPool[i] = m.idxPool[len(m.idxPool)-1]
			m.idxPool = m.idxPool[:len(m.idxPool)-1]
			return s[:0]
		}
	}
	return make([]int, 0, need)
}

// Compact migrates running jobs toward group 0, coalescing all free groups
// into one trailing run — the on-the-fly defragmentation of Krevat et al.
// It returns the number of jobs whose placement changed. Only meaningful
// (but harmless) on contiguous machines.
func (m *Machine) Compact() int {
	// Compaction is suspended while any group is out of service: packing
	// jobs toward group 0 across Down holes would either break their
	// contiguity or reoccupy failed hardware.
	if m.downProcs > 0 {
		return 0
	}
	// Stable order: jobs sorted by their current first group (unique per
	// job, so an unstable sort cannot reorder equals). The owned-ID list
	// bounds the scan by the number of running jobs — the owner table is
	// indexed by job ID and may be arbitrarily long and sparse.
	jobs := m.compact[:0]
	for _, id := range m.ownedIDs {
		idx := m.owner[id]
		first := idx[0]
		for _, g := range idx {
			if g < first {
				first = g
			}
		}
		jobs = append(jobs, placedJob{id, first, len(idx)})
	}
	m.compact = jobs
	slices.SortFunc(jobs, func(a, b placedJob) int { return a.first - b.first })
	for i := range m.groups {
		m.groups[i] = -1
	}
	moved := 0
	next := 0
	for _, p := range jobs {
		// The job's group count is unchanged, so its existing index slice is
		// rewritten in place.
		idx := m.owner[p.id]
		for k := 0; k < p.n; k++ {
			m.groups[next+k] = p.id
			idx[k] = next + k
		}
		if p.first != next {
			moved++
		}
		next += p.n
	}
	if m.contiguous {
		if m.idx != nil {
			m.idx.rebuild(m.groups, m.health)
		}
	} else {
		m.rebuildFreeStack()
	}
	m.migrations += moved
	return moved
}

// Release frees every processor held by jobID. Releasing a job with no
// allocation is an error (double release is always a scheduler bug).
// Draining groups (failed while the job held them) go Down instead of
// returning to the free pool.
func (m *Machine) Release(jobID int) error {
	idx := m.ownerOf(jobID)
	if idx == nil {
		return fmt.Errorf("machine: release of job %d which holds no allocation", jobID)
	}
	for _, i := range idx {
		m.freeGroup(i)
	}
	m.dropOwner(jobID)
	m.idxPool = append(m.idxPool, idx)
	return nil
}

// freeGroup hands group g back: to the free pool when healthy, to Down
// when it failed while owned.
func (m *Machine) freeGroup(g int) {
	m.groups[g] = -1
	if m.health[g] == Draining {
		m.health[g] = Down
		m.drainingProcs -= m.unit
		return
	}
	if !m.contiguous {
		m.pushFree(g)
	} else {
		m.noteGroup(g)
	}
	m.free += m.unit
}

// Resize grows or shrinks jobID's allocation to newSize processors (a
// multiple of the unit). Shrinking always succeeds; growing requires enough
// free capacity. This supports the paper's future-work EP/RP commands.
func (m *Machine) Resize(jobID, newSize int) error {
	idx := m.ownerOf(jobID)
	if idx == nil {
		return fmt.Errorf("machine: resize of job %d which holds no allocation", jobID)
	}
	if newSize <= 0 || newSize%m.unit != 0 {
		return fmt.Errorf("machine: resize to %d not a positive multiple of unit %d", newSize, m.unit)
	}
	cur := len(idx) * m.unit
	switch {
	case newSize == cur:
		return nil
	case newSize < cur:
		drop := (cur - newSize) / m.unit
		for _, g := range idx[len(idx)-drop:] {
			m.freeGroup(g)
		}
		m.owner[jobID] = idx[:len(idx)-drop]
		return nil
	default:
		grow := newSize - cur
		if grow > m.free {
			return fmt.Errorf("machine: resize of job %d to %d needs %d free, have %d", jobID, newSize, grow, m.free)
		}
		need := grow / m.unit
		if m.contiguous {
			// A contiguous job may only grow into the free groups directly
			// after its run (space continuity, paper Section VI).
			last := idx[len(idx)-1]
			for k := 1; k <= need; k++ {
				if last+k >= len(m.groups) || m.groups[last+k] != -1 || m.health[last+k] != Up {
					return fmt.Errorf("machine: job %d cannot grow contiguously by %d groups", jobID, need)
				}
			}
			for k := 1; k <= need; k++ {
				m.groups[last+k] = jobID
				m.noteGroup(last + k)
				idx = append(idx, last+k)
			}
		} else {
			idx = m.takeFree(jobID, need, idx)
		}
		m.owner[jobID] = idx
		m.free -= grow
		return nil
	}
}

// AllUp reports whether every node group jobID holds is healthy. Jobs with
// no allocation are vacuously healthy.
func (m *Machine) AllUp(jobID int) bool {
	for _, g := range m.ownerOf(jobID) {
		if m.health[g] != Up {
			return false
		}
	}
	return true
}

// ShrinkDraining shrinks jobID's allocation down to its healthy groups:
// every Draining group the job holds goes Down (as a kill would move it),
// and the job keeps running on what remains. It is the malleable
// alternative to killing a failure victim. On contiguous machines space
// continuity must survive, so the job keeps only the longest contiguous
// run of Up groups in its allocation; healthy groups outside that run are
// returned to the free pool.
//
// The shrink is refused — with no mutation — when the kept allocation
// would fall below minProcs (the job's quantized minimum). It returns the
// job's new allocation size in processors.
func (m *Machine) ShrinkDraining(jobID, minProcs int) (int, error) {
	idx := m.ownerOf(jobID)
	if idx == nil {
		return 0, fmt.Errorf("machine: shrink of job %d which holds no allocation", jobID)
	}
	if m.contiguous {
		// Longest contiguous sub-run of Up groups. The index slice is kept
		// in ascending consecutive order by Alloc/Resize/Compact.
		bestAt, bestLen, at, run := 0, 0, 0, 0
		for i, g := range idx {
			if m.health[g] == Up {
				if run == 0 {
					at = i
				}
				run++
				if run > bestLen {
					bestAt, bestLen = at, run
				}
			} else {
				run = 0
			}
		}
		if bestLen*m.unit < minProcs {
			return 0, fmt.Errorf("machine: job %d has %d healthy contiguous procs, needs %d", jobID, bestLen*m.unit, minProcs)
		}
		for i, g := range idx {
			if i >= bestAt && i < bestAt+bestLen {
				continue
			}
			m.freeGroup(g) // Draining -> Down; healthy -> free pool
		}
		copy(idx, idx[bestAt:bestAt+bestLen])
		m.owner[jobID] = idx[:bestLen]
		return bestLen * m.unit, nil
	}
	kept := 0
	for _, g := range idx {
		if m.health[g] == Up {
			kept++
		}
	}
	if kept*m.unit < minProcs {
		return 0, fmt.Errorf("machine: job %d has %d healthy procs, needs %d", jobID, kept*m.unit, minProcs)
	}
	if kept == len(idx) {
		return kept * m.unit, nil
	}
	w := 0
	for _, g := range idx {
		if m.health[g] == Up {
			idx[w] = g
			w++
		} else {
			m.freeGroup(g) // Draining -> Down, capacity already counted down
		}
	}
	m.owner[jobID] = idx[:w]
	return w * m.unit, nil
}

// FailGroups takes the named node groups out of service. Free groups go
// Down immediately (leaving the free pool); groups held by a running job
// go Draining, and the job — returned in victims, deduplicated — must be
// killed by the caller, whose Release moves its Draining groups to Down.
// Groups already Down or Draining are skipped. It returns the number of
// groups newly taken out of service and the victim job IDs.
func (m *Machine) FailGroups(gs []int) (failed int, victims []int, err error) {
	for _, g := range gs {
		if g < 0 || g >= len(m.groups) {
			return failed, victims, fmt.Errorf("machine: fail of group %d outside [0,%d)", g, len(m.groups))
		}
	}
	for _, g := range gs {
		if m.health[g] != Up {
			continue
		}
		failed++
		m.downProcs += m.unit
		if id := m.groups[g]; id != -1 {
			m.health[g] = Draining
			m.drainingProcs += m.unit
			if !containsInt(victims, id) {
				victims = append(victims, id)
			}
			continue
		}
		m.health[g] = Down
		m.free -= m.unit
		if !m.contiguous {
			m.holeFreeStack(g)
		} else {
			m.noteGroup(g)
		}
	}
	return failed, victims, nil
}

// RepairGroups returns the named Down groups to service, growing the free
// pool. Groups that are Up or Draining are skipped (repairing healthy
// hardware is a no-op; a Draining group cannot be repaired under its
// victim). It returns the number of groups repaired.
func (m *Machine) RepairGroups(gs []int) (repaired int, err error) {
	for _, g := range gs {
		if g < 0 || g >= len(m.groups) {
			return repaired, fmt.Errorf("machine: repair of group %d outside [0,%d)", g, len(m.groups))
		}
	}
	for _, g := range gs {
		if m.health[g] != Down {
			continue
		}
		repaired++
		m.health[g] = Up
		m.downProcs -= m.unit
		m.free += m.unit
		if !m.contiguous {
			m.pushFree(g)
		} else {
			m.noteGroup(g)
		}
	}
	return repaired, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Held returns the size of jobID's current allocation (0 if none).
func (m *Machine) Held(jobID int) int {
	return len(m.ownerOf(jobID)) * m.unit
}

// OwnedGroups returns a copy of the node-group indices jobID holds.
func (m *Machine) OwnedGroups(jobID int) []int {
	idx := m.ownerOf(jobID)
	out := make([]int, len(idx))
	copy(out, idx)
	return out
}

// Groups returns a copy of the node-group occupancy map (-1 = free).
func (m *Machine) Groups() []int {
	out := make([]int, len(m.groups))
	copy(out, m.groups)
	return out
}

// OwnerSnap records one job's allocation in a Snapshot: the node-group
// indices it holds, in allocation order (the order matters — Resize shrinks
// from the tail and Compact rewrites in place, so reconstructing it from
// the group map alone would lose it).
type OwnerSnap struct {
	JobID  int   `json:"job_id"`
	Groups []int `json:"groups"`
}

// Snapshot is the machine's complete restorable state. FreeStack is carried
// verbatim because its order determines which groups future allocations
// receive: restoring it exactly keeps a resumed run's placements identical
// to the uninterrupted run's.
type Snapshot struct {
	Total      int         `json:"total"`
	Unit       int         `json:"unit"`
	Contiguous bool        `json:"contiguous,omitempty"`
	Migratory  bool        `json:"migratory,omitempty"`
	Groups     []int       `json:"groups"`
	FreeStack  []int       `json:"free_stack,omitempty"`
	Owners     []OwnerSnap `json:"owners,omitempty"`
	Migrations int         `json:"migrations,omitempty"`
	// Health carries per-group states when any group is out of service
	// (omitted — all Up — otherwise). Snapshots are taken at instant
	// boundaries, where no group is Draining, so only Up/Down appear.
	Health []GroupState `json:"health,omitempty"`
}

// Snapshot captures the machine state for later FromSnapshot restoration.
func (m *Machine) Snapshot() Snapshot {
	s := Snapshot{
		Total:      m.total,
		Unit:       m.unit,
		Contiguous: m.contiguous,
		Migratory:  m.migratory,
		Groups:     append([]int(nil), m.groups...),
		Migrations: m.migrations,
	}
	if !m.contiguous {
		// Holes (lazily deleted entries) are squeezed out, preserving entry
		// order: the snapshot records exactly the live stack, so a restored
		// machine hands out the same groups in the same order.
		for _, g := range m.freeStack {
			if g >= 0 {
				s.FreeStack = append(s.FreeStack, g)
			}
		}
	}
	for id, idx := range m.owner {
		if idx != nil {
			s.Owners = append(s.Owners, OwnerSnap{JobID: id, Groups: append([]int(nil), idx...)})
		}
	}
	if m.downProcs > 0 {
		if m.drainingProcs > 0 {
			panic("machine: snapshot with draining groups (mid-failure state)")
		}
		s.Health = append([]GroupState(nil), m.health...)
	}
	return s
}

// FromSnapshot reconstructs a machine from a Snapshot and verifies its
// internal consistency, so a corrupted or hand-edited snapshot is rejected
// instead of silently producing an inconsistent simulation.
func FromSnapshot(s Snapshot) (*Machine, error) {
	if s.Total <= 0 || s.Unit <= 0 || s.Total%s.Unit != 0 {
		return nil, fmt.Errorf("machine: snapshot geometry %d/%d invalid", s.Total, s.Unit)
	}
	if len(s.Groups) != s.Total/s.Unit {
		return nil, fmt.Errorf("machine: snapshot has %d groups, geometry needs %d", len(s.Groups), s.Total/s.Unit)
	}
	m := &Machine{total: s.Total, unit: s.Unit, contiguous: s.Contiguous, migratory: s.Migratory, migrations: s.Migrations}
	m.groups = append([]int(nil), s.Groups...)
	if s.Health == nil {
		m.health = make([]GroupState, len(m.groups))
	} else {
		if len(s.Health) != len(m.groups) {
			return nil, fmt.Errorf("machine: snapshot has %d health entries, geometry needs %d", len(s.Health), len(m.groups))
		}
		m.health = append([]GroupState(nil), s.Health...)
		for g, h := range m.health {
			switch h {
			case Up:
			case Down:
				if m.groups[g] != -1 {
					return nil, fmt.Errorf("machine: snapshot group %d down but owned by job %d", g, m.groups[g])
				}
				m.downProcs += m.unit
			default:
				return nil, fmt.Errorf("machine: snapshot group %d in non-restorable state %v", g, h)
			}
		}
	}
	freeGroups := 0
	for g, id := range m.groups {
		if id == -1 && m.health[g] == Up {
			freeGroups++
		}
	}
	m.free = freeGroups * m.unit
	for _, o := range s.Owners {
		if o.JobID < 0 {
			return nil, fmt.Errorf("machine: snapshot owner with negative job ID %d", o.JobID)
		}
		for _, g := range o.Groups {
			if g < 0 || g >= len(m.groups) {
				return nil, fmt.Errorf("machine: snapshot job %d owns out-of-range group %d", o.JobID, g)
			}
		}
		m.setOwner(o.JobID, append([]int(nil), o.Groups...))
	}
	if s.Contiguous {
		if len(s.FreeStack) != 0 {
			return nil, fmt.Errorf("machine: contiguous snapshot carries a free stack")
		}
		m.buildIndex()
	} else {
		seen := make(map[int]bool, len(s.FreeStack))
		m.stackPos = make([]int, len(m.groups))
		for _, g := range s.FreeStack {
			if g < 0 || g >= len(m.groups) || m.groups[g] != -1 || m.health[g] != Up || seen[g] {
				return nil, fmt.Errorf("machine: snapshot free stack entry %d invalid", g)
			}
			seen[g] = true
			m.pushFree(g)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("machine: inconsistent snapshot: %v", err)
	}
	return m, nil
}

// CheckInvariants verifies internal consistency: the free counter matches
// the group map and the owner index is exact. Used by tests and the
// engine's paranoid mode.
func (m *Machine) CheckInvariants() error {
	if len(m.health) != len(m.groups) {
		return fmt.Errorf("machine: health table has %d entries, group map %d", len(m.health), len(m.groups))
	}
	freeGroups, downGroups, drainGroups := 0, 0, 0
	perJob := map[int]int{}
	for i, g := range m.groups {
		switch m.health[i] {
		case Down:
			if g != -1 {
				return fmt.Errorf("machine: down group %d owned by job %d", i, g)
			}
			downGroups++
			continue
		case Draining:
			if g == -1 {
				return fmt.Errorf("machine: draining group %d has no owner", i)
			}
			drainGroups++
		}
		if g == -1 {
			freeGroups++
		} else {
			perJob[g]++
		}
	}
	if freeGroups*m.unit != m.free {
		return fmt.Errorf("machine: free counter %d != free groups %d*%d", m.free, freeGroups, m.unit)
	}
	if (downGroups+drainGroups)*m.unit != m.downProcs {
		return fmt.Errorf("machine: down counter %d != (%d down + %d draining)*%d", m.downProcs, downGroups, drainGroups, m.unit)
	}
	if drainGroups*m.unit != m.drainingProcs {
		return fmt.Errorf("machine: draining counter %d != %d draining groups*%d", m.drainingProcs, drainGroups, m.unit)
	}
	if !m.contiguous {
		if m.liveFree() != freeGroups {
			return fmt.Errorf("machine: free stack has %d live groups, group map has %d", m.liveFree(), freeGroups)
		}
		holes := 0
		for i, g := range m.freeStack {
			if g < 0 {
				holes++
				continue
			}
			if m.stackPos[g] != i+1 {
				return fmt.Errorf("machine: free stack entry %d at %d but stackPos says %d", g, i, m.stackPos[g]-1)
			}
			if m.groups[g] != -1 || m.health[g] != Up {
				return fmt.Errorf("machine: free stack entry %d is not a free up group", g)
			}
		}
		if holes != m.staleFree {
			return fmt.Errorf("machine: stale counter %d != %d stack holes", m.staleFree, holes)
		}
	}
	if m.idx != nil {
		if got, want := m.idx.longestRun(), m.longestFreeRunDense(); got != want {
			return fmt.Errorf("machine: run index longest run %d, dense scan %d", got, want)
		}
		for g := range m.groups {
			free := m.groups[g] == -1 && m.health[g] == Up
			if (m.idx.pre[m.idx.size+g] == 1) != free {
				return fmt.Errorf("machine: run index leaf %d disagrees with group map", g)
			}
		}
	}
	if len(perJob) != len(m.ownedIDs) {
		return fmt.Errorf("machine: owner table has %d jobs, group map has %d", len(m.ownedIDs), len(perJob))
	}
	for pos, id := range m.ownedIDs {
		if id < 0 || id >= len(m.owner) || m.owner[id] == nil {
			return fmt.Errorf("machine: owned-ID entry %d has no allocation", id)
		}
		if m.ownerPos[id] != pos+1 {
			return fmt.Errorf("machine: job %d at owned-ID position %d but ownerPos says %d", id, pos, m.ownerPos[id]-1)
		}
	}
	for id, idx := range m.owner {
		if idx == nil {
			continue
		}
		if m.ownerPos[id] == 0 {
			return fmt.Errorf("machine: job %d holds groups but is missing from the owned-ID list", id)
		}
		if perJob[id] != len(idx) {
			return fmt.Errorf("machine: job %d owner index %d groups, map says %d", id, len(idx), perJob[id])
		}
		for _, g := range idx {
			if m.groups[g] != id {
				return fmt.Errorf("machine: group %d owned by %d per index, %d per map", g, id, m.groups[g])
			}
		}
	}
	return nil
}
