package machine

import "math/bits"

// runIndex is a segment tree over the node groups of a contiguous machine,
// maintaining free-run aggregates so the placement hot paths — Fits,
// findRun, longestFreeRun, FragmentedWaste — cost O(log G) or O(1) instead
// of a dense O(G) scan. A leaf is "free" when its group is unallocated and
// Up; each internal node aggregates its span's longest free prefix (pre),
// suffix (suf), and best run (best), combined by the classic law
//
//	pre  = left.pre  (extended by right.pre  when the left span is all free)
//	suf  = right.suf (extended by left.suf   when the right span is all free)
//	best = max(left.best, right.best, left.suf + right.pre)
//
// The tree is a perfect binary tree over size = 2^ceil(log2 G) leaves;
// padding leaves beyond G are permanently occupied, so they never extend a
// run. All storage is fixed at construction: point updates and descents are
// alloc-free, which keeps the machine's steady-state alloc/release cycle
// heap-quiet at any scale.
//
// Scatter machines do not carry a runIndex: their placement is run-free by
// construction and the free stack already hands out groups in O(1).
type runIndex struct {
	n    int // real leaves (node groups)
	size int // power-of-two leaf span, >= n
	pre  []int32
	suf  []int32
	best []int32
}

// newRunIndex builds the index for n groups, all initially occupied; the
// caller seeds it leaf by leaf (or via rebuild).
func newRunIndex(n int) *runIndex {
	size := 1
	for size < n {
		size <<= 1
	}
	return &runIndex{
		n:    n,
		size: size,
		pre:  make([]int32, 2*size),
		suf:  make([]int32, 2*size),
		best: make([]int32, 2*size),
	}
}

// childWidth returns the leaf span of node i's children.
func (ix *runIndex) childWidth(i int) int32 {
	return int32(ix.size >> bits.Len(uint(i)))
}

// pull recomputes internal node i from its children.
func (ix *runIndex) pull(i int) {
	l, r := 2*i, 2*i+1
	w := ix.childWidth(i)
	p := ix.pre[l]
	if p == w {
		p += ix.pre[r]
	}
	s := ix.suf[r]
	if s == w {
		s += ix.suf[l]
	}
	b := ix.best[l]
	if ix.best[r] > b {
		b = ix.best[r]
	}
	if c := ix.suf[l] + ix.pre[r]; c > b {
		b = c
	}
	ix.pre[i], ix.suf[i], ix.best[i] = p, s, b
}

// set updates leaf g's freeness and repairs its root path.
func (ix *runIndex) set(g int, free bool) {
	i := ix.size + g
	var v int32
	if free {
		v = 1
	}
	if ix.pre[i] == v {
		return // no state change; skip the O(log G) walk
	}
	ix.pre[i], ix.suf[i], ix.best[i] = v, v, v
	for i >>= 1; i >= 1; i >>= 1 {
		ix.pull(i)
	}
}

// rebuild recomputes every node from the machine's group and health maps —
// used after bulk rewrites (Compact, snapshot restore) where G point
// updates would cost O(G log G) instead of O(G).
func (ix *runIndex) rebuild(groups []int, health []GroupState) {
	for g := 0; g < ix.size; g++ {
		var v int32
		if g < ix.n && groups[g] == -1 && health[g] == Up {
			v = 1
		}
		i := ix.size + g
		ix.pre[i], ix.suf[i], ix.best[i] = v, v, v
	}
	for i := ix.size - 1; i >= 1; i-- {
		ix.pull(i)
	}
}

// longestRun returns the machine-wide longest free run, in groups.
func (ix *runIndex) longestRun() int { return int(ix.best[1]) }

// findRun returns the first index of a free run of length need, or -1. It
// descends the tree once: at each internal node the leftmost qualifying run
// is either inside the left child, spans the children's boundary (starting
// at the left child's free suffix), or is inside the right child — checked
// in that order, so the returned start is the same leftmost index the dense
// scan finds.
func (ix *runIndex) findRun(need int) int {
	n32 := int32(need)
	if need <= 0 || ix.best[1] < n32 {
		return -1
	}
	node, offset, w := 1, 0, ix.size
	for w > 1 {
		w >>= 1
		l := 2 * node
		if ix.best[l] >= n32 {
			node = l
			continue
		}
		if ix.suf[l]+ix.pre[l+1] >= n32 {
			return offset + w - int(ix.suf[l])
		}
		node = l + 1
		offset += w
	}
	return offset
}
