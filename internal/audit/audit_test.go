package audit

import (
	"strings"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/fault"
	"elastisched/internal/job"
	"elastisched/internal/trace"
)

func opts() Options { return Options{M: 320, Unit: 32} }

func wlOf(jobs ...*job.Job) *cwf.Workload {
	w := &cwf.Workload{Jobs: jobs}
	w.Sort()
	return w
}

func bj(id, size int, dur, arr int64) *job.Job {
	return &job.Job{ID: id, Size: size, Dur: dur, Arrival: arr, ReqStart: -1, Class: job.Batch}
}

func span(id, size int, start, end int64, groups ...int) trace.Span {
	return trace.Span{JobID: id, Size: size, Start: start, End: end, Groups: groups, ReqStart: -1}
}

func TestCleanScheduleOK(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0), bj(2, 64, 50, 10))
	spans := []trace.Span{
		span(1, 64, 0, 100, 0, 1),
		span(2, 64, 10, 60, 2, 3),
	}
	rep := Check(w, spans, opts())
	if !rep.OK() {
		t.Fatalf("clean schedule flagged: %v", rep.Violations)
	}
	if rep.PeakBusy != 128 || rep.Spans != 2 {
		t.Errorf("peak=%d spans=%d", rep.PeakBusy, rep.Spans)
	}
	if rep.Error() != nil {
		t.Error("Error() should be nil for OK report")
	}
}

func TestDetectsStartBeforeArrival(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 50))
	rep := Check(w, []trace.Span{span(1, 64, 10, 110, 0, 1)}, opts())
	wantViolation(t, rep, "before arrival")
}

func TestDetectsDedicatedEarlyStart(t *testing.T) {
	d := &job.Job{ID: 1, Size: 64, Dur: 100, Arrival: 0, ReqStart: 500, Class: job.Dedicated}
	w := wlOf(d)
	sp := span(1, 64, 400, 500, 0, 1)
	sp.Class = job.Dedicated
	sp.ReqStart = 500
	rep := Check(w, []trace.Span{sp}, opts())
	wantViolation(t, rep, "before requested start")
}

func TestDetectsOvercommit(t *testing.T) {
	// Two 192-proc jobs overlapping on a 320-proc machine.
	w := wlOf(bj(1, 192, 100, 0), bj(2, 192, 100, 0))
	spans := []trace.Span{
		span(1, 192, 0, 100, 0, 1, 2, 3, 4, 5),
		span(2, 192, 50, 150, 4, 5, 6, 7, 8, 9),
	}
	rep := Check(w, spans, opts())
	wantViolation(t, rep, "overcommitted")
	wantViolation(t, rep, "double-booked")
}

func TestAllowsBackToBackOnSameGroups(t *testing.T) {
	w := wlOf(bj(1, 320, 100, 0), bj(2, 320, 100, 0))
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	spans := []trace.Span{
		span(1, 320, 0, 100, all...),
		span(2, 320, 100, 200, all...), // starts exactly at the release
	}
	rep := Check(w, spans, opts())
	if !rep.OK() {
		t.Fatalf("back-to-back flagged: %v", rep.Violations)
	}
}

func TestDetectsWrongRuntime(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	rep := Check(w, []trace.Span{span(1, 64, 0, 60, 0, 1)}, opts())
	wantViolation(t, rep, "ran 60")
}

func TestElasticSkipsRuntimeCheck(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	o := opts()
	o.Elastic = true
	rep := Check(w, []trace.Span{span(1, 64, 0, 60, 0, 1)}, o)
	if !rep.OK() {
		t.Fatalf("elastic runtime change flagged: %v", rep.Violations)
	}
}

func TestRespectsActualRuntime(t *testing.T) {
	j := bj(1, 64, 100, 0)
	j.Actual = 40 // premature termination
	w := wlOf(j)
	rep := Check(w, []trace.Span{span(1, 64, 0, 40, 0, 1)}, opts())
	if !rep.OK() {
		t.Fatalf("premature termination flagged: %v", rep.Violations)
	}
}

func TestDetectsMissingAndPhantomJobs(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	rep := Check(w, []trace.Span{span(9, 64, 0, 100, 0, 1)}, opts())
	wantViolation(t, rep, "never submitted")
	wantViolation(t, rep, "never placed")
}

func TestDetectsDoublePlacement(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	spans := []trace.Span{span(1, 64, 0, 100, 0, 1), span(1, 64, 200, 300, 0, 1)}
	rep := Check(w, spans, opts())
	wantViolation(t, rep, "placed twice")
}

func TestDetectsGroupSizeMismatch(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	rep := Check(w, []trace.Span{span(1, 64, 0, 100, 0)}, opts()) // one group for 64 procs
	wantViolation(t, rep, "holds 1 groups")
}

func TestDetectsOutOfRangeGroup(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	rep := Check(w, []trace.Span{span(1, 64, 0, 100, 0, 99)}, opts())
	wantViolation(t, rep, "out-of-range")
}

func TestBadGeometryRejected(t *testing.T) {
	rep := Check(wlOf(), nil, Options{M: 100, Unit: 32})
	wantViolation(t, rep, "geometry")
}

func TestSizeElasticSkipsSweep(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0), bj(2, 320, 100, 0))
	// Overlapping placements that would overcommit; with SizeElastic the
	// sweep is skipped (resizes make dispatch snapshots unreliable).
	spans := []trace.Span{
		span(1, 64, 0, 100, 0, 1),
		span(2, 320, 0, 100, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
	}
	o := opts()
	o.Elastic = true
	o.SizeElastic = true
	rep := Check(w, spans, o)
	if !rep.OK() {
		t.Fatalf("size-elastic sweep not skipped: %v", rep.Violations)
	}
}

func wantViolation(t *testing.T, rep Report, substr string) {
	t.Helper()
	for _, v := range rep.Violations {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Errorf("no violation containing %q; got %v", substr, rep.Violations)
}

// --- fault-aware rules ----------------------------------------------------

func fopts(tr *fault.Trace, p fault.RetryPolicy) Options {
	o := opts()
	o.Faults = tr
	o.Retry = p
	return o
}

func killedSpan(id, size int, start, end int64, groups ...int) trace.Span {
	sp := span(id, size, start, end, groups...)
	sp.Killed = true
	return sp
}

func ftr(evs ...fault.Event) *fault.Trace { return &fault.Trace{Events: evs} }

func fev(t int64, k fault.Kind, groups ...int) fault.Event {
	return fault.Event{Time: t, Kind: k, Groups: groups}
}

func TestFaultCleanKillAndRetryOK(t *testing.T) {
	// Job killed at the failure instant, resubmitted, reruns in full on a
	// healthy group: lawful under the default retry policy.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	spans := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 40, 140, 2, 3),
	}
	rep := Check(w, spans, fopts(tr, fault.RetryPolicy{}))
	if !rep.OK() {
		t.Fatalf("lawful kill+retry flagged: %v", rep.Violations)
	}
}

func TestFaultDetectsPlacementOnDownGroup(t *testing.T) {
	// Group 0 is down [40, 200); the span keeps running on it past the
	// failure instant.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	rep := Check(w, []trace.Span{span(1, 64, 0, 100, 0, 1)}, fopts(tr, fault.RetryPolicy{}))
	wantViolation(t, rep, "occupies group 0 which is down [40, 200)")
}

func TestFaultDetectsResubmitUnderDropPolicy(t *testing.T) {
	// A killed job must never resubmit under a drop policy.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	spans := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 40, 140, 2, 3),
	}
	rep := Check(w, spans, fopts(tr, fault.RetryPolicy{Mode: fault.Drop}))
	wantViolation(t, rep, "resubmitted after its kill at t=40 under a drop policy")
}

func TestFaultDetectsDedicatedResubmission(t *testing.T) {
	d := &job.Job{ID: 1, Size: 64, Dur: 100, Arrival: 0, ReqStart: 0, Class: job.Dedicated}
	w := wlOf(d)
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	s1 := killedSpan(1, 64, 0, 40, 0, 1)
	s1.Class = job.Dedicated
	s2 := span(1, 64, 40, 140, 2, 3)
	s2.Class = job.Dedicated
	rep := Check(w, []trace.Span{s1, s2}, fopts(tr, fault.RetryPolicy{}))
	wantViolation(t, rep, "dedicated job 1 resubmitted after its kill")
}

func TestFaultDetectsRepairBeforeFailure(t *testing.T) {
	// A repair with no preceding failure is a trace-level inconsistency the
	// report must surface.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(10, fault.Repair, 3))
	rep := Check(w, []trace.Span{span(1, 64, 0, 100, 0, 1)}, fopts(tr, fault.RetryPolicy{}))
	wantViolation(t, rep, "group 3 repaired at t=10 with no preceding failure")
}

func TestFaultDetectsRetryBudgetOverrun(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(10, fault.Fail, 0), fev(11, fault.Repair, 0),
		fev(50, fault.Fail, 2), fev(51, fault.Repair, 2))
	spans := []trace.Span{
		killedSpan(1, 64, 0, 10, 0, 1),
		killedSpan(1, 64, 11, 50, 2, 3),
		span(1, 64, 51, 151, 4, 5),
	}
	rep := Check(w, spans, fopts(tr, fault.RetryPolicy{MaxRetries: 1}))
	wantViolation(t, rep, "resubmitted 2 times, retry limit 1")
}

func TestFaultDetectsBackoffViolation(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	spans := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 45, 145, 2, 3), // backoff is 10: too early
	}
	rep := Check(w, spans, fopts(tr, fault.RetryPolicy{Backoff: 10}))
	wantViolation(t, rep, "restarted at 45 before backoff 10")
}

func TestFaultDetectsShortFullRestart(t *testing.T) {
	// Full restart must rerun the whole effective runtime.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	spans := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 40, 100, 2, 3), // only 60s: remaining, not full
	}
	rep := Check(w, spans, fopts(tr, fault.RetryPolicy{Restart: fault.FullRuntime}))
	wantViolation(t, rep, "final attempt ran 60 s, expected full restart runtime 100")
}

func TestFaultRemainingRuntimeBounds(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	ok := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 40, 100, 2, 3), // 40 + 60 = 100 = exact
	}
	rep := Check(w, ok, fopts(tr, fault.RetryPolicy{Restart: fault.RemainingRuntime}))
	if !rep.OK() {
		t.Fatalf("exact remaining-runtime retry flagged: %v", rep.Violations)
	}
	bad := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 40, 130, 2, 3), // 40 + 90 = 130 > eff + kills
	}
	rep = Check(w, bad, fopts(tr, fault.RetryPolicy{Restart: fault.RemainingRuntime}))
	wantViolation(t, rep, "expected within [100, 101]")
}

// --- checkpoint chain rules -----------------------------------------------

// copts is fopts plus a periodic checkpoint policy with interval ivl and
// cost c, engaging the chain-replay rule instead of the restart binary.
func copts(tr *fault.Trace, p fault.RetryPolicy, ivl, c int64) Options {
	o := fopts(tr, p)
	o.Checkpoint = fault.CheckpointPeriodic
	o.CheckpointInterval = ivl
	o.CheckpointCost = c
	return o
}

func TestCheckpointCleanChainOK(t *testing.T) {
	// Dur 100, I=30, C=5: a completed attempt takes (100-1)/30 = 3
	// checkpoints and occupies exactly 115 s.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(500, fault.Fail, 9), fev(501, fault.Repair, 9))
	rep := Check(w, []trace.Span{span(1, 64, 0, 115, 0, 1)}, copts(tr, fault.RetryPolicy{}, 30, 5))
	if !rep.OK() {
		t.Fatalf("lawful checkpointed completion flagged: %v", rep.Violations)
	}
}

func TestCheckpointDetectsMissingCharges(t *testing.T) {
	// The span runs the bare runtime without the 3 checkpoint charges.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(500, fault.Fail, 9), fev(501, fault.Repair, 9))
	rep := Check(w, []trace.Span{span(1, 64, 0, 100, 0, 1)}, copts(tr, fault.RetryPolicy{}, 30, 5))
	wantViolation(t, rep, "checkpoint replay predicts 115")
}

func TestCheckpointRestartFromCheckpointOK(t *testing.T) {
	// Killed at elapsed 40 with I=30, C=5: one checkpoint was taken at
	// elapsed 30, so the retry restarts with D' = (100+5-30)+5 = 80 and
	// completes after 80 + 2·5 = 90 s (two checkpoints on the retry).
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	spans := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 40, 130, 2, 3),
	}
	rep := Check(w, spans, copts(tr, fault.RetryPolicy{}, 30, 5))
	if !rep.OK() {
		t.Fatalf("lawful restart-from-checkpoint flagged: %v", rep.Violations)
	}
}

func TestCheckpointDetectsFullRestartAfterCheckpoint(t *testing.T) {
	// Same kill as above, but the retry reruns the full checkpointed
	// runtime (115 s) as if no checkpoint existed: lost work invented.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(40, fault.Fail, 0), fev(200, fault.Repair, 0))
	spans := []trace.Span{
		killedSpan(1, 64, 0, 40, 0, 1),
		span(1, 64, 40, 155, 2, 3),
	}
	rep := Check(w, spans, copts(tr, fault.RetryPolicy{}, 30, 5))
	wantViolation(t, rep, "checkpoint replay predicts 90")
}

func TestCheckpointDegeneratesToFullRestart(t *testing.T) {
	// Killed at elapsed 20, before the first checkpoint at 30: the retry
	// must rerun the full 115 s chain. A shorter "remaining-style" retry
	// is a violation.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(20, fault.Fail, 0), fev(200, fault.Repair, 0))
	ok := []trace.Span{
		killedSpan(1, 64, 0, 20, 0, 1),
		span(1, 64, 20, 135, 2, 3),
	}
	rep := Check(w, ok, copts(tr, fault.RetryPolicy{}, 30, 5))
	if !rep.OK() {
		t.Fatalf("full restart before the first checkpoint flagged: %v", rep.Violations)
	}
	bad := []trace.Span{
		killedSpan(1, 64, 0, 20, 0, 1),
		span(1, 64, 20, 115, 2, 3), // 95 s: resumed progress it never saved
	}
	rep = Check(w, bad, copts(tr, fault.RetryPolicy{}, 30, 5))
	wantViolation(t, rep, "checkpoint replay predicts 115")
}

func TestCheckpointDetectsOverrunBeforeKill(t *testing.T) {
	// An attempt may never outlive its checkpointed effective runtime,
	// kill or not.
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(120, fault.Fail, 0), fev(200, fault.Repair, 0))
	rep := Check(w, []trace.Span{killedSpan(1, 64, 0, 120, 0, 1)}, copts(tr, fault.RetryPolicy{}, 30, 5))
	wantViolation(t, rep, "above its checkpointed effective runtime 115")
}

func TestCheckpointDedicatedNeverCheckpoints(t *testing.T) {
	// Dedicated jobs are exempt from checkpointing: a span carrying the
	// batch checkpoint charges overstays its runtime.
	d := &job.Job{ID: 1, Size: 64, Dur: 100, Arrival: 0, ReqStart: 0, Class: job.Dedicated}
	w := wlOf(d)
	tr := ftr(fev(500, fault.Fail, 9), fev(501, fault.Repair, 9))
	sp := span(1, 64, 0, 115, 0, 1)
	sp.Class = job.Dedicated
	sp.ReqStart = 0
	rep := Check(w, []trace.Span{sp}, copts(tr, fault.RetryPolicy{}, 30, 5))
	wantViolation(t, rep, "checkpoint replay predicts 100 (0 checkpoints")
}

func TestCheckpointDalySpanInterval(t *testing.T) {
	// Daly intervals are per job: a 64-proc job spans 2 of the 32-proc
	// groups, so it checkpoints at sqrt(2·(450/2)·8) = 60, not the base
	// single-group interval sqrt(2·450·8) = 84. With Dur 200 and C=8 the
	// completed attempt takes (200-1)/60 = 3 checkpoints and occupies
	// 224 s; a span replayed at the base interval (2 checkpoints, 216 s)
	// must be flagged.
	w := wlOf(bj(1, 64, 200, 0))
	tr := ftr(fev(900, fault.Fail, 9), fev(901, fault.Repair, 9))
	o := fopts(tr, fault.RetryPolicy{})
	o.Checkpoint = fault.CheckpointDaly
	o.CheckpointInterval = fault.DalyInterval(450, 8)
	o.CheckpointCost = 8
	o.MTBF = 450
	if o.CheckpointInterval != 84 {
		t.Fatalf("base daly interval = %d, want 84", o.CheckpointInterval)
	}
	rep := Check(w, []trace.Span{span(1, 64, 0, 224, 0, 1)}, o)
	if !rep.OK() {
		t.Fatalf("lawful span-interval daly completion flagged: %v", rep.Violations)
	}
	rep = Check(w, []trace.Span{span(1, 64, 0, 216, 0, 1)}, o)
	wantViolation(t, rep, "checkpoint replay predicts 224")
}

func TestCheckpointOnResizeReplayCharges(t *testing.T) {
	// Under the on-resize policy every resize charges the checkpoint cost
	// on top of the resize overhead: shrinking 64→32 at t=50 with 50 s of
	// work left rescales to 100 s, plus cost 5 → end at 155. Both the
	// uncharged end (150) and the charged one must be told apart.
	mk := func(end int64) trace.Span {
		sp := span(1, 64, 0, end, 0, 1)
		sp.Planned = 100
		sp.MinProcs = 32
		sp.MaxProcs = 64
		sp.Resizes = []trace.Resize{{Time: 50, From: 64, NewSize: 32, Auto: true}}
		return sp
	}
	o := opts()
	o.Malleable = true
	o.Checkpoint = fault.CheckpointOnResize
	o.CheckpointCost = 5
	w := wlOf(bj(1, 64, 100, 0))
	rep := Check(w, []trace.Span{mk(155)}, o)
	if !rep.OK() {
		t.Fatalf("charged on-resize span flagged: %v", rep.Violations)
	}
	rep = Check(w, []trace.Span{mk(150)}, o)
	wantViolation(t, rep, "work-conserving replay of its 1 resizes predicts t=155")
}

func TestFaultDetectsPlacementAfterCompletion(t *testing.T) {
	w := wlOf(bj(1, 64, 100, 0))
	tr := ftr(fev(500, fault.Fail, 9), fev(501, fault.Repair, 9))
	spans := []trace.Span{
		span(1, 64, 0, 100, 0, 1),
		span(1, 64, 200, 300, 0, 1),
	}
	rep := Check(w, spans, fopts(tr, fault.RetryPolicy{}))
	wantViolation(t, rep, "placed again after completing")
}
