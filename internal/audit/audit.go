// Package audit independently verifies a recorded schedule against its
// workload: an oracle separate from the engine's own bookkeeping. Given the
// placement spans captured by trace.Recorder, it re-checks, instant by
// instant, that the schedule was *feasible* and *lawful*:
//
//   - no instant overcommits the machine;
//   - every job starts at or after its arrival;
//   - dedicated jobs never start before their requested start time;
//   - every submitted job was placed exactly once and actually ran;
//   - without elastic commands, each job occupies the machine for exactly
//     its effective runtime (actual capped by the estimate);
//   - allocations respect the machine's node-group quantum and no two jobs
//     share a node group at the same instant.
//
// Under fault injection (Options.Faults) the oracle additionally verifies
// the failure semantics: no placement overlaps a window in which one of its
// node groups was down, kills and resubmissions follow the retry policy
// (drop means no further spans, retry budgets and backoffs are respected),
// and retried jobs account for the right amount of runtime. Trace-level
// inconsistencies (repairs with no preceding failure, double failures) are
// folded into the report.
//
// Under malleability (Options.Malleable) resized spans are additionally
// held to the resize laws: size changes chain from the dispatch size on the
// allocation grid, system-initiated resizes respect the job's processor
// bounds and never touch dedicated jobs, and a forward replay of each
// span's resizes must reproduce its recorded end exactly — remaining work
// is conserved through every reshape.
//
// Integration tests run every scheduling policy through this auditor, so a
// bookkeeping bug in the engine and a matching bug in the metrics cannot
// mask each other.
package audit

import (
	"fmt"
	"sort"

	"elastisched/internal/cwf"
	"elastisched/internal/fault"
	"elastisched/internal/job"
	"elastisched/internal/trace"
)

// Report is the outcome of an audit. Violations is empty for a lawful
// schedule.
type Report struct {
	Violations []string
	// PeakBusy is the maximum processors in use at any instant.
	PeakBusy int
	// Spans is the number of placements audited.
	Spans int
}

// OK reports whether the audit found no violations.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Error renders the report as an error (nil when OK).
func (r Report) Error() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("audit: %d violations, first: %s", len(r.Violations), r.Violations[0])
}

// Options tune the audit.
type Options struct {
	// M and Unit give the machine geometry.
	M, Unit int
	// Elastic relaxes the exact-runtime check: ET/RT commands legitimately
	// change durations mid-run.
	Elastic bool
	// SizeElastic additionally skips the capacity/group sweep and size
	// checks: EP/RP commands change allocations mid-run, so the dispatch
	// snapshot in a span no longer describes the whole lifetime.
	SizeElastic bool
	// Malleable enables the resize lawfulness rules for runs with
	// scheduler-initiated (Auto) resizes: every resize must chain from the
	// dispatch size, stay on the allocation grid, respect the job's
	// processor bounds, never touch a dedicated job, and — because the
	// engine rescales work-conservingly — a forward replay of the span's
	// resizes from its dispatch-time runtime must land exactly on its
	// recorded end. Spans that were resized are exempted from the
	// dispatch-snapshot checks, like SizeElastic, but untouched spans keep
	// the full rigid rules.
	Malleable bool
	// ResizeOverhead is the per-resize reconfiguration penalty the run was
	// configured with; the work-conservation replay charges it after every
	// rescale. Meaningful only with Malleable.
	ResizeOverhead int64
	// Faults is the fault trace the run executed under. When non-nil the
	// fault-aware rules apply: jobs may occupy the machine once per
	// attempt (killed spans followed by resubmissions), and every span is
	// checked against the trace's down windows and the retry policy.
	Faults *fault.Trace
	// Retry is the engine's retry policy; meaningful only with Faults.
	Retry fault.RetryPolicy
	// Checkpoint is the engine's checkpoint policy; meaningful only with
	// Faults. Any policy other than CheckpointNone supersedes the
	// Retry.Restart accounting with a chain replay: every attempt's span
	// must match a forward replay of its checkpoint schedule (interval
	// charges included), and each kill must hand the next attempt exactly
	// the engine's restart-from-checkpoint residual.
	Checkpoint fault.CheckpointPolicy
	// CheckpointInterval is the *resolved* base wall interval between a
	// job's checkpoints — the configured periodic interval, or daly's
	// derived single-group sqrt(2·MTBF·C) — and 0 for the on-resize
	// policy, whose checkpoints ride on resizes instead of a timer.
	// Meaningful only with Checkpoint.
	CheckpointInterval int64
	// CheckpointCost is the engine's per-checkpoint (and per-restart)
	// charge. Meaningful only with Checkpoint.
	CheckpointCost int64
	// MTBF is the per-group mean time between failures the daly policy
	// derives from: the chain replay recomputes each job's own interval
	// sqrt(2·(MTBF/g)·C) for its span of g node groups, exactly as the
	// engine does. Meaningful only with Checkpoint == CheckpointDaly.
	MTBF float64
}

// Check audits the spans of one run against the workload it came from.
func Check(w *cwf.Workload, spans []trace.Span, opt Options) Report {
	rep := Report{Spans: len(spans)}
	add := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	if opt.M <= 0 || opt.Unit <= 0 || opt.M%opt.Unit != 0 {
		add("bad machine geometry M=%d unit=%d", opt.M, opt.Unit)
		return rep
	}

	byID := make(map[int]*job.Job, len(w.Jobs))
	for _, j := range w.Jobs {
		byID[j.ID] = j
	}

	// A resize in any attempt rescales the job object's requirement and
	// size, so the rigid per-span checks must yield for every span of that
	// job — including retry attempts dispatched at the shrunk size, whose
	// own Resizes list is empty.
	resizedJob := make(map[int]bool)
	if opt.Malleable {
		for _, sp := range spans {
			if len(sp.Resizes) > 0 {
				resizedJob[sp.JobID] = true
			}
		}
	}

	// Per-span lawfulness. Under fault injection a job may legitimately
	// appear once per attempt; the structural rules for repeats live in
	// checkFaults. Without it, a second span is a violation outright.
	seen := make(map[int]bool, len(spans))
	for _, sp := range spans {
		j, ok := byID[sp.JobID]
		if !ok {
			add("job %d placed but never submitted", sp.JobID)
			continue
		}
		if seen[sp.JobID] && opt.Faults == nil {
			add("job %d placed twice", sp.JobID)
			continue
		}
		seen[sp.JobID] = true
		if sp.Start < j.Arrival {
			add("job %d started at %d before arrival %d", sp.JobID, sp.Start, j.Arrival)
		}
		if j.Class == job.Dedicated && sp.Start < j.ReqStart {
			add("dedicated job %d started at %d before requested start %d", sp.JobID, sp.Start, j.ReqStart)
		}
		if sp.End <= sp.Start {
			add("job %d has empty span [%d, %d)", sp.JobID, sp.Start, sp.End)
		}
		// A resized job's dispatch snapshots no longer match the post-run
		// job object, so the rigid runtime/size checks yield to the resize
		// replay below.
		resized := resizedJob[sp.JobID]
		if !opt.Elastic && !resized {
			if opt.Faults == nil {
				if got, want := sp.End-sp.Start, j.EffectiveRuntime(); got != want {
					add("job %d ran %d s, expected %d", sp.JobID, got, want)
				}
			}
			if sp.Size < j.Size || sp.Size%opt.Unit != 0 {
				add("job %d placed on %d procs, submitted %d (unit %d)", sp.JobID, sp.Size, j.Size, opt.Unit)
			}
		}
		checkResizes(sp, opt, add)
		if !opt.SizeElastic && len(sp.Groups)*opt.Unit != sp.Size {
			add("job %d holds %d groups for size %d (unit %d)", sp.JobID, len(sp.Groups), sp.Size, opt.Unit)
		}
		for _, g := range sp.Groups {
			if g < 0 || g >= opt.M/opt.Unit {
				add("job %d holds out-of-range group %d", sp.JobID, g)
			}
		}
	}
	for id := range byID {
		if !seen[id] {
			add("job %d submitted but never placed", id)
		}
	}

	if opt.Faults != nil {
		checkFaults(byID, spans, opt, add)
	}

	anyResized := false
	for _, sp := range spans {
		if len(sp.Resizes) > 0 {
			anyResized = true
			break
		}
	}
	if opt.SizeElastic || (opt.Malleable && anyResized) {
		return rep
	}

	// Capacity and group-exclusivity over time: sweep start/end edges.
	type edge struct {
		t     int64
		start bool
		span  *trace.Span
	}
	edges := make([]edge, 0, 2*len(spans))
	for i := range spans {
		edges = append(edges, edge{spans[i].Start, true, &spans[i]}, edge{spans[i].End, false, &spans[i]})
	}
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].t != edges[k].t {
			return edges[i].t < edges[k].t
		}
		// Process releases before starts at the same instant: a job may
		// start exactly when another ends.
		return !edges[i].start && edges[k].start
	})
	busy := 0
	groupOwner := make(map[int]int) // group -> jobID
	for _, e := range edges {
		if e.start {
			busy += len(e.span.Groups) * opt.Unit
			if busy > opt.M {
				add("machine overcommitted at t=%d: %d/%d busy", e.t, busy, opt.M)
			}
			if busy > rep.PeakBusy {
				rep.PeakBusy = busy
			}
			for _, g := range e.span.Groups {
				if owner, taken := groupOwner[g]; taken {
					add("group %d double-booked at t=%d by jobs %d and %d", g, e.t, owner, e.span.JobID)
				}
				groupOwner[g] = e.span.JobID
			}
		} else {
			busy -= len(e.span.Groups) * opt.Unit
			for _, g := range e.span.Groups {
				if groupOwner[g] == e.span.JobID {
					delete(groupOwner, g)
				}
			}
		}
	}
	if busy != 0 {
		add("schedule ends with %d processors still marked busy", busy)
	}
	return rep
}

// checkResizes holds a span's recorded size changes to the resize laws:
// sizes chain from the dispatch size, every new size is a positive on-grid
// allocation within the machine, system-initiated (Auto) resizes only touch
// batch jobs with malleable bounds and stay inside them, and client resizes
// only appear in size-elastic runs. For malleable runs it then replays the
// resizes forward from the span's dispatch-time runtime with the engine's
// own work-conserving arithmetic (RescaleRemaining plus the per-resize
// overhead) and requires the replay to land exactly on the recorded end:
// remaining work may never be lost or invented by a resize.
func checkResizes(sp trace.Span, opt Options, add func(string, ...any)) {
	if len(sp.Resizes) == 0 {
		return
	}
	cur := sp.Size
	for _, rz := range sp.Resizes {
		if rz.Time < sp.Start || rz.Time > sp.End {
			add("job %d resized at t=%d outside its span [%d, %d)", sp.JobID, rz.Time, sp.Start, sp.End)
		}
		if rz.From != cur {
			add("job %d resize at t=%d claims %d procs held, chain says %d", sp.JobID, rz.Time, rz.From, cur)
		}
		if rz.NewSize <= 0 || rz.NewSize%opt.Unit != 0 || rz.NewSize > opt.M {
			add("job %d resized to unlawful size %d at t=%d (unit %d, M %d)",
				sp.JobID, rz.NewSize, rz.Time, opt.Unit, opt.M)
		} else if rz.NewSize == rz.From {
			add("job %d no-op resize recorded at t=%d (size %d)", sp.JobID, rz.Time, rz.NewSize)
		}
		if rz.Auto {
			switch {
			case !opt.Malleable:
				add("job %d system-resized at t=%d in a non-malleable run", sp.JobID, rz.Time)
			case sp.Class == job.Dedicated:
				add("dedicated job %d system-resized at t=%d", sp.JobID, rz.Time)
			case sp.MaxProcs <= 0:
				add("job %d system-resized at t=%d without malleable bounds", sp.JobID, rz.Time)
			case rz.NewSize < sp.MinProcs || rz.NewSize > sp.MaxProcs:
				add("job %d system-resized to %d at t=%d outside its bounds [%d, %d]",
					sp.JobID, rz.NewSize, rz.Time, sp.MinProcs, sp.MaxProcs)
			}
		} else if !opt.SizeElastic {
			add("job %d client-resized at t=%d in a run without size commands", sp.JobID, rz.Time)
		}
		cur = rz.NewSize
	}

	// Work-conservation replay. Killed spans end at the failure instant, not
	// at a rescaled completion; ET/RT commands (Elastic) mutate the runtime
	// outside the resize pipeline; both make the dispatch-time requirement
	// an unusable anchor. Spans recorded without a dispatch runtime (hand-
	// built fixtures) are skipped rather than guessed at.
	if !opt.Malleable || opt.Elastic || sp.Killed || sp.Planned <= 0 {
		return
	}
	var ckptC int64
	switch {
	case opt.Checkpoint == fault.CheckpointOnResize && sp.Class != job.Dedicated:
		// Every resize doubles as a checkpoint: its cost rides on the
		// rescaled remainder exactly like the resize overhead.
		ckptC = opt.CheckpointCost
	case opt.Checkpoint != fault.CheckpointNone && opt.CheckpointInterval > 0 && sp.Class != job.Dedicated:
		// Interval checkpoints charge their cost at wall-clock instants
		// that interleave with the resizes in an order the span record
		// does not capture; the checkpoint chain replay audits the
		// unresized attempts instead.
		return
	}
	rem, t, size := sp.Planned, sp.Start, sp.Size
	for _, rz := range sp.Resizes {
		seg := rz.Time - t
		if seg < 0 || seg > rem {
			add("job %d resized at t=%d, after its remaining work ran out at t=%d", sp.JobID, rz.Time, t+rem)
			return
		}
		if rem -= seg; rem > 0 {
			rem = job.RescaleRemaining(rem, size, rz.NewSize) + opt.ResizeOverhead + ckptC
		}
		t, size = rz.Time, rz.NewSize
	}
	if want := t + rem; sp.End != want {
		add("job %d ended at t=%d, work-conserving replay of its %d resizes predicts t=%d",
			sp.JobID, sp.End, len(sp.Resizes), want)
	}
}

// checkFaults verifies the failure semantics of a fault-injected run:
// trace sanity, down-window exclusion, and the retry policy's structural
// rules over each job's sequence of attempts.
func checkFaults(byID map[int]*job.Job, spans []trace.Span, opt Options, add func(string, ...any)) {
	groups := opt.M / opt.Unit
	for _, issue := range opt.Faults.Lint(groups) {
		add("fault trace: %s", issue)
	}

	// Horizon for down windows: past every span and every trace event, so
	// a failure never repaired stays down through the whole schedule.
	var horizon int64
	for _, sp := range spans {
		if sp.End > horizon {
			horizon = sp.End
		}
	}
	for _, e := range opt.Faults.Events {
		if e.Time >= horizon {
			horizon = e.Time + 1
		}
	}
	windows := opt.Faults.DownWindows(groups, horizon)

	// No span may overlap a down window of a group it holds. Killed spans
	// end exactly at the failure instant, so the half-open intervals do
	// not intersect for a lawful kill. Resized spans are exempt — whether
	// by EP/RP commands or a malleable fault-shrink that dropped the very
	// groups that failed — because their dispatch-time group set no longer
	// describes the whole lifetime.
	attempts := make(map[int][]trace.Span, len(byID))
	for _, sp := range spans {
		attempts[sp.JobID] = append(attempts[sp.JobID], sp)
		if (opt.SizeElastic || opt.Malleable) && len(sp.Resizes) > 0 {
			continue
		}
		for _, g := range sp.Groups {
			if g < 0 || g >= groups {
				continue
			}
			for _, w := range windows[g] {
				if sp.Start < w[1] && w[0] < sp.End {
					add("job %d occupies group %d which is down [%d, %d) during its span [%d, %d)",
						sp.JobID, g, w[0], w[1], sp.Start, sp.End)
				}
			}
		}
	}

	for id, atts := range attempts {
		j := byID[id]
		if j == nil {
			continue // already reported as never submitted
		}
		// Recorder spans come sorted by start; attempts of one job never
		// overlap, so this is also attempt order.
		for i, sp := range atts {
			last := i == len(atts)-1
			if !sp.Killed && !last {
				add("job %d placed again after completing at t=%d", id, sp.End)
			}
			if sp.Killed && !last {
				// A resubmission exists: it must be lawful for the policy
				// and respect the backoff.
				switch {
				case j.Class == job.Dedicated:
					add("dedicated job %d resubmitted after its kill at t=%d", id, sp.End)
				case opt.Retry.Mode == fault.Drop:
					add("job %d resubmitted after its kill at t=%d under a drop policy", id, sp.End)
				case opt.Retry.MaxRetries > 0 && i >= opt.Retry.MaxRetries:
					add("job %d resubmitted %d times, retry limit %d", id, i+1, opt.Retry.MaxRetries)
				}
				if next := atts[i+1]; next.Start < sp.End+opt.Retry.Backoff {
					add("job %d restarted at %d before backoff %d from its kill at %d",
						id, next.Start, opt.Retry.Backoff, sp.End)
				}
			}
		}
		if opt.Elastic {
			continue
		}
		if opt.Malleable {
			// A resize rescales per-processor runtime, so wall-clock totals
			// no longer add up against the submitted requirement; the
			// work-conservation replay audits those spans instead.
			rescaled := false
			for _, sp := range atts {
				if len(sp.Resizes) > 0 {
					rescaled = true
					break
				}
			}
			if rescaled {
				continue
			}
		}
		// Under a checkpoint policy the restart binary below is superseded:
		// every attempt is held to the checkpoint chain replay instead.
		if opt.Checkpoint != fault.CheckpointNone {
			checkCheckpointChain(id, j, atts, opt, add)
			continue
		}
		// Runtime accounting. eff is what the job needed end to end; kills
		// may each add up to one clamp second under RemainingRuntime.
		eff := j.EffectiveRuntime()
		kills := 0
		var total int64
		for _, sp := range atts {
			total += sp.End - sp.Start
			if sp.Killed {
				kills++
				if sp.End-sp.Start > eff {
					add("job %d attempt ran %d s before its kill, above its effective runtime %d",
						id, sp.End-sp.Start, eff)
				}
			}
		}
		completed := !atts[len(atts)-1].Killed
		if !completed {
			continue
		}
		switch opt.Retry.Restart {
		case fault.FullRuntime:
			if got := atts[len(atts)-1].End - atts[len(atts)-1].Start; got != eff {
				add("job %d final attempt ran %d s, expected full restart runtime %d", id, got, eff)
			}
		case fault.RemainingRuntime:
			if total < eff || total > eff+int64(kills) {
				add("job %d ran %d s across %d attempts, expected within [%d, %d]",
					id, total, len(atts), eff, eff+int64(kills))
			}
		}
	}
}

// checkCheckpointChain replays one job's attempts under the engine's
// checkpoint arithmetic and holds every recorded span to the replay.
//
// With a chaining interval I > 0 and cost C, an attempt entering with
// estimate D and actual A (effective eff) checkpoints at elapsed
// n·I + (n−1)·C; each checkpoint pushes completion by C. Closed forms
// (derived from the engine's deterministic same-instant ordering — a
// completion landing exactly on a checkpoint instant wins, a kill landing
// on one cancels it):
//
//   - a completed attempt takes k' = (eff−1)/I checkpoints and occupies
//     the machine for exactly eff + k'·C;
//   - an attempt killed after elapsed e took k = (e+C−1)/(I+C)
//     checkpoints, and e may not exceed the completed form;
//   - the kill hands the next attempt D' = max(D + k·C − off, 1) + r and
//     (when A > 0) A' = max(eff + k·C − off, 1) + r, where off is the last
//     checkpoint's elapsed offset k·I + (k−1)·C and r = C — both zero when
//     no checkpoint was taken, which degenerates to a full restart.
//
// The on-resize policy has no timer (I = 0): its checkpoints ride on
// resizes, and resized jobs are already exempt from runtime accounting, so
// every audited attempt here restarts in full with no charges. Dedicated
// jobs never checkpoint regardless of policy.
func checkCheckpointChain(id int, j *job.Job, atts []trace.Span, opt Options, add func(string, ...any)) {
	I, C := opt.CheckpointInterval, opt.CheckpointCost
	if opt.Checkpoint == fault.CheckpointDaly && opt.Unit > 0 {
		// Daly intervals are per job: a job spanning g groups experiences
		// MTBF/g. Audited attempts are never resized (resized spans are
		// exempted above), so the submitted size fixes the span.
		if g := (j.Size + opt.Unit - 1) / opt.Unit; g > 1 {
			I = fault.DalyInterval(opt.MTBF/float64(g), C)
		}
	}
	if j.Class == job.Dedicated {
		I = 0
	}
	D, A := j.Dur, j.Actual
	for i, sp := range atts {
		eff := D
		if A > 0 && A < D {
			eff = A
		}
		var kc int64 // checkpoints a completed attempt would take
		if I > 0 {
			kc = (eff - 1) / I
		}
		e := sp.End - sp.Start
		if !sp.Killed {
			if want := eff + kc*C; e != want {
				add("job %d attempt %d ran %d s, checkpoint replay predicts %d (%d checkpoints of cost %d on effective runtime %d)",
					id, i+1, e, want, kc, C, eff)
			}
			continue // spans after a completion are flagged structurally above
		}
		if e > eff+kc*C {
			add("job %d attempt %d ran %d s before its kill, above its checkpointed effective runtime %d",
				id, i+1, e, eff+kc*C)
		}
		var k int64 // checkpoints actually taken before the kill
		if I > 0 && e > 0 {
			k = (e + C - 1) / (I + C)
		}
		var off, r int64
		if k > 0 {
			off = k*I + (k-1)*C
			r = C
		}
		if D = D + k*C - off; D < 1 {
			D = 1
		}
		D += r
		if A > 0 {
			if A = eff + k*C - off; A < 1 {
				A = 1
			}
			A += r
		}
	}
}
