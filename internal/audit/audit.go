// Package audit independently verifies a recorded schedule against its
// workload: an oracle separate from the engine's own bookkeeping. Given the
// placement spans captured by trace.Recorder, it re-checks, instant by
// instant, that the schedule was *feasible* and *lawful*:
//
//   - no instant overcommits the machine;
//   - every job starts at or after its arrival;
//   - dedicated jobs never start before their requested start time;
//   - every submitted job was placed exactly once and actually ran;
//   - without elastic commands, each job occupies the machine for exactly
//     its effective runtime (actual capped by the estimate);
//   - allocations respect the machine's node-group quantum and no two jobs
//     share a node group at the same instant.
//
// Integration tests run every scheduling policy through this auditor, so a
// bookkeeping bug in the engine and a matching bug in the metrics cannot
// mask each other.
package audit

import (
	"fmt"
	"sort"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
	"elastisched/internal/trace"
)

// Report is the outcome of an audit. Violations is empty for a lawful
// schedule.
type Report struct {
	Violations []string
	// PeakBusy is the maximum processors in use at any instant.
	PeakBusy int
	// Spans is the number of placements audited.
	Spans int
}

// OK reports whether the audit found no violations.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Error renders the report as an error (nil when OK).
func (r Report) Error() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("audit: %d violations, first: %s", len(r.Violations), r.Violations[0])
}

// Options tune the audit.
type Options struct {
	// M and Unit give the machine geometry.
	M, Unit int
	// Elastic relaxes the exact-runtime check: ET/RT commands legitimately
	// change durations mid-run.
	Elastic bool
	// SizeElastic additionally skips the capacity/group sweep and size
	// checks: EP/RP commands change allocations mid-run, so the dispatch
	// snapshot in a span no longer describes the whole lifetime.
	SizeElastic bool
}

// Check audits the spans of one run against the workload it came from.
func Check(w *cwf.Workload, spans []trace.Span, opt Options) Report {
	rep := Report{Spans: len(spans)}
	add := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	if opt.M <= 0 || opt.Unit <= 0 || opt.M%opt.Unit != 0 {
		add("bad machine geometry M=%d unit=%d", opt.M, opt.Unit)
		return rep
	}

	byID := make(map[int]*job.Job, len(w.Jobs))
	for _, j := range w.Jobs {
		byID[j.ID] = j
	}

	// Per-span lawfulness.
	seen := make(map[int]bool, len(spans))
	for _, sp := range spans {
		j, ok := byID[sp.JobID]
		if !ok {
			add("job %d placed but never submitted", sp.JobID)
			continue
		}
		if seen[sp.JobID] {
			add("job %d placed twice", sp.JobID)
			continue
		}
		seen[sp.JobID] = true
		if sp.Start < j.Arrival {
			add("job %d started at %d before arrival %d", sp.JobID, sp.Start, j.Arrival)
		}
		if j.Class == job.Dedicated && sp.Start < j.ReqStart {
			add("dedicated job %d started at %d before requested start %d", sp.JobID, sp.Start, j.ReqStart)
		}
		if sp.End <= sp.Start {
			add("job %d has empty span [%d, %d)", sp.JobID, sp.Start, sp.End)
		}
		if !opt.Elastic {
			if got, want := sp.End-sp.Start, j.EffectiveRuntime(); got != want {
				add("job %d ran %d s, expected %d", sp.JobID, got, want)
			}
			if sp.Size < j.Size || sp.Size%opt.Unit != 0 {
				add("job %d placed on %d procs, submitted %d (unit %d)", sp.JobID, sp.Size, j.Size, opt.Unit)
			}
		}
		if !opt.SizeElastic && len(sp.Groups)*opt.Unit != sp.Size {
			add("job %d holds %d groups for size %d (unit %d)", sp.JobID, len(sp.Groups), sp.Size, opt.Unit)
		}
		for _, g := range sp.Groups {
			if g < 0 || g >= opt.M/opt.Unit {
				add("job %d holds out-of-range group %d", sp.JobID, g)
			}
		}
	}
	for id := range byID {
		if !seen[id] {
			add("job %d submitted but never placed", id)
		}
	}

	if opt.SizeElastic {
		return rep
	}

	// Capacity and group-exclusivity over time: sweep start/end edges.
	type edge struct {
		t     int64
		start bool
		span  *trace.Span
	}
	edges := make([]edge, 0, 2*len(spans))
	for i := range spans {
		edges = append(edges, edge{spans[i].Start, true, &spans[i]}, edge{spans[i].End, false, &spans[i]})
	}
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].t != edges[k].t {
			return edges[i].t < edges[k].t
		}
		// Process releases before starts at the same instant: a job may
		// start exactly when another ends.
		return !edges[i].start && edges[k].start
	})
	busy := 0
	groupOwner := make(map[int]int) // group -> jobID
	for _, e := range edges {
		if e.start {
			busy += len(e.span.Groups) * opt.Unit
			if busy > opt.M {
				add("machine overcommitted at t=%d: %d/%d busy", e.t, busy, opt.M)
			}
			if busy > rep.PeakBusy {
				rep.PeakBusy = busy
			}
			for _, g := range e.span.Groups {
				if owner, taken := groupOwner[g]; taken {
					add("group %d double-booked at t=%d by jobs %d and %d", g, e.t, owner, e.span.JobID)
				}
				groupOwner[g] = e.span.JobID
			}
		} else {
			busy -= len(e.span.Groups) * opt.Unit
			for _, g := range e.span.Groups {
				if groupOwner[g] == e.span.JobID {
					delete(groupOwner, g)
				}
			}
		}
	}
	if busy != 0 {
		add("schedule ends with %d processors still marked busy", busy)
	}
	return rep
}
