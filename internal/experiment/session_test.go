package experiment

import (
	"bytes"
	"reflect"
	"strconv"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/workload"
)

// propertyWorkload generates a small but eventful workload: elastic
// commands always, dedicated jobs only when the policy under test manages
// them.
func propertyWorkload(t *testing.T, hetero bool, seed int64) *cwf.Workload {
	t.Helper()
	p := workload.DefaultParams()
	p.N = 40
	p.Seed = seed
	p.PE = 0.3
	p.PR = 0.15
	p.MaxECCPerJob = 2
	if hetero {
		p.PD = 0.2
	}
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSnapshotRoundTripEveryAlgorithmEveryBoundary is the tentpole's core
// property over the full Table III registry: for every algorithm, snapshot
// the session at EVERY event-timestamp boundary, push the snapshot through
// its JSON encoding, restore it into a completely fresh session (fresh
// policy instance included), run to completion, and require a Result
// deep-equal to the uninterrupted run — bit-identical floats and all.
func TestSnapshotRoundTripEveryAlgorithmEveryBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic replay property; skipped in -short")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			algo := MustByName(name)
			pt := Point{Cs: 5}
			hetero := algo.New(pt).Heterogeneous()
			w := propertyWorkload(t, hetero, 42)
			cfg := func() engine.Config {
				return engine.Config{
					M: 320, Unit: 32,
					Scheduler:  algo.New(pt),
					ProcessECC: algo.ECC,
				}
			}
			want, err := engine.Run(w, cfg())
			if err != nil {
				t.Fatal(err)
			}

			live, err := engine.New(cfg())
			if err != nil {
				t.Fatal(err)
			}
			if err := live.Load(w); err != nil {
				t.Fatal(err)
			}
			boundary := 0
			for {
				sn, err := live.Snapshot()
				if err != nil {
					t.Fatalf("boundary %d: snapshot: %v", boundary, err)
				}
				var buf bytes.Buffer
				if err := sn.Encode(&buf); err != nil {
					t.Fatalf("boundary %d: encode: %v", boundary, err)
				}
				decoded, err := engine.DecodeSnapshot(&buf)
				if err != nil {
					t.Fatalf("boundary %d: decode: %v", boundary, err)
				}
				resumed, err := engine.New(cfg())
				if err != nil {
					t.Fatal(err)
				}
				if err := resumed.Restore(decoded); err != nil {
					t.Fatalf("boundary %d: restore: %v", boundary, err)
				}
				if err := resumed.Run(); err != nil {
					t.Fatalf("boundary %d: resumed run: %v", boundary, err)
				}
				got, err := resumed.Result()
				if err != nil {
					t.Fatalf("boundary %d: %v", boundary, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("boundary %d (t=%d): restored result diverged\ngot:  %+v\nwant: %+v",
						boundary, sn.Now, got, want)
				}

				ok, err := live.Step()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				boundary++
			}
			if boundary < 10 {
				t.Fatalf("only %d boundaries exercised; workload too small to mean anything", boundary)
			}
		})
	}
}

// goldenRow pins the exact headline metrics of one algorithm on one fixed
// workload. Values are strconv.FormatFloat 'g'/-1 renderings — an exact
// decimal round trip of the float64 bits, so ANY numeric drift (a changed
// accumulation order, a reordered event, a different tie-break) fails the
// test. Regenerate with: go test ./internal/experiment -run GoldenDeterminism -v
// (failures print the observed row).
type goldenRow struct {
	util, meanWait, slowdown string
}

// TestGoldenDeterminism commits exact fixed-seed results for one
// representative of each algorithm family (satellite: golden determinism).
// The workload is fig1-sized but smaller (N=200, paper geometry) to keep
// the test fast; heterogeneous variants get a dedicated-job share.
func TestGoldenDeterminism(t *testing.T) {
	golden := map[string]goldenRow{
		"EASY":          {"0.9224309823413778", "295982.115", "30.73675504173946"},
		"EASY-DE":       {"0.9224336014630784", "308190.67", "28.550589088224"},
		"LOS":           {"0.9136657566137955", "292551.125", "30.39205006123529"},
		"LOS-D":         {"0.923154454129118", "285696.255", "28.14358307593937"},
		"Delayed-LOS":   {"0.9342265380066458", "298905.285", "31.030440321457668"},
		"Delayed-LOS-E": {"0.9277959187977484", "319868.345", "31.722879861075423"},
		"Hybrid-LOS-E":  {"0.9403506949475179", "311137.27", "28.813999287524847"},
		"CONS":          {"0.9421451060502506", "316423.7", "32.790481854962266"},
		"FCFS":          {"0.7557073901881772", "576405.48", "58.91035233151252"},
		"Adaptive":      {"0.9342265380066458", "298905.285", "31.030440321457668"},
		"LOS+":          {"0.9335001299043585", "305430.16", "31.685981990091832"},
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for name, want := range golden {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			algo := MustByName(name)
			pt := Point{Cs: 5}
			hetero := algo.New(pt).Heterogeneous()
			p := workload.DefaultParams()
			p.N = 200
			p.Seed = 1
			p.PE = 0.2
			p.PR = 0.1
			if hetero {
				p.PD = 0.1
			}
			w, err := workload.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.Run(w, engine.Config{
				M: 320, Unit: 32, Scheduler: algo.New(pt), ProcessECC: algo.ECC,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := goldenRow{f(res.Summary.Utilization), f(res.Summary.MeanWait), f(res.Summary.Slowdown)}
			if got != want {
				t.Errorf("golden drift:\ngot:  {%q, %q, %q}\nwant: {%q, %q, %q}",
					got.util, got.meanWait, got.slowdown, want.util, want.meanWait, want.slowdown)
			}
		})
	}
}
