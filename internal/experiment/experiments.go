package experiment

import (
	"fmt"
	"math"
	"sort"

	"elastisched/internal/fault"
	"elastisched/internal/workload"
)

// Experiment is one paper figure/table (or an extension study): one or more
// sweep panels plus the improvement tables derived from them.
type Experiment struct {
	ID    string
	Title string
	Notes string

	Panels       []*Sweep
	Improvements []ImprovementSpec
}

// ImprovementSpec derives a paper-style table from one panel.
type ImprovementSpec struct {
	Name      string // e.g. "Table IV"
	Panel     int    // index into Panels
	Target    string
	Baselines []string
}

// DefaultSeeds averages each point over three deterministic runs. The paper
// plots single runs; multiple seeds reduce single-trace noise while keeping
// results reproducible (set to one seed to mirror the paper exactly).
func DefaultSeeds() []int64 { return []int64{1, 2, 3} }

// DefaultLoads is the paper's Load interval [0.5, 1] (Figures 7-11).
func DefaultLoads() []float64 { return []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} }

// CsFor returns the empirically good maximum skip count for a small-job
// probability, following the paper's Figures 5-6: the knee sits near 7-8
// for balanced mixes and near 3 when small jobs dominate. Experiments with
// load sweeps use this, as the paper does ("we first empirically obtain the
// optimal value of C_s for a given value of P_S").
func CsFor(ps float64) int {
	switch {
	case ps <= 0.35:
		return 8
	case ps <= 0.65:
		return 7
	default:
		return 3
	}
}

// batchParams returns the standard batch workload at a given small-job
// probability and target load.
func batchParams(ps, load float64) workload.Params {
	p := workload.DefaultParams()
	p.PS = ps
	p.TargetLoad = load
	return p
}

// loadPoints builds load-sweep points from a params template.
func loadPoints(template func(load float64) workload.Params, cs int) []Point {
	pts := make([]Point, 0, len(DefaultLoads()))
	for _, load := range DefaultLoads() {
		pts = append(pts, Point{X: load, Params: template(load), Cs: cs})
	}
	return pts
}

func algos(names ...string) []Algorithm {
	out := make([]Algorithm, 0, len(names))
	for _, n := range names {
		out = append(out, MustByName(n))
	}
	return out
}

// CalibrateCs empirically finds the maximum skip count that minimizes
// Delayed-LOS's mean waiting time for a workload configuration — the
// procedure the paper applies before each load sweep ("we first empirically
// obtain the optimal value of C_s for a given value of P_S", Section V-A).
// It returns the best C_s in [1, csMax] and the full calibration result.
func CalibrateCs(params workload.Params, csMax int, seeds []int64, workers int) (int, *Result, error) {
	if csMax < 1 {
		csMax = 20
	}
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	pts := make([]Point, 0, csMax)
	for cs := 1; cs <= csMax; cs++ {
		pts = append(pts, Point{X: float64(cs), Params: params, Cs: cs})
	}
	sweep := &Sweep{
		ID: "calibrate-cs", Title: "C_s calibration", XLabel: "C_s",
		Algorithms: algos("Delayed-LOS"),
		Points:     pts,
		Seeds:      seeds,
	}
	r, err := sweep.Run(workers)
	if err != nil {
		return 0, nil, err
	}
	best, bestWait := 1, math.Inf(1)
	for pi := range pts {
		if w := r.Cells[0][pi].Summary.MeanWait; w < bestWait {
			bestWait = w
			best = pi + 1
		}
	}
	return best, r, nil
}

// Fig1 reproduces Figure 1: EASY vs LOS mean waiting time against load on
// an SDSC-like trace whose load is varied by arrival-time scaling. The LOS
// paper validated on three archive logs (CTC, SDSC, KTH); panels for
// CTC-like and KTH-like stand-ins are included as well.
func Fig1() *Experiment {
	panel := func(id, title string, base workload.Params) *Sweep {
		template := func(load float64) workload.Params {
			p := base
			p.TargetLoad = load
			return p
		}
		return &Sweep{
			ID: id, Title: title, XLabel: "Load",
			Algorithms: algos("EASY", "LOS"),
			Points:     loadPoints(template, 0),
			Seeds:      DefaultSeeds(),
		}
	}
	return &Experiment{
		ID:    "fig1",
		Title: "EASY vs LOS on archive-like logs (load via arrival-time scaling)",
		Notes: "Expected shape: LOS at or below EASY's waiting time (LOS wins on archive-like packing).",
		Panels: []*Sweep{
			panel("fig1", "SDSC-like trace (128 procs)", workload.SDSCLike()),
			panel("fig1-ctc", "CTC-like trace (512 procs)", workload.CTCLike()),
			panel("fig1-kth", "KTH-like trace (100 procs)", workload.KTHLike()),
		},
	}
}

// csSweep builds a C_s sweep panel at fixed load and P_S (Figures 5-6).
func csSweep(id string, ps, load float64) *Sweep {
	pts := make([]Point, 0, 20)
	for cs := 1; cs <= 20; cs++ {
		pts = append(pts, Point{X: float64(cs), Params: batchParams(ps, load), Cs: cs})
	}
	return &Sweep{
		ID:         id,
		Title:      fmt.Sprintf("metrics vs C_s (Load=%.1f, P_S=%.1f)", load, ps),
		XLabel:     "C_s",
		Algorithms: algos("EASY", "LOS", "Delayed-LOS"),
		Points:     pts,
		Seeds:      DefaultSeeds(),
	}
}

// Fig5 reproduces Figure 5: utilization and waiting time against the
// maximum skip count C_s for Load=0.9, P_S=0.5.
func Fig5() *Experiment {
	return &Experiment{
		ID:     "fig5",
		Title:  "Variation with maximum skip count C_s (Load=0.9, P_S=0.5)",
		Notes:  "Expected: Delayed-LOS above LOS/EASY; knee near C_s=7-8.",
		Panels: []*Sweep{csSweep("fig5", 0.5, 0.9)},
	}
}

// Fig6 reproduces Figure 6: the same sweep with small jobs dominant
// (P_S=0.8); performance becomes insensitive to C_s beyond ~3.
func Fig6() *Experiment {
	return &Experiment{
		ID:     "fig6",
		Title:  "Variation with maximum skip count C_s (Load=0.9, P_S=0.8)",
		Notes:  "Expected: insensitive to C_s beyond ~3.",
		Panels: []*Sweep{csSweep("fig6", 0.8, 0.9)},
	}
}

// Fig7 reproduces Figure 7 (and Table IV): metrics against load for
// P_S=0.2 — many large jobs, where Delayed-LOS wins and LOS trails EASY.
func Fig7() *Experiment {
	ps := 0.2
	return &Experiment{
		ID:    "fig7",
		Title: "Batch workload: variation with Load (P_S=0.2)",
		Notes: "Expected: Delayed-LOS best; LOS worse than EASY with varied job sizes.",
		Panels: []*Sweep{{
			ID: "fig7", Title: fmt.Sprintf("P_S=%.1f, C_s=%d", ps, CsFor(ps)), XLabel: "Load",
			Algorithms: algos("EASY", "LOS", "Delayed-LOS"),
			Points:     loadPoints(func(l float64) workload.Params { return batchParams(ps, l) }, CsFor(ps)),
			Seeds:      DefaultSeeds(),
		}},
		Improvements: []ImprovementSpec{{
			Name: "Table IV", Panel: 0, Target: "Delayed-LOS", Baselines: []string{"LOS", "EASY"},
		}},
	}
}

// Fig8 reproduces Figure 8: waiting time against load for P_S=0.5 and
// P_S=0.8 — Delayed-LOS approaches EASY as small jobs dominate, and both
// beat LOS.
func Fig8() *Experiment {
	panel := func(ps float64) *Sweep {
		return &Sweep{
			ID:         fmt.Sprintf("fig8-ps%.0f", ps*10),
			Title:      fmt.Sprintf("P_S=%.1f, C_s=%d", ps, CsFor(ps)),
			XLabel:     "Load",
			Algorithms: algos("EASY", "LOS", "Delayed-LOS"),
			Points:     loadPoints(func(l float64) workload.Params { return batchParams(ps, l) }, CsFor(ps)),
			Seeds:      DefaultSeeds(),
		}
	}
	return &Experiment{
		ID:     "fig8",
		Title:  "Batch workload: waiting time vs Load for P_S=0.5 and P_S=0.8",
		Notes:  "Expected: Delayed-LOS close to EASY, both above LOS.",
		Panels: []*Sweep{panel(0.5), panel(0.8)},
	}
}

// heteroPanel builds a heterogeneous load sweep (Figures 9-10).
func heteroPanel(id string, pd, ps float64) *Sweep {
	template := func(load float64) workload.Params {
		p := batchParams(ps, load)
		p.PD = pd
		return p
	}
	return &Sweep{
		ID:         id,
		Title:      fmt.Sprintf("P_D=%.1f, P_S=%.1f, C_s=%d", pd, ps, CsFor(ps)),
		XLabel:     "Load",
		Algorithms: algos("EASY-D", "LOS-D", "Hybrid-LOS"),
		Points:     loadPoints(template, CsFor(ps)),
		Seeds:      DefaultSeeds(),
	}
}

// Fig9 reproduces Figure 9 (and Table V): heterogeneous workload with
// P_D=0.5, P_S=0.2.
func Fig9() *Experiment {
	return &Experiment{
		ID:     "fig9",
		Title:  "Heterogeneous workload: variation with Load (P_D=0.5, P_S=0.2)",
		Notes:  "Expected: Hybrid-LOS best of the three.",
		Panels: []*Sweep{heteroPanel("fig9", 0.5, 0.2)},
		Improvements: []ImprovementSpec{{
			Name: "Table V", Panel: 0, Target: "Hybrid-LOS", Baselines: []string{"LOS-D", "EASY-D"},
		}},
	}
}

// Fig10 reproduces Figure 10: dedicated jobs dominant (P_D=0.9, P_S=0.5).
func Fig10() *Experiment {
	return &Experiment{
		ID:     "fig10",
		Title:  "Heterogeneous workload: variation with Load (P_D=0.9, P_S=0.5)",
		Notes:  "Expected: Hybrid-LOS still outperforms LOS-D and EASY-D.",
		Panels: []*Sweep{heteroPanel("fig10", 0.9, 0.5)},
	}
}

// Fig11 reproduces Figure 11 (and Tables VI-VII): the elastic workloads.
// Panel 0 is batch with ECCs (P_S=0.5); panel 1 is heterogeneous with ECCs
// (P_S=0.5, P_D=0.5). P_E=0.2, P_R=0.1 throughout, as the paper fixes.
func Fig11() *Experiment {
	elastic := func(load float64) workload.Params {
		p := batchParams(0.5, load)
		p.PE, p.PR = 0.2, 0.1
		return p
	}
	elasticHetero := func(load float64) workload.Params {
		p := elastic(load)
		p.PD = 0.5
		return p
	}
	cs := CsFor(0.5)
	return &Experiment{
		ID:    "fig11",
		Title: "Elastic workloads: ECCs with batch (P_S=0.5) and heterogeneous (P_S=0.5, P_D=0.5)",
		Notes: "Expected: -E variants of Delayed/Hybrid still win, by smaller margins than Tables IV-V.",
		Panels: []*Sweep{
			{
				ID: "fig11-batch", Title: "batch + ECC (P_S=0.5)", XLabel: "Load",
				Algorithms: algos("EASY-E", "LOS-E", "Delayed-LOS-E"),
				Points:     loadPoints(elastic, cs),
				Seeds:      DefaultSeeds(),
			},
			{
				ID: "fig11-hetero", Title: "heterogeneous + ECC (P_S=0.5, P_D=0.5)", XLabel: "Load",
				Algorithms: algos("EASY-DE", "LOS-DE", "Hybrid-LOS-E"),
				Points:     loadPoints(elasticHetero, cs),
				Seeds:      DefaultSeeds(),
			},
		},
		Improvements: []ImprovementSpec{
			{Name: "Table VI", Panel: 0, Target: "Delayed-LOS-E", Baselines: []string{"LOS-E", "EASY-E"}},
			{Name: "Table VII", Panel: 1, Target: "Hybrid-LOS-E", Baselines: []string{"LOS-DE", "EASY-DE"}},
		},
	}
}

// Baselines is an extension study: the related-work policies of Section II
// against EASY and Delayed-LOS.
func Baselines() *Experiment {
	ps := 0.5
	return &Experiment{
		ID:    "baselines",
		Title: "Related-work baselines (FCFS, SJF, LJF, conservative) vs EASY and Delayed-LOS",
		Panels: []*Sweep{{
			ID: "baselines", Title: fmt.Sprintf("P_S=%.1f", ps), XLabel: "Load",
			Algorithms: algos("FCFS", "SJF", "LJF", "CONS", "EASY", "Delayed-LOS"),
			Points:     loadPoints(func(l float64) workload.Params { return batchParams(ps, l) }, CsFor(ps)),
			Seeds:      DefaultSeeds(),
		}},
	}
}

// Lookahead is the DP-window ablation: the LOS paper caps the lookahead at
// 50 jobs; this sweep quantifies the packing cost of shallower windows.
func Lookahead() *Experiment {
	depths := []int{2, 5, 10, 25, 50, 100}
	pts := make([]Point, 0, len(depths))
	for _, d := range depths {
		pts = append(pts, Point{X: float64(d), Params: batchParams(0.2, 0.9), Cs: CsFor(0.2), Lookahead: d})
	}
	return &Experiment{
		ID:    "lookahead",
		Title: "Ablation: DP lookahead window depth (Load=0.9, P_S=0.2)",
		Panels: []*Sweep{{
			ID: "lookahead", Title: "window depth sweep", XLabel: "lookahead",
			Algorithms: algos("LOS", "Delayed-LOS"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}},
	}
}

// ECCSensitivity is an extension study: how the extension probability P_E
// degrades each elastic scheduler (the paper fixes P_E=0.2).
func ECCSensitivity() *Experiment {
	pes := []float64{0, 0.1, 0.2, 0.3, 0.4}
	pts := make([]Point, 0, len(pes))
	for _, pe := range pes {
		p := batchParams(0.5, 0.9)
		p.PE, p.PR = pe, 0.1
		pts = append(pts, Point{X: pe, Params: p, Cs: CsFor(0.5)})
	}
	return &Experiment{
		ID:    "ecc-sensitivity",
		Title: "Ablation: extension probability P_E (Load=0.9, P_S=0.5, P_R=0.1)",
		Panels: []*Sweep{{
			ID: "ecc-sensitivity", Title: "P_E sweep", XLabel: "P_E",
			Algorithms: algos("EASY-E", "LOS-E", "Delayed-LOS-E"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}},
	}
}

// SizeElastic exercises the paper's future-work EP/RP resource-dimension
// elasticity through the same harness.
func SizeElastic() *Experiment {
	pts := make([]Point, 0, 3)
	for _, pe := range []float64{0, 0.2, 0.4} {
		p := batchParams(0.5, 0.9)
		p.PE, p.PR = pe, pe/2
		p.SizeECC = true
		pts = append(pts, Point{X: pe, Params: p, Cs: CsFor(0.5)})
	}
	return &Experiment{
		ID:    "size-elastic",
		Title: "Extension: EP/RP size elasticity (future work, Section VI)",
		Panels: []*Sweep{{
			ID: "size-elastic", Title: "EP probability sweep", XLabel: "P_EP",
			Algorithms: algos("EASY-E", "Delayed-LOS-E"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}},
	}
}

// LOSVariants is an interpretation ablation: the paper narrates LOS as
// "start the head right away (instead of running the DP)"; the original
// Shmueli-Feitelson algorithm packs the rest of the capacity in the same
// cycle. Both readings are implemented (LOS and LOS+); this sweep measures
// the gap between them and against EASY/Delayed-LOS on the Figure 7
// workload.
func LOSVariants() *Experiment {
	ps := 0.2
	return &Experiment{
		ID:    "los-variants",
		Title: "Ablation: LOS interpretation (head-only vs head+DP-fill)",
		Panels: []*Sweep{{
			ID: "los-variants", Title: fmt.Sprintf("P_S=%.1f", ps), XLabel: "Load",
			Algorithms: algos("EASY", "LOS", "LOS+", "Delayed-LOS"),
			Points:     loadPoints(func(l float64) workload.Params { return batchParams(ps, l) }, CsFor(ps)),
			Seeds:      DefaultSeeds(),
		}},
	}
}

// HeteroBaselines adds the conservative-with-reservations baseline (CONS-D)
// to the heterogeneous comparison — a stronger reference point than EASY-D.
func HeteroBaselines() *Experiment {
	return &Experiment{
		ID:    "hetero-baselines",
		Title: "Extension: conservative backfilling with dedicated reservations (CONS-D)",
		Panels: []*Sweep{{
			ID: "hetero-baselines", Title: "P_D=0.5, P_S=0.2", XLabel: "Load",
			Algorithms: algos("CONS-D", "EASY-D", "Hybrid-LOS"),
			Points: loadPoints(func(l float64) workload.Params {
				p := batchParams(0.2, l)
				p.PD = 0.5
				return p
			}, CsFor(0.2)),
			Seeds: DefaultSeeds(),
		}},
	}
}

// Fragmentation is an extension study after Krevat et al. (Section II):
// BlueGene-style contiguous partitioning introduces fragmentation that
// capacity-only scheduling cannot see, and on-the-fly migration
// (compaction) recovers most of the loss. Three panels: scatter (the
// paper's model), contiguous, contiguous + migration.
func Fragmentation() *Experiment {
	panel := func(id string, contig, migrate bool) *Sweep {
		pts := loadPoints(func(l float64) workload.Params { return batchParams(0.5, l) }, CsFor(0.5))
		for i := range pts {
			pts[i].Contiguous = contig
			pts[i].Migrate = migrate
		}
		return &Sweep{
			ID: id, Title: id, XLabel: "Load",
			Algorithms: algos("EASY", "Delayed-LOS"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}
	}
	return &Experiment{
		ID:    "fragmentation",
		Title: "Extension: contiguous allocation and migration (Krevat et al.)",
		Panels: []*Sweep{
			panel("frag-scatter", false, false),
			panel("frag-contiguous", true, false),
			panel("frag-migration", true, true),
		},
	}
}

// Estimates is an extension study on estimate inaccuracy: Section II cites
// Mu'alem & Feitelson's observation that backfilling improves when runtimes
// are over-estimated by about 2x. The sweep scales every user estimate by a
// fixed factor while actual runtimes stay put.
func Estimates() *Experiment {
	factors := []float64{1, 1.5, 2, 3, 5, 10}
	pts := make([]Point, 0, len(factors))
	for _, f := range factors {
		p := batchParams(0.5, 0.9)
		p.EstFactor = f
		pts = append(pts, Point{X: f, Params: p, Cs: CsFor(0.5)})
	}
	return &Experiment{
		ID:    "estimates",
		Title: "Ablation: estimate over-estimation factor (Load=0.9, P_S=0.5)",
		Notes: "Related work (Mu'alem & Feitelson): backfilling works better when estimates are ~2x the runtime.",
		Panels: []*Sweep{{
			ID: "estimates", Title: "estimate factor sweep", XLabel: "estimate factor",
			Algorithms: algos("EASY", "LOS", "Delayed-LOS", "CONS"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}},
	}
}

// MachineScaling sweeps the machine size at fixed offered load: the packing
// problem gets combinatorially richer with more node groups (the DP state
// grows), while relative algorithm behaviour should persist — a scalability
// check beyond the paper's fixed 320-processor setup.
func MachineScaling() *Experiment {
	sizes := []int{160, 320, 640, 1280}
	pts := make([]Point, 0, len(sizes))
	for _, m := range sizes {
		p := batchParams(0.5, 0.9)
		p.M = m
		// Job sizes scale with the machine (small 1-3 groups, large up to
		// M/Unit groups), as the generator derives its ranges from M/Unit.
		pts = append(pts, Point{X: float64(m), Params: p, Cs: CsFor(0.5)})
	}
	return &Experiment{
		ID:    "machine-scaling",
		Title: "Extension: machine-size scaling at Load=0.9 (P_S=0.5)",
		Panels: []*Sweep{{
			ID: "machine-scaling", Title: "M sweep", XLabel: "processors",
			Algorithms: algos("EASY", "LOS", "Delayed-LOS"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}},
	}
}

// LongRun is the paper's Section V sanity check that 500-job runs match
// longer ones: a 10,000-job run at Load=0.9, as the paper used.
func LongRun() *Experiment {
	p := batchParams(0.5, 0.9)
	p.N = 10000
	return &Experiment{
		ID:    "longrun",
		Title: "Sanity check: long trace (N=10000, Load=0.9, P_S=0.5)",
		Panels: []*Sweep{{
			ID: "longrun", Title: "single long run", XLabel: "Load",
			Algorithms: algos("EASY", "LOS", "Delayed-LOS"),
			Points:     []Point{{X: 0.9, Params: p, Cs: CsFor(0.5)}},
			Seeds:      []int64{1},
		}},
	}
}

// Adaptive compares the dynamic selection policy (Section V-A's suggestion)
// against its two constituents across the P_S spectrum.
func AdaptiveStudy() *Experiment {
	pss := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pts := make([]Point, 0, len(pss))
	for _, ps := range pss {
		pts = append(pts, Point{X: ps, Params: batchParams(ps, 0.9), Cs: CsFor(ps)})
	}
	return &Experiment{
		ID:    "adaptive",
		Title: "Extension: dynamic Delayed-LOS/EASY selection across P_S (Load=0.9)",
		Panels: []*Sweep{{
			ID: "adaptive", Title: "P_S sweep", XLabel: "P_S",
			Algorithms: algos("EASY", "Delayed-LOS", "Adaptive"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}},
	}
}

// Robustness is the malleability study: mean waiting time and destroyed
// work against the per-group failure rate, rigid against malleable. Both
// panels replay identical workloads (every batch job carries full bounds;
// PM only annotates, it never changes sizes or arrivals) and identical
// per-seed fault traces, so each -M cell is a paired comparison with its
// rigid twin. In the rigid panel every failure victim dies and restarts;
// in the malleable panel victims shrink onto their surviving node groups
// when the remainder covers their minimum, and the schedulers additionally
// shrink runners to admit the queue head. Expected: malleability converts
// lost work into ceded capacity and flattens the wait-time growth as MTBF
// drops.
func Robustness() *Experiment {
	mtbfs := []float64{20000, 40000, 80000, 160000}
	panel := func(id string, malleable bool, names ...string) *Sweep {
		pts := make([]Point, 0, len(mtbfs))
		for _, mtbf := range mtbfs {
			p := batchParams(0.5, 0.9)
			p.PM = 1.0
			pt := Point{
				X: mtbf, Params: p, Cs: CsFor(0.5),
				MTBF: mtbf, MTTR: 2000,
				Retry:     fault.RetryPolicy{Mode: fault.Requeue, Restart: fault.RemainingRuntime, Backoff: 30},
				Malleable: malleable,
			}
			if malleable {
				// Each reshape pays a data-redistribution penalty, so the
				// malleable advantage is measured net of reconfiguration cost.
				pt.ResizeOverhead = 60
			}
			pts = append(pts, pt)
		}
		return &Sweep{
			ID: id, Title: id + " (Load=0.9, P_S=0.5, P_M=1)", XLabel: "MTBF",
			Algorithms: algos(names...),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}
	}
	return &Experiment{
		ID:    "robustness",
		Title: "Extension: rigid vs malleable scheduling under node-group failures (MTBF sweep)",
		Notes: "Expected: -M variants lose less work (shrink instead of die) and wait grows more slowly as MTBF drops.",
		Panels: []*Sweep{
			panel("robust-rigid", false, "EASY", "Delayed-LOS"),
			panel("robust-malleable", true, "EASY-M", "Delayed-LOS-M"),
		},
	}
}

// Checkpoint is the checkpoint-economics study: the cost trade of
// checkpoint/restart under node-group failures. Each panel fixes one
// per-group MTBF and sweeps the periodic checkpoint interval I (x-axis):
// short intervals pay checkpoint overhead on every running job, long ones
// lose more work per kill — lost work falls and overhead rises with
// 1/I, so total fault-pipeline cost is U-shaped in I. One extra point per
// panel runs the daly policy, plotted at its base (single-group) interval
// sqrt(2·MTBF·C): it should sit at (or within 10% of) the sweep's optimum
// without per-MTBF tuning. Daly is per job in the engine — a job spanning
// g node groups fails g times as often, so it checkpoints at
// sqrt(2·(MTBF/g)·C) — which is why a single sampled MTBF serves the
// whole mixed-size workload where any one global interval must
// compromise between the 1-group and 10-group jobs.
func Checkpoint() *Experiment {
	const (
		cost = int64(120) // per-checkpoint (and per-restart) charge C
		mttr = 2000.0
	)
	mtbfs := []float64{20000, 80000}
	intervals := []int64{400, 800, 1600, 3200, 6400, 12800}
	panel := func(mtbf float64) *Sweep {
		point := func(x int64, policy fault.CheckpointPolicy, interval int64) Point {
			return Point{
				X: float64(x), Params: batchParams(0.5, 0.9), Cs: CsFor(0.5),
				MTBF: mtbf, MTTR: mttr,
				Retry:              fault.RetryPolicy{Mode: fault.Requeue, Restart: fault.RemainingRuntime, Backoff: 30},
				CheckpointPolicy:   policy,
				CheckpointInterval: interval,
				CheckpointCost:     cost,
			}
		}
		daly := fault.DalyInterval(mtbf, cost)
		pts := make([]Point, 0, len(intervals)+1)
		placed := false
		for _, ivl := range intervals {
			if !placed && daly < ivl {
				pts = append(pts, point(daly, fault.CheckpointDaly, 0))
				placed = true
			}
			pts = append(pts, point(ivl, fault.CheckpointPeriodic, ivl))
		}
		if !placed {
			pts = append(pts, point(daly, fault.CheckpointDaly, 0))
		}
		id := fmt.Sprintf("checkpoint-mtbf%d", int(mtbf))
		return &Sweep{
			ID: id, Title: fmt.Sprintf("%s (Load=0.9, P_S=0.5, C=%d, MTBF=%g)", id, cost, mtbf),
			XLabel:     "checkpoint interval (s)",
			Algorithms: algos("EASY", "Delayed-LOS"),
			Points:     pts,
			Seeds:      DefaultSeeds(),
		}
	}
	return &Experiment{
		ID:    "checkpoint",
		Title: "Extension: checkpoint-cost economics (interval sweep per MTBF, daly marker)",
		Notes: "Expected: lost work falls and checkpoint overhead rises as the interval shrinks; the daly point (x = sqrt(2*MTBF*C)) tracks each panel's total-cost optimum.",
		Panels: []*Sweep{
			panel(mtbfs[0]),
			panel(mtbfs[1]),
		},
	}
}

// All returns every defined experiment, paper figures first.
func All() []*Experiment {
	return []*Experiment{
		Fig1(), Fig5(), Fig6(), Fig7(), Fig8(), Fig9(), Fig10(), Fig11(),
		Baselines(), Lookahead(), ECCSensitivity(), SizeElastic(),
		Estimates(), LOSVariants(), HeteroBaselines(), Fragmentation(),
		MachineScaling(), LongRun(), AdaptiveStudy(), Robustness(),
		Checkpoint(),
	}
}

// ByID resolves an experiment. Table aliases map to the figure that
// produces them (table4 -> fig7, table5 -> fig9, table6/table7 -> fig11).
func ByID(id string) (*Experiment, error) {
	alias := map[string]string{
		"table4": "fig7", "table5": "fig9", "table6": "fig11", "table7": "fig11",
	}
	if target, ok := alias[id]; ok {
		id = target
	}
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("experiment: unknown id %q (known: %v, plus table4..table7 aliases)", id, ids)
}
