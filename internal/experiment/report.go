package experiment

import (
	"fmt"
	"sort"
	"strings"

	"elastisched/internal/fault"
	"elastisched/internal/metrics"
	"elastisched/internal/plot"
	"elastisched/internal/stats"
)

// Metric identifies a reported measure and its direction.
type Metric struct {
	Name   string
	Label  string
	Get    func(metrics.Summary) float64
	Higher bool // true if larger is better (utilization)
}

// The paper's three headline metrics plus diagnostics.
var (
	MetricUtil = Metric{"util", "mean utilization", func(s metrics.Summary) float64 { return s.Utilization }, true}
	MetricWait = Metric{"wait", "mean job waiting time (s)", func(s metrics.Summary) float64 { return s.MeanWait }, false}
	MetricSlow = Metric{"slowdown", "slowdown", func(s metrics.Summary) float64 { return s.Slowdown }, false}

	MetricBoundedSlow = Metric{"bslow", "mean bounded slowdown", func(s metrics.Summary) float64 { return s.MeanBoundedSlow }, false}
	MetricP95Wait     = Metric{"p95wait", "p95 waiting time (s)", func(s metrics.Summary) float64 { return s.P95Wait }, false}
	MetricDedOnTime   = Metric{"dedontime", "dedicated on-time fraction", func(s metrics.Summary) float64 { return s.DedicatedOnTime }, true}
	MetricSteadyUtil  = Metric{"steadyutil", "steady-state utilization", func(s metrics.Summary) float64 { return s.SteadyUtilization }, true}
	MetricSteadyWait  = Metric{"steadywait", "steady-state mean wait (s)", func(s metrics.Summary) float64 { return s.SteadyMeanWait }, false}

	// Fault-pipeline metrics for robustness and checkpoint-economics sweeps.
	MetricLostWork  = Metric{"lostwork", "lost work (proc·s)", func(s metrics.Summary) float64 { return s.LostWorkSeconds }, false}
	MetricFaultCost = Metric{"faultcost", "lost work + checkpoint overhead (proc·s)",
		func(s metrics.Summary) float64 { return s.LostWorkSeconds + s.CheckpointOverheadSeconds }, false}
)

// Metrics lists the standard report metrics in order.
func Metrics() []Metric { return []Metric{MetricUtil, MetricWait, MetricSlow} }

// MetricByName resolves a metric name.
func MetricByName(name string) (Metric, error) {
	for _, m := range []Metric{MetricUtil, MetricWait, MetricSlow, MetricBoundedSlow, MetricP95Wait, MetricDedOnTime, MetricSteadyUtil, MetricSteadyWait, MetricLostWork, MetricFaultCost} {
		if m.Name == name {
			return m, nil
		}
	}
	return Metric{}, fmt.Errorf("experiment: unknown metric %q", name)
}

// algoIndex finds an algorithm's row, or -1.
func (r *Result) algoIndex(name string) int {
	for i, a := range r.Sweep.Algorithms {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Series extracts one plottable line per algorithm for a metric.
func (r *Result) Series(m Metric) []plot.Series {
	out := make([]plot.Series, 0, len(r.Sweep.Algorithms))
	for ai, a := range r.Sweep.Algorithms {
		s := plot.Series{Name: a.Name}
		for pi, pt := range r.Sweep.Points {
			s.X = append(s.X, pt.X)
			s.Y = append(s.Y, m.Get(r.Cells[ai][pi].Summary))
		}
		out = append(out, s)
	}
	return out
}

// Table renders the sweep as fixed-width rows: one row per point, one
// column group per metric per algorithm.
func (r *Result) Table(ms ...Metric) string {
	if len(ms) == 0 {
		ms = Metrics()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Sweep.ID, r.Sweep.Title)
	// Header.
	fmt.Fprintf(&b, "%-10s", r.Sweep.XLabel)
	for _, m := range ms {
		for _, a := range r.Sweep.Algorithms {
			fmt.Fprintf(&b, " %16s", a.Name+"/"+m.Name)
		}
	}
	b.WriteByte('\n')
	for pi, pt := range r.Sweep.Points {
		fmt.Fprintf(&b, "%-10.3g", pt.X)
		for _, m := range ms {
			for ai := range r.Sweep.Algorithms {
				fmt.Fprintf(&b, " %16.4f", m.Get(r.Cells[ai][pi].Summary))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the sweep as a GitHub-flavored markdown table: one row
// per point, metric columns grouped per algorithm.
func (r *Result) Markdown(ms ...Metric) string {
	if len(ms) == 0 {
		ms = Metrics()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "#### %s — %s\n\n", r.Sweep.ID, r.Sweep.Title)
	b.WriteString("| " + r.Sweep.XLabel + " |")
	for _, m := range ms {
		for _, a := range r.Sweep.Algorithms {
			fmt.Fprintf(&b, " %s %s |", a.Name, m.Name)
		}
	}
	b.WriteString("\n|---|")
	for range ms {
		for range r.Sweep.Algorithms {
			b.WriteString("---|")
		}
	}
	b.WriteByte('\n')
	for pi, pt := range r.Sweep.Points {
		fmt.Fprintf(&b, "| %.3g |", pt.X)
		for _, m := range ms {
			for ai := range r.Sweep.Algorithms {
				fmt.Fprintf(&b, " %.4f |", m.Get(r.Cells[ai][pi].Summary))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ImprovementMarkdown renders a paper-style improvement table as markdown.
func (r *Result) ImprovementMarkdown(name, target string, baselines []string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s** — maximum %% improvement of %s:\n\n", name, target)
	b.WriteString("| Performance Metric |")
	for _, base := range baselines {
		fmt.Fprintf(&b, " %s (%%) |", base)
	}
	b.WriteString("\n|---|")
	for range baselines {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	rows := []struct {
		label string
		m     Metric
	}{
		{"Utilization", MetricUtil},
		{"Job waiting time", MetricWait},
		{"Slowdown", MetricSlow},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "| %s |", row.label)
		for _, base := range baselines {
			v, err := r.MaxImprovement(target, base, row.m)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %.2f |", v)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// TSV renders machine-readable results: one line per (point, algorithm).
func (r *Result) TSV() string {
	var b strings.Builder
	b.WriteString("sweep\tx\talgorithm\tutil\twait\trun\tslowdown\tbounded_slow\tp95wait\tded_ontime\tsteady_util\tsteady_wait\trealized_load\truns\n")
	for pi, pt := range r.Sweep.Points {
		for ai, a := range r.Sweep.Algorithms {
			c := r.Cells[ai][pi]
			s := c.Summary
			fmt.Fprintf(&b, "%s\t%g\t%s\t%.6f\t%.3f\t%.3f\t%.5f\t%.5f\t%.3f\t%.4f\t%.6f\t%.3f\t%.4f\t%d\n",
				r.Sweep.ID, pt.X, a.Name, s.Utilization, s.MeanWait, s.MeanRun, s.Slowdown,
				s.MeanBoundedSlow, s.P95Wait, s.DedicatedOnTime, s.SteadyUtilization, s.SteadyMeanWait,
				c.RealizedLoad, c.Runs)
		}
	}
	return b.String()
}

// HasFaults reports whether any point of the sweep injects failures —
// the signal for writing the fault-aware TSV layout instead of the
// standard one (which stays byte-stable for the committed figure series).
func (r *Result) HasFaults() bool {
	for _, pt := range r.Sweep.Points {
		if pt.MTBF > 0 {
			return true
		}
	}
	return false
}

// FaultTSV renders the machine-readable series for fault-injected sweeps:
// the headline metrics plus the robustness accounting — kills, retries,
// drops, destroyed work, out-of-service capacity — and the malleability
// counters (scheduler resizes, ceded proc-seconds, reconfiguration cost).
func (r *Result) FaultTSV() string {
	var b strings.Builder
	b.WriteString("sweep\tx\talgorithm\tutil\twait\trun\tslowdown\tkilled\tretried\tdropped\t" +
		"lost_work\tdown_procsec\tresizes\tshrunk_procsec\treconfig_sec\trealized_load\truns\n")
	for pi, pt := range r.Sweep.Points {
		for ai, a := range r.Sweep.Algorithms {
			c := r.Cells[ai][pi]
			s := c.Summary
			fmt.Fprintf(&b, "%s\t%g\t%s\t%.6f\t%.3f\t%.3f\t%.5f\t%d\t%d\t%d\t%.1f\t%.1f\t%d\t%.1f\t%.1f\t%.4f\t%d\n",
				r.Sweep.ID, pt.X, a.Name, s.Utilization, s.MeanWait, s.MeanRun, s.Slowdown,
				s.KilledJobs, s.RetriedJobs, s.DroppedJobs, s.LostWorkSeconds, s.DownProcSeconds,
				s.SchedulerResizes, s.ShrunkProcSeconds, s.ReconfigOverheadSeconds,
				c.RealizedLoad, c.Runs)
		}
	}
	return b.String()
}

// HasCheckpoints reports whether any point of the sweep checkpoints —
// the signal for writing the checkpoint-economics TSV layout. Committed
// fault-series files keep the FaultTSV layout byte-stable, so checkpoint
// sweeps get their own.
func (r *Result) HasCheckpoints() bool {
	for _, pt := range r.Sweep.Points {
		if pt.CheckpointPolicy != fault.CheckpointNone {
			return true
		}
	}
	return false
}

// CheckpointTSV renders the machine-readable series for checkpointed
// sweeps: the fault layout plus the checkpoint-economics decomposition —
// checkpoints taken, the overhead charged for them, and the (now
// since-checkpoint) lost work they bound.
func (r *Result) CheckpointTSV() string {
	var b strings.Builder
	b.WriteString("sweep\tx\talgorithm\tutil\twait\trun\tslowdown\tkilled\tretried\tdropped\t" +
		"lost_work\tdown_procsec\tcheckpoints\tckpt_overhead\tresizes\tshrunk_procsec\treconfig_sec\trealized_load\truns\n")
	for pi, pt := range r.Sweep.Points {
		for ai, a := range r.Sweep.Algorithms {
			c := r.Cells[ai][pi]
			s := c.Summary
			fmt.Fprintf(&b, "%s\t%g\t%s\t%.6f\t%.3f\t%.3f\t%.5f\t%d\t%d\t%d\t%.1f\t%.1f\t%d\t%.1f\t%d\t%.1f\t%.1f\t%.4f\t%d\n",
				r.Sweep.ID, pt.X, a.Name, s.Utilization, s.MeanWait, s.MeanRun, s.Slowdown,
				s.KilledJobs, s.RetriedJobs, s.DroppedJobs, s.LostWorkSeconds, s.DownProcSeconds,
				s.CheckpointsTaken, s.CheckpointOverheadSeconds,
				s.SchedulerResizes, s.ShrunkProcSeconds, s.ReconfigOverheadSeconds,
				c.RealizedLoad, c.Runs)
		}
	}
	return b.String()
}

// Plot renders the ASCII chart of a metric across all algorithms.
func (r *Result) Plot(m Metric, width, height int) string {
	title := fmt.Sprintf("%s — %s", r.Sweep.ID, r.Sweep.Title)
	return plot.Render(title, r.Sweep.XLabel, m.Label, r.Series(m), width, height)
}

// PlotSVG renders the figure as an SVG line chart.
func (r *Result) PlotSVG(m Metric, width, height int) string {
	title := fmt.Sprintf("%s — %s", r.Sweep.ID, r.Sweep.Title)
	return plot.SVGLines(title, r.Sweep.XLabel, m.Label, r.Series(m), width, height)
}

// MaxImprovement returns the maximum percentage improvement of target over
// baseline across the sweep's points, in the paper's sense: for
// higher-is-better metrics, 100*(target-baseline)/baseline maximized over
// points; for lower-is-better metrics, 100*(baseline-target)/baseline.
// The paper's Tables IV-VII report exactly this (maximum, not mean, because
// improvements are not uniform across loads — Section V-A).
func (r *Result) MaxImprovement(target, baseline string, m Metric) (float64, error) {
	ti := r.algoIndex(target)
	bi := r.algoIndex(baseline)
	if ti < 0 || bi < 0 {
		return 0, fmt.Errorf("experiment: %q or %q not in sweep %s", target, baseline, r.Sweep.ID)
	}
	best := 0.0
	first := true
	for pi := range r.Sweep.Points {
		tv := m.Get(r.Cells[ti][pi].Summary)
		bv := m.Get(r.Cells[bi][pi].Summary)
		if bv == 0 {
			continue
		}
		var imp float64
		if m.Higher {
			imp = 100 * (tv - bv) / bv
		} else {
			imp = 100 * (bv - tv) / bv
		}
		if first || imp > best {
			best = imp
			first = false
		}
	}
	return best, nil
}

// ImprovementTable renders a paper-style improvement table (e.g. Table IV:
// maximum % improvement of Delayed-LOS over LOS and EASY).
func (r *Result) ImprovementTable(name, target string, baselines []string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: maximum %% improvement of %s (from %s)\n", name, target, r.Sweep.ID)
	fmt.Fprintf(&b, "%-22s", "Performance Metric")
	for _, base := range baselines {
		fmt.Fprintf(&b, " %14s", base+" (%)")
	}
	b.WriteByte('\n')
	rows := []struct {
		label string
		m     Metric
	}{
		{"Utilization", MetricUtil},
		{"Job waiting time", MetricWait},
		{"Slowdown", MetricSlow},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s", row.label)
		for _, base := range baselines {
			v, err := r.MaxImprovement(target, base, row.m)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %14.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Improvements computes every pairwise max improvement for a metric,
// useful in tests asserting orderings.
func (r *Result) Improvements(m Metric) map[string]float64 {
	out := make(map[string]float64)
	for _, t := range r.Sweep.Algorithms {
		for _, base := range r.Sweep.Algorithms {
			if t.Name == base.Name {
				continue
			}
			v, err := r.MaxImprovement(t.Name, base.Name, m)
			if err == nil {
				out[t.Name+">"+base.Name] = v
			}
		}
	}
	return out
}

// MeanOver returns the metric averaged over all points for one algorithm —
// a robust scalar for test assertions about who wins overall.
func (r *Result) MeanOver(algo string, m Metric) (float64, error) {
	ai := r.algoIndex(algo)
	if ai < 0 {
		return 0, fmt.Errorf("experiment: %q not in sweep %s", algo, r.Sweep.ID)
	}
	var t float64
	for pi := range r.Sweep.Points {
		t += m.Get(r.Cells[ai][pi].Summary)
	}
	return t / float64(len(r.Sweep.Points)), nil
}

// Summary returns the aggregated summary of one (algorithm, point) cell.
func (r *Result) Summary(algo string, point int) (metrics.Summary, error) {
	ai := r.algoIndex(algo)
	if ai < 0 {
		return metrics.Summary{}, fmt.Errorf("experiment: %q not in sweep %s", algo, r.Sweep.ID)
	}
	if point < 0 || point >= len(r.Sweep.Points) {
		return metrics.Summary{}, fmt.Errorf("experiment: point %d out of range", point)
	}
	return r.Cells[ai][point].Summary, nil
}

// CI95 returns the 95% Student-t confidence interval of a metric for one
// (algorithm, point) cell, from the per-seed runs.
func (r *Result) CI95(algo string, point int, m Metric) (lo, hi float64, err error) {
	ai := r.algoIndex(algo)
	if ai < 0 {
		return 0, 0, fmt.Errorf("experiment: %q not in sweep %s", algo, r.Sweep.ID)
	}
	if point < 0 || point >= len(r.Sweep.Points) {
		return 0, 0, fmt.Errorf("experiment: point %d out of range", point)
	}
	vals := perSeedValues(r.Cells[ai][point], m)
	lo, hi = stats.CI95(vals)
	return lo, hi, nil
}

// PairedP runs a paired t-test of target against baseline over every
// (point, seed) pair — valid because the same seed at the same point
// replays the identical workload under both algorithms — and returns the
// two-sided p-value for the metric difference.
func (r *Result) PairedP(target, baseline string, m Metric) (float64, error) {
	ti := r.algoIndex(target)
	bi := r.algoIndex(baseline)
	if ti < 0 || bi < 0 {
		return 0, fmt.Errorf("experiment: %q or %q not in sweep %s", target, baseline, r.Sweep.ID)
	}
	var a, b []float64
	for pi := range r.Sweep.Points {
		a = append(a, perSeedValues(r.Cells[ti][pi], m)...)
		b = append(b, perSeedValues(r.Cells[bi][pi], m)...)
	}
	return stats.PairedT(a, b)
}

func perSeedValues(c Cell, m Metric) []float64 {
	out := make([]float64, 0, len(c.PerSeed))
	for _, s := range c.PerSeed {
		out = append(out, m.Get(s))
	}
	return out
}

// SignificanceTable reports paired-t p-values of the target against each
// baseline for the three headline metrics.
func (r *Result) SignificanceTable(target string, baselines []string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "paired t-test p-values for %s (over %d point x seed pairs)\n",
		target, len(r.Sweep.Points)*len(r.Sweep.Seeds))
	fmt.Fprintf(&b, "%-26s", "Performance Metric")
	for _, base := range baselines {
		fmt.Fprintf(&b, " %14s", "vs "+base)
	}
	b.WriteByte('\n')
	for _, m := range Metrics() {
		fmt.Fprintf(&b, "%-26s", m.Label)
		for _, base := range baselines {
			p, err := r.PairedP(target, base, m)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %14.4f", p)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// SortedAlgoNames lists the sweep's algorithm names, sorted.
func (r *Result) SortedAlgoNames() []string {
	out := make([]string, 0, len(r.Sweep.Algorithms))
	for _, a := range r.Sweep.Algorithms {
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}
