package experiment

import (
	"strings"
	"testing"

	"elastisched/internal/dispatch"
	"elastisched/internal/engine"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

func shardedSweep(route string) *Sweep {
	p := workload.DefaultParams()
	p.N = 80
	p.TargetLoad = 0.8
	return &Sweep{
		ID: "sharded-tiny", Title: "sharded", XLabel: "Load",
		Algorithms: algos("EASY", "Delayed-LOS"),
		Points:     []Point{{X: 0.8, Params: p, Cs: 7, Clusters: 2, Route: route}},
		Seeds:      []int64{1, 2},
	}
}

// TestSweepShardedPoint: a point with Clusters > 1 runs on the sharded
// dispatcher and the cell carries the merged global summary — pinned by
// replaying the same (workload, algorithm) directly through dispatch.Run.
func TestSweepShardedPoint(t *testing.T) {
	s := shardedSweep(dispatch.RouteLeastWork)
	r, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	params := s.Points[0].Params
	params.Seed = s.Seeds[0]
	w, err := workload.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	a := MustByName("EASY")
	ref, err := dispatch.Run(w, dispatch.Config{
		Clusters: 2,
		Route:    dispatch.RouteLeastWork,
		Engine: engine.Config{
			M: params.M, Unit: params.Unit,
			ProcessECC: a.ECC, MaxECCPerJob: params.MaxECCPerJob,
		},
		NewScheduler: func() sched.Scheduler { return a.New(s.Points[0]) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Cells[0][0].PerSeed[0]; got != ref.Merged {
		t.Fatalf("sweep cell summary %+v != direct dispatch merge %+v", got, ref.Merged)
	}
	if r.Cells[0][0].Summary.Utilization <= 0 {
		t.Fatal("sharded cell summary empty")
	}
}

// TestSweepShardedDeterministicAcrossWorkers: sharded points keep the
// sweep's worker-count independence.
func TestSweepShardedDeterministicAcrossWorkers(t *testing.T) {
	r1, err := shardedSweep(dispatch.RouteBestFit).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := shardedSweep(dispatch.RouteBestFit).Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for ai := range r1.Cells {
		for pi := range r1.Cells[ai] {
			if r1.Cells[ai][pi].Summary != r4.Cells[ai][pi].Summary {
				t.Fatalf("sharded cell (%d,%d) differs across worker counts", ai, pi)
			}
		}
	}
}

// TestSweepRouteValidation: a Route on a non-sharded point and an unknown
// policy name both fail before any workload is generated.
func TestSweepRouteValidation(t *testing.T) {
	s := shardedSweep(dispatch.RouteLeastWork)
	s.Points[0].Clusters = 1
	if _, err := s.Run(1); err == nil || !strings.Contains(err.Error(), "without Clusters") {
		t.Fatalf("Route without Clusters accepted: %v", err)
	}
	s = shardedSweep("no-such-policy")
	if _, err := s.Run(1); err == nil || !strings.Contains(err.Error(), "unknown routing policy") {
		t.Fatalf("unknown policy accepted: %v", err)
	}
}
