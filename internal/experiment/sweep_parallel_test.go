package experiment

import (
	"reflect"
	"testing"

	"elastisched/internal/workload"
)

// parallelSweep is a 2-algorithm x 3-point x 3-seed panel: large enough
// that run-level tasks interleave across workers, small enough for a unit
// test.
func parallelSweep() *Sweep {
	p := workload.DefaultParams()
	p.N = 60
	point := func(load float64) Point {
		q := p
		q.TargetLoad = load
		return Point{X: load, Params: q, Cs: 7}
	}
	return &Sweep{
		ID: "par", Title: "par", XLabel: "Load",
		Algorithms: algos("EASY", "Delayed-LOS"),
		Points:     []Point{point(0.7), point(0.8), point(0.9)},
		Seeds:      []int64{1, 2, 3},
	}
}

// TestSweepDeepEqualAcrossWorkerCounts requires the full Result — every
// per-seed summary, ECC tally, realized load, and event count — to be
// byte-identical between a serial run and an oversubscribed parallel run.
func TestSweepDeepEqualAcrossWorkerCounts(t *testing.T) {
	r1, err := parallelSweep().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := parallelSweep().Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Cells, r8.Cells) {
		t.Fatal("sweep cells differ between Run(1) and Run(8)")
	}
	if r1.WorkloadsGenerated != r8.WorkloadsGenerated || r1.WorkloadsReused != r8.WorkloadsReused {
		t.Fatalf("cache counters differ: serial %d/%d, parallel %d/%d",
			r1.WorkloadsGenerated, r1.WorkloadsReused, r8.WorkloadsGenerated, r8.WorkloadsReused)
	}
}

// TestWorkloadCacheCounters verifies the cache contract: Generate runs once
// per (point, seed) and every other algorithm's run is a hit.
func TestWorkloadCacheCounters(t *testing.T) {
	for _, workers := range []int{1, 8} {
		s := parallelSweep()
		r, err := s.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		nRuns := len(s.Algorithms) * len(s.Points) * len(s.Seeds)
		wantGen := len(s.Points) * len(s.Seeds)
		if r.WorkloadsGenerated != wantGen {
			t.Errorf("workers=%d: generated %d workloads, want %d", workers, r.WorkloadsGenerated, wantGen)
		}
		if r.WorkloadsReused != nRuns-wantGen {
			t.Errorf("workers=%d: reused %d workloads, want %d", workers, r.WorkloadsReused, nRuns-wantGen)
		}
	}
}

// TestWorkloadCacheConcurrentFirstUse hammers the cache's first-use path:
// many algorithms race for the same (point, seed) entries. Run under
// -race in CI.
func TestWorkloadCacheConcurrentFirstUse(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 30
	s := &Sweep{
		ID: "race", Title: "race", XLabel: "Load",
		Algorithms: algos("FCFS", "EASY", "LOS", "Delayed-LOS"),
		Points:     []Point{{X: 0.8, Params: p, Cs: 7}},
		Seeds:      []int64{1, 2},
	}
	r, err := s.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkloadsGenerated != 2 {
		t.Errorf("generated %d workloads, want 2", r.WorkloadsGenerated)
	}
	if r.WorkloadsReused != 6 {
		t.Errorf("reused %d workloads, want 6", r.WorkloadsReused)
	}
}

// TestSweepErrorIsDeterministic makes a mid-sweep point fail generation and
// checks the error surfaces identically at every worker count.
func TestSweepErrorIsDeterministic(t *testing.T) {
	s := parallelSweep()
	bad := s.Points[1]
	bad.Params.M = -1
	s.Points[1] = bad
	var msgs []string
	for _, workers := range []int{1, 4} {
		_, err := s.Run(workers)
		if err == nil {
			t.Fatalf("workers=%d: invalid point accepted", workers)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error differs across worker counts:\n  %s\n  %s", msgs[0], msgs[1])
	}
}
