// Package experiment defines the paper's evaluation as code: one Sweep per
// figure panel, improvement tables for Tables IV-VII, and a parallel runner
// that executes every (algorithm, point, seed) combination on a worker pool
// with deterministic per-run seeding.
package experiment

import (
	"fmt"
	"sort"
	"strings"

	"elastisched/internal/core"
	"elastisched/internal/sched"
)

// Algorithm names a scheduling policy with an optional ECC processor, as
// enumerated in the paper's Table III, plus the related-work baselines.
type Algorithm struct {
	// Name is the Table III identifier (e.g. "Delayed-LOS-E").
	Name string
	// ECC attaches the Elastic Control Command processor (the -E variants).
	ECC bool
	// New constructs a fresh policy instance for one run. Policies carry
	// scratch state, so instances are never shared between runs.
	New func(pt Point) sched.Scheduler
}

// registry builds the full algorithm table. cs and lookahead come from the
// sweep point so C_s calibration sweeps and lookahead ablations are plain
// parameter sweeps.
func registry() map[string]Algorithm {
	easy := func(ded bool) func(Point) sched.Scheduler {
		return func(Point) sched.Scheduler { return &sched.EASY{Ded: ded} }
	}
	los := func(ded bool) func(Point) sched.Scheduler {
		return func(pt Point) sched.Scheduler {
			l := core.NewLOS(ded)
			if pt.Lookahead > 0 {
				l.Lookahead = pt.Lookahead
			}
			return l
		}
	}
	delayed := func(pt Point) sched.Scheduler {
		d := core.NewDelayedLOS(pt.EffectiveCs())
		if pt.Lookahead > 0 {
			d.Lookahead = pt.Lookahead
		}
		return d
	}
	hybrid := func(pt Point) sched.Scheduler {
		h := core.NewHybridLOS(pt.EffectiveCs())
		if pt.Lookahead > 0 {
			h.SetLookahead(pt.Lookahead)
		}
		return h
	}
	m := map[string]Algorithm{
		"EASY":    {Name: "EASY", New: easy(false)},
		"EASY-D":  {Name: "EASY-D", New: easy(true)},
		"EASY-E":  {Name: "EASY-E", ECC: true, New: easy(false)},
		"EASY-DE": {Name: "EASY-DE", ECC: true, New: easy(true)},
		"LOS":     {Name: "LOS", New: los(false)},
		"LOS-D":   {Name: "LOS-D", New: los(true)},
		"LOS-E":   {Name: "LOS-E", ECC: true, New: los(false)},
		"LOS-DE":  {Name: "LOS-DE", ECC: true, New: los(true)},

		"Delayed-LOS":   {Name: "Delayed-LOS", New: delayed},
		"Delayed-LOS-E": {Name: "Delayed-LOS-E", ECC: true, New: delayed},
		"Hybrid-LOS":    {Name: "Hybrid-LOS", New: hybrid},
		"Hybrid-LOS-E":  {Name: "Hybrid-LOS-E", ECC: true, New: hybrid},

		"LOS+": {Name: "LOS+", New: func(pt Point) sched.Scheduler {
			l := core.NewLOSPlus()
			if pt.Lookahead > 0 {
				l.Lookahead = pt.Lookahead
			}
			return l
		}},
		"CONS-D": {Name: "CONS-D", New: func(Point) sched.Scheduler { return &sched.ConservativeD{} }},
		"FCFS":   {Name: "FCFS", New: func(Point) sched.Scheduler { return sched.FCFS{} }},
		"SJF":    {Name: "SJF", New: func(Point) sched.Scheduler { return sched.SJF{} }},
		"LJF":    {Name: "LJF", New: func(Point) sched.Scheduler { return sched.LJF{} }},
		"CONS":   {Name: "CONS", New: func(Point) sched.Scheduler { return &sched.Conservative{} }},
		"Adaptive": {Name: "Adaptive", New: func(pt Point) sched.Scheduler {
			return core.NewAdaptive(pt.EffectiveCs())
		}},
	}
	return m
}

// ByName resolves a Table III (or baseline) algorithm name. An "-M" suffix
// resolves to the base algorithm wrapped in sched.AutoResize — the
// malleability decorator applies to every registered policy, so "EASY-M",
// "CONS-M", "Delayed-LOS-E-M", ... all work without their own entries.
func ByName(name string) (Algorithm, error) {
	if a, ok := registry()[name]; ok {
		return a, nil
	}
	if base, ok := strings.CutSuffix(name, "-M"); ok {
		a, err := ByName(base)
		if err != nil {
			return Algorithm{}, fmt.Errorf("experiment: unknown algorithm %q (no base for -M: %v)", name, err)
		}
		inner := a.New
		a.Name = name
		a.New = func(pt Point) sched.Scheduler { return sched.NewAutoResize(inner(pt)) }
		return a, nil
	}
	return Algorithm{}, fmt.Errorf("experiment: unknown algorithm %q (known: %v, plus -M variants)", name, Names())
}

// MustByName is ByName for static experiment definitions.
func MustByName(name string) Algorithm {
	a, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names lists the registered algorithm names, sorted.
func Names() []string {
	m := registry()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
