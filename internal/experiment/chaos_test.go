package experiment

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"elastisched/internal/audit"
	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/fault"
	"elastisched/internal/metrics"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// chaosPolicies are the retry policies the chaos harness cycles through,
// one per seed: every (mode, restart, budget, backoff) corner gets hit
// across the seed sweep.
var chaosPolicies = []fault.RetryPolicy{
	{}, // requeue, full restart, unlimited retries, no backoff
	{Restart: fault.RemainingRuntime, Backoff: 30},
	{MaxRetries: 2, Backoff: 10},
	{Restart: fault.RemainingRuntime, MaxRetries: 1},
	{Mode: fault.Drop},
}

// chaosVariant selects the machine/malleability/checkpointing corner a
// chaos run exercises. The zero value is the classic scatter, rigid
// configuration. plain drops elastic commands from the workload so the
// audit's per-attempt replay rules (restart binary, checkpoint chain)
// engage instead of deferring to the elastic work-conservation replay.
type chaosVariant struct {
	malleable  bool
	contiguous bool
	overhead   int64
	plain      bool
	ckpt       fault.CheckpointPolicy
	ckptIvl    int64
	ckptCost   int64
}

// chaosWorkload generates a small but eventful workload for fault runs:
// elastic commands always, size elasticity and dedicated jobs on the seeds
// and policies that exercise them, and malleable bounds on most batch jobs
// when the variant resizes.
func chaosWorkload(t *testing.T, hetero, sizeECC bool, v chaosVariant, seed int64) *cwf.Workload {
	t.Helper()
	p := workload.DefaultParams()
	p.N = 80
	p.Seed = seed
	p.PE = 0.2
	p.PR = 0.1
	p.MaxECCPerJob = 2
	p.SizeECC = sizeECC
	if v.plain {
		p.PE, p.PR, p.SizeECC = 0, 0, false
	}
	if hetero {
		p.PD = 0.2
	}
	if v.malleable {
		p.PM = 0.7
	}
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// chaosConfig builds the engine config for one (algorithm, seed) chaos run.
// The fault trace is a pure function of the seed, so every algorithm faces
// the same outages.
func chaosConfig(a Algorithm, seed int64, v chaosVariant) engine.Config {
	pt := Point{Cs: 5}
	return engine.Config{
		M: 320, Unit: 32,
		Scheduler:      a.New(pt),
		ProcessECC:     a.ECC,
		Contiguous:     v.contiguous,
		Malleable:      v.malleable,
		ResizeOverhead: v.overhead,
		Faults: &engine.FaultConfig{
			MTBF: 40000, MTTR: 2000, Seed: seed,
			Retry:              chaosPolicies[int(seed)%len(chaosPolicies)],
			Checkpoint:         v.ckpt,
			CheckpointInterval: v.ckptIvl,
			CheckpointCost:     v.ckptCost,
		},
	}
}

// chaosRun executes one algorithm under one seeded fault trace, audits the
// recorded schedule with the fault-aware oracle, and returns the run's
// summary so callers can assert the property is not vacuous.
func chaosRun(t *testing.T, a Algorithm, seed int64, v chaosVariant) metrics.Summary {
	t.Helper()
	hetero := a.New(Point{Cs: 5}).Heterogeneous()
	sizeECC := a.ECC && seed%4 == 0
	w := chaosWorkload(t, hetero, sizeECC, v, seed)

	cfg := chaosConfig(a, seed, v)
	rec := trace.NewRecorder(320, 32)
	cfg.Observer = rec
	s, err := engine.New(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := s.Load(w); err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	r, err := s.Result()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	// Every submitted job must be accounted for: finished or dropped.
	if got := r.Summary.JobsFinished + r.Summary.DroppedJobs; got != len(w.Jobs) {
		t.Errorf("seed %d: %d finished + %d dropped != %d submitted",
			seed, r.Summary.JobsFinished, r.Summary.DroppedJobs, len(w.Jobs))
	}
	if r.Summary.RetriedJobs > 0 && r.Summary.KilledJobs == 0 {
		t.Errorf("seed %d: %d retries with no kills", seed, r.Summary.RetriedJobs)
	}

	elastic := a.ECC && len(w.Commands) > 0
	rep := audit.Check(w, rec.Spans(), audit.Options{
		M: 320, Unit: 32,
		Elastic:        elastic,
		SizeElastic:    a.ECC && w.SizeCommandCount() > 0,
		Malleable:      v.malleable,
		ResizeOverhead: v.overhead,
		Faults:         s.FaultTrace(),
		Retry:          cfg.Faults.Retry,

		Checkpoint:         cfg.Faults.Checkpoint,
		CheckpointInterval: cfg.Faults.ResolvedCheckpointInterval(),
		CheckpointCost:     cfg.Faults.CheckpointCost,
		MTBF:               cfg.Faults.MTBF,
	})
	if err := rep.Error(); err != nil {
		t.Errorf("seed %d: %v (all: %v)", seed, err, rep.Violations)
	}
	if r.Summary.DownProcSeconds == 0 {
		t.Errorf("seed %d: no downtime recorded; the fault trace never fired", seed)
	}
	return r.Summary
}

// TestChaos is the chaos harness property: every registry algorithm, run
// under many independently seeded fault traces and retry policies, must
// produce a schedule the fault-aware audit oracle certifies violation-free.
func TestChaos(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 3
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := MustByName(name)
			killed := 0
			for i := 0; i < seeds; i++ {
				killed += chaosRun(t, a, int64(1000+i), chaosVariant{}).KilledJobs
			}
			if !testing.Short() && killed == 0 {
				t.Errorf("no job killed across %d seeds; the chaos property is vacuous", seeds)
			}
		})
	}
}

// TestChaosSmoke is the CI-sized slice of the chaos property: two
// representative algorithms (one rigid, one elastic replanner) under a few
// traces. Cheap enough to run under -race on every push.
func TestChaosSmoke(t *testing.T) {
	for _, name := range []string{"EASY", "CONS"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := MustByName(name)
			for i := 0; i < 3; i++ {
				chaosRun(t, a, int64(2000+i), chaosVariant{})
			}
		})
	}
}

// TestChaosMalleable is the malleability chaos property: -M variants under
// seeded fault traces, on scatter and on contiguous machines, must produce
// schedules the oracle certifies against the resize laws — bounds
// respected, work conserved through every reshape, no resize of dedicated
// or rigid jobs — and the runs must actually resize (non-vacuous).
func TestChaosMalleable(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	variants := []struct {
		name string
		v    chaosVariant
	}{
		{"scatter", chaosVariant{malleable: true}},
		{"contiguous", chaosVariant{malleable: true, contiguous: true, overhead: 5}},
	}
	for _, name := range []string{"EASY-M", "Delayed-LOS-M", "CONS-M", "Hybrid-LOS-E-M"} {
		for _, vr := range variants {
			vr := vr
			a := MustByName(name)
			t.Run(name+"/"+vr.name, func(t *testing.T) {
				resizes, killed := 0, 0
				for i := 0; i < seeds; i++ {
					sum := chaosRun(t, a, int64(3000+i), vr.v)
					resizes += sum.SchedulerResizes
					killed += sum.KilledJobs
				}
				if !testing.Short() && resizes == 0 {
					t.Errorf("no scheduler resize across %d seeds; the malleability property is vacuous", seeds)
				}
				_ = killed // kills may legitimately reach zero when every victim shrinks
			})
		}
	}
}

// TestChaosMalleableSmoke is the CI-sized Contiguous×Faults×malleable
// matrix cell: the configuration the engine rejected outright before true
// malleability, now required to run violation-free under the full oracle.
func TestChaosMalleableSmoke(t *testing.T) {
	a := MustByName("EASY-M")
	v := chaosVariant{malleable: true, contiguous: true, overhead: 3}
	resizes := 0
	for i := 0; i < 3; i++ {
		resizes += chaosRun(t, a, int64(4000+i), v).SchedulerResizes
	}
	if resizes == 0 {
		t.Error("no scheduler resize across the smoke seeds; the matrix cell is vacuous")
	}
}

// chaosCheckpointCells is the checkpoint-policy axis of the chaos matrix.
// none/periodic/daly run on the plain (command-free) workload so every
// batch attempt is held to the audit's checkpoint chain replay; on-resize
// needs a malleable machine to take checkpoints at all, and composes the
// chain rule with the resize work-conservation replay.
var chaosCheckpointCells = []struct {
	name string
	v    chaosVariant
}{
	{"none", chaosVariant{plain: true}},
	{"periodic", chaosVariant{plain: true, ckpt: fault.CheckpointPeriodic, ckptIvl: 900, ckptCost: 40}},
	{"on-resize", chaosVariant{malleable: true, overhead: 3, ckpt: fault.CheckpointOnResize, ckptCost: 40}},
	{"daly", chaosVariant{plain: true, ckpt: fault.CheckpointDaly, ckptCost: 40}},
}

// TestChaosCheckpoint is the checkpoint chaos property: every registry
// algorithm, under every checkpoint policy and many seeded fault traces,
// must produce a schedule the checkpoint-aware oracle certifies — each
// completed attempt occupying exactly its runtime plus checkpoint costs,
// each requeue restarting from the last checkpoint — and the periodic and
// daly cells must actually take checkpoints (non-vacuous).
func TestChaosCheckpoint(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 3
	}
	for _, name := range Names() {
		for _, cell := range chaosCheckpointCells {
			name, cell := name, cell
			t.Run(name+"/"+cell.name, func(t *testing.T) {
				a := MustByName(name)
				ckpts, killed := 0, 0
				for i := 0; i < seeds; i++ {
					sum := chaosRun(t, a, int64(5000+i), cell.v)
					ckpts += sum.CheckpointsTaken
					killed += sum.KilledJobs
				}
				if testing.Short() {
					return
				}
				switch cell.v.ckpt {
				case fault.CheckpointNone:
					if ckpts != 0 {
						t.Errorf("policy none took %d checkpoints", ckpts)
					}
				case fault.CheckpointPeriodic, fault.CheckpointDaly:
					if ckpts == 0 {
						t.Errorf("no checkpoint taken across %d seeds; the chain property is vacuous", seeds)
					}
					if killed == 0 {
						t.Errorf("no job killed across %d seeds; restarts from checkpoints untested", seeds)
					}
				}
			})
		}
	}
}

// TestChaosCheckpointSmoke is the CI-sized slice of the checkpoint chaos
// property: two representative algorithms under every policy and a few
// traces, cheap enough to run under -race on every push. The on-resize
// cell doubles as the -M × Contiguous × Faults × checkpoint matrix corner.
func TestChaosCheckpointSmoke(t *testing.T) {
	for _, name := range []string{"EASY", "CONS"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := MustByName(name)
			for _, cell := range chaosCheckpointCells {
				v := cell.v
				if v.ckpt == fault.CheckpointOnResize {
					v.contiguous = true
				}
				for i := 0; i < 3; i++ {
					chaosRun(t, a, int64(6000+i), v)
				}
			}
		})
	}
}

// TestChaosCheckpointMalleable composes checkpointing with true
// malleability on the -M schedulers: periodic checkpoints while the
// scheduler shrinks and expands jobs, on scatter and contiguous machines.
// Resized jobs defer to the work-conservation replay; the untouched ones
// stay on the chain rule — both must hold at once.
func TestChaosCheckpointMalleable(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	variants := []struct {
		name string
		v    chaosVariant
	}{
		{"scatter", chaosVariant{malleable: true, ckpt: fault.CheckpointPeriodic, ckptIvl: 900, ckptCost: 40}},
		{"contiguous", chaosVariant{malleable: true, contiguous: true, overhead: 5, ckpt: fault.CheckpointOnResize, ckptCost: 40}},
	}
	for _, name := range []string{"EASY-M", "Delayed-LOS-M"} {
		for _, vr := range variants {
			name, vr := name, vr
			t.Run(name+"/"+vr.name, func(t *testing.T) {
				a := MustByName(name)
				ckpts := 0
				for i := 0; i < seeds; i++ {
					ckpts += chaosRun(t, a, int64(7000+i), vr.v).CheckpointsTaken
				}
				if !testing.Short() && ckpts == 0 {
					t.Errorf("no checkpoint taken across %d seeds; the malleable checkpoint cell is vacuous", seeds)
				}
			})
		}
	}
}

// TestChaosCheckpointSnapshotRoundTrip snapshots a checkpointed run
// mid-outage — with pending checkpoint events and per-job checkpoint
// progress in flight — pushes it through the JSON encoding into a fresh
// session, and requires the restored run to finish with a Result
// deep-equal to the uninterrupted one. The daly row additionally proves
// the derived interval survives the wire in resolved periodic form.
func TestChaosCheckpointSnapshotRoundTrip(t *testing.T) {
	cells := []struct {
		algo string
		name string
		v    chaosVariant
	}{
		{"EASY", "periodic", chaosVariant{plain: true, ckpt: fault.CheckpointPeriodic, ckptIvl: 900, ckptCost: 40}},
		{"Delayed-LOS", "daly", chaosVariant{plain: true, ckpt: fault.CheckpointDaly, ckptCost: 40}},
		{"EASY-M", "on-resize", chaosVariant{malleable: true, overhead: 3, ckpt: fault.CheckpointOnResize, ckptCost: 40}},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.algo+"/"+cell.name, func(t *testing.T) {
			a := MustByName(cell.algo)
			seed := int64(7)
			hetero := a.New(Point{Cs: 5}).Heterogeneous()
			w := chaosWorkload(t, hetero, false, cell.v, seed)

			runFull := func() *engine.Result {
				s, err := engine.New(chaosConfig(a, seed, cell.v))
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Load(w); err != nil {
					t.Fatal(err)
				}
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				r, err := s.Result()
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			want := runFull()
			if cell.v.ckpt != fault.CheckpointOnResize && want.Summary.CheckpointsTaken == 0 {
				t.Fatalf("uninterrupted run took no checkpoints; the round trip is vacuous")
			}

			live, err := engine.New(chaosConfig(a, seed, cell.v))
			if err != nil {
				t.Fatal(err)
			}
			if err := live.Load(w); err != nil {
				t.Fatal(err)
			}
			ft := live.FaultTrace()
			if ft == nil || len(ft.Events) == 0 {
				t.Fatal("no fault trace generated")
			}
			var mid int64 = -1
			for _, e := range ft.Events {
				if e.Kind == fault.Fail {
					mid = e.Time + 1
					break
				}
			}
			if mid < 0 {
				t.Fatal("trace has no failure event")
			}
			if err := live.RunUntil(mid); err != nil {
				t.Fatal(err)
			}
			sn, err := live.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if sn.Checkpoint == "" {
				t.Fatalf("snapshot carries no checkpoint policy: %+v", sn)
			}
			var buf bytes.Buffer
			if err := sn.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := engine.DecodeSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := engine.New(chaosConfig(a, seed, cell.v))
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Run(); err != nil {
				t.Fatal(err)
			}
			got, err := resumed.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored checkpointed run diverged at snapshot t=%d\ngot:  %+v\nwant: %+v",
					sn.Now, got, want)
			}
		})
	}
}

// TestChaosSnapshotRoundTrip snapshots every algorithm mid-outage — after
// the first failure has been applied but before its repair — pushes the
// snapshot through its JSON encoding into a fresh session, and requires the
// restored run to finish with a Result deep-equal to the uninterrupted one.
func TestChaosSnapshotRoundTrip(t *testing.T) {
	for _, name := range append(Names(), "EASY-M", "Delayed-LOS-M") {
		name := name
		t.Run(name, func(t *testing.T) {
			a := MustByName(name)
			seed := int64(7)
			variant := chaosVariant{}
			if strings.HasSuffix(name, "-M") {
				// The -M rows round-trip the malleable state: job bounds,
				// rescaled requirements and the v3 config-match fields.
				variant = chaosVariant{malleable: true, overhead: 3}
			}
			hetero := a.New(Point{Cs: 5}).Heterogeneous()
			w := chaosWorkload(t, hetero, false, variant, seed)

			run := func(until bool) (*engine.Session, *engine.Result) {
				s, err := engine.New(chaosConfig(a, seed, variant))
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Load(w); err != nil {
					t.Fatal(err)
				}
				if until {
					return s, nil
				}
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				r, err := s.Result()
				if err != nil {
					t.Fatal(err)
				}
				return s, r
			}
			_, want := run(false)

			live, _ := run(true)
			ft := live.FaultTrace()
			if ft == nil || len(ft.Events) == 0 {
				t.Fatal("no fault trace generated; MTBF too large for this workload span")
			}
			var mid int64 = -1
			for _, e := range ft.Events {
				if e.Kind == fault.Fail {
					mid = e.Time + 1
					break
				}
			}
			if mid < 0 {
				t.Fatal("trace has no failure event")
			}
			if err := live.RunUntil(mid); err != nil {
				t.Fatal(err)
			}
			sn, err := live.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if len(sn.Machine.Health) == 0 {
				t.Fatalf("snapshot at t=%d carries no group health; not mid-outage", sn.Now)
			}
			var buf bytes.Buffer
			if err := sn.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := engine.DecodeSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := engine.New(chaosConfig(a, seed, variant))
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Run(); err != nil {
				t.Fatal(err)
			}
			got, err := resumed.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored mid-fault run diverged at snapshot t=%d\ngot:  %+v\nwant: %+v",
					sn.Now, got, want)
			}
		})
	}
}

// TestSweepFaultKnobs wires the Point-level fault knobs end to end: a
// two-point sweep (faults off / faults on) must run clean, keep the
// fault-free point byte-identical to a standalone run, and report downtime
// and kills only at the faulty point.
func TestSweepFaultKnobs(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 60
	base := Point{X: 0, Params: p, Cs: 5}
	faulty := base
	faulty.X = 1
	faulty.MTBF = 30000
	faulty.MTTR = 2000
	faulty.Retry = fault.RetryPolicy{Restart: fault.RemainingRuntime}

	sw := &Sweep{
		ID:         "chaos-knobs",
		Algorithms: []Algorithm{MustByName("EASY")},
		Points:     []Point{base, faulty},
		Seeds:      []int64{3, 4},
	}
	res, err := sw.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	clean, hurt := res.Cells[0][0].Summary, res.Cells[0][1].Summary
	if clean.KilledJobs != 0 || clean.DownProcSeconds != 0 {
		t.Errorf("fault-free point reports faults: %+v", clean)
	}
	if hurt.DownProcSeconds == 0 {
		t.Errorf("faulty point reports no downtime: %+v", hurt)
	}

	// The fault-free point must be bit-identical to a plain engine run:
	// enabling the subsystem elsewhere in the sweep cannot perturb it.
	pp := p
	pp.Seed = 3
	w, err := workload.Generate(pp)
	if err != nil {
		t.Fatal(err)
	}
	a := MustByName("EASY")
	r, err := engine.Run(w, engine.Config{
		M: pp.M, Unit: pp.Unit, Scheduler: a.New(base), ProcessECC: a.ECC,
		MaxECCPerJob: pp.MaxECCPerJob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", res.Cells[0][0].PerSeed[0]), fmt.Sprintf("%+v", r.Summary); got != want {
		t.Errorf("fault-free sweep cell diverged from standalone run\ngot:  %s\nwant: %s", got, want)
	}
}
