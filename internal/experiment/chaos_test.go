package experiment

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"elastisched/internal/audit"
	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/fault"
	"elastisched/internal/metrics"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// chaosPolicies are the retry policies the chaos harness cycles through,
// one per seed: every (mode, restart, budget, backoff) corner gets hit
// across the seed sweep.
var chaosPolicies = []fault.RetryPolicy{
	{}, // requeue, full restart, unlimited retries, no backoff
	{Restart: fault.RemainingRuntime, Backoff: 30},
	{MaxRetries: 2, Backoff: 10},
	{Restart: fault.RemainingRuntime, MaxRetries: 1},
	{Mode: fault.Drop},
}

// chaosVariant selects the machine/malleability corner a chaos run
// exercises. The zero value is the classic scatter, rigid configuration.
type chaosVariant struct {
	malleable  bool
	contiguous bool
	overhead   int64
}

// chaosWorkload generates a small but eventful workload for fault runs:
// elastic commands always, size elasticity and dedicated jobs on the seeds
// and policies that exercise them, and malleable bounds on most batch jobs
// when the variant resizes.
func chaosWorkload(t *testing.T, hetero, sizeECC bool, v chaosVariant, seed int64) *cwf.Workload {
	t.Helper()
	p := workload.DefaultParams()
	p.N = 80
	p.Seed = seed
	p.PE = 0.2
	p.PR = 0.1
	p.MaxECCPerJob = 2
	p.SizeECC = sizeECC
	if hetero {
		p.PD = 0.2
	}
	if v.malleable {
		p.PM = 0.7
	}
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// chaosConfig builds the engine config for one (algorithm, seed) chaos run.
// The fault trace is a pure function of the seed, so every algorithm faces
// the same outages.
func chaosConfig(a Algorithm, seed int64, v chaosVariant) engine.Config {
	pt := Point{Cs: 5}
	return engine.Config{
		M: 320, Unit: 32,
		Scheduler:      a.New(pt),
		ProcessECC:     a.ECC,
		Contiguous:     v.contiguous,
		Malleable:      v.malleable,
		ResizeOverhead: v.overhead,
		Faults: &engine.FaultConfig{
			MTBF: 40000, MTTR: 2000, Seed: seed,
			Retry: chaosPolicies[int(seed)%len(chaosPolicies)],
		},
	}
}

// chaosRun executes one algorithm under one seeded fault trace, audits the
// recorded schedule with the fault-aware oracle, and returns the run's
// summary so callers can assert the property is not vacuous.
func chaosRun(t *testing.T, a Algorithm, seed int64, v chaosVariant) metrics.Summary {
	t.Helper()
	hetero := a.New(Point{Cs: 5}).Heterogeneous()
	sizeECC := a.ECC && seed%4 == 0
	w := chaosWorkload(t, hetero, sizeECC, v, seed)

	cfg := chaosConfig(a, seed, v)
	rec := trace.NewRecorder(320, 32)
	cfg.Observer = rec
	s, err := engine.New(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := s.Load(w); err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	r, err := s.Result()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	// Every submitted job must be accounted for: finished or dropped.
	if got := r.Summary.JobsFinished + r.Summary.DroppedJobs; got != len(w.Jobs) {
		t.Errorf("seed %d: %d finished + %d dropped != %d submitted",
			seed, r.Summary.JobsFinished, r.Summary.DroppedJobs, len(w.Jobs))
	}
	if r.Summary.RetriedJobs > 0 && r.Summary.KilledJobs == 0 {
		t.Errorf("seed %d: %d retries with no kills", seed, r.Summary.RetriedJobs)
	}

	elastic := a.ECC && len(w.Commands) > 0
	rep := audit.Check(w, rec.Spans(), audit.Options{
		M: 320, Unit: 32,
		Elastic:        elastic,
		SizeElastic:    a.ECC && w.SizeCommandCount() > 0,
		Malleable:      v.malleable,
		ResizeOverhead: v.overhead,
		Faults:         s.FaultTrace(),
		Retry:          cfg.Faults.Retry,
	})
	if err := rep.Error(); err != nil {
		t.Errorf("seed %d: %v (all: %v)", seed, err, rep.Violations)
	}
	if r.Summary.DownProcSeconds == 0 {
		t.Errorf("seed %d: no downtime recorded; the fault trace never fired", seed)
	}
	return r.Summary
}

// TestChaos is the chaos harness property: every registry algorithm, run
// under many independently seeded fault traces and retry policies, must
// produce a schedule the fault-aware audit oracle certifies violation-free.
func TestChaos(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 3
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := MustByName(name)
			killed := 0
			for i := 0; i < seeds; i++ {
				killed += chaosRun(t, a, int64(1000+i), chaosVariant{}).KilledJobs
			}
			if !testing.Short() && killed == 0 {
				t.Errorf("no job killed across %d seeds; the chaos property is vacuous", seeds)
			}
		})
	}
}

// TestChaosSmoke is the CI-sized slice of the chaos property: two
// representative algorithms (one rigid, one elastic replanner) under a few
// traces. Cheap enough to run under -race on every push.
func TestChaosSmoke(t *testing.T) {
	for _, name := range []string{"EASY", "CONS"} {
		name := name
		t.Run(name, func(t *testing.T) {
			a := MustByName(name)
			for i := 0; i < 3; i++ {
				chaosRun(t, a, int64(2000+i), chaosVariant{})
			}
		})
	}
}

// TestChaosMalleable is the malleability chaos property: -M variants under
// seeded fault traces, on scatter and on contiguous machines, must produce
// schedules the oracle certifies against the resize laws — bounds
// respected, work conserved through every reshape, no resize of dedicated
// or rigid jobs — and the runs must actually resize (non-vacuous).
func TestChaosMalleable(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	variants := []struct {
		name string
		v    chaosVariant
	}{
		{"scatter", chaosVariant{malleable: true}},
		{"contiguous", chaosVariant{malleable: true, contiguous: true, overhead: 5}},
	}
	for _, name := range []string{"EASY-M", "Delayed-LOS-M", "CONS-M", "Hybrid-LOS-E-M"} {
		for _, vr := range variants {
			vr := vr
			a := MustByName(name)
			t.Run(name+"/"+vr.name, func(t *testing.T) {
				resizes, killed := 0, 0
				for i := 0; i < seeds; i++ {
					sum := chaosRun(t, a, int64(3000+i), vr.v)
					resizes += sum.SchedulerResizes
					killed += sum.KilledJobs
				}
				if !testing.Short() && resizes == 0 {
					t.Errorf("no scheduler resize across %d seeds; the malleability property is vacuous", seeds)
				}
				_ = killed // kills may legitimately reach zero when every victim shrinks
			})
		}
	}
}

// TestChaosMalleableSmoke is the CI-sized Contiguous×Faults×malleable
// matrix cell: the configuration the engine rejected outright before true
// malleability, now required to run violation-free under the full oracle.
func TestChaosMalleableSmoke(t *testing.T) {
	a := MustByName("EASY-M")
	v := chaosVariant{malleable: true, contiguous: true, overhead: 3}
	resizes := 0
	for i := 0; i < 3; i++ {
		resizes += chaosRun(t, a, int64(4000+i), v).SchedulerResizes
	}
	if resizes == 0 {
		t.Error("no scheduler resize across the smoke seeds; the matrix cell is vacuous")
	}
}

// TestChaosSnapshotRoundTrip snapshots every algorithm mid-outage — after
// the first failure has been applied but before its repair — pushes the
// snapshot through its JSON encoding into a fresh session, and requires the
// restored run to finish with a Result deep-equal to the uninterrupted one.
func TestChaosSnapshotRoundTrip(t *testing.T) {
	for _, name := range append(Names(), "EASY-M", "Delayed-LOS-M") {
		name := name
		t.Run(name, func(t *testing.T) {
			a := MustByName(name)
			seed := int64(7)
			variant := chaosVariant{}
			if strings.HasSuffix(name, "-M") {
				// The -M rows round-trip the malleable state: job bounds,
				// rescaled requirements and the v3 config-match fields.
				variant = chaosVariant{malleable: true, overhead: 3}
			}
			hetero := a.New(Point{Cs: 5}).Heterogeneous()
			w := chaosWorkload(t, hetero, false, variant, seed)

			run := func(until bool) (*engine.Session, *engine.Result) {
				s, err := engine.New(chaosConfig(a, seed, variant))
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Load(w); err != nil {
					t.Fatal(err)
				}
				if until {
					return s, nil
				}
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
				r, err := s.Result()
				if err != nil {
					t.Fatal(err)
				}
				return s, r
			}
			_, want := run(false)

			live, _ := run(true)
			ft := live.FaultTrace()
			if ft == nil || len(ft.Events) == 0 {
				t.Fatal("no fault trace generated; MTBF too large for this workload span")
			}
			var mid int64 = -1
			for _, e := range ft.Events {
				if e.Kind == fault.Fail {
					mid = e.Time + 1
					break
				}
			}
			if mid < 0 {
				t.Fatal("trace has no failure event")
			}
			if err := live.RunUntil(mid); err != nil {
				t.Fatal(err)
			}
			sn, err := live.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if len(sn.Machine.Health) == 0 {
				t.Fatalf("snapshot at t=%d carries no group health; not mid-outage", sn.Now)
			}
			var buf bytes.Buffer
			if err := sn.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			decoded, err := engine.DecodeSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := engine.New(chaosConfig(a, seed, variant))
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Run(); err != nil {
				t.Fatal(err)
			}
			got, err := resumed.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored mid-fault run diverged at snapshot t=%d\ngot:  %+v\nwant: %+v",
					sn.Now, got, want)
			}
		})
	}
}

// TestSweepFaultKnobs wires the Point-level fault knobs end to end: a
// two-point sweep (faults off / faults on) must run clean, keep the
// fault-free point byte-identical to a standalone run, and report downtime
// and kills only at the faulty point.
func TestSweepFaultKnobs(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 60
	base := Point{X: 0, Params: p, Cs: 5}
	faulty := base
	faulty.X = 1
	faulty.MTBF = 30000
	faulty.MTTR = 2000
	faulty.Retry = fault.RetryPolicy{Restart: fault.RemainingRuntime}

	sw := &Sweep{
		ID:         "chaos-knobs",
		Algorithms: []Algorithm{MustByName("EASY")},
		Points:     []Point{base, faulty},
		Seeds:      []int64{3, 4},
	}
	res, err := sw.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	clean, hurt := res.Cells[0][0].Summary, res.Cells[0][1].Summary
	if clean.KilledJobs != 0 || clean.DownProcSeconds != 0 {
		t.Errorf("fault-free point reports faults: %+v", clean)
	}
	if hurt.DownProcSeconds == 0 {
		t.Errorf("faulty point reports no downtime: %+v", hurt)
	}

	// The fault-free point must be bit-identical to a plain engine run:
	// enabling the subsystem elsewhere in the sweep cannot perturb it.
	pp := p
	pp.Seed = 3
	w, err := workload.Generate(pp)
	if err != nil {
		t.Fatal(err)
	}
	a := MustByName("EASY")
	r, err := engine.Run(w, engine.Config{
		M: pp.M, Unit: pp.Unit, Scheduler: a.New(base), ProcessECC: a.ECC,
		MaxECCPerJob: pp.MaxECCPerJob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", res.Cells[0][0].PerSeed[0]), fmt.Sprintf("%+v", r.Summary); got != want {
		t.Errorf("fault-free sweep cell diverged from standalone run\ngot:  %s\nwant: %s", got, want)
	}
}
