package experiment

import (
	"strings"
	"testing"

	"elastisched/internal/workload"
)

func TestRegistryCoversTableIII(t *testing.T) {
	// The paper's Table III enumerates twelve algorithms; all must resolve.
	tableIII := []string{
		"EASY", "EASY-D", "EASY-E", "EASY-DE",
		"LOS", "LOS-D", "LOS-E", "LOS-DE",
		"Delayed-LOS", "Hybrid-LOS", "Delayed-LOS-E", "Hybrid-LOS-E",
	}
	for _, name := range tableIII {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name != name {
			t.Errorf("%s resolved to %s", name, a.Name)
		}
		s := a.New(Point{Cs: 7})
		if s == nil {
			t.Fatalf("%s: nil scheduler", name)
		}
		wantECC := strings.HasSuffix(name, "E") && name != "EASY-DE" || strings.HasSuffix(name, "DE")
		if a.ECC != wantECC {
			t.Errorf("%s: ECC = %v, want %v", name, a.ECC, wantECC)
		}
		// Heterogeneous flag matches the -D / Hybrid naming.
		wantHet := strings.Contains(name, "-D") || strings.HasPrefix(name, "Hybrid")
		if s.Heterogeneous() != wantHet {
			t.Errorf("%s: heterogeneous = %v, want %v", name, s.Heterogeneous(), wantHet)
		}
	}
}

func TestRegistryBaselines(t *testing.T) {
	for _, name := range []string{"FCFS", "SJF", "LJF", "CONS", "Adaptive"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic")
		}
	}()
	MustByName("NOPE")
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 17 {
		t.Fatalf("only %d registered algorithms", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestPointEffectiveCs(t *testing.T) {
	if (Point{}).EffectiveCs() <= 0 {
		t.Error("default C_s must be positive")
	}
	if (Point{Cs: 3}).EffectiveCs() != 3 {
		t.Error("explicit C_s ignored")
	}
}

func TestLookaheadOverride(t *testing.T) {
	for _, name := range []string{"LOS", "Delayed-LOS", "Hybrid-LOS"} {
		a := MustByName(name)
		if s := a.New(Point{Cs: 7, Lookahead: 9}); s == nil {
			t.Fatalf("%s with lookahead: nil", name)
		}
	}
}

func tinySweep() *Sweep {
	p := workload.DefaultParams()
	p.N = 60
	p.TargetLoad = 0.8
	return &Sweep{
		ID: "tiny", Title: "tiny", XLabel: "Load",
		Algorithms: algos("EASY", "Delayed-LOS"),
		Points: []Point{
			{X: 0.8, Params: p, Cs: 7},
			{X: 0.9, Params: func() workload.Params { q := p; q.TargetLoad = 0.9; return q }(), Cs: 7},
		},
		Seeds: []int64{1, 2},
	}
}

func TestSweepRun(t *testing.T) {
	r, err := tinySweep().Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 || len(r.Cells[0]) != 2 {
		t.Fatalf("cells shape wrong")
	}
	for ai := range r.Cells {
		for pi := range r.Cells[ai] {
			c := r.Cells[ai][pi]
			if c.Runs != 2 {
				t.Errorf("cell (%d,%d) runs = %d, want 2", ai, pi, c.Runs)
			}
			if c.Summary.Utilization <= 0 {
				t.Errorf("cell (%d,%d) empty summary", ai, pi)
			}
			if c.RealizedLoad <= 0 {
				t.Errorf("cell (%d,%d) no realized load", ai, pi)
			}
		}
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	r1, err := tinySweep().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := tinySweep().Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for ai := range r1.Cells {
		for pi := range r1.Cells[ai] {
			if r1.Cells[ai][pi].Summary != r4.Cells[ai][pi].Summary {
				t.Fatalf("cell (%d,%d) differs across worker counts", ai, pi)
			}
		}
	}
}

func TestSweepEmptyRejected(t *testing.T) {
	s := &Sweep{ID: "x"}
	if _, err := s.Run(1); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestReportTableAndTSV(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Table()
	if !strings.Contains(tbl, "EASY/util") || !strings.Contains(tbl, "Delayed-LOS/wait") {
		t.Errorf("table missing columns:\n%s", tbl)
	}
	tsv := r.TSV()
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) != 1+2*2 {
		t.Errorf("TSV has %d lines, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "sweep\tx\talgorithm") {
		t.Errorf("TSV header wrong: %s", lines[0])
	}
}

func TestReportPlot(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Plot(MetricWait, 40, 8)
	if !strings.Contains(out, "Load") {
		t.Errorf("plot missing x label:\n%s", out)
	}
}

func TestImprovementMath(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-verify against the cells for the wait metric.
	imp, err := r.MaxImprovement("Delayed-LOS", "EASY", MetricWait)
	if err != nil {
		t.Fatal(err)
	}
	best := -1e18
	for pi := range r.Sweep.Points {
		base := r.Cells[0][pi].Summary.MeanWait
		target := r.Cells[1][pi].Summary.MeanWait
		v := 100 * (base - target) / base
		if v > best {
			best = v
		}
	}
	if imp != best {
		t.Errorf("improvement %g, want %g", imp, best)
	}
}

func TestImprovementUnknownAlgo(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.MaxImprovement("NOPE", "EASY", MetricWait); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestImprovementTableFormat(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.ImprovementTable("Table X", "Delayed-LOS", []string{"EASY"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table X", "Utilization", "Job waiting time", "Slowdown", "EASY (%)"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("improvement table missing %q:\n%s", want, tbl)
		}
	}
}

func TestMeanOver(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.MeanOver("EASY", MetricUtil)
	if err != nil || v <= 0 || v > 1 {
		t.Errorf("MeanOver = %g, %v", v, err)
	}
	if _, err := r.MeanOver("NOPE", MetricUtil); err == nil {
		t.Error("unknown algo accepted")
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"util", "wait", "slowdown", "bslow", "p95wait", "dedontime"} {
		if _, err := MetricByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := MetricByName("nope"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestExperimentDefinitions(t *testing.T) {
	exps := All()
	if len(exps) < 12 {
		t.Fatalf("only %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || len(e.Panels) == 0 {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		for _, panel := range e.Panels {
			if len(panel.Algorithms) == 0 || len(panel.Points) == 0 || len(panel.Seeds) == 0 {
				t.Errorf("panel %q incomplete", panel.ID)
			}
			for _, pt := range panel.Points {
				if err := pt.Params.Validate(); err != nil {
					t.Errorf("panel %q point %g: %v", panel.ID, pt.X, err)
				}
			}
		}
		for _, spec := range e.Improvements {
			if spec.Panel < 0 || spec.Panel >= len(e.Panels) {
				t.Errorf("experiment %q: improvement panel out of range", e.ID)
			}
			panel := e.Panels[spec.Panel]
			found := map[string]bool{}
			for _, a := range panel.Algorithms {
				found[a.Name] = true
			}
			if !found[spec.Target] {
				t.Errorf("experiment %q: target %q not in panel", e.ID, spec.Target)
			}
			for _, b := range spec.Baselines {
				if !found[b] {
					t.Errorf("experiment %q: baseline %q not in panel", e.ID, b)
				}
			}
		}
	}
	// The paper's figures must all exist.
	for _, id := range []string{"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestByIDAliases(t *testing.T) {
	cases := map[string]string{
		"fig7": "fig7", "table4": "fig7", "table5": "fig9",
		"table6": "fig11", "table7": "fig11",
	}
	for alias, want := range cases {
		e, err := ByID(alias)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if e.ID != want {
			t.Errorf("%s resolved to %s, want %s", alias, e.ID, want)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCsForMatchesPaperRegimes(t *testing.T) {
	if CsFor(0.2) < 7 {
		t.Error("large-job regime should use a high C_s")
	}
	if CsFor(0.8) > 4 {
		t.Error("small-job regime should use a low C_s (paper: insensitive beyond ~3)")
	}
}

func TestFigureExperimentsRunTiny(t *testing.T) {
	// Shrink each paper figure to a single point/seed and verify the
	// definition actually executes end to end.
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"fig1", "fig5", "fig7", "fig9", "fig11"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, panel := range e.Panels {
			panel.Points = panel.Points[:1]
			panel.Seeds = panel.Seeds[:1]
			for i := range panel.Points {
				panel.Points[i].Params.N = 80
			}
			r, err := panel.Run(0)
			if err != nil {
				t.Fatalf("%s/%s: %v", id, panel.ID, err)
			}
			if r.Cells[0][0].Summary.JobsFinished != 80 {
				t.Errorf("%s/%s: finished %d/80", id, panel.ID, r.Cells[0][0].Summary.JobsFinished)
			}
		}
	}
}

func TestCI95AndPairedP(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := r.CI95("EASY", 0, MetricWait)
	if err != nil {
		t.Fatal(err)
	}
	mean := r.Cells[0][0].Summary.MeanWait
	if lo > mean || mean > hi {
		t.Errorf("CI [%g, %g] does not cover mean %g", lo, hi, mean)
	}
	if _, _, err := r.CI95("NOPE", 0, MetricWait); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, _, err := r.CI95("EASY", 99, MetricWait); err == nil {
		t.Error("out-of-range point accepted")
	}

	p, err := r.PairedP("Delayed-LOS", "EASY", MetricWait)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Errorf("p = %g out of [0,1]", p)
	}
	same, err := r.PairedP("EASY", "EASY", MetricWait)
	if err != nil || same != 1 {
		t.Errorf("self-comparison p = %g, %v, want 1", same, err)
	}
	if _, err := r.PairedP("NOPE", "EASY", MetricWait); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestSignificanceTableFormat(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.SignificanceTable("Delayed-LOS", []string{"EASY"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"paired t-test", "vs EASY", "slowdown"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("significance table missing %q:\n%s", want, tbl)
		}
	}
	if _, err := r.SignificanceTable("NOPE", []string{"EASY"}); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestCellPerSeedRecorded(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Cells[0][0]
	if len(c.PerSeed) != 2 {
		t.Fatalf("per-seed summaries = %d, want 2", len(c.PerSeed))
	}
	// The average of the per-seed values must equal the cell summary.
	want := (c.PerSeed[0].MeanWait + c.PerSeed[1].MeanWait) / 2
	if c.Summary.MeanWait != want {
		t.Errorf("summary %g != mean of per-seed %g", c.Summary.MeanWait, want)
	}
}

func TestMarkdownOutputs(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	md := r.Markdown()
	for _, want := range []string{"| Load |", "EASY util", "Delayed-LOS wait", "|---|"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	// Header line + separator + one row per point + title/blank lines.
	var rows int
	for _, l := range lines {
		if strings.HasPrefix(l, "| 0.") {
			rows++
		}
	}
	if rows != 2 {
		t.Errorf("markdown has %d data rows, want 2:\n%s", rows, md)
	}
	imp, err := r.ImprovementMarkdown("Table T", "Delayed-LOS", []string{"EASY"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"**Table T**", "| Utilization |", "| Slowdown |"} {
		if !strings.Contains(imp, want) {
			t.Errorf("improvement markdown missing %q:\n%s", want, imp)
		}
	}
	if _, err := r.ImprovementMarkdown("x", "NOPE", []string{"EASY"}); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestCalibrateCs(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 80
	p.PS = 0.2
	p.TargetLoad = 0.9
	best, r, err := CalibrateCs(p, 5, []int64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1 || best > 5 {
		t.Fatalf("calibrated C_s = %d outside [1,5]", best)
	}
	// best must indeed be the argmin of the calibration sweep.
	bestWait := r.Cells[0][best-1].Summary.MeanWait
	for pi := range r.Sweep.Points {
		if r.Cells[0][pi].Summary.MeanWait < bestWait {
			t.Fatalf("C_s=%d beats the calibrated %d", pi+1, best)
		}
	}
}

func TestCalibrateCsDefaults(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 40
	p.TargetLoad = 0.7
	best, r, err := CalibrateCs(p, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweep.Points) != 20 || len(r.Sweep.Seeds) != 3 {
		t.Errorf("defaults not applied: %d points, %d seeds", len(r.Sweep.Points), len(r.Sweep.Seeds))
	}
	if best < 1 || best > 20 {
		t.Errorf("best = %d", best)
	}
}

func TestResultSummaryAccessor(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Summary("EASY", 0)
	if err != nil || s.JobsFinished == 0 {
		t.Errorf("Summary accessor: %v %+v", err, s)
	}
	if _, err := r.Summary("NOPE", 0); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, err := r.Summary("EASY", 9); err == nil {
		t.Error("out-of-range point accepted")
	}
}

func TestImprovementsAllPairs(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	imps := r.Improvements(MetricWait)
	if len(imps) != 2 { // EASY>Delayed-LOS and Delayed-LOS>EASY
		t.Fatalf("got %d pairs: %v", len(imps), imps)
	}
	if _, ok := imps["Delayed-LOS>EASY"]; !ok {
		t.Errorf("missing pair: %v", imps)
	}
}

func TestSortedAlgoNames(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	names := r.SortedAlgoNames()
	if len(names) != 2 || names[0] != "Delayed-LOS" || names[1] != "EASY" {
		t.Errorf("names = %v", names)
	}
}

func TestPlotSVG(t *testing.T) {
	r, err := tinySweep().Run(0)
	if err != nil {
		t.Fatal(err)
	}
	svg := r.PlotSVG(MetricWait, 600, 400)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "polyline") {
		t.Error("SVG figure missing elements")
	}
}
