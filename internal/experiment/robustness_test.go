package experiment

import (
	"errors"
	"math"
	"testing"

	"elastisched/internal/engine"
	"elastisched/internal/fault"
	"elastisched/internal/workload"
)

// TestValidateRobustness covers the typed up-front validation of the
// fault and checkpoint knobs on a sweep point, errors.Is-testable.
func TestValidateRobustness(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Point)
		want error
	}{
		{"zero point ok", func(p *Point) {}, nil},
		{"faulty point ok", func(p *Point) { p.MTBF = 40000; p.MTTR = 2000 }, nil},
		{"periodic ok", func(p *Point) {
			p.MTBF = 40000
			p.CheckpointPolicy = fault.CheckpointPeriodic
			p.CheckpointInterval = 600
			p.CheckpointCost = 30
		}, nil},
		{"daly ok", func(p *Point) {
			p.MTBF = 40000
			p.CheckpointPolicy = fault.CheckpointDaly
			p.CheckpointCost = 30
		}, nil},
		{"on-resize ok", func(p *Point) {
			p.MTBF = 40000
			p.Malleable = true
			p.CheckpointPolicy = fault.CheckpointOnResize
			p.CheckpointCost = 30
		}, nil},

		{"negative MTBF", func(p *Point) { p.MTBF = -1 }, fault.ErrNonPositiveMTBF},
		{"NaN MTBF", func(p *Point) { p.MTBF = math.NaN() }, fault.ErrNonPositiveMTBF},
		{"negative MTTR", func(p *Point) { p.MTTR = -1 }, fault.ErrNegativeMTTR},
		{"NaN MTTR", func(p *Point) { p.MTTR = math.NaN() }, fault.ErrNegativeMTTR},
		{"negative resize overhead", func(p *Point) { p.ResizeOverhead = -3 }, ErrNegativeResizeOverhead},
		{"bad retry", func(p *Point) { p.Retry.MaxRetries = -1 }, fault.ErrNegativeRetries},
		{"negative checkpoint cost", func(p *Point) {
			p.MTBF = 40000
			p.CheckpointPolicy = fault.CheckpointPeriodic
			p.CheckpointInterval = 600
			p.CheckpointCost = -1
		}, fault.ErrNegativeCheckpointCost},
		{"interval without periodic", func(p *Point) {
			p.MTBF = 40000
			p.CheckpointInterval = 600
		}, fault.ErrIntervalWithoutPeriodic},
		{"periodic without interval", func(p *Point) {
			p.MTBF = 40000
			p.CheckpointPolicy = fault.CheckpointPeriodic
		}, fault.ErrNonPositiveInterval},
		{"daly without cost", func(p *Point) {
			p.MTBF = 40000
			p.CheckpointPolicy = fault.CheckpointDaly
		}, fault.ErrDalyNeedsCost},
		{"checkpoint without faults", func(p *Point) {
			p.CheckpointPolicy = fault.CheckpointPeriodic
			p.CheckpointInterval = 600
			p.CheckpointCost = 30
		}, ErrCheckpointWithoutFaults},
		{"on-resize without malleable", func(p *Point) {
			p.MTBF = 40000
			p.CheckpointPolicy = fault.CheckpointOnResize
			p.CheckpointCost = 30
		}, engine.ErrOnResizeNeedsMalleable},
	}
	for _, c := range cases {
		p := Point{Cs: 5}
		c.mut(&p)
		err := p.ValidateRobustness()
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: ValidateRobustness() = %v, want nil", c.name, err)
			}
		} else if !errors.Is(err, c.want) {
			t.Errorf("%s: ValidateRobustness() = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestSweepRejectsBadRobustnessPoint wires the validation into Sweep.Run:
// a malformed point must fail the whole sweep up front with the typed
// error, before any run is attempted.
func TestSweepRejectsBadRobustnessPoint(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 10
	bad := Point{X: 1, Params: p, Cs: 5, MTBF: math.NaN()}
	sw := &Sweep{
		ID:         "bad-robustness",
		Algorithms: []Algorithm{MustByName("EASY")},
		Points:     []Point{bad},
		Seeds:      []int64{1},
	}
	if _, err := sw.Run(1); !errors.Is(err, fault.ErrNonPositiveMTBF) {
		t.Fatalf("Sweep.Run = %v, want ErrNonPositiveMTBF", err)
	}
}
