package experiment

import (
	"fmt"
	"runtime"
	"testing"

	"elastisched/internal/workload"
)

// fig1Panel rebuilds the Figure 1 SDSC-like panel (EASY vs LOS over the
// paper's load interval, three seeds) — the multi-algorithm end-to-end
// workload the sweep runner must execute fast.
func fig1Panel() *Sweep {
	template := func(load float64) workload.Params {
		p := workload.SDSCLike()
		p.TargetLoad = load
		return p
	}
	return &Sweep{
		ID: "fig1-bench", Title: "fig1 e2e bench", XLabel: "Load",
		Algorithms: algos("EASY", "LOS"),
		Points:     loadPoints(template, 0),
		Seeds:      DefaultSeeds(),
	}
}

// runFig1Panel executes one panel at the given worker count and reports the
// throughput metrics shared by every Fig1Panel benchmark variant.
func runFig1Panel(b *testing.B, workers int) {
	b.ReportAllocs()
	var jobs, gen, reused int
	for i := 0; i < b.N; i++ {
		r, err := fig1Panel().Run(workers)
		if err != nil {
			b.Fatal(err)
		}
		jobs = 0
		for ai := range r.Cells {
			for pi := range r.Cells[ai] {
				for _, s := range r.Cells[ai][pi].PerSeed {
					jobs += s.JobsFinished
				}
			}
		}
		gen, reused = r.WorkloadsGenerated, r.WorkloadsReused
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	// The cache contract, visible in the committed snapshot: Generate runs
	// once per (point, seed); every other algorithm's run is a hit.
	b.ReportMetric(float64(gen), "wl-generated/op")
	b.ReportMetric(float64(reused), "wl-reused/op")
	// Parallel-scaling regressions are invisible without knowing how wide
	// the run actually was: record both the requested worker count and the
	// scheduler parallelism available to it. On a GOMAXPROCS=1 host the
	// workers=2/4 variants necessarily match workers=1 — run-level
	// parallelism only buys wall clock when the Go scheduler has cores to
	// spread the workers over.
	b.ReportMetric(float64(workers), "workers")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "maxprocs")
}

// BenchmarkFig1PanelE2E measures the full figure-panel pipeline — workload
// generation, every (algorithm, point, seed) simulation, and the
// deterministic reduction — at fixed worker counts plus the expsuite
// default (GOMAXPROCS). The fixed sub-benchmarks make scaling regressions
// visible in recorded snapshots: workers=4 beating workers=1 only on hosts
// where maxprocs allows it.
func BenchmarkFig1PanelE2E(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runFig1Panel(b, workers)
		})
	}
	b.Run("workers=maxprocs", func(b *testing.B) {
		runFig1Panel(b, runtime.GOMAXPROCS(0))
	})
}

// BenchmarkFig1PanelSerial is the same panel forced to one worker: the
// serial wall-clock floor the parallel path is compared against.
func BenchmarkFig1PanelSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fig1Panel().Run(1); err != nil {
			b.Fatal(err)
		}
	}
}
