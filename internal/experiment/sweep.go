package experiment

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/dispatch"
	"elastisched/internal/ecc"
	"elastisched/internal/engine"
	"elastisched/internal/fault"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

// Point is one x-axis position of a sweep: a workload configuration plus
// the scheduler parameters used there.
type Point struct {
	// X is the plotted x value (offered load, C_s, lookahead depth, ...).
	X float64
	// Params generates the workload; Seed is overridden per run.
	Params workload.Params
	// Cs is the maximum-skip-count threshold for the LOS family at this
	// point (<= 0 means core.DefaultCs).
	Cs int
	// Lookahead overrides the DP window (0 = algorithm default).
	Lookahead int
	// Contiguous/Migrate select the allocation policy (BlueGene-style
	// partitioning with optional defragmentation).
	Contiguous bool
	Migrate    bool
	// MTBF/MTTR enable fault injection at this point (per node group, sim
	// seconds; MTBF <= 0 disables it). Each run samples its fault trace
	// from the run seed, so the same seed fails the same groups at the
	// same instants under every algorithm.
	MTBF float64
	MTTR float64
	// Retry is the policy applied to failure victims when faults are on.
	Retry fault.RetryPolicy
	// CheckpointPolicy lets running batch jobs save restart state when
	// faults are on: kills then restart from the last checkpoint instead
	// of the Retry.Restart binary. CheckpointInterval is the periodic
	// policy's interval I; CheckpointCost is the charge C per checkpoint
	// (and per restart-from-checkpoint). See fault.CheckpointPolicy.
	CheckpointPolicy   fault.CheckpointPolicy
	CheckpointInterval int64
	CheckpointCost     int64
	// Malleable turns on scheduler-initiated resizing at this point: the
	// engine rescales remaining work through every resize and fault victims
	// with malleable bounds shrink onto their surviving groups instead of
	// dying. Pair it with Params.PM > 0 (so the workload carries bounds)
	// and an -M algorithm variant (so the scheduler proposes resizes).
	Malleable bool
	// ResizeOverhead is the per-resize reconfiguration penalty in sim
	// seconds, charged to the resized job (Malleable only).
	ResizeOverhead int64
	// Clusters, when above 1, evaluates this point on the sharded
	// dispatcher (dispatch.Run): the workload is split over Clusters
	// per-cluster machines of Params.M processors and the merged global
	// summary fills the cell. Route names the routing policy ("" =
	// round-robin); it is rejected when Clusters <= 1.
	Clusters int
	Route    string
	// Epoch, Steal, and Affinity select the dispatcher's dynamic epoch
	// protocol at this point (barrier-synchronized stepping, queue-digest
	// exchange, work stealing, affinity pinning); they mirror the
	// dispatch.Config fields of the same names. Steal, Affinity, and the
	// "feedback" route all need Epoch > 0.
	Epoch    int64
	Steal    bool
	Affinity int
}

// EffectiveCs resolves the point's C_s.
func (p Point) EffectiveCs() int {
	if p.Cs > 0 {
		return p.Cs
	}
	return core.DefaultCs
}

// Typed point-validation errors, testable with errors.Is alongside the
// fault package's (ErrNonPositiveMTBF, ErrNegativeMTTR,
// ErrIntervalWithoutPeriodic, ...).
var (
	// ErrNegativeResizeOverhead rejects a negative per-resize penalty.
	ErrNegativeResizeOverhead = errors.New("experiment: resize overhead must not be negative")
	// ErrCheckpointWithoutFaults rejects a checkpoint policy on a point
	// with fault injection off — there is nothing to restart from.
	ErrCheckpointWithoutFaults = errors.New("experiment: checkpoint policy set without fault injection (MTBF <= 0)")
)

// ValidateRobustness checks the point's fault and elasticity knobs up
// front — before any workload is generated — wrapping the fault package's
// typed errors so callers can test with errors.Is. MTBF <= 0 (faults off)
// is legal; NaN or negative rates, a negative resize overhead or
// checkpoint cost, an interval without a periodic policy, and checkpoint
// policies missing their prerequisites are not.
func (p Point) ValidateRobustness() error {
	if math.IsNaN(p.MTBF) || p.MTBF < 0 {
		return fmt.Errorf("%w (got %g)", fault.ErrNonPositiveMTBF, p.MTBF)
	}
	if math.IsNaN(p.MTTR) || p.MTTR < 0 {
		return fmt.Errorf("%w (got %g)", fault.ErrNegativeMTTR, p.MTTR)
	}
	if p.ResizeOverhead < 0 {
		return fmt.Errorf("%w (got %d)", ErrNegativeResizeOverhead, p.ResizeOverhead)
	}
	if err := p.Retry.Validate(); err != nil {
		return err
	}
	if err := fault.ValidateCheckpoint(p.CheckpointPolicy, p.CheckpointInterval, p.CheckpointCost, p.MTBF); err != nil {
		return err
	}
	if p.CheckpointPolicy != fault.CheckpointNone && p.MTBF <= 0 {
		return fmt.Errorf("%w (policy %s)", ErrCheckpointWithoutFaults, p.CheckpointPolicy)
	}
	if p.CheckpointPolicy == fault.CheckpointOnResize && !p.Malleable {
		return engine.ErrOnResizeNeedsMalleable
	}
	return nil
}

// Sweep is one figure panel: a set of algorithms evaluated over a set of
// points, each point averaged over seeds.
type Sweep struct {
	ID     string
	Title  string
	XLabel string

	Algorithms []Algorithm
	Points     []Point
	Seeds      []int64
}

// Cell is the aggregated outcome of one (algorithm, point) pair.
type Cell struct {
	Summary metrics.Summary
	// PerSeed holds the individual per-seed summaries, in seed order, so
	// reports can attach confidence intervals and paired significance
	// tests (the same seed at the same point replays the same workload
	// under every algorithm).
	PerSeed []metrics.Summary
	ECC     ecc.Stats
	// RealizedLoad is the mean offered load of the generated workloads at
	// this point (sanity check against Params.TargetLoad).
	RealizedLoad float64
	Runs         int
	// Events and Cycles total the kernel events dispatched and scheduler
	// cycles executed across the cell's runs (throughput accounting).
	Events uint64
	Cycles uint64
}

// Result holds a completed sweep: Cells[algo][point].
type Result struct {
	Sweep *Sweep
	Cells [][]Cell
	// WorkloadsGenerated counts workload.Generate calls; WorkloadsReused
	// counts runs served from the shared per-(point, seed) cache. Their sum
	// is the total number of runs: every algorithm at the same (point,
	// seed) replays one generated workload.
	WorkloadsGenerated int
	WorkloadsReused    int
}

// wlEntry lazily holds the workload for one (point, seed) pair. The
// sync.Once makes concurrent first users race safely: exactly one
// generates, the rest block and share the result. Workloads are read-only
// to the engine (it clones jobs and commands), so sharing is safe.
type wlEntry struct {
	once sync.Once
	w    *cwf.Workload
	load float64
	err  error
}

// workloadCache shares generated workloads across algorithms: the work unit
// is an (algorithm, point, seed) run, but the workload depends only on
// (point, seed).
type workloadCache struct {
	entries   []wlEntry
	nSeeds    int
	generated atomic.Int64
	reused    atomic.Int64
}

func newWorkloadCache(nPoints, nSeeds int) *workloadCache {
	return &workloadCache{entries: make([]wlEntry, nPoints*nSeeds), nSeeds: nSeeds}
}

func (c *workloadCache) at(pi, si int) *wlEntry { return &c.entries[pi*c.nSeeds+si] }

// get returns the workload for (pi, si), generating it on first use.
func (c *workloadCache) get(pi, si int, params workload.Params) (*cwf.Workload, error) {
	e := c.at(pi, si)
	hit := true
	e.once.Do(func() {
		hit = false
		c.generated.Add(1)
		e.w, e.err = workload.Generate(params)
		if e.err == nil {
			// Validate once here, under the once, so every replaying run can
			// skip it (engine.Config.Prevalidated).
			e.err = e.w.Validate(params.M)
		}
		if e.err == nil {
			e.load = e.w.Load(params.M)
		}
	})
	if hit {
		c.reused.Add(1)
	}
	return e.w, e.err
}

// Run executes the sweep on up to workers goroutines (0 = GOMAXPROCS).
// The work unit is one (algorithm, point, seed) run; workloads are
// generated once per (point, seed) and shared across algorithms. Every run
// is independent and deterministically seeded, and the reduction walks runs
// in seed order, so the result is identical regardless of worker count or
// completion order.
func (s *Sweep) Run(workers int) (*Result, error) {
	if len(s.Algorithms) == 0 || len(s.Points) == 0 {
		return nil, fmt.Errorf("experiment %s: empty sweep", s.ID)
	}
	for _, pt := range s.Points {
		if err := pt.ValidateRobustness(); err != nil {
			return nil, fmt.Errorf("experiment %s: point %g: %w", s.ID, pt.X, err)
		}
		if pt.Route != "" && pt.Clusters <= 1 {
			return nil, fmt.Errorf("experiment %s: point %g sets Route=%q without Clusters > 1",
				s.ID, pt.X, pt.Route)
		}
		if (pt.Epoch != 0 || pt.Steal || pt.Affinity > 0) && pt.Clusters <= 1 {
			return nil, fmt.Errorf("experiment %s: point %g sets epoch/steal/affinity without Clusters > 1",
				s.ID, pt.X)
		}
		if pt.Clusters > 1 {
			// Resolve the policy name up front so a typo fails the sweep
			// before any workload is generated. Epoch mode admits the
			// dynamic feedback policy on top of the static set.
			resolve := dispatch.NewRouter
			if pt.Epoch > 0 {
				resolve = dispatch.NewDynamicRouter
			}
			if _, err := resolve(pt.Route); err != nil {
				return nil, fmt.Errorf("experiment %s: point %g: %w", s.ID, pt.X, err)
			}
			if pt.Epoch == 0 && (pt.Steal || pt.Affinity > 0 || pt.Route == dispatch.RouteFeedback) {
				return nil, fmt.Errorf("experiment %s: point %g: %w", s.ID, pt.X, dispatch.ErrEpochRequired)
			}
		}
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	nA, nP, nS := len(s.Algorithms), len(s.Points), len(seeds)
	type runOut struct {
		sum    metrics.Summary
		ecc    ecc.Stats
		events uint64
		cycles uint64
		err    error
	}
	runs := make([]runOut, nA*nP*nS)
	slot := func(ai, pi, si int) *runOut { return &runs[(ai*nP+pi)*nS+si] }
	cache := newWorkloadCache(nP, nS)

	type task struct{ ai, pi, si int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	var failed atomic.Bool

	worker := func() {
		defer wg.Done()
		for t := range tasks {
			out := slot(t.ai, t.pi, t.si)
			pt := s.Points[t.pi]
			params := pt.Params
			params.Seed = seeds[t.si]
			if failed.Load() {
				// A run already failed: skip the engine run, but still
				// resolve the (memoized) workload-cache entry and record its
				// error, so the deterministic error scan below sees the same
				// first failure at every worker count.
				if _, err := cache.get(t.pi, t.si, params); err != nil {
					out.err = err
				}
				continue
			}
			w, err := cache.get(t.pi, t.si, params)
			if err != nil {
				out.err = err
				failed.Store(true)
				continue
			}
			a := s.Algorithms[t.ai]
			cfg := engine.Config{
				M:              params.M,
				Unit:           params.Unit,
				ProcessECC:     a.ECC,
				MaxECCPerJob:   params.MaxECCPerJob,
				Contiguous:     pt.Contiguous,
				Migrate:        pt.Migrate,
				Malleable:      pt.Malleable,
				ResizeOverhead: pt.ResizeOverhead,
				Prevalidated:   true,
			}
			if pt.MTBF > 0 {
				cfg.Faults = &engine.FaultConfig{
					MTBF: pt.MTBF, MTTR: pt.MTTR,
					Seed: seeds[t.si], Retry: pt.Retry,
					Checkpoint:         pt.CheckpointPolicy,
					CheckpointInterval: pt.CheckpointInterval,
					CheckpointCost:     pt.CheckpointCost,
				}
			}
			if pt.Clusters > 1 {
				// Sharded point: the cell records the merged global view.
				// Workers=1 keeps the sweep's own worker pool the only
				// parallelism; the dispatch result is identical for any
				// value, so this is purely a scheduling choice.
				r, err := dispatch.Run(w, dispatch.Config{
					Clusters:     pt.Clusters,
					Workers:      1,
					Engine:       cfg,
					NewScheduler: func() sched.Scheduler { return a.New(pt) },
					Route:        pt.Route,
					Epoch:        pt.Epoch,
					Steal:        pt.Steal,
					Affinity:     pt.Affinity,
				})
				if err != nil {
					out.err = err
					failed.Store(true)
					continue
				}
				out.sum = r.Merged
				out.ecc = r.ECC
				out.events = r.Events
				out.cycles = r.Cycles
				continue
			}
			cfg.Scheduler = a.New(pt)
			r, err := engine.Run(w, cfg)
			if err != nil {
				out.err = err
				failed.Store(true)
				continue
			}
			out.sum = r.Summary
			out.ecc = r.ECC
			out.events = r.Events
			out.cycles = r.Cycles
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	for ai := 0; ai < nA; ai++ {
		for pi := 0; pi < nP; pi++ {
			for si := 0; si < nS; si++ {
				tasks <- task{ai, pi, si}
			}
		}
	}
	close(tasks)
	wg.Wait()

	// Surface the first error in deterministic (algorithm, point, seed)
	// order, regardless of which run hit it first on the wall clock.
	for ai := 0; ai < nA; ai++ {
		for pi := 0; pi < nP; pi++ {
			for si := 0; si < nS; si++ {
				if err := slot(ai, pi, si).err; err != nil {
					return nil, fmt.Errorf("experiment %s, algo %s, point %g: %w",
						s.ID, s.Algorithms[ai].Name, s.Points[pi].X, err)
				}
			}
		}
	}

	// Reduce in seed order: the per-cell aggregation visits runs exactly as
	// the sequential implementation did, so every float accumulates in the
	// same order.
	res := &Result{
		Sweep:              s,
		Cells:              make([][]Cell, nA),
		WorkloadsGenerated: int(cache.generated.Load()),
		WorkloadsReused:    int(cache.reused.Load()),
	}
	for ai := 0; ai < nA; ai++ {
		res.Cells[ai] = make([]Cell, nP)
		for pi := 0; pi < nP; pi++ {
			sums := make([]metrics.Summary, 0, nS)
			var eccStats ecc.Stats
			var loadSum float64
			var events, cycles uint64
			for si := 0; si < nS; si++ {
				out := slot(ai, pi, si)
				sums = append(sums, out.sum)
				eccStats = addECC(eccStats, out.ecc)
				loadSum += cache.at(pi, si).load
				events += out.events
				cycles += out.cycles
			}
			res.Cells[ai][pi] = Cell{
				Summary:      metrics.Average(sums),
				PerSeed:      sums,
				ECC:          eccStats,
				RealizedLoad: loadSum / float64(nS),
				Runs:         nS,
				Events:       events,
				Cycles:       cycles,
			}
		}
	}
	return res, nil
}

func addECC(a, b ecc.Stats) ecc.Stats {
	a.Total += b.Total
	a.Applied += b.Applied
	a.Clamped += b.Clamped
	a.IgnoredFinished += b.IgnoredFinished
	a.IgnoredUnknown += b.IgnoredUnknown
	a.IgnoredLimit += b.IgnoredLimit
	a.IgnoredCapacity += b.IgnoredCapacity
	a.ExtendedSeconds += b.ExtendedSeconds
	a.ReducedSeconds += b.ReducedSeconds
	a.GrownProcs += b.GrownProcs
	a.ShrunkProcs += b.ShrunkProcs
	return a
}
