package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"elastisched/internal/core"
	"elastisched/internal/ecc"
	"elastisched/internal/engine"
	"elastisched/internal/metrics"
	"elastisched/internal/workload"
)

// Point is one x-axis position of a sweep: a workload configuration plus
// the scheduler parameters used there.
type Point struct {
	// X is the plotted x value (offered load, C_s, lookahead depth, ...).
	X float64
	// Params generates the workload; Seed is overridden per run.
	Params workload.Params
	// Cs is the maximum-skip-count threshold for the LOS family at this
	// point (<= 0 means core.DefaultCs).
	Cs int
	// Lookahead overrides the DP window (0 = algorithm default).
	Lookahead int
	// Contiguous/Migrate select the allocation policy (BlueGene-style
	// partitioning with optional defragmentation).
	Contiguous bool
	Migrate    bool
}

// EffectiveCs resolves the point's C_s.
func (p Point) EffectiveCs() int {
	if p.Cs > 0 {
		return p.Cs
	}
	return core.DefaultCs
}

// Sweep is one figure panel: a set of algorithms evaluated over a set of
// points, each point averaged over seeds.
type Sweep struct {
	ID     string
	Title  string
	XLabel string

	Algorithms []Algorithm
	Points     []Point
	Seeds      []int64
}

// Cell is the aggregated outcome of one (algorithm, point) pair.
type Cell struct {
	Summary metrics.Summary
	// PerSeed holds the individual per-seed summaries, in seed order, so
	// reports can attach confidence intervals and paired significance
	// tests (the same seed at the same point replays the same workload
	// under every algorithm).
	PerSeed []metrics.Summary
	ECC     ecc.Stats
	// RealizedLoad is the mean offered load of the generated workloads at
	// this point (sanity check against Params.TargetLoad).
	RealizedLoad float64
	Runs         int
}

// Result holds a completed sweep: Cells[algo][point].
type Result struct {
	Sweep *Sweep
	Cells [][]Cell
}

// Run executes the sweep on up to workers goroutines (0 = GOMAXPROCS).
// Every (algorithm, point, seed) run is independent and deterministically
// seeded, so the result is identical regardless of worker count.
func (s *Sweep) Run(workers int) (*Result, error) {
	if len(s.Algorithms) == 0 || len(s.Points) == 0 {
		return nil, fmt.Errorf("experiment %s: empty sweep", s.ID)
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	res := &Result{Sweep: s, Cells: make([][]Cell, len(s.Algorithms))}
	for i := range res.Cells {
		res.Cells[i] = make([]Cell, len(s.Points))
	}

	type task struct{ ai, pi int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	worker := func() {
		defer wg.Done()
		for t := range tasks {
			cell, err := s.runCell(s.Algorithms[t.ai], s.Points[t.pi], seeds)
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("experiment %s, algo %s, point %g: %w",
					s.ID, s.Algorithms[t.ai].Name, s.Points[t.pi].X, err)
			}
			res.Cells[t.ai][t.pi] = cell
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	for ai := range s.Algorithms {
		for pi := range s.Points {
			tasks <- task{ai, pi}
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// runCell executes one (algorithm, point) pair across all seeds and
// averages the summaries.
func (s *Sweep) runCell(a Algorithm, pt Point, seeds []int64) (Cell, error) {
	sums := make([]metrics.Summary, 0, len(seeds))
	var eccStats ecc.Stats
	var loadSum float64
	for _, seed := range seeds {
		params := pt.Params
		params.Seed = seed
		w, err := workload.Generate(params)
		if err != nil {
			return Cell{}, err
		}
		loadSum += w.Load(params.M)
		r, err := engine.Run(w, engine.Config{
			M:            params.M,
			Unit:         params.Unit,
			Scheduler:    a.New(pt),
			ProcessECC:   a.ECC,
			MaxECCPerJob: params.MaxECCPerJob,
			Contiguous:   pt.Contiguous,
			Migrate:      pt.Migrate,
		})
		if err != nil {
			return Cell{}, err
		}
		sums = append(sums, r.Summary)
		eccStats = addECC(eccStats, r.ECC)
	}
	return Cell{
		Summary:      metrics.Average(sums),
		PerSeed:      sums,
		ECC:          eccStats,
		RealizedLoad: loadSum / float64(len(seeds)),
		Runs:         len(seeds),
	}, nil
}

func addECC(a, b ecc.Stats) ecc.Stats {
	a.Total += b.Total
	a.Applied += b.Applied
	a.Clamped += b.Clamped
	a.IgnoredFinished += b.IgnoredFinished
	a.IgnoredUnknown += b.IgnoredUnknown
	a.IgnoredLimit += b.IgnoredLimit
	a.IgnoredCapacity += b.IgnoredCapacity
	a.ExtendedSeconds += b.ExtendedSeconds
	a.ReducedSeconds += b.ReducedSeconds
	a.GrownProcs += b.GrownProcs
	a.ShrunkProcs += b.ShrunkProcs
	return a
}
