package ecc

import (
	"reflect"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
)

// TestSnapshotRoundTripPreservesBudget checks that a restored processor
// carries both the aggregate statistics and the per-job applied counts the
// MaxPerJob budget is enforced against.
func TestSnapshotRoundTripPreservesBudget(t *testing.T) {
	ft := newTarget()
	ft.waiting[1] = &job.Job{ID: 1, Size: 32, Dur: 100, ReqStart: -1}
	ft.waiting[2] = &job.Job{ID: 2, Size: 32, Dur: 100, ReqStart: -1}

	p := NewProcessor(2)
	p.Apply(cmd(1, cwf.ExtendTime, 10), ft)
	p.Apply(cmd(1, cwf.ExtendTime, 10), ft) // job 1's budget now exhausted
	p.Apply(cmd(2, cwf.ReduceTime, 10), ft)
	p.Apply(cmd(9, cwf.ExtendTime, 10), ft) // unknown job

	r := NewProcessorFromSnapshot(p.Snapshot())
	if !reflect.DeepEqual(r.Stats, p.Stats) {
		t.Errorf("stats diverged: %+v vs %+v", r.Stats, p.Stats)
	}
	// The restored processor must still refuse job 1 (budget spent) and
	// still allow job 2 (one application left).
	if out := r.Apply(cmd(1, cwf.ExtendTime, 5), ft); out != IgnoredLimit {
		t.Errorf("job 1 after restore: %v, want ignored-limit", out)
	}
	if out := r.Apply(cmd(2, cwf.ExtendTime, 5), ft); out != Applied {
		t.Errorf("job 2 after restore: %v, want applied", out)
	}
}

func TestSnapshotIsolatedFromLiveProcessor(t *testing.T) {
	ft := newTarget()
	ft.waiting[1] = &job.Job{ID: 1, Size: 32, Dur: 100, ReqStart: -1}
	p := NewProcessor(0)
	p.Apply(cmd(1, cwf.ExtendTime, 10), ft)
	s := p.Snapshot()
	p.Apply(cmd(1, cwf.ExtendTime, 10), ft)
	if s.Stats.Applied != 1 || s.Applied[1] != 1 {
		t.Errorf("snapshot shares state with live processor: %+v", s)
	}
}
