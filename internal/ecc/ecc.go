// Package ecc implements the paper's Elastic Control Command processor
// (Section III-C, Figure 3): commands from the elastic control queue are
// applied first-come first-served, mutating the execution-time requirement
// (and thus the kill-by time) of previously submitted jobs — whether still
// queued or already running. Appending this processor to a scheduler yields
// its -E variant (EASY-E, LOS-E, Delayed-LOS-E, EASY-DE, LOS-DE,
// Hybrid-LOS-E).
//
// ET/RT change the time dimension, the paper's focus. EP/RP change the size
// dimension — the paper's future work — and are implemented as
// shrink-always / grow-if-free.
package ecc

import (
	"fmt"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
)

// Target is the engine surface the processor mutates. The engine owns event
// rescheduling and machine allocation; the processor owns command
// validation, per-job limits and accounting.
type Target interface {
	// Now returns the current simulated time.
	Now() int64
	// FindWaiting returns the waiting (batch- or dedicated-queued) job with
	// the ID, or nil.
	FindWaiting(id int) *job.Job
	// FindRunning returns the running job with the ID, or nil.
	FindRunning(id int) *job.Job
	// RetimeRunning must be called after a running job's EndTime changed:
	// the engine re-sorts the active list and reschedules the completion
	// event (an EndTime at or before Now completes the job immediately).
	// oldEnd is the kill-by time before the mutation, so the engine can
	// propagate the delta to capacity caches.
	RetimeRunning(j *job.Job, oldEnd int64)
	// TouchWaiting must be called after a waiting job's requirements (Dur
	// or Size) were mutated in place, so the engine can invalidate
	// queue-derived scheduler state.
	TouchWaiting(j *job.Job)
	// ResizeRunning changes a running job's allocation to newSize
	// processors (already quantized). Growing fails if the free capacity
	// is insufficient.
	ResizeRunning(j *job.Job, newSize int) error
	// MachineTotal and MachineUnit describe the machine geometry.
	MachineTotal() int
	MachineUnit() int
}

// Outcome classifies what happened to one command.
type Outcome uint8

// Outcomes.
const (
	Applied         Outcome = iota // applied as requested
	Clamped                        // applied, but the amount was truncated
	IgnoredFinished                // job already left the system
	IgnoredUnknown                 // no such job
	IgnoredLimit                   // per-job command budget exhausted
	IgnoredCapacity                // EP with insufficient free capacity
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Applied:
		return "applied"
	case Clamped:
		return "clamped"
	case IgnoredFinished:
		return "ignored-finished"
	case IgnoredUnknown:
		return "ignored-unknown"
	case IgnoredLimit:
		return "ignored-limit"
	case IgnoredCapacity:
		return "ignored-capacity"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Stats accumulates processor accounting across a run.
type Stats struct {
	Total           int
	Applied         int
	Clamped         int
	IgnoredFinished int
	IgnoredUnknown  int
	IgnoredLimit    int
	IgnoredCapacity int
	// ExtendedSeconds and ReducedSeconds are the net time deltas applied.
	ExtendedSeconds int64
	ReducedSeconds  int64
	// GrownProcs and ShrunkProcs are the net size deltas applied.
	GrownProcs  int
	ShrunkProcs int
}

// Processor applies ECCs in FCFS order.
type Processor struct {
	// MaxPerJob caps how many commands a single job may consume; 0 means
	// unlimited. The paper: "A maximum count on number of ECCs can be
	// imposed for a given job."
	MaxPerJob int

	Stats   Stats
	applied map[int]int
}

// NewProcessor returns a processor with the given per-job command budget.
func NewProcessor(maxPerJob int) *Processor {
	return &Processor{MaxPerJob: maxPerJob, applied: make(map[int]int)}
}

// Snapshot is the processor's restorable state: the aggregate statistics
// and the per-job applied-command counts the MaxPerJob budget is enforced
// against.
type Snapshot struct {
	MaxPerJob int         `json:"max_per_job,omitempty"`
	Stats     Stats       `json:"stats"`
	Applied   map[int]int `json:"applied,omitempty"`
}

// Snapshot captures the processor state for NewProcessorFromSnapshot.
func (p *Processor) Snapshot() Snapshot {
	s := Snapshot{MaxPerJob: p.MaxPerJob, Stats: p.Stats}
	if len(p.applied) > 0 {
		s.Applied = make(map[int]int, len(p.applied))
		for id, n := range p.applied {
			s.Applied[id] = n
		}
	}
	return s
}

// NewProcessorFromSnapshot reconstructs a processor mid-run.
func NewProcessorFromSnapshot(s Snapshot) *Processor {
	p := NewProcessor(s.MaxPerJob)
	p.Stats = s.Stats
	for id, n := range s.Applied {
		p.applied[id] = n
	}
	return p
}

// Apply executes one command against the target and returns what happened.
func (p *Processor) Apply(c cwf.Command, t Target) Outcome {
	p.Stats.Total++
	out := p.apply(c, t)
	switch out {
	case Applied:
		p.Stats.Applied++
		p.applied[c.JobID]++
	case Clamped:
		p.Stats.Applied++
		p.Stats.Clamped++
		p.applied[c.JobID]++
	case IgnoredFinished:
		p.Stats.IgnoredFinished++
	case IgnoredUnknown:
		p.Stats.IgnoredUnknown++
	case IgnoredLimit:
		p.Stats.IgnoredLimit++
	case IgnoredCapacity:
		p.Stats.IgnoredCapacity++
	}
	return out
}

func (p *Processor) apply(c cwf.Command, t Target) Outcome {
	if c.Amount <= 0 || !c.Type.IsECC() {
		return IgnoredUnknown
	}
	if p.MaxPerJob > 0 && p.applied[c.JobID] >= p.MaxPerJob {
		return IgnoredLimit
	}
	if j := t.FindWaiting(c.JobID); j != nil {
		return p.applyWaiting(c, j, t)
	}
	if j := t.FindRunning(c.JobID); j != nil {
		return p.applyRunning(c, j, t)
	}
	return IgnoredFinished
}

// applyWaiting mutates a still-queued job's requirements directly.
func (p *Processor) applyWaiting(c cwf.Command, j *job.Job, t Target) Outcome {
	switch c.Type {
	case cwf.ExtendTime:
		j.Dur += c.Amount
		p.Stats.ExtendedSeconds += c.Amount
		t.TouchWaiting(j)
		return Applied
	case cwf.ReduceTime:
		out := Applied
		nd := j.Dur - c.Amount
		if nd < 1 {
			nd = 1
			out = Clamped
		}
		p.Stats.ReducedSeconds += j.Dur - nd
		j.Dur = nd
		t.TouchWaiting(j)
		return out
	case cwf.ExtendProc:
		return p.resizeWaiting(j, j.Size+int(c.Amount), t)
	case cwf.ReduceProc:
		return p.resizeWaiting(j, j.Size-int(c.Amount), t)
	default:
		return IgnoredUnknown
	}
}

// boundFloor and boundCeil are a malleable job's processor bounds on the
// allocation grid (MinProcs rounded up, MaxProcs rounded down, reconciled
// so floor <= ceil). They return (0, 0) for rigid jobs — no bounds apply.
func boundFloor(j *job.Job, unit int) int {
	if j.MaxProcs <= 0 {
		return 0
	}
	lo := ((j.MinProcs + unit - 1) / unit) * unit
	if lo < unit {
		lo = unit
	}
	return lo
}

func boundCeil(j *job.Job, unit int) int {
	if j.MaxProcs <= 0 {
		return 0
	}
	hi := (j.MaxProcs / unit) * unit
	if lo := boundFloor(j, unit); hi < lo {
		hi = lo
	}
	return hi
}

func (p *Processor) resizeWaiting(j *job.Job, want int, t Target) Outcome {
	unit := t.MachineUnit()
	out := Applied
	size := ((want + unit - 1) / unit) * unit
	if size < unit {
		size = unit
		out = Clamped
	}
	if size > t.MachineTotal() {
		size = t.MachineTotal()
		out = Clamped
	}
	if j.MaxProcs > 0 {
		// A bounded job's size never leaves its malleable window, queued or
		// running: the scheduler's resize planning relies on the bounds.
		if lo := boundFloor(j, unit); size < lo {
			size = lo
			out = Clamped
		}
		if hi := boundCeil(j, unit); size > hi {
			size = hi
			out = Clamped
		}
	}
	if size > j.Size {
		p.Stats.GrownProcs += size - j.Size
	} else {
		p.Stats.ShrunkProcs += j.Size - size
	}
	j.Size = size
	t.TouchWaiting(j)
	return out
}

// applyRunning mutates a running job's kill-by time or allocation.
func (p *Processor) applyRunning(c cwf.Command, j *job.Job, t Target) Outcome {
	switch c.Type {
	case cwf.ExtendTime:
		oldEnd := j.EndTime
		j.EndTime += c.Amount
		j.Dur = j.EndTime - j.StartTime
		p.Stats.ExtendedSeconds += c.Amount
		t.RetimeRunning(j, oldEnd)
		return Applied
	case cwf.ReduceTime:
		out := Applied
		oldEnd := j.EndTime
		newEnd := j.EndTime - c.Amount
		floor := t.Now()
		if s := j.StartTime + 1; s > floor {
			floor = s
		}
		if newEnd < floor {
			newEnd = floor
			out = Clamped
		}
		p.Stats.ReducedSeconds += j.EndTime - newEnd
		j.EndTime = newEnd
		j.Dur = j.EndTime - j.StartTime
		t.RetimeRunning(j, oldEnd)
		return out
	case cwf.ExtendProc:
		unit := t.MachineUnit()
		want := ((j.Size + int(c.Amount) + unit - 1) / unit) * unit
		if want > t.MachineTotal() {
			want = t.MachineTotal()
		}
		if hi := boundCeil(j, unit); hi > 0 && want > hi {
			want = hi
		}
		if want == j.Size {
			return Clamped
		}
		grow := want - j.Size
		if err := t.ResizeRunning(j, want); err != nil {
			return IgnoredCapacity
		}
		p.Stats.GrownProcs += grow
		return Applied
	case cwf.ReduceProc:
		unit := t.MachineUnit()
		want := ((j.Size - int(c.Amount) + unit - 1) / unit) * unit
		out := Applied
		if want < unit {
			want = unit
			out = Clamped
		}
		if lo := boundFloor(j, unit); want < lo {
			want = lo
			out = Clamped
		}
		if want >= j.Size {
			return Clamped
		}
		shrink := j.Size - want
		if err := t.ResizeRunning(j, want); err != nil {
			return IgnoredCapacity
		}
		p.Stats.ShrunkProcs += shrink
		return out
	default:
		return IgnoredUnknown
	}
}
