package ecc

import (
	"errors"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
)

// fakeTarget implements Target over explicit job maps.
type fakeTarget struct {
	now      int64
	waiting  map[int]*job.Job
	running  map[int]*job.Job
	total    int
	unit     int
	free     int
	retimed  []*job.Job
	oldEnds  []int64
	touched  []*job.Job
	resizeOK bool
}

func newTarget() *fakeTarget {
	return &fakeTarget{
		waiting: map[int]*job.Job{}, running: map[int]*job.Job{},
		total: 320, unit: 32, free: 320, resizeOK: true,
	}
}

func (f *fakeTarget) Now() int64                  { return f.now }
func (f *fakeTarget) FindWaiting(id int) *job.Job { return f.waiting[id] }
func (f *fakeTarget) FindRunning(id int) *job.Job { return f.running[id] }
func (f *fakeTarget) MachineTotal() int           { return f.total }
func (f *fakeTarget) MachineUnit() int            { return f.unit }
func (f *fakeTarget) RetimeRunning(j *job.Job, oldEnd int64) {
	f.retimed = append(f.retimed, j)
	f.oldEnds = append(f.oldEnds, oldEnd)
}
func (f *fakeTarget) TouchWaiting(j *job.Job) { f.touched = append(f.touched, j) }
func (f *fakeTarget) ResizeRunning(j *job.Job, n int) error {
	if !f.resizeOK {
		return errors.New("no capacity")
	}
	j.Size = n
	return nil
}

func cmd(id int, typ cwf.ReqType, amt int64) cwf.Command {
	return cwf.Command{JobID: id, Issue: 0, Type: typ, Amount: amt}
}

func TestETQueuedExtendsDuration(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 32, Dur: 100}
	f.waiting[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ExtendTime, 50), f); out != Applied {
		t.Fatalf("outcome %v", out)
	}
	if j.Dur != 150 {
		t.Errorf("dur = %d, want 150", j.Dur)
	}
	if p.Stats.ExtendedSeconds != 50 || p.Stats.Applied != 1 {
		t.Errorf("stats wrong: %+v", p.Stats)
	}
}

func TestRTQueuedReducesDuration(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 32, Dur: 100}
	f.waiting[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ReduceTime, 40), f); out != Applied {
		t.Fatalf("outcome %v", out)
	}
	if j.Dur != 60 || p.Stats.ReducedSeconds != 40 {
		t.Errorf("dur = %d, reduced = %d", j.Dur, p.Stats.ReducedSeconds)
	}
}

func TestRTQueuedClampsToOneSecond(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 32, Dur: 100}
	f.waiting[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ReduceTime, 500), f); out != Clamped {
		t.Fatalf("outcome %v, want Clamped", out)
	}
	if j.Dur != 1 || p.Stats.ReducedSeconds != 99 {
		t.Errorf("dur = %d reduced = %d", j.Dur, p.Stats.ReducedSeconds)
	}
}

func TestETRunningMovesKillBy(t *testing.T) {
	f := newTarget()
	f.now = 50
	j := &job.Job{ID: 1, Size: 32, Dur: 100, StartTime: 0, EndTime: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ExtendTime, 30), f); out != Applied {
		t.Fatalf("outcome %v", out)
	}
	if j.EndTime != 130 || j.Dur != 130 {
		t.Errorf("end = %d dur = %d", j.EndTime, j.Dur)
	}
	if len(f.retimed) != 1 || f.retimed[0] != j {
		t.Error("RetimeRunning not invoked")
	}
}

func TestRTRunningReducesKillBy(t *testing.T) {
	f := newTarget()
	f.now = 50
	j := &job.Job{ID: 1, Size: 32, Dur: 100, StartTime: 0, EndTime: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ReduceTime, 20), f); out != Applied {
		t.Fatalf("outcome %v", out)
	}
	if j.EndTime != 80 || j.Dur != 80 {
		t.Errorf("end = %d dur = %d", j.EndTime, j.Dur)
	}
}

func TestRTRunningClampsToNow(t *testing.T) {
	// Reducing below the elapsed time kills the job now, not in the past.
	f := newTarget()
	f.now = 70
	j := &job.Job{ID: 1, Size: 32, Dur: 100, StartTime: 0, EndTime: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ReduceTime, 90), f); out != Clamped {
		t.Fatalf("outcome %v, want Clamped", out)
	}
	if j.EndTime != 70 {
		t.Errorf("end = %d, want 70 (now)", j.EndTime)
	}
	if p.Stats.ReducedSeconds != 30 {
		t.Errorf("reduced = %d, want 30", p.Stats.ReducedSeconds)
	}
}

func TestRTRunningAtStartInstantKeepsOneSecond(t *testing.T) {
	f := newTarget()
	f.now = 0
	j := &job.Job{ID: 1, Size: 32, Dur: 100, StartTime: 0, EndTime: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	p.Apply(cmd(1, cwf.ReduceTime, 1000), f)
	if j.EndTime != 1 || j.Dur != 1 {
		t.Errorf("end = %d dur = %d, want 1, 1", j.EndTime, j.Dur)
	}
}

func TestUnknownJobIgnored(t *testing.T) {
	p := NewProcessor(0)
	if out := p.Apply(cmd(9, cwf.ExtendTime, 10), newTarget()); out != IgnoredFinished {
		t.Fatalf("outcome %v, want IgnoredFinished", out)
	}
	if p.Stats.IgnoredFinished != 1 {
		t.Error("stats not counted")
	}
}

func TestPerJobLimit(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 32, Dur: 100}
	f.waiting[1] = j
	p := NewProcessor(2)
	p.Apply(cmd(1, cwf.ExtendTime, 10), f)
	p.Apply(cmd(1, cwf.ExtendTime, 10), f)
	if out := p.Apply(cmd(1, cwf.ExtendTime, 10), f); out != IgnoredLimit {
		t.Fatalf("third command outcome %v, want IgnoredLimit", out)
	}
	if j.Dur != 120 {
		t.Errorf("dur = %d, want 120 (only two applied)", j.Dur)
	}
}

func TestInvalidCommandIgnored(t *testing.T) {
	p := NewProcessor(0)
	f := newTarget()
	if out := p.Apply(cmd(1, cwf.ExtendTime, 0), f); out != IgnoredUnknown {
		t.Errorf("zero amount outcome %v", out)
	}
	if out := p.Apply(cmd(1, cwf.Submit, 10), f); out != IgnoredUnknown {
		t.Errorf("submit-as-ECC outcome %v", out)
	}
}

func TestEPQueuedQuantizes(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 64, Dur: 100}
	f.waiting[1] = j
	p := NewProcessor(0)
	p.Apply(cmd(1, cwf.ExtendProc, 10), f) // 74 -> quantized 96
	if j.Size != 96 {
		t.Errorf("size = %d, want 96", j.Size)
	}
	if p.Stats.GrownProcs != 32 {
		t.Errorf("grown = %d, want 32", p.Stats.GrownProcs)
	}
}

func TestEPQueuedCapsAtMachine(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 288, Dur: 100}
	f.waiting[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ExtendProc, 320), f); out != Clamped {
		t.Fatalf("outcome %v, want Clamped", out)
	}
	if j.Size != 320 {
		t.Errorf("size = %d, want 320", j.Size)
	}
}

func TestRPQueuedFloorsAtUnit(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 64, Dur: 100}
	f.waiting[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ReduceProc, 500), f); out != Clamped {
		t.Fatalf("outcome %v, want Clamped", out)
	}
	if j.Size != 32 {
		t.Errorf("size = %d, want 32", j.Size)
	}
}

func TestEPRunningGrows(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 64, Dur: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ExtendProc, 64), f); out != Applied {
		t.Fatalf("outcome %v", out)
	}
	if j.Size != 128 || p.Stats.GrownProcs != 64 {
		t.Errorf("size = %d grown = %d", j.Size, p.Stats.GrownProcs)
	}
}

func TestEPRunningNoCapacity(t *testing.T) {
	f := newTarget()
	f.resizeOK = false
	j := &job.Job{ID: 1, Size: 64, Dur: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ExtendProc, 64), f); out != IgnoredCapacity {
		t.Fatalf("outcome %v, want IgnoredCapacity", out)
	}
	if j.Size != 64 {
		t.Error("failed grow mutated job")
	}
}

func TestRPRunningShrinks(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 128, Dur: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ReduceProc, 64), f); out != Applied {
		t.Fatalf("outcome %v", out)
	}
	if j.Size != 64 || p.Stats.ShrunkProcs != 64 {
		t.Errorf("size = %d shrunk = %d", j.Size, p.Stats.ShrunkProcs)
	}
}

func TestRPRunningAlreadyMinimal(t *testing.T) {
	f := newTarget()
	j := &job.Job{ID: 1, Size: 32, Dur: 100, State: job.Running}
	f.running[1] = j
	p := NewProcessor(0)
	if out := p.Apply(cmd(1, cwf.ReduceProc, 64), f); out != Clamped {
		t.Fatalf("outcome %v, want Clamped", out)
	}
	if j.Size != 32 {
		t.Error("minimal job resized")
	}
}

func TestWaitingPreferredOverRunning(t *testing.T) {
	// An ID present in both maps (cannot happen in the engine, but the
	// processor's lookup order is part of its contract): waiting wins.
	f := newTarget()
	w := &job.Job{ID: 1, Size: 32, Dur: 100}
	r := &job.Job{ID: 1, Size: 32, Dur: 100, EndTime: 100, State: job.Running}
	f.waiting[1] = w
	f.running[1] = r
	NewProcessor(0).Apply(cmd(1, cwf.ExtendTime, 10), f)
	if w.Dur != 110 || r.Dur != 100 {
		t.Error("lookup order changed")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Applied, Clamped, IgnoredFinished, IgnoredUnknown, IgnoredLimit, IgnoredCapacity, Outcome(99)} {
		if o.String() == "" {
			t.Errorf("empty string for outcome %d", o)
		}
	}
}

func TestStatsTotals(t *testing.T) {
	f := newTarget()
	f.waiting[1] = &job.Job{ID: 1, Size: 32, Dur: 100}
	p := NewProcessor(1)
	p.Apply(cmd(1, cwf.ExtendTime, 10), f) // applied
	p.Apply(cmd(1, cwf.ExtendTime, 10), f) // limit
	p.Apply(cmd(2, cwf.ExtendTime, 10), f) // finished
	if p.Stats.Total != 3 || p.Stats.Applied != 1 || p.Stats.IgnoredLimit != 1 || p.Stats.IgnoredFinished != 1 {
		t.Errorf("stats wrong: %+v", p.Stats)
	}
}
