// Package energy converts measured utilization into the energy terms the
// paper motivates its results with ("improved utilization of the order of
// even 4% can lead to huge energy savings", Section I-C): given a
// per-processor power model, it computes the energy a run consumed and the
// savings one scheduler's schedule realizes over another's for the same
// work.
//
// The model is the standard two-level node power model: a busy processor
// draws Busy watts, an idle one Idle watts, scaled by the facility PUE.
// Because the same jobs run in every comparison, the busy energy is (near)
// identical; what a better-packing scheduler saves is *idle* energy — it
// finishes the same work in a shorter span.
package energy

import (
	"fmt"

	"elastisched/internal/metrics"
)

// PowerModel is the per-processor electrical model.
type PowerModel struct {
	// BusyWatts is the draw of a processor executing a job.
	BusyWatts float64
	// IdleWatts is the draw of a powered-on idle processor.
	IdleWatts float64
	// PUE is the facility power usage effectiveness multiplier (>= 1).
	PUE float64
}

// BlueGeneP returns a model in the published BlueGene/P envelope:
// roughly 24 W per processor core-group share busy, 16 W idle, at a
// typical 2008-era facility PUE of 1.6.
func BlueGeneP() PowerModel {
	return PowerModel{BusyWatts: 24, IdleWatts: 16, PUE: 1.6}
}

// Validate rejects non-physical models.
func (p PowerModel) Validate() error {
	if p.BusyWatts <= 0 || p.IdleWatts < 0 || p.BusyWatts < p.IdleWatts {
		return fmt.Errorf("energy: implausible power model %+v", p)
	}
	if p.PUE < 1 {
		return fmt.Errorf("energy: PUE %g below 1", p.PUE)
	}
	return nil
}

// Report is the energy accounting of one run.
type Report struct {
	// BusyKWh and IdleKWh split the machine energy over the measurement
	// window; TotalKWh includes the PUE overhead.
	BusyKWh  float64
	IdleKWh  float64
	TotalKWh float64
	// SpanHours is the measurement window length.
	SpanHours float64
}

// Compute derives the energy report from a run summary: utilization gives
// the busy processor-hours, the window and machine size give the rest.
func Compute(s metrics.Summary, pm PowerModel) (Report, error) {
	if err := pm.Validate(); err != nil {
		return Report{}, err
	}
	span := float64(s.WindowEnd-s.WindowStart) / 3600 // hours
	if span < 0 {
		return Report{}, fmt.Errorf("energy: negative window %d..%d", s.WindowStart, s.WindowEnd)
	}
	procHours := span * float64(s.MachineSize)
	busy := s.Utilization * procHours
	idle := procHours - busy
	r := Report{
		BusyKWh:   busy * pm.BusyWatts / 1000,
		IdleKWh:   idle * pm.IdleWatts / 1000,
		SpanHours: span,
	}
	r.TotalKWh = (r.BusyKWh + r.IdleKWh) * pm.PUE
	return r, nil
}

// Savings compares two runs of the same workload: target against baseline.
// Positive SavedKWh means the target spent less energy delivering the same
// jobs (it packed the work into a shorter or denser schedule).
type Savings struct {
	Target, Baseline Report
	SavedKWh         float64
	SavedPercent     float64
}

// Compare computes the savings of target over baseline for the same
// workload under one power model.
func Compare(target, baseline metrics.Summary, pm PowerModel) (Savings, error) {
	tr, err := Compute(target, pm)
	if err != nil {
		return Savings{}, err
	}
	br, err := Compute(baseline, pm)
	if err != nil {
		return Savings{}, err
	}
	s := Savings{Target: tr, Baseline: br, SavedKWh: br.TotalKWh - tr.TotalKWh}
	if br.TotalKWh > 0 {
		s.SavedPercent = 100 * s.SavedKWh / br.TotalKWh
	}
	return s, nil
}
