package energy

import (
	"math"
	"testing"

	"elastisched/internal/metrics"
)

func summary(util float64, m int, span int64) metrics.Summary {
	return metrics.Summary{Utilization: util, MachineSize: m, WindowStart: 0, WindowEnd: span}
}

func TestComputeExact(t *testing.T) {
	// 320 procs for 1 hour at 50% utilization, 20 W busy / 10 W idle, PUE 1:
	// busy = 160 proc-h * 20 W = 3.2 kWh; idle = 160 * 10 = 1.6 kWh.
	pm := PowerModel{BusyWatts: 20, IdleWatts: 10, PUE: 1}
	r, err := Compute(summary(0.5, 320, 3600), pm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.BusyKWh-3.2) > 1e-12 || math.Abs(r.IdleKWh-1.6) > 1e-12 {
		t.Errorf("busy/idle = %g/%g, want 3.2/1.6", r.BusyKWh, r.IdleKWh)
	}
	if math.Abs(r.TotalKWh-4.8) > 1e-12 || r.SpanHours != 1 {
		t.Errorf("total %g span %g", r.TotalKWh, r.SpanHours)
	}
}

func TestPUEMultiplies(t *testing.T) {
	pm := PowerModel{BusyWatts: 20, IdleWatts: 10, PUE: 2}
	r, err := Compute(summary(0.5, 320, 3600), pm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalKWh-9.6) > 1e-12 {
		t.Errorf("PUE not applied: %g", r.TotalKWh)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []PowerModel{
		{BusyWatts: 0, IdleWatts: 0, PUE: 1},
		{BusyWatts: 10, IdleWatts: 20, PUE: 1}, // idle above busy
		{BusyWatts: 20, IdleWatts: 10, PUE: 0.5},
		{BusyWatts: -1, IdleWatts: 0, PUE: 1},
	}
	for i, pm := range bad {
		if _, err := Compute(summary(0.5, 320, 3600), pm); err == nil {
			t.Errorf("model %d accepted: %+v", i, pm)
		}
	}
}

func TestCompareSavings(t *testing.T) {
	// Same work (equal busy proc-hours): target packs it into a 10% shorter
	// span with higher utilization -> idle energy drops.
	pm := PowerModel{BusyWatts: 20, IdleWatts: 10, PUE: 1}
	baseline := summary(0.8, 320, 10000)
	// Busy proc-seconds = 0.8*320*10000. In a 9000s span, utilization is
	// 0.8*10000/9000.
	target := summary(0.8*10000/9000, 320, 9000)
	s, err := Compare(target, baseline, pm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Target.BusyKWh-s.Baseline.BusyKWh) > 1e-9 {
		t.Fatalf("busy energy should match for the same work: %g vs %g",
			s.Target.BusyKWh, s.Baseline.BusyKWh)
	}
	if s.SavedKWh <= 0 {
		t.Errorf("shorter schedule saved nothing: %+v", s)
	}
	// Saved idle energy = 0.2*320*1000s-equivalent... verify against the
	// closed form: idle proc-hours drop by (2000-1800)/3600*320.
	wantSaved := (float64(320*10000)*(1-0.8) - float64(320*9000)*(1-0.8*10000/9000)) / 3600 * 10 / 1000
	if math.Abs(s.SavedKWh-wantSaved) > 1e-9 {
		t.Errorf("saved %g, want %g", s.SavedKWh, wantSaved)
	}
	if s.SavedPercent <= 0 || s.SavedPercent >= 100 {
		t.Errorf("saved percent %g out of range", s.SavedPercent)
	}
}

func TestBlueGenePDefaults(t *testing.T) {
	pm := BlueGeneP()
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	if pm.PUE < 1 || pm.BusyWatts <= pm.IdleWatts {
		t.Errorf("defaults implausible: %+v", pm)
	}
}

func TestNegativeWindowRejected(t *testing.T) {
	s := metrics.Summary{MachineSize: 320, WindowStart: 100, WindowEnd: 50}
	if _, err := Compute(s, BlueGeneP()); err == nil {
		t.Error("negative window accepted")
	}
}
