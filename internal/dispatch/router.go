package dispatch

import (
	"fmt"
	"sort"

	"elastisched/internal/job"
)

// Routing policy names accepted by Config.Route and NewRouter.
const (
	// RouteRoundRobin is the static default: job i goes to cluster
	// i mod N, independent of job shape. Load-blind but zero-state.
	RouteRoundRobin = "roundrobin"
	// RouteLeastWork routes each submission to the cluster holding the
	// least routed work so far, measured in processor-seconds
	// (size × estimated runtime). Balances total work under size- or
	// runtime-skewed mixes where round-robin leaves hot shards.
	RouteLeastWork = "least-work"
	// RouteBestFit is size-aware bin packing over a virtual machine per
	// cluster: each routed job virtually occupies its processors for its
	// estimated runtime, and a new submission goes to the fitting cluster
	// with the tightest remaining capacity. Narrow jobs therefore pack
	// onto already-loaded shards, keeping whole-machine-scale free blocks
	// available so wide jobs land on unfragmented shards. When no cluster
	// virtually fits the job, it falls back to the least outstanding
	// work.
	RouteBestFit = "best-fit"
	// RouteFeedback is the dynamic policy: arrivals are routed by the
	// clusters' last-epoch barrier digests (observed outstanding work)
	// instead of a model of the routed prefix. It needs the epoch protocol
	// (Config.Epoch > 0) to have digests to read, so NewRouter rejects it;
	// use NewDynamicRouter.
	RouteFeedback = "feedback"
)

// ErrUnknownRoute rejects a routing-policy name NewRouter does not know.
var ErrUnknownRoute = fmt.Errorf("dispatch: unknown routing policy (want one of %v)", Policies())

// Router decides which cluster each submission lands on. Implementations
// must be purely workload-deterministic: jobs are presented in workload
// (submission) order, and the decision may depend only on that prefix and
// the (clusters, m) geometry — never on timing, worker count, or
// simulation outcomes. That is what keeps every policy byte-identical
// across worker counts (the package determinism contract).
type Router interface {
	// Name returns the policy name as accepted by NewRouter.
	Name() string
	// Reset prepares the router for one routing pass: clusters is the
	// cluster count, m the per-cluster machine size in processors.
	Reset(clusters, m int)
	// Route returns the destination cluster (0..clusters-1) for j.
	Route(j *job.Job) int
}

// NewRouter resolves a policy name ("" means RouteRoundRobin) to a fresh
// Router instance. Routers hold routing state and are not safe to share
// across concurrent routing passes.
func NewRouter(name string) (Router, error) {
	switch name {
	case "", RouteRoundRobin:
		return &roundRobin{}, nil
	case RouteLeastWork:
		return &leastWork{}, nil
	case RouteBestFit:
		return &bestFit{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownRoute, name)
	}
}

// Policies lists the routing-policy names NewRouter accepts, sorted.
func Policies() []string {
	names := []string{RouteRoundRobin, RouteLeastWork, RouteBestFit}
	sort.Strings(names)
	return names
}

// DigestRouter is the dynamic extension of Router: a policy that reads
// live cluster state, fed the merged barrier digests once per epoch. The
// determinism contract extends naturally — digests are a deterministic
// function of the simulation state at the barrier, so decisions remain a
// pure function of (workload, clusters, policy, epoch length).
type DigestRouter interface {
	Router
	// ObserveDigests installs the digests published at the last barrier;
	// subsequent Route calls decide from them. Called once per epoch,
	// before that epoch's release window is routed.
	ObserveDigests(d []Digest)
	// Assigned informs the router of a placement it did not decide — an
	// affinity-pinned job — so its load accounting stays coherent.
	Assigned(j *job.Job, c int)
}

// NewDynamicRouter resolves a policy name for an epoch-mode run: every
// static policy plus RouteFeedback.
func NewDynamicRouter(name string) (Router, error) {
	if name == RouteFeedback {
		return &feedback{}, nil
	}
	return NewRouter(name)
}

// DynamicPolicies lists the routing-policy names an epoch-mode run
// (Config.Epoch > 0) accepts, sorted: the static policies plus feedback.
func DynamicPolicies() []string {
	names := append(Policies(), RouteFeedback)
	sort.Strings(names)
	return names
}

// feedback routes each released arrival to the cluster with the least
// observed outstanding work: the last barrier digest's backlog plus
// residual running processor-seconds, plus the work this router has routed
// there since that barrier. Before the first barrier every digest is zero
// and the policy degenerates to least-work over the routed prefix. Ties go
// to the lowest cluster index.
type feedback struct {
	base   []int64 // last barrier digest load per cluster
	routed []int64 // work routed since that barrier
}

func (r *feedback) Name() string { return RouteFeedback }

func (r *feedback) Reset(clusters, m int) {
	r.base = make([]int64, clusters)
	r.routed = make([]int64, clusters)
}

func (r *feedback) ObserveDigests(d []Digest) {
	for c := range r.base {
		r.base[c] = 0
		r.routed[c] = 0
	}
	for _, dg := range d {
		r.base[dg.Cluster] = dg.load()
	}
}

func (r *feedback) Route(j *job.Job) int {
	best := 0
	bestLoad := r.base[0] + r.routed[0]
	for c := 1; c < len(r.base); c++ {
		if l := r.base[c] + r.routed[c]; l < bestLoad {
			best, bestLoad = c, l
		}
	}
	r.routed[best] += int64(j.Size) * j.Dur
	return best
}

func (r *feedback) Assigned(j *job.Job, c int) {
	r.routed[c] += int64(j.Size) * j.Dur
}

// roundRobin is the static default dispatcher: submission i to cluster
// i mod clusters.
type roundRobin struct {
	clusters, next int
}

func (r *roundRobin) Name() string { return RouteRoundRobin }

func (r *roundRobin) Reset(clusters, m int) {
	r.clusters = clusters
	r.next = 0
}

func (r *roundRobin) Route(*job.Job) int {
	c := r.next
	r.next++
	if r.next == r.clusters {
		r.next = 0
	}
	return c
}

// leastWork tracks the processor-seconds routed to each cluster and sends
// every submission to the least-loaded one (ties to the lowest index).
type leastWork struct {
	work []float64
}

func (r *leastWork) Name() string { return RouteLeastWork }

func (r *leastWork) Reset(clusters, m int) {
	r.work = make([]float64, clusters)
}

func (r *leastWork) Route(j *job.Job) int {
	best := 0
	for c := 1; c < len(r.work); c++ {
		if r.work[c] < r.work[best] {
			best = c
		}
	}
	r.work[best] += float64(j.Size) * float64(j.Dur)
	return best
}

// vjob is one virtually running job on a bestFit cluster model.
type vjob struct {
	end  int64
	size int
	work float64
}

// bestFit models each cluster as a virtual machine of m processors: a
// routed job occupies Size processors from its arrival for its estimated
// runtime (a min-heap per cluster retires virtual completions as later
// arrivals are routed). A submission goes to the fitting cluster with the
// least free capacity left — classic best-fit, so narrow jobs stack onto
// partially filled shards and machine-scale free runs survive for wide
// jobs. When every cluster is virtually full the job is parked, overflow
// allowed, on the cluster with the least outstanding processor-seconds
// (the least-work criterion), which models its queue.
type bestFit struct {
	m       int
	used    []int
	work    []float64
	running [][]vjob
}

func (r *bestFit) Name() string { return RouteBestFit }

func (r *bestFit) Reset(clusters, m int) {
	r.m = m
	r.used = make([]int, clusters)
	r.work = make([]float64, clusters)
	r.running = make([][]vjob, clusters)
}

func (r *bestFit) Route(j *job.Job) int {
	for c := range r.running {
		r.retire(c, j.Arrival)
	}
	best, bestFree := -1, 0
	for c, u := range r.used {
		free := r.m - u
		if j.Size <= free && (best < 0 || free < bestFree) {
			best, bestFree = c, free
		}
	}
	if best < 0 {
		best = 0
		for c := 1; c < len(r.work); c++ {
			if r.work[c] < r.work[best] {
				best = c
			}
		}
	}
	wk := float64(j.Size) * float64(j.Dur)
	r.used[best] += j.Size
	r.work[best] += wk
	heapPush(&r.running[best], vjob{end: j.Arrival + j.Dur, size: j.Size, work: wk})
	return best
}

// retire releases every virtual job on cluster c that has completed by
// time now. Jobs are routed in arrival order, so retirement only moves
// forward; equal-end pops commute (only the sums matter), keeping the
// model deterministic.
func (r *bestFit) retire(c int, now int64) {
	h := r.running[c]
	for len(h) > 0 && h[0].end <= now {
		v := heapPop(&h)
		r.used[c] -= v.size
		r.work[c] -= v.work
	}
	r.running[c] = h
}

// heapPush/heapPop maintain a binary min-heap on vjob.end in place —
// container/heap without the interface boxing.
func heapPush(h *[]vjob, v vjob) {
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].end <= s[i].end {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

func heapPop(h *[]vjob) vjob {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].end < s[small].end {
			small = l
		}
		if r < n && s[r].end < s[small].end {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	*h = s
	return top
}
