// Package dispatch is the two-level scheduling layer: a global dispatcher
// that routes an arriving workload across N per-cluster engine sessions and
// runs them on parallel goroutines, merging their outcomes
// deterministically. It models the scale-out configuration of the ROADMAP —
// many racks, one entry point — the way the two-level-scheduling and SST
// scalable-simulation papers structure it: global routing above, unmodified
// per-cluster scheduling below.
//
// Determinism contract: routing is a pure function of the workload order
// and the cluster count (round-robin over submissions, commands following
// their job), every cluster simulation is single-goroutine deterministic,
// and the merge walks clusters in index order. The result is therefore
// byte-identically reproducible for any worker count; the cross-worker
// determinism test pins 1/2/4 workers. This is the same
// parallel-execution/deterministic-reduction split the experiment sweeps
// use.
package dispatch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"elastisched/internal/cwf"
	"elastisched/internal/ecc"
	"elastisched/internal/engine"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
)

// Typed configuration errors, testable with errors.Is.
var (
	// ErrClusterCount rejects a non-positive cluster count.
	ErrClusterCount = errors.New("dispatch: cluster count must be at least 1")
	// ErrNoScheduler rejects a config without a scheduler factory.
	ErrNoScheduler = errors.New("dispatch: no scheduler factory configured")
	// ErrTemplateScheduler rejects a template carrying a scheduler instance:
	// policies hold scratch state, so each cluster needs its own, built by
	// NewScheduler.
	ErrTemplateScheduler = errors.New("dispatch: engine template must not carry a scheduler instance; set NewScheduler")
	// ErrTemplateObserver rejects a template carrying an observer: placement
	// events from parallel clusters would interleave nondeterministically.
	ErrTemplateObserver = errors.New("dispatch: engine template must not carry an observer")
)

// Config describes one sharded run.
type Config struct {
	// Clusters is the number of per-cluster sessions (the global machine is
	// Clusters × Engine.M processors).
	Clusters int
	// Workers bounds the goroutines stepping cluster sessions; 0 means
	// GOMAXPROCS. The outcome is identical for any value (see the package
	// determinism contract).
	Workers int
	// Engine is the per-cluster configuration template: machine geometry,
	// ECC processing, allocation policy, fault model. Scheduler and Observer
	// must be nil; Prevalidated is managed by the dispatcher.
	Engine engine.Config
	// NewScheduler builds one policy instance per cluster.
	NewScheduler func() sched.Scheduler
}

func (cfg *Config) validate() error {
	if cfg.Clusters < 1 {
		return fmt.Errorf("%w (got %d)", ErrClusterCount, cfg.Clusters)
	}
	if cfg.NewScheduler == nil {
		return ErrNoScheduler
	}
	if cfg.Engine.Scheduler != nil {
		return ErrTemplateScheduler
	}
	if cfg.Engine.Observer != nil {
		return ErrTemplateObserver
	}
	return nil
}

// ClusterResult is one cluster's outcome.
type ClusterResult struct {
	// Cluster is the cluster index; Jobs the number of submissions routed
	// to it.
	Cluster int
	Jobs    int
	Result  *engine.Result
}

// Result is the merged outcome of a sharded run.
type Result struct {
	// Merged aggregates the exactly-mergeable summary fields across
	// clusters: job counts, the busy-area utilization over the global
	// window and machine, job-weighted means (wait, runtime, bounded
	// slowdown, per-class waits), MaxWait, and the fault/ECC accounting
	// sums. Order statistics (median, p95), steady-state measures, and
	// queue depth are per-cluster properties with no exact global
	// counterpart — they stay zero here and live in Clusters[i].
	Merged metrics.Summary
	// ECC sums the command-processor accounting; DroppedECC the commands
	// dropped by non-ECC configurations.
	ECC        ecc.Stats
	DroppedECC int
	// Events and Cycles total the kernel events and scheduler invocations
	// across clusters.
	Events uint64
	Cycles uint64
	// Clusters holds the per-cluster results, in cluster order.
	Clusters []ClusterResult
}

// route splits the workload into per-cluster workloads: submissions
// round-robin in workload order, each command following its job. The split
// depends only on the workload and the cluster count, never on timing or
// worker count.
func route(w *cwf.Workload, clusters int) []*cwf.Workload {
	parts := make([]*cwf.Workload, clusters)
	for c := range parts {
		parts[c] = &cwf.Workload{Header: w.Header}
	}
	home := make(map[int]int, len(w.Jobs))
	for i, j := range w.Jobs {
		c := i % clusters
		home[j.ID] = c
		parts[c].Jobs = append(parts[c].Jobs, j)
	}
	for _, cmd := range w.Commands {
		if c, ok := home[cmd.JobID]; ok {
			parts[c].Commands = append(parts[c].Commands, cmd)
		}
		// A command referencing a job no cluster owns cannot exist in a
		// validated workload; Run validates before routing.
	}
	return parts
}

// Run executes the workload across cfg.Clusters parallel cluster sessions
// and merges the outcomes. The workload is validated once against the
// per-cluster machine and not mutated (each session clones its jobs), so
// the same workload can be replayed under other configurations.
func Run(w *cwf.Workload, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Every job must fit one cluster's machine; validating the whole
	// workload against the per-cluster M establishes that for any routing.
	if !cfg.Engine.Prevalidated {
		if err := w.Validate(cfg.Engine.M); err != nil {
			return nil, err
		}
	}

	parts := route(w, cfg.Clusters)
	outs := make([]*engine.Result, cfg.Clusters)
	errs := make([]error, cfg.Clusters)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Clusters {
		workers = cfg.Clusters
	}
	tasks := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for c := range tasks {
				ecfg := cfg.Engine
				ecfg.Scheduler = cfg.NewScheduler()
				ecfg.Prevalidated = true
				if cfg.Engine.Faults != nil {
					// Each cluster draws an independent fault stream from a
					// seed offset by its index, so the same global seed fails
					// the same groups of the same clusters on every run.
					fc := *cfg.Engine.Faults
					fc.Seed += int64(c)
					ecfg.Faults = &fc
				}
				outs[c], errs[c] = engine.Run(parts[c], ecfg)
			}
		}()
	}
	for c := 0; c < cfg.Clusters; c++ {
		tasks <- c
	}
	close(tasks)
	wg.Wait()

	// Surface the first error in cluster order, regardless of which worker
	// hit it first on the wall clock.
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dispatch: cluster %d: %w", c, err)
		}
	}

	res := &Result{Clusters: make([]ClusterResult, cfg.Clusters)}
	for c, r := range outs {
		res.Clusters[c] = ClusterResult{Cluster: c, Jobs: len(parts[c].Jobs), Result: r}
		res.ECC = addECC(res.ECC, r.ECC)
		res.DroppedECC += r.DroppedECC
		res.Events += r.Events
		res.Cycles += r.Cycles
	}
	res.Merged = mergeSummaries(outs, cfg.Engine.M)
	return res, nil
}

// mergeSummaries combines per-cluster summaries into the global view,
// walking clusters in index order so every float accumulates
// deterministically. Only exactly-mergeable fields are filled (see
// Result.Merged).
func mergeSummaries(outs []*engine.Result, clusterM int) metrics.Summary {
	var g metrics.Summary
	g.MachineSize = clusterM * len(outs)
	first := true
	// Busy processor-seconds reconstruct exactly from each cluster's
	// utilization: area_i = util_i × span_i × M_i.
	var area, waitSum, runSum, boundedSum, batchSum, dedSum, onTimeSum float64
	var batchJobs int
	for _, r := range outs {
		s := r.Summary
		if s.Jobs == 0 && s.JobsStarted == 0 {
			continue
		}
		if first || s.WindowStart < g.WindowStart {
			g.WindowStart = s.WindowStart
		}
		if first || s.WindowEnd > g.WindowEnd {
			g.WindowEnd = s.WindowEnd
		}
		first = false
		n := float64(s.Jobs)
		g.Jobs += s.Jobs
		g.JobsStarted += s.JobsStarted
		g.JobsFinished += s.JobsFinished
		g.DedicatedJobs += s.DedicatedJobs
		batchJobs += s.Jobs - s.DedicatedJobs
		area += s.Utilization * float64(s.WindowEnd-s.WindowStart) * float64(s.MachineSize)
		waitSum += s.MeanWait * n
		runSum += s.MeanRun * n
		boundedSum += s.MeanBoundedSlow * n
		batchSum += s.MeanBatchWait * float64(s.Jobs-s.DedicatedJobs)
		dedSum += s.MeanDedWait * float64(s.DedicatedJobs)
		onTimeSum += s.DedicatedOnTime * float64(s.DedicatedJobs)
		if s.MaxWait > g.MaxWait {
			g.MaxWait = s.MaxWait
		}
		g.KilledJobs += s.KilledJobs
		g.RetriedJobs += s.RetriedJobs
		g.DroppedJobs += s.DroppedJobs
		g.LostWorkSeconds += s.LostWorkSeconds
		g.DownProcSeconds += s.DownProcSeconds
	}
	if span := float64(g.WindowEnd - g.WindowStart); span > 0 {
		g.Utilization = area / (span * float64(g.MachineSize))
	}
	if g.Jobs > 0 {
		n := float64(g.Jobs)
		g.MeanWait = waitSum / n
		g.MeanRun = runSum / n
		g.MeanBoundedSlow = boundedSum / n
	}
	if g.MeanRun > 0 {
		g.Slowdown = (g.MeanWait + g.MeanRun) / g.MeanRun
	}
	if batchJobs > 0 {
		g.MeanBatchWait = batchSum / float64(batchJobs)
	}
	if g.DedicatedJobs > 0 {
		g.MeanDedWait = dedSum / float64(g.DedicatedJobs)
		g.DedicatedOnTime = onTimeSum / float64(g.DedicatedJobs)
	}
	return g
}

func addECC(a, b ecc.Stats) ecc.Stats {
	a.Total += b.Total
	a.Applied += b.Applied
	a.Clamped += b.Clamped
	a.IgnoredFinished += b.IgnoredFinished
	a.IgnoredUnknown += b.IgnoredUnknown
	a.IgnoredLimit += b.IgnoredLimit
	a.IgnoredCapacity += b.IgnoredCapacity
	a.ExtendedSeconds += b.ExtendedSeconds
	a.ReducedSeconds += b.ReducedSeconds
	a.GrownProcs += b.GrownProcs
	a.ShrunkProcs += b.ShrunkProcs
	return a
}

// JobsPerCluster reports how a workload of n submissions spreads over
// clusters — the per-cluster load factor tooling prints before a run.
func JobsPerCluster(n, clusters int) []int {
	counts := make([]int, clusters)
	for i := 0; i < n; i++ {
		counts[i%clusters]++
	}
	return counts
}
