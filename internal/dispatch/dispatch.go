// Package dispatch is the two-level scheduling layer: a global dispatcher
// that routes an arriving workload across N per-cluster engine sessions and
// runs them on parallel goroutines, merging their outcomes
// deterministically. It models the scale-out configuration of the ROADMAP —
// many racks, one entry point — the way the two-level-scheduling and SST
// scalable-simulation papers structure it: global routing above, unmodified
// per-cluster scheduling below.
//
// Determinism contract: routing is a pure function of the workload order,
// the cluster count, and the routing policy (see Router — round-robin,
// least-work, best-fit; commands always follow their job), every cluster
// simulation is single-goroutine deterministic, and the merge walks
// clusters in index order. The result is therefore byte-identically
// reproducible for any worker count under every policy; the cross-worker
// determinism test pins 1/2/4/8 workers for each policy. This is the same
// parallel-execution/deterministic-reduction split the experiment sweeps
// use.
package dispatch

import (
	"errors"
	"fmt"
	"sync"

	"elastisched/internal/cwf"
	"elastisched/internal/ecc"
	"elastisched/internal/engine"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
)

// Typed configuration errors, testable with errors.Is.
var (
	// ErrClusterCount rejects a non-positive cluster count.
	ErrClusterCount = errors.New("dispatch: cluster count must be at least 1")
	// ErrNoScheduler rejects a config without a scheduler factory.
	ErrNoScheduler = errors.New("dispatch: no scheduler factory configured")
	// ErrTemplateScheduler rejects a template carrying a scheduler instance:
	// policies hold scratch state, so each cluster needs its own, built by
	// NewScheduler.
	ErrTemplateScheduler = errors.New("dispatch: engine template must not carry a scheduler instance; set NewScheduler")
	// ErrTemplateObserver rejects a template carrying an observer: placement
	// events from parallel clusters would interleave nondeterministically.
	ErrTemplateObserver = errors.New("dispatch: engine template must not carry an observer")
	// ErrEpochRequired rejects dynamic features — stealing, affinity pinning,
	// feedback routing — on a multi-cluster run without a positive Epoch:
	// they all live in the epoch protocol's barrier exchange.
	ErrEpochRequired = errors.New("dispatch: steal/affinity/feedback require a positive Epoch")
)

// Config describes one sharded run.
type Config struct {
	// Clusters is the number of per-cluster sessions (the global machine is
	// Clusters × Engine.M processors).
	Clusters int
	// Workers bounds the goroutines stepping cluster sessions; 0 means
	// GOMAXPROCS. The outcome is identical for any value (see the package
	// determinism contract).
	Workers int
	// Engine is the per-cluster configuration template: machine geometry,
	// ECC processing, allocation policy, fault model. Scheduler and Observer
	// must be nil; Prevalidated is managed by the dispatcher.
	Engine engine.Config
	// NewScheduler builds one policy instance per cluster.
	NewScheduler func() sched.Scheduler
	// Route names the routing policy splitting submissions over clusters:
	// RouteRoundRobin (the default for ""), RouteLeastWork, or
	// RouteBestFit — plus RouteFeedback when Epoch > 0. Routing is a pure
	// function of (workload order, cluster count, policy, and — for
	// feedback — the deterministic barrier digests), so every policy keeps
	// the cross-worker determinism contract.
	Route string
	// Epoch, when positive on a multi-cluster run, switches to the
	// epoch-synchronization protocol: sessions step to shared virtual-time
	// barriers every Epoch seconds, publish queue digests, and exchange
	// work deterministically (see epoch.go). Zero keeps the one-shot static
	// path. A single cluster always bypasses the epoch machinery: there is
	// no peer to exchange with, and the plain path is byte-identical.
	Epoch int64
	// Steal enables the barrier exchange step: idle clusters pull queued
	// jobs from backlogged ones, commands following the job. Needs Epoch.
	Steal bool
	// Affinity, when positive, pins every Affinity-th submission (job IDs
	// divisible by Affinity) to a home cluster derived from its ID — a
	// data-locality class that routing honors and stealing never violates.
	// Needs Epoch.
	Affinity int
}

func (cfg *Config) validate() error {
	if cfg.Clusters < 1 {
		return fmt.Errorf("%w (got %d)", ErrClusterCount, cfg.Clusters)
	}
	if cfg.NewScheduler == nil {
		return ErrNoScheduler
	}
	if cfg.Engine.Scheduler != nil {
		return ErrTemplateScheduler
	}
	if cfg.Engine.Observer != nil {
		return ErrTemplateObserver
	}
	if cfg.Epoch < 0 {
		return fmt.Errorf("%w (got epoch %d)", ErrEpochRequired, cfg.Epoch)
	}
	if cfg.Clusters > 1 && cfg.Epoch == 0 &&
		(cfg.Steal || cfg.Affinity > 0 || cfg.Route == RouteFeedback) {
		return ErrEpochRequired
	}
	return nil
}

// ClusterResult is one cluster's outcome.
type ClusterResult struct {
	// Cluster is the cluster index; Jobs the number of submissions routed
	// to it.
	Cluster int
	Jobs    int
	Result  *engine.Result
}

// Result is the merged outcome of a sharded run.
type Result struct {
	// Merged aggregates the per-cluster summaries into the exact global
	// view: job counts, the busy-area utilization over the global window
	// and machine, job-weighted means (wait, runtime, bounded slowdown,
	// per-cluster slowdown, per-class waits), MaxWait, and the fault/ECC
	// accounting sums. Multi-cluster runs additionally export per-cluster
	// sample vectors (engine ExportSamples, costing O(jobs) memory per
	// cluster) and fill the exact global order statistics: MedianWait and
	// P95Wait by quickselect over the waits concatenated in cluster-index
	// order, and the steady-state window/utilization/mean-wait from the
	// k-way-merged completion instants and per-cluster busy-step
	// integrals — identical to the values a single global collector would
	// report for the same per-cluster schedules. Only MaxQueueDepth
	// remains a per-cluster property (a global maximum needs the sum of
	// per-cluster depth step functions, which are not exported); read it
	// from Clusters[i].
	Merged metrics.Summary
	// ECC sums the command-processor accounting; DroppedECC the commands
	// dropped by non-ECC configurations.
	ECC        ecc.Stats
	DroppedECC int
	// Events and Cycles total the kernel events and scheduler invocations
	// across clusters.
	Events uint64
	Cycles uint64
	// Clusters holds the per-cluster results, in cluster order.
	Clusters []ClusterResult
	// Steals and Epochs report the epoch protocol's activity: jobs moved
	// between clusters by the barrier exchange, and barrier rounds run.
	// Both stay zero on the static path, so its serialized results are
	// unchanged.
	Steals int `json:",omitempty"`
	Epochs int `json:",omitempty"`
	// Owners maps job ID to the cluster that completed it — the routed home
	// updated by steals. Nil on the static path (the split is a pure
	// function of the workload there; see JobsPerCluster and route).
	Owners map[int]int `json:",omitempty"`
}

// route splits the workload into per-cluster workloads: the router
// assigns each submission in workload order, and each command follows its
// job. The split depends only on the workload, the cluster count, and the
// policy — never on timing or worker count.
func route(w *cwf.Workload, clusters, m int, r Router) []*cwf.Workload {
	if clusters == 1 {
		// Fast path: one cluster receives the whole workload unchanged.
		// Skip the router, the per-job home map, and the per-part rebuild
		// entirely — the engine clones jobs at Load and never mutates the
		// workload, so handing the validated workload over as-is is safe.
		return []*cwf.Workload{w}
	}
	r.Reset(clusters, m)
	parts := make([]*cwf.Workload, clusters)
	for c := range parts {
		parts[c] = &cwf.Workload{Header: w.Header}
	}
	home := make(map[int]int, len(w.Jobs))
	for i, j := range w.Jobs {
		c := r.Route(j)
		if c < 0 || c >= clusters {
			panic(fmt.Sprintf("dispatch: router %s sent job %d (index %d) to cluster %d of %d",
				r.Name(), j.ID, i, c, clusters))
		}
		home[j.ID] = c
		parts[c].Jobs = append(parts[c].Jobs, j)
	}
	for _, cmd := range w.Commands {
		if c, ok := home[cmd.JobID]; ok {
			parts[c].Commands = append(parts[c].Commands, cmd)
		}
		// A command referencing a job no cluster owns cannot exist in a
		// validated workload; Run validates before routing.
	}
	return parts
}

// Run executes the workload across cfg.Clusters parallel cluster sessions
// and merges the outcomes. The workload is validated once against the
// per-cluster machine and not mutated (each session clones its jobs), so
// the same workload can be replayed under other configurations.
func Run(w *cwf.Workload, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Every job must fit one cluster's machine; validating the whole
	// workload against the per-cluster M establishes that for any routing.
	if !cfg.Engine.Prevalidated {
		if err := w.Validate(cfg.Engine.M); err != nil {
			return nil, err
		}
	}
	if cfg.Clusters > 1 && cfg.Epoch > 0 {
		return runEpochs(w, cfg)
	}
	// NewDynamicRouter rather than NewRouter only for the Clusters == 1
	// case, where validate admits any policy name (the route fast path
	// never consults the router); a multi-cluster static run cannot reach
	// here with RouteFeedback.
	router, err := NewDynamicRouter(cfg.Route)
	if err != nil {
		return nil, err
	}

	parts := route(w, cfg.Clusters, cfg.Engine.M, router)
	outs := make([]*engine.Result, cfg.Clusters)
	errs := make([]error, cfg.Clusters)

	workers := resolveWorkers(cfg.Workers, cfg.Clusters)
	tasks := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for c := range tasks {
				ecfg := cfg.Engine
				ecfg.Scheduler = cfg.NewScheduler()
				ecfg.Prevalidated = true
				if cfg.Clusters > 1 {
					// Multi-cluster merges need the per-job sample vectors
					// for exact global order statistics; a single cluster's
					// summary is already the exact global view, so it skips
					// the export cost.
					ecfg.ExportSamples = true
				}
				if cfg.Engine.Faults != nil {
					// Each cluster draws an independent fault stream from a
					// seed offset by its index, so the same global seed fails
					// the same groups of the same clusters on every run.
					fc := *cfg.Engine.Faults
					fc.Seed += int64(c)
					ecfg.Faults = &fc
				}
				outs[c], errs[c] = engine.Run(parts[c], ecfg)
			}
		}()
	}
	for c := 0; c < cfg.Clusters; c++ {
		tasks <- c
	}
	close(tasks)
	wg.Wait()

	// Surface the first error in cluster order, regardless of which worker
	// hit it first on the wall clock.
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dispatch: cluster %d: %w", c, err)
		}
	}

	res := &Result{Clusters: make([]ClusterResult, cfg.Clusters)}
	for c, r := range outs {
		res.Clusters[c] = ClusterResult{Cluster: c, Jobs: len(parts[c].Jobs), Result: r}
		res.ECC = addECC(res.ECC, r.ECC)
		res.DroppedECC += r.DroppedECC
		res.Events += r.Events
		res.Cycles += r.Cycles
	}
	res.Merged = mergeSummaries(outs, cfg.Engine.M)
	return res, nil
}

// mergeSummaries combines per-cluster summaries into the global view,
// walking clusters in index order so every float accumulates
// deterministically. See Result.Merged for the field-by-field semantics.
func mergeSummaries(outs []*engine.Result, clusterM int) metrics.Summary {
	if len(outs) == 1 {
		// One cluster: its summary already is the exact global view,
		// order statistics and queue depth included.
		return outs[0].Summary
	}
	var g metrics.Summary
	g.MachineSize = clusterM * len(outs)
	first := true
	// Busy processor-seconds reconstruct exactly from each cluster's
	// utilization: area_i = util_i × span_i × M_i.
	var area, waitSum, runSum, slowSum, boundedSum, batchSum, dedSum, onTimeSum float64
	var batchJobs int
	for _, r := range outs {
		s := r.Summary
		if s.Jobs == 0 && s.JobsStarted == 0 {
			continue
		}
		if first || s.WindowStart < g.WindowStart {
			g.WindowStart = s.WindowStart
		}
		if first || s.WindowEnd > g.WindowEnd {
			g.WindowEnd = s.WindowEnd
		}
		first = false
		n := float64(s.Jobs)
		g.Jobs += s.Jobs
		g.JobsStarted += s.JobsStarted
		g.JobsFinished += s.JobsFinished
		g.DedicatedJobs += s.DedicatedJobs
		batchJobs += s.Jobs - s.DedicatedJobs
		area += s.Utilization * float64(s.WindowEnd-s.WindowStart) * float64(s.MachineSize)
		waitSum += s.MeanWait * n
		runSum += s.MeanRun * n
		// Slowdown merges as the job-weighted mean of the per-cluster
		// aggregate slowdowns. Recomputing (MeanWait+MeanRun)/MeanRun from
		// the global means disagrees with that job-weighted view whenever
		// cluster MeanRun differs (the ratio of averages is not the
		// average of ratios); the weighted sum keeps the single-cluster
		// case exact and treats Slowdown like every other mean.
		slowSum += s.Slowdown * n
		boundedSum += s.MeanBoundedSlow * n
		batchSum += s.MeanBatchWait * float64(s.Jobs-s.DedicatedJobs)
		dedSum += s.MeanDedWait * float64(s.DedicatedJobs)
		onTimeSum += s.DedicatedOnTime * float64(s.DedicatedJobs)
		if s.MaxWait > g.MaxWait {
			g.MaxWait = s.MaxWait
		}
		g.KilledJobs += s.KilledJobs
		g.RetriedJobs += s.RetriedJobs
		g.DroppedJobs += s.DroppedJobs
		g.LostWorkSeconds += s.LostWorkSeconds
		g.DownProcSeconds += s.DownProcSeconds
	}
	if span := float64(g.WindowEnd - g.WindowStart); span > 0 {
		g.Utilization = area / (span * float64(g.MachineSize))
	}
	if g.Jobs > 0 {
		n := float64(g.Jobs)
		g.MeanWait = waitSum / n
		g.MeanRun = runSum / n
		g.Slowdown = slowSum / n
		g.MeanBoundedSlow = boundedSum / n
	}
	if batchJobs > 0 {
		g.MeanBatchWait = batchSum / float64(batchJobs)
	}
	if g.DedicatedJobs > 0 {
		g.MeanDedWait = dedSum / float64(g.DedicatedJobs)
		g.DedicatedOnTime = onTimeSum / float64(g.DedicatedJobs)
	}
	mergeOrderStats(&g, outs)
	return g
}

// mergeOrderStats fills the exact global order statistics from the
// per-cluster sample exports: MedianWait/P95Wait by quickselect over the
// waits concatenated in cluster-index order (exactly the value a sort of
// the concatenation would index, per the quickselect contract), and the
// steady-state window/utilization/mean-wait from the k-way-merged
// completion instants and busy-step window integrals — the same formulas
// a single global collector applies, evaluated in O(total) time with
// cluster-index-order accumulation. Clusters that ran without
// ExportSamples leave the order-stat fields zero (the pre-export
// behaviour).
func mergeOrderStats(g *metrics.Summary, outs []*engine.Result) {
	total := 0
	for _, r := range outs {
		if r.Samples == nil {
			if r.Summary.Jobs > 0 {
				return
			}
			continue
		}
		total += len(r.Samples.Waits)
	}
	if total == 0 {
		return
	}
	waits := make([]float64, 0, total)
	for _, r := range outs {
		if r.Samples != nil {
			waits = append(waits, r.Samples.Waits...)
		}
	}
	n := len(waits)
	g.MedianWait = metrics.KthSmallest(waits, int(0.5*float64(n-1)))
	g.P95Wait = metrics.KthSmallest(waits, int(0.95*float64(n-1)))

	// Steady state mirrors the collector: fewer than 10 completions keep
	// the full window with zeroed measures; the window is the central
	// [10th, 90th]-percentile span of the global completion instants.
	if n < 10 {
		g.SteadyWindow = [2]int64{g.WindowStart, g.WindowEnd}
		return
	}
	finishes := mergeFinishes(outs, total)
	t0 := finishes[n/10]
	t1 := finishes[n-1-n/10]
	g.SteadyWindow = [2]int64{t0, t1}
	if t1 <= t0 {
		return
	}
	var steadyArea, steadyWait float64
	var steadyJobs int
	for _, r := range outs {
		if r.Samples == nil {
			continue
		}
		steadyArea += metrics.WindowArea(r.Samples.BusySteps, t0, t1)
		for _, p := range r.Samples.PerJob {
			if p.Arrival >= t0 && p.Arrival <= t1 {
				steadyWait += p.Wait
				steadyJobs++
			}
		}
	}
	g.SteadyUtilization = steadyArea / (float64(t1-t0) * float64(g.MachineSize))
	if steadyJobs > 0 {
		g.SteadyMeanWait = steadyWait / float64(steadyJobs)
	}
}

// mergeFinishes streams the per-cluster completion instants into one
// globally sorted vector. Each cluster's PerJob series is already in
// completion order (finish times non-decreasing), so a k-way merge over
// the cluster heads — lowest cluster index winning ties — produces the
// sorted global sequence in O(total × clusters) with no sort.
func mergeFinishes(outs []*engine.Result, total int) []int64 {
	heads := make([]int, len(outs))
	merged := make([]int64, 0, total)
	for {
		best := -1
		var bt int64
		for c, r := range outs {
			if r.Samples == nil || heads[c] >= len(r.Samples.PerJob) {
				continue
			}
			if t := r.Samples.PerJob[heads[c]].Finish; best < 0 || t < bt {
				best, bt = c, t
			}
		}
		if best < 0 {
			return merged
		}
		merged = append(merged, bt)
		heads[best]++
	}
}

func addECC(a, b ecc.Stats) ecc.Stats {
	a.Total += b.Total
	a.Applied += b.Applied
	a.Clamped += b.Clamped
	a.IgnoredFinished += b.IgnoredFinished
	a.IgnoredUnknown += b.IgnoredUnknown
	a.IgnoredLimit += b.IgnoredLimit
	a.IgnoredCapacity += b.IgnoredCapacity
	a.ExtendedSeconds += b.ExtendedSeconds
	a.ReducedSeconds += b.ReducedSeconds
	a.GrownProcs += b.GrownProcs
	a.ShrunkProcs += b.ShrunkProcs
	return a
}

// JobsPerCluster reports how a workload of n submissions spreads over
// clusters — the per-cluster load factor tooling prints before a run.
func JobsPerCluster(n, clusters int) []int {
	counts := make([]int, clusters)
	for i := 0; i < n; i++ {
		counts[i%clusters]++
	}
	return counts
}
