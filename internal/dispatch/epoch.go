package dispatch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/job"
)

// This file is the dynamic half of the dispatcher: the deterministic
// epoch-synchronization protocol behind Config.Epoch/Steal/Affinity and the
// feedback routing policy.
//
// Protocol. Virtual time is cut into epochs of Config.Epoch seconds. Per
// round k with barrier T = (k+1)·Epoch:
//
//  1. Release: jobs with arrivals in (T−Epoch, T] are routed (affinity pin,
//     else the precomputed static split, else the feedback router reading
//     the last barrier's digests) and injected into their cluster; commands
//     in the window follow their job's current owner.
//  2. Step: every cluster session advances to the barrier (RunUntil) on the
//     worker pool. Sessions never interact while running.
//  3. Exchange: at the barrier each cluster publishes a Digest, and the
//     steal pass — plain single-threaded code over the merged digests, in
//     deterministic order — moves queued jobs from backlogged clusters to
//     idle ones (Withdraw/AbsorbAt, ownership updated so later commands
//     follow).
//
// Determinism argument: releases are a pure function of the workload prefix
// and the previous barrier's digests; digests are a pure function of each
// cluster's (single-goroutine deterministic) session state at the barrier;
// the exchange runs after every session reached the barrier, on one
// goroutine, scanning clusters in a fixed order. Worker count only changes
// which sessions run concurrently between barriers, never what any of them
// observes — so the result is byte-identical for any worker count, the same
// bar the static policies meet.

// epochRun is the state of one dynamic sharded run.
type epochRun struct {
	cfg      Config
	workers  int
	sessions []*engine.Session
	errs     []error

	router  Router
	dynamic DigestRouter // non-nil when the policy reads digests (feedback)
	// homes is the up-front static split (nil under feedback routing): the
	// same job-order routing pass the one-shot path uses, so an epoch run
	// with a static policy and stealing off reproduces it exactly.
	homes map[int]int
	// owner maps job ID -> current cluster. Seeded at release, updated only
	// in the exchange step, so ownership is constant within an epoch and
	// commands always land where their job is.
	owner map[int]int

	digests []Digest
	steals  int
	epochs  int

	// Worker pool, spun up on the first parallel call and kept for the run:
	// the loop hits a barrier thousands of times per workload, so per-epoch
	// goroutine spawns would dominate the protocol's own cost. fn is the
	// current round's task; the channel send into tasks publishes it, and
	// wg.Wait() fences the round before fn is swapped.
	tasks chan int
	fn    func(c int) error
	wg    sync.WaitGroup

	// Exchange-step and step-dispatch scratch, reused across epochs.
	receivers, donors []int
	victims           []*job.Job
	active            []int
	barrier           int64
}

// runEpochs executes the workload under the epoch protocol. The caller has
// validated the config and the workload.
func runEpochs(w *cwf.Workload, cfg Config) (*Result, error) {
	router, err := NewDynamicRouter(cfg.Route)
	if err != nil {
		return nil, err
	}
	e := &epochRun{
		cfg:      cfg,
		workers:  resolveWorkers(cfg.Workers, cfg.Clusters),
		sessions: make([]*engine.Session, cfg.Clusters),
		errs:     make([]error, cfg.Clusters),
		router:   router,
		owner:    make(map[int]int, len(w.Jobs)),
		digests:  make([]Digest, cfg.Clusters),
	}
	router.Reset(cfg.Clusters, cfg.Engine.M)
	if dyn, ok := router.(DigestRouter); ok {
		e.dynamic = dyn
	} else {
		e.routeStatic(w)
	}
	if err := e.buildSessions(w); err != nil {
		return nil, err
	}
	defer e.stopPool()
	if err := e.loop(w); err != nil {
		return nil, err
	}
	return e.result()
}

// routeStatic precomputes the whole split with the static router, exactly
// as the one-shot path routes — job by job in workload order — with
// affinity pins overriding the router's choice. With affinity off this is
// byte-identical to route()'s assignment, which is what makes epoch mode
// transparent for static policies.
func (e *epochRun) routeStatic(w *cwf.Workload) {
	e.homes = make(map[int]int, len(w.Jobs))
	for i, j := range w.Jobs {
		if pin := PinnedCluster(j.ID, e.cfg.Affinity, e.cfg.Clusters); pin >= 0 {
			e.homes[j.ID] = pin
			continue
		}
		c := e.router.Route(j)
		if c < 0 || c >= e.cfg.Clusters {
			panic(fmt.Sprintf("dispatch: router %s sent job %d (index %d) to cluster %d of %d",
				e.router.Name(), j.ID, i, c, e.cfg.Clusters))
		}
		e.homes[j.ID] = c
	}
}

// buildSessions creates one empty session per cluster (epoch mode feeds
// them by Inject, never Load) and arms per-cluster fault streams with the
// same seed offsets the one-shot path uses. The fault-sampling horizon
// matches Load's: the cluster's own routed span under a static split, the
// global span under feedback routing (homes unknown up front).
func (e *epochRun) buildSessions(w *cwf.Workload) error {
	horizon := make([]int64, e.cfg.Clusters)
	for _, j := range w.Jobs {
		end := j.Arrival + j.Dur
		if e.homes != nil {
			if c := e.homes[j.ID]; end > horizon[c] {
				horizon[c] = end
			}
			continue
		}
		for c := range horizon {
			if end > horizon[c] {
				horizon[c] = end
			}
		}
	}
	for c := range e.sessions {
		ecfg := e.cfg.Engine
		ecfg.Scheduler = e.cfg.NewScheduler()
		ecfg.Prevalidated = true
		ecfg.ExportSamples = true
		if e.cfg.Engine.Faults != nil {
			fc := *e.cfg.Engine.Faults
			fc.Seed += int64(c)
			ecfg.Faults = &fc
		}
		s, err := engine.New(ecfg)
		if err != nil {
			return fmt.Errorf("dispatch: cluster %d: %w", c, err)
		}
		if err := s.ArmFaults(horizon[c]); err != nil {
			return fmt.Errorf("dispatch: cluster %d: %w", c, err)
		}
		e.sessions[c] = s
	}
	return nil
}

// loop drives the release/step/exchange rounds to completion.
func (e *epochRun) loop(w *cwf.Workload) error {
	// Stable arrival/issue orders: ties keep workload (submission) order,
	// matching the event-insertion order of a Load.
	jobOrder := make([]int, len(w.Jobs))
	for i := range jobOrder {
		jobOrder[i] = i
	}
	sort.SliceStable(jobOrder, func(a, b int) bool {
		return w.Jobs[jobOrder[a]].Arrival < w.Jobs[jobOrder[b]].Arrival
	})
	cmdOrder := make([]int, len(w.Commands))
	for i := range cmdOrder {
		cmdOrder[i] = i
	}
	sort.SliceStable(cmdOrder, func(a, b int) bool {
		return w.Commands[cmdOrder[a]].Issue < w.Commands[cmdOrder[b]].Issue
	})

	ji, ci := 0, 0
	var t int64
	// One closure for every step round: it reads the barrier from the run
	// state, so the hot loop does not allocate a fresh capture per epoch.
	step := func(c int) error { return e.sessions[c].RunUntil(e.barrier) }
	for {
		released := ji == len(jobOrder) && ci == len(cmdOrder)
		if released {
			if e.allDone() {
				return nil
			}
			if !e.cfg.Steal {
				// Nothing left to route and no exchange step to run: the
				// sessions are independent now, drain them in parallel.
				return e.parallel(func(c int) error { return e.sessions[c].Run() })
			}
		} else if e.allDone() && e.allIdle() {
			// Every cluster is drained and empty: fast-forward over the
			// dead epochs to the one containing the next release. The
			// digests of the skipped barriers are all-idle, so neither the
			// exchange step nor the feedback router loses information.
			next := int64(1<<63 - 1)
			if ji < len(jobOrder) {
				next = w.Jobs[jobOrder[ji]].Arrival
			}
			if ci < len(cmdOrder) && w.Commands[cmdOrder[ci]].Issue < next {
				next = w.Commands[cmdOrder[ci]].Issue
			}
			if skip := (next - 1) / e.cfg.Epoch * e.cfg.Epoch; skip > t {
				t = skip
			}
		}
		barrier := t + e.cfg.Epoch

		for ji < len(jobOrder) && w.Jobs[jobOrder[ji]].Arrival <= barrier {
			j := w.Jobs[jobOrder[ji]]
			c := e.routeRelease(j)
			if err := e.sessions[c].Inject(j); err != nil {
				return fmt.Errorf("dispatch: cluster %d: %w", c, err)
			}
			e.owner[j.ID] = c
			ji++
		}
		for ci < len(cmdOrder) && w.Commands[cmdOrder[ci]].Issue <= barrier {
			cmd := w.Commands[cmdOrder[ci]]
			ci++
			c, ok := e.owner[cmd.JobID]
			if !ok && e.homes != nil {
				// The job is not released yet (or unknown): deliver to its
				// static home, exactly as route() does — a command issued
				// before its job's arrival counts ignored-unknown there. A
				// command for a job no cluster owns cannot exist in a
				// validated workload; mirror route() and drop it.
				if c, ok = e.homes[cmd.JobID]; !ok {
					continue
				}
			} else if !ok {
				// Feedback routing: the job is released in a later window, so
				// the command fires before its arrival and is ignored-unknown
				// wherever it lands. Cluster 0 keeps the accounting
				// deterministic.
				c = 0
			}
			if err := e.sessions[c].InjectCommand(cmd); err != nil {
				return fmt.Errorf("dispatch: cluster %d: %w", c, err)
			}
		}

		// Step: only sessions with an event inside the window can change
		// state (RunUntil never advances past the last event), so dispatch
		// exactly those — under light load most barriers touch one or two
		// clusters, and handing an idle session to the pool costs more than
		// the no-op RunUntil it would run.
		active := e.active[:0]
		for c, s := range e.sessions {
			if next, ok := s.NextEventTime(); ok && next <= barrier {
				active = append(active, c)
			}
		}
		e.active = active
		e.barrier = barrier
		if err := e.parallelOver(active, step); err != nil {
			return err
		}
		// Exchange: only when something consumes the digests — a static
		// split with stealing off barriers for transparency alone, and
		// digesting a deep backlog every epoch is the protocol's single
		// biggest per-barrier cost.
		if e.cfg.Steal || e.dynamic != nil {
			for c, s := range e.sessions {
				e.digests[c] = digestSession(c, s, barrier)
			}
			if e.cfg.Steal {
				if err := e.stealPass(barrier); err != nil {
					return err
				}
			}
			if e.dynamic != nil {
				e.dynamic.ObserveDigests(e.digests)
			}
		}
		t = barrier
		e.epochs++
	}
}

// routeRelease decides the cluster of one released job: affinity pin, the
// precomputed static split, or the feedback router.
func (e *epochRun) routeRelease(j *job.Job) int {
	if e.homes != nil {
		return e.homes[j.ID]
	}
	if pin := PinnedCluster(j.ID, e.cfg.Affinity, e.cfg.Clusters); pin >= 0 {
		e.dynamic.Assigned(j, pin)
		return pin
	}
	c := e.router.Route(j)
	if c < 0 || c >= e.cfg.Clusters {
		panic(fmt.Sprintf("dispatch: router %s sent job %d to cluster %d of %d",
			e.router.Name(), j.ID, c, e.cfg.Clusters))
	}
	return c
}

// stealPass is the exchange step: computed at the barrier from the merged
// digests, on one goroutine, in deterministic order. Idle clusters (empty
// queue, free capacity) pull queued jobs from the most loaded backlogged
// clusters, and every stolen job fits the receiver's remaining free
// capacity, so everything stolen starts at the barrier — a steal only ever
// converts waiting into running. Two classes move, in order:
//
//  1. Blocked heads: while the donor's queue head needs more processors
//     than the donor has free, it cannot start at home no matter what the
//     local scheduler does, and under a conservative policy it blocks the
//     whole queue behind it. Moving it to a cluster where it starts now is
//     the giant-collision repair, so no size or duration cap applies.
//  2. Short tail jobs, youngest first, never the (startable) head: these
//     drain idle capacity without queue-jumping the donor's head. Only
//     jobs occupying the receiver for at most stealDurCap epochs are
//     taken — parking a heavy-tailed runtime on an idle cluster would
//     block the wide arrivals routed there long after the backlog that
//     justified the steal has drained.
//
// Rigid jobs (failure victims entitled to the head) and jobs pinned to
// another cluster never move. Digest entries are updated as moves happen,
// so later decisions in the same pass see them.
func (e *epochRun) stealPass(barrier int64) error {
	receivers, donors := e.receivers[:0], e.donors[:0]
	for c, d := range e.digests {
		switch {
		case d.QueueDepth == 0 && d.FreeProcs > 0:
			receivers = append(receivers, c)
		case d.QueueDepth > 0:
			donors = append(donors, c)
		}
	}
	e.receivers, e.donors = receivers, donors
	if len(receivers) == 0 || len(donors) == 0 {
		return nil
	}
	// Least-loaded receivers pick first; heaviest donors give first. Ties
	// break on cluster index: everything about this order is deterministic.
	// Stable insertion sorts: the lists hold at most Clusters indices and
	// this runs every epoch, so the reflection cost of the sort package
	// would dominate the pass.
	e.sortByLoad(receivers, false)
	e.sortByLoad(donors, true)
	durCap := stealDurCap * e.cfg.Epoch
	for _, r := range receivers {
		freeLeft := e.digests[r].FreeProcs
		for _, dn := range donors {
			if freeLeft <= 0 {
				break
			}
			d := &e.digests[dn]
			if d.QueueDepth == 0 {
				continue
			}
			// Select read-only over the live queue, then apply: Withdraw
			// mutates the queue, and snapshotting a deep backlog every
			// barrier would cost more than the whole exchange. Selection
			// never depends on the moves it has already chosen beyond the
			// freeLeft budget, so the split is exact.
			q := e.sessions[dn].WaitingBatch()
			chosen := e.victims[:0]
			// Blocked heads: each move promotes the next job to head; it is
			// blocked by the same test against the donor's unchanged free
			// capacity.
			head := 0
			for head < len(q) && freeLeft > 0 {
				j := q[head]
				if j.Size <= d.FreeProcs {
					break // the head starts at home as soon as it is scheduled
				}
				if j.Rigid || j.Class != job.Batch || j.Size > freeLeft {
					break // an immovable blocked head keeps its queue behind it
				}
				if pin := PinnedCluster(j.ID, e.cfg.Affinity, e.cfg.Clusters); pin >= 0 && pin != r {
					break
				}
				chosen = append(chosen, j)
				freeLeft -= j.Size
				head++
			}
			// Short tails, youngest first, never the current head.
			for i := len(q) - 1; i > head && freeLeft > 0; i-- {
				j := q[i]
				if j.Rigid || j.Class != job.Batch || j.Size > freeLeft || j.Dur > durCap {
					continue
				}
				if pin := PinnedCluster(j.ID, e.cfg.Affinity, e.cfg.Clusters); pin >= 0 && pin != r {
					continue
				}
				chosen = append(chosen, j)
				freeLeft -= j.Size
			}
			e.victims = chosen
			for _, j := range chosen {
				if err := e.stealJob(j, dn, r, barrier); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// stealJob moves one queued job from cluster dn to cluster r at the barrier
// and keeps the ownership map and both digest entries in step, so later
// decisions in the same pass see the move. The caller maintains its own
// remaining-free-capacity budget.
func (e *epochRun) stealJob(j *job.Job, dn, r int, barrier int64) error {
	if err := e.sessions[dn].Withdraw(j); err != nil {
		return fmt.Errorf("dispatch: cluster %d: %w", dn, err)
	}
	if err := e.sessions[r].AbsorbAt(j, barrier); err != nil {
		return fmt.Errorf("dispatch: cluster %d: %w", r, err)
	}
	e.owner[j.ID] = r
	e.steals++
	wk := int64(j.Size) * j.Dur
	e.digests[dn].QueueDepth--
	e.digests[dn].BacklogProcSeconds -= wk
	e.digests[r].FreeProcs -= j.Size
	e.digests[r].RunningProcSeconds += wk
	return nil
}

// stealDurCap bounds, in epochs, how long a tail-stolen job may occupy the
// receiving cluster. Blocked heads are exempt (see stealPass).
const stealDurCap = 8

// sortByLoad stably orders cluster indices by digest load, ascending or
// descending; appended in index order, ties keep the lower index first.
func (e *epochRun) sortByLoad(list []int, desc bool) {
	for i := 1; i < len(list); i++ {
		c := list[i]
		l := e.digests[c].load()
		k := i - 1
		for k >= 0 {
			lk := e.digests[list[k]].load()
			if (desc && lk >= l) || (!desc && lk <= l) {
				break
			}
			list[k+1] = list[k]
			k--
		}
		list[k+1] = c
	}
}

// allDone reports whether every session has drained its event queue.
func (e *epochRun) allDone() bool {
	for _, s := range e.sessions {
		if !s.Done() {
			return false
		}
	}
	return true
}

// allIdle reports whether no session holds queued or running work.
func (e *epochRun) allIdle() bool {
	for _, s := range e.sessions {
		if s.Waiting() != 0 || s.Running() != 0 {
			return false
		}
	}
	return true
}

// parallel runs fn for every cluster; see parallelOver.
func (e *epochRun) parallel(fn func(c int) error) error {
	active := e.active[:0]
	for c := range e.sessions {
		active = append(active, c)
	}
	e.active = active
	return e.parallelOver(active, fn)
}

// parallelOver runs fn for the listed clusters on the run's persistent
// worker pool and surfaces the first error in cluster order, regardless of
// wall-clock completion order. The pool goroutines are started once and
// reused for every round: the channel send publishes e.fn to the worker
// picking the task up, and wg.Wait() fences the whole round before the
// next call swaps fn. A single-cluster round runs inline — the handoff
// costs more than it buys.
func (e *epochRun) parallelOver(list []int, fn func(c int) error) error {
	if e.workers == 1 || len(list) == 1 {
		for _, c := range list {
			e.errs[c] = fn(c)
		}
	} else {
		if e.tasks == nil {
			e.tasks = make(chan int)
			for i := 0; i < e.workers; i++ {
				go func() {
					for c := range e.tasks {
						e.errs[c] = e.fn(c)
						e.wg.Done()
					}
				}()
			}
		}
		e.fn = fn
		e.wg.Add(len(list))
		for _, c := range list {
			e.tasks <- c
		}
		e.wg.Wait()
	}
	for _, c := range list {
		if err := e.errs[c]; err != nil {
			return fmt.Errorf("dispatch: cluster %d: %w", c, err)
		}
	}
	return nil
}

// stopPool releases the worker goroutines at the end of the run.
func (e *epochRun) stopPool() {
	if e.tasks != nil {
		close(e.tasks)
		e.tasks = nil
	}
}

// result assembles the merged Result from the drained sessions.
func (e *epochRun) result() (*Result, error) {
	outs := make([]*engine.Result, len(e.sessions))
	for c, s := range e.sessions {
		r, err := s.Result()
		if err != nil {
			return nil, fmt.Errorf("dispatch: cluster %d: %w", c, err)
		}
		outs[c] = r
	}
	res := &Result{
		Clusters: make([]ClusterResult, len(outs)),
		Steals:   e.steals,
		Epochs:   e.epochs,
		Owners:   e.owner,
	}
	perCluster := make([]int, len(outs))
	for _, c := range e.owner {
		perCluster[c]++
	}
	for c, r := range outs {
		res.Clusters[c] = ClusterResult{Cluster: c, Jobs: perCluster[c], Result: r}
		res.ECC = addECC(res.ECC, r.ECC)
		res.DroppedECC += r.DroppedECC
		res.Events += r.Events
		res.Cycles += r.Cycles
	}
	res.Merged = mergeSummaries(outs, e.cfg.Engine.M)
	return res, nil
}

// resolveWorkers applies the Config.Workers defaulting shared by the static
// and epoch paths.
func resolveWorkers(workers, clusters int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > clusters {
		workers = clusters
	}
	return workers
}
