package dispatch

import (
	"fmt"
	"math/rand"
	"testing"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

// shardedWorkload builds an N×-traffic workload for N clusters: jobs are
// generated at the paper's per-cluster geometry (M=320), then the arrival
// stream is compressed by the cluster count so each cluster sees the
// paper's offered load.
func shardedWorkload(b *testing.B, clusters int) *cwf.Workload {
	b.Helper()
	p := workload.DefaultParams()
	p.N = 500 * clusters
	p.Seed = 42
	w, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	if clusters > 1 {
		for _, j := range w.Jobs {
			j.Arrival /= int64(clusters)
		}
		for i := range w.Commands {
			w.Commands[i].Issue /= int64(clusters)
		}
	}
	return w
}

// skewedWorkload builds the runtime-skewed (zipfian) variant of the
// sharded traffic: job durations are stretched by heavy-tailed
// multipliers, so a handful of giant jobs carry most of the
// processor-seconds, then the arrival stream is rescaled to a fixed
// offered load per cluster. Under round-robin the giants collide on
// whichever shards their submission indices hit, pushing those shards
// past saturation — their queues, and with them the per-cycle scheduling
// cost, grow without bound — while least-work spreads the same
// processor-seconds evenly. The workload is identical for every policy;
// only the split differs.
func skewedWorkload(tb testing.TB, clusters int) *cwf.Workload {
	tb.Helper()
	p := workload.DefaultParams()
	p.N = 500 * clusters
	p.Seed = 42
	w, err := workload.Generate(p)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	z := rand.NewZipf(rng, 2.5, 1, 100000)
	for _, j := range w.Jobs {
		k := z.Uint64()
		j.Dur *= int64(1 + k)
		if k >= 50 {
			// The zipf tail: machine-wide capability runs. Wide AND long,
			// these are the jobs whose placement decides shard congestion.
			j.Size = 320
			j.Dur *= 8
		}
	}
	// Rescale arrivals (monotonically, preserving submission order) so the
	// global offered load is 0.10 regardless of how much work the skew
	// added: the balanced split must stay comfortably under-loaded, so the
	// cost difference is pure giant-collision backlog, not ambient load.
	scale := w.Load(320*clusters) / 0.10
	for _, j := range w.Jobs {
		j.Arrival = int64(float64(j.Arrival) * scale)
	}
	for i := range w.Commands {
		w.Commands[i].Issue = int64(float64(w.Commands[i].Issue) * scale)
	}
	return w
}

// BenchmarkShardedSkewE2E is the routing-policy wall-clock comparison on
// the skewed traffic: the same global workload dispatched by round-robin
// versus least-work over 4/8/16 clusters. The benchmark gate
// (cmd/benchgate) pins least-work's advantage at 8 clusters.
func BenchmarkShardedSkewE2E(b *testing.B) {
	for _, route := range []string{RouteRoundRobin, RouteLeastWork} {
		for _, clusters := range []int{4, 8, 16} {
			b.Run(fmt.Sprintf("route=%s/clusters=%d", route, clusters), func(b *testing.B) {
				w := skewedWorkload(b, clusters)
				cfg := Config{
					Clusters:     clusters,
					Route:        route,
					Engine:       engine.Config{M: 320, Unit: 32},
					NewScheduler: func() sched.Scheduler { return core.NewLOS(true) },
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Run(w, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardedStealE2E is the epoch-protocol comparison on the skewed
// traffic at 8 clusters: the static splits (round-robin, least-work)
// against the same policies with barrier stealing, and feedback routing
// with stealing. The giant-collision backlog that sinks static round-robin
// is exactly what stealing repairs — blocked heads migrate to idle shards
// at the next barrier — so the dynamic cells must close the gap below
// static least-work on mean wait and makespan. Each cell reports the
// merged mean wait, makespan, and steal count (all deterministic for the
// fixed workload), which the benchmark gate (cmd/benchgate) pins as
// same-run ratios.
func BenchmarkShardedStealE2E(b *testing.B) {
	const clusters = 8
	for _, cell := range []struct {
		route string
		steal bool
	}{
		{RouteRoundRobin, false},
		{RouteLeastWork, false},
		{RouteRoundRobin, true},
		{RouteLeastWork, true},
		{RouteFeedback, true},
	} {
		b.Run(fmt.Sprintf("route=%s/steal=%t", cell.route, cell.steal), func(b *testing.B) {
			w := skewedWorkload(b, clusters)
			cfg := Config{
				Clusters:     clusters,
				Route:        cell.route,
				Engine:       engine.Config{M: 320, Unit: 32},
				NewScheduler: func() sched.Scheduler { return core.NewLOS(true) },
			}
			if cell.steal || cell.route == RouteFeedback {
				// One barrier every 1/5000th of the arrival span: fine
				// enough that a blocked giant waits a negligible slice of
				// its runtime before migrating.
				cfg.Epoch = spanEpoch(w, 5000)
				cfg.Steal = cell.steal
			}
			b.ReportAllocs()
			b.ResetTimer()
			var res *Result
			for i := 0; i < b.N; i++ {
				r, err := Run(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.Merged.MeanWait, "meanwait")
			b.ReportMetric(float64(res.Merged.WindowEnd-res.Merged.WindowStart), "makespan")
			b.ReportMetric(float64(res.Steals), "steals")
		})
	}
}

// BenchmarkShardedE2E is the end-to-end scaling harness: one global
// workload of clusters×500 jobs dispatched over 1/2/4 parallel cluster
// sessions. The single-cluster case is BenchmarkSimulate500's shape behind
// the dispatcher, so the dispatch overhead is directly visible, and the
// multi-cluster cases show the wall-clock win of sharding N× traffic.
func BenchmarkShardedE2E(b *testing.B) {
	for _, clusters := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("clusters=%d", clusters), func(b *testing.B) {
			w := shardedWorkload(b, clusters)
			cfg := Config{
				Clusters:     clusters,
				Engine:       engine.Config{M: 320, Unit: 32},
				NewScheduler: func() sched.Scheduler { return core.NewLOS(true) },
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(w, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
