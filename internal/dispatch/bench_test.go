package dispatch

import (
	"fmt"
	"testing"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

// shardedWorkload builds an N×-traffic workload for N clusters: jobs are
// generated at the paper's per-cluster geometry (M=320), then the arrival
// stream is compressed by the cluster count so each cluster sees the
// paper's offered load.
func shardedWorkload(b *testing.B, clusters int) *cwf.Workload {
	b.Helper()
	p := workload.DefaultParams()
	p.N = 500 * clusters
	p.Seed = 42
	w, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	if clusters > 1 {
		for _, j := range w.Jobs {
			j.Arrival /= int64(clusters)
		}
		for i := range w.Commands {
			w.Commands[i].Issue /= int64(clusters)
		}
	}
	return w
}

// BenchmarkShardedE2E is the end-to-end scaling harness: one global
// workload of clusters×500 jobs dispatched over 1/2/4 parallel cluster
// sessions. The single-cluster case is BenchmarkSimulate500's shape behind
// the dispatcher, so the dispatch overhead is directly visible, and the
// multi-cluster cases show the wall-clock win of sharding N× traffic.
func BenchmarkShardedE2E(b *testing.B) {
	for _, clusters := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("clusters=%d", clusters), func(b *testing.B) {
			w := shardedWorkload(b, clusters)
			cfg := Config{
				Clusters:     clusters,
				Engine:       engine.Config{M: 320, Unit: 32},
				NewScheduler: func() sched.Scheduler { return core.NewLOS(true) },
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(w, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
