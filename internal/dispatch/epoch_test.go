package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/engine"
)

// epochEngine is the per-cluster template every epoch test shares.
func epochEngine() engine.Config {
	return engine.Config{M: 320, Unit: 32, ProcessECC: true}
}

// spanEpoch picks an epoch length of roughly 1/cuts of the workload's
// arrival span — long enough to batch work per round, short enough that the
// exchange step sees live queues.
func spanEpoch(w *cwf.Workload, cuts int64) int64 {
	var last int64
	for _, j := range w.Jobs {
		if j.Arrival > last {
			last = j.Arrival
		}
	}
	if e := last / cuts; e > 0 {
		return e
	}
	return 1
}

// skewDurations stretches job runtimes by heavy-tailed multipliers so some
// clusters back up while others idle — the traffic shape that makes the
// exchange step act. Deterministic for a fixed seed.
func skewDurations(w *cwf.Workload, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 2.0, 1, 50000)
	for _, j := range w.Jobs {
		j.Dur *= int64(1 + z.Uint64())
	}
}

// TestEpochTransparencyStaticRoutes: with a static policy, stealing off,
// and no faults, the epoch protocol is an implementation detail — releases
// reproduce the one-shot split and the same-timestamp event order, so the
// entire result (merged summary, ECC accounting, per-cluster results,
// event and cycle counts) must equal the one-shot path's exactly.
func TestEpochTransparencyStaticRoutes(t *testing.T) {
	w := testWorkload(t, 240, 7)
	for _, route := range Policies() {
		t.Run(route, func(t *testing.T) {
			base := Config{
				Clusters:     4,
				Engine:       epochEngine(),
				NewScheduler: losFactory,
				Route:        route,
			}
			ref, err := Run(w, base)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Epoch = 1009
			got, err := Run(w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Epochs == 0 {
				t.Fatal("epoch path not taken")
			}
			if got.Steals != 0 {
				t.Fatalf("stealing off moved %d jobs", got.Steals)
			}
			if !reflect.DeepEqual(got.Merged, ref.Merged) {
				t.Errorf("merged summary differs:\nepoch   %+v\none-shot %+v", got.Merged, ref.Merged)
			}
			if !reflect.DeepEqual(got.ECC, ref.ECC) || got.DroppedECC != ref.DroppedECC {
				t.Errorf("ECC accounting differs: epoch %+v/%d, one-shot %+v/%d",
					got.ECC, got.DroppedECC, ref.ECC, ref.DroppedECC)
			}
			if got.Events != ref.Events || got.Cycles != ref.Cycles {
				t.Errorf("events/cycles differ: epoch %d/%d, one-shot %d/%d",
					got.Events, got.Cycles, ref.Events, ref.Cycles)
			}
			for c := range ref.Clusters {
				if !reflect.DeepEqual(got.Clusters[c], ref.Clusters[c]) {
					t.Errorf("cluster %d result differs", c)
				}
			}
		})
	}
}

// TestEpochDeterminismAcrossWorkers extends the tentpole determinism bar to
// the dynamic policies: stealing under every static route, feedback
// routing, and feedback with stealing and affinity pinning must all be
// byte-identically reproducible for 1, 2, 4, and 8 workers.
func TestEpochDeterminismAcrossWorkers(t *testing.T) {
	w := testWorkload(t, 240, 7)
	skewDurations(w, 99)
	epoch := spanEpoch(w, 100)
	cells := []struct {
		name     string
		route    string
		steal    bool
		affinity int
	}{
		{"steal-roundrobin", RouteRoundRobin, true, 0},
		{"steal-least-work", RouteLeastWork, true, 0},
		{"steal-best-fit", RouteBestFit, true, 0},
		{"feedback", RouteFeedback, false, 0},
		{"feedback-steal-affinity", RouteFeedback, true, 3},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			var golden []byte
			for _, workers := range []int{1, 2, 4, 8} {
				res, err := Run(w, Config{
					Clusters:     4,
					Workers:      workers,
					Engine:       epochEngine(),
					NewScheduler: losFactory,
					Route:        cell.route,
					Epoch:        epoch,
					Steal:        cell.steal,
					Affinity:     cell.affinity,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				buf, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if golden == nil {
					golden = buf
					continue
				}
				if !bytes.Equal(golden, buf) {
					t.Fatalf("workers=%d: result differs from workers=1", workers)
				}
			}
		})
	}
}

// TestStealPartitionInvariant: stealing moves jobs between clusters but
// never loses, duplicates, or drops one — every submission completes on
// exactly one cluster, and the ownership map agrees with the per-cluster
// job counts.
func TestStealPartitionInvariant(t *testing.T) {
	w := testWorkload(t, 240, 7)
	skewDurations(w, 99)
	res, err := Run(w, Config{
		Clusters:     4,
		Workers:      2,
		Engine:       epochEngine(),
		NewScheduler: losFactory,
		Route:        RouteRoundRobin,
		Epoch:        spanEpoch(w, 100),
		Steal:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("no steals on skewed traffic; the test exercises nothing")
	}
	total := 0
	for _, c := range res.Clusters {
		total += c.Result.Summary.Jobs
	}
	if total != len(w.Jobs) {
		t.Fatalf("clusters completed %d jobs, workload has %d", total, len(w.Jobs))
	}
	if res.Merged.Jobs != len(w.Jobs) || res.Merged.JobsFinished != len(w.Jobs) {
		t.Fatalf("merged counts %d/%d, want %d completed",
			res.Merged.Jobs, res.Merged.JobsFinished, len(w.Jobs))
	}
	if len(res.Owners) != len(w.Jobs) {
		t.Fatalf("ownership map holds %d jobs, workload has %d", len(res.Owners), len(w.Jobs))
	}
	counts := make([]int, len(res.Clusters))
	for _, c := range res.Owners {
		counts[c]++
	}
	for i, cr := range res.Clusters {
		if cr.Jobs != counts[i] {
			t.Errorf("cluster %d reports %d jobs, ownership map says %d", i, cr.Jobs, counts[i])
		}
		if cr.Result.Summary.Jobs != counts[i] {
			t.Errorf("cluster %d completed %d jobs, ownership map says %d",
				i, cr.Result.Summary.Jobs, counts[i])
		}
	}
}

// TestCommandsFollowUnderStealing: commands always reach the cluster that
// owns their job at delivery time, so turning stealing on must deliver
// exactly the same command stream — same processed total, same
// unknown-job count (which depends only on issue-before-arrival timing).
func TestCommandsFollowUnderStealing(t *testing.T) {
	w := testWorkload(t, 240, 7)
	skewDurations(w, 99)
	if len(w.Commands) == 0 {
		t.Fatal("workload has no commands; the test exercises nothing")
	}
	base := Config{
		Clusters:     4,
		Engine:       epochEngine(),
		NewScheduler: losFactory,
		Route:        RouteRoundRobin,
	}
	ref, err := Run(w, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Epoch = spanEpoch(w, 100)
	cfg.Steal = true
	got, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Steals == 0 {
		t.Fatal("no steals; the test exercises nothing")
	}
	if got.ECC.Total != ref.ECC.Total {
		t.Errorf("stealing processed %d commands, static %d", got.ECC.Total, ref.ECC.Total)
	}
	if got.ECC.IgnoredUnknown != ref.ECC.IgnoredUnknown {
		t.Errorf("stealing ignored %d unknown-job commands, static %d",
			got.ECC.IgnoredUnknown, ref.ECC.IgnoredUnknown)
	}
}

// TestAffinityNeverViolated: pinned jobs stay on their home cluster no
// matter how the exchange step rebalances everything else.
func TestAffinityNeverViolated(t *testing.T) {
	const clusters, affinity = 4, 2
	w := testWorkload(t, 240, 7)
	skewDurations(w, 99)
	res, err := Run(w, Config{
		Clusters:     clusters,
		Engine:       epochEngine(),
		NewScheduler: losFactory,
		Route:        RouteFeedback,
		Epoch:        spanEpoch(w, 100),
		Steal:        true,
		Affinity:     affinity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("no steals; the test exercises nothing")
	}
	pinned := 0
	for id, c := range res.Owners {
		if pin := PinnedCluster(id, affinity, clusters); pin >= 0 {
			pinned++
			if c != pin {
				t.Errorf("job %d pinned to cluster %d but completed on %d", id, pin, c)
			}
		}
	}
	if pinned == 0 {
		t.Fatal("no job was pinned; the test exercises nothing")
	}
}

// TestStealFaultDeterminism: fault injection composes with the exchange
// step — failure victims requeue rigid and are never stolen — and the
// combined run is still identical across worker counts.
func TestStealFaultDeterminism(t *testing.T) {
	w := testWorkload(t, 160, 11)
	skewDurations(w, 99)
	cfg := Config{
		Clusters: 2,
		Engine: engine.Config{
			M: 320, Unit: 32, ProcessECC: true,
			Faults: &engine.FaultConfig{MTBF: 2e5, MTTR: 5e3, Seed: 3},
		},
		NewScheduler: losFactory,
		Route:        RouteRoundRobin,
		Epoch:        spanEpoch(w, 100),
		Steal:        true,
	}
	cfg.Workers = 1
	r1, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	r2, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("fault-injected stealing run differs between 1 and 2 workers")
	}
	if r1.Merged.DownProcSeconds == 0 {
		t.Fatal("fault model produced no downtime; the test exercises nothing")
	}
}

// TestSingleClusterBypassesEpoch: with one cluster every dynamic knob is a
// no-op — the run takes the plain path and matches engine.Run exactly,
// with no epoch bookkeeping in the result.
func TestSingleClusterBypassesEpoch(t *testing.T) {
	w := testWorkload(t, 200, 3)
	res, err := Run(w, Config{
		Clusters:     1,
		Engine:       engine.Config{M: 320, Unit: 32, ProcessECC: true},
		NewScheduler: losFactory,
		Route:        RouteFeedback,
		Epoch:        500,
		Steal:        true,
		Affinity:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Run(w, engine.Config{
		M: 320, Unit: 32, ProcessECC: true, Scheduler: losFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Clusters[0].Result, ref) {
		t.Fatal("single-cluster run with dynamic knobs differs from plain engine.Run")
	}
	if res.Epochs != 0 || res.Steals != 0 || res.Owners != nil {
		t.Fatalf("single cluster ran epoch machinery: epochs=%d steals=%d owners=%v",
			res.Epochs, res.Steals, res.Owners)
	}
}

// TestEpochConfigErrors pins ErrEpochRequired for every dynamic feature
// requested without an epoch on a multi-cluster run.
func TestEpochConfigErrors(t *testing.T) {
	w := testWorkload(t, 20, 1)
	base := Config{
		Clusters:     2,
		Engine:       engine.Config{M: 320, Unit: 32},
		NewScheduler: losFactory,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"steal without epoch", func(c *Config) { c.Steal = true }},
		{"affinity without epoch", func(c *Config) { c.Affinity = 4 }},
		{"feedback without epoch", func(c *Config) { c.Route = RouteFeedback }},
		{"negative epoch", func(c *Config) { c.Epoch = -7 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := Run(w, cfg); !errors.Is(err, ErrEpochRequired) {
				t.Fatalf("got %v, want errors.Is(err, ErrEpochRequired)", err)
			}
		})
	}
}

// TestStealBeatsStaticOnSkew is the simulated-metric half of the headline
// claim: on runtime-skewed traffic over 8 clusters, the exchange step
// improves mean wait over the same routing policy without it, and
// round-robin with stealing recovers (at least) static least-work quality.
func TestStealBeatsStaticOnSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run skew comparison")
	}
	const clusters = 8
	w := skewedWorkload(t, clusters)
	epoch := spanEpoch(w, 5000)
	run := func(route string, steal bool) *Result {
		t.Helper()
		cfg := Config{
			Clusters:     clusters,
			Engine:       engine.Config{M: 320, Unit: 32},
			NewScheduler: losFactory,
			Route:        route,
		}
		if steal {
			cfg.Epoch = epoch
			cfg.Steal = true
		}
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lw := run(RouteLeastWork, false)
	rr := run(RouteRoundRobin, false)
	rrSteal := run(RouteRoundRobin, true)
	lwSteal := run(RouteLeastWork, true)
	fbSteal := run(RouteFeedback, true)
	if rrSteal.Steals == 0 {
		t.Fatal("no steals on skewed round-robin traffic; the test exercises nothing")
	}
	if got, want := rrSteal.Merged.MeanWait, rr.Merged.MeanWait; got > want {
		t.Errorf("stealing worsened round-robin mean wait: %.1f > %.1f", got, want)
	}
	if got, want := lwSteal.Merged.MeanWait, lw.Merged.MeanWait; got > want {
		t.Errorf("stealing worsened least-work mean wait: %.1f > %.1f", got, want)
	}
	if got, want := rrSteal.Merged.MeanWait, lw.Merged.MeanWait; got > want {
		t.Errorf("round-robin with stealing (%.1f) did not recover static least-work (%.1f)", got, want)
	}
	if got, want := fbSteal.Merged.MeanWait, lw.Merged.MeanWait; got > want {
		t.Errorf("feedback with stealing (%.1f) did not beat static least-work (%.1f)", got, want)
	}
}
