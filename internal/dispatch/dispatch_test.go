package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/job"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

// testWorkload generates a mixed workload: batch and dedicated jobs plus an
// ET/RT command stream, so routing must carry every stream correctly.
func testWorkload(t testing.TB, n int, seed int64) *cwf.Workload {
	t.Helper()
	p := workload.DefaultParams()
	p.N = n
	p.Seed = seed
	p.PD = 0.2
	p.PE = 0.2
	p.PR = 0.1
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func losFactory() sched.Scheduler { return core.NewLOS(true) }

// TestShardedDeterminismAcrossWorkers is the tentpole determinism bar: for
// every routing policy, the complete sharded result must be
// byte-identically reproducible for 1, 2, 4, and 8 workers.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	w := testWorkload(t, 240, 7)
	for _, route := range Policies() {
		t.Run(route, func(t *testing.T) {
			var golden []byte
			for _, workers := range []int{1, 2, 4, 8} {
				res, err := Run(w, Config{
					Clusters:     4,
					Workers:      workers,
					Engine:       engine.Config{M: 320, Unit: 32, ProcessECC: true},
					NewScheduler: losFactory,
					Route:        route,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				buf, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if golden == nil {
					golden = buf
					continue
				}
				if !bytes.Equal(golden, buf) {
					t.Fatalf("workers=%d: result differs from workers=1:\n%s\nvs\n%s", workers, golden, buf)
				}
			}
		})
	}
}

// TestShardedFaultDeterminism pins the per-cluster fault-seed offsets: with
// fault injection on, the sharded outcome is still identical across worker
// counts, and distinct clusters draw distinct fault streams.
func TestShardedFaultDeterminism(t *testing.T) {
	w := testWorkload(t, 160, 11)
	cfg := Config{
		Clusters: 2,
		Engine: engine.Config{
			M: 320, Unit: 32, ProcessECC: true,
			Faults: &engine.FaultConfig{MTBF: 2e5, MTTR: 5e3, Seed: 3},
		},
		NewScheduler: losFactory,
	}
	cfg.Workers = 1
	r1, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	r2, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("fault-injected sharded run differs between 1 and 2 workers")
	}
	if r1.Merged.DownProcSeconds == 0 {
		t.Fatal("fault model produced no downtime; the test exercises nothing")
	}
}

// TestSingleClusterMatchesEngine: with one cluster the dispatcher is the
// plain engine run — the per-cluster result must match engine.Run exactly,
// and the merged summary must agree on the mergeable fields.
func TestSingleClusterMatchesEngine(t *testing.T) {
	w := testWorkload(t, 200, 3)
	res, err := Run(w, Config{
		Clusters:     1,
		Engine:       engine.Config{M: 320, Unit: 32, ProcessECC: true},
		NewScheduler: losFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Run(w, engine.Config{
		M: 320, Unit: 32, ProcessECC: true, Scheduler: core.NewLOS(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Clusters[0].Result, ref) {
		t.Fatalf("cluster result %+v != engine result %+v", res.Clusters[0].Result, ref)
	}
	m, s := res.Merged, ref.Summary
	if m.Jobs != s.Jobs || m.MachineSize != s.MachineSize ||
		m.WindowStart != s.WindowStart || m.WindowEnd != s.WindowEnd ||
		m.DedicatedJobs != s.DedicatedJobs || m.MaxWait != s.MaxWait {
		t.Fatalf("merged %+v disagrees with engine summary %+v", m, s)
	}
	for _, c := range []struct {
		name string
		a, b float64
	}{
		{"Utilization", m.Utilization, s.Utilization},
		{"MeanWait", m.MeanWait, s.MeanWait},
		{"MeanRun", m.MeanRun, s.MeanRun},
		{"Slowdown", m.Slowdown, s.Slowdown},
		{"MeanBatchWait", m.MeanBatchWait, s.MeanBatchWait},
		{"MeanDedWait", m.MeanDedWait, s.MeanDedWait},
	} {
		if math.Abs(c.a-c.b) > 1e-9*(1+math.Abs(c.b)) {
			t.Errorf("merged %s = %g, engine %g", c.name, c.a, c.b)
		}
	}
}

// TestRouting checks the static round-robin split and that every command
// lands on its job's cluster.
func TestRouting(t *testing.T) {
	w := testWorkload(t, 103, 5)
	rr, err := NewRouter(RouteRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	parts := route(w, 4, 320, rr)
	want := JobsPerCluster(len(w.Jobs), 4)
	total := 0
	for c, p := range parts {
		if len(p.Jobs) != want[c] {
			t.Errorf("cluster %d holds %d jobs, want %d", c, len(p.Jobs), want[c])
		}
		total += len(p.Jobs)
		owned := map[int]bool{}
		for _, j := range p.Jobs {
			owned[j.ID] = true
		}
		for _, cmd := range p.Commands {
			if !owned[cmd.JobID] {
				t.Errorf("cluster %d holds %v for a job it does not own", c, cmd)
			}
		}
	}
	if total != len(w.Jobs) {
		t.Fatalf("routed %d jobs, workload has %d", total, len(w.Jobs))
	}
	routedCmds := 0
	for _, p := range parts {
		routedCmds += len(p.Commands)
	}
	if routedCmds != len(w.Commands) {
		t.Fatalf("routed %d commands, workload has %d", routedCmds, len(w.Commands))
	}
}

type nopObserver struct{}

func (nopObserver) JobStarted(*job.Job, int64, []int)          {}
func (nopObserver) JobFinished(*job.Job, int64)                {}
func (nopObserver) JobResized(*job.Job, int64, int, int, bool) {}
func (nopObserver) JobKilled(*job.Job, int64)                  {}

// TestConfigErrors pins the errors.Is-testable rejection of invalid
// configurations.
func TestConfigErrors(t *testing.T) {
	w := testWorkload(t, 20, 1)
	base := Config{
		Clusters:     2,
		Engine:       engine.Config{M: 320, Unit: 32},
		NewScheduler: losFactory,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"zero clusters", func(c *Config) { c.Clusters = 0 }, ErrClusterCount},
		{"negative clusters", func(c *Config) { c.Clusters = -3 }, ErrClusterCount},
		{"no factory", func(c *Config) { c.NewScheduler = nil }, ErrNoScheduler},
		{"template scheduler", func(c *Config) { c.Engine.Scheduler = core.NewLOS(true) }, ErrTemplateScheduler},
		{"template observer", func(c *Config) { c.Engine.Observer = nopObserver{} }, ErrTemplateObserver},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			_, err := Run(w, cfg)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// TestClusterError: an engine-level failure inside any cluster is wrapped
// with its cluster index and surfaced (first failing cluster in index
// order).
func TestClusterError(t *testing.T) {
	w := testWorkload(t, 30, 2)
	// A batch-only scheduler with dedicated jobs in the stream fails at
	// Load on whichever clusters received dedicated jobs.
	_, err := Run(w, Config{
		Clusters:     2,
		Engine:       engine.Config{M: 320, Unit: 32},
		NewScheduler: func() sched.Scheduler { return sched.FCFS{} },
	})
	if err == nil {
		t.Fatal("expected an error from dedicated jobs under a batch-only policy")
	}
}
