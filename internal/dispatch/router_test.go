package dispatch

import (
	"errors"
	"reflect"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
)

// TestRouterRegistry pins the policy-name registry: the empty name is the
// round-robin default, every listed policy resolves, and unknown names
// fail with the typed error.
func TestRouterRegistry(t *testing.T) {
	r, err := NewRouter("")
	if err != nil || r.Name() != RouteRoundRobin {
		t.Fatalf(`NewRouter("") = %v, %v; want the round-robin default`, r, err)
	}
	for _, name := range Policies() {
		r, err := NewRouter(name)
		if err != nil {
			t.Errorf("NewRouter(%q): %v", name, err)
			continue
		}
		if r.Name() != name {
			t.Errorf("NewRouter(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := NewRouter("steal-everything"); !errors.Is(err, ErrUnknownRoute) {
		t.Fatalf("unknown policy: got %v, want errors.Is(err, ErrUnknownRoute)", err)
	}
}

// TestRoutingPolicyProperties is the policy-independent routing contract:
// for every policy and cluster count, the split partitions the workload
// exactly (no job lost or duplicated), every command lands on its job's
// cluster with none dropped, every destination is a real cluster whose
// machine fits the job, and routing the same workload twice produces the
// identical split (purity).
func TestRoutingPolicyProperties(t *testing.T) {
	const m = 320
	w := testWorkload(t, 211, 13)
	for _, policy := range Policies() {
		for _, clusters := range []int{2, 3, 8} {
			r, err := NewRouter(policy)
			if err != nil {
				t.Fatal(err)
			}
			parts := route(w, clusters, m, r)
			if len(parts) != clusters {
				t.Fatalf("%s/%d: %d parts", policy, clusters, len(parts))
			}
			seen := make(map[int]int, len(w.Jobs))
			jobs, cmds := 0, 0
			for c, p := range parts {
				owned := map[int]bool{}
				for _, j := range p.Jobs {
					if prev, dup := seen[j.ID]; dup {
						t.Fatalf("%s/%d: job %d on clusters %d and %d", policy, clusters, j.ID, prev, c)
					}
					seen[j.ID] = c
					owned[j.ID] = true
					if j.Size > m {
						t.Fatalf("%s/%d: job %d (size %d) routed to a cluster it cannot fit (M=%d)",
							policy, clusters, j.ID, j.Size, m)
					}
				}
				for _, cmd := range p.Commands {
					if !owned[cmd.JobID] {
						t.Fatalf("%s/%d: cluster %d holds %v for a job it does not own", policy, clusters, c, cmd)
					}
				}
				jobs += len(p.Jobs)
				cmds += len(p.Commands)
			}
			if jobs != len(w.Jobs) || cmds != len(w.Commands) {
				t.Fatalf("%s/%d: routed %d jobs / %d commands, workload has %d / %d",
					policy, clusters, jobs, cmds, len(w.Jobs), len(w.Commands))
			}
			r2, _ := NewRouter(policy)
			if again := route(w, clusters, m, r2); !reflect.DeepEqual(parts, again) {
				t.Fatalf("%s/%d: routing is not a pure function of the workload", policy, clusters)
			}
		}
	}
}

// TestRouteSingleClusterFastPath pins the clusters==1 fast path: the
// validated workload is returned as-is — same pointer, no per-part
// rebuild, no router involvement.
func TestRouteSingleClusterFastPath(t *testing.T) {
	w := testWorkload(t, 40, 3)
	parts := route(w, 1, 320, nil)
	if len(parts) != 1 || parts[0] != w {
		t.Fatalf("route(w, 1) = %v, want the input workload itself", parts)
	}
}

// TestLeastWorkBalancesSkew: under a work-skewed stream (every other job
// carries 100x the work), least-work must spread the heavy jobs across
// clusters while round-robin, phase-locked to the alternation, piles every
// heavy job onto the even clusters.
func TestLeastWorkBalancesSkew(t *testing.T) {
	const m, clusters = 320, 2
	var jobs []*job.Job
	for i := 0; i < 40; i++ {
		dur := int64(100)
		if i%2 == 0 {
			dur = 10000
		}
		jobs = append(jobs, &job.Job{ID: i + 1, Size: 32, Dur: dur, Arrival: int64(i), ReqStart: -1})
	}
	w := &cwf.Workload{Jobs: jobs}

	work := func(p *cwf.Workload) (t int64) {
		for _, j := range p.Jobs {
			t += int64(j.Size) * j.Dur
		}
		return
	}
	rr, _ := NewRouter(RouteRoundRobin)
	rrParts := route(w, clusters, m, rr)
	lw, _ := NewRouter(RouteLeastWork)
	lwParts := route(w, clusters, m, lw)

	rrSkew := float64(work(rrParts[0])) / float64(work(rrParts[1]))
	if rrSkew < 10 {
		t.Fatalf("round-robin skew %.1f — the scenario no longer produces a hot shard", rrSkew)
	}
	lwSkew := float64(work(lwParts[0])) / float64(work(lwParts[1]))
	if lwSkew > 1.5 || lwSkew < 1/1.5 {
		t.Fatalf("least-work skew %.2f, want near-balanced shards", lwSkew)
	}
}

// TestBestFitKeepsWideJobsFitting: best-fit packs narrow jobs tightly onto
// already-loaded shards, so a later machine-wide job finds a virtually
// empty shard. Least-work would have spread the narrow jobs over both
// shards and left the wide job with no virtual fit anywhere.
func TestBestFitKeepsWideJobsFitting(t *testing.T) {
	const m, clusters = 320, 2
	w := &cwf.Workload{Jobs: []*job.Job{
		{ID: 1, Size: 160, Dur: 1000, Arrival: 0, ReqStart: -1},
		{ID: 2, Size: 160, Dur: 1000, Arrival: 1, ReqStart: -1},
		{ID: 3, Size: 320, Dur: 1000, Arrival: 2, ReqStart: -1},
	}}
	bf, _ := NewRouter(RouteBestFit)
	parts := route(w, clusters, m, bf)
	if len(parts[0].Jobs) != 2 || parts[0].Jobs[0].ID != 1 || parts[0].Jobs[1].ID != 2 {
		t.Fatalf("best-fit should stack both half-machine jobs on cluster 0, got %v", parts[0].Jobs)
	}
	if len(parts[1].Jobs) != 1 || parts[1].Jobs[0].ID != 3 {
		t.Fatalf("best-fit should hand the wide job the empty cluster 1, got %v", parts[1].Jobs)
	}

	lw, _ := NewRouter(RouteLeastWork)
	for _, p := range route(w, clusters, m, lw) {
		for _, j := range p.Jobs {
			if j.ID == 3 && len(p.Jobs) == 1 {
				t.Fatal("least-work gave the wide job an empty shard too; the contrast case is vacuous")
			}
		}
	}
}
