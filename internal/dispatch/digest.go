package dispatch

import (
	"elastisched/internal/engine"
)

// Digest is the compact queue state one cluster publishes at an epoch
// barrier — the only cross-cluster information the exchange step and the
// feedback router are allowed to read. Everything in it is derived from the
// cluster's deterministic session state at the barrier instant, so the
// merged digest vector is itself deterministic and independent of worker
// count.
type Digest struct {
	// Cluster is the publishing cluster's index.
	Cluster int
	// QueueDepth is the number of waiting batch jobs.
	QueueDepth int
	// BacklogProcSeconds is the queued work: Σ size × estimated runtime
	// over the waiting batch jobs.
	BacklogProcSeconds int64
	// RunningProcSeconds is the residual running work: Σ size × (kill-by −
	// barrier) over the active jobs. Backlog + Running is the cluster's
	// outstanding load in processor-seconds.
	RunningProcSeconds int64
	// FreeProcs is the machine's free in-service capacity at the barrier.
	FreeProcs int
	// HeadDeficit is how many processors the queue head lacks to start
	// (head size − free, floored at zero; zero with an empty queue). A
	// positive deficit marks a blocked cluster: its head cannot start at
	// home no matter what the local scheduler does next.
	HeadDeficit int
}

// digestSession computes one cluster's barrier digest from its session.
func digestSession(c int, s *engine.Session, barrier int64) Digest {
	d := Digest{Cluster: c, FreeProcs: s.FreeProcs()}
	queued := s.WaitingBatch()
	d.QueueDepth = len(queued)
	for _, j := range queued {
		d.BacklogProcSeconds += int64(j.Size) * j.Dur
	}
	if len(queued) > 0 {
		if deficit := queued[0].Size - d.FreeProcs; deficit > 0 {
			d.HeadDeficit = deficit
		}
	}
	for _, j := range s.ActiveJobs() {
		if rem := j.EndTime - barrier; rem > 0 {
			d.RunningProcSeconds += int64(j.Size) * rem
		}
	}
	return d
}

// load is the cluster's outstanding work in processor-seconds — the
// quantity the exchange step balances.
func (d Digest) load() int64 { return d.BacklogProcSeconds + d.RunningProcSeconds }

// PinnedCluster resolves the affinity pin of a job ID: with affinity class
// size K > 0, every K-th submission (IDs divisible by K) is pinned to home
// cluster (ID/K) mod clusters — a deterministic data-locality class that
// both routing and stealing must respect. It returns -1 for unpinned jobs
// (and for affinity 0, which disables pinning). K=1 pins every job (a pure
// static partition by ID); larger K pins a 1/K sample of the stream.
func PinnedCluster(id, affinity, clusters int) int {
	if affinity <= 0 || id < 0 || id%affinity != 0 {
		return -1
	}
	return (id / affinity) % clusters
}
