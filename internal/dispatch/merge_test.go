package dispatch

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/engine"
	"elastisched/internal/job"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
)

// TestMergedSlowdownJobWeighted pins the job-weighted slowdown merge with a
// deliberately asymmetric two-cluster split: cluster 0 gets machine-wide
// short jobs that serialize (high slowdown), cluster 1 gets narrow long
// jobs that never wait (slowdown 1). The merged value must be the
// job-weighted mean of the per-cluster slowdowns — and must NOT be the
// ratio recomputed from the global means, which the asymmetry drives far
// from the weighted view (the ratio of averages is not the average of
// ratios).
func TestMergedSlowdownJobWeighted(t *testing.T) {
	var jobs []*job.Job
	for i := 0; i < 8; i++ {
		j := &job.Job{ID: i + 1, Arrival: int64(i * 5), ReqStart: -1}
		if i%2 == 0 {
			j.Size, j.Dur = 320, 100 // even index → cluster 0 under round-robin
		} else {
			j.Size, j.Dur = 32, 10000 // odd index → cluster 1
		}
		jobs = append(jobs, j)
	}
	w := &cwf.Workload{Jobs: jobs}
	res, err := Run(w, Config{
		Clusters:     2,
		Engine:       engine.Config{M: 320, Unit: 32},
		NewScheduler: func() sched.Scheduler { return sched.FCFS{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := res.Clusters[0].Result.Summary, res.Clusters[1].Result.Summary
	if s0.MeanWait == 0 || s1.MeanWait != 0 {
		t.Fatalf("scenario drifted: cluster waits %g / %g, want contention only on cluster 0",
			s0.MeanWait, s1.MeanWait)
	}
	n0, n1 := float64(s0.Jobs), float64(s1.Jobs)
	want := (s0.Slowdown*n0 + s1.Slowdown*n1) / (n0 + n1)
	if got := res.Merged.Slowdown; got != want {
		t.Fatalf("merged Slowdown = %g, want job-weighted %g", got, want)
	}
	ratioOfMeans := (res.Merged.MeanWait + res.Merged.MeanRun) / res.Merged.MeanRun
	if math.Abs(want-ratioOfMeans) < 0.1 {
		t.Fatalf("weighted (%g) and ratio-of-means (%g) agree; the asymmetry test is vacuous",
			want, ratioOfMeans)
	}
}

// TestMergedOrderStatsExact is the differential acceptance test for the
// exact global order statistics: for every routing policy, the merged
// MedianWait/P95Wait must equal — exactly, not approximately — the values
// computed from the per-cluster sample vectors concatenated in
// cluster-index order, and the steady-state window, utilization, and mean
// wait must equal an independent recomputation from the same exported
// samples using the collector's formulas.
func TestMergedOrderStatsExact(t *testing.T) {
	w := testWorkload(t, 180, 17)
	for _, policy := range Policies() {
		t.Run(policy, func(t *testing.T) {
			res, err := Run(w, Config{
				Clusters:     3,
				Engine:       engine.Config{M: 320, Unit: 32, ProcessECC: true},
				NewScheduler: losFactory,
				Route:        policy,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Concatenate samples in cluster-index order, as the merge does.
			var waits []float64
			var perJob []metrics.JobPoint
			for _, c := range res.Clusters {
				sm := c.Result.Samples
				if sm == nil {
					t.Fatalf("cluster %d exported no samples", c.Cluster)
				}
				waits = append(waits, sm.Waits...)
				perJob = append(perJob, sm.PerJob...)
			}
			n := len(waits)
			if n != res.Merged.Jobs {
				t.Fatalf("%d wait samples for %d merged jobs", n, res.Merged.Jobs)
			}

			// Median / p95 against a full sort of the concatenation.
			sorted := append([]float64(nil), waits...)
			sort.Float64s(sorted)
			if want := sorted[int(0.5*float64(n-1))]; res.Merged.MedianWait != want {
				t.Errorf("MedianWait = %v, sorted concatenation gives %v", res.Merged.MedianWait, want)
			}
			if want := sorted[int(0.95*float64(n-1))]; res.Merged.P95Wait != want {
				t.Errorf("P95Wait = %v, sorted concatenation gives %v", res.Merged.P95Wait, want)
			}

			// Steady window from the sorted global completion instants.
			finishes := make([]int64, n)
			for i, p := range perJob {
				finishes[i] = p.Finish
			}
			sort.Slice(finishes, func(i, j int) bool { return finishes[i] < finishes[j] })
			t0, t1 := finishes[n/10], finishes[n-1-n/10]
			if res.Merged.SteadyWindow != [2]int64{t0, t1} {
				t.Fatalf("SteadyWindow = %v, want [%d %d]", res.Merged.SteadyWindow, t0, t1)
			}
			if t1 <= t0 {
				t.Fatalf("degenerate steady window [%d %d]; pick a bigger workload", t0, t1)
			}

			// Steady utilization and mean wait, reaccumulated in the same
			// cluster-index order so the floating-point sums are identical.
			var area, waitSum float64
			var steadyJobs int
			for _, c := range res.Clusters {
				area += metrics.WindowArea(c.Result.Samples.BusySteps, t0, t1)
				for _, p := range c.Result.Samples.PerJob {
					if p.Arrival >= t0 && p.Arrival <= t1 {
						waitSum += p.Wait
						steadyJobs++
					}
				}
			}
			wantUtil := area / (float64(t1-t0) * float64(res.Merged.MachineSize))
			if res.Merged.SteadyUtilization != wantUtil {
				t.Errorf("SteadyUtilization = %v, recomputation gives %v", res.Merged.SteadyUtilization, wantUtil)
			}
			if steadyJobs == 0 {
				t.Fatal("no arrivals inside the steady window; the scenario exercises nothing")
			}
			if want := waitSum / float64(steadyJobs); res.Merged.SteadyMeanWait != want {
				t.Errorf("SteadyMeanWait = %v, recomputation gives %v", res.Merged.SteadyMeanWait, want)
			}
			if res.Merged.SteadyUtilization <= 0 || res.Merged.MedianWait < 0 {
				t.Error("order statistics look unpopulated")
			}
		})
	}
}

// TestSingleClusterMergedIsPassthrough: with one cluster the merged summary
// is the engine summary itself — every field, order statistics and
// MaxQueueDepth included — and no sample export is paid.
func TestSingleClusterMergedIsPassthrough(t *testing.T) {
	w := testWorkload(t, 120, 9)
	res, err := Run(w, Config{
		Clusters:     1,
		Engine:       engine.Config{M: 320, Unit: 32, ProcessECC: true},
		NewScheduler: losFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Merged, res.Clusters[0].Result.Summary) {
		t.Fatalf("merged %+v is not the single cluster's summary %+v",
			res.Merged, res.Clusters[0].Result.Summary)
	}
	if res.Clusters[0].Result.Samples != nil {
		t.Fatal("single-cluster run paid the sample export")
	}
	if res.Merged.MedianWait == 0 && res.Merged.P95Wait == 0 {
		t.Fatal("single-cluster order statistics missing from passthrough")
	}
}
