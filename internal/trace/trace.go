// Package trace records per-job placement during a simulation run and
// renders it as a schedule Gantt chart — node groups over time — in ASCII
// (for terminals) and SVG (for reports). Attach a Recorder to the engine
// via Config.Observer.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"elastisched/internal/job"
)

// Resize is one size change of a running job: a client EP/RP command, a
// scheduler proposal, or a fault-path shrink.
type Resize struct {
	Time    int64
	From    int // size before the resize
	NewSize int
	// Auto marks a system-initiated resize (scheduler proposal or
	// fault-path shrink) as opposed to a client EP/RP command.
	Auto bool
}

// Span is the recorded life of one dispatched job.
type Span struct {
	JobID    int
	Class    job.Class
	Size     int // size at dispatch
	Arrival  int64
	ReqStart int64 // -1 for batch jobs
	Start    int64
	End      int64
	Groups   []int // node groups held at dispatch
	Resizes  []Resize
	// Killed marks a span ended by a node-group failure rather than a
	// completion; a retried job contributes one killed span per attempt
	// plus (at most) one final non-killed span.
	Killed bool
	// MinProcs and MaxProcs are the job's malleable processor bounds (both
	// zero for rigid jobs), recorded so the audit oracle can hold resizes
	// to them.
	MinProcs int
	MaxProcs int
	// Planned is the job's effective runtime at dispatch. The audit oracle
	// replays the span's resizes forward from it to verify work-conserving
	// rescaling; the post-run job object no longer holds the dispatch-time
	// requirement.
	Planned int64
}

// Wait returns the span's waiting time under the paper's definition.
func (s Span) Wait() int64 {
	if s.Class == job.Dedicated && s.ReqStart >= 0 {
		w := s.Start - s.ReqStart
		if w < 0 {
			w = 0
		}
		return w
	}
	return s.Start - s.Arrival
}

// Recorder implements the engine's Observer interface and accumulates
// spans. The zero value is unusable; use NewRecorder.
type Recorder struct {
	m, unit int
	open    map[int]*Span
	spans   []Span
}

// NewRecorder returns a recorder for a machine of m processors in groups
// of unit.
func NewRecorder(m, unit int) *Recorder {
	return &Recorder{m: m, unit: unit, open: make(map[int]*Span)}
}

// JobStarted implements engine.Observer.
func (r *Recorder) JobStarted(j *job.Job, now int64, groups []int) {
	r.open[j.ID] = &Span{
		JobID: j.ID, Class: j.Class, Size: j.Size,
		Arrival: j.Arrival, ReqStart: j.ReqStart,
		Start: now, Groups: groups,
		MinProcs: j.MinProcs, MaxProcs: j.MaxProcs,
		Planned: j.EffectiveRuntime(),
	}
}

// JobFinished implements engine.Observer.
func (r *Recorder) JobFinished(j *job.Job, now int64) {
	sp, ok := r.open[j.ID]
	if !ok {
		return
	}
	delete(r.open, j.ID)
	sp.End = now
	r.spans = append(r.spans, *sp)
}

// JobKilled implements engine.Observer: the open span closes at the kill
// instant, marked Killed. A requeued job's next dispatch opens a fresh
// span, so each attempt is audited on its own.
func (r *Recorder) JobKilled(j *job.Job, now int64) {
	sp, ok := r.open[j.ID]
	if !ok {
		return
	}
	delete(r.open, j.ID)
	sp.End = now
	sp.Killed = true
	r.spans = append(r.spans, *sp)
}

// JobResized implements engine.Observer.
func (r *Recorder) JobResized(j *job.Job, now int64, oldSize, newSize int, auto bool) {
	if sp, ok := r.open[j.ID]; ok {
		sp.Resizes = append(sp.Resizes, Resize{Time: now, From: oldSize, NewSize: newSize, Auto: auto})
	}
}

// Spans returns the completed spans sorted by start time (ties by ID).
func (r *Recorder) Spans() []Span {
	out := append([]Span(nil), r.spans...)
	sort.Slice(out, func(i, k int) bool {
		if out[i].Start != out[k].Start {
			return out[i].Start < out[k].Start
		}
		return out[i].JobID < out[k].JobID
	})
	return out
}

// Machine returns the recorded machine geometry.
func (r *Recorder) Machine() (m, unit int) { return r.m, r.unit }

// Window returns the recorded time range [first start, last end].
func (r *Recorder) Window() (start, end int64) {
	first := true
	for _, sp := range r.spans {
		if first || sp.Start < start {
			start = sp.Start
		}
		if first || sp.End > end {
			end = sp.End
		}
		first = false
	}
	return start, end
}

// glyphs used for jobs in the ASCII chart, cycled by job ID.
const glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// ASCII renders the schedule as rows of node groups over a width-column
// time axis. Dedicated jobs are bracketed in the legend.
func (r *Recorder) ASCII(width int) string {
	spans := r.Spans()
	var b strings.Builder
	if len(spans) == 0 {
		return "(empty schedule)\n"
	}
	if width < 20 {
		width = 20
	}
	start, end := r.Window()
	if end <= start {
		end = start + 1
	}
	scale := float64(width) / float64(end-start)
	rows := r.m / r.unit
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	for _, sp := range spans {
		g := glyphs[(sp.JobID-1+len(glyphs))%len(glyphs)]
		c0 := int(float64(sp.Start-start) * scale)
		c1 := int(float64(sp.End-start) * scale)
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > width {
			c1 = width
		}
		for _, grp := range sp.Groups {
			if grp < 0 || grp >= rows {
				continue
			}
			for c := c0; c < c1; c++ {
				grid[grp][c] = g
			}
		}
	}
	fmt.Fprintf(&b, "schedule %d..%d on %d procs (%d groups of %d)\n", start, end, r.m, rows, r.unit)
	for i := rows - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "grp%02d %s\n", i, string(grid[i]))
	}
	fmt.Fprintf(&b, "      %-*s%d\n", width-len(fmt.Sprint(end)), fmt.Sprint(start), end)
	// Legend, capped to keep terminals readable.
	legend := make([]string, 0, len(spans))
	for _, sp := range spans {
		if len(legend) >= 24 {
			legend = append(legend, "...")
			break
		}
		tag := fmt.Sprintf("%c=j%d", glyphs[(sp.JobID-1+len(glyphs))%len(glyphs)], sp.JobID)
		if sp.Class == job.Dedicated {
			tag = "[" + tag + "]"
		}
		legend = append(legend, tag)
	}
	fmt.Fprintf(&b, "%s\n", strings.Join(legend, " "))
	return b.String()
}

// svgPalette cycles fill colors by job ID.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// SVG renders the schedule as an SVG document: x = time, y = node groups,
// one rectangle per (job, contiguous group run). Dedicated jobs get a
// darker border and their requested start is marked.
func (r *Recorder) SVG(width, height int) string {
	spans := r.Spans()
	var b strings.Builder
	if width <= 0 {
		width = 900
	}
	if height <= 0 {
		height = 400
	}
	start, end := r.Window()
	if end <= start {
		end = start + 1
	}
	rows := r.m / r.unit
	xScale := float64(width-80) / float64(end-start)
	rowH := float64(height-60) / float64(rows)
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for _, sp := range spans {
		fill := svgPalette[(sp.JobID-1+len(svgPalette))%len(svgPalette)]
		stroke := "none"
		if sp.Class == job.Dedicated {
			stroke = "#222222"
		}
		x := 60 + float64(sp.Start-start)*xScale
		w := float64(sp.End-sp.Start) * xScale
		if w < 1 {
			w = 1
		}
		for _, run := range contiguousRuns(sp.Groups) {
			y := 30 + float64(rows-run.hi-1)*rowH
			h := float64(run.hi-run.lo+1) * rowH
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="%s" opacity="0.85"><title>job %d (%d procs, %d..%d)</title></rect>`+"\n",
				x, y, w, h, fill, stroke, sp.JobID, sp.Size, sp.Start, sp.End)
		}
		if sp.Class == job.Dedicated && sp.ReqStart >= start {
			rx := 60 + float64(sp.ReqStart-start)*xScale
			fmt.Fprintf(&b, `<line x1="%.1f" y1="30" x2="%.1f" y2="%d" stroke="#cc0000" stroke-dasharray="3,3"/>`+"\n",
				rx, rx, height-30)
		}
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="60" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", height-30, width-20, height-30)
	fmt.Fprintf(&b, `<line x1="60" y1="30" x2="60" y2="%d" stroke="black"/>`+"\n", height-30)
	fmt.Fprintf(&b, `<text x="60" y="%d">t=%d</text>`+"\n", height-15, start)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">t=%d</text>`+"\n", width-20, height-15, end)
	fmt.Fprintf(&b, `<text x="5" y="%d" transform="rotate(-90 12 %d)">node groups</text>`+"\n", height/2, height/2)
	b.WriteString("</svg>\n")
	return b.String()
}

type groupRun struct{ lo, hi int }

// contiguousRuns compresses sorted group indices into [lo, hi] runs.
func contiguousRuns(groups []int) []groupRun {
	if len(groups) == 0 {
		return nil
	}
	gs := append([]int(nil), groups...)
	sort.Ints(gs)
	runs := []groupRun{{gs[0], gs[0]}}
	for _, g := range gs[1:] {
		last := &runs[len(runs)-1]
		if g == last.hi+1 {
			last.hi = g
			continue
		}
		runs = append(runs, groupRun{g, g})
	}
	return runs
}

// Stats summarizes the trace: per-class counts, mean waits, and the peak
// number of simultaneously running jobs.
type Stats struct {
	Jobs           int
	Dedicated      int
	MeanWait       float64
	PeakConcurrent int
}

// Summarize computes trace statistics.
func (r *Recorder) Summarize() Stats {
	spans := r.Spans()
	st := Stats{Jobs: len(spans)}
	if len(spans) == 0 {
		return st
	}
	type edge struct {
		t     int64
		delta int
	}
	edges := make([]edge, 0, 2*len(spans))
	var waitSum float64
	for _, sp := range spans {
		if sp.Class == job.Dedicated {
			st.Dedicated++
		}
		waitSum += float64(sp.Wait())
		edges = append(edges, edge{sp.Start, 1}, edge{sp.End, -1})
	}
	st.MeanWait = waitSum / float64(len(spans))
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].t != edges[k].t {
			return edges[i].t < edges[k].t
		}
		return edges[i].delta < edges[k].delta
	})
	cur := 0
	for _, e := range edges {
		cur += e.delta
		if cur > st.PeakConcurrent {
			st.PeakConcurrent = cur
		}
	}
	return st
}
