package trace

import (
	"encoding/xml"
	"strings"
	"testing"

	"elastisched/internal/job"
)

func recordOne(r *Recorder, id, size int, start, end int64, groups []int, class job.Class, reqStart int64) {
	j := &job.Job{ID: id, Size: size, Class: class, ReqStart: reqStart, Arrival: 0}
	r.JobStarted(j, start, groups)
	r.JobFinished(j, end)
}

func TestRecorderSpans(t *testing.T) {
	r := NewRecorder(320, 32)
	recordOne(r, 2, 64, 50, 150, []int{0, 1}, job.Batch, -1)
	recordOne(r, 1, 32, 0, 100, []int{2}, job.Batch, -1)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if spans[0].JobID != 1 || spans[1].JobID != 2 {
		t.Error("spans not sorted by start")
	}
	if spans[1].Start != 50 || spans[1].End != 150 || len(spans[1].Groups) != 2 {
		t.Errorf("span wrong: %+v", spans[1])
	}
}

func TestRecorderWindow(t *testing.T) {
	r := NewRecorder(320, 32)
	recordOne(r, 1, 32, 10, 100, []int{0}, job.Batch, -1)
	recordOne(r, 2, 32, 40, 250, []int{1}, job.Batch, -1)
	s, e := r.Window()
	if s != 10 || e != 250 {
		t.Errorf("window = [%d, %d], want [10, 250]", s, e)
	}
}

func TestRecorderIgnoresUnknownFinish(t *testing.T) {
	r := NewRecorder(320, 32)
	r.JobFinished(&job.Job{ID: 9}, 10) // never started: no panic, no span
	if len(r.Spans()) != 0 {
		t.Error("phantom span recorded")
	}
}

func TestSpanWaitDefinitions(t *testing.T) {
	b := Span{Class: job.Batch, Arrival: 10, Start: 50, ReqStart: -1}
	if b.Wait() != 40 {
		t.Errorf("batch wait %d, want 40", b.Wait())
	}
	d := Span{Class: job.Dedicated, Arrival: 0, ReqStart: 100, Start: 130}
	if d.Wait() != 30 {
		t.Errorf("dedicated wait %d, want 30", d.Wait())
	}
	onTime := Span{Class: job.Dedicated, Arrival: 0, ReqStart: 100, Start: 100}
	if onTime.Wait() != 0 {
		t.Errorf("on-time dedicated wait %d, want 0", onTime.Wait())
	}
}

func TestResizeRecorded(t *testing.T) {
	r := NewRecorder(320, 32)
	j := &job.Job{ID: 1, Size: 64, Class: job.Batch, ReqStart: -1}
	r.JobStarted(j, 0, []int{0, 1})
	r.JobResized(j, 50, 64, 128, false)
	r.JobFinished(j, 100)
	spans := r.Spans()
	if len(spans[0].Resizes) != 1 || spans[0].Resizes[0] != (Resize{Time: 50, From: 64, NewSize: 128}) {
		t.Errorf("resize not recorded: %+v", spans[0].Resizes)
	}
}

func TestASCIIChart(t *testing.T) {
	r := NewRecorder(96, 32)
	recordOne(r, 1, 64, 0, 100, []int{0, 1}, job.Batch, -1)
	recordOne(r, 2, 32, 0, 50, []int{2}, job.Dedicated, 0)
	out := r.ASCII(40)
	if !strings.Contains(out, "grp00") || !strings.Contains(out, "grp02") {
		t.Errorf("missing group rows:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("missing job glyphs:\n%s", out)
	}
	if !strings.Contains(out, "[B=j2]") {
		t.Errorf("dedicated job not bracketed in legend:\n%s", out)
	}
}

func TestASCIIEmpty(t *testing.T) {
	r := NewRecorder(96, 32)
	if !strings.Contains(r.ASCII(40), "empty") {
		t.Error("empty schedule should say so")
	}
}

func TestSVGWellFormed(t *testing.T) {
	r := NewRecorder(96, 32)
	recordOne(r, 1, 64, 0, 100, []int{0, 1}, job.Batch, -1)
	recordOne(r, 2, 32, 20, 70, []int{2}, job.Dedicated, 20)
	svg := r.SVG(600, 300)
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, svg)
		}
	}
	if !strings.Contains(svg, "<rect") || !strings.Contains(svg, "job 1") {
		t.Error("SVG missing job rectangles")
	}
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("SVG missing dedicated start marker")
	}
}

func TestSVGDefaults(t *testing.T) {
	r := NewRecorder(96, 32)
	recordOne(r, 1, 32, 0, 10, []int{0}, job.Batch, -1)
	if !strings.Contains(r.SVG(0, 0), `width="900"`) {
		t.Error("default dimensions not applied")
	}
}

func TestContiguousRuns(t *testing.T) {
	runs := contiguousRuns([]int{5, 0, 1, 2, 7})
	want := []groupRun{{0, 2}, {5, 5}, {7, 7}}
	if len(runs) != len(want) {
		t.Fatalf("runs %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs %v, want %v", runs, want)
		}
	}
	if contiguousRuns(nil) != nil {
		t.Error("empty groups should give nil runs")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(320, 32)
	recordOne(r, 1, 32, 0, 100, []int{0}, job.Batch, -1)        // wait 0
	recordOne(r, 2, 32, 50, 150, []int{1}, job.Batch, -1)       // wait 50
	recordOne(r, 3, 32, 120, 200, []int{2}, job.Dedicated, 100) // wait 20
	st := r.Summarize()
	if st.Jobs != 3 || st.Dedicated != 1 {
		t.Errorf("counts wrong: %+v", st)
	}
	if st.MeanWait != (0+50+20)/3.0 {
		t.Errorf("mean wait %g", st.MeanWait)
	}
	if st.PeakConcurrent != 2 {
		t.Errorf("peak concurrent %d, want 2", st.PeakConcurrent)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := NewRecorder(320, 32).Summarize(); st.Jobs != 0 {
		t.Error("empty summarize wrong")
	}
}

func TestMachineAccessor(t *testing.T) {
	r := NewRecorder(320, 32)
	m, u := r.Machine()
	if m != 320 || u != 32 {
		t.Errorf("Machine() = (%d, %d)", m, u)
	}
}
