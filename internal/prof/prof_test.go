package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// A little work so the profiles have something to describe.
	sink := 0
	for i := 0; i < 1<<16; i++ {
		sink += i * i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("repeated stop: %v", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("Start with uncreatable CPU path did not fail")
	}
}

func TestStopReportsBadMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop with uncreatable heap path did not fail")
	}
}
