// Package prof wires runtime/pprof CPU and heap profiling behind the
// -cpuprofile/-memprofile flags of the command-line tools. It exists so
// that simrun and expsuite share one tested implementation instead of
// each repeating the create/start/stop/write dance.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap profile
// to be written to memPath when the returned stop function runs. Either
// path may be empty, disabling that profile; with both empty, stop is a
// no-op. Callers must invoke stop (normally deferred from main) before
// exiting, or the CPU profile file will be truncated and the heap
// profile never written. stop is idempotent.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	done := false
	stop = func() error {
		if done {
			return nil
		}
		done = true
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				keep(err)
				return first
			}
			runtime.GC() // settle the heap so the snapshot shows live objects
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		return first
	}
	return stop, nil
}
