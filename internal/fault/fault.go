// Package fault is the deterministic failure model of the simulator:
// node-group failure/repair events, replayable fault traces (sampled from
// per-group exponential MTBF/MTTR or loaded from a scripted file), and the
// retry policy applied to jobs killed by a failure.
//
// The machine allocates processors in node-group quanta (32 processors on
// the paper's BlueGene/P rack), and that is also the failure domain: a
// failure takes whole node groups Down, killing every job holding one of
// them; a repair returns Down groups to service. Traces are pure data —
// the engine owns applying them — so the same trace can drive a run, be
// audited against the resulting schedule, and be replayed byte-identically.
package fault

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"elastisched/internal/dist"
)

// Kind distinguishes failure events from repair events.
type Kind uint8

const (
	// Fail takes the event's node groups Down at the event time.
	Fail Kind = iota
	// Repair returns the event's node groups to service.
	Repair
)

// String returns the trace-file keyword for the kind.
func (k Kind) String() string {
	if k == Fail {
		return "fail"
	}
	return "repair"
}

// Event is one failure or repair of a set of node groups at an instant.
type Event struct {
	Time   int64
	Kind   Kind
	Groups []int
}

// Trace is a time-sorted, replayable fault scenario.
type Trace struct {
	Events []Event
}

// Validation and configuration errors. Engine config validation wraps
// these so callers can test with errors.Is.
var (
	ErrNonPositiveMTBF   = errors.New("fault: MTBF must be positive")
	ErrNegativeMTTR      = errors.New("fault: MTTR must not be negative")
	ErrNegativeRetries   = errors.New("fault: retry limit must not be negative")
	ErrNegativeBackoff   = errors.New("fault: retry backoff must not be negative")
	ErrUnknownRetryMode  = errors.New("fault: unknown retry mode")
	ErrUnknownRestart    = errors.New("fault: unknown restart mode")
	ErrMalformedTrace    = errors.New("fault: malformed trace")
	ErrGroupOutOfRange   = errors.New("fault: group index out of range")
	ErrNonPositiveGroups = errors.New("fault: group count must be positive")
	ErrNonPositiveSpan   = errors.New("fault: horizon must be positive")

	ErrUnknownCheckpointPolicy = errors.New("fault: unknown checkpoint policy")
	ErrNegativeCheckpointCost  = errors.New("fault: checkpoint cost must not be negative")
	ErrNonPositiveInterval     = errors.New("fault: periodic checkpoint interval must be positive")
	ErrIntervalWithoutPeriodic = errors.New("fault: checkpoint interval set without a periodic policy")
	ErrDalyNeedsCost           = errors.New("fault: daly checkpointing needs a positive checkpoint cost")
	ErrDalyNeedsMTBF           = errors.New("fault: daly checkpointing needs a sampling MTBF (scripted traces carry no rate)")
)

// Mode selects what happens to a batch job killed by a failure.
type Mode uint8

const (
	// Requeue resubmits the killed job at the head of the batch queue
	// (after the backoff delay), subject to the retry limit.
	Requeue Mode = iota
	// Drop removes the killed job from the system permanently.
	Drop
)

// Restart selects how much runtime a requeued job carries back.
type Restart uint8

const (
	// FullRuntime restarts the job from scratch: no work survives the
	// kill, the resubmitted job runs its original runtime again.
	FullRuntime Restart = iota
	// RemainingRuntime models checkpointed jobs: the resubmitted job
	// needs only the work it had not yet completed when killed.
	RemainingRuntime
)

// RetryPolicy configures the dispatch of batch jobs killed by a failure.
// Dedicated jobs are never retried: their rigid start time has passed by
// the time they run, so a killed dedicated job is dropped and counted.
// The zero value requeues immediately with full restart and no retry cap.
type RetryPolicy struct {
	// Mode is Requeue or Drop.
	Mode Mode
	// Restart is FullRuntime or RemainingRuntime (Requeue mode only).
	Restart Restart
	// MaxRetries bounds requeues per job; 0 means unlimited. A job
	// killed after exhausting its retries is dropped.
	MaxRetries int
	// Backoff delays the resubmission of a killed job (sim seconds).
	Backoff int64
}

// Validate checks the policy bounds, wrapping the typed errors above.
func (p RetryPolicy) Validate() error {
	if p.Mode > Drop {
		return fmt.Errorf("%w: %d", ErrUnknownRetryMode, p.Mode)
	}
	if p.Restart > RemainingRuntime {
		return fmt.Errorf("%w: %d", ErrUnknownRestart, p.Restart)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("%w: %d", ErrNegativeRetries, p.MaxRetries)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("%w: %d", ErrNegativeBackoff, p.Backoff)
	}
	return nil
}

// CheckpointPolicy selects when running batch jobs checkpoint their
// progress. A checkpoint costs CheckpointCost sim seconds of the job's
// own occupancy (the job runs that much longer) and moves the job's
// restart point forward: a later kill loses only the work done since the
// last checkpoint plus one restart charge, instead of the FullRuntime /
// RemainingRuntime binary of RetryPolicy.Restart.
type CheckpointPolicy uint8

const (
	// CheckpointNone is the exact pre-checkpoint behaviour: kills fall
	// back to RetryPolicy.Restart and no cost is ever charged.
	CheckpointNone CheckpointPolicy = iota
	// CheckpointPeriodic checkpoints every CheckpointInterval seconds of
	// a job's run (the interval restarts after each checkpoint's cost).
	CheckpointPeriodic
	// CheckpointOnResize piggybacks a checkpoint on every applied resize:
	// reconfiguration already redistributes the job's data, so saving
	// state there is nearly free — only CheckpointCost extra is charged.
	// Requires the malleable pipeline.
	CheckpointOnResize
	// CheckpointDaly checkpoints periodically at Daly's optimum
	// I = sqrt(2*MTBF*C), derived from the configured sampling MTBF and
	// checkpoint cost (Daly, FGCS 2006 first-order approximation).
	CheckpointDaly
)

// String returns the flag/file spelling of the policy.
func (p CheckpointPolicy) String() string {
	switch p {
	case CheckpointNone:
		return "none"
	case CheckpointPeriodic:
		return "periodic"
	case CheckpointOnResize:
		return "on-resize"
	case CheckpointDaly:
		return "daly"
	}
	return fmt.Sprintf("checkpoint(%d)", uint8(p))
}

// ParseCheckpointPolicy resolves a flag spelling, wrapping
// ErrUnknownCheckpointPolicy.
func ParseCheckpointPolicy(s string) (CheckpointPolicy, error) {
	switch s {
	case "", "none":
		return CheckpointNone, nil
	case "periodic":
		return CheckpointPeriodic, nil
	case "on-resize":
		return CheckpointOnResize, nil
	case "daly":
		return CheckpointDaly, nil
	}
	return 0, fmt.Errorf("%w: %q (want none, periodic, on-resize or daly)", ErrUnknownCheckpointPolicy, s)
}

// DalyInterval is Daly's first-order optimal checkpoint interval
// sqrt(2*MTBF*C) for checkpoint cost C, floored to whole sim seconds and
// at least 1.
func DalyInterval(mtbf float64, cost int64) int64 {
	i := int64(math.Sqrt(2 * mtbf * float64(cost)))
	if i < 1 {
		return 1
	}
	return i
}

// ValidateCheckpoint checks one checkpoint configuration up front,
// wrapping the typed errors above. mtbf is the sampling failure rate the
// policy will run under (0 for scripted traces or no faults): the daly
// policy derives its interval from it and needs it positive.
func ValidateCheckpoint(policy CheckpointPolicy, interval, cost int64, mtbf float64) error {
	if policy > CheckpointDaly {
		return fmt.Errorf("%w: %d", ErrUnknownCheckpointPolicy, policy)
	}
	if cost < 0 {
		return fmt.Errorf("%w: %d", ErrNegativeCheckpointCost, cost)
	}
	if policy == CheckpointPeriodic {
		if interval <= 0 {
			return fmt.Errorf("%w: %d", ErrNonPositiveInterval, interval)
		}
	} else if interval != 0 {
		return fmt.Errorf("%w: interval %d with policy %s", ErrIntervalWithoutPeriodic, interval, policy)
	}
	if policy == CheckpointDaly {
		if cost <= 0 {
			return fmt.Errorf("%w: cost %d", ErrDalyNeedsCost, cost)
		}
		if math.IsNaN(mtbf) || mtbf <= 0 {
			return fmt.Errorf("%w: MTBF %g", ErrDalyNeedsMTBF, mtbf)
		}
	}
	return nil
}

// GenParams parameterizes sampled fault traces. Each of the machine's
// node groups fails and recovers independently: an alternating renewal
// process with exponential time-to-failure (mean MTBF) and exponential
// time-to-repair (mean MTTR), all driven by one seeded stream so a trace
// is a pure function of its parameters.
type GenParams struct {
	// Groups is the number of node groups (machine size / group size).
	Groups int
	// MTBF is the per-group mean time between failures, sim seconds.
	MTBF float64
	// MTTR is the per-group mean time to repair, sim seconds.
	MTTR float64
	// Horizon bounds failure sampling: failures land in [0, Horizon).
	// The closing repair of a failure is always emitted, even past the
	// horizon, so every sampled outage ends and a drained simulation
	// always gets its full capacity back.
	Horizon int64
	// Seed selects the random stream.
	Seed int64
}

// Generate samples a fault trace from the renewal model above.
func Generate(p GenParams) (*Trace, error) {
	if p.Groups <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrNonPositiveGroups, p.Groups)
	}
	if math.IsNaN(p.MTBF) || p.MTBF <= 0 {
		return nil, fmt.Errorf("%w: %g", ErrNonPositiveMTBF, p.MTBF)
	}
	if math.IsNaN(p.MTTR) || p.MTTR < 0 {
		return nil, fmt.Errorf("%w: %g", ErrNegativeMTTR, p.MTTR)
	}
	if p.Horizon <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrNonPositiveSpan, p.Horizon)
	}
	r := rand.New(rand.NewSource(p.Seed))
	ttf := dist.Exponential{Mean: p.MTBF}
	ttr := dist.Exponential{Mean: p.MTTR}
	t := &Trace{}
	for g := 0; g < p.Groups; g++ {
		now := int64(0)
		for {
			now += atLeast(ttf.Sample(r), 1)
			if now >= p.Horizon {
				break
			}
			up := now + atLeast(ttr.Sample(r), 1)
			t.Events = append(t.Events,
				Event{Time: now, Kind: Fail, Groups: []int{g}},
				Event{Time: up, Kind: Repair, Groups: []int{g}})
			now = up
		}
	}
	sortEvents(t.Events)
	return t, nil
}

func atLeast(v float64, min int64) int64 {
	if n := int64(v); n > min {
		return n
	}
	return min
}

// sortEvents orders events by (time, kind, first group): failures before
// repairs at the same instant, deterministically.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return firstGroup(a) < firstGroup(b)
	})
}

func firstGroup(e Event) int {
	if len(e.Groups) == 0 {
		return -1
	}
	return e.Groups[0]
}

// Validate checks that the trace is well-formed for a machine with the
// given number of node groups: times non-negative and non-decreasing,
// every event carrying at least one in-range group. It does NOT require
// fail/repair pairing — scripted scenarios may leave groups down forever
// or repair healthy groups (a no-op at the machine); Lint flags those.
func (t *Trace) Validate(groups int) error {
	var last int64
	for i, e := range t.Events {
		if e.Time < 0 {
			return fmt.Errorf("%w: event %d at negative time %d", ErrMalformedTrace, i, e.Time)
		}
		if e.Time < last {
			return fmt.Errorf("%w: event %d at t=%d before t=%d", ErrMalformedTrace, i, e.Time, last)
		}
		last = e.Time
		if e.Kind > Repair {
			return fmt.Errorf("%w: event %d has unknown kind %d", ErrMalformedTrace, i, e.Kind)
		}
		if len(e.Groups) == 0 {
			return fmt.Errorf("%w: event %d names no groups", ErrMalformedTrace, i)
		}
		for _, g := range e.Groups {
			if g < 0 || g >= groups {
				return fmt.Errorf("%w: event %d group %d (machine has %d)", ErrGroupOutOfRange, i, g, groups)
			}
		}
	}
	return nil
}

// Lint reports scenario-level inconsistencies a valid trace may still
// contain: a repair of a group that is not down, or a failure of a group
// that is already down. The audit oracle folds these into its report.
func (t *Trace) Lint(groups int) []string {
	down := make([]bool, groups)
	var issues []string
	for _, e := range t.Events {
		for _, g := range e.Groups {
			if g < 0 || g >= groups {
				continue // Validate's territory
			}
			switch e.Kind {
			case Fail:
				if down[g] {
					issues = append(issues, fmt.Sprintf("group %d fails at t=%d while already down", g, e.Time))
				}
				down[g] = true
			case Repair:
				if !down[g] {
					issues = append(issues, fmt.Sprintf("group %d repaired at t=%d with no preceding failure", g, e.Time))
				}
				down[g] = false
			}
		}
	}
	return issues
}

// DownWindows returns, per group, the half-open [fail, repair) intervals
// during which the group is down. A failure never repaired yields a
// window closing at horizon (pass the end of the span under audit).
func (t *Trace) DownWindows(groups int, horizon int64) [][][2]int64 {
	win := make([][][2]int64, groups)
	downAt := make([]int64, groups)
	down := make([]bool, groups)
	for _, e := range t.Events {
		for _, g := range e.Groups {
			if g < 0 || g >= groups {
				continue
			}
			switch e.Kind {
			case Fail:
				if !down[g] {
					down[g], downAt[g] = true, e.Time
				}
			case Repair:
				if down[g] {
					down[g] = false
					if e.Time > downAt[g] {
						win[g] = append(win[g], [2]int64{downAt[g], e.Time})
					}
				}
			}
		}
	}
	for g := range down {
		if down[g] && horizon > downAt[g] {
			win[g] = append(win[g], [2]int64{downAt[g], horizon})
		}
	}
	return win
}

// Parse reads a scripted fault trace. The format is line-oriented:
//
//	# comment
//	<time> fail   <group>[,<group>...]
//	<time> repair <group>[,<group>...]
//
// Times are non-negative integers (sim seconds) and must be
// non-decreasing; blank lines and #-comments are ignored.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		f := strings.Fields(s)
		if len(f) != 3 {
			return nil, fmt.Errorf("%w: line %d: want \"<time> fail|repair <groups>\", got %q", ErrMalformedTrace, line, s)
		}
		tm, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil || tm < 0 {
			return nil, fmt.Errorf("%w: line %d: bad time %q", ErrMalformedTrace, line, f[0])
		}
		var kind Kind
		switch f[1] {
		case "fail":
			kind = Fail
		case "repair":
			kind = Repair
		default:
			return nil, fmt.Errorf("%w: line %d: bad kind %q", ErrMalformedTrace, line, f[1])
		}
		var groups []int
		for _, p := range strings.Split(f[2], ",") {
			g, err := strconv.Atoi(p)
			if err != nil || g < 0 {
				return nil, fmt.Errorf("%w: line %d: bad group %q", ErrMalformedTrace, line, p)
			}
			groups = append(groups, g)
		}
		t.Events = append(t.Events, Event{Time: tm, Kind: kind, Groups: groups})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := 1; i < len(t.Events); i++ {
		if t.Events[i].Time < t.Events[i-1].Time {
			return nil, fmt.Errorf("%w: event at t=%d after t=%d", ErrMalformedTrace, t.Events[i].Time, t.Events[i-1].Time)
		}
	}
	return t, nil
}

// Write emits the trace in the format Parse reads.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events {
		gs := make([]string, len(e.Groups))
		for i, g := range e.Groups {
			gs[i] = strconv.Itoa(g)
		}
		if _, err := fmt.Fprintf(bw, "%d %s %s\n", e.Time, e.Kind, strings.Join(gs, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
