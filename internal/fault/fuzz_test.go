package fault

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzFaultTrace feeds arbitrary text through the scripted-trace parser.
// Accepted traces must survive a Write/Parse round trip unchanged, pass
// Validate for a machine wide enough to hold every named group, and keep
// Lint/DownWindows panic-free on hostile group sets.
func FuzzFaultTrace(f *testing.F) {
	f.Add("100 fail 0,3\n250 repair 3\n")
	f.Add("# comment\n\n0 fail 0\n0 repair 0\n")
	f.Add("10 explode 1\n")
	f.Add("9223372036854775807 fail 1\n")
	f.Add("5 fail 0,0,0\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		maxG := 0
		for _, e := range tr.Events {
			for _, g := range e.Groups {
				if g >= maxG {
					maxG = g + 1
				}
			}
		}
		if maxG == 0 {
			maxG = 1
		}
		if err := tr.Validate(maxG); err != nil {
			t.Fatalf("parsed trace fails Validate(%d): %v\ninput: %q", maxG, err, in)
		}
		_ = tr.Lint(maxG)
		_ = tr.DownWindows(maxG, 1<<40)

		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write: %v", err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Parse of written trace: %v\nwritten: %q", err, buf.String())
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(tr.Events), len(back.Events))
		}
		for i := range back.Events {
			a, b := tr.Events[i], back.Events[i]
			if a.Time != b.Time || a.Kind != b.Kind || len(a.Groups) != len(b.Groups) {
				t.Fatalf("event %d changed: %+v -> %+v", i, a, b)
			}
			for k := range a.Groups {
				if a.Groups[k] != b.Groups[k] {
					t.Fatalf("event %d group %d changed: %d -> %d", i, k, a.Groups[k], b.Groups[k])
				}
			}
		}
	})
}
