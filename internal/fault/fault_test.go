package fault

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestGenerateDeterministicAndValid(t *testing.T) {
	p := GenParams{Groups: 10, MTBF: 5000, MTTR: 800, Horizon: 100000, Seed: 42}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("expected some events at MTBF=5000 over 100000s")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("non-deterministic: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		av, bv := a.Events[i], b.Events[i]
		if av.Time != bv.Time || av.Kind != bv.Kind || av.Groups[0] != bv.Groups[0] {
			t.Fatalf("event %d differs: %+v vs %+v", i, av, bv)
		}
	}
	if err := a.Validate(p.Groups); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if issues := a.Lint(p.Groups); len(issues) != 0 {
		t.Fatalf("generated trace lints: %v", issues)
	}
}

func TestGenerateClosesEveryOutage(t *testing.T) {
	tr, err := Generate(GenParams{Groups: 8, MTBF: 300, MTTR: 5000, Horizon: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fails, repairs := 0, 0
	for _, e := range tr.Events {
		switch e.Kind {
		case Fail:
			fails++
		case Repair:
			repairs++
		}
	}
	if fails == 0 || fails != repairs {
		t.Fatalf("want paired fail/repair, got %d fails %d repairs", fails, repairs)
	}
	// With every outage closed, no down window may extend to the horizon
	// probe when it ends before the last repair.
	win := tr.DownWindows(8, math.MaxInt64)
	for g, ws := range win {
		for _, w := range ws {
			if w[1] == math.MaxInt64 {
				t.Fatalf("group %d has an unclosed outage", g)
			}
		}
	}
}

func TestGenerateParamErrors(t *testing.T) {
	cases := []struct {
		p    GenParams
		want error
	}{
		{GenParams{Groups: 0, MTBF: 1, Horizon: 1}, ErrNonPositiveGroups},
		{GenParams{Groups: 1, MTBF: 0, Horizon: 1}, ErrNonPositiveMTBF},
		{GenParams{Groups: 1, MTBF: -3, Horizon: 1}, ErrNonPositiveMTBF},
		{GenParams{Groups: 1, MTBF: 1, MTTR: -1, Horizon: 1}, ErrNegativeMTTR},
		{GenParams{Groups: 1, MTBF: 1, Horizon: 0}, ErrNonPositiveSpan},
	}
	for _, c := range cases {
		if _, err := Generate(c.p); !errors.Is(err, c.want) {
			t.Errorf("Generate(%+v) = %v, want %v", c.p, err, c.want)
		}
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := (RetryPolicy{}).Validate(); err != nil {
		t.Fatalf("zero policy should validate: %v", err)
	}
	cases := []struct {
		p    RetryPolicy
		want error
	}{
		{RetryPolicy{Mode: 9}, ErrUnknownRetryMode},
		{RetryPolicy{Restart: 9}, ErrUnknownRestart},
		{RetryPolicy{MaxRetries: -1}, ErrNegativeRetries},
		{RetryPolicy{Backoff: -5}, ErrNegativeBackoff},
	}
	for _, c := range cases {
		if err := c.p.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate(%+v) = %v, want %v", c.p, err, c.want)
		}
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	in := `
# failure of two groups, staggered repair
100 fail 0,3
250 repair 3
400 repair 0
400 fail 7
`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("want 4 events, got %d", len(tr.Events))
	}
	if g := tr.Events[0].Groups; len(g) != 2 || g[0] != 0 || g[1] != 3 {
		t.Fatalf("bad groups: %v", g)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), len(tr.Events))
	}
	for i := range back.Events {
		a, b := tr.Events[i], back.Events[i]
		if a.Time != b.Time || a.Kind != b.Kind || len(a.Groups) != len(b.Groups) {
			t.Fatalf("event %d differs after round trip: %+v vs %+v", i, a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"abc fail 0",
		"10 explode 0",
		"10 fail x",
		"10 fail",
		"10 fail 0 extra junk",
		"-5 fail 0",
		"10 fail -1",
		"100 fail 0\n50 repair 0", // time went backwards
	}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); !errors.Is(err, ErrMalformedTrace) {
			t.Errorf("Parse(%q) = %v, want ErrMalformedTrace", s, err)
		}
	}
}

func TestValidateBounds(t *testing.T) {
	tr := &Trace{Events: []Event{{Time: 5, Kind: Fail, Groups: []int{10}}}}
	if err := tr.Validate(10); !errors.Is(err, ErrGroupOutOfRange) {
		t.Fatalf("want ErrGroupOutOfRange, got %v", err)
	}
	tr = &Trace{Events: []Event{{Time: 5, Kind: Fail, Groups: nil}}}
	if err := tr.Validate(10); !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("want ErrMalformedTrace for empty groups, got %v", err)
	}
}

func TestLintFindsInversions(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 10, Kind: Repair, Groups: []int{2}},
		{Time: 20, Kind: Fail, Groups: []int{2}},
		{Time: 30, Kind: Fail, Groups: []int{2}},
	}}
	issues := tr.Lint(4)
	if len(issues) != 2 {
		t.Fatalf("want 2 lint issues, got %v", issues)
	}
	if !strings.Contains(issues[0], "no preceding failure") {
		t.Errorf("issue 0 = %q", issues[0])
	}
	if !strings.Contains(issues[1], "already down") {
		t.Errorf("issue 1 = %q", issues[1])
	}
}

func TestDownWindows(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 10, Kind: Fail, Groups: []int{0, 1}},
		{Time: 30, Kind: Repair, Groups: []int{0}},
		{Time: 50, Kind: Fail, Groups: []int{0}},
	}}
	win := tr.DownWindows(2, 100)
	if len(win[0]) != 2 || win[0][0] != [2]int64{10, 30} || win[0][1] != [2]int64{50, 100} {
		t.Fatalf("group 0 windows = %v", win[0])
	}
	if len(win[1]) != 1 || win[1][0] != [2]int64{10, 100} {
		t.Fatalf("group 1 windows = %v", win[1])
	}
}
