package fault

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestGenerateDeterministicAndValid(t *testing.T) {
	p := GenParams{Groups: 10, MTBF: 5000, MTTR: 800, Horizon: 100000, Seed: 42}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("expected some events at MTBF=5000 over 100000s")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("non-deterministic: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		av, bv := a.Events[i], b.Events[i]
		if av.Time != bv.Time || av.Kind != bv.Kind || av.Groups[0] != bv.Groups[0] {
			t.Fatalf("event %d differs: %+v vs %+v", i, av, bv)
		}
	}
	if err := a.Validate(p.Groups); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if issues := a.Lint(p.Groups); len(issues) != 0 {
		t.Fatalf("generated trace lints: %v", issues)
	}
}

func TestGenerateClosesEveryOutage(t *testing.T) {
	tr, err := Generate(GenParams{Groups: 8, MTBF: 300, MTTR: 5000, Horizon: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fails, repairs := 0, 0
	for _, e := range tr.Events {
		switch e.Kind {
		case Fail:
			fails++
		case Repair:
			repairs++
		}
	}
	if fails == 0 || fails != repairs {
		t.Fatalf("want paired fail/repair, got %d fails %d repairs", fails, repairs)
	}
	// With every outage closed, no down window may extend to the horizon
	// probe when it ends before the last repair.
	win := tr.DownWindows(8, math.MaxInt64)
	for g, ws := range win {
		for _, w := range ws {
			if w[1] == math.MaxInt64 {
				t.Fatalf("group %d has an unclosed outage", g)
			}
		}
	}
}

func TestGenerateParamErrors(t *testing.T) {
	cases := []struct {
		p    GenParams
		want error
	}{
		{GenParams{Groups: 0, MTBF: 1, Horizon: 1}, ErrNonPositiveGroups},
		{GenParams{Groups: 1, MTBF: 0, Horizon: 1}, ErrNonPositiveMTBF},
		{GenParams{Groups: 1, MTBF: -3, Horizon: 1}, ErrNonPositiveMTBF},
		{GenParams{Groups: 1, MTBF: 1, MTTR: -1, Horizon: 1}, ErrNegativeMTTR},
		{GenParams{Groups: 1, MTBF: 1, Horizon: 0}, ErrNonPositiveSpan},
	}
	for _, c := range cases {
		if _, err := Generate(c.p); !errors.Is(err, c.want) {
			t.Errorf("Generate(%+v) = %v, want %v", c.p, err, c.want)
		}
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := (RetryPolicy{}).Validate(); err != nil {
		t.Fatalf("zero policy should validate: %v", err)
	}
	cases := []struct {
		p    RetryPolicy
		want error
	}{
		{RetryPolicy{Mode: 9}, ErrUnknownRetryMode},
		{RetryPolicy{Restart: 9}, ErrUnknownRestart},
		{RetryPolicy{MaxRetries: -1}, ErrNegativeRetries},
		{RetryPolicy{Backoff: -5}, ErrNegativeBackoff},
	}
	for _, c := range cases {
		if err := c.p.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate(%+v) = %v, want %v", c.p, err, c.want)
		}
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	in := `
# failure of two groups, staggered repair
100 fail 0,3
250 repair 3
400 repair 0
400 fail 7
`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("want 4 events, got %d", len(tr.Events))
	}
	if g := tr.Events[0].Groups; len(g) != 2 || g[0] != 0 || g[1] != 3 {
		t.Fatalf("bad groups: %v", g)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), len(tr.Events))
	}
	for i := range back.Events {
		a, b := tr.Events[i], back.Events[i]
		if a.Time != b.Time || a.Kind != b.Kind || len(a.Groups) != len(b.Groups) {
			t.Fatalf("event %d differs after round trip: %+v vs %+v", i, a, b)
		}
	}
}

// TestWriteParseRoundTripProperty is the round-trip property over sampled
// traces: for many parameter corners, Write followed by Parse must
// reproduce every event exactly.
func TestWriteParseRoundTripProperty(t *testing.T) {
	cases := []GenParams{
		{Groups: 1, MTBF: 200, MTTR: 50, Horizon: 10000, Seed: 1},
		{Groups: 4, MTBF: 1000, MTTR: 0, Horizon: 50000, Seed: 2}, // MTTR 0: instant repairs
		{Groups: 10, MTBF: 5000, MTTR: 800, Horizon: 100000, Seed: 3},
		{Groups: 32, MTBF: 300, MTTR: 9000, Horizon: 20000, Seed: 4}, // repairs dominate
		{Groups: 10, MTBF: 1e9, MTTR: 1, Horizon: 1000, Seed: 5},     // likely empty
	}
	for _, p := range cases {
		tr, err := Generate(p)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", p, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write(%+v): %v", p, err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse(%+v): %v\n%s", p, err, buf.String())
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("params %+v: round trip lost events: %d vs %d", p, len(back.Events), len(tr.Events))
		}
		for i := range back.Events {
			a, b := tr.Events[i], back.Events[i]
			if a.Time != b.Time || a.Kind != b.Kind {
				t.Fatalf("params %+v: event %d differs: %+v vs %+v", p, i, a, b)
			}
			if len(a.Groups) != len(b.Groups) {
				t.Fatalf("params %+v: event %d group count differs: %v vs %v", p, i, a.Groups, b.Groups)
			}
			for gi := range a.Groups {
				if a.Groups[gi] != b.Groups[gi] {
					t.Fatalf("params %+v: event %d groups differ: %v vs %v", p, i, a.Groups, b.Groups)
				}
			}
		}
	}
}

// TestRoundTripEdgeCases pins the written format on the trace shapes that
// stress the parser: a zero-length outage (repair at the failure instant)
// and back-to-back outages on the same group.
func TestRoundTripEdgeCases(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 100, Kind: Fail, Groups: []int{2}},
		{Time: 100, Kind: Repair, Groups: []int{2}}, // zero-length repair
		{Time: 100, Kind: Fail, Groups: []int{2}},   // back-to-back on the same group
		{Time: 150, Kind: Repair, Groups: []int{2}},
	}}
	if err := tr.Validate(4); err != nil {
		t.Fatalf("edge trace invalid before round trip: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(back.Events) != 4 {
		t.Fatalf("want 4 events, got %d", len(back.Events))
	}
	for i := range back.Events {
		a, b := tr.Events[i], back.Events[i]
		if a.Time != b.Time || a.Kind != b.Kind || a.Groups[0] != b.Groups[0] {
			t.Fatalf("event %d differs after round trip: %+v vs %+v", i, a, b)
		}
	}
	// The zero-length outage and the immediate re-failure collapse into
	// one continuous down window ending at the final repair.
	win := back.DownWindows(4, 1000)
	if len(win[2]) != 1 || win[2][0] != [2]int64{100, 150} {
		t.Fatalf("group 2 windows = %v", win[2])
	}
}

func TestParseCheckpointPolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want CheckpointPolicy
	}{
		{"", CheckpointNone},
		{"none", CheckpointNone},
		{"periodic", CheckpointPeriodic},
		{"on-resize", CheckpointOnResize},
		{"daly", CheckpointDaly},
	} {
		got, err := ParseCheckpointPolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseCheckpointPolicy(%q) = (%v, %v), want %v", c.in, got, err, c.want)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("String() = %q, want %q", got.String(), c.in)
		}
	}
	if _, err := ParseCheckpointPolicy("hourly"); !errors.Is(err, ErrUnknownCheckpointPolicy) {
		t.Errorf("ParseCheckpointPolicy(hourly) = %v, want ErrUnknownCheckpointPolicy", err)
	}
}

func TestDalyInterval(t *testing.T) {
	// sqrt(2 * 20000 * 120) = sqrt(4.8e6) = 2190.89... floored.
	if got := DalyInterval(20000, 120); got != 2190 {
		t.Errorf("DalyInterval(20000, 120) = %d, want 2190", got)
	}
	if got := DalyInterval(0.001, 1); got != 1 {
		t.Errorf("tiny MTBF must clamp to 1, got %d", got)
	}
}

func TestValidateCheckpoint(t *testing.T) {
	cases := []struct {
		name   string
		policy CheckpointPolicy
		ivl, c int64
		mtbf   float64
		want   error
	}{
		{"none ok", CheckpointNone, 0, 0, 0, nil},
		{"periodic ok", CheckpointPeriodic, 600, 30, 0, nil},
		{"on-resize ok", CheckpointOnResize, 0, 30, 0, nil},
		{"daly ok", CheckpointDaly, 0, 30, 40000, nil},
		{"unknown policy", CheckpointPolicy(9), 0, 0, 0, ErrUnknownCheckpointPolicy},
		{"negative cost", CheckpointPeriodic, 600, -1, 0, ErrNegativeCheckpointCost},
		{"periodic zero interval", CheckpointPeriodic, 0, 30, 0, ErrNonPositiveInterval},
		{"periodic negative interval", CheckpointPeriodic, -5, 30, 0, ErrNonPositiveInterval},
		{"interval without periodic", CheckpointNone, 600, 0, 0, ErrIntervalWithoutPeriodic},
		{"interval with daly", CheckpointDaly, 600, 30, 40000, ErrIntervalWithoutPeriodic},
		{"daly zero cost", CheckpointDaly, 0, 0, 40000, ErrDalyNeedsCost},
		{"daly no mtbf", CheckpointDaly, 0, 30, 0, ErrDalyNeedsMTBF},
		{"daly NaN mtbf", CheckpointDaly, 0, 30, math.NaN(), ErrDalyNeedsMTBF},
	}
	for _, c := range cases {
		err := ValidateCheckpoint(c.policy, c.ivl, c.c, c.mtbf)
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: ValidateCheckpoint = %v, want nil", c.name, err)
			}
		} else if !errors.Is(err, c.want) {
			t.Errorf("%s: ValidateCheckpoint = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"abc fail 0",
		"10 explode 0",
		"10 fail x",
		"10 fail",
		"10 fail 0 extra junk",
		"-5 fail 0",
		"10 fail -1",
		"100 fail 0\n50 repair 0", // time went backwards
	}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); !errors.Is(err, ErrMalformedTrace) {
			t.Errorf("Parse(%q) = %v, want ErrMalformedTrace", s, err)
		}
	}
}

func TestValidateBounds(t *testing.T) {
	tr := &Trace{Events: []Event{{Time: 5, Kind: Fail, Groups: []int{10}}}}
	if err := tr.Validate(10); !errors.Is(err, ErrGroupOutOfRange) {
		t.Fatalf("want ErrGroupOutOfRange, got %v", err)
	}
	tr = &Trace{Events: []Event{{Time: 5, Kind: Fail, Groups: nil}}}
	if err := tr.Validate(10); !errors.Is(err, ErrMalformedTrace) {
		t.Fatalf("want ErrMalformedTrace for empty groups, got %v", err)
	}
}

func TestLintFindsInversions(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 10, Kind: Repair, Groups: []int{2}},
		{Time: 20, Kind: Fail, Groups: []int{2}},
		{Time: 30, Kind: Fail, Groups: []int{2}},
	}}
	issues := tr.Lint(4)
	if len(issues) != 2 {
		t.Fatalf("want 2 lint issues, got %v", issues)
	}
	if !strings.Contains(issues[0], "no preceding failure") {
		t.Errorf("issue 0 = %q", issues[0])
	}
	if !strings.Contains(issues[1], "already down") {
		t.Errorf("issue 1 = %q", issues[1])
	}
}

func TestDownWindows(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Time: 10, Kind: Fail, Groups: []int{0, 1}},
		{Time: 30, Kind: Repair, Groups: []int{0}},
		{Time: 50, Kind: Fail, Groups: []int{0}},
	}}
	win := tr.DownWindows(2, 100)
	if len(win[0]) != 2 || win[0][0] != [2]int64{10, 30} || win[0][1] != [2]int64{50, 100} {
		t.Fatalf("group 0 windows = %v", win[0])
	}
	if len(win[1]) != 1 || win[1][0] != [2]int64{10, 100} {
		t.Fatalf("group 1 windows = %v", win[1])
	}
}
