package metrics

import (
	"math"
	"testing"

	"elastisched/internal/job"
)

func finished(id, size int, arr, start, end int64, class job.Class, reqStart int64) *job.Job {
	return &job.Job{
		ID: id, Size: size, Arrival: arr, StartTime: start, FinishTime: end,
		EndTime: end, Class: class, ReqStart: reqStart, State: job.Finished,
	}
}

func TestUtilizationExact(t *testing.T) {
	// 320-proc machine; one 160-proc job runs 0..100 within a window
	// ending at its completion: utilization = 160*100 / (320*100) = 0.5.
	c := NewCollector(320)
	j := finished(1, 160, 0, 0, 100, job.Batch, -1)
	c.JobArrived(j, 0)
	c.JobStarted(j, 0)
	c.JobFinished(j, 100)
	s := c.Summary()
	if s.Utilization != 0.5 {
		t.Errorf("utilization = %g, want 0.5", s.Utilization)
	}
	if s.MeanWait != 0 || s.MeanRun != 100 || s.Slowdown != 1 {
		t.Errorf("wait/run/slowdown = %g/%g/%g", s.MeanWait, s.MeanRun, s.Slowdown)
	}
}

func TestUtilizationTwoPhases(t *testing.T) {
	// Full machine 0..50, half machine 50..100: mean utilization 0.75.
	c := NewCollector(320)
	j1 := finished(1, 160, 0, 0, 100, job.Batch, -1)
	j2 := finished(2, 160, 0, 0, 50, job.Batch, -1)
	c.JobArrived(j1, 0)
	c.JobArrived(j2, 0)
	c.JobStarted(j1, 0)
	c.JobStarted(j2, 0)
	c.JobFinished(j2, 50)
	c.JobFinished(j1, 100)
	if s := c.Summary(); s.Utilization != 0.75 {
		t.Errorf("utilization = %g, want 0.75", s.Utilization)
	}
}

func TestWindowOpensAtFirstArrival(t *testing.T) {
	// Arrival at 100, runs 150..250: window 100..250, area 160*100.
	c := NewCollector(320)
	j := finished(1, 160, 100, 150, 250, job.Batch, -1)
	c.JobArrived(j, 100)
	c.JobStarted(j, 150)
	c.JobFinished(j, 250)
	s := c.Summary()
	want := float64(160*100) / float64(320*150)
	if math.Abs(s.Utilization-want) > 1e-12 {
		t.Errorf("utilization = %g, want %g", s.Utilization, want)
	}
	if s.MeanWait != 50 {
		t.Errorf("wait = %g, want 50", s.MeanWait)
	}
	if s.WindowStart != 100 || s.WindowEnd != 250 {
		t.Errorf("window = [%d, %d]", s.WindowStart, s.WindowEnd)
	}
}

func TestSlowdownPaperDefinition(t *testing.T) {
	// Two jobs: waits 30, 10; runs 100, 100. Slowdown = (20+100)/100 = 1.2.
	c := NewCollector(320)
	j1 := finished(1, 32, 0, 30, 130, job.Batch, -1)
	j2 := finished(2, 32, 0, 10, 110, job.Batch, -1)
	for _, j := range []*job.Job{j1, j2} {
		c.JobArrived(j, j.Arrival)
		c.JobStarted(j, j.StartTime)
		c.JobFinished(j, j.FinishTime)
	}
	if s := c.Summary(); math.Abs(s.Slowdown-1.2) > 1e-12 {
		t.Errorf("slowdown = %g, want 1.2", s.Slowdown)
	}
}

func TestDedicatedAccounting(t *testing.T) {
	c := NewCollector(320)
	onTime := finished(1, 32, 0, 100, 200, job.Dedicated, 100)
	late := finished(2, 32, 0, 150, 250, job.Dedicated, 100)
	batch := finished(3, 32, 0, 10, 110, job.Batch, -1)
	for _, j := range []*job.Job{onTime, late, batch} {
		c.JobArrived(j, j.Arrival)
		c.JobStarted(j, j.StartTime)
		c.JobFinished(j, j.FinishTime)
	}
	s := c.Summary()
	if s.DedicatedJobs != 2 || s.DedicatedOnTime != 0.5 {
		t.Errorf("dedicated = %d ontime = %g", s.DedicatedJobs, s.DedicatedOnTime)
	}
	if s.MeanDedWait != 25 { // (0 + 50) / 2
		t.Errorf("dedicated wait = %g, want 25", s.MeanDedWait)
	}
	if s.MeanBatchWait != 10 {
		t.Errorf("batch wait = %g, want 10", s.MeanBatchWait)
	}
}

func TestOverAllocationPanics(t *testing.T) {
	c := NewCollector(320)
	j := finished(1, 320, 0, 0, 10, job.Batch, -1)
	c.JobArrived(j, 0)
	c.JobStarted(j, 0)
	defer func() {
		if recover() == nil {
			t.Error("busy beyond machine did not panic")
		}
	}()
	c.JobStarted(finished(2, 32, 0, 0, 10, job.Batch, -1), 0)
}

func TestNegativeBusyPanics(t *testing.T) {
	c := NewCollector(320)
	defer func() {
		if recover() == nil {
			t.Error("negative busy did not panic")
		}
	}()
	c.JobFinished(finished(1, 32, 0, 0, 10, job.Batch, -1), 10)
}

func TestSizeChanged(t *testing.T) {
	// 160 procs 0..50, then grown to 320 for 50..100: util = (160*50 +
	// 320*50) / (320*100) = 0.75.
	c := NewCollector(320)
	j := finished(1, 160, 0, 0, 100, job.Batch, -1)
	c.JobArrived(j, 0)
	c.JobStarted(j, 0)
	c.SizeChanged(160, 50)
	j.Size = 320
	c.JobFinished(j, 100)
	if s := c.Summary(); s.Utilization != 0.75 {
		t.Errorf("utilization = %g, want 0.75", s.Utilization)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(320)
	for i := 1; i <= 100; i++ {
		j := finished(i, 32, 0, int64(i), int64(i)+10, job.Batch, -1)
		c.JobArrived(j, 0)
		c.JobStarted(j, j.StartTime)
		c.JobFinished(j, j.FinishTime)
	}
	s := c.Summary()
	if s.MaxWait != 100 {
		t.Errorf("max wait = %g, want 100", s.MaxWait)
	}
	if s.MedianWait < 45 || s.MedianWait > 55 {
		t.Errorf("median = %g", s.MedianWait)
	}
	if s.P95Wait < 90 || s.P95Wait > 100 {
		t.Errorf("p95 = %g", s.P95Wait)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewCollector(320).Summary()
	if s.Utilization != 0 || s.MeanWait != 0 || s.Slowdown != 0 || s.Jobs != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	if (Summary{}).String() == "" {
		t.Error("empty summary string")
	}
}

func TestAverage(t *testing.T) {
	a := Summary{Utilization: 0.8, MeanWait: 100, MeanRun: 50, Slowdown: 3}
	b := Summary{Utilization: 0.6, MeanWait: 200, MeanRun: 150, Slowdown: 5}
	avg := Average([]Summary{a, b})
	if avg.Utilization != 0.7 || avg.MeanWait != 150 || avg.MeanRun != 100 || avg.Slowdown != 4 {
		t.Errorf("average wrong: %+v", avg)
	}
	if got := Average(nil); got != (Summary{}) {
		t.Error("average of nothing not zero")
	}
}

func TestBoundedSlowdownFloor(t *testing.T) {
	// A 1-second job with 9s wait: bounded slowdown uses the 10s floor:
	// (9 + 10)/10 = 1.9, not (9+1)/1 = 10.
	c := NewCollector(320)
	j := finished(1, 32, 0, 9, 10, job.Batch, -1)
	c.JobArrived(j, 0)
	c.JobStarted(j, 9)
	c.JobFinished(j, 10)
	if s := c.Summary(); math.Abs(s.MeanBoundedSlow-1.9) > 1e-12 {
		t.Errorf("bounded slowdown = %g, want 1.9", s.MeanBoundedSlow)
	}
}

func TestSteadyStateWindow(t *testing.T) {
	// 20 identical full-machine jobs back to back: steady-state utilization
	// is exactly 1; ramp effects do not exist, so overall == steady.
	c := NewCollector(320)
	for i := 0; i < 20; i++ {
		s := int64(i * 100)
		j := finished(i+1, 320, 0, s, s+100, job.Batch, -1)
		c.JobArrived(j, 0)
		c.JobStarted(j, s)
		c.JobFinished(j, s+100)
	}
	s := c.Summary()
	if s.SteadyUtilization != 1 {
		t.Errorf("steady utilization = %g, want 1", s.SteadyUtilization)
	}
	if s.SteadyWindow[0] >= s.SteadyWindow[1] {
		t.Errorf("degenerate steady window %v", s.SteadyWindow)
	}
}

func TestSteadyStateExcludesDrain(t *testing.T) {
	// 18 full-machine jobs, then a long lone half-machine job: the drain
	// tail depresses overall utilization but not the steady window.
	c := NewCollector(320)
	var tEnd int64
	for i := 0; i < 18; i++ {
		s := int64(i * 100)
		j := finished(i+1, 320, 0, s, s+100, job.Batch, -1)
		c.JobArrived(j, 0)
		c.JobStarted(j, s)
		c.JobFinished(j, s+100)
		tEnd = s + 100
	}
	for i := 18; i < 20; i++ {
		j := finished(i+1, 160, 0, tEnd, tEnd+2000, job.Batch, -1)
		c.JobArrived(j, 0)
		c.JobStarted(j, tEnd)
		c.JobFinished(j, tEnd+2000)
		tEnd += 2000
	}
	s := c.Summary()
	if s.SteadyUtilization <= s.Utilization {
		t.Errorf("steady %g should exceed overall %g with a drain tail",
			s.SteadyUtilization, s.Utilization)
	}
}

func TestSteadyStateTooFewJobs(t *testing.T) {
	c := NewCollector(320)
	j := finished(1, 320, 0, 0, 100, job.Batch, -1)
	c.JobArrived(j, 0)
	c.JobStarted(j, 0)
	c.JobFinished(j, 100)
	s := c.Summary()
	if s.SteadyUtilization != 0 {
		t.Errorf("steady stats should be zero below 10 jobs, got %g", s.SteadyUtilization)
	}
}

func TestWindowUtilization(t *testing.T) {
	c := NewCollector(320)
	j := finished(1, 160, 0, 0, 100, job.Batch, -1)
	c.JobArrived(j, 0)
	c.JobStarted(j, 0)
	c.JobFinished(j, 100)
	if got := c.WindowUtilization(0, 100); got != 0.5 {
		t.Errorf("window util = %g, want 0.5", got)
	}
	if got := c.WindowUtilization(50, 150); got != 0.25 {
		t.Errorf("half-overlap window util = %g, want 0.25", got)
	}
	if got := c.WindowUtilization(100, 100); got != 0 {
		t.Errorf("empty window util = %g, want 0", got)
	}
}

func TestMaxQueueDepth(t *testing.T) {
	c := NewCollector(320)
	j1 := finished(1, 32, 0, 10, 20, job.Batch, -1)
	j2 := finished(2, 32, 0, 15, 25, job.Batch, -1)
	j3 := finished(3, 32, 5, 30, 40, job.Batch, -1)
	// Three arrive before any starts: depth peaks at 3.
	c.JobArrived(j1, 0)
	c.JobArrived(j2, 0)
	c.JobArrived(j3, 5)
	c.JobStarted(j1, 10)
	c.JobStarted(j2, 15)
	c.JobFinished(j1, 20)
	c.JobFinished(j2, 25)
	c.JobStarted(j3, 30)
	c.JobFinished(j3, 40)
	if s := c.Summary(); s.MaxQueueDepth != 3 {
		t.Errorf("max queue depth = %d, want 3", s.MaxQueueDepth)
	}
}
