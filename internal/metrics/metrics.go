// Package metrics collects the performance measures the paper reports:
// mean system utilization (time-integrated busy fraction), mean job waiting
// time, and slowdown defined as (avg wait + avg runtime)/avg runtime
// (Section V). It also records richer diagnostics — per-class waits,
// percentiles, per-job bounded slowdown, dedicated on-time rate — used by
// the extended benches.
package metrics

import (
	"cmp"
	"fmt"
	"math"

	"elastisched/internal/job"
)

// Collector accumulates events during one simulation run.
type Collector struct {
	m int

	busy     int
	lastT    int64
	area     float64
	haveT0   bool
	t0, tEnd int64

	// waits is kept as a full series: the summary reports order statistics
	// (median, p95, max) that need every sample. The remaining per-job
	// measures only ever feed arithmetic means, so they accumulate as
	// streaming sums — same accumulation order as the old per-job slices,
	// so the float results are bit-identical.
	waits []float64
	// retainSlow makes JobFinished keep the per-job bounded-slowdown
	// samples next to the streaming sum, so ExportSamples can hand out
	// complete per-job vectors (the sharded merge needs them for exact
	// global order statistics). Off by default: it costs one float64 per
	// job that single-run paths never read.
	retainSlow  bool
	slows       []float64
	runSum      float64
	slowSum     float64
	batchSum    float64
	batchCount  int
	dedSum      float64
	dedOnTime   int
	dedTotal    int
	jobsStarted int
	jobsDone    int
	queued      int
	maxQueued   int

	// Fault accounting: jobs killed by node-group failures, how they were
	// dispatched afterwards, the processor-seconds of work the kills
	// destroyed, and the integral of out-of-service capacity.
	killed    int
	retried   int
	dropped   int
	lostWork  float64
	downProcs int
	downArea  float64

	// Checkpoint accounting: checkpoints taken by running jobs and the
	// total cost charged for them (the engine's lost-work decomposition:
	// what kills destroy shrinks to work-since-checkpoint, what
	// checkpointing costs shows up here).
	checkpoints  int
	ckptOverhead float64

	// Malleability accounting: system-initiated resizes applied, the
	// processor-seconds of planned capacity ceded by shrinks, and the total
	// reconfiguration overhead charged to resized jobs.
	schedResizes   int
	shrunkProcSecs float64
	reconfigSecs   float64

	// busySteps records the busy-count step function (one entry per change)
	// so steady-state windows can be evaluated after the fact.
	busySteps []busyStep
	// perJob records (arrival, finish, wait) per completed job for windowed
	// wait statistics.
	perJob []jobPoint
}

type busyStep struct {
	t    int64
	busy int
}

type jobPoint struct {
	arrival, finish int64
	wait            float64
}

// NewCollector returns a collector for a machine of m processors.
func NewCollector(m int) *Collector {
	return &Collector{m: m}
}

// NewCollectorSized returns a collector presized for a run of n jobs, so the
// per-job series and the busy step function grow without reallocation.
func NewCollectorSized(m, n int) *Collector {
	return &Collector{
		m:         m,
		waits:     make([]float64, 0, n),
		perJob:    make([]jobPoint, 0, n),
		busySteps: make([]busyStep, 0, 2*n),
	}
}

// RetainSamples makes the collector keep the per-job bounded-slowdown
// series so ExportSamples can return complete per-job vectors. It must be
// enabled before the first completion; engine sessions arm it at Load and
// Restore when the configuration asks for sample export.
func (c *Collector) RetainSamples() { c.retainSlow = true }

// integrate advances the busy-area and down-capacity integrals to time t.
func (c *Collector) integrate(t int64) {
	if t > c.lastT {
		dt := float64(t - c.lastT)
		c.area += float64(c.busy) * dt
		if c.downProcs > 0 {
			c.downArea += float64(c.downProcs) * dt
		}
		c.lastT = t
	}
}

// noteBusy appends to the busy step function (coalescing same-instant
// changes).
func (c *Collector) noteBusy(t int64) {
	if n := len(c.busySteps); n > 0 && c.busySteps[n-1].t == t {
		c.busySteps[n-1].busy = c.busy
		return
	}
	c.busySteps = append(c.busySteps, busyStep{t, c.busy})
}

// JobArrived opens the measurement window at the first arrival and tracks
// the waiting-queue depth.
func (c *Collector) JobArrived(j *job.Job, t int64) {
	if !c.haveT0 || t < c.t0 {
		if !c.haveT0 {
			c.lastT = t
		}
		c.t0 = t
		c.haveT0 = true
	}
	c.queued++
	if c.queued > c.maxQueued {
		c.maxQueued = c.queued
	}
}

// JobWithdrawn reverses a JobArrived for a job leaving the waiting queue
// without starting — the sharded dispatcher's steal path, where the job
// re-arrives (and re-counts) on the receiving cluster's collector. Only the
// queue depth moves: the measurement window stays open, and the job's wait
// is accounted where it eventually starts.
func (c *Collector) JobWithdrawn() {
	c.queued--
}

// JobStarted accounts for a dispatch at time t.
func (c *Collector) JobStarted(j *job.Job, t int64) {
	c.integrate(t)
	c.busy += j.Size
	c.jobsStarted++
	c.queued--
	if c.busy > c.m {
		panic(fmt.Sprintf("metrics: busy %d exceeds machine %d at t=%d", c.busy, c.m, t))
	}
	c.noteBusy(t)
}

// JobFinished accounts for a completion at time t.
func (c *Collector) JobFinished(j *job.Job, t int64) {
	c.integrate(t)
	c.busy -= j.Size
	if c.busy < 0 {
		panic(fmt.Sprintf("metrics: negative busy %d at t=%d", c.busy, t))
	}
	c.noteBusy(t)
	c.jobsDone++
	if t > c.tEnd {
		c.tEnd = t
	}

	w := float64(j.Wait())
	c.perJob = append(c.perJob, jobPoint{arrival: j.Arrival, finish: t, wait: w})
	r := float64(j.RunTime())
	c.waits = append(c.waits, w)
	c.runSum += r
	// Per-job bounded slowdown with the conventional 10s floor.
	den := math.Max(r, 10)
	c.slowSum += (w + math.Max(r, 10)) / den
	if c.retainSlow {
		c.slows = append(c.slows, (w+math.Max(r, 10))/den)
	}
	if j.Class == job.Dedicated {
		c.dedTotal++
		c.dedSum += w
		if j.Wait() == 0 {
			c.dedOnTime++
		}
	} else {
		c.batchSum += w
		c.batchCount++
	}
}

// JobKilled accounts for a running job killed by a node-group failure at
// time t: its processors free up, the work completed since lostFrom is
// lost, and it either re-enters the waiting queue later (requeued — a
// fresh JobArrived will fire at its resubmission) or leaves the system.
// Without checkpointing lostFrom is the job's start time (everything is
// lost); under a checkpoint policy the engine passes the last checkpoint
// instant for requeued kills, so LostWorkSeconds decomposes exactly into
// work-since-checkpoint.
func (c *Collector) JobKilled(j *job.Job, t int64, requeued bool, lostFrom int64) {
	c.integrate(t)
	c.busy -= j.Size
	if c.busy < 0 {
		panic(fmt.Sprintf("metrics: negative busy %d after kill at t=%d", c.busy, t))
	}
	c.noteBusy(t)
	c.killed++
	if lost := t - lostFrom; lost > 0 {
		c.lostWork += float64(lost) * float64(j.Size)
	}
	if requeued {
		c.retried++
	} else {
		c.dropped++
	}
}

// CheckpointTaken counts one checkpoint and the cost charged to the job's
// remaining runtime for taking it (zero-cost checkpoints still count). The
// overhead accumulates in processor-seconds — cost x size, since all of
// the job's processors stay occupied for the extra time — so it is
// directly comparable against LostWorkSeconds in the cost trade.
func (c *Collector) CheckpointTaken(cost int64, size int) {
	c.checkpoints++
	c.ckptOverhead += float64(cost) * float64(size)
}

// CapacityChanged records the out-of-service processor count after a
// failure or repair at time t, feeding the down-capacity integral.
func (c *Collector) CapacityChanged(downProcs int, t int64) {
	c.integrate(t)
	c.downProcs = downProcs
}

// SizeChanged accounts for an EP/RP resize of a running job at time t.
func (c *Collector) SizeChanged(delta int, t int64) {
	c.integrate(t)
	c.busy += delta
	if c.busy < 0 || c.busy > c.m {
		panic(fmt.Sprintf("metrics: busy %d out of range after resize at t=%d", c.busy, t))
	}
	c.noteBusy(t)
}

// SchedulerResized counts one applied system-initiated resize (a scheduler
// proposal or a fault-path shrink).
func (c *Collector) SchedulerResized() { c.schedResizes++ }

// ProcsShrunk adds the processor-seconds of planned capacity a shrink ceded
// (the size reduction times the remaining estimated runtime at the shrink).
func (c *Collector) ProcsShrunk(procSeconds float64) { c.shrunkProcSecs += procSeconds }

// ResizeOverheadApplied adds the reconfiguration cost charged to one
// work-conserving resize.
func (c *Collector) ResizeOverheadApplied(seconds int64) { c.reconfigSecs += float64(seconds) }

// BusyStep is one exported entry of the busy-count step function.
type BusyStep struct {
	T    int64 `json:"t"`
	Busy int   `json:"busy"`
}

// JobPoint is one exported per-job record (arrival, finish, wait).
type JobPoint struct {
	Arrival int64   `json:"arrival"`
	Finish  int64   `json:"finish"`
	Wait    float64 `json:"wait"`
}

// Samples are the per-job sample vectors of one run, exported for exact
// cross-run aggregation: the sharded merge concatenates per-cluster waits
// (quickselect gives the exact global median/p95), k-way-merges the
// completion instants in PerJob (global steady-state window), and
// integrates BusySteps over that window (global steady utilization). All
// vectors are in completion order — the collector's accumulation order —
// so PerJob finish times are non-decreasing. Memory cost: O(jobs) floats
// per vector plus O(events) busy steps, which is why the export sits
// behind a flag (engine Config.ExportSamples).
type Samples struct {
	// Waits holds one waiting-time sample per completed job.
	Waits []float64 `json:"waits,omitempty"`
	// BoundedSlow holds the per-job bounded slowdowns ((wait+run)/run with
	// the conventional 10s floor); empty unless RetainSamples was armed.
	BoundedSlow []float64 `json:"bounded_slow,omitempty"`
	// PerJob holds (arrival, finish, wait) per completed job.
	PerJob []JobPoint `json:"per_job,omitempty"`
	// BusySteps is the busy-processor step function (one entry per change).
	BusySteps []BusyStep `json:"busy_steps,omitempty"`
}

// ExportSamples returns the collector's per-job sample vectors. Waits and
// BoundedSlow alias live collector state (treat them as read-only); PerJob
// and BusySteps are copies (the internal representations are unexported).
// Summary never reorders the aliased slices, so the export stays valid
// across further accounting and a final Summary call.
func (c *Collector) ExportSamples() *Samples {
	s := &Samples{
		Waits:       c.waits,
		BoundedSlow: c.slows,
		PerJob:      make([]JobPoint, len(c.perJob)),
		BusySteps:   make([]BusyStep, len(c.busySteps)),
	}
	for i, p := range c.perJob {
		s.PerJob[i] = JobPoint{Arrival: p.arrival, Finish: p.finish, Wait: p.wait}
	}
	for i, b := range c.busySteps {
		s.BusySteps[i] = BusyStep{T: b.t, Busy: b.busy}
	}
	return s
}

// WindowArea integrates an exported busy step function over [t0, t1]: the
// busy processor-seconds inside the window. It is the exported-samples
// counterpart of WindowUtilization (same clipping rules), used by the
// sharded merge to evaluate global steady-state utilization from
// per-cluster sample exports.
func WindowArea(steps []BusyStep, t0, t1 int64) float64 {
	if t1 <= t0 || len(steps) == 0 {
		return 0
	}
	var area float64
	for i, st := range steps {
		segStart := st.T
		segEnd := t1
		if i+1 < len(steps) && steps[i+1].T < segEnd {
			segEnd = steps[i+1].T
		}
		if segStart < t0 {
			segStart = t0
		}
		if segEnd > segStart {
			area += float64(st.Busy) * float64(segEnd-segStart)
		}
		if i+1 < len(steps) && steps[i+1].T >= t1 {
			break
		}
	}
	return area
}

// KthSmallest returns the k-th smallest element (0-based) of xs,
// reordering xs in place — the exported quickselect the sharded merge
// applies to concatenated per-cluster samples. See kth for the contract.
func KthSmallest(xs []float64, k int) float64 { return kth(xs, k) }

// Snapshot is the collector's complete accumulator state, sufficient to
// resume metering mid-run. The per-job series keep their accumulation
// order, so a restored collector's Summary is bit-identical to the
// uninterrupted run's (float sums depend on order).
type Snapshot struct {
	M           int        `json:"m"`
	Busy        int        `json:"busy"`
	LastT       int64      `json:"last_t"`
	Area        float64    `json:"area"`
	HaveT0      bool       `json:"have_t0"`
	T0          int64      `json:"t0"`
	TEnd        int64      `json:"t_end"`
	Waits       []float64  `json:"waits,omitempty"`
	Slows       []float64  `json:"slows,omitempty"`
	RunSum      float64    `json:"run_sum"`
	SlowSum     float64    `json:"slow_sum"`
	BatchSum    float64    `json:"batch_sum"`
	BatchCount  int        `json:"batch_count"`
	DedSum      float64    `json:"ded_sum"`
	DedOnTime   int        `json:"ded_on_time"`
	DedTotal    int        `json:"ded_total"`
	JobsStarted int        `json:"jobs_started"`
	JobsDone    int        `json:"jobs_done"`
	Queued      int        `json:"queued"`
	MaxQueued   int        `json:"max_queued"`
	Killed      int        `json:"killed,omitempty"`
	Retried     int        `json:"retried,omitempty"`
	Dropped     int        `json:"dropped,omitempty"`
	LostWork    float64    `json:"lost_work,omitempty"`
	DownProcs   int        `json:"down_procs,omitempty"`
	DownArea    float64    `json:"down_area,omitempty"`
	Checkpoints int        `json:"checkpoints,omitempty"`
	CkptCost    float64    `json:"ckpt_cost,omitempty"`
	BusySteps   []BusyStep `json:"busy_steps,omitempty"`
	PerJob      []JobPoint `json:"per_job,omitempty"`

	SchedResizes   int     `json:"sched_resizes,omitempty"`
	ShrunkProcSecs float64 `json:"shrunk_proc_secs,omitempty"`
	ReconfigSecs   float64 `json:"reconfig_secs,omitempty"`
}

// Snapshot captures the collector state for NewCollectorFromSnapshot.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		M: c.m, Busy: c.busy, LastT: c.lastT, Area: c.area,
		HaveT0: c.haveT0, T0: c.t0, TEnd: c.tEnd,
		Waits:  append([]float64(nil), c.waits...),
		Slows:  append([]float64(nil), c.slows...),
		RunSum: c.runSum, SlowSum: c.slowSum, BatchSum: c.batchSum, BatchCount: c.batchCount,
		DedSum: c.dedSum, DedOnTime: c.dedOnTime, DedTotal: c.dedTotal,
		JobsStarted: c.jobsStarted, JobsDone: c.jobsDone,
		Queued: c.queued, MaxQueued: c.maxQueued,
		Killed: c.killed, Retried: c.retried, Dropped: c.dropped,
		LostWork: c.lostWork, DownProcs: c.downProcs, DownArea: c.downArea,
		Checkpoints: c.checkpoints, CkptCost: c.ckptOverhead,
		SchedResizes: c.schedResizes, ShrunkProcSecs: c.shrunkProcSecs,
		ReconfigSecs: c.reconfigSecs,
	}
	for _, b := range c.busySteps {
		s.BusySteps = append(s.BusySteps, BusyStep{T: b.t, Busy: b.busy})
	}
	for _, p := range c.perJob {
		s.PerJob = append(s.PerJob, JobPoint{Arrival: p.arrival, Finish: p.finish, Wait: p.wait})
	}
	return s
}

// NewCollectorFromSnapshot reconstructs a collector mid-run.
func NewCollectorFromSnapshot(s Snapshot) *Collector {
	c := &Collector{
		m: s.M, busy: s.Busy, lastT: s.LastT, area: s.Area,
		haveT0: s.HaveT0, t0: s.T0, tEnd: s.TEnd,
		waits:  append([]float64(nil), s.Waits...),
		slows:  append([]float64(nil), s.Slows...),
		runSum: s.RunSum, slowSum: s.SlowSum, batchSum: s.BatchSum, batchCount: s.BatchCount,
		dedSum: s.DedSum, dedOnTime: s.DedOnTime, dedTotal: s.DedTotal,
		jobsStarted: s.JobsStarted, jobsDone: s.JobsDone,
		queued: s.Queued, maxQueued: s.MaxQueued,
		killed: s.Killed, retried: s.Retried, dropped: s.Dropped,
		lostWork: s.LostWork, downProcs: s.DownProcs, downArea: s.DownArea,
		checkpoints: s.Checkpoints, ckptOverhead: s.CkptCost,
		schedResizes: s.SchedResizes, shrunkProcSecs: s.ShrunkProcSecs,
		reconfigSecs: s.ReconfigSecs,
	}
	for _, b := range s.BusySteps {
		c.busySteps = append(c.busySteps, busyStep{t: b.T, busy: b.Busy})
	}
	for _, p := range s.PerJob {
		c.perJob = append(c.perJob, jobPoint{arrival: p.Arrival, finish: p.Finish, wait: p.Wait})
	}
	return c
}

// Summary is the digest of one run.
type Summary struct {
	Jobs        int
	MachineSize int
	// Window is the measurement span: first arrival to last completion.
	WindowStart, WindowEnd int64

	// Utilization is the paper's mean utilization: busy processor-seconds
	// over M * window.
	Utilization float64
	// MeanWait and MeanRun are in seconds.
	MeanWait float64
	MeanRun  float64
	// Slowdown is the paper's aggregate definition:
	// (avg wait + avg runtime) / avg runtime.
	Slowdown float64

	// SteadyUtilization and SteadyMeanWait evaluate the same measures over
	// the steady-state window only — between the 10th-percentile and
	// 90th-percentile job completion instants — removing the machine-
	// filling ramp-up and the final drain, which otherwise depress
	// utilization identically for every scheduler. SteadyMeanWait covers
	// jobs that *arrived* within the window.
	SteadyUtilization float64
	SteadyMeanWait    float64
	SteadyWindow      [2]int64

	// MaxQueueDepth is the largest number of jobs simultaneously waiting.
	MaxQueueDepth int

	// Diagnostics beyond the paper's headline metrics.
	MedianWait      float64
	P95Wait         float64
	MaxWait         float64
	MeanBoundedSlow float64
	MeanBatchWait   float64
	MeanDedWait     float64
	DedicatedOnTime float64 // fraction started exactly at the requested time
	DedicatedJobs   int
	JobsStarted     int
	JobsFinished    int

	// Fault-injection accounting (all zero when no fault model is
	// configured). KilledJobs counts kills (a job killed twice counts
	// twice); RetriedJobs of those kills were requeued, DroppedJobs left
	// the system. LostWorkSeconds is the processor-seconds of completed
	// work the kills destroyed; DownProcSeconds integrates out-of-service
	// capacity over the measurement window.
	KilledJobs      int
	RetriedJobs     int
	DroppedJobs     int
	LostWorkSeconds float64
	DownProcSeconds float64

	// Checkpoint accounting (all zero when the checkpoint policy is none).
	// CheckpointsTaken counts checkpoints across all running jobs;
	// CheckpointOverheadSeconds is the total cost charged for them, in
	// processor-seconds (cost x job size per checkpoint). Under a
	// checkpoint policy LostWorkSeconds shrinks to work-since-checkpoint
	// for requeued kills, so lost work and checkpoint overhead together
	// decompose exactly what the fault pipeline cost the machine, in the
	// same processor-second currency.
	CheckpointsTaken          int
	CheckpointOverheadSeconds float64

	// Malleability accounting (all zero when Malleable mode is off).
	// SchedulerResizes counts applied system-initiated resizes (scheduler
	// proposals and fault-path shrinks); ShrunkProcSeconds is the planned
	// capacity ceded by shrinks (size reduction × remaining estimate);
	// ReconfigOverheadSeconds totals the per-resize reconfiguration cost
	// charged to resized jobs.
	SchedulerResizes        int
	ShrunkProcSeconds       float64
	ReconfigOverheadSeconds float64
}

// Summary finalizes the run. It must be called after the last completion.
func (c *Collector) Summary() Summary {
	s := Summary{
		Jobs:          c.jobsDone,
		MachineSize:   c.m,
		WindowStart:   c.t0,
		WindowEnd:     c.tEnd,
		JobsStarted:   c.jobsStarted,
		JobsFinished:  c.jobsDone,
		DedicatedJobs: c.dedTotal,

		KilledJobs:      c.killed,
		RetriedJobs:     c.retried,
		DroppedJobs:     c.dropped,
		LostWorkSeconds: c.lostWork,

		CheckpointsTaken:          c.checkpoints,
		CheckpointOverheadSeconds: c.ckptOverhead,

		SchedulerResizes:        c.schedResizes,
		ShrunkProcSeconds:       c.shrunkProcSecs,
		ReconfigOverheadSeconds: c.reconfigSecs,
	}
	c.integrate(c.tEnd)
	s.DownProcSeconds = c.downArea
	span := float64(c.tEnd - c.t0)
	if span > 0 {
		s.Utilization = c.area / (span * float64(c.m))
	}
	s.MeanWait = mean(c.waits)
	if c.jobsDone > 0 {
		s.MeanRun = c.runSum / float64(c.jobsDone)
		s.MeanBoundedSlow = c.slowSum / float64(c.jobsDone)
	}
	if s.MeanRun > 0 {
		s.Slowdown = (s.MeanWait + s.MeanRun) / s.MeanRun
	}
	if n := len(c.waits); n > 0 {
		// Exact order statistics via selection: identical values to sorting
		// the copy and indexing, at O(n) instead of O(n log n) per statistic.
		ys := append([]float64(nil), c.waits...)
		s.MedianWait = kth(ys, int(0.5*float64(n-1)))
		s.P95Wait = kth(ys, int(0.95*float64(n-1)))
		mx := c.waits[0]
		for _, v := range c.waits[1:] {
			if v > mx {
				mx = v
			}
		}
		s.MaxWait = mx
	}
	if c.batchCount > 0 {
		s.MeanBatchWait = c.batchSum / float64(c.batchCount)
	}
	if c.dedTotal > 0 {
		s.MeanDedWait = c.dedSum / float64(c.dedTotal)
	}
	if c.dedTotal > 0 {
		s.DedicatedOnTime = float64(c.dedOnTime) / float64(c.dedTotal)
	}
	s.SteadyWindow, s.SteadyUtilization, s.SteadyMeanWait = c.steadyState()
	s.MaxQueueDepth = c.maxQueued
	return s
}

// kth returns the k-th smallest element (0-based) of xs, reordering xs in
// place — the exact value a full sort would put at index k, computed by
// Hoare-partition quickselect with median-of-three pivots in expected O(n).
// Values must be totally ordered (the collector never records NaN waits).
func kth[T cmp.Ordered](xs []T, k int) T {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		p := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return xs[k]
		}
	}
	return xs[k]
}

// steadyState computes utilization and mean wait over the central window
// between the 10th- and 90th-percentile completion instants.
func (c *Collector) steadyState() (window [2]int64, util, wait float64) {
	n := len(c.perJob)
	if n < 10 {
		return [2]int64{c.t0, c.tEnd}, 0, 0
	}
	finishes := make([]int64, n)
	for i, p := range c.perJob {
		finishes[i] = p.finish
	}
	t0 := kth(finishes, n/10)
	t1 := kth(finishes, n-1-n/10)
	if t1 <= t0 {
		return [2]int64{t0, t1}, 0, 0
	}
	util = c.WindowUtilization(t0, t1)
	var sum float64
	var cnt int
	for _, p := range c.perJob {
		if p.arrival >= t0 && p.arrival <= t1 {
			sum += p.wait
			cnt++
		}
	}
	if cnt > 0 {
		wait = sum / float64(cnt)
	}
	return [2]int64{t0, t1}, util, wait
}

// WindowUtilization integrates the recorded busy curve over [t0, t1].
func (c *Collector) WindowUtilization(t0, t1 int64) float64 {
	if t1 <= t0 || len(c.busySteps) == 0 {
		return 0
	}
	var area float64
	for i, st := range c.busySteps {
		segStart := st.t
		segEnd := t1
		if i+1 < len(c.busySteps) && c.busySteps[i+1].t < segEnd {
			segEnd = c.busySteps[i+1].t
		}
		if segStart < t0 {
			segStart = t0
		}
		if segEnd > segStart {
			area += float64(st.busy) * float64(segEnd-segStart)
		}
		if i+1 < len(c.busySteps) && c.busySteps[i+1].t >= t1 {
			break
		}
	}
	return area / (float64(t1-t0) * float64(c.m))
}

// String renders the headline metrics.
func (s Summary) String() string {
	return fmt.Sprintf("util=%.4f wait=%.1fs run=%.1fs slowdown=%.3f jobs=%d",
		s.Utilization, s.MeanWait, s.MeanRun, s.Slowdown, s.Jobs)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Average combines summaries from repeated seeds into their arithmetic
// mean, the way each plotted point aggregates runs.
func Average(sums []Summary) Summary {
	if len(sums) == 0 {
		return Summary{}
	}
	out := sums[0]
	n := float64(len(sums))
	acc := func(get func(*Summary) *float64) {
		var t float64
		for i := range sums {
			t += *get(&sums[i])
		}
		*get(&out) = t / n
	}
	acc(func(s *Summary) *float64 { return &s.Utilization })
	acc(func(s *Summary) *float64 { return &s.MeanWait })
	acc(func(s *Summary) *float64 { return &s.MeanRun })
	acc(func(s *Summary) *float64 { return &s.Slowdown })
	acc(func(s *Summary) *float64 { return &s.MedianWait })
	acc(func(s *Summary) *float64 { return &s.P95Wait })
	acc(func(s *Summary) *float64 { return &s.MaxWait })
	acc(func(s *Summary) *float64 { return &s.MeanBoundedSlow })
	acc(func(s *Summary) *float64 { return &s.MeanBatchWait })
	acc(func(s *Summary) *float64 { return &s.MeanDedWait })
	acc(func(s *Summary) *float64 { return &s.DedicatedOnTime })
	acc(func(s *Summary) *float64 { return &s.SteadyUtilization })
	acc(func(s *Summary) *float64 { return &s.SteadyMeanWait })
	acc(func(s *Summary) *float64 { return &s.LostWorkSeconds })
	acc(func(s *Summary) *float64 { return &s.DownProcSeconds })
	acc(func(s *Summary) *float64 { return &s.CheckpointOverheadSeconds })
	acc(func(s *Summary) *float64 { return &s.ShrunkProcSeconds })
	acc(func(s *Summary) *float64 { return &s.ReconfigOverheadSeconds })
	return out
}
