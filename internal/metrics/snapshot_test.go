package metrics

import (
	"reflect"
	"testing"

	"elastisched/internal/job"
)

// TestSnapshotRoundTripBitIdenticalSummary checks the core restore
// property at the metrics layer: snapshot mid-run, restore into a fresh
// collector, continue both with identical events, and the final Summary
// must be deep-equal — including float fields, whose values depend on
// accumulation order.
func TestSnapshotRoundTripBitIdenticalSummary(t *testing.T) {
	mkJob := func(id, size int, arr, start, fin int64) *job.Job {
		return &job.Job{ID: id, Size: size, Arrival: arr, StartTime: start, FinishTime: fin,
			EndTime: fin, Class: job.Batch, ReqStart: -1}
	}
	j1 := mkJob(1, 64, 0, 0, 137)
	j2 := mkJob(2, 96, 3, 10, 1913)
	j3 := mkJob(3, 32, 5, 137, 200)
	j4 := mkJob(4, 128, 9, 200, 5431)
	j5 := mkJob(5, 32, 11, 1913, 1999)
	j6 := mkJob(6, 64, 20, 2000, 2100)
	j6.Class = job.Dedicated
	j6.ReqStart = 1990

	// One chronological, capacity-feasible history (machine of 320).
	script := []func(c *Collector){
		func(c *Collector) { c.JobArrived(j1, 0) },
		func(c *Collector) { c.JobStarted(j1, 0) },
		func(c *Collector) { c.JobArrived(j2, 3) },
		func(c *Collector) { c.JobArrived(j3, 5) },
		func(c *Collector) { c.JobArrived(j4, 9) },
		func(c *Collector) { c.JobStarted(j2, 10) },
		func(c *Collector) { c.JobArrived(j5, 11) },
		func(c *Collector) { c.JobArrived(j6, 20) },
		func(c *Collector) { c.SizeChanged(+32, 50) }, // EP then RP, net zero
		func(c *Collector) { c.SizeChanged(-32, 60) },
		func(c *Collector) { c.JobFinished(j1, 137) },
		func(c *Collector) { c.JobStarted(j3, 137) },
		// ---- snapshot is taken here (index snapAt) ----
		func(c *Collector) { c.JobFinished(j3, 200) },
		func(c *Collector) { c.JobStarted(j4, 200) },
		func(c *Collector) { c.JobFinished(j2, 1913) },
		func(c *Collector) { c.JobStarted(j5, 1913) },
		func(c *Collector) { c.JobFinished(j5, 1999) },
		func(c *Collector) { c.JobStarted(j6, 2000) },
		func(c *Collector) { c.JobFinished(j6, 2100) },
		func(c *Collector) { c.JobFinished(j4, 5431) },
	}
	const snapAt = 12

	orig := NewCollectorSized(320, 6)
	for _, ev := range script[:snapAt] {
		ev(orig)
	}
	restored := NewCollectorFromSnapshot(orig.Snapshot())
	for _, ev := range script[snapAt:] {
		ev(orig)
		ev(restored)
	}

	a, b := orig.Summary(), restored.Summary()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("summaries diverged after round trip:\noriginal: %+v\nrestored: %+v", a, b)
	}
}

func TestSnapshotCopiesSeries(t *testing.T) {
	c := NewCollector(64)
	j := &job.Job{ID: 1, Size: 64, Arrival: 0, StartTime: 5, FinishTime: 10, EndTime: 10, ReqStart: -1}
	c.JobArrived(j, 0)
	c.JobStarted(j, 5)
	s := c.Snapshot()
	c.JobFinished(j, 10) // mutate after capture
	if len(s.Waits) != 0 || s.JobsDone != 0 {
		t.Errorf("snapshot shares state with the live collector: %+v", s)
	}
	if got := NewCollectorFromSnapshot(s); got.jobsDone != 0 || got.busy != 64 {
		t.Errorf("restored collector state wrong: done=%d busy=%d", got.jobsDone, got.busy)
	}
}
