package job

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func batchJob(id, size int, dur, arr int64) *Job {
	return &Job{ID: id, Size: size, Dur: dur, Arrival: arr, ReqStart: -1, Class: Batch}
}

func dedJob(id, size int, dur, arr, start int64) *Job {
	return &Job{ID: id, Size: size, Dur: dur, Arrival: arr, ReqStart: start, Class: Dedicated}
}

func TestWaitBatch(t *testing.T) {
	j := batchJob(1, 32, 100, 50)
	j.StartTime = 80
	if got := j.Wait(); got != 30 {
		t.Errorf("batch wait = %d, want 30", got)
	}
}

func TestWaitDedicatedFromRequestedStart(t *testing.T) {
	j := dedJob(1, 32, 100, 0, 500)
	j.StartTime = 650
	if got := j.Wait(); got != 150 {
		t.Errorf("dedicated wait = %d, want 150 (from requested start)", got)
	}
}

func TestWaitDedicatedOnTimeIsZero(t *testing.T) {
	j := dedJob(1, 32, 100, 0, 500)
	j.StartTime = 500
	if got := j.Wait(); got != 0 {
		t.Errorf("on-time dedicated wait = %d, want 0", got)
	}
}

func TestResidual(t *testing.T) {
	j := batchJob(1, 32, 100, 0)
	j.StartTime = 10
	j.EndTime = 110
	if got := j.Residual(60); got != 50 {
		t.Errorf("residual = %d, want 50", got)
	}
}

func TestRunTime(t *testing.T) {
	j := batchJob(1, 32, 100, 0)
	j.StartTime = 10
	j.FinishTime = 95
	if got := j.RunTime(); got != 85 {
		t.Errorf("runtime = %d, want 85", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		j    *Job
		ok   bool
	}{
		{"valid batch", batchJob(1, 32, 100, 0), true},
		{"valid dedicated", dedJob(1, 32, 100, 0, 10), true},
		{"zero size", batchJob(1, 0, 100, 0), false},
		{"oversize", batchJob(1, 400, 100, 0), false},
		{"zero duration", batchJob(1, 32, 0, 0), false},
		{"negative arrival", batchJob(1, 32, 100, -5), false},
		{"dedicated start before arrival", dedJob(1, 32, 100, 50, 10), false},
		{"full machine", batchJob(1, 320, 1, 0), true},
	}
	for _, c := range cases {
		err := c.j.Validate(320)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestClassAndStateStrings(t *testing.T) {
	if Batch.String() != "batch" || Dedicated.String() != "dedicated" {
		t.Error("class strings wrong")
	}
	if Waiting.String() != "waiting" || Running.String() != "running" || Finished.String() != "finished" {
		t.Error("state strings wrong")
	}
	if Class(9).String() == "" || State(9).String() == "" {
		t.Error("unknown class/state should render")
	}
}

func TestJobString(t *testing.T) {
	if s := batchJob(1, 32, 100, 0).String(); s == "" {
		t.Error("empty batch string")
	}
	if s := dedJob(2, 64, 10, 0, 99).String(); s == "" {
		t.Error("empty dedicated string")
	}
}

// --- BatchQueue -----------------------------------------------------------

func TestBatchQueueFIFO(t *testing.T) {
	q := NewBatchQueue()
	if !q.Empty() || q.Head() != nil {
		t.Fatal("new queue not empty")
	}
	a, b, c := batchJob(1, 32, 1, 0), batchJob(2, 32, 1, 5), batchJob(3, 32, 1, 9)
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if q.Len() != 3 || q.Head() != a || q.At(1) != b || q.At(2) != c {
		t.Fatal("FIFO order broken")
	}
}

func TestBatchQueuePushFront(t *testing.T) {
	q := NewBatchQueue()
	a, b := batchJob(1, 32, 1, 0), batchJob(2, 32, 1, 5)
	q.Push(a)
	q.PushFront(b)
	if q.Head() != b || q.At(1) != a {
		t.Fatal("PushFront did not put job at head")
	}
}

func TestBatchQueueRemoveKeepsOrder(t *testing.T) {
	q := NewBatchQueue()
	jobs := []*Job{batchJob(1, 32, 1, 0), batchJob(2, 32, 1, 1), batchJob(3, 32, 1, 2)}
	for _, j := range jobs {
		q.Push(j)
	}
	q.Remove(jobs[1])
	if q.Len() != 2 || q.Head() != jobs[0] || q.At(1) != jobs[2] {
		t.Fatal("Remove broke order")
	}
}

func TestBatchQueueRemoveAll(t *testing.T) {
	q := NewBatchQueue()
	jobs := []*Job{batchJob(1, 32, 1, 0), batchJob(2, 32, 1, 1), batchJob(3, 32, 1, 2)}
	for _, j := range jobs {
		q.Push(j)
	}
	q.RemoveAll([]*Job{jobs[0], jobs[2]})
	if q.Len() != 1 || q.Head() != jobs[1] {
		t.Fatal("RemoveAll broke queue")
	}
}

func TestBatchQueueRemoveUnknownPanics(t *testing.T) {
	q := NewBatchQueue()
	q.Push(batchJob(1, 32, 1, 0))
	defer func() {
		if recover() == nil {
			t.Error("Remove of unknown job did not panic")
		}
	}()
	q.Remove(batchJob(99, 32, 1, 0))
}

func TestBatchQueueFind(t *testing.T) {
	q := NewBatchQueue()
	j := batchJob(7, 32, 1, 0)
	q.Push(j)
	if q.Find(7) != j {
		t.Error("Find(7) missed")
	}
	if q.Find(8) != nil {
		t.Error("Find(8) should be nil")
	}
}

// --- DedicatedQueue --------------------------------------------------------

func TestDedicatedQueueSortedByStart(t *testing.T) {
	q := NewDedicatedQueue()
	a := dedJob(1, 32, 1, 0, 300)
	b := dedJob(2, 32, 1, 0, 100)
	c := dedJob(3, 32, 1, 0, 200)
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if q.Head() != b || q.Jobs()[1] != c || q.Jobs()[2] != a {
		t.Fatal("dedicated queue not sorted by requested start")
	}
}

func TestDedicatedQueueTieBreak(t *testing.T) {
	q := NewDedicatedQueue()
	a := dedJob(2, 32, 1, 10, 100)
	b := dedJob(1, 32, 1, 5, 100)
	q.Push(a)
	q.Push(b)
	if q.Head() != b {
		t.Fatal("equal starts should order by arrival")
	}
}

func TestDedicatedQueuePopHead(t *testing.T) {
	q := NewDedicatedQueue()
	if q.PopHead() != nil {
		t.Fatal("PopHead on empty should be nil")
	}
	a := dedJob(1, 32, 1, 0, 100)
	q.Push(a)
	if q.PopHead() != a || !q.Empty() {
		t.Fatal("PopHead broken")
	}
}

func TestDedicatedQueueRemove(t *testing.T) {
	q := NewDedicatedQueue()
	a := dedJob(1, 32, 1, 0, 100)
	b := dedJob(2, 32, 1, 0, 200)
	q.Push(a)
	q.Push(b)
	q.Remove(b)
	if q.Len() != 1 || q.Head() != a {
		t.Fatal("Remove broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("Remove of unknown dedicated job did not panic")
		}
	}()
	q.Remove(b)
}

func TestDedicatedQueueFind(t *testing.T) {
	q := NewDedicatedQueue()
	a := dedJob(4, 32, 1, 0, 100)
	q.Push(a)
	if q.Find(4) != a || q.Find(5) != nil {
		t.Error("Find broken")
	}
}

func TestTotalAtHeadStart(t *testing.T) {
	q := NewDedicatedQueue()
	if q.TotalAtHeadStart() != 0 {
		t.Fatal("empty queue total should be 0")
	}
	q.Push(dedJob(1, 64, 1, 0, 100))
	q.Push(dedJob(2, 32, 1, 0, 100))
	q.Push(dedJob(3, 96, 1, 0, 200)) // different start: excluded
	if got := q.TotalAtHeadStart(); got != 96 {
		t.Errorf("TotalAtHeadStart = %d, want 96", got)
	}
}

// --- ActiveList ------------------------------------------------------------

func runningJob(id, size int, end int64) *Job {
	j := batchJob(id, size, 1, 0)
	j.State = Running
	j.EndTime = end
	return j
}

func TestActiveListSortedByKillBy(t *testing.T) {
	a := NewActiveList()
	j1 := runningJob(1, 32, 300)
	j2 := runningJob(2, 32, 100)
	j3 := runningJob(3, 32, 200)
	a.Insert(j1)
	a.Insert(j2)
	a.Insert(j3)
	if a.At(0) != j2 || a.At(1) != j3 || a.At(2) != j1 {
		t.Fatal("active list not sorted by kill-by time")
	}
	if a.Last() != j1 {
		t.Fatal("Last wrong")
	}
}

func TestActiveListUsedProcessors(t *testing.T) {
	a := NewActiveList()
	a.Insert(runningJob(1, 64, 10))
	a.Insert(runningJob(2, 96, 20))
	if a.UsedProcessors() != 160 {
		t.Errorf("used = %d, want 160", a.UsedProcessors())
	}
}

func TestActiveListRemoveAndFind(t *testing.T) {
	a := NewActiveList()
	j := runningJob(5, 32, 10)
	a.Insert(j)
	if a.Find(5) != j || a.Find(6) != nil {
		t.Fatal("Find broken")
	}
	a.Remove(j)
	if !a.Empty() || a.Last() != nil {
		t.Fatal("Remove broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("Remove of unknown active job did not panic")
		}
	}()
	a.Remove(j)
}

func TestActiveListResortAfterRetime(t *testing.T) {
	a := NewActiveList()
	j1 := runningJob(1, 32, 100)
	j2 := runningJob(2, 32, 200)
	a.Insert(j1)
	a.Insert(j2)
	// An ET command pushes j1's kill-by past j2's.
	j1.EndTime = 300
	a.Resort()
	if a.At(0) != j2 || a.At(1) != j1 {
		t.Fatal("Resort did not reorder after EndTime mutation")
	}
}

// Property: the dedicated queue is sorted after any sequence of pushes.
func TestPropertyDedicatedSorted(t *testing.T) {
	f := func(starts []uint16) bool {
		q := NewDedicatedQueue()
		for i, s := range starts {
			q.Push(dedJob(i, 32, 1, 0, int64(s)))
		}
		jobs := q.Jobs()
		for i := 1; i < len(jobs); i++ {
			if jobs[i-1].ReqStart > jobs[i].ReqStart {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the active list stays sorted under random inserts, removals and
// retimes.
func TestPropertyActiveListSorted(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := NewActiveList()
	var live []*Job
	for op := 0; op < 2000; op++ {
		switch {
		case len(live) == 0 || r.Float64() < 0.5:
			j := runningJob(op, 32, int64(r.Intn(1000)))
			a.Insert(j)
			live = append(live, j)
		case r.Float64() < 0.5:
			i := r.Intn(len(live))
			a.Remove(live[i])
			live = append(live[:i], live[i+1:]...)
		default:
			i := r.Intn(len(live))
			live[i].EndTime = int64(r.Intn(1000))
			a.Resort()
		}
		jobs := a.Jobs()
		for i := 1; i < len(jobs); i++ {
			if jobs[i-1].EndTime > jobs[i].EndTime {
				t.Fatalf("op %d: active list unsorted", op)
			}
		}
	}
}

func TestEffectiveRuntime(t *testing.T) {
	cases := []struct {
		dur, actual, want int64
	}{
		{100, 0, 100},   // exact estimate convention
		{100, 60, 60},   // premature termination
		{100, 100, 100}, // exact
		{100, 150, 100}, // overrun: killed at kill-by
	}
	for _, c := range cases {
		j := &Job{Dur: c.dur, Actual: c.actual}
		if got := j.EffectiveRuntime(); got != c.want {
			t.Errorf("dur=%d actual=%d: effective=%d, want %d", c.dur, c.actual, got, c.want)
		}
	}
}

func TestOverran(t *testing.T) {
	if (&Job{Dur: 100, Actual: 150}).Overran() != true {
		t.Error("over-running job not detected")
	}
	if (&Job{Dur: 100, Actual: 60}).Overran() {
		t.Error("premature job flagged as overrun")
	}
	if (&Job{Dur: 100}).Overran() {
		t.Error("exact job flagged as overrun")
	}
}

func TestValidateNegativeActual(t *testing.T) {
	j := batchJob(1, 32, 100, 0)
	j.Actual = -5
	if err := j.Validate(320); err == nil {
		t.Error("negative actual runtime accepted")
	}
}
