// Package job defines the job model and the three scheduler-facing
// collections from the paper's Notations box: the FIFO batch waiting queue
// W^b, the start-time-sorted dedicated waiting list W^d, and the
// residual-sorted active list A. The collections enforce the paper's
// invariants (FIFO by arrival, sorted by requested start, sorted by residual
// execution time).
package job

import "fmt"

// Class distinguishes batch jobs (scheduled whenever the scheduler finds it
// best) from dedicated/interactive jobs (rigid user-requested start time).
type Class uint8

// Job classes.
const (
	Batch Class = iota
	Dedicated
)

// String returns "batch" or "dedicated".
func (c Class) String() string {
	switch c {
	case Batch:
		return "batch"
	case Dedicated:
		return "dedicated"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// State is the lifecycle state of a job.
type State uint8

// Job lifecycle states.
const (
	Waiting State = iota
	Running
	Finished
	// Dropped marks a job killed by a node-group failure and removed from
	// the system without completing: a dedicated victim (its rigid start
	// has passed), a victim under a Drop retry policy, or one whose retry
	// budget is exhausted.
	Dropped
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Running:
		return "running"
	case Finished:
		return "finished"
	case Dropped:
		return "dropped"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Job is a parallel job: the batch tuple (num, dur, arr, scount) or the
// dedicated tuple (num, dur, start) from the paper, plus runtime bookkeeping.
//
// Dur is the *current* user-estimated execution time; Elastic Control
// Commands mutate it (and, for a running job, the kill-by time EndTime).
type Job struct {
	ID    int
	Class Class

	Size    int   // num: processors required
	Dur     int64 // dur: current user-estimated execution time, seconds
	Arrival int64 // arr: submit time
	// Actual is the job's true execution time. Zero means "equals the
	// estimate" (the paper's synthetic workloads). When positive and below
	// Dur the job terminates prematurely; when above, it is killed at its
	// kill-by time — the two termination modes the paper's Section II-A
	// describes. Schedulers never read Actual: they plan with estimates.
	Actual int64
	// ReqStart is the user-requested start time for dedicated jobs; -1 for
	// batch jobs (CWF field 19).
	ReqStart int64

	// SCount is the skip count: the number of scheduling cycles in which this
	// job sat at the head of the batch queue but was not selected by
	// Basic_DP. Compared against the threshold C_s by Delayed-LOS.
	SCount int
	// LastSkip is the last simulated instant at which SCount was bumped.
	// The engine may re-invoke the scheduler several times within one
	// instant (its fixed-point loop); a head job is only charged one skip
	// per distinct instant. Initialized to -1 by the engine at arrival.
	LastSkip int64
	// Rigid marks a job entitled to the head of the batch queue: a
	// dedicated job moved by Move_Dedicated_Head_To_Batch_Head, or a
	// failure victim resubmitted at the head by the retry policy.
	Rigid bool
	// Retries counts how many times this job has been killed by a
	// node-group failure and requeued.
	Retries int

	// MinProcs and MaxProcs are the job's malleable processor bounds: the
	// scheduler (and the fault path) may resize a running malleable job to
	// any quantized allocation within [MinProcs, MaxProcs]. Both zero means
	// the job is rigid — the default, preserving prior behaviour: only
	// client EP/RP commands ever touch its size, and scheduler-initiated
	// resizing never considers it.
	MinProcs int
	MaxProcs int

	// CkptAt is the absolute time of this attempt's last checkpoint;
	// equals StartTime while none has been taken. Meaningful only while
	// Running under an engine checkpoint policy — a kill restarts the job
	// from here instead of from the Restart binary.
	CkptAt int64

	State     State
	StartTime int64 // actual dispatch time; meaningful once Running
	EndTime   int64 // kill-by time StartTime+Dur; meaningful once Running
	// FinishTime is when the job actually left the machine (equals EndTime
	// unless an RT command truncated it below the elapsed time).
	FinishTime int64
}

// Residual returns the remaining execution time at time now for a running
// job (res in the paper's active-list tuple). It is estimate-based: the
// scheduler's knowledge of the future is the kill-by time, not the actual
// termination instant.
func (j *Job) Residual(now int64) int64 {
	return j.EndTime - now
}

// EffectiveRuntime returns the time the job will actually occupy the
// machine once started: its actual runtime capped by the (current)
// estimate, since a job overrunning its kill-by time is killed.
func (j *Job) EffectiveRuntime() int64 {
	if j.Actual > 0 && j.Actual < j.Dur {
		return j.Actual
	}
	return j.Dur
}

// Malleable reports whether the job carries processor bounds that allow
// scheduler-initiated resizing.
func (j *Job) Malleable() bool { return j.MaxProcs > 0 }

// RescaleRemaining converts a remaining duration under oldSize processors
// into the equivalent duration under newSize processors, conserving the
// remaining work in processor-seconds: rem*oldSize proc-seconds spread over
// newSize processors, rounded up to whole seconds (so the rescaled job
// never finishes with work outstanding). Non-positive remainders pass
// through unchanged — there is no work left to conserve.
func RescaleRemaining(rem int64, oldSize, newSize int) int64 {
	if rem <= 0 || oldSize == newSize {
		return rem
	}
	work := rem * int64(oldSize)
	return (work + int64(newSize) - 1) / int64(newSize)
}

// Overran reports whether the job hit its kill-by time before finishing its
// actual work (killed due to under-estimation).
func (j *Job) Overran() bool {
	return j.Actual > 0 && j.Actual > j.Dur
}

// Wait returns the job's waiting time: start minus arrival for batch jobs,
// and start minus the requested start for dedicated jobs (a dedicated job
// started exactly on time has waited zero).
func (j *Job) Wait() int64 {
	if j.Class == Dedicated && j.ReqStart >= 0 {
		w := j.StartTime - j.ReqStart
		if w < 0 {
			w = 0
		}
		return w
	}
	return j.StartTime - j.Arrival
}

// RunTime returns the time the job actually occupied the machine.
func (j *Job) RunTime() int64 { return j.FinishTime - j.StartTime }

// String renders a compact description for logs and tests.
func (j *Job) String() string {
	if j.Class == Dedicated {
		return fmt.Sprintf("job{%d %s num=%d dur=%d start=%d}", j.ID, j.Class, j.Size, j.Dur, j.ReqStart)
	}
	return fmt.Sprintf("job{%d %s num=%d dur=%d arr=%d sc=%d}", j.ID, j.Class, j.Size, j.Dur, j.Arrival, j.SCount)
}

// Validate checks the paper's invariant constraints for a single job against
// machine size m (num <= M; dedicated start >= arrival; positive duration).
func (j *Job) Validate(m int) error {
	if j.Size <= 0 || j.Size > m {
		return fmt.Errorf("job %d: size %d out of range (machine %d)", j.ID, j.Size, m)
	}
	if j.Dur <= 0 {
		return fmt.Errorf("job %d: non-positive duration %d", j.ID, j.Dur)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("job %d: negative arrival %d", j.ID, j.Arrival)
	}
	if j.Class == Dedicated && j.ReqStart < j.Arrival {
		return fmt.Errorf("job %d: dedicated start %d before arrival %d", j.ID, j.ReqStart, j.Arrival)
	}
	if j.Actual < 0 {
		return fmt.Errorf("job %d: negative actual runtime %d", j.ID, j.Actual)
	}
	if j.MaxProcs > 0 {
		if j.Class == Dedicated {
			return fmt.Errorf("job %d: dedicated jobs cannot carry malleable bounds", j.ID)
		}
		if j.MinProcs < 1 || j.MinProcs > j.Size {
			return fmt.Errorf("job %d: min procs %d outside [1, size %d]", j.ID, j.MinProcs, j.Size)
		}
		if j.MaxProcs < j.Size || j.MaxProcs > m {
			return fmt.Errorf("job %d: max procs %d outside [size %d, machine %d]", j.ID, j.MaxProcs, j.Size, m)
		}
	} else if j.MinProcs != 0 {
		return fmt.Errorf("job %d: min procs %d without max procs", j.ID, j.MinProcs)
	}
	return nil
}
