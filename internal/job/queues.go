package job

import (
	"fmt"
	"sort"
)

// BatchQueue is W^b: the FIFO queue of waiting batch jobs, ordered by
// arrival time, except that Move_Dedicated_Head_To_Batch_Head may push a
// rigid (formerly dedicated) job to the front.
//
// The queue keeps its live jobs in jobs[head:]. Removing the head — the
// overwhelmingly common case, since backfilling starts the head whenever it
// fits — just advances head; Push reclaims the dead prefix when the backing
// array fills, so head removal is amortized O(1) with no pointer copying.
type BatchQueue struct {
	jobs []*Job
	head int
}

// NewBatchQueue returns an empty queue.
func NewBatchQueue() *BatchQueue { return &BatchQueue{} }

// Len returns the number of waiting batch jobs (B in the paper).
func (q *BatchQueue) Len() int { return len(q.jobs) - q.head }

// Empty reports whether the queue has no jobs.
func (q *BatchQueue) Empty() bool { return q.Len() == 0 }

// Head returns the first waiting job (w_1^b) or nil.
func (q *BatchQueue) Head() *Job {
	if q.Empty() {
		return nil
	}
	return q.jobs[q.head]
}

// At returns the i-th waiting job (0-based).
func (q *BatchQueue) At(i int) *Job { return q.jobs[q.head+i] }

// Jobs returns the backing slice in queue order. Callers must not reorder
// it; it is exposed so schedulers can scan the queue without copying. It is
// valid only until the next queue mutation.
func (q *BatchQueue) Jobs() []*Job { return q.jobs[q.head:] }

// Push appends an arriving job to the tail (FIFO on arrival).
func (q *BatchQueue) Push(j *Job) {
	if len(q.jobs) == cap(q.jobs) && q.head > 0 {
		// Reclaim the dead prefix instead of growing the array.
		n := copy(q.jobs, q.jobs[q.head:])
		for i := n; i < len(q.jobs); i++ {
			q.jobs[i] = nil
		}
		q.jobs = q.jobs[:n]
		q.head = 0
	}
	q.jobs = append(q.jobs, j)
}

// PushFront inserts a job at the head of the queue. Used by
// Move_Dedicated_Head_To_Batch_Head for due dedicated jobs.
func (q *BatchQueue) PushFront(j *Job) {
	if q.head > 0 {
		q.head--
		q.jobs[q.head] = j
		return
	}
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[1:], q.jobs)
	q.jobs[0] = j
}

// Remove deletes job j from the queue, preserving order. It panics if j is
// not queued: removing an unknown job is always a scheduler bug.
func (q *BatchQueue) Remove(j *Job) {
	for i := q.head; i < len(q.jobs); i++ {
		if q.jobs[i] == j {
			if i == q.head {
				q.jobs[i] = nil
				q.head++
				if q.head == len(q.jobs) {
					q.jobs = q.jobs[:0]
					q.head = 0
				}
				return
			}
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("job: remove of job %d not in batch queue", j.ID))
}

// RemoveAll deletes every job in set from the queue, preserving order.
func (q *BatchQueue) RemoveAll(set []*Job) {
	for _, j := range set {
		q.Remove(j)
	}
}

// Find returns the queued job with the given ID, or nil.
func (q *BatchQueue) Find(id int) *Job {
	for _, j := range q.Jobs() {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// DedicatedQueue is W^d: waiting dedicated jobs kept sorted by increasing
// requested start time (stable on ties, by arrival then ID).
type DedicatedQueue struct {
	jobs []*Job
}

// NewDedicatedQueue returns an empty list.
func NewDedicatedQueue() *DedicatedQueue { return &DedicatedQueue{} }

// Len returns D, the number of waiting dedicated jobs.
func (q *DedicatedQueue) Len() int { return len(q.jobs) }

// Empty reports whether the list has no jobs.
func (q *DedicatedQueue) Empty() bool { return len(q.jobs) == 0 }

// Head returns w_1^d, the dedicated job with the earliest requested start.
func (q *DedicatedQueue) Head() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// Jobs returns the backing slice in sorted order (read-only for callers).
func (q *DedicatedQueue) Jobs() []*Job { return q.jobs }

// Push inserts a job keeping the start-time order.
func (q *DedicatedQueue) Push(j *Job) {
	i := sort.Search(len(q.jobs), func(i int) bool {
		a := q.jobs[i]
		if a.ReqStart != j.ReqStart {
			return a.ReqStart > j.ReqStart
		}
		if a.Arrival != j.Arrival {
			return a.Arrival > j.Arrival
		}
		return a.ID > j.ID
	})
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
}

// PopHead removes and returns the earliest dedicated job, or nil.
func (q *DedicatedQueue) PopHead() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j
}

// Remove deletes job j; panics if absent.
func (q *DedicatedQueue) Remove(j *Job) {
	for i, x := range q.jobs {
		if x == j {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("job: remove of job %d not in dedicated queue", j.ID))
}

// Find returns the waiting dedicated job with the given ID, or nil.
func (q *DedicatedQueue) Find(id int) *Job {
	for _, j := range q.jobs {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// TotalAtHeadStart returns tot_start_num: the summed size of every waiting
// dedicated job whose requested start equals the head's requested start
// (Algorithm 2, line 16).
func (q *DedicatedQueue) TotalAtHeadStart() int {
	if len(q.jobs) == 0 {
		return 0
	}
	start := q.jobs[0].ReqStart
	total := 0
	for _, j := range q.jobs {
		if j.ReqStart != start {
			break
		}
		total += j.Size
	}
	return total
}

// ActiveList is A: running jobs sorted by increasing kill-by time, which at
// any instant is the same as increasing residual execution time (the
// paper's ordering). Elastic Control Commands can change a running job's
// kill-by time, after which Resort must be called.
//
// Live jobs occupy jobs[head:]. Jobs normally finish at their kill-by time
// — the front of the order — so the common removal just advances head;
// Insert reclaims the dead prefix when the backing array fills.
type ActiveList struct {
	jobs []*Job
	head int
}

// NewActiveList returns an empty list.
func NewActiveList() *ActiveList { return &ActiveList{} }

// Len returns the number of running jobs.
func (a *ActiveList) Len() int { return len(a.jobs) - a.head }

// Empty reports whether no jobs are running.
func (a *ActiveList) Empty() bool { return a.Len() == 0 }

// Jobs returns running jobs ordered by increasing kill-by time. The slice
// is valid only until the next list mutation.
func (a *ActiveList) Jobs() []*Job { return a.jobs[a.head:] }

// At returns the i-th running job (0-based; a_{i+1} in the paper).
func (a *ActiveList) At(i int) *Job { return a.jobs[a.head+i] }

// Last returns a_A, the running job with the largest residual, or nil.
func (a *ActiveList) Last() *Job {
	if a.Empty() {
		return nil
	}
	return a.jobs[len(a.jobs)-1]
}

// UsedProcessors returns the total processors held by running jobs.
func (a *ActiveList) UsedProcessors() int {
	n := 0
	for _, j := range a.Jobs() {
		n += j.Size
	}
	return n
}

// Insert adds a running job keeping kill-by order.
func (a *ActiveList) Insert(j *Job) {
	if len(a.jobs) == cap(a.jobs) && a.head > 0 {
		n := copy(a.jobs, a.jobs[a.head:])
		for i := n; i < len(a.jobs); i++ {
			a.jobs[i] = nil
		}
		a.jobs = a.jobs[:n]
		a.head = 0
	}
	live := a.jobs[a.head:]
	i := sort.Search(len(live), func(i int) bool {
		x := live[i]
		if x.EndTime != j.EndTime {
			return x.EndTime > j.EndTime
		}
		return x.ID > j.ID
	})
	a.jobs = append(a.jobs, nil)
	copy(a.jobs[a.head+i+1:], a.jobs[a.head+i:])
	a.jobs[a.head+i] = j
}

// Remove deletes a finished job; panics if absent.
func (a *ActiveList) Remove(j *Job) {
	for i := a.head; i < len(a.jobs); i++ {
		if a.jobs[i] == j {
			if i == a.head {
				a.jobs[i] = nil
				a.head++
				if a.head == len(a.jobs) {
					a.jobs = a.jobs[:0]
					a.head = 0
				}
				return
			}
			a.jobs = append(a.jobs[:i], a.jobs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("job: remove of job %d not in active list", j.ID))
}

// Find returns the running job with the given ID, or nil.
func (a *ActiveList) Find(id int) *Job {
	for _, j := range a.Jobs() {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// Resort restores kill-by order after an ECC mutated a running job's
// EndTime.
func (a *ActiveList) Resort() {
	live := a.jobs[a.head:]
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].EndTime != live[j].EndTime {
			return live[i].EndTime < live[j].EndTime
		}
		return live[i].ID < live[j].ID
	})
}
