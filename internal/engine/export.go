package engine

import (
	"errors"
	"fmt"

	"elastisched/internal/job"
)

// This file is the engine half of the sharded dispatcher's epoch protocol:
// read-only queue exports for barrier digests, Withdraw/AbsorbAt to move a
// queued job between sessions, and ArmFaults for sessions fed by Inject
// instead of Load. Everything here operates at instant boundaries only —
// the dispatcher calls between RunUntil rounds, never mid-instant.

// Typed errors of the withdraw/absorb pair, testable with errors.Is.
var (
	// ErrNotStealable rejects withdrawing a job that is not a waiting,
	// non-rigid batch job sitting in this session's queue.
	ErrNotStealable = errors.New("engine: withdraw needs a waiting batch job owned by this session")
	// ErrFaultsArmed rejects arming a session whose fault trace is already
	// resolved (a second ArmFaults, or ArmFaults after Load).
	ErrFaultsArmed = errors.New("engine: fault trace already armed")
)

// WaitingBatch returns the batch queue's jobs in queue order. The slice
// aliases the live queue: it is valid only until the session next runs or
// mutates the queue, and callers must not modify it.
func (s *Session) WaitingBatch() []*job.Job { return s.batch.Jobs() }

// ActiveJobs returns the running jobs in residual (kill-by) order, under
// the same aliasing contract as WaitingBatch.
func (s *Session) ActiveJobs() []*job.Job { return s.active.Jobs() }

// FreeProcs returns the machine's free in-service processors.
func (s *Session) FreeProcs() int { return s.mach.Free() }

// Withdraw removes a waiting batch job from this session, reversing its
// admission: the job leaves the queue, the collector's queue depth, the
// session's ownership set, and the policy is told the queue changed. The
// caller owns the returned state (typically to AbsorbAt it into another
// session). Rigid jobs — failure victims entitled to the queue head — and
// jobs that are running, dedicated, or foreign are refused.
func (s *Session) Withdraw(j *job.Job) error {
	if s.failed != nil {
		return s.failed
	}
	if j.Class != job.Batch || j.Rigid || j.State != job.Waiting || s.batch.Find(j.ID) != j {
		return fmt.Errorf("%w (job %d)", ErrNotStealable, j.ID)
	}
	s.batch.Remove(j)
	s.collector.JobWithdrawn()
	if s.st != nil {
		s.st.QueueChanged()
	}
	for i, owned := range s.jobs {
		if owned == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	if s.ids != nil {
		delete(s.ids, j.ID)
	}
	delete(s.absorbed, j.ID)
	return nil
}

// AbsorbAt admits a job withdrawn from another session, scheduling its
// (re-)arrival at instant at — the epoch barrier. The job keeps its
// original Arrival, so its wait accounting spans clusters; only the queue
// position follows the admission instant (see the paranoid FIFO exemption).
// The job is cloned; the caller's struct is not retained.
func (s *Session) AbsorbAt(j *job.Job, at int64) error {
	if s.failed != nil {
		return s.failed
	}
	if j.Class != job.Batch {
		return fmt.Errorf("engine: absorb non-batch job %d", j.ID)
	}
	if at < s.eng.Now() {
		return fmt.Errorf("engine: absorb job %d at %d before now %d", j.ID, at, s.eng.Now())
	}
	if j.Size > s.cfg.M {
		return fmt.Errorf("engine: absorb job %d of size %d exceeding machine %d", j.ID, j.Size, s.cfg.M)
	}
	if s.ids == nil {
		s.ids = make(map[int]bool, len(s.jobs)+1)
		for _, ex := range s.jobs {
			s.ids[ex.ID] = true
		}
	}
	if s.ids[j.ID] {
		return fmt.Errorf("engine: absorb duplicate job ID %d", j.ID)
	}
	clone := new(job.Job)
	*clone = *j
	q, err := s.mach.Quantize(clone.Size)
	if err != nil {
		return fmt.Errorf("engine: job %d: %v", clone.ID, err)
	}
	clone.Size = q
	s.quantizeBounds(clone)
	s.ensureCompletionCapacity(clone.ID)
	s.jobs = append(s.jobs, clone)
	s.ids[clone.ID] = true
	if s.absorbed == nil {
		s.absorbed = make(map[int]bool)
	}
	s.absorbed[clone.ID] = true
	s.eng.AtArg(at, s.arriveH, clone)
	return nil
}

// ArmFaults resolves and schedules the session's fault trace for a session
// that is fed by Inject instead of Load (the epoch dispatcher's path; Load
// arms its own). horizon bounds the sampled trace exactly as Load's
// workload span would; it is ignored for scripted traces and when
// Config.Faults carries its own Horizon. Must be called before any event
// has been dispatched, and at most once.
func (s *Session) ArmFaults(horizon int64) error {
	if s.cfg.Faults == nil {
		return nil
	}
	if s.ftrace != nil {
		return ErrFaultsArmed
	}
	if s.eng.Dispatched() > 0 {
		return errors.New("engine: ArmFaults after events were dispatched")
	}
	return s.loadFaults(horizon)
}
