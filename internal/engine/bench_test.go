package engine

import (
	"testing"

	"elastisched/internal/fault"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

// BenchmarkSimulate500 measures end-to-end simulation throughput of one
// paper-sized run (500 jobs, Load 0.9) per scheduling policy.
func BenchmarkSimulate500(b *testing.B) {
	p := workload.DefaultParams()
	p.N = 500
	p.PS = 0.5
	p.PE = 0.2
	p.PR = 0.1
	p.TargetLoad = 0.9
	batch, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	p.PD = 0.3
	hetero, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"FCFS", "EASY", "CONS", "CONS-D", "LOS", "Delayed-LOS", "EASY-D", "LOS-D", "Hybrid-LOS"} {
		b.Run(name, func(b *testing.B) {
			w := batch
			if freshScheduler(name).Heterogeneous() {
				w = hetero
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := Run(w, Config{
					M: 320, Unit: 32, Scheduler: freshScheduler(name), ProcessECC: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.Events), "events")
					b.ReportMetric(float64(r.Cycles), "cycles")
				}
			}
		})
	}
}

// BenchmarkSimulate500Malleable measures the same paper-sized run with the
// malleability pipeline engaged: every batch job carries bounds, the
// AutoResize decorator proposes shrinks/expands each cycle, and resizes are
// work-conserving with a reconfiguration overhead. Compare against
// BenchmarkSimulate500/EASY to read the cost of true malleability; the
// rigid series itself runs with Malleable off and is gated by benchgate.
func BenchmarkSimulate500Malleable(b *testing.B) {
	p := workload.DefaultParams()
	p.N = 500
	p.PS = 0.5
	p.PE = 0.2
	p.PR = 0.1
	p.TargetLoad = 0.9
	p.PM = 1.0
	w, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("EASY-M", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := Run(w, Config{
				M: 320, Unit: 32, Scheduler: sched.NewAutoResize(&sched.EASY{}),
				ProcessECC: true, Malleable: true, ResizeOverhead: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(r.Events), "events")
				b.ReportMetric(float64(r.Summary.SchedulerResizes), "resizes")
			}
		}
	})
}

// BenchmarkSimulate500Faults measures the paper-sized run with the fault
// pipeline engaged end to end: sampled node-group outages, requeue with
// backoff, and periodic checkpointing with its restart-from-checkpoint
// kill path. Compare against BenchmarkSimulate500/EASY to read the cost
// of fault injection; the EASY cell is required by benchgate so the fault
// hot path cannot silently regress.
func BenchmarkSimulate500Faults(b *testing.B) {
	p := workload.DefaultParams()
	p.N = 500
	p.PS = 0.5
	p.PE = 0.2
	p.PR = 0.1
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"EASY", "Delayed-LOS"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := Run(w, Config{
					M: 320, Unit: 32, Scheduler: freshScheduler(name), ProcessECC: true,
					Faults: &FaultConfig{
						MTBF: 40000, MTTR: 2000, Seed: 7,
						Retry:      fault.RetryPolicy{Restart: fault.RemainingRuntime, Backoff: 30},
						Checkpoint: fault.CheckpointPeriodic, CheckpointInterval: 1800, CheckpointCost: 60,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.Events), "events")
					b.ReportMetric(float64(r.Summary.KilledJobs), "kills")
					b.ReportMetric(float64(r.Summary.CheckpointsTaken), "ckpts")
				}
			}
		})
	}
}

// BenchmarkWorkloadGenerate measures the Lublin-model generator.
func BenchmarkWorkloadGenerate(b *testing.B) {
	p := workload.DefaultParams()
	p.N = 500
	p.PD = 0.3
	p.PE = 0.2
	p.PR = 0.1
	p.TargetLoad = 0.9
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		if _, err := workload.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}
