package engine

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"elastisched/internal/fault"
	"elastisched/internal/job"
	"elastisched/internal/sched"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// ftrace builds a scripted trace from (time, kind, group) triples.
func ftrace(evs ...fault.Event) *fault.Trace {
	return &fault.Trace{Events: evs}
}

func fail(t int64, groups ...int) fault.Event {
	return fault.Event{Time: t, Kind: fault.Fail, Groups: groups}
}

func repair(t int64, groups ...int) fault.Event {
	return fault.Event{Time: t, Kind: fault.Repair, Groups: groups}
}

func TestFailureKillsAndRequeuesAtHead(t *testing.T) {
	// A full-machine job is killed at t=50; the failed group heals at t=60.
	// Under the default policy (requeue, full restart) the job restarts at
	// 60 — at the head of the queue, ahead of a job that arrived earlier
	// than its resubmission.
	w := wl(batch(1, 320, 100, 0), batch(2, 320, 10, 5))
	rec := trace.NewRecorder(320, 32)
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{}, Observer: rec,
		Faults: &FaultConfig{Trace: ftrace(fail(50, 0), repair(60, 0))}})

	s := r.Summary
	if s.KilledJobs != 1 || s.RetriedJobs != 1 || s.DroppedJobs != 0 {
		t.Errorf("killed/retried/dropped = %d/%d/%d, want 1/1/0", s.KilledJobs, s.RetriedJobs, s.DroppedJobs)
	}
	if s.Jobs != 2 {
		t.Errorf("finished jobs = %d, want 2", s.Jobs)
	}
	if s.LostWorkSeconds != 50*320 {
		t.Errorf("lost work = %g, want %d", s.LostWorkSeconds, 50*320)
	}
	if s.DownProcSeconds != 10*32 {
		t.Errorf("down proc-seconds = %g, want %d", s.DownProcSeconds, 10*32)
	}

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	// Attempt 1 of job 1: killed exactly at the failure instant.
	if sp := spans[0]; sp.JobID != 1 || !sp.Killed || sp.Start != 0 || sp.End != 50 {
		t.Errorf("first span = %+v, want job 1 killed [0,50)", sp)
	}
	// The retry runs before job 2 despite job 2's earlier arrival: the
	// resubmission went to the head of the queue.
	if sp := spans[1]; sp.JobID != 1 || sp.Killed || sp.Start != 60 || sp.End != 160 {
		t.Errorf("second span = %+v, want job 1 [60,160)", sp)
	}
	if sp := spans[2]; sp.JobID != 2 || sp.Start != 160 {
		t.Errorf("third span = %+v, want job 2 starting at 160", sp)
	}
}

func TestDropPolicyRemovesVictim(t *testing.T) {
	w := wl(batch(1, 320, 100, 0))
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{},
		Faults: &FaultConfig{Trace: ftrace(fail(50, 3), repair(60, 3)),
			Retry: fault.RetryPolicy{Mode: fault.Drop}}})
	s := r.Summary
	if s.KilledJobs != 1 || s.RetriedJobs != 0 || s.DroppedJobs != 1 {
		t.Errorf("killed/retried/dropped = %d/%d/%d, want 1/0/1", s.KilledJobs, s.RetriedJobs, s.DroppedJobs)
	}
	if s.Jobs != 0 {
		t.Errorf("finished jobs = %d, want 0", s.Jobs)
	}
}

func TestRetryBudgetExhaustionDrops(t *testing.T) {
	// Two failures; one retry allowed. The second kill exhausts the budget.
	w := wl(batch(1, 320, 100, 0))
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{},
		Faults: &FaultConfig{Trace: ftrace(fail(10, 0), repair(20, 0), fail(50, 0), repair(55, 0)),
			Retry: fault.RetryPolicy{MaxRetries: 1}}})
	s := r.Summary
	if s.KilledJobs != 2 || s.RetriedJobs != 1 || s.DroppedJobs != 1 {
		t.Errorf("killed/retried/dropped = %d/%d/%d, want 2/1/1", s.KilledJobs, s.RetriedJobs, s.DroppedJobs)
	}
	if s.Jobs != 0 {
		t.Errorf("finished jobs = %d, want 0", s.Jobs)
	}
}

func TestRemainingRuntimeRestart(t *testing.T) {
	// A 32-proc job killed at t=40 of its 100s run restarts immediately on
	// a healthy group carrying only the 60 unfinished seconds.
	w := wl(batch(1, 32, 100, 0))
	rec := trace.NewRecorder(320, 32)
	mustRun(t, w, Config{Scheduler: sched.FCFS{}, Observer: rec,
		Faults: &FaultConfig{Trace: ftrace(fail(40, 0), repair(500, 0)),
			Retry: fault.RetryPolicy{Restart: fault.RemainingRuntime}}})
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	if sp := spans[0]; !sp.Killed || sp.End != 40 {
		t.Errorf("first span = %+v, want killed at 40", sp)
	}
	if sp := spans[1]; sp.Killed || sp.Start != 40 || sp.End != 100 {
		t.Errorf("second span = %+v, want [40,100)", sp)
	}
}

func TestRetryBackoffDelaysResubmission(t *testing.T) {
	w := wl(batch(1, 32, 100, 0))
	rec := trace.NewRecorder(320, 32)
	mustRun(t, w, Config{Scheduler: sched.FCFS{}, Observer: rec,
		Faults: &FaultConfig{Trace: ftrace(fail(40, 0), repair(500, 0)),
			Retry: fault.RetryPolicy{Backoff: 25}}})
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	if sp := spans[1]; sp.Start != 65 || sp.End != 165 {
		t.Errorf("retry span = %+v, want [65,165) (kill 40 + backoff 25, full restart)", sp)
	}
}

func TestDedicatedVictimAlwaysDropped(t *testing.T) {
	// The dedicated job's rigid start has passed by the time it is killed;
	// requeue mode does not apply to it.
	w := wl(ded(1, 320, 100, 0, 0))
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{Ded: true},
		Faults: &FaultConfig{Trace: ftrace(fail(50, 0), repair(60, 0))}})
	s := r.Summary
	if s.KilledJobs != 1 || s.RetriedJobs != 0 || s.DroppedJobs != 1 {
		t.Errorf("killed/retried/dropped = %d/%d/%d, want 1/0/1", s.KilledJobs, s.RetriedJobs, s.DroppedJobs)
	}
}

func TestFailureOfIdleGroupsKillsNothing(t *testing.T) {
	// A 32-proc job holds one group; failing three other groups shrinks
	// capacity but kills nothing and changes no job outcome.
	w := wl(batch(1, 32, 100, 0))
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{},
		Faults: &FaultConfig{Trace: ftrace(fail(10, 5, 6, 7), repair(30, 5, 6, 7))}})
	s := r.Summary
	if s.KilledJobs != 0 || s.Jobs != 1 || s.MeanRun != 100 {
		t.Errorf("summary = %+v, want no kills and one clean 100s job", s)
	}
	if s.DownProcSeconds != 20*96 {
		t.Errorf("down proc-seconds = %g, want %d", s.DownProcSeconds, 20*96)
	}
}

func TestGeneratedFaultsAreDeterministic(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 150
	p.TargetLoad = 0.8
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scheduler: &sched.EASY{},
		Faults: &FaultConfig{MTBF: 40000, MTTR: 2000, Seed: 7}}
	r1 := mustRun(t, w, cfg)
	cfg.Scheduler = &sched.EASY{}
	cfg.Faults = &FaultConfig{MTBF: 40000, MTTR: 2000, Seed: 7}
	r2 := mustRun(t, w, cfg)
	if r1.Summary != r2.Summary || r1.Events != r2.Events {
		t.Fatal("fault-injected simulation not deterministic")
	}
	if r1.Summary.DownProcSeconds == 0 {
		t.Fatal("MTBF 40000 over this span produced no downtime; pick parameters that fault")
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		fc   *FaultConfig
		want error // nil means "any error"
	}{
		{"zero MTBF", &FaultConfig{}, fault.ErrNonPositiveMTBF},
		{"negative MTBF", &FaultConfig{MTBF: -3}, fault.ErrNonPositiveMTBF},
		{"negative MTTR", &FaultConfig{MTBF: 100, MTTR: -1}, fault.ErrNegativeMTTR},
		{"negative horizon", &FaultConfig{MTBF: 100, Horizon: -1}, fault.ErrNonPositiveSpan},
		{"negative retries", &FaultConfig{MTBF: 100, Retry: fault.RetryPolicy{MaxRetries: -1}}, fault.ErrNegativeRetries},
		{"negative backoff", &FaultConfig{MTBF: 100, Retry: fault.RetryPolicy{Backoff: -1}}, fault.ErrNegativeBackoff},
		{"unknown retry mode", &FaultConfig{MTBF: 100, Retry: fault.RetryPolicy{Mode: 9}}, fault.ErrUnknownRetryMode},
		{"unknown restart", &FaultConfig{MTBF: 100, Retry: fault.RetryPolicy{Restart: 9}}, fault.ErrUnknownRestart},
		{"trace plus MTBF", &FaultConfig{Trace: ftrace(fail(1, 0), repair(2, 0)), MTBF: 100}, nil},
		{"trace group out of range", &FaultConfig{Trace: ftrace(fail(1, 10))}, fault.ErrGroupOutOfRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}, Faults: tc.fc})
			if err == nil {
				t.Fatal("config accepted, want error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want errors.Is %v", err, tc.want)
			}
		})
	}

	if _, err := New(Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}, Contiguous: true,
		Faults: &FaultConfig{MTBF: 100}}); err != nil {
		t.Fatalf("contiguous allocation with faults rejected: %v", err)
	}
	if _, err := New(Config{M: 320, Unit: 32, Scheduler: sched.FCFS{},
		Faults: &FaultConfig{MTBF: 100, MTTR: 50, Seed: 1}}); err != nil {
		t.Fatalf("valid fault config rejected: %v", err)
	}
}

func TestSnapshotRoundTripMidFault(t *testing.T) {
	// Snapshot while a group is down and a killed job waits for capacity;
	// the restored session must finish with a deep-equal result.
	w := wl(batch(1, 320, 100, 0), batch(2, 160, 50, 5), batch(3, 160, 30, 6))
	cfg := Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}, Paranoid: true,
		Faults: &FaultConfig{Trace: ftrace(fail(50, 0, 1), repair(90, 0, 1)),
			Retry: fault.RetryPolicy{Restart: fault.RemainingRuntime, Backoff: 3}}}

	run := func() (*Session, *Result) {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Load(w); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		r, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		return s, r
	}
	_, want := run()

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	// Advance past the failure instant but not to the repair.
	if err := s.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.Machine.Health) == 0 {
		t.Fatal("mid-fault snapshot carries no machine health table")
	}

	// Round-trip the encoding too.
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sn2, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Scheduler = &sched.EASY{}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(sn2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored run result differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSnapshotRoundTripMidRetryBackoff snapshots while a killed job's
// backoff resubmission is still pending in the event queue — the retry
// exists only as a future arrival — and requires the restored run to
// reproduce the failure accounting exactly. The checkpointed variant
// additionally carries the victim's checkpoint progress through the wire.
func TestSnapshotRoundTripMidRetryBackoff(t *testing.T) {
	cases := []struct {
		name string
		fc   FaultConfig
	}{
		{"plain", FaultConfig{
			Trace: ftrace(fail(50, 0, 1), repair(60, 0, 1)),
			Retry: fault.RetryPolicy{Restart: fault.RemainingRuntime, Backoff: 100},
		}},
		{"checkpointed", FaultConfig{
			Trace:      ftrace(fail(50, 0, 1), repair(60, 0, 1)),
			Retry:      fault.RetryPolicy{Backoff: 100},
			Checkpoint: fault.CheckpointPeriodic, CheckpointInterval: 20, CheckpointCost: 3,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w := wl(batch(1, 320, 100, 0), batch(2, 160, 40, 5))
			fresh := func() *Session {
				fc := tc.fc
				s, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}, Paranoid: true, Faults: &fc})
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			mk := func() *Session {
				s := fresh()
				if err := s.Load(w); err != nil {
					t.Fatal(err)
				}
				return s
			}
			full := mk()
			if err := full.Run(); err != nil {
				t.Fatal(err)
			}
			want, err := full.Result()
			if err != nil {
				t.Fatal(err)
			}
			if want.Summary.KilledJobs == 0 || want.Summary.RetriedJobs == 0 {
				t.Fatalf("scenario kills nothing: %+v", want.Summary)
			}

			// Kill at t=50, backoff 100: at t=100 the resubmission is still
			// a pending future arrival.
			live := mk()
			if err := live.RunUntil(100); err != nil {
				t.Fatal(err)
			}
			sn, err := live.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := sn.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			sn2, err := DecodeSnapshot(&buf)
			if err != nil {
				t.Fatal(err)
			}
			resumed := fresh()
			if err := resumed.Restore(sn2); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Run(); err != nil {
				t.Fatal(err)
			}
			got, err := resumed.Result()
			if err != nil {
				t.Fatal(err)
			}
			if got.Summary.KilledJobs != want.Summary.KilledJobs ||
				got.Summary.RetriedJobs != want.Summary.RetriedJobs ||
				got.Summary.DroppedJobs != want.Summary.DroppedJobs {
				t.Errorf("killed/retried/dropped = %d/%d/%d, want %d/%d/%d",
					got.Summary.KilledJobs, got.Summary.RetriedJobs, got.Summary.DroppedJobs,
					want.Summary.KilledJobs, want.Summary.RetriedJobs, want.Summary.DroppedJobs)
			}
			if got.Summary.LostWorkSeconds != want.Summary.LostWorkSeconds {
				t.Errorf("lost work = %g, want %g", got.Summary.LostWorkSeconds, want.Summary.LostWorkSeconds)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("restored mid-backoff run diverged:\ngot:  %+v\nwant: %+v", got, want)
			}
		})
	}
}

func TestRestoreRejectsFaultMismatch(t *testing.T) {
	w := wl(batch(1, 320, 100, 0))
	cfg := Config{M: 320, Unit: 32, Scheduler: sched.FCFS{},
		Faults: &FaultConfig{Trace: ftrace(fail(50, 0), repair(60, 0))}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Fault snapshot into a fault-free config.
	plain, err := New(Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(sn); err == nil {
		t.Fatal("fault snapshot restored into fault-free session")
	}

	// Same fault subsystem, different retry policy.
	cfg2 := cfg
	cfg2.Scheduler = sched.FCFS{}
	cfg2.Faults = &FaultConfig{Trace: cfg.Faults.Trace, Retry: fault.RetryPolicy{Mode: fault.Drop}}
	other, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(sn); err == nil {
		t.Fatal("snapshot restored under a different retry policy")
	}
}

func TestKilledJobStateAndRetryCount(t *testing.T) {
	// Direct session access: verify the victim's bookkeeping fields.
	w := wl(batch(1, 320, 100, 0))
	cfg := Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}, Paranoid: true,
		Faults: &FaultConfig{Trace: ftrace(fail(50, 0), repair(60, 0))}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(55); err != nil {
		t.Fatal(err)
	}
	queued := s.batch.Jobs()
	if len(queued) != 1 {
		t.Fatalf("batch queue holds %d jobs mid-outage, want the requeued victim", len(queued))
	}
	victim := queued[0]
	if victim.Retries != 1 || !victim.Rigid || victim.State != job.Waiting || victim.Arrival != 50 {
		t.Fatalf("requeued victim = %+v, want retries=1 rigid waiting arrival=50", victim)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
	if victim.State != job.Finished {
		t.Fatalf("victim state = %v after drain, want finished", victim.State)
	}
}
