package engine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

// ---- Config validation (satellite) --------------------------------------

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // "" means valid
	}{
		{"valid", Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}}, ""},
		{"unit defaults to 1", Config{M: 7, Scheduler: sched.FCFS{}}, ""},
		{"unit equals machine", Config{M: 64, Unit: 64, Scheduler: sched.FCFS{}}, ""},
		{"no scheduler", Config{M: 320, Unit: 32}, "no scheduler"},
		{"zero machine", Config{M: 0, Unit: 1, Scheduler: sched.FCFS{}}, "must be positive"},
		{"negative machine", Config{M: -8, Unit: 1, Scheduler: sched.FCFS{}}, "must be positive"},
		{"unit exceeds machine", Config{M: 32, Unit: 64, Scheduler: sched.FCFS{}}, "exceeds machine size"},
		{"unit does not divide", Config{M: 320, Unit: 33, Scheduler: sched.FCFS{}}, "does not divide"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				if s == nil {
					t.Fatal("nil session for valid config")
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// Run (the wrapper) must surface the same validation errors.
func TestRunValidatesConfig(t *testing.T) {
	w := wl(batch(1, 32, 10, 0))
	if _, err := Run(w, Config{M: 320, Unit: 33, Scheduler: sched.FCFS{}}); err == nil {
		t.Error("Run accepted a unit that does not divide the machine")
	}
}

// ---- lifecycle -----------------------------------------------------------

func sessionWorkload(t *testing.T, n int, seed int64) *cwf.Workload {
	t.Helper()
	p := workload.DefaultParams()
	p.N = n
	p.Seed = seed
	p.PE = 0.3
	p.PR = 0.15
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runSession(t *testing.T, s *Session, w *cwf.Workload) *Result {
	t.Helper()
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStepwiseMatchesRun(t *testing.T) {
	w := sessionWorkload(t, 120, 3)
	cfg := func() Config {
		return Config{M: 320, Unit: 32, Scheduler: core.NewDelayedLOS(5), ProcessECC: true}
	}
	want, err := Run(w, cfg())
	if err != nil {
		t.Fatal(err)
	}

	// One event timestamp at a time.
	s, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		ok, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
	}
	if !s.Done() {
		t.Error("session not Done after Step drained")
	}
	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stepped run diverged from one-shot run:\n%+v\n%+v", got, want)
	}
	if steps == 0 {
		t.Fatal("no steps taken")
	}

	// Deadline-bounded chunks.
	s2, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Load(w); err != nil {
		t.Fatal(err)
	}
	for {
		next, ok := s2.NextEventTime()
		if !ok {
			break
		}
		if err := s2.RunUntil(next + 5000); err != nil {
			t.Fatal(err)
		}
	}
	got2, err := s2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("RunUntil-chunked run diverged from one-shot run")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	w := wl(batch(1, 320, 100, 0), batch(2, 320, 100, 0))
	s, err := New(Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 || s.Running() != 1 || s.Waiting() != 1 {
		t.Errorf("at deadline 50: now=%d running=%d waiting=%d, want 0/1/1", s.Now(), s.Running(), s.Waiting())
	}
	// Partial result mid-run: no deadlock error, partial counts.
	r, err := s.Result()
	if err != nil {
		t.Fatalf("mid-run Result: %v", err)
	}
	if r.Summary.Jobs != 0 { // no completions yet
		t.Errorf("mid-run summary reports %d finished jobs, want 0", r.Summary.Jobs)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r, err = s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Jobs != 2 {
		t.Errorf("final summary reports %d jobs, want 2", r.Summary.Jobs)
	}
}

func TestLoadTwiceRejected(t *testing.T) {
	w := wl(batch(1, 32, 10, 0))
	s, err := New(Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err == nil {
		t.Error("second Load accepted")
	}
}

// ---- online injection ----------------------------------------------------

// Injecting the whole workload before the first step must be exactly
// equivalent to Load: same admission order, same event sequence.
func TestInjectAllMatchesLoad(t *testing.T) {
	w := sessionWorkload(t, 80, 11)
	cfg := func() Config {
		return Config{M: 320, Unit: 32, Scheduler: core.NewDelayedLOS(5), ProcessECC: true}
	}
	want, err := Run(w, cfg())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if err := s.Inject(j); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range w.Commands {
		if err := s.InjectCommand(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("injected run diverged from loaded run:\n%+v\n%+v", got, want)
	}
	// The input jobs must not have been mutated (injection clones).
	for _, j := range w.Jobs {
		if j.State != 0 || j.StartTime != 0 {
			t.Fatalf("Inject mutated caller's job %v", j)
		}
	}
}

func TestInjectMidRun(t *testing.T) {
	s, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wl(batch(1, 320, 100, 0))); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(0); err != nil { // job 1 dispatched, runs to t=100
		t.Fatal(err)
	}
	// A job submitted "now" while job 1 occupies the machine.
	if err := s.Inject(batch(2, 160, 50, s.Now())); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Jobs != 2 {
		t.Fatalf("finished %d jobs, want 2", r.Summary.Jobs)
	}
	// Job 2 had to wait for job 1: mean wait = (0 + 100)/2.
	if r.Summary.MeanWait != 50 {
		t.Errorf("mean wait %g, want 50", r.Summary.MeanWait)
	}
}

func TestInjectValidation(t *testing.T) {
	s, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wl(batch(1, 320, 100, 0))); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(batch(1, 32, 10, 5)); err == nil {
		t.Error("duplicate job ID accepted")
	}
	if err := s.Inject(batch(2, 32, 10, s.Now()-1)); err == nil {
		t.Error("arrival in the past accepted")
	}
	if err := s.Inject(batch(3, 999, 10, s.Now())); err == nil {
		t.Error("job larger than the machine accepted")
	}
	if err := s.Inject(ded(4, 32, 10, s.Now(), s.Now()+10)); err == nil {
		t.Error("dedicated job accepted by batch-only scheduler")
	}
	if err := s.InjectCommand(cwf.Command{JobID: 1, Issue: s.Now() - 1, Type: cwf.ExtendTime, Amount: 5}); err == nil {
		t.Error("command issued in the past accepted")
	}
	if err := s.InjectCommand(cwf.Command{JobID: 1, Issue: s.Now(), Type: cwf.ExtendTime, Amount: 0}); err == nil {
		t.Error("zero-amount command accepted")
	}
}

func TestInjectCommandMidRun(t *testing.T) {
	s, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}, ProcessECC: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wl(batch(1, 320, 100, 0))); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	if err := s.InjectCommand(cwf.Command{JobID: 1, Issue: 40, Type: cwf.ExtendTime, Amount: 25}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.ECC.Applied != 1 || r.Summary.MeanRun != 125 {
		t.Errorf("ECC applied=%d meanRun=%g, want 1/125", r.ECC.Applied, r.Summary.MeanRun)
	}
}

// Injecting an ID far outside the dense range must migrate the completion
// table to its sparse representation without losing pending completions.
func TestInjectSparseIDMigratesCompletionTable(t *testing.T) {
	s, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}, Paranoid: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wl(batch(1, 320, 100, 0))); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(0); err != nil { // job 1 running; completion pending
		t.Fatal(err)
	}
	if err := s.Inject(batch(1_000_000, 32, 10, s.Now())); err != nil {
		t.Fatal(err)
	}
	if s.completion != nil || s.completionMap == nil {
		t.Fatal("completion table did not migrate to the sparse representation")
	}
	if !s.completionMap[1].Scheduled() {
		t.Fatal("pending completion lost in migration")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Jobs != 2 {
		t.Errorf("finished %d jobs, want 2", r.Summary.Jobs)
	}
}

// ---- snapshot / restore --------------------------------------------------

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	w := sessionWorkload(t, 120, 7)
	cfg := func() Config {
		return Config{M: 320, Unit: 32, Scheduler: core.NewDelayedLOS(5), ProcessECC: true, Paranoid: true}
	}
	want, err := Run(w, cfg())
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ { // stop at an arbitrary mid-run boundary
		if ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Serialize through JSON to prove the encoding is lossless.
	var buf bytes.Buffer
	if err := sn.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	r2, err := New(cfg()) // fresh session, fresh scheduler
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := r2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored run diverged from uninterrupted run:\n%+v\n%+v", got, want)
	}

	// The captured session is unperturbed and finishes identically too.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	orig, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, want) {
		t.Errorf("snapshotting perturbed the live session")
	}
}

func TestSnapshotSupportsInjectionAfterRestore(t *testing.T) {
	s, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wl(batch(1, 320, 100, 0))); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(sn); err != nil {
		t.Fatal(err)
	}
	if err := r.Inject(batch(2, 64, 10, r.Now()+5)); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Jobs != 2 {
		t.Errorf("finished %d jobs, want 2", res.Summary.Jobs)
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	s, err := New(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wl(batch(1, 320, 100, 0))); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(0); err != nil {
		t.Fatal(err)
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fresh := func(cfg Config) *Session {
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if err := fresh(Config{M: 640, Unit: 32, Scheduler: &sched.EASY{}}).Restore(sn); err == nil {
		t.Error("geometry mismatch accepted")
	}
	if err := fresh(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}, ProcessECC: true}).Restore(sn); err == nil {
		t.Error("ECC-mode mismatch accepted")
	}
	bad := *sn
	bad.Version = 99
	if err := fresh(Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}}).Restore(&bad); err == nil {
		t.Error("wrong version accepted")
	}
	// Restore on a used session is refused.
	if err := s.Restore(sn); err == nil {
		t.Error("Restore on a running session accepted")
	}
	// Policy swap is allowed: restoring an EASY snapshot under FCFS.
	swapped := fresh(Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}})
	if err := swapped.Restore(sn); err != nil {
		t.Errorf("policy-swap restore rejected: %v", err)
	}
	if err := swapped.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := swapped.Result(); err != nil {
		t.Fatal(err)
	}
}

// Adaptive is the one built-in policy with logical cross-cycle state; its
// estimate must survive the round trip or the restored run diverges.
func TestSnapshotCarriesAdaptiveState(t *testing.T) {
	w := sessionWorkload(t, 150, 19)
	cfg := func() Config {
		return Config{M: 320, Unit: 32, Scheduler: core.NewAdaptive(5)}
	}
	want, err := Run(w, cfg())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sn.SchedState) == 0 {
		t.Fatal("Adaptive snapshot carries no policy state")
	}
	r, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(sn); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Adaptive restored run diverged from uninterrupted run")
	}
}
