package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"elastisched/internal/cwf"
	"elastisched/internal/job"
	"elastisched/internal/sched"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// randomResizer decorates a scheduler with adversarial malleability: at most
// once per scheduling instant it proposes a random lawful resize for a
// fraction of the running malleable jobs. Unlike AutoResize it pursues no
// objective, which makes it the right driver for property tests — an
// invariant that survives it belongs to the resize pipeline, not to the
// politeness of a particular policy.
type randomResizer struct {
	sched.Scheduler
	r    *rand.Rand
	last int64
}

func newRandomResizer(inner sched.Scheduler, seed int64) *randomResizer {
	return &randomResizer{Scheduler: inner, r: rand.New(rand.NewSource(seed)), last: -1}
}

// ProposeResizes implements sched.Malleable. Proposing only on the first
// cycle of each instant keeps the fixed-point loop terminating: once the
// engine re-runs Schedule after applying the proposals, the repeated call
// returns nothing.
func (rr *randomResizer) ProposeResizes(ctx *sched.Context) []sched.Resize {
	if ctx.Now == rr.last {
		return nil
	}
	rr.last = ctx.Now
	unit := ctx.Machine.Unit()
	var out []sched.Resize
	for _, j := range ctx.Active.Jobs() {
		if j.Class != job.Batch || !j.Malleable() || !ctx.Machine.AllUp(j.ID) {
			continue
		}
		if rr.r.Float64() >= 0.4 {
			continue
		}
		lo := (j.MinProcs + unit - 1) / unit
		if lo < 1 {
			lo = 1
		}
		hi := j.MaxProcs / unit
		if hi < lo {
			continue
		}
		if ns := (lo + rr.r.Intn(hi-lo+1)) * unit; ns != j.Size {
			out = append(out, sched.Resize{Job: j, NewSize: ns})
		}
	}
	return out
}

// checkSpanWork replays a span's resize chain and bounds the processor-
// seconds it delivered against the work its dispatch promised:
//
//   - no work is ever lost: ceil-rounding in RescaleRemaining only rounds
//     the remaining runtime up, so delivered >= Size·Planned;
//   - no work is invented beyond the accounting slack: each resize adds at
//     most one second at the new rate plus the reconfiguration overhead, so
//     delivered <= Size·Planned + Σ NewSize·(1+overhead).
func checkSpanWork(t *testing.T, sp trace.Span, overhead int64, seed int64) {
	t.Helper()
	if sp.Killed || sp.Planned <= 0 || len(sp.Resizes) == 0 {
		return
	}
	want := int64(sp.Size) * sp.Planned
	var delivered, slack int64
	tcur, size := sp.Start, sp.Size
	for _, rz := range sp.Resizes {
		delivered += int64(size) * (rz.Time - tcur)
		tcur, size = rz.Time, rz.NewSize
		slack += int64(rz.NewSize) * (1 + overhead)
	}
	delivered += int64(size) * (sp.End - tcur)
	if delivered < want {
		t.Errorf("seed %d: job %d lost work: delivered %d proc-s, promised %d (%d resizes)",
			seed, sp.JobID, delivered, want, len(sp.Resizes))
	}
	if delivered > want+slack {
		t.Errorf("seed %d: job %d invented work: delivered %d proc-s, promised %d + slack %d (%d resizes)",
			seed, sp.JobID, delivered, want, slack, len(sp.Resizes))
	}
}

// TestPropertyResizeWorkConservation: under an adversarial stream of random
// lawful resizes, every job still delivers exactly the work it was
// dispatched with (modulo the documented ceil slack and reconfiguration
// overhead), on scatter and contiguous machines alike.
func TestPropertyResizeWorkConservation(t *testing.T) {
	for _, tc := range []struct {
		name       string
		contiguous bool
		overhead   int64
	}{
		{"scatter", false, 0},
		{"scatter-overhead", false, 4},
		{"contiguous", true, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resizes := 0
			for seed := int64(1); seed <= 4; seed++ {
				p := workload.DefaultParams()
				p.Seed = seed
				p.N = 150
				p.TargetLoad = 0.9
				p.PM = 1.0
				w, err := workload.Generate(p)
				if err != nil {
					t.Fatal(err)
				}
				rec := trace.NewRecorder(320, 32)
				rr := newRandomResizer(&sched.EASY{}, seed*31+tc.overhead)
				_, err = Run(w, Config{
					M: 320, Unit: 32, Scheduler: rr, Observer: rec,
					Contiguous: tc.contiguous, Malleable: true,
					ResizeOverhead: tc.overhead, Paranoid: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, sp := range rec.Spans() {
					resizes += len(sp.Resizes)
					checkSpanWork(t, sp, tc.overhead, seed)
				}
			}
			if resizes == 0 {
				t.Fatal("random resizer never landed a resize; the property was not exercised")
			}
		})
	}
}

// FuzzMalleableOps interleaves online injection, client ECCs, scheduler-
// initiated resizes and fault kills against one session, with snapshot
// round trips at arbitrary prefixes, and requires the run to drain without
// violating any engine invariant (Paranoid mode) and to produce a result.
func FuzzMalleableOps(f *testing.F) {
	f.Add([]byte{0, 3, 50, 5, 1, 2, 6, 3, 9, 4, 0, 7, 80, 0, 1, 1, 4, 2, 20})
	f.Add([]byte{3, 200, 0, 9, 100, 10, 4, 1, 0, 2, 30, 2, 7})
	f.Add([]byte{0, 1, 1, 0, 4, 0, 2, 2, 3, 255, 1, 3, 1, 4, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		cfg := func() Config {
			return Config{
				M: 320, Unit: 32,
				Scheduler:  sched.NewAutoResize(&sched.EASY{}),
				ProcessECC: true,
				Malleable:  true, ResizeOverhead: 2,
				Paranoid: true,
				Faults: &FaultConfig{
					MTBF: 20_000, MTTR: 800, Seed: 11, Horizon: 200_000,
				},
			}
		}
		s, err := New(cfg())
		if err != nil {
			t.Fatal(err)
		}
		// Seed workload: Load arms the fault trace; everything else arrives
		// online through Inject/InjectCommand below.
		p := workload.DefaultParams()
		p.Seed = 5
		p.N = 20
		p.TargetLoad = 0.8
		p.PM = 1.0
		w, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Load(w); err != nil {
			t.Fatal(err)
		}

		nextID := 1_000
		ids := make([]int, 0, len(w.Jobs)+len(ops))
		for _, j := range w.Jobs {
			ids = append(ids, j.ID)
		}
		i := 0
		arg := func() byte {
			if i < len(ops) {
				b := ops[i]
				i++
				return b
			}
			return 0
		}
		for i < len(ops) {
			switch arg() % 5 {
			case 0: // inject a batch job, malleable half the time
				size := (1 + int(arg())%10) * 32
				j := &job.Job{
					ID: nextID, Size: size, Dur: int64(1+int(arg())%200) * 10,
					Arrival: s.Now() + int64(arg()%50), ReqStart: -1, Class: job.Batch,
				}
				if size > 32 && arg()%2 == 0 {
					j.MinProcs, j.MaxProcs = 32, size
				}
				if err := s.Inject(j); err != nil {
					t.Fatalf("inject %+v: %v", j, err)
				}
				ids = append(ids, nextID)
				nextID++
			case 1: // inject a client ECC; lawful rejections are fine
				if len(ids) == 0 {
					continue
				}
				types := [...]cwf.ReqType{cwf.ExtendTime, cwf.ReduceTime, cwf.ExtendProc, cwf.ReduceProc}
				c := cwf.Command{
					JobID:  ids[int(arg())%len(ids)],
					Issue:  s.Now() + int64(arg()%30),
					Type:   types[arg()%4],
					Amount: int64(1 + arg()%64),
				}
				_ = s.InjectCommand(c)
			case 2: // drain a few events
				for k, n := byte(0), arg()%8; k < n; k++ {
					ok, err := s.Step()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
				}
			case 3: // advance wall-clock
				if err := s.RunUntil(s.Now() + int64(arg())*16); err != nil {
					t.Fatal(err)
				}
			case 4: // snapshot round trip; continue in the restored session
				sn, err := s.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := sn.Encode(&buf); err != nil {
					t.Fatal(err)
				}
				dec, err := DecodeSnapshot(&buf)
				if err != nil {
					t.Fatal(err)
				}
				r, err := New(cfg())
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Restore(dec); err != nil {
					t.Fatal(err)
				}
				s = r
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Result(); err != nil {
			t.Fatal(err)
		}
	})
}
