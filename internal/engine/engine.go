// Package engine runs one scheduling simulation: it feeds a CWF workload
// through the event kernel, maintains the paper's queues (W^b, W^d, A) and
// the machine, invokes the scheduling policy at every event instant until a
// fixed point, and applies Elastic Control Commands through the ECC
// processor for -E algorithm variants.
//
// This is the role the GridSim + ALEA pair plays in the paper's Java
// framework (Figure 3).
package engine

import (
	"errors"
	"fmt"
	"io"

	"elastisched/internal/cwf"
	"elastisched/internal/ecc"
	"elastisched/internal/job"
	"elastisched/internal/machine"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
	"elastisched/internal/simkit"
)

// Config describes one run.
type Config struct {
	// M is the machine size in processors; Unit the allocation quantum.
	M, Unit int
	// Scheduler is the policy under test. A fresh instance per run: policies
	// carry scratch state and are not safe to share across runs.
	Scheduler sched.Scheduler
	// ProcessECC attaches the ECC processor (the scheduler's -E variant).
	// When false, commands in the workload are dropped and counted.
	ProcessECC bool
	// MaxECCPerJob caps commands per job (0 = unlimited).
	MaxECCPerJob int
	// Paranoid verifies machine invariants at every instant (slow; tests).
	Paranoid bool
	// MaxCyclesPerInstant bounds the scheduler fixed-point loop; exceeding
	// it means the policy livelocked. 0 uses a generous default.
	MaxCyclesPerInstant int
	// Observer, when non-nil, receives placement events (dispatches,
	// completions, resizes) — e.g. a trace.Recorder for Gantt rendering.
	Observer Observer
	// Contiguous requires every allocation to be a contiguous node-group
	// run (BlueGene-style partitioning, Section II): fragmentation can
	// then block capacity-feasible placements.
	Contiguous bool
	// Migrate enables on-the-fly defragmentation (Krevat et al.): when a
	// contiguous placement fails, running jobs are compacted toward group
	// zero and the placement retried.
	Migrate bool
	// DebugLog, when non-nil, receives one line per simulation event
	// (arrival, dispatch, completion, ECC) — the scheduler-debugging
	// trace. Slows the run; for tooling and tests.
	DebugLog io.Writer
	// Prevalidated promises the caller already ran w.Validate(M)
	// successfully, skipping re-validation. Set by sweep drivers that replay
	// one validated workload under many algorithms.
	Prevalidated bool
}

// Observer receives placement events during a run.
type Observer interface {
	// JobStarted fires at dispatch; groups are the node groups allocated.
	JobStarted(j *job.Job, now int64, groups []int)
	// JobFinished fires when the job leaves the machine.
	JobFinished(j *job.Job, now int64)
	// JobResized fires after an EP/RP command changed the allocation.
	JobResized(j *job.Job, now int64, newSize int)
}

// Result is the outcome of a run.
type Result struct {
	Summary metrics.Summary
	ECC     ecc.Stats
	// DroppedECC counts commands ignored because ProcessECC was off.
	DroppedECC int
	// Events is the number of kernel events dispatched; Cycles the number
	// of scheduler invocations.
	Events uint64
	Cycles uint64
	// Migrations counts jobs moved by defragmentation (Migrate mode);
	// FragmentedRejections counts placements refused due to fragmentation.
	Migrations           int
	FragmentedRejections int
	// PeakFragmentedWaste is the largest free-but-unusable capacity seen at
	// any instant (free processors beyond the longest contiguous run;
	// always 0 on scatter machines).
	PeakFragmentedWaste int
}

// state is the live simulation.
type state struct {
	cfg Config
	eng *simkit.Engine

	mach   *machine.Machine
	batch  *job.BatchQueue
	ded    *job.DedicatedQueue
	active *job.ActiveList

	// completion maps job ID -> pending completion event. Generated and
	// trace job IDs are dense small integers, so the common representation
	// is a flat slice; completionMap is the fallback for sparse ID spaces.
	completion    []simkit.Handle
	completionMap map[int]simkit.Handle
	collector     *metrics.Collector
	proc          *ecc.Processor
	dropped       int
	cycles        uint64
	fragRejects   int
	peakWaste     int

	// ctx is the scheduler context, built once and reset per cycle; its
	// scratch buffers (the DP candidate window) survive across cycles.
	ctx sched.Context
	// arriveH/completeH/commandH are the shared event callbacks, bound once
	// so the hot paths schedule through simkit.AtArg without allocating a
	// closure per event.
	arriveH, completeH, commandH simkit.ArgHandler
}

// noopWake is the dedicated-start wake event: it exists only to force a
// scheduler cycle at the requested start instant.
func noopWake(int64) {}

func (s *state) arriveEv(now int64, arg any)   { s.arrive(arg.(*job.Job), now) }
func (s *state) completeEv(now int64, arg any) { s.complete(arg.(*job.Job), now) }
func (s *state) commandEv(now int64, arg any)  { s.command(*arg.(*cwf.Command), now) }

// setCompletion records the pending completion event for a job ID.
func (s *state) setCompletion(id int, h simkit.Handle) {
	if s.completion != nil {
		s.completion[id] = h
		return
	}
	s.completionMap[id] = h
}

// getCompletion returns the recorded completion handle (zero if none).
func (s *state) getCompletion(id int) simkit.Handle {
	if s.completion != nil {
		return s.completion[id]
	}
	return s.completionMap[id]
}

// clearCompletion drops the record once the job has completed.
func (s *state) clearCompletion(id int) {
	if s.completion != nil {
		s.completion[id] = simkit.Handle{}
		return
	}
	delete(s.completionMap, id)
}

// Run executes the workload under the configuration and returns the
// measured result. The workload is not mutated: jobs are cloned first, so
// the same workload can be replayed under every algorithm of a comparison.
func Run(w *cwf.Workload, cfg Config) (*Result, error) {
	if cfg.Scheduler == nil {
		return nil, errors.New("engine: no scheduler configured")
	}
	if cfg.Unit <= 0 {
		cfg.Unit = 1
	}
	if cfg.MaxCyclesPerInstant <= 0 {
		cfg.MaxCyclesPerInstant = 1 << 20
	}
	if !cfg.Prevalidated {
		if err := w.Validate(cfg.M); err != nil {
			return nil, err
		}
	}
	hasDed := w.NumDedicated() > 0
	if hasDed && !cfg.Scheduler.Heterogeneous() {
		return nil, fmt.Errorf("engine: workload has dedicated jobs but %s is batch-only", cfg.Scheduler.Name())
	}

	newMachine := machine.New
	if cfg.Contiguous {
		newMachine = machine.NewContiguous
	}
	mach := newMachine(cfg.M, cfg.Unit)
	if cfg.Contiguous && cfg.Migrate {
		mach.EnableMigration()
	}
	s := &state{
		cfg:       cfg,
		eng:       simkit.New(),
		mach:      mach,
		batch:     job.NewBatchQueue(),
		ded:       job.NewDedicatedQueue(),
		active:    job.NewActiveList(),
		collector: metrics.NewCollectorSized(cfg.M, len(w.Jobs)),
	}
	maxID := 0
	for _, j := range w.Jobs {
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	if maxID < 4*len(w.Jobs)+1024 {
		s.completion = make([]simkit.Handle, maxID+1)
	} else {
		s.completionMap = make(map[int]simkit.Handle, len(w.Jobs))
	}
	if cfg.ProcessECC {
		s.proc = ecc.NewProcessor(cfg.MaxECCPerJob)
	}
	s.ctx = sched.Context{
		Machine:   s.mach,
		Batch:     s.batch,
		Dedicated: s.ded,
		Active:    s.active,
		StartFn:   s.start,
	}
	s.arriveH = s.arriveEv
	s.completeH = s.completeEv
	s.commandH = s.commandEv

	// Clone jobs (quantizing sizes to the machine unit) and schedule the
	// arrival stream. One backing slice holds every clone; events carry
	// pointers into it.
	clones := make([]job.Job, len(w.Jobs))
	for i, orig := range w.Jobs {
		clones[i] = *orig
		j := &clones[i]
		q, err := s.mach.Quantize(j.Size)
		if err != nil {
			return nil, fmt.Errorf("engine: job %d: %v", j.ID, err)
		}
		j.Size = q
		s.eng.AtArg(j.Arrival, s.arriveH, j)
	}
	cmds := make([]cwf.Command, len(w.Commands))
	copy(cmds, w.Commands)
	for i := range cmds {
		s.eng.AtArg(cmds[i].Issue, s.commandH, &cmds[i])
	}

	// Main loop: drain each instant's events, then schedule to fixed point.
	for {
		if _, ok := s.eng.StepTimestamp(); !ok {
			break
		}
		if err := s.scheduleInstant(); err != nil {
			return nil, err
		}
		if cfg.Contiguous {
			if w := s.mach.FragmentedWaste(); w > s.peakWaste {
				s.peakWaste = w
			}
		}
		if cfg.Paranoid {
			if err := s.checkInvariants(); err != nil {
				return nil, err
			}
		}
	}

	if s.active.Len() != 0 || s.batch.Len() != 0 || s.ded.Len() != 0 {
		return nil, fmt.Errorf("engine: drained event queue with %d running, %d batch-queued, %d dedicated-queued jobs (scheduler deadlock)",
			s.active.Len(), s.batch.Len(), s.ded.Len())
	}

	res := &Result{
		Summary:              s.collector.Summary(),
		DroppedECC:           s.dropped,
		Events:               s.eng.Dispatched(),
		Cycles:               s.cycles,
		Migrations:           s.mach.Migrations(),
		FragmentedRejections: s.fragRejects,
		PeakFragmentedWaste:  s.peakWaste,
	}
	if s.proc != nil {
		res.ECC = s.proc.Stats
	}
	return res, nil
}

// checkInvariants verifies, at the end of an instant, the machine's
// internal consistency and the paper's Notations-box orderings: W^d sorted
// by requested start, A sorted by residual (kill-by) time, W^b FIFO by
// arrival after any rigid prefix, and the machine's used count matching the
// active list.
func (s *state) checkInvariants() error {
	if err := s.mach.CheckInvariants(); err != nil {
		return err
	}
	if used := s.active.UsedProcessors(); used != s.mach.Used() {
		return fmt.Errorf("engine: active list holds %d procs, machine says %d", used, s.mach.Used())
	}
	ded := s.ded.Jobs()
	for i := 1; i < len(ded); i++ {
		if ded[i-1].ReqStart > ded[i].ReqStart {
			return fmt.Errorf("engine: dedicated queue unsorted at %d", i)
		}
	}
	act := s.active.Jobs()
	for i := 1; i < len(act); i++ {
		if act[i-1].EndTime > act[i].EndTime {
			return fmt.Errorf("engine: active list unsorted at %d", i)
		}
	}
	batch := s.batch.Jobs()
	i := 0
	for i < len(batch) && batch[i].Rigid {
		i++
	}
	for k := i + 1; k < len(batch); k++ {
		if batch[k-1].Rigid {
			return fmt.Errorf("engine: rigid job %d behind non-rigid work", batch[k-1].ID)
		}
		if batch[k-1].Arrival > batch[k].Arrival {
			return fmt.Errorf("engine: batch queue not FIFO at %d", k)
		}
	}
	for _, j := range act {
		if j.State != job.Running {
			return fmt.Errorf("engine: job %d in active list with state %v", j.ID, j.State)
		}
	}
	return nil
}

// scheduleInstant re-invokes the policy until it makes no progress.
func (s *state) scheduleInstant() error {
	for iter := 0; ; iter++ {
		if iter >= s.cfg.MaxCyclesPerInstant {
			return fmt.Errorf("engine: scheduler %s made progress for %d consecutive cycles at t=%d (livelock)",
				s.cfg.Scheduler.Name(), iter, s.eng.Now())
		}
		s.ctx.Now = s.eng.Now()
		s.ctx.Progress = false
		s.ctx.Starts = 0
		s.cfg.Scheduler.Schedule(&s.ctx)
		s.cycles++
		if !s.ctx.Progress {
			return nil
		}
	}
}

// debugf writes one event line to the debug log. Callers must check
// debugging() first: a variadic call boxes its arguments at the call site,
// which would put per-event allocations on the hot path even with no log
// attached.
func (s *state) debugf(format string, args ...any) {
	fmt.Fprintf(s.cfg.DebugLog, format+"\n", args...)
}

// debugging reports whether a debug log is attached.
func (s *state) debugging() bool { return s.cfg.DebugLog != nil }

// arrive admits a job to its waiting queue.
func (s *state) arrive(j *job.Job, now int64) {
	j.State = job.Waiting
	j.LastSkip = -1
	if s.debugging() {
		s.debugf("t=%d arrive job=%d class=%s size=%d dur=%d", now, j.ID, j.Class, j.Size, j.Dur)
	}
	s.collector.JobArrived(j, now)
	if j.Class == job.Dedicated {
		s.ded.Push(j)
		if j.ReqStart > now {
			// Wake the scheduler at the rigid start time even if no other
			// event lands there.
			s.eng.At(j.ReqStart, noopWake)
		}
		return
	}
	s.batch.Push(j)
}

// start dispatches a waiting job; invoked by the policy via Context.Start.
// It returns false when a contiguous placement fails due to fragmentation
// (after a compaction retry if migration is enabled).
func (s *state) start(j *job.Job) bool {
	now := s.eng.Now()
	if err := s.mach.Alloc(j.ID, j.Size); err != nil {
		if !s.mach.Contiguous() || j.Size > s.mach.Free() {
			// A policy starting a job beyond free capacity is a bug, not a
			// recoverable condition.
			panic(fmt.Sprintf("engine: %s started job that does not fit: %v", s.cfg.Scheduler.Name(), err))
		}
		if s.cfg.Migrate {
			s.mach.Compact()
			err = s.mach.Alloc(j.ID, j.Size)
		}
		if err != nil {
			s.fragRejects++
			return false
		}
	}
	j.State = job.Running
	j.StartTime = now
	// EndTime is the kill-by time schedulers plan with (estimate-based);
	// the actual completion may come earlier (premature termination) and
	// can never come later (overrunning jobs are killed).
	j.EndTime = now + j.Dur
	s.setCompletion(j.ID, s.eng.AtArg(now+j.EffectiveRuntime(), s.completeH, j))
	s.active.Insert(j)
	if s.debugging() {
		s.debugf("t=%d start job=%d size=%d killby=%d wait=%d", now, j.ID, j.Size, j.EndTime, j.Wait())
	}
	s.collector.JobStarted(j, now)
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobStarted(j, now, s.mach.OwnedGroups(j.ID))
	}
	return true
}

// complete retires a running job at its kill-by time.
func (s *state) complete(j *job.Job, now int64) {
	if err := s.mach.Release(j.ID); err != nil {
		panic(fmt.Sprintf("engine: completing job %d: %v", j.ID, err))
	}
	s.active.Remove(j)
	s.clearCompletion(j.ID)
	j.State = job.Finished
	j.FinishTime = now
	if s.debugging() {
		s.debugf("t=%d finish job=%d ran=%d", now, j.ID, j.RunTime())
	}
	s.collector.JobFinished(j, now)
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobFinished(j, now)
	}
}

// command processes one Elastic Control Command event.
func (s *state) command(c cwf.Command, now int64) {
	if s.proc == nil {
		s.dropped++
		if s.debugging() {
			s.debugf("t=%d ecc job=%d %s %d dropped (no processor)", now, c.JobID, c.Type, c.Amount)
		}
		return
	}
	out := s.proc.Apply(c, s)
	if s.debugging() {
		s.debugf("t=%d ecc job=%d %s %d -> %s", now, c.JobID, c.Type, c.Amount, out)
	}
}

// --- ecc.Target implementation -------------------------------------------

// Now implements ecc.Target.
func (s *state) Now() int64 { return s.eng.Now() }

// FindWaiting implements ecc.Target.
func (s *state) FindWaiting(id int) *job.Job {
	if j := s.batch.Find(id); j != nil {
		return j
	}
	return s.ded.Find(id)
}

// FindRunning implements ecc.Target.
func (s *state) FindRunning(id int) *job.Job { return s.active.Find(id) }

// RetimeRunning implements ecc.Target: re-sort the active list and move the
// completion event to the new effective termination time (the actual
// runtime capped by the mutated kill-by time).
func (s *state) RetimeRunning(j *job.Job) {
	now := s.eng.Now()
	if j.EndTime < now {
		j.EndTime = now
	}
	s.active.Resort()
	s.eng.Cancel(s.getCompletion(j.ID))
	at := j.StartTime + j.EffectiveRuntime()
	if at < now {
		at = now
	}
	s.setCompletion(j.ID, s.eng.AtArg(at, s.completeH, j))
}

// ResizeRunning implements ecc.Target.
func (s *state) ResizeRunning(j *job.Job, newSize int) error {
	delta := newSize - j.Size
	if err := s.mach.Resize(j.ID, newSize); err != nil {
		return err
	}
	j.Size = newSize
	s.collector.SizeChanged(delta, s.eng.Now())
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobResized(j, s.eng.Now(), newSize)
	}
	return nil
}

// MachineTotal implements ecc.Target.
func (s *state) MachineTotal() int { return s.mach.Total() }

// MachineUnit implements ecc.Target.
func (s *state) MachineUnit() int { return s.mach.Unit() }
