// Package engine runs one scheduling simulation: it feeds a CWF workload
// through the event kernel, maintains the paper's queues (W^b, W^d, A) and
// the machine, invokes the scheduling policy at every event instant until a
// fixed point, and applies Elastic Control Commands through the ECC
// processor for -E algorithm variants.
//
// The run lifecycle is a first-class Session: New(cfg) builds an empty
// simulation, Load seeds it with a workload, Step/RunUntil/Run advance it
// one instant, to a deadline, or to completion, Inject/InjectCommand admit
// work online, Snapshot/Restore capture and reinstate the complete
// simulation state, and Result reports the measured outcome. Run (the
// package function) composes them into the one-shot execution the
// experiment sweeps use.
//
// This is the role the GridSim + ALEA pair plays in the paper's Java
// framework (Figure 3).
package engine

import (
	"errors"
	"fmt"
	"io"

	"elastisched/internal/cwf"
	"elastisched/internal/ecc"
	"elastisched/internal/fault"
	"elastisched/internal/job"
	"elastisched/internal/machine"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
	"elastisched/internal/simkit"
)

// Config describes one run.
type Config struct {
	// M is the machine size in processors; Unit the allocation quantum.
	M, Unit int
	// Scheduler is the policy under test. A fresh instance per run: policies
	// carry scratch state and are not safe to share across runs.
	Scheduler sched.Scheduler
	// ProcessECC attaches the ECC processor (the scheduler's -E variant).
	// When false, commands in the workload are dropped and counted.
	ProcessECC bool
	// MaxECCPerJob caps commands per job (0 = unlimited).
	MaxECCPerJob int
	// Paranoid verifies machine invariants at every instant (slow; tests).
	Paranoid bool
	// MaxCyclesPerInstant bounds the scheduler fixed-point loop; exceeding
	// it means the policy livelocked. 0 uses a generous default.
	MaxCyclesPerInstant int
	// Observer, when non-nil, receives placement events (dispatches,
	// completions, resizes) — e.g. a trace.Recorder for Gantt rendering.
	// Observers are not part of snapshots: a restored session reports only
	// post-restore events to its observer.
	Observer Observer
	// Contiguous requires every allocation to be a contiguous node-group
	// run (BlueGene-style partitioning, Section II): fragmentation can
	// then block capacity-feasible placements.
	Contiguous bool
	// Migrate enables on-the-fly defragmentation (Krevat et al.): when a
	// contiguous placement fails, running jobs are compacted toward group
	// zero and the placement retried.
	Migrate bool
	// DebugLog, when non-nil, receives one line per simulation event
	// (arrival, dispatch, completion, ECC) — the scheduler-debugging
	// trace. Slows the run; for tooling and tests.
	DebugLog io.Writer
	// Prevalidated promises the caller already ran w.Validate(M)
	// successfully, skipping re-validation. Set by sweep drivers that replay
	// one validated workload under many algorithms.
	Prevalidated bool
	// Faults, when non-nil, enables fault injection: node groups fail and
	// recover per the configured trace or MTBF/MTTR model, killing the jobs
	// that hold them; the retry policy decides what happens to the victims.
	Faults *FaultConfig
	// Malleable enables true runtime elasticity for jobs carrying processor
	// bounds: resizes become work-conserving (the remaining work in
	// proc-seconds is invariant, so a shrink stretches the remaining runtime
	// and a grow compresses it), Malleable schedulers get their per-cycle
	// resize proposals applied, the fault path shrinks malleable victims
	// onto their surviving node groups instead of killing them, and
	// contiguous grows fall back to Compact-then-retry. Off by default:
	// resizes then keep the legacy semantics (allocation changes, runtime
	// does not), which preserves every golden result byte-for-byte.
	Malleable bool
	// ResizeOverhead is the reconfiguration cost in seconds added to a
	// job's remaining runtime on every work-conserving resize (data
	// redistribution, checkpoint/restart of the reshaped layout). Only
	// meaningful with Malleable.
	ResizeOverhead int64
	// ExportSamples attaches the run's per-job sample vectors (waits,
	// bounded slowdowns, per-job arrival/finish points, busy steps) to
	// Result.Samples. Off by default: the vectors cost O(jobs) extra
	// memory per run and single-run paths never read them. The sharded
	// dispatcher enables it per cluster to compute exact global order
	// statistics in the merge.
	ExportSamples bool
}

// validate rejects unusable machine geometry up front, with the Unit
// default already applied: clear errors here beat panics from deep inside
// the machine layer on the first allocation.
func (cfg *Config) validate() error {
	if cfg.Scheduler == nil {
		return errors.New("engine: no scheduler configured")
	}
	if cfg.M <= 0 {
		return fmt.Errorf("engine: machine size %d must be positive", cfg.M)
	}
	if cfg.Unit > cfg.M {
		return fmt.Errorf("engine: allocation unit %d exceeds machine size %d", cfg.Unit, cfg.M)
	}
	if cfg.M%cfg.Unit != 0 {
		return fmt.Errorf("engine: allocation unit %d does not divide machine size %d", cfg.Unit, cfg.M)
	}
	if cfg.ResizeOverhead < 0 {
		return fmt.Errorf("engine: negative resize overhead %d", cfg.ResizeOverhead)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(); err != nil {
			return err
		}
		if cfg.Faults.Checkpoint == fault.CheckpointOnResize && !cfg.Malleable {
			return fmt.Errorf("engine: fault config: %w", ErrOnResizeNeedsMalleable)
		}
		if cfg.Faults.Trace != nil {
			groups := cfg.M / cfg.Unit
			if err := cfg.Faults.Trace.Validate(groups); err != nil {
				return fmt.Errorf("engine: fault trace: %w", err)
			}
		}
	}
	return nil
}

// Observer receives placement events during a run.
type Observer interface {
	// JobStarted fires at dispatch; groups are the node groups allocated.
	JobStarted(j *job.Job, now int64, groups []int)
	// JobFinished fires when the job leaves the machine.
	JobFinished(j *job.Job, now int64)
	// JobResized fires after the job's allocation changed, from oldSize to
	// newSize processors. auto distinguishes system-initiated resizes
	// (scheduler proposals, fault-path shrinks) from client EP/RP commands.
	JobResized(j *job.Job, now int64, oldSize, newSize int, auto bool)
	// JobKilled fires when a node-group failure kills the running job. If
	// the retry policy requeues it, a later JobStarted opens its next
	// attempt.
	JobKilled(j *job.Job, now int64)
}

// Result is the outcome of a run.
type Result struct {
	Summary metrics.Summary
	ECC     ecc.Stats
	// DroppedECC counts commands ignored because ProcessECC was off.
	DroppedECC int
	// Events is the number of kernel events dispatched; Cycles the number
	// of scheduler invocations.
	Events uint64
	Cycles uint64
	// Migrations counts jobs moved by defragmentation (Migrate mode);
	// FragmentedRejections counts placements refused due to fragmentation.
	Migrations           int
	FragmentedRejections int
	// PeakFragmentedWaste is the largest free-but-unusable capacity seen at
	// any instant (free processors beyond the longest contiguous run;
	// always 0 on scatter machines).
	PeakFragmentedWaste int
	// Samples holds the per-job sample vectors when Config.ExportSamples
	// is set, nil otherwise. See metrics.Samples for the vectors and their
	// aliasing contract.
	Samples *metrics.Samples
}

// Session is a live, incrementally driven simulation. The zero value is
// not usable; use New, then Load (or Restore, or Inject) to admit work.
//
// A Session is single-goroutine: it must not be shared without external
// synchronization. Snapshots are only taken between steps — every public
// method returns at an instant boundary, so any point the caller can
// observe is a valid snapshot point.
type Session struct {
	cfg Config
	eng *simkit.Engine

	mach   *machine.Machine
	batch  *job.BatchQueue
	ded    *job.DedicatedQueue
	active *job.ActiveList

	// jobs lists every job this session owns — Load clones plus injected
	// jobs — in admission order. Snapshots reference jobs by index into it.
	jobs []*job.Job
	// ids dedups injected job IDs; built lazily on the first Inject so the
	// sweep hot path (Load + Run only) never allocates it.
	ids map[int]bool
	// absorbed marks jobs admitted by AbsorbAt with an arrival in the past
	// (the sharded dispatcher's steal path): they enter the batch queue out
	// of arrival order by design, so the paranoid FIFO check skips them.
	absorbed map[int]bool

	// completion maps job ID -> pending completion event. Generated and
	// trace job IDs are dense small integers, so the common representation
	// is a flat slice; completionMap is the fallback for sparse ID spaces.
	completion    []simkit.Handle
	completionMap map[int]simkit.Handle
	collector     *metrics.Collector
	proc          *ecc.Processor
	dropped       int
	cycles        uint64
	fragRejects   int
	peakWaste     int

	// ctx is the scheduler context, built once and reset per cycle; its
	// scratch buffers (the DP candidate window) survive across cycles.
	ctx sched.Context
	// st is non-nil when the policy accepts state deltas (sched.Stateful):
	// the engine then reports starts, completions, ECC mutations and queue
	// changes so the policy maintains its caches incrementally instead of
	// rebuilding them every cycle. Armed via ResetDeltas in Load/Restore.
	st sched.Stateful
	// malleable is non-nil when Config.Malleable is on and the policy emits
	// resize proposals (sched.Malleable); scheduleInstant then collects and
	// applies proposals after every Schedule call.
	malleable sched.Malleable
	// arriveH/completeH/commandH/faultH/ckptH are the shared event
	// callbacks, bound once so the hot paths schedule through simkit.AtArg
	// without allocating a closure per event. ckptH is bound only under a
	// timer-driven checkpoint policy (periodic or daly).
	arriveH, completeH, commandH, faultH, ckptH simkit.ArgHandler
	// ftrace is the resolved fault trace (scripted or sampled at Load);
	// nil when fault injection is off.
	ftrace *fault.Trace
	// ckpt maps job ID -> pending checkpoint event of the running attempt;
	// non-nil exactly when ckptH is bound. ckptEvery is the resolved base
	// (single-group) wall interval between a job's checkpoints; daly jobs
	// spanning several node groups shorten it per job (ckptIntervalFor).
	ckpt      map[int]simkit.Handle
	ckptEvery int64

	// loaded latches after Load or Restore; failed latches the first
	// unrecoverable error (livelock), after which the session is dead.
	loaded bool
	failed error
}

// noopWake is the dedicated-start wake event: it exists only to force a
// scheduler cycle at the requested start instant.
func noopWake(int64) {}

func (s *Session) arriveEv(now int64, arg any)   { s.arrive(arg.(*job.Job), now) }
func (s *Session) completeEv(now int64, arg any) { s.complete(arg.(*job.Job), now) }
func (s *Session) commandEv(now int64, arg any)  { s.command(*arg.(*cwf.Command), now) }

// setCompletion records the pending completion event for a job ID.
func (s *Session) setCompletion(id int, h simkit.Handle) {
	if s.completion != nil {
		s.completion[id] = h
		return
	}
	s.completionMap[id] = h
}

// getCompletion returns the recorded completion handle. The zero Handle
// comes back for IDs with no pending completion; callers may pass it
// straight to simkit's Cancel, which documents cancelling a zero or stale
// handle as a no-op.
func (s *Session) getCompletion(id int) simkit.Handle {
	if s.completion != nil {
		return s.completion[id]
	}
	return s.completionMap[id]
}

// clearCompletion drops the record once the job has completed.
func (s *Session) clearCompletion(id int) {
	if s.completion != nil {
		s.completion[id] = simkit.Handle{}
		return
	}
	delete(s.completionMap, id)
}

// sizeCompletionTable picks the completion-table representation for the
// given maximum job ID over n jobs: a flat slice for dense ID spaces, the
// map fallback for sparse ones.
func (s *Session) sizeCompletionTable(maxID, n int) {
	if maxID < 4*n+1024 {
		s.completion = make([]simkit.Handle, maxID+1)
		s.completionMap = nil
	} else {
		s.completion = nil
		s.completionMap = make(map[int]simkit.Handle, n)
	}
}

// ensureCompletionCapacity grows the completion table to admit an injected
// job ID, migrating from the flat slice to the map when the ID space turns
// sparse.
func (s *Session) ensureCompletionCapacity(id int) {
	if s.completion == nil {
		return // map handles any ID
	}
	if id < len(s.completion) {
		return
	}
	if id < 4*(len(s.jobs)+1)+1024 {
		// append gives amortized growth for sequential online IDs.
		s.completion = append(s.completion, make([]simkit.Handle, id+1-len(s.completion))...)
		return
	}
	m := make(map[int]simkit.Handle, len(s.jobs)+1)
	for i, h := range s.completion {
		if h.Scheduled() {
			m[i] = h
		}
	}
	s.completion = nil
	s.completionMap = m
}

// New builds an empty session for the configuration: machine and queues
// ready, clock at zero, no work admitted. It validates the configuration
// (scheduler present, coherent machine geometry) up front.
func New(cfg Config) (*Session, error) {
	if cfg.Unit <= 0 {
		cfg.Unit = 1
	}
	if cfg.MaxCyclesPerInstant <= 0 {
		cfg.MaxCyclesPerInstant = 1 << 20
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	newMachine := machine.New
	if cfg.Contiguous {
		newMachine = machine.NewContiguous
	}
	mach := newMachine(cfg.M, cfg.Unit)
	if cfg.Contiguous && cfg.Migrate {
		mach.EnableMigration()
	}
	s := &Session{
		cfg:       cfg,
		eng:       simkit.New(),
		mach:      mach,
		batch:     job.NewBatchQueue(),
		ded:       job.NewDedicatedQueue(),
		active:    job.NewActiveList(),
		collector: metrics.NewCollector(cfg.M),
		// Empty but non-nil: the dense representation, grown on demand by
		// injections; Load and Restore size it for their job population.
		completion: make([]simkit.Handle, 0),
	}
	if cfg.ProcessECC {
		s.proc = ecc.NewProcessor(cfg.MaxECCPerJob)
	}
	s.ctx = sched.Context{
		Machine:   s.mach,
		Batch:     s.batch,
		Dedicated: s.ded,
		Active:    s.active,
		StartFn:   s.start,
	}
	if st, ok := cfg.Scheduler.(sched.Stateful); ok {
		s.st = st
		// Arm the delta feed immediately: sessions fed purely by Inject (the
		// epoch dispatcher's path) never call Load, which is where the feed
		// was armed before. Load re-arms, so the double call is harmless.
		s.st.ResetDeltas()
	}
	if cfg.ExportSamples {
		// Same reasoning: Load rebuilds the collector and re-arms it, but an
		// Inject-fed session keeps this one.
		s.collector.RetainSamples()
	}
	if cfg.Malleable {
		if m, ok := cfg.Scheduler.(sched.Malleable); ok {
			s.malleable = m
		}
	}
	s.arriveH = s.arriveEv
	s.completeH = s.completeEv
	s.commandH = s.commandEv
	if cfg.Faults != nil {
		// Bound lazily: fault-free runs never dispatch a fault event, and a
		// fault snapshot only restores into a fault-enabled config.
		s.faultH = s.faultEv
		if ivl := cfg.Faults.ResolvedCheckpointInterval(); ivl > 0 {
			s.ckptH = s.ckptEv
			s.ckpt = make(map[int]simkit.Handle)
			s.ckptEvery = ivl
		}
	}
	return s, nil
}

// quantizeBounds rounds a malleable job's processor bounds onto the
// allocation grid — MinProcs up, MaxProcs down — then reconciles them with
// the (already quantized) size, which may itself have been rounded past a
// bound. Validate guaranteed MinProcs <= Size <= MaxProcs in raw units;
// the same holds in quantized units afterwards.
func (s *Session) quantizeBounds(j *job.Job) {
	if j.MaxProcs <= 0 {
		return
	}
	unit := s.mach.Unit()
	j.MinProcs = ((j.MinProcs + unit - 1) / unit) * unit
	j.MaxProcs = (j.MaxProcs / unit) * unit
	if j.MinProcs > j.Size {
		j.MinProcs = j.Size
	}
	if j.MaxProcs < j.Size {
		j.MaxProcs = j.Size
	}
}

// pristine reports whether the session has neither admitted work nor
// dispatched events — the only state Load and Restore accept.
func (s *Session) pristine() bool {
	return !s.loaded && len(s.jobs) == 0 && s.eng.Dispatched() == 0 && s.eng.Pending() == 0
}

// Load seeds the session with a workload. The workload is not mutated:
// jobs are cloned first, so the same workload can be replayed under every
// algorithm of a comparison. Load may be called once, on a fresh session.
func (s *Session) Load(w *cwf.Workload) error {
	if !s.pristine() {
		return errors.New("engine: Load on a session that already has work")
	}
	if !s.cfg.Prevalidated {
		if err := w.Validate(s.cfg.M); err != nil {
			return err
		}
	}
	if w.NumDedicated() > 0 && !s.cfg.Scheduler.Heterogeneous() {
		return fmt.Errorf("engine: workload has dedicated jobs but %s is batch-only", s.cfg.Scheduler.Name())
	}

	s.collector = metrics.NewCollectorSized(s.cfg.M, len(w.Jobs))
	if s.cfg.ExportSamples {
		s.collector.RetainSamples()
	}
	maxID := 0
	for _, j := range w.Jobs {
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	s.sizeCompletionTable(maxID, len(w.Jobs))

	// Clone jobs (quantizing sizes to the machine unit) and schedule the
	// arrival stream. One backing slice holds every clone; events carry
	// pointers into it.
	clones := make([]job.Job, len(w.Jobs))
	s.jobs = make([]*job.Job, 0, len(w.Jobs))
	for i, orig := range w.Jobs {
		clones[i] = *orig
		j := &clones[i]
		q, err := s.mach.Quantize(j.Size)
		if err != nil {
			return fmt.Errorf("engine: job %d: %v", j.ID, err)
		}
		j.Size = q
		s.quantizeBounds(j)
		s.jobs = append(s.jobs, j)
		s.eng.AtArg(j.Arrival, s.arriveH, j)
	}
	cmds := make([]cwf.Command, len(w.Commands))
	copy(cmds, w.Commands)
	for i := range cmds {
		s.eng.AtArg(cmds[i].Issue, s.commandH, &cmds[i])
	}
	if s.cfg.Faults != nil {
		// Default sampling horizon: the workload's span under estimates.
		var horizon int64
		for _, j := range s.jobs {
			if end := j.Arrival + j.Dur; end > horizon {
				horizon = end
			}
		}
		if err := s.loadFaults(horizon); err != nil {
			return err
		}
	}
	if s.st != nil {
		s.st.ResetDeltas()
	}
	s.loaded = true
	return nil
}

// Inject admits one job online, at or after the current instant — the
// entry point a serving layer feeds live submissions through. The job is
// cloned and its size quantized; the caller's struct is not retained. The
// injected arrival participates in scheduling exactly like a loaded one.
func (s *Session) Inject(j *job.Job) error {
	if s.failed != nil {
		return s.failed
	}
	if err := j.Validate(s.cfg.M); err != nil {
		return err
	}
	if j.Class == job.Dedicated && !s.cfg.Scheduler.Heterogeneous() {
		return fmt.Errorf("engine: job %d is dedicated but %s is batch-only", j.ID, s.cfg.Scheduler.Name())
	}
	if j.Arrival < s.eng.Now() {
		return fmt.Errorf("engine: inject job %d with arrival %d before now %d", j.ID, j.Arrival, s.eng.Now())
	}
	if s.ids == nil {
		s.ids = make(map[int]bool, len(s.jobs)+1)
		for _, ex := range s.jobs {
			s.ids[ex.ID] = true
		}
	}
	if s.ids[j.ID] {
		return fmt.Errorf("engine: inject duplicate job ID %d", j.ID)
	}

	clone := new(job.Job)
	*clone = *j
	q, err := s.mach.Quantize(clone.Size)
	if err != nil {
		return fmt.Errorf("engine: job %d: %v", clone.ID, err)
	}
	clone.Size = q
	s.quantizeBounds(clone)
	s.ensureCompletionCapacity(clone.ID)
	s.jobs = append(s.jobs, clone)
	s.ids[clone.ID] = true
	s.eng.AtArg(clone.Arrival, s.arriveH, clone)
	return nil
}

// InjectCommand admits one Elastic Control Command online, issued at or
// after the current instant. A command referencing a job this session has
// never seen is applied anyway and accounted as ignored by the processor,
// matching how a stale command in a workload file is treated.
func (s *Session) InjectCommand(c cwf.Command) error {
	if s.failed != nil {
		return s.failed
	}
	if !c.Type.IsECC() {
		return fmt.Errorf("engine: inject %v which is not an ECC", c)
	}
	if c.Amount <= 0 {
		return fmt.Errorf("engine: inject %v with non-positive amount", c)
	}
	if c.Issue < s.eng.Now() {
		return fmt.Errorf("engine: inject %v with issue %d before now %d", c, c.Issue, s.eng.Now())
	}
	cp := new(cwf.Command)
	*cp = c
	s.eng.AtArg(cp.Issue, s.commandH, cp)
	return nil
}

// Step advances the simulation by exactly one instant: it dispatches every
// event sharing the earliest pending timestamp, then runs the scheduler to
// its fixed point there. It reports false when no events remain (the
// simulation is complete) or an error is latched.
func (s *Session) Step() (bool, error) {
	if s.failed != nil {
		return false, s.failed
	}
	if _, ok := s.eng.StepTimestamp(); !ok {
		return false, nil
	}
	if err := s.afterInstant(); err != nil {
		return false, err
	}
	return true, nil
}

// RunUntil advances the simulation through every instant with timestamp at
// most deadline, then stops with later events still pending. The clock is
// left at the last dispatched instant (it does not jump to the deadline).
func (s *Session) RunUntil(deadline int64) error {
	if s.failed != nil {
		return s.failed
	}
	for {
		t, ok := s.eng.PeekTime()
		if !ok || t > deadline {
			return nil
		}
		s.eng.StepTimestamp()
		if err := s.afterInstant(); err != nil {
			return err
		}
	}
}

// Run advances the simulation until no events remain.
func (s *Session) Run() error {
	if s.failed != nil {
		return s.failed
	}
	for {
		if _, ok := s.eng.StepTimestamp(); !ok {
			return nil
		}
		if err := s.afterInstant(); err != nil {
			return err
		}
	}
}

// afterInstant completes one instant after its events drained: scheduler
// fixed point, fragmentation accounting, paranoid invariant checks.
func (s *Session) afterInstant() error {
	if err := s.scheduleInstant(); err != nil {
		s.failed = err
		return err
	}
	if s.cfg.Contiguous {
		if w := s.mach.FragmentedWaste(); w > s.peakWaste {
			s.peakWaste = w
		}
	}
	if s.cfg.Paranoid {
		if err := s.checkInvariants(); err != nil {
			s.failed = err
			return err
		}
	}
	return nil
}

// Now returns the current simulated time (also the ecc.Target clock).
func (s *Session) Now() int64 { return s.eng.Now() }

// NextEventTime returns the timestamp of the next pending event, if any.
func (s *Session) NextEventTime() (int64, bool) { return s.eng.PeekTime() }

// Pending returns the number of scheduled future events.
func (s *Session) Pending() int { return s.eng.Pending() }

// Waiting returns the number of queued (batch plus dedicated) jobs.
func (s *Session) Waiting() int { return s.batch.Len() + s.ded.Len() }

// Running returns the number of jobs currently on the machine.
func (s *Session) Running() int { return s.active.Len() }

// Done reports whether the simulation has drained every event.
func (s *Session) Done() bool { return s.failed == nil && s.eng.Pending() == 0 }

// Result reports the metrics accumulated so far. It may be called at any
// instant boundary: mid-run it digests the partial history; once the event
// queue has drained it is the run's final outcome, and jobs still queued
// or running at that point are reported as a scheduler deadlock error.
func (s *Session) Result() (*Result, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	if s.eng.Pending() == 0 && (s.active.Len() != 0 || s.batch.Len() != 0 || s.ded.Len() != 0) {
		return nil, fmt.Errorf("engine: drained event queue with %d running, %d batch-queued, %d dedicated-queued jobs (scheduler deadlock)",
			s.active.Len(), s.batch.Len(), s.ded.Len())
	}
	res := &Result{
		Summary:              s.collector.Summary(),
		DroppedECC:           s.dropped,
		Events:               s.eng.Dispatched(),
		Cycles:               s.cycles,
		Migrations:           s.mach.Migrations(),
		FragmentedRejections: s.fragRejects,
		PeakFragmentedWaste:  s.peakWaste,
	}
	if s.proc != nil {
		res.ECC = s.proc.Stats
	}
	if s.cfg.ExportSamples {
		res.Samples = s.collector.ExportSamples()
	}
	return res, nil
}

// Run executes the workload under the configuration and returns the
// measured result: New + Load + Session.Run + Result. The workload is not
// mutated, so the same workload can be replayed under every algorithm of a
// comparison.
func Run(w *cwf.Workload, cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Load(w); err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return s.Result()
}

// checkInvariants verifies, at the end of an instant, the machine's
// internal consistency and the paper's Notations-box orderings: W^d sorted
// by requested start, A sorted by residual (kill-by) time, W^b FIFO by
// arrival after any rigid prefix, and the machine's used count matching the
// active list.
func (s *Session) checkInvariants() error {
	if err := s.mach.CheckInvariants(); err != nil {
		return err
	}
	if used := s.active.UsedProcessors(); used != s.mach.Used() {
		return fmt.Errorf("engine: active list holds %d procs, machine says %d", used, s.mach.Used())
	}
	ded := s.ded.Jobs()
	for i := 1; i < len(ded); i++ {
		if ded[i-1].ReqStart > ded[i].ReqStart {
			return fmt.Errorf("engine: dedicated queue unsorted at %d", i)
		}
	}
	act := s.active.Jobs()
	for i := 1; i < len(act); i++ {
		if act[i-1].EndTime > act[i].EndTime {
			return fmt.Errorf("engine: active list unsorted at %d", i)
		}
	}
	batch := s.batch.Jobs()
	i := 0
	for i < len(batch) && batch[i].Rigid {
		i++
	}
	for k := i + 1; k < len(batch); k++ {
		if batch[k-1].Rigid {
			return fmt.Errorf("engine: rigid job %d behind non-rigid work", batch[k-1].ID)
		}
		if batch[k-1].Arrival > batch[k].Arrival &&
			!s.absorbed[batch[k-1].ID] && !s.absorbed[batch[k].ID] {
			// Absorbed (stolen) jobs keep their original arrival for wait
			// accounting but queue FIFO by admission instant, so pairs
			// involving one are exempt from the arrival-order check.
			return fmt.Errorf("engine: batch queue not FIFO at %d", k)
		}
	}
	for _, j := range act {
		if j.State != job.Running {
			return fmt.Errorf("engine: job %d in active list with state %v", j.ID, j.State)
		}
	}
	return nil
}

// scheduleInstant re-invokes the policy until it makes no progress.
func (s *Session) scheduleInstant() error {
	for iter := 0; ; iter++ {
		if iter >= s.cfg.MaxCyclesPerInstant {
			return fmt.Errorf("engine: scheduler %s made progress for %d consecutive cycles at t=%d (livelock)",
				s.cfg.Scheduler.Name(), iter, s.eng.Now())
		}
		s.ctx.Now = s.eng.Now()
		s.ctx.Progress = false
		s.ctx.Starts = 0
		s.cfg.Scheduler.Schedule(&s.ctx)
		s.cycles++
		if s.malleable != nil {
			// Apply the policy's resize proposals through the unified
			// pipeline. An applied proposal is progress (the freed or grown
			// capacity changes what Schedule can do); an unapplicable one
			// (contiguous fragmentation, a group failure racing the
			// proposal) is dropped without progress so the fixed-point loop
			// still terminates.
			for _, p := range s.malleable.ProposeResizes(&s.ctx) {
				if p.Job == nil || p.NewSize == p.Job.Size {
					continue
				}
				if err := s.applyResize(p.Job, p.NewSize, true); err == nil {
					s.ctx.Progress = true
				}
			}
		}
		if !s.ctx.Progress {
			return nil
		}
	}
}

// debugf writes one event line to the debug log. Callers must check
// debugging() first: a variadic call boxes its arguments at the call site,
// which would put per-event allocations on the hot path even with no log
// attached.
func (s *Session) debugf(format string, args ...any) {
	fmt.Fprintf(s.cfg.DebugLog, format+"\n", args...)
}

// debugging reports whether a debug log is attached.
func (s *Session) debugging() bool { return s.cfg.DebugLog != nil }

// arrive admits a job to its waiting queue.
func (s *Session) arrive(j *job.Job, now int64) {
	j.State = job.Waiting
	j.LastSkip = -1
	if s.debugging() {
		s.debugf("t=%d arrive job=%d class=%s size=%d dur=%d", now, j.ID, j.Class, j.Size, j.Dur)
	}
	s.collector.JobArrived(j, now)
	if s.st != nil {
		s.st.JobArrived(j, now)
	}
	if j.Class == job.Dedicated {
		s.ded.Push(j)
		if j.ReqStart > now {
			// Wake the scheduler at the rigid start time even if no other
			// event lands there.
			s.eng.At(j.ReqStart, noopWake)
		}
		return
	}
	if j.Rigid {
		// A failure victim resubmitted by the retry policy re-enters at the
		// head of the batch queue. Fresh arrivals never carry Rigid.
		s.batch.PushFront(j)
		return
	}
	s.batch.Push(j)
}

// start dispatches a waiting job; invoked by the policy via Context.Start.
// It returns false when a contiguous placement fails due to fragmentation
// (after a compaction retry if migration is enabled).
func (s *Session) start(j *job.Job) bool {
	now := s.eng.Now()
	if err := s.mach.Alloc(j.ID, j.Size); err != nil {
		if !s.mach.Contiguous() || j.Size > s.mach.Free() {
			// A policy starting a job beyond free capacity is a bug, not a
			// recoverable condition.
			panic(fmt.Sprintf("engine: %s started job that does not fit: %v", s.cfg.Scheduler.Name(), err))
		}
		if s.cfg.Migrate {
			s.mach.Compact()
			err = s.mach.Alloc(j.ID, j.Size)
		}
		if err != nil {
			s.fragRejects++
			return false
		}
	}
	j.State = job.Running
	j.StartTime = now
	// EndTime is the kill-by time schedulers plan with (estimate-based);
	// the actual completion may come earlier (premature termination) and
	// can never come later (overrunning jobs are killed).
	j.EndTime = now + j.Dur
	// Each attempt restarts its checkpoint clock: until one is taken, a
	// kill restarts this attempt from scratch.
	j.CkptAt = now
	s.setCompletion(j.ID, s.eng.AtArg(now+j.EffectiveRuntime(), s.completeH, j))
	s.scheduleFirstCheckpoint(j, now)
	s.active.Insert(j)
	if s.debugging() {
		s.debugf("t=%d start job=%d size=%d killby=%d wait=%d", now, j.ID, j.Size, j.EndTime, j.Wait())
	}
	s.collector.JobStarted(j, now)
	if s.st != nil {
		s.st.JobStarted(j, now)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobStarted(j, now, s.mach.OwnedGroups(j.ID))
	}
	return true
}

// complete retires a running job at its kill-by time.
func (s *Session) complete(j *job.Job, now int64) {
	if err := s.mach.Release(j.ID); err != nil {
		panic(fmt.Sprintf("engine: completing job %d: %v", j.ID, err))
	}
	s.active.Remove(j)
	s.clearCompletion(j.ID)
	s.cancelCheckpoint(j.ID)
	j.State = job.Finished
	j.FinishTime = now
	if s.debugging() {
		s.debugf("t=%d finish job=%d ran=%d", now, j.ID, j.RunTime())
	}
	s.collector.JobFinished(j, now)
	if s.st != nil {
		s.st.JobFinished(j, now)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobFinished(j, now)
	}
}

// command processes one Elastic Control Command event.
func (s *Session) command(c cwf.Command, now int64) {
	if s.proc == nil {
		s.dropped++
		if s.debugging() {
			s.debugf("t=%d ecc job=%d %s %d dropped (no processor)", now, c.JobID, c.Type, c.Amount)
		}
		return
	}
	out := s.proc.Apply(c, s)
	if s.debugging() {
		s.debugf("t=%d ecc job=%d %s %d -> %s", now, c.JobID, c.Type, c.Amount, out)
	}
}

// --- ecc.Target implementation -------------------------------------------

// FindWaiting implements ecc.Target.
func (s *Session) FindWaiting(id int) *job.Job {
	if j := s.batch.Find(id); j != nil {
		return j
	}
	return s.ded.Find(id)
}

// FindRunning implements ecc.Target.
func (s *Session) FindRunning(id int) *job.Job { return s.active.Find(id) }

// RetimeRunning implements ecc.Target: re-sort the active list and move the
// completion event to the new effective termination time (the actual
// runtime capped by the mutated kill-by time).
func (s *Session) RetimeRunning(j *job.Job, oldEnd int64) {
	now := s.eng.Now()
	if j.EndTime < now {
		j.EndTime = now
	}
	s.active.Resort()
	s.eng.Cancel(s.getCompletion(j.ID))
	at := j.StartTime + j.EffectiveRuntime()
	if at < now {
		at = now
	}
	s.setCompletion(j.ID, s.eng.AtArg(at, s.completeH, j))
	if s.st != nil {
		s.st.JobRetimed(j, oldEnd, now)
	}
}

// ResizeRunning implements ecc.Target: client EP/RP commands flow through
// the same applyResize pipeline as scheduler proposals and fault shrinks.
func (s *Session) ResizeRunning(j *job.Job, newSize int) error {
	return s.applyResize(j, newSize, false)
}

// applyResize is the single resize pipeline every initiator shares: it
// validates the request, reshapes the machine allocation (with a
// Compact-then-retry fallback for fragmented contiguous grows in Malleable
// mode), applies the work-conserving runtime rescale, and fans out the
// retime/resize deltas in the order the Stateful contract requires.
// auto marks system-initiated resizes (scheduler proposals), which are
// additionally held to the job's malleable bounds.
func (s *Session) applyResize(j *job.Job, newSize int, auto bool) error {
	oldSize := j.Size
	if newSize == oldSize {
		return nil
	}
	if auto {
		if j.Class != job.Batch || !j.Malleable() {
			return fmt.Errorf("engine: scheduler resize of non-malleable job %d", j.ID)
		}
		if newSize < j.MinProcs || newSize > j.MaxProcs {
			return fmt.Errorf("engine: scheduler resize of job %d to %d outside [%d, %d]",
				j.ID, newSize, j.MinProcs, j.MaxProcs)
		}
		if !s.mach.AllUp(j.ID) {
			return fmt.Errorf("engine: scheduler resize of job %d holding failed groups", j.ID)
		}
	}
	if err := s.mach.Resize(j.ID, newSize); err != nil {
		if !s.cfg.Malleable || !s.mach.Contiguous() || newSize <= oldSize ||
			newSize-oldSize > s.mach.Free() {
			return err
		}
		// A fragmented contiguous grow: compact the machine and retry once
		// (Compact is a no-op during an outage, so the retry may still fail).
		s.mach.Compact()
		if err := s.mach.Resize(j.ID, newSize); err != nil {
			return err
		}
	}
	s.finishResize(j, newSize, auto)
	return nil
}

// finishResize completes a resize whose machine half is already done: the
// work-conserving runtime rescale (Malleable mode), the completion retime,
// the metrics counters, and the delta fan-out. The fault path calls it
// directly after ShrinkDraining reshaped the allocation in place.
//
// Delta order matters: JobRetimed must fire while j.Size still holds the
// old allocation (stateful policies patch the changed end window at the
// current size), and JobResized after the size flips (they then patch the
// size delta over the final window).
func (s *Session) finishResize(j *job.Job, newSize int, auto bool) {
	now := s.eng.Now()
	oldSize := j.Size
	if s.cfg.Malleable {
		if rem := j.EndTime - now; rem > 0 {
			// Under the on-resize policy every applied resize doubles as a
			// checkpoint: reconfiguration already redistributes the job's
			// data, so only the checkpoint cost is charged on top of the
			// resize overhead, and the restart point moves here.
			var ckptCost int64
			onResizeCkpt := s.cfg.Faults != nil &&
				s.cfg.Faults.Checkpoint == fault.CheckpointOnResize && j.Class == job.Batch
			if onResizeCkpt {
				ckptCost = s.cfg.Faults.CheckpointCost
			}
			newRem := job.RescaleRemaining(rem, oldSize, newSize) + s.cfg.ResizeOverhead + ckptCost
			oldEnd := j.EndTime
			j.EndTime = now + newRem
			j.Dur = j.EndTime - j.StartTime
			if j.Actual > 0 {
				elapsed := now - j.StartTime
				if remAct := j.Actual - elapsed; remAct > 0 {
					j.Actual = elapsed + job.RescaleRemaining(remAct, oldSize, newSize) + s.cfg.ResizeOverhead + ckptCost
				}
			}
			s.RetimeRunning(j, oldEnd)
			s.collector.ResizeOverheadApplied(s.cfg.ResizeOverhead)
			if onResizeCkpt {
				j.CkptAt = now
				s.collector.CheckpointTaken(ckptCost, newSize)
			}
			if newSize < oldSize {
				s.collector.ProcsShrunk(float64(oldSize-newSize) * float64(rem))
			}
		}
	}
	j.Size = newSize
	s.collector.SizeChanged(newSize-oldSize, now)
	if auto {
		s.collector.SchedulerResized()
	}
	if s.debugging() {
		s.debugf("t=%d resize job=%d %d->%d auto=%v killby=%d", now, j.ID, oldSize, newSize, auto, j.EndTime)
	}
	if s.st != nil {
		s.st.JobResized(j, oldSize, now)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobResized(j, now, oldSize, newSize, auto)
	}
}

// TouchWaiting implements ecc.Target: a queued job's requirements changed
// in place, invalidating queue-derived scheduler caches.
func (s *Session) TouchWaiting(j *job.Job) {
	if s.st != nil {
		s.st.QueueChanged()
	}
}

// MachineTotal implements ecc.Target.
func (s *Session) MachineTotal() int { return s.mach.Total() }

// MachineUnit implements ecc.Target.
func (s *Session) MachineUnit() int { return s.mach.Unit() }
