package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/job"
	"elastisched/internal/machine"
	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

func batch(id, size int, dur, arr int64) *job.Job {
	return &job.Job{ID: id, Size: size, Dur: dur, Arrival: arr, ReqStart: -1, Class: job.Batch}
}

func ded(id, size int, dur, arr, start int64) *job.Job {
	return &job.Job{ID: id, Size: size, Dur: dur, Arrival: arr, ReqStart: start, Class: job.Dedicated}
}

func wl(jobs ...*job.Job) *cwf.Workload {
	w := &cwf.Workload{Jobs: jobs}
	w.Sort()
	return w
}

func mustRun(t *testing.T, w *cwf.Workload, cfg Config) *Result {
	t.Helper()
	if cfg.M == 0 {
		cfg.M = 320
	}
	if cfg.Unit == 0 {
		cfg.Unit = 32
	}
	cfg.Paranoid = true
	r, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleJobLifecycle(t *testing.T) {
	w := wl(batch(1, 160, 100, 0))
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{}})
	s := r.Summary
	if s.Jobs != 1 || s.MeanWait != 0 || s.MeanRun != 100 || s.Utilization != 0.5 {
		t.Errorf("summary wrong: %+v", s)
	}
}

func TestFCFSSerializesConflictingJobs(t *testing.T) {
	// Two 320-proc jobs arriving together must run back to back.
	w := wl(batch(1, 320, 100, 0), batch(2, 320, 100, 0))
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{}})
	s := r.Summary
	if s.MeanWait != 50 { // 0 and 100
		t.Errorf("mean wait = %g, want 50", s.MeanWait)
	}
	if s.Utilization != 1 {
		t.Errorf("utilization = %g, want 1", s.Utilization)
	}
	if s.WindowEnd != 200 {
		t.Errorf("makespan end = %d, want 200", s.WindowEnd)
	}
}

func TestWorkloadNotMutatedAcrossRuns(t *testing.T) {
	w := wl(batch(1, 320, 100, 0), batch(2, 64, 50, 10), batch(3, 64, 50, 20))
	r1 := mustRun(t, w, Config{Scheduler: &sched.EASY{}})
	// Jobs in the input workload must still look freshly submitted: the
	// engine runs on clones.
	for _, j := range w.Jobs {
		if j.State != job.Waiting || j.StartTime != 0 || j.FinishTime != 0 || j.SCount != 0 {
			t.Fatalf("engine mutated input job %v", j)
		}
	}
	r2 := mustRun(t, w, Config{Scheduler: &sched.EASY{}})
	if r1.Summary != r2.Summary {
		t.Fatalf("same workload, same config, different results:\n%+v\n%+v", r1.Summary, r2.Summary)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 200
	p.PD, p.PE, p.PR = 0.3, 0.2, 0.1
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scheduler: core.NewHybridLOS(7), ProcessECC: true}
	r1 := mustRun(t, w, cfg)
	cfg.Scheduler = core.NewHybridLOS(7)
	r2 := mustRun(t, w, cfg)
	if r1.Summary != r2.Summary || r1.Events != r2.Events {
		t.Fatal("simulation not deterministic")
	}
}

func TestAreaConservation(t *testing.T) {
	// Without ECCs, integrated busy area must equal the sum of job areas
	// exactly: util * M * window = sum(size*dur).
	p := workload.DefaultParams()
	p.N = 300
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for _, j := range w.Jobs {
		area += float64(j.Size) * float64(j.Dur)
	}
	for _, s := range []sched.Scheduler{sched.FCFS{}, &sched.EASY{}, core.NewLOS(false), core.NewDelayedLOS(7)} {
		r := mustRun(t, w, Config{Scheduler: s})
		got := r.Summary.Utilization * 320 * float64(r.Summary.WindowEnd-r.Summary.WindowStart)
		if math.Abs(got-area)/area > 1e-9 {
			t.Errorf("%s: busy area %g, want %g", s.Name(), got, area)
		}
	}
}

func TestAllJobsFinish(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 400
	p.PD = 0.4
	p.TargetLoad = 1.0
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, w, Config{Scheduler: core.NewHybridLOS(7)})
	if r.Summary.JobsFinished != 400 {
		t.Errorf("finished %d, want 400", r.Summary.JobsFinished)
	}
}

func TestDedicatedNeverStartsEarly(t *testing.T) {
	w := wl(
		batch(1, 64, 50, 0),
		ded(2, 96, 100, 0, 500),
		ded(3, 96, 100, 10, 700),
	)
	r := mustRun(t, w, Config{Scheduler: core.NewHybridLOS(7)})
	_ = r
	// Re-run capturing per-job state via a second simulation on a scheduler
	// that records: simpler — dedicated wait >= 0 is enforced by Wait();
	// verify on-time here (idle machine: both must start exactly on time).
	if r.Summary.DedicatedOnTime != 1 {
		t.Errorf("dedicated on-time = %g, want 1 on an idle machine", r.Summary.DedicatedOnTime)
	}
}

func TestDedicatedRejectedByBatchOnlyScheduler(t *testing.T) {
	w := wl(ded(1, 96, 100, 0, 100))
	if _, err := Run(w, Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}}); err == nil {
		t.Fatal("batch-only scheduler accepted dedicated workload")
	}
}

func TestInvalidWorkloadRejected(t *testing.T) {
	w := wl(batch(1, 999, 100, 0))
	if _, err := Run(w, Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestNoSchedulerRejected(t *testing.T) {
	if _, err := Run(wl(), Config{M: 320}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestSizesQuantizedUp(t *testing.T) {
	// A 100-proc job on a 32-quantized machine occupies 128.
	w := wl(batch(1, 100, 100, 0))
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{}})
	want := float64(128*100) / float64(320*100)
	if math.Abs(r.Summary.Utilization-want) > 1e-12 {
		t.Errorf("utilization %g, want %g", r.Summary.Utilization, want)
	}
}

func TestECCExtendsRunningJob(t *testing.T) {
	w := wl(batch(1, 320, 100, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 50, Type: cwf.ExtendTime, Amount: 60}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	if r.Summary.MeanRun != 160 {
		t.Errorf("run = %g, want 160 after ET", r.Summary.MeanRun)
	}
	if r.ECC.Applied != 1 {
		t.Errorf("applied = %d, want 1", r.ECC.Applied)
	}
}

func TestECCReducesRunningJobToNow(t *testing.T) {
	w := wl(batch(1, 320, 100, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 30, Type: cwf.ReduceTime, Amount: 500}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	if r.Summary.MeanRun != 30 {
		t.Errorf("run = %g, want 30 (killed at the command instant)", r.Summary.MeanRun)
	}
}

func TestECCOnQueuedJob(t *testing.T) {
	// Job 2 queued behind job 1; an RT while queued shortens its eventual
	// run.
	w := wl(batch(1, 320, 100, 0), batch(2, 320, 100, 0))
	w.Commands = []cwf.Command{{JobID: 2, Issue: 50, Type: cwf.ReduceTime, Amount: 40}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	if r.Summary.MeanRun != 80 { // (100 + 60) / 2
		t.Errorf("mean run = %g, want 80", r.Summary.MeanRun)
	}
}

func TestECCReducedJobFreesCapacityEarlier(t *testing.T) {
	// Job 1 (320, 100s) gets RT to end at t=40; job 2 then starts at 40.
	w := wl(batch(1, 320, 100, 0), batch(2, 320, 10, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 40, Type: cwf.ReduceTime, Amount: 60}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	// Window 0..50; wait = (0 + 40)/2 = 20.
	if r.Summary.MeanWait != 20 || r.Summary.WindowEnd != 50 {
		t.Errorf("wait = %g end = %d, want 20, 50", r.Summary.MeanWait, r.Summary.WindowEnd)
	}
}

func TestECCDroppedWithoutProcessor(t *testing.T) {
	w := wl(batch(1, 320, 100, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 50, Type: cwf.ExtendTime, Amount: 60}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}})
	if r.DroppedECC != 1 {
		t.Errorf("dropped = %d, want 1", r.DroppedECC)
	}
	if r.Summary.MeanRun != 100 {
		t.Errorf("run = %g, want 100 (command dropped)", r.Summary.MeanRun)
	}
}

func TestECCAfterJobFinishedIgnored(t *testing.T) {
	w := wl(batch(1, 320, 100, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 150, Type: cwf.ExtendTime, Amount: 60}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	if r.ECC.IgnoredFinished != 1 {
		t.Errorf("ignored-finished = %d, want 1", r.ECC.IgnoredFinished)
	}
}

func TestECCMaxPerJobEnforced(t *testing.T) {
	w := wl(batch(1, 320, 100, 0))
	w.Commands = []cwf.Command{
		{JobID: 1, Issue: 10, Type: cwf.ExtendTime, Amount: 10},
		{JobID: 1, Issue: 20, Type: cwf.ExtendTime, Amount: 10},
	}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true, MaxECCPerJob: 1})
	if r.ECC.Applied != 1 || r.ECC.IgnoredLimit != 1 {
		t.Errorf("ECC stats: %+v", r.ECC)
	}
	if r.Summary.MeanRun != 110 {
		t.Errorf("run = %g, want 110", r.Summary.MeanRun)
	}
}

func TestEPGrowsRunningJobWhenFree(t *testing.T) {
	w := wl(batch(1, 64, 100, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 50, Type: cwf.ExtendProc, Amount: 64}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	// Area: 64*50 + 128*50 = 9600 over 320*100.
	want := 9600.0 / 32000.0
	if math.Abs(r.Summary.Utilization-want) > 1e-12 {
		t.Errorf("utilization %g, want %g", r.Summary.Utilization, want)
	}
	if r.ECC.GrownProcs != 64 {
		t.Errorf("grown %d, want 64", r.ECC.GrownProcs)
	}
}

func TestRPShrinkLetsWaiterIn(t *testing.T) {
	// Job 1 holds the machine; an RP at t=50 frees 160, letting job 2 in.
	w := wl(batch(1, 320, 100, 0), batch(2, 160, 50, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 50, Type: cwf.ReduceProc, Amount: 160}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	// Job 2 starts at 50 (wait 50); job 1 waited 0.
	if r.Summary.MeanWait != 25 {
		t.Errorf("mean wait %g, want 25", r.Summary.MeanWait)
	}
}

func TestDedicatedWakeEventTriggersStart(t *testing.T) {
	// Nothing else happens at t=500; the engine must wake the scheduler.
	w := wl(ded(1, 96, 100, 0, 500))
	r := mustRun(t, w, Config{Scheduler: core.NewHybridLOS(7)})
	if r.Summary.DedicatedOnTime != 1 {
		t.Errorf("dedicated job missed its wake event: ontime=%g", r.Summary.DedicatedOnTime)
	}
	if r.Summary.WindowEnd != 600 {
		t.Errorf("window end %d, want 600", r.Summary.WindowEnd)
	}
}

func TestResultCounters(t *testing.T) {
	w := wl(batch(1, 320, 100, 0), batch(2, 320, 100, 0))
	r := mustRun(t, w, Config{Scheduler: sched.FCFS{}})
	if r.Events == 0 || r.Cycles == 0 {
		t.Errorf("counters empty: %+v", r)
	}
}

func TestEmptyWorkload(t *testing.T) {
	r := mustRun(t, wl(), Config{Scheduler: sched.FCFS{}})
	if r.Summary.Jobs != 0 {
		t.Errorf("empty workload produced jobs: %+v", r.Summary)
	}
}

func TestPrematureTerminationFreesCapacityEarly(t *testing.T) {
	// Job 1 asks for 100s but actually runs 30s; job 2 (whole machine)
	// starts as soon as it really ends.
	a := batch(1, 320, 100, 0)
	a.Actual = 30
	w := wl(a, batch(2, 320, 10, 0))
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}})
	if r.Summary.WindowEnd != 40 {
		t.Errorf("window end %d, want 40 (30s actual + 10s)", r.Summary.WindowEnd)
	}
	if r.Summary.MeanRun != 20 { // (30 + 10) / 2
		t.Errorf("mean run %g, want 20", r.Summary.MeanRun)
	}
}

func TestOverrunningJobKilledAtKillBy(t *testing.T) {
	a := batch(1, 320, 100, 0)
	a.Actual = 500 // wants 500s but asked for 100
	r := mustRun(t, wl(a), Config{Scheduler: &sched.EASY{}})
	if r.Summary.MeanRun != 100 {
		t.Errorf("mean run %g, want 100 (killed at kill-by)", r.Summary.MeanRun)
	}
}

func TestETRescuesOverrunningJob(t *testing.T) {
	// The job would be killed at t=100; an ET at t=50 extends the kill-by
	// past its actual need, so it finishes naturally at t=150.
	a := batch(1, 320, 100, 0)
	a.Actual = 150
	w := wl(a)
	w.Commands = []cwf.Command{{JobID: 1, Issue: 50, Type: cwf.ExtendTime, Amount: 200}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	if r.Summary.MeanRun != 150 {
		t.Errorf("mean run %g, want 150 (rescued by ET)", r.Summary.MeanRun)
	}
}

func TestRTKillsBeforeActualCompletion(t *testing.T) {
	// Premature job (actual 80 < dur 100); an RT at t=20 pulls the
	// kill-by to t=50, below the actual need: killed at 50.
	a := batch(1, 320, 100, 0)
	a.Actual = 80
	w := wl(a)
	w.Commands = []cwf.Command{{JobID: 1, Issue: 20, Type: cwf.ReduceTime, Amount: 50}}
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}, ProcessECC: true})
	if r.Summary.MeanRun != 50 {
		t.Errorf("mean run %g, want 50", r.Summary.MeanRun)
	}
}

func TestBackfillUsesEstimatesNotActuals(t *testing.T) {
	// Running job estimates 100s (actual 100). Head needs the whole
	// machine. Backfill candidate estimates 200s (would delay the head)
	// even though its actual is only 10s: EASY must NOT start it, because
	// schedulers plan with estimates.
	a := batch(1, 160, 100, 0)
	c := batch(3, 160, 200, 0)
	c.Actual = 10
	w := wl(a, batch(2, 320, 100, 0), c)
	r := mustRun(t, w, Config{Scheduler: &sched.EASY{}})
	// If job 3 were started at t=0 it would really finish at 10 — but the
	// scheduler cannot know. Correct EASY order: job1 0..100, job2
	// 100..200, job3 200..210.
	if r.Summary.WindowEnd != 210 {
		t.Errorf("window end %d, want 210 (estimate-driven plan)", r.Summary.WindowEnd)
	}
}

func TestEstimateWorkloadCompletesEverywhere(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 200
	p.EstUniformMax = 5
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FCFS", "EASY", "CONS", "LOS", "Delayed-LOS"} {
		r, err := Run(w, Config{M: 320, Unit: 32, Scheduler: freshScheduler(name), Paranoid: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Summary.JobsFinished != 200 {
			t.Fatalf("%s: finished %d/200", name, r.Summary.JobsFinished)
		}
	}
}

func TestContiguousFragmentationDelaysJob(t *testing.T) {
	// Groups: A(1x32) B(1x32) C(1x32); B ends first, leaving a hole.
	// Job D needs 2 groups: contiguous must wait for A or C; scatter not.
	a, b, cj := batch(1, 32, 100, 0), batch(2, 32, 50, 0), batch(3, 32, 100, 0)
	d := batch(4, 64, 10, 60)
	big := batch(5, 224, 50, 0) // fills groups 3..9 until t=50
	scatter := mustRun(t, wl(a, b, cj, d, big), Config{Scheduler: sched.FCFS{}})
	contig, err := Run(wl(a, b, cj, d, big), Config{
		M: 320, Unit: 32, Scheduler: sched.FCFS{}, Contiguous: true, Paranoid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if contig.Summary.JobsFinished != 5 {
		t.Fatalf("contiguous run finished %d/5", contig.Summary.JobsFinished)
	}
	if contig.Summary.MeanWait < scatter.Summary.MeanWait {
		t.Errorf("contiguous wait %.1f below scatter %.1f", contig.Summary.MeanWait, scatter.Summary.MeanWait)
	}
}

func TestMigrationRecoversFragmentation(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 300
	p.PS = 0.5
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(contig, migrate bool) *Result {
		r, err := Run(w, Config{
			M: 320, Unit: 32, Scheduler: &sched.EASY{},
			Contiguous: contig, Migrate: migrate, Paranoid: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Summary.JobsFinished != 300 {
			t.Fatalf("finished %d/300", r.Summary.JobsFinished)
		}
		return r
	}
	scatter := run(false, false)
	frag := run(true, false)
	defrag := run(true, true)
	if scatter.Migrations != 0 || scatter.FragmentedRejections != 0 {
		t.Error("scatter run should not fragment or migrate")
	}
	if defrag.Migrations == 0 {
		t.Error("migration run never compacted")
	}
	// Migration must not be worse than plain contiguous, and scatter is
	// the upper bound.
	if defrag.Summary.MeanWait > frag.Summary.MeanWait*1.001 {
		t.Errorf("migration wait %.1f worse than fragmented %.1f",
			defrag.Summary.MeanWait, frag.Summary.MeanWait)
	}
	if scatter.Summary.MeanWait > defrag.Summary.MeanWait*1.001 {
		t.Errorf("scatter wait %.1f worse than migrated %.1f",
			scatter.Summary.MeanWait, defrag.Summary.MeanWait)
	}
}

func TestContiguousAllSchedulersComplete(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 150
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FCFS", "EASY", "CONS", "LOS", "LOS+", "Delayed-LOS"} {
		for _, migrate := range []bool{false, true} {
			r, err := Run(w, Config{
				M: 320, Unit: 32, Scheduler: freshScheduler(name),
				Contiguous: true, Migrate: migrate, Paranoid: true,
			})
			if err != nil {
				t.Fatalf("%s migrate=%v: %v", name, migrate, err)
			}
			if r.Summary.JobsFinished != 150 {
				t.Fatalf("%s migrate=%v: finished %d/150", name, migrate, r.Summary.JobsFinished)
			}
		}
	}
}

// touchForever is a pathological policy that reports progress without ever
// starting anything: the engine's livelock guard must trip.
type touchForever struct{}

func (touchForever) Name() string              { return "touch-forever" }
func (touchForever) Heterogeneous() bool       { return false }
func (touchForever) Schedule(c *sched.Context) { c.Touch() }

func TestLivelockGuardTrips(t *testing.T) {
	w := wl(batch(1, 32, 10, 0))
	_, err := Run(w, Config{M: 320, Unit: 32, Scheduler: touchForever{}, MaxCyclesPerInstant: 100})
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("livelock not detected: %v", err)
	}
}

// neverStarts ignores all work: the engine must report the deadlock rather
// than returning an empty success.
type neverStarts struct{}

func (neverStarts) Name() string              { return "never-starts" }
func (neverStarts) Heterogeneous() bool       { return false }
func (neverStarts) Schedule(c *sched.Context) {}

func TestSchedulerDeadlockDetected(t *testing.T) {
	w := wl(batch(1, 32, 10, 0))
	_, err := Run(w, Config{M: 320, Unit: 32, Scheduler: neverStarts{}})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not detected: %v", err)
	}
}

// overAllocator starts a job that does not fit: the engine must panic (a
// policy bug, not a runtime condition).
type overAllocator struct{}

func (overAllocator) Name() string        { return "over-allocator" }
func (overAllocator) Heterogeneous() bool { return false }
func (overAllocator) Schedule(c *sched.Context) {
	if h := c.Batch.Head(); h != nil {
		c.Start(h)
	}
}

func TestOversubscribingPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscription did not panic")
		}
	}()
	// Two whole-machine jobs at once; the policy starts both.
	w := wl(batch(1, 320, 10, 0), batch(2, 320, 10, 0))
	Run(w, Config{M: 320, Unit: 32, Scheduler: overAllocator{}}) //nolint:errcheck
}

func TestDebugLogRecordsLifecycle(t *testing.T) {
	var buf bytes.Buffer
	w := wl(batch(1, 320, 100, 0))
	w.Commands = []cwf.Command{{JobID: 1, Issue: 50, Type: cwf.ExtendTime, Amount: 10}}
	_, err := Run(w, Config{M: 320, Unit: 32, Scheduler: &sched.EASY{}, ProcessECC: true, DebugLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	for _, want := range []string{"arrive job=1", "start job=1", "ecc job=1 ET 10 -> applied", "finish job=1 ran=110"} {
		if !strings.Contains(log, want) {
			t.Errorf("debug log missing %q:\n%s", want, log)
		}
	}
}

func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	mk := func() *Session {
		return &Session{
			cfg:    Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}},
			mach:   machine.New(320, 32),
			batch:  job.NewBatchQueue(),
			ded:    job.NewDedicatedQueue(),
			active: job.NewActiveList(),
		}
	}

	if err := mk().checkInvariants(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}

	// Active list holds a job the machine does not know about.
	s := mk()
	s.active.Insert(&job.Job{ID: 1, Size: 64, State: job.Running, EndTime: 10, ReqStart: -1})
	if err := s.checkInvariants(); err == nil {
		t.Error("phantom active job not caught")
	}

	// Active job in a non-running state.
	s = mk()
	s.mach.Alloc(1, 64)
	s.active.Insert(&job.Job{ID: 1, Size: 64, State: job.Finished, EndTime: 10, ReqStart: -1})
	if err := s.checkInvariants(); err == nil {
		t.Error("finished job in active list not caught")
	}

	// Batch queue out of FIFO order (simulating queue corruption).
	s = mk()
	s.batch.Push(&job.Job{ID: 1, Size: 32, Dur: 1, Arrival: 100, ReqStart: -1})
	s.batch.Push(&job.Job{ID: 2, Size: 32, Dur: 1, Arrival: 50, ReqStart: -1})
	if err := s.checkInvariants(); err == nil {
		t.Error("non-FIFO batch queue not caught")
	}

	// Rigid job buried behind non-rigid work.
	s = mk()
	s.batch.Push(&job.Job{ID: 1, Size: 32, Dur: 1, Arrival: 10, ReqStart: -1})
	rigid := &job.Job{ID: 2, Size: 32, Dur: 1, Arrival: 5, ReqStart: 5, Rigid: true}
	s.batch.Push(rigid)
	if err := s.checkInvariants(); err == nil {
		t.Error("buried rigid job not caught")
	}
}
