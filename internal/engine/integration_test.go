package engine

import (
	"fmt"
	"os"
	"testing"

	"elastisched/internal/audit"
	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/sched"
	"elastisched/internal/swf"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// allSchedulers instantiates one of every policy. Heterogeneous-capable
// policies are flagged so the driver can feed them dedicated jobs.
func allSchedulers() []sched.Scheduler {
	return []sched.Scheduler{
		sched.FCFS{}, sched.SJF{}, sched.LJF{}, &sched.Conservative{}, &sched.ConservativeD{},
		&sched.EASY{}, &sched.EASY{Ded: true},
		core.NewLOS(false), core.NewLOS(true), core.NewLOSPlus(),
		core.NewDelayedLOS(7), core.NewHybridLOS(7),
		core.NewAdaptive(7),
	}
}

// TestEveryAlgorithmCompletesEveryWorkload is the big cross-product
// invariant check: every policy must finish every job of randomized
// batch / heterogeneous / elastic workloads with machine invariants held
// at every instant (Paranoid) and the busy counter consistent throughout.
func TestEveryAlgorithmCompletesEveryWorkload(t *testing.T) {
	type scenario struct {
		name string
		mut  func(*workload.Params)
	}
	scenarios := []scenario{
		{"batch-light", func(p *workload.Params) { p.TargetLoad = 0.5 }},
		{"batch-overload", func(p *workload.Params) { p.TargetLoad = 1.3 }},
		{"batch-large-jobs", func(p *workload.Params) { p.PS = 0.1; p.TargetLoad = 0.9 }},
		{"batch-small-jobs", func(p *workload.Params) { p.PS = 0.95; p.TargetLoad = 0.9 }},
		{"heterogeneous", func(p *workload.Params) { p.PD = 0.5; p.TargetLoad = 0.9 }},
		{"dedicated-heavy", func(p *workload.Params) { p.PD = 0.95; p.TargetLoad = 0.8 }},
		{"elastic", func(p *workload.Params) { p.PE = 0.3; p.PR = 0.2; p.TargetLoad = 0.9 }},
		{"elastic-hetero", func(p *workload.Params) { p.PD = 0.5; p.PE = 0.2; p.PR = 0.1; p.TargetLoad = 0.9 }},
		{"size-elastic", func(p *workload.Params) { p.PE = 0.2; p.PR = 0.1; p.SizeECC = true; p.TargetLoad = 0.9 }},
	}
	for _, sc := range scenarios {
		for seed := int64(1); seed <= 2; seed++ {
			p := workload.DefaultParams()
			p.N = 150
			p.Seed = seed
			sc.mut(&p)
			w, err := workload.Generate(p)
			if err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
			hasDed := w.NumDedicated() > 0
			for _, mk := range allSchedulers() {
				mk := mk
				if hasDed && !mk.Heterogeneous() {
					continue
				}
				name := fmt.Sprintf("%s/seed%d/%s", sc.name, seed, mk.Name())
				t.Run(name, func(t *testing.T) {
					s := freshScheduler(mk.Name())
					rec := trace.NewRecorder(320, 32)
					elastic := len(w.Commands) > 0
					r, err := Run(w, Config{
						M: 320, Unit: 32, Scheduler: s,
						ProcessECC: elastic, Paranoid: true, Observer: rec,
					})
					if err != nil {
						t.Fatal(err)
					}
					if r.Summary.JobsFinished != p.N {
						t.Fatalf("finished %d/%d jobs", r.Summary.JobsFinished, p.N)
					}
					if r.Summary.Utilization <= 0 || r.Summary.Utilization > 1 {
						t.Fatalf("utilization out of range: %g", r.Summary.Utilization)
					}
					if r.Summary.MeanWait < 0 {
						t.Fatalf("negative wait: %g", r.Summary.MeanWait)
					}
					if r.Summary.Slowdown < 1 {
						t.Fatalf("slowdown below 1: %g", r.Summary.Slowdown)
					}
					// Independent oracle: the recorded schedule must be
					// feasible and lawful. Sizes in the workload may be
					// unquantized; the engine quantizes on admission, so
					// the auditor's size check needs the elastic
					// relaxation only for ECC scenarios.
					rep := audit.Check(w, rec.Spans(), audit.Options{
						M: 320, Unit: 32,
						Elastic:     elastic,
						SizeElastic: hasSizeCommands(w),
					})
					if err := rep.Error(); err != nil {
						t.Fatalf("%v (all: %v)", err, rep.Violations)
					}
				})
			}
		}
	}
}

// hasSizeCommands reports whether the workload carries EP/RP commands.
func hasSizeCommands(w interface{ SizeCommandCount() int }) bool {
	return w.SizeCommandCount() > 0
}

// freshScheduler builds an unused policy instance by name (policies hold
// scratch state; the table instances above are only used for names/flags).
func freshScheduler(name string) sched.Scheduler {
	switch name {
	case "FCFS":
		return sched.FCFS{}
	case "SJF":
		return sched.SJF{}
	case "LJF":
		return sched.LJF{}
	case "CONS":
		return &sched.Conservative{}
	case "CONS-D":
		return &sched.ConservativeD{}
	case "LOS+":
		return core.NewLOSPlus()
	case "EASY":
		return &sched.EASY{}
	case "EASY-D":
		return &sched.EASY{Ded: true}
	case "LOS":
		return core.NewLOS(false)
	case "LOS-D":
		return core.NewLOS(true)
	case "Delayed-LOS":
		return core.NewDelayedLOS(7)
	case "Hybrid-LOS":
		return core.NewHybridLOS(7)
	case "Adaptive":
		return core.NewAdaptive(7)
	default:
		panic("unknown scheduler " + name)
	}
}

// TestSDSCLikeTraceAcrossSchedulers replays the unquantized 128-processor
// configuration (unit = 1, power-of-two sizes) under the batch policies.
func TestSDSCLikeTraceAcrossSchedulers(t *testing.T) {
	p := workload.SDSCLike()
	p.N = 200
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FCFS", "EASY", "LOS", "Delayed-LOS", "CONS"} {
		t.Run(name, func(t *testing.T) {
			r, err := Run(w, Config{M: 128, Unit: 1, Scheduler: freshScheduler(name), Paranoid: true})
			if err != nil {
				t.Fatal(err)
			}
			if r.Summary.JobsFinished != 200 {
				t.Fatalf("finished %d/200", r.Summary.JobsFinished)
			}
		})
	}
}

// TestBackfillersBeatFCFS asserts the one robust qualitative ordering: on a
// loaded mixed workload, EASY and the LOS family wait far less than plain
// FCFS.
func TestBackfillersBeatFCFS(t *testing.T) {
	p := workload.DefaultParams()
	p.N = 400
	p.PS = 0.5
	p.TargetLoad = 0.9
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	fcfs, err := Run(w, Config{M: 320, Unit: 32, Scheduler: sched.FCFS{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"EASY", "LOS", "Delayed-LOS", "CONS"} {
		r, err := Run(w, Config{M: 320, Unit: 32, Scheduler: freshScheduler(name)})
		if err != nil {
			t.Fatal(err)
		}
		if r.Summary.MeanWait >= fcfs.Summary.MeanWait {
			t.Errorf("%s mean wait %.0f not better than FCFS %.0f",
				name, r.Summary.MeanWait, fcfs.Summary.MeanWait)
		}
	}
}

// TestDelayedLOSWinsOnLargeJobWorkload pins the paper's headline result
// (Figure 7 regime): with P_S = 0.2 at high load, Delayed-LOS waits less
// than both LOS and EASY, averaged over a few seeds.
func TestDelayedLOSWinsOnLargeJobWorkload(t *testing.T) {
	var dWait, lWait, eWait float64
	seeds := []int64{1, 2, 3}
	for _, seed := range seeds {
		p := workload.DefaultParams()
		p.N = 400
		p.Seed = seed
		p.PS = 0.2
		p.TargetLoad = 0.9
		w, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		run := func(s sched.Scheduler) float64 {
			r, err := Run(w, Config{M: 320, Unit: 32, Scheduler: s})
			if err != nil {
				t.Fatal(err)
			}
			return r.Summary.MeanWait
		}
		dWait += run(core.NewDelayedLOS(8))
		lWait += run(core.NewLOS(false))
		eWait += run(&sched.EASY{})
	}
	if dWait >= lWait || dWait >= eWait {
		t.Errorf("Delayed-LOS wait %.0f not best (LOS %.0f, EASY %.0f)",
			dWait/3, lWait/3, eWait/3)
	}
}

// TestArchiveLogReplay replays the golden SWF sample end to end with real
// estimate/actual semantics: jobs whose recorded runtime is below their
// estimate terminate prematurely.
func TestArchiveLogReplay(t *testing.T) {
	f, err := os.Open("../swf/testdata/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := swf.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	w := cwf.FromSWF(log)
	if len(w.Jobs) != 12 {
		t.Fatalf("converted %d jobs, want 12", len(w.Jobs))
	}
	for _, name := range []string{"FCFS", "EASY", "LOS", "Delayed-LOS", "CONS"} {
		r, err := Run(w, Config{M: 128, Unit: 1, Scheduler: freshScheduler(name), Paranoid: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Summary.JobsFinished != 12 {
			t.Fatalf("%s: finished %d/12", name, r.Summary.JobsFinished)
		}
		// Job 1 recorded 3600s actual against a 4000s estimate: the replay
		// must run it 3600s, not 4000.
		if r.Summary.MeanRun >= 4000 {
			t.Errorf("%s: mean run %.0f suggests estimates were used as runtimes", name, r.Summary.MeanRun)
		}
	}
}
