package engine

import (
	"sort"
	"testing"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/sched"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// runTraced executes the workload and returns the placement spans.
func runTraced(t *testing.T, w *cwf.Workload, s sched.Scheduler) []trace.Span {
	t.Helper()
	rec := trace.NewRecorder(320, 32)
	if _, err := Run(w, Config{M: 320, Unit: 32, Scheduler: s, Observer: rec, Paranoid: true}); err != nil {
		t.Fatal(err)
	}
	return rec.Spans()
}

func genBatch(t *testing.T, seed int64, n int, load float64) *cwf.Workload {
	t.Helper()
	p := workload.DefaultParams()
	p.Seed = seed
	p.N = n
	p.TargetLoad = load
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestPropertyFCFSStartsInArrivalOrder: under FCFS, start times follow
// arrival order exactly (no overtaking), for any workload.
func TestPropertyFCFSStartsInArrivalOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w := genBatch(t, seed, 200, 0.9)
		spans := runTraced(t, w, sched.FCFS{})
		byArrival := append([]trace.Span(nil), spans...)
		sort.Slice(byArrival, func(i, k int) bool {
			if byArrival[i].Arrival != byArrival[k].Arrival {
				return byArrival[i].Arrival < byArrival[k].Arrival
			}
			return byArrival[i].JobID < byArrival[k].JobID
		})
		for i := 1; i < len(byArrival); i++ {
			if byArrival[i].Start < byArrival[i-1].Start {
				t.Fatalf("seed %d: FCFS overtaking: job %d (arr %d) started %d before job %d (arr %d) started %d",
					seed, byArrival[i].JobID, byArrival[i].Arrival, byArrival[i].Start,
					byArrival[i-1].JobID, byArrival[i-1].Arrival, byArrival[i-1].Start)
			}
		}
	}
}

// TestPropertySpanStreamDeterministic: identical runs must produce
// identical placement streams, job by job and instant by instant (the
// audit in the integration tests covers lawfulness; this pins determinism
// at span granularity, stronger than comparing summaries).
func TestPropertySpanStreamDeterministic(t *testing.T) {
	w := genBatch(t, 3, 200, 0.9)
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return &sched.EASY{} },
		func() sched.Scheduler { return core.NewDelayedLOS(7) },
	} {
		a := runTraced(t, w, mk())
		b := runTraced(t, w, mk())
		if len(a) != len(b) {
			t.Fatal("span counts differ across identical runs")
		}
		for i := range a {
			if a[i].JobID != b[i].JobID || a[i].Start != b[i].Start || a[i].End != b[i].End {
				t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

// TestPropertyStartsOnlyAtEvents: event-driven policies dispatch only at
// job arrivals or completions — a start at any other instant would mean
// the engine invented a scheduling opportunity (or missed one earlier and
// made it up with a timer).
func TestPropertyStartsOnlyAtEvents(t *testing.T) {
	w := genBatch(t, 4, 200, 0.9)
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return &sched.EASY{} },
		func() sched.Scheduler { return core.NewLOS(false) },
		func() sched.Scheduler { return core.NewDelayedLOS(7) },
	} {
		spans := runTraced(t, w, mk())
		events := map[int64]bool{}
		for _, sp := range spans {
			events[sp.Arrival] = true
			events[sp.End] = true
		}
		for _, sp := range spans {
			if !events[sp.Start] {
				t.Fatalf("job %d started at %d, which is neither an arrival nor a completion instant",
					sp.JobID, sp.Start)
			}
		}
	}
}

// TestPropertyWaitConsistency: the trace-derived mean wait must match the
// collector's summary (two independent accounting paths).
func TestPropertyWaitConsistency(t *testing.T) {
	w := genBatch(t, 6, 250, 0.9)
	rec := trace.NewRecorder(320, 32)
	r, err := Run(w, Config{M: 320, Unit: 32, Scheduler: core.NewDelayedLOS(7), Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	st := rec.Summarize()
	if diff := st.MeanWait - r.Summary.MeanWait; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("trace mean wait %.6f != summary %.6f", st.MeanWait, r.Summary.MeanWait)
	}
	if st.Jobs != r.Summary.JobsFinished {
		t.Fatalf("trace jobs %d != summary %d", st.Jobs, r.Summary.JobsFinished)
	}
}
