package engine

import (
	"errors"
	"fmt"
	"math"

	"elastisched/internal/fault"
	"elastisched/internal/job"
)

// FaultConfig attaches the failure model to a run: a fault trace (scripted,
// or sampled from MTBF/MTTR at Load) and the retry policy for killed batch
// jobs. Faults operate at node-group granularity — the machine's allocation
// quantum is also its failure domain.
type FaultConfig struct {
	// Trace is a scripted fault scenario. When nil, a trace is sampled at
	// Load from the renewal model below.
	Trace *fault.Trace

	// MTBF and MTTR parameterize the sampled model (per node group, sim
	// seconds). Used only when Trace is nil; MTBF must then be positive.
	MTBF float64
	MTTR float64
	// Seed selects the random stream of the sampled trace.
	Seed int64
	// Horizon bounds sampled failures to [0, Horizon). Zero means "the
	// loaded workload's span" (last arrival + that job's estimate).
	Horizon int64

	// Retry governs batch jobs killed by a failure. Dedicated victims are
	// always dropped. The zero value requeues immediately, full restart,
	// unlimited retries.
	Retry fault.RetryPolicy

	// Checkpoint selects when running batch jobs save restart state. With
	// any policy other than CheckpointNone, a kill restarts the victim
	// from its last checkpoint — residual estimate from the checkpoint
	// instant plus one CheckpointCost restart charge — superseding the
	// Retry.Restart full/remaining binary. CheckpointNone (the zero value)
	// is the exact pre-checkpoint behaviour.
	Checkpoint fault.CheckpointPolicy
	// CheckpointInterval is the periodic policy's interval I in sim
	// seconds (CheckpointPeriodic only; daly derives its own from MTBF).
	CheckpointInterval int64
	// CheckpointCost is the time C one checkpoint adds to the job's
	// remaining runtime, and the restart charge a kill adds when a
	// checkpoint exists to restart from.
	CheckpointCost int64
}

// ResolvedCheckpointInterval returns the base wall interval between a
// job's checkpoints under the configured policy: CheckpointInterval for
// periodic, Daly's sqrt(2*MTBF*C) for daly, 0 for none and on-resize
// (whose checkpoints ride on resizes instead of a timer). The daly value
// is the single-group interval; a running job spanning g node groups
// fails g times as often, so the engine divides the MTBF by the job's
// span when deriving its own interval (see Session.ckptIntervalFor).
func (fc *FaultConfig) ResolvedCheckpointInterval() int64 {
	switch fc.Checkpoint {
	case fault.CheckpointPeriodic:
		return fc.CheckpointInterval
	case fault.CheckpointDaly:
		return fault.DalyInterval(fc.MTBF, fc.CheckpointCost)
	}
	return 0
}

// ErrOnResizeNeedsMalleable rejects the on-resize checkpoint policy
// without the malleable pipeline: with Malleable off, resizes keep the
// legacy semantics (no runtime rescale) and carry no natural checkpoint
// boundary.
var ErrOnResizeNeedsMalleable = errors.New("engine: on-resize checkpointing needs Malleable mode")

// validate checks the fault configuration, wrapping the fault package's
// typed errors so callers can test with errors.Is.
func (fc *FaultConfig) validate() error {
	if fc.Trace == nil {
		if math.IsNaN(fc.MTBF) || fc.MTBF <= 0 {
			return fmt.Errorf("engine: fault config: %w (got %g)", fault.ErrNonPositiveMTBF, fc.MTBF)
		}
		if math.IsNaN(fc.MTTR) || fc.MTTR < 0 {
			return fmt.Errorf("engine: fault config: %w (got %g)", fault.ErrNegativeMTTR, fc.MTTR)
		}
	} else if fc.MTBF != 0 || fc.MTTR != 0 {
		return errors.New("engine: fault config has both a scripted trace and MTBF/MTTR generation parameters")
	}
	if fc.Horizon < 0 {
		return fmt.Errorf("engine: fault config: %w (got %d)", fault.ErrNonPositiveSpan, fc.Horizon)
	}
	if err := fc.Retry.Validate(); err != nil {
		return fmt.Errorf("engine: fault config: %w", err)
	}
	if err := fault.ValidateCheckpoint(fc.Checkpoint, fc.CheckpointInterval, fc.CheckpointCost, fc.MTBF); err != nil {
		return fmt.Errorf("engine: fault config: %w", err)
	}
	return nil
}

// FaultTrace returns the fault trace this session runs under — the
// scripted one, or the trace sampled at Load — and nil when fault
// injection is off or no workload has been loaded.
func (s *Session) FaultTrace() *fault.Trace { return s.ftrace }

// loadFaults resolves the session's fault trace (sampling one if the
// configuration asks for it), validates it against the machine geometry,
// and schedules its events. Called by Load only: a restored session gets
// its pending fault events from the snapshot instead.
func (s *Session) loadFaults(horizon int64) error {
	fc := s.cfg.Faults
	t := fc.Trace
	if t == nil {
		if fc.Horizon > 0 {
			horizon = fc.Horizon
		}
		if horizon <= 0 {
			// Empty workload: nothing to fail.
			s.ftrace = &fault.Trace{}
			return nil
		}
		var err error
		t, err = fault.Generate(fault.GenParams{
			Groups:  s.mach.NumGroups(),
			MTBF:    fc.MTBF,
			MTTR:    fc.MTTR,
			Horizon: horizon,
			Seed:    fc.Seed,
		})
		if err != nil {
			return fmt.Errorf("engine: sampling fault trace: %w", err)
		}
	}
	if err := t.Validate(s.mach.NumGroups()); err != nil {
		return fmt.Errorf("engine: fault trace: %w", err)
	}
	s.ftrace = t
	for i := range t.Events {
		ev := t.Events[i] // copy: the event outlives the caller's trace
		s.eng.AtArg(ev.Time, s.faultH, &ev)
	}
	return nil
}

func (s *Session) faultEv(now int64, arg any) { s.applyFault(arg.(*fault.Event), now) }

// applyFault executes one failure or repair event. Failures take the named
// node groups out of service and kill every running job holding one of
// them; repairs return Down groups to service. Capacity-change deltas go
// to the collector and the policy only when the in-service size actually
// moved (re-failing a down group or repairing a healthy one is a no-op).
func (s *Session) applyFault(ev *fault.Event, now int64) {
	switch ev.Kind {
	case fault.Fail:
		failed, victims, err := s.mach.FailGroups(ev.Groups)
		if err != nil {
			// The trace was validated against this machine at Load/Restore;
			// an out-of-range group here is an engine bug.
			panic(fmt.Sprintf("engine: applying fault at t=%d: %v", now, err))
		}
		if s.debugging() {
			s.debugf("t=%d fail groups=%v down=%d victims=%d", now, ev.Groups, failed, len(victims))
		}
		for _, id := range victims {
			j := s.active.Find(id)
			if j == nil {
				panic(fmt.Sprintf("engine: failure victim job %d not in active list at t=%d", id, now))
			}
			if s.shrinkVictim(j, now) {
				continue
			}
			s.kill(j, now)
		}
		if failed > 0 || len(victims) > 0 {
			s.notifyCapacity(now)
		}
	case fault.Repair:
		repaired, err := s.mach.RepairGroups(ev.Groups)
		if err != nil {
			panic(fmt.Sprintf("engine: applying repair at t=%d: %v", now, err))
		}
		if s.debugging() {
			s.debugf("t=%d repair groups=%v restored=%d", now, ev.Groups, repaired)
		}
		if repaired > 0 {
			s.notifyCapacity(now)
		}
	default:
		panic(fmt.Sprintf("engine: fault event with unknown kind %d at t=%d", ev.Kind, now))
	}
}

// notifyCapacity reports an in-service capacity change to the collector
// and the policy's delta feed.
func (s *Session) notifyCapacity(now int64) {
	s.collector.CapacityChanged(s.mach.DownProcs(), now)
	if s.st != nil {
		s.st.CapacityChanged(now)
	}
}

// shrinkVictim tries the malleable alternative to killing a failure
// victim: drop the job's failed node groups (machine.ShrinkDraining) and
// keep it running, work-conservingly rescaled, on the healthy remainder.
// It reports whether the job survived. Only batch jobs with malleable
// bounds qualify, only in Malleable mode, and only when the surviving
// allocation stays at or above the job's minimum (on contiguous machines,
// the longest surviving contiguous run must).
func (s *Session) shrinkVictim(j *job.Job, now int64) bool {
	if !s.cfg.Malleable || j.Class != job.Batch || !j.Malleable() {
		return false
	}
	newSize, err := s.mach.ShrinkDraining(j.ID, j.MinProcs)
	if err != nil {
		return false
	}
	if s.debugging() {
		s.debugf("t=%d fault-shrink job=%d %d->%d", now, j.ID, j.Size, newSize)
	}
	if newSize != j.Size {
		s.finishResize(j, newSize, true)
	}
	return true
}

// kill removes a running job hit by a node-group failure: its allocation is
// released (the failed groups go Down rather than free), its completion
// event cancelled, and the retry policy decides its fate — resubmission at
// the head of the batch queue after the backoff, or leaving the system as
// Dropped. Dedicated victims are always dropped: their rigid start time has
// passed.
func (s *Session) kill(j *job.Job, now int64) {
	if err := s.mach.Release(j.ID); err != nil {
		panic(fmt.Sprintf("engine: killing job %d: %v", j.ID, err))
	}
	s.active.Remove(j)
	s.eng.Cancel(s.getCompletion(j.ID))
	s.clearCompletion(j.ID)
	s.cancelCheckpoint(j.ID)

	p := s.cfg.Faults.Retry
	ckpt := s.cfg.Faults.Checkpoint
	requeue := j.Class == job.Batch && p.Mode == fault.Requeue &&
		(p.MaxRetries == 0 || j.Retries < p.MaxRetries)

	// Lost work: a requeued victim with a checkpoint loses only the work
	// done since it (a dropped one loses everything it ran — checkpoints
	// cannot help a job that never comes back).
	lostFrom := j.StartTime
	if requeue && ckpt != fault.CheckpointNone && j.CkptAt > lostFrom {
		lostFrom = j.CkptAt
	}
	s.collector.JobKilled(j, now, requeue, lostFrom)
	if s.st != nil {
		s.st.JobKilled(j, now)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobKilled(j, now)
	}

	if !requeue {
		j.State = job.Dropped
		j.FinishTime = now
		if s.debugging() {
			s.debugf("t=%d kill job=%d dropped retries=%d", now, j.ID, j.Retries)
		}
		return
	}

	// Reshape the job for resubmission.
	//
	// Under a checkpoint policy the resubmission resumes from the last
	// checkpoint: the estimate becomes the residual from the checkpoint
	// instant plus one CheckpointCost restart charge (no charge when no
	// checkpoint was taken — there is no saved state to reload), and the
	// actual runtime loses the work completed before the checkpoint. Both
	// are clamped to at least one second (the failure may land exactly at
	// the kill-by instant). This supersedes the Restart binary below.
	//
	// Without a checkpoint policy, RemainingRuntime keeps only the
	// unfinished work (the pre-checkpoint model of a free, always-current
	// checkpoint) and FullRuntime restarts from scratch with the job's
	// current requirements.
	if ckpt != fault.CheckpointNone {
		last := j.CkptAt
		var restart int64
		if last > j.StartTime {
			restart = s.cfg.Faults.CheckpointCost
		}
		eff := j.EffectiveRuntime()
		j.Dur = max64(j.EndTime-last, 1) + restart
		if j.Actual > 0 {
			j.Actual = max64(eff-(last-j.StartTime), 1) + restart
		}
	} else if p.Restart == fault.RemainingRuntime {
		eff := j.EffectiveRuntime()
		elapsed := now - j.StartTime
		j.Dur = max64(j.EndTime-now, 1)
		if j.Actual > 0 {
			j.Actual = max64(eff-elapsed, 1)
		}
	}
	j.Retries++
	j.Arrival = now + p.Backoff
	// Rigid entitles the resubmission to the head of the batch queue,
	// exactly like a dedicated job moved by Algorithm 3.
	j.Rigid = true
	j.State = job.Waiting
	s.eng.AtArg(j.Arrival, s.arriveH, j)
	if s.debugging() {
		s.debugf("t=%d kill job=%d requeued at=%d dur=%d retries=%d", now, j.ID, j.Arrival, j.Dur, j.Retries)
	}
}

// --- checkpointing --------------------------------------------------------
//
// Periodic and daly policies run an explicit per-job event chain: the first
// checkpoint is scheduled at dispatch + I, and each checkpoint schedules
// the next at its own instant + C + I (the job spends C writing the
// checkpoint, then I of useful work). Explicit events — rather than
// arithmetic folded into the completion time — keep the chain correct when
// resizes or ECC commands stretch and shrink the job's timeline mid-run.
//
// Event-order ties are deterministic and favor not checkpointing: fault
// events are scheduled at Load, so at an equal timestamp a kill dispatches
// first and cancels the checkpoint; a completion re-scheduled by the
// checkpoint handler's retime carries a lower sequence number than the
// next checkpoint it schedules, so a completion landing exactly on a
// checkpoint instant also wins. The audit oracle's chain replay depends on
// exactly these tie rules.

func (s *Session) ckptEv(now int64, arg any) { s.checkpoint(arg.(*job.Job), now) }

// checkpointChaining reports whether this session runs timer-driven
// checkpoint chains (periodic or daly policy).
func (s *Session) checkpointChaining() bool { return s.ckptH != nil }

// ckptIntervalFor returns the wall interval before job j's next
// checkpoint. Periodic jobs all share the configured interval. Daly jobs
// each get their own optimum: the configured MTBF is per node group, and
// a job spanning g groups is killed by any of them, so it experiences
// MTBF/g and its interval is sqrt(2·(MTBF/g)·C). A malleable resize can
// change the span; the chain picks up the new interval at the next link.
func (s *Session) ckptIntervalFor(j *job.Job) int64 {
	if s.cfg.Faults.Checkpoint == fault.CheckpointDaly {
		if g := (j.Size + s.cfg.Unit - 1) / s.cfg.Unit; g > 1 {
			return fault.DalyInterval(s.cfg.Faults.MTBF/float64(g), s.cfg.Faults.CheckpointCost)
		}
	}
	return s.ckptEvery
}

// scheduleFirstCheckpoint opens a dispatched batch job's checkpoint chain.
func (s *Session) scheduleFirstCheckpoint(j *job.Job, now int64) {
	if s.ckptH == nil || j.Class != job.Batch {
		return
	}
	s.ckpt[j.ID] = s.eng.AtArg(now+s.ckptIntervalFor(j), s.ckptH, j)
}

// cancelCheckpoint cancels a job's pending checkpoint event, if any — the
// job is leaving the machine (completion or kill).
func (s *Session) cancelCheckpoint(id int) {
	if s.ckpt == nil {
		return
	}
	if h, ok := s.ckpt[id]; ok {
		s.eng.Cancel(h)
		delete(s.ckpt, id)
	}
}

// checkpoint executes one checkpoint of a running job: the cost C is
// charged to the job's remaining runtime (estimate and actual both — the
// machine really is occupied that much longer), the restart point moves to
// this instant, and the next checkpoint is chained.
func (s *Session) checkpoint(j *job.Job, now int64) {
	delete(s.ckpt, j.ID)
	c := s.cfg.Faults.CheckpointCost
	if c > 0 {
		oldEnd := j.EndTime
		j.EndTime += c
		j.Dur = j.EndTime - j.StartTime
		if j.Actual > 0 {
			j.Actual += c
		}
		s.RetimeRunning(j, oldEnd)
	}
	j.CkptAt = now
	s.collector.CheckpointTaken(c, j.Size)
	s.ckpt[j.ID] = s.eng.AtArg(now+c+s.ckptIntervalFor(j), s.ckptH, j)
	if s.debugging() {
		s.debugf("t=%d checkpoint job=%d cost=%d killby=%d", now, j.ID, c, j.EndTime)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
