package engine

import (
	"errors"
	"fmt"

	"elastisched/internal/fault"
	"elastisched/internal/job"
)

// FaultConfig attaches the failure model to a run: a fault trace (scripted,
// or sampled from MTBF/MTTR at Load) and the retry policy for killed batch
// jobs. Faults operate at node-group granularity — the machine's allocation
// quantum is also its failure domain.
type FaultConfig struct {
	// Trace is a scripted fault scenario. When nil, a trace is sampled at
	// Load from the renewal model below.
	Trace *fault.Trace

	// MTBF and MTTR parameterize the sampled model (per node group, sim
	// seconds). Used only when Trace is nil; MTBF must then be positive.
	MTBF float64
	MTTR float64
	// Seed selects the random stream of the sampled trace.
	Seed int64
	// Horizon bounds sampled failures to [0, Horizon). Zero means "the
	// loaded workload's span" (last arrival + that job's estimate).
	Horizon int64

	// Retry governs batch jobs killed by a failure. Dedicated victims are
	// always dropped. The zero value requeues immediately, full restart,
	// unlimited retries.
	Retry fault.RetryPolicy
}

// validate checks the fault configuration, wrapping the fault package's
// typed errors so callers can test with errors.Is.
func (fc *FaultConfig) validate() error {
	if fc.Trace == nil {
		if fc.MTBF <= 0 {
			return fmt.Errorf("engine: fault config: %w (got %g)", fault.ErrNonPositiveMTBF, fc.MTBF)
		}
		if fc.MTTR < 0 {
			return fmt.Errorf("engine: fault config: %w (got %g)", fault.ErrNegativeMTTR, fc.MTTR)
		}
	} else if fc.MTBF != 0 || fc.MTTR != 0 {
		return errors.New("engine: fault config has both a scripted trace and MTBF/MTTR generation parameters")
	}
	if fc.Horizon < 0 {
		return fmt.Errorf("engine: fault config: %w (got %d)", fault.ErrNonPositiveSpan, fc.Horizon)
	}
	if err := fc.Retry.Validate(); err != nil {
		return fmt.Errorf("engine: fault config: %w", err)
	}
	return nil
}

// FaultTrace returns the fault trace this session runs under — the
// scripted one, or the trace sampled at Load — and nil when fault
// injection is off or no workload has been loaded.
func (s *Session) FaultTrace() *fault.Trace { return s.ftrace }

// loadFaults resolves the session's fault trace (sampling one if the
// configuration asks for it), validates it against the machine geometry,
// and schedules its events. Called by Load only: a restored session gets
// its pending fault events from the snapshot instead.
func (s *Session) loadFaults(horizon int64) error {
	fc := s.cfg.Faults
	t := fc.Trace
	if t == nil {
		if fc.Horizon > 0 {
			horizon = fc.Horizon
		}
		if horizon <= 0 {
			// Empty workload: nothing to fail.
			s.ftrace = &fault.Trace{}
			return nil
		}
		var err error
		t, err = fault.Generate(fault.GenParams{
			Groups:  s.mach.NumGroups(),
			MTBF:    fc.MTBF,
			MTTR:    fc.MTTR,
			Horizon: horizon,
			Seed:    fc.Seed,
		})
		if err != nil {
			return fmt.Errorf("engine: sampling fault trace: %w", err)
		}
	}
	if err := t.Validate(s.mach.NumGroups()); err != nil {
		return fmt.Errorf("engine: fault trace: %w", err)
	}
	s.ftrace = t
	for i := range t.Events {
		ev := t.Events[i] // copy: the event outlives the caller's trace
		s.eng.AtArg(ev.Time, s.faultH, &ev)
	}
	return nil
}

func (s *Session) faultEv(now int64, arg any) { s.applyFault(arg.(*fault.Event), now) }

// applyFault executes one failure or repair event. Failures take the named
// node groups out of service and kill every running job holding one of
// them; repairs return Down groups to service. Capacity-change deltas go
// to the collector and the policy only when the in-service size actually
// moved (re-failing a down group or repairing a healthy one is a no-op).
func (s *Session) applyFault(ev *fault.Event, now int64) {
	switch ev.Kind {
	case fault.Fail:
		failed, victims, err := s.mach.FailGroups(ev.Groups)
		if err != nil {
			// The trace was validated against this machine at Load/Restore;
			// an out-of-range group here is an engine bug.
			panic(fmt.Sprintf("engine: applying fault at t=%d: %v", now, err))
		}
		if s.debugging() {
			s.debugf("t=%d fail groups=%v down=%d victims=%d", now, ev.Groups, failed, len(victims))
		}
		for _, id := range victims {
			j := s.active.Find(id)
			if j == nil {
				panic(fmt.Sprintf("engine: failure victim job %d not in active list at t=%d", id, now))
			}
			if s.shrinkVictim(j, now) {
				continue
			}
			s.kill(j, now)
		}
		if failed > 0 || len(victims) > 0 {
			s.notifyCapacity(now)
		}
	case fault.Repair:
		repaired, err := s.mach.RepairGroups(ev.Groups)
		if err != nil {
			panic(fmt.Sprintf("engine: applying repair at t=%d: %v", now, err))
		}
		if s.debugging() {
			s.debugf("t=%d repair groups=%v restored=%d", now, ev.Groups, repaired)
		}
		if repaired > 0 {
			s.notifyCapacity(now)
		}
	default:
		panic(fmt.Sprintf("engine: fault event with unknown kind %d at t=%d", ev.Kind, now))
	}
}

// notifyCapacity reports an in-service capacity change to the collector
// and the policy's delta feed.
func (s *Session) notifyCapacity(now int64) {
	s.collector.CapacityChanged(s.mach.DownProcs(), now)
	if s.st != nil {
		s.st.CapacityChanged(now)
	}
}

// shrinkVictim tries the malleable alternative to killing a failure
// victim: drop the job's failed node groups (machine.ShrinkDraining) and
// keep it running, work-conservingly rescaled, on the healthy remainder.
// It reports whether the job survived. Only batch jobs with malleable
// bounds qualify, only in Malleable mode, and only when the surviving
// allocation stays at or above the job's minimum (on contiguous machines,
// the longest surviving contiguous run must).
func (s *Session) shrinkVictim(j *job.Job, now int64) bool {
	if !s.cfg.Malleable || j.Class != job.Batch || !j.Malleable() {
		return false
	}
	newSize, err := s.mach.ShrinkDraining(j.ID, j.MinProcs)
	if err != nil {
		return false
	}
	if s.debugging() {
		s.debugf("t=%d fault-shrink job=%d %d->%d", now, j.ID, j.Size, newSize)
	}
	if newSize != j.Size {
		s.finishResize(j, newSize, true)
	}
	return true
}

// kill removes a running job hit by a node-group failure: its allocation is
// released (the failed groups go Down rather than free), its completion
// event cancelled, and the retry policy decides its fate — resubmission at
// the head of the batch queue after the backoff, or leaving the system as
// Dropped. Dedicated victims are always dropped: their rigid start time has
// passed.
func (s *Session) kill(j *job.Job, now int64) {
	if err := s.mach.Release(j.ID); err != nil {
		panic(fmt.Sprintf("engine: killing job %d: %v", j.ID, err))
	}
	s.active.Remove(j)
	s.eng.Cancel(s.getCompletion(j.ID))
	s.clearCompletion(j.ID)

	p := s.cfg.Faults.Retry
	requeue := j.Class == job.Batch && p.Mode == fault.Requeue &&
		(p.MaxRetries == 0 || j.Retries < p.MaxRetries)

	s.collector.JobKilled(j, now, requeue)
	if s.st != nil {
		s.st.JobKilled(j, now)
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobKilled(j, now)
	}

	if !requeue {
		j.State = job.Dropped
		j.FinishTime = now
		if s.debugging() {
			s.debugf("t=%d kill job=%d dropped retries=%d", now, j.ID, j.Retries)
		}
		return
	}

	// Reshape the job for resubmission. Under RemainingRuntime (checkpointed
	// jobs) only the unfinished work comes back: the estimate becomes the
	// residual to the kill-by time and the actual runtime shrinks by the
	// elapsed work, both clamped to at least one second (the failure may
	// land exactly at the kill-by instant). Under FullRuntime the job
	// restarts from scratch with its current requirements.
	if p.Restart == fault.RemainingRuntime {
		eff := j.EffectiveRuntime()
		elapsed := now - j.StartTime
		j.Dur = max64(j.EndTime-now, 1)
		if j.Actual > 0 {
			j.Actual = max64(eff-elapsed, 1)
		}
	}
	j.Retries++
	j.Arrival = now + p.Backoff
	// Rigid entitles the resubmission to the head of the batch queue,
	// exactly like a dedicated job moved by Algorithm 3.
	j.Rigid = true
	j.State = job.Waiting
	s.eng.AtArg(j.Arrival, s.arriveH, j)
	if s.debugging() {
		s.debugf("t=%d kill job=%d requeued at=%d dur=%d retries=%d", now, j.ID, j.Arrival, j.Dur, j.Retries)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
