package engine

import (
	"reflect"
	"testing"

	"elastisched/internal/sched"
	"elastisched/internal/workload"
)

// coldPolicy forwards Scheduler only, hiding any Stateful implementation,
// so the engine never arms the delta feed: the wrapped policy runs a full
// pass every cycle, exactly like the pre-Stateful implementation.
type coldPolicy struct{ s sched.Scheduler }

func (c coldPolicy) Name() string                { return c.s.Name() }
func (c coldPolicy) Heterogeneous() bool         { return c.s.Heterogeneous() }
func (c coldPolicy) Schedule(ctx *sched.Context) { c.s.Schedule(ctx) }

// TestStatefulFeedIsBehaviourNeutral pins the sched.Stateful contract: a
// policy fed engine deltas (settled skips, arrival increments, retained
// profiles) must produce the exact placement stream of the same policy
// running a cold full pass every cycle. This is the differential check
// that catches fixed-point bugs — e.g. EASY settling after a pass that
// started jobs, which relaxes the recomputed freezes on the engine's
// verification cycle (the EASY-D divergence fixed in PR 4) — without
// relying on the committed figure TSVs to notice.
func TestStatefulFeedIsBehaviourNeutral(t *testing.T) {
	policies := []func() sched.Scheduler{
		func() sched.Scheduler { return &sched.EASY{} },
		func() sched.Scheduler { return &sched.EASY{Ded: true} },
		func() sched.Scheduler { return &sched.Conservative{} },
		func() sched.Scheduler { return &sched.ConservativeD{} },
	}
	scenarios := []struct {
		name string
		mut  func(*workload.Params)
	}{
		{"batch", func(p *workload.Params) { p.TargetLoad = 1.0 }},
		// The fig9 configuration (P_D=0.5, P_S=0.2, load 1.0) at full size:
		// this is the workload family where the EASY-D settle-after-start
		// divergence actually manifested; smaller runs miss it.
		{"heterogeneous", func(p *workload.Params) { p.PD = 0.5; p.PS = 0.2; p.TargetLoad = 1.0 }},
		{"dedicated-heavy", func(p *workload.Params) { p.PD = 0.95; p.TargetLoad = 0.9 }},
		{"elastic-hetero", func(p *workload.Params) { p.PD = 0.5; p.PE = 0.2; p.PR = 0.1; p.TargetLoad = 1.0 }},
	}
	for _, sc := range scenarios {
		for seed := int64(1); seed <= 3; seed++ {
			p := workload.DefaultParams()
			p.Seed = seed
			sc.mut(&p)
			w, err := workload.Generate(p)
			if err != nil {
				t.Fatalf("%s: %v", sc.name, err)
			}
			for _, mk := range policies {
				if w.NumDedicated() > 0 && !mk().Heterogeneous() {
					continue
				}
				warm := runTraced(t, w, mk())
				cold := runTraced(t, w, coldPolicy{s: mk()})
				name := mk().Name()
				if len(warm) != len(cold) {
					t.Fatalf("%s/%s seed %d: %d spans with delta feed vs %d cold",
						sc.name, name, seed, len(warm), len(cold))
				}
				for i := range warm {
					if !reflect.DeepEqual(warm[i], cold[i]) {
						t.Fatalf("%s/%s seed %d: span %d diverges: with feed %+v, cold %+v",
							sc.name, name, seed, i, warm[i], cold[i])
					}
				}
			}
		}
	}
}
