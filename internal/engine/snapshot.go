package engine

import (
	"encoding/json"
	"fmt"
	"io"

	"elastisched/internal/cwf"
	"elastisched/internal/ecc"
	"elastisched/internal/fault"
	"elastisched/internal/job"
	"elastisched/internal/machine"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
)

// SnapshotVersion stamps the snapshot encoding. Decoders reject snapshots
// from a different version rather than guessing at field semantics.
// Version 2 added fault injection: fail/repair event kinds, the machine's
// group-health table, and the captured retry policy.
// Version 3 added malleability: the Malleable/ResizeOverhead feature
// flags, per-job processor bounds (inside Jobs), and the resize counters
// (inside Metrics).
// Version 4 added checkpointing: the ckpt event kind, the captured
// checkpoint policy knobs, per-job checkpoint progress (inside Jobs),
// and the checkpoint counters (inside Metrics).
const SnapshotVersion = 4

// Event kinds in a snapshot.
const (
	evArrive   = "arrive"   // a job's arrival is still pending
	evComplete = "complete" // a running job's completion
	evCommand  = "command"  // an Elastic Control Command issue
	evWake     = "wake"     // a bare scheduler wake (dedicated start time)
	evFail     = "fail"     // a pending node-group failure
	evRepair   = "repair"   // a pending node-group repair
	evCkpt     = "ckpt"     // a running job's next scheduled checkpoint
)

// EventSnap is one pending kernel event. Order within Snapshot.Events is
// dispatch order: restore re-schedules them in sequence, which reproduces
// the kernel's (time, seq) total order exactly.
type EventSnap struct {
	Kind string `json:"kind"`
	Time int64  `json:"time"`
	// Job indexes Snapshot.Jobs for arrive/complete events; -1 otherwise.
	Job int `json:"job"`
	// Cmd is the pending command for command events.
	Cmd *cwf.Command `json:"cmd,omitempty"`
	// Groups names the node groups of fail/repair events.
	Groups []int `json:"groups,omitempty"`
}

// Snapshot is the complete, self-contained state of a Session at an
// instant boundary. It is plain data: JSON-encodable via Encode /
// DecodeSnapshot, inspectable, and restorable into a fresh Session built
// with an equivalent Config (same geometry and feature flags; the
// scheduler may differ, enabling policy-swap resume — captured policy
// state then does not carry over).
type Snapshot struct {
	Version   int    `json:"version"`
	Scheduler string `json:"scheduler"`

	// Machine geometry and feature flags the restoring Config must match.
	M            int  `json:"m"`
	Unit         int  `json:"unit"`
	Contiguous   bool `json:"contiguous,omitempty"`
	Migrate      bool `json:"migrate,omitempty"`
	ProcessECC   bool `json:"process_ecc,omitempty"`
	MaxECCPerJob int  `json:"max_ecc_per_job,omitempty"`
	// Retry is the fault retry policy of a fault-injected session; nil when
	// fault injection is off. The restoring Config must match: pending
	// fail/repair events and the machine's health table are meaningless
	// without the fault subsystem, and future kills must follow the same
	// policy.
	Retry *fault.RetryPolicy `json:"retry,omitempty"`
	// Checkpoint knobs of a fault-injected session (meaningful only when
	// Retry is set). The restoring Config must match: pending ckpt events
	// and per-job checkpoint progress are tied to the policy, interval and
	// cost in force when they were captured. A daly policy is captured
	// verbatim with its resolved base interval sqrt(2·MTBF·C) — in-flight
	// chains resume from the snapshotted events at their pinned fire
	// times, and jobs dispatched after the restore re-derive their
	// per-span intervals from the restoring config's MTBF, which the
	// interval match holds consistent with the captured one.
	Checkpoint         string `json:"checkpoint,omitempty"`
	CheckpointInterval int64  `json:"checkpoint_interval,omitempty"`
	CheckpointCost     int64  `json:"checkpoint_cost,omitempty"`
	// CheckpointMTBF is the per-group MTBF a daly session derives its
	// per-job intervals from, captured so a session rebuilt from the
	// snapshot alone (whose pinned fault events preclude sampling
	// parameters on the config) can keep deriving them. Zero for every
	// other policy.
	CheckpointMTBF float64 `json:"checkpoint_mtbf,omitempty"`
	// Malleable and ResizeOverhead are the runtime-elasticity flags; the
	// restoring Config must match, or resumed resizes would change
	// semantics mid-run.
	Malleable      bool  `json:"malleable,omitempty"`
	ResizeOverhead int64 `json:"resize_overhead,omitempty"`

	Now        int64  `json:"now"`
	Dispatched uint64 `json:"dispatched"`
	Cycles     uint64 `json:"cycles"`

	DroppedECC  int `json:"dropped_ecc,omitempty"`
	FragRejects int `json:"frag_rejects,omitempty"`
	PeakWaste   int `json:"peak_waste,omitempty"`

	// Jobs holds every job the session owns, in admission order, with all
	// mutable fields (state, skip counts, ECC-adjusted requirements) as of
	// the capture instant. Queue membership and events reference jobs by
	// index into this slice.
	Jobs []job.Job `json:"jobs"`
	// Batch/Dedicated/Active list queue membership as Jobs indices in exact
	// queue order.
	Batch     []int `json:"batch,omitempty"`
	Dedicated []int `json:"dedicated,omitempty"`
	Active    []int `json:"active,omitempty"`

	Events []EventSnap `json:"events,omitempty"`

	Machine machine.Snapshot `json:"machine"`
	Metrics metrics.Snapshot `json:"metrics"`
	ECC     *ecc.Snapshot    `json:"ecc,omitempty"`

	// SchedState is the policy's opaque sched.Snapshotter encoding; empty
	// for stateless policies.
	SchedState []byte `json:"sched_state,omitempty"`
}

// wireCheckpoint maps a fault config's checkpoint knobs to their snapshot
// wire form: the policy verbatim plus its resolved base interval (the
// configured one for periodic, the derived sqrt(2·MTBF·C) for daly, 0
// otherwise). Pinning daly's base interval lets the mismatch check catch
// a restoring config whose MTBF or cost would re-derive different
// per-job intervals.
func wireCheckpoint(fc *FaultConfig) (fault.CheckpointPolicy, int64) {
	return fc.Checkpoint, fc.ResolvedCheckpointInterval()
}

// checkpointMismatch reports whether the snapshot's captured checkpoint
// knobs differ from the restoring fault config's (both in wire form, so
// intervals compare resolved).
func (sn *Snapshot) checkpointMismatch(fc *FaultConfig) bool {
	policy, err := fault.ParseCheckpointPolicy(sn.Checkpoint)
	if err != nil {
		return true
	}
	cfgPolicy, cfgIvl := wireCheckpoint(fc)
	return policy != cfgPolicy ||
		sn.CheckpointInterval != cfgIvl ||
		sn.CheckpointCost != fc.CheckpointCost ||
		(policy == fault.CheckpointDaly && sn.CheckpointMTBF != fc.MTBF)
}

// orNone renders the empty on-the-wire checkpoint policy as "none".
func orNone(p string) string {
	if p == "" {
		return "none"
	}
	return p
}

// Encode writes the snapshot as JSON.
func (sn *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(sn)
}

// DecodeSnapshot reads a snapshot previously written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	if err := json.NewDecoder(r).Decode(&sn); err != nil {
		return nil, fmt.Errorf("engine: decoding snapshot: %v", err)
	}
	if sn.Version != SnapshotVersion {
		return nil, fmt.Errorf("engine: snapshot version %d, want %d", sn.Version, SnapshotVersion)
	}
	return &sn, nil
}

// Snapshot captures the session's complete state. It may be called at any
// instant boundary — which is every point a caller can observe, since
// Step, RunUntil and Run all return between instants. The session is not
// perturbed and continues running; the snapshot shares nothing with it.
func (s *Session) Snapshot() (*Snapshot, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	sn := &Snapshot{
		Version:        SnapshotVersion,
		Scheduler:      s.cfg.Scheduler.Name(),
		M:              s.cfg.M,
		Unit:           s.cfg.Unit,
		Contiguous:     s.cfg.Contiguous,
		Migrate:        s.cfg.Migrate,
		ProcessECC:     s.cfg.ProcessECC,
		MaxECCPerJob:   s.cfg.MaxECCPerJob,
		Malleable:      s.cfg.Malleable,
		ResizeOverhead: s.cfg.ResizeOverhead,
		Now:            s.eng.Now(),
		Dispatched:     s.eng.Dispatched(),
		Cycles:         s.cycles,
		DroppedECC:     s.dropped,
		FragRejects:    s.fragRejects,
		PeakWaste:      s.peakWaste,
		Machine:        s.mach.Snapshot(),
		Metrics:        s.collector.Snapshot(),
	}
	if s.cfg.Faults != nil {
		p := s.cfg.Faults.Retry
		sn.Retry = &p
		// Policy none is the zero value and stays off the wire; daly is
		// captured verbatim with its resolved base interval plus the MTBF
		// it derives per-job intervals from (see the field comments).
		if s.cfg.Faults.Checkpoint != fault.CheckpointNone {
			policy, ivl := wireCheckpoint(s.cfg.Faults)
			sn.Checkpoint = policy.String()
			sn.CheckpointInterval = ivl
			sn.CheckpointCost = s.cfg.Faults.CheckpointCost
			if policy == fault.CheckpointDaly {
				sn.CheckpointMTBF = s.cfg.Faults.MTBF
			}
		}
	}
	index := make(map[*job.Job]int, len(s.jobs))
	sn.Jobs = make([]job.Job, len(s.jobs))
	for i, j := range s.jobs {
		index[j] = i
		sn.Jobs[i] = *j
	}
	idxOf := func(list []*job.Job) ([]int, error) {
		if len(list) == 0 {
			return nil, nil
		}
		out := make([]int, len(list))
		for i, j := range list {
			idx, ok := index[j]
			if !ok {
				return nil, fmt.Errorf("engine: snapshot found queued job %d the session does not own", j.ID)
			}
			out[i] = idx
		}
		return out, nil
	}
	var err error
	if sn.Batch, err = idxOf(s.batch.Jobs()); err != nil {
		return nil, err
	}
	if sn.Dedicated, err = idxOf(s.ded.Jobs()); err != nil {
		return nil, err
	}
	if sn.Active, err = idxOf(s.active.Jobs()); err != nil {
		return nil, err
	}

	for _, pe := range s.eng.PendingInOrder() {
		ev := EventSnap{Time: pe.Time, Job: -1}
		switch arg := pe.Arg.(type) {
		case nil:
			ev.Kind = evWake
		case *cwf.Command:
			ev.Kind = evCommand
			c := *arg
			ev.Cmd = &c
		case *fault.Event:
			if arg.Kind == fault.Fail {
				ev.Kind = evFail
			} else {
				ev.Kind = evRepair
			}
			ev.Groups = append([]int(nil), arg.Groups...)
		case *job.Job:
			idx, ok := index[arg]
			if !ok {
				return nil, fmt.Errorf("engine: snapshot found pending event for job %d the session does not own", arg.ID)
			}
			ev.Job = idx
			// A job pointer argument is the job's arrival, its completion,
			// or its next checkpoint; the completion is the one whose handle
			// the completion table holds, the checkpoint the one in the
			// checkpoint table.
			if pe.Handle == s.getCompletion(arg.ID) {
				ev.Kind = evComplete
			} else if h, ok := s.ckpt[arg.ID]; ok && pe.Handle == h {
				ev.Kind = evCkpt
			} else {
				ev.Kind = evArrive
			}
		default:
			return nil, fmt.Errorf("engine: snapshot found pending event with unknown argument %T", pe.Arg)
		}
		sn.Events = append(sn.Events, ev)
	}

	if s.proc != nil {
		p := s.proc.Snapshot()
		sn.ECC = &p
	}
	if sshot, ok := s.cfg.Scheduler.(sched.Snapshotter); ok {
		b, err := sshot.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("engine: capturing %s state: %v", s.cfg.Scheduler.Name(), err)
		}
		sn.SchedState = b
	}
	return sn, nil
}

// Restore reinstates a captured snapshot into this session, which must be
// fresh (no Load, no injections, no steps). The session's Config must
// match the snapshot's geometry and feature flags. The configured
// scheduler need not be the captured one — restoring under a different
// policy is the supported policy-swap resume — but when it is the same
// policy and the snapshot carries policy state, that state is reinstated
// (and the policy must support it).
//
// After Restore the session continues exactly where the captured one
// stood: running it to completion yields a Result identical to the
// uninterrupted run's.
func (s *Session) Restore(sn *Snapshot) error {
	if !s.pristine() {
		return fmt.Errorf("engine: Restore on a session that already has work")
	}
	if sn.Version != SnapshotVersion {
		return fmt.Errorf("engine: snapshot version %d, want %d", sn.Version, SnapshotVersion)
	}
	switch {
	case sn.M != s.cfg.M || sn.Unit != s.cfg.Unit:
		return fmt.Errorf("engine: snapshot machine %d/%d, config %d/%d", sn.M, sn.Unit, s.cfg.M, s.cfg.Unit)
	case sn.Contiguous != s.cfg.Contiguous || sn.Migrate != s.cfg.Migrate:
		return fmt.Errorf("engine: snapshot allocation mode (contiguous=%v migrate=%v) differs from config (contiguous=%v migrate=%v)",
			sn.Contiguous, sn.Migrate, s.cfg.Contiguous, s.cfg.Migrate)
	case sn.ProcessECC != s.cfg.ProcessECC || sn.MaxECCPerJob != s.cfg.MaxECCPerJob:
		return fmt.Errorf("engine: snapshot ECC processing (%v/%d) differs from config (%v/%d)",
			sn.ProcessECC, sn.MaxECCPerJob, s.cfg.ProcessECC, s.cfg.MaxECCPerJob)
	case (sn.Retry != nil) != (s.cfg.Faults != nil):
		return fmt.Errorf("engine: snapshot fault injection (%v) differs from config (%v)",
			sn.Retry != nil, s.cfg.Faults != nil)
	case sn.Retry != nil && *sn.Retry != s.cfg.Faults.Retry:
		return fmt.Errorf("engine: snapshot retry policy %+v differs from config %+v", *sn.Retry, s.cfg.Faults.Retry)
	case sn.Retry != nil && sn.checkpointMismatch(s.cfg.Faults):
		return fmt.Errorf("engine: snapshot checkpointing (%s/%d/%d) differs from config (%s/%d/%d)",
			orNone(sn.Checkpoint), sn.CheckpointInterval, sn.CheckpointCost,
			s.cfg.Faults.Checkpoint, s.cfg.Faults.ResolvedCheckpointInterval(), s.cfg.Faults.CheckpointCost)
	case sn.Malleable != s.cfg.Malleable || sn.ResizeOverhead != s.cfg.ResizeOverhead:
		return fmt.Errorf("engine: snapshot malleability (%v/%d) differs from config (%v/%d)",
			sn.Malleable, sn.ResizeOverhead, s.cfg.Malleable, s.cfg.ResizeOverhead)
	case sn.Metrics.M != s.cfg.M:
		return fmt.Errorf("engine: snapshot metrics for machine %d, config %d", sn.Metrics.M, s.cfg.M)
	}

	// Jobs: one backing slice, pointers into it everywhere (queues, events,
	// machine ownership is by ID).
	clones := make([]job.Job, len(sn.Jobs))
	copy(clones, sn.Jobs)
	jobs := make([]*job.Job, len(clones))
	maxID := 0
	hetero := false
	for i := range clones {
		jobs[i] = &clones[i]
		if clones[i].ID > maxID {
			maxID = clones[i].ID
		}
		if clones[i].Class == job.Dedicated && clones[i].State != job.Finished {
			hetero = true
		}
	}
	if hetero && !s.cfg.Scheduler.Heterogeneous() {
		return fmt.Errorf("engine: snapshot has live dedicated jobs but %s is batch-only", s.cfg.Scheduler.Name())
	}

	jobAt := func(idx int, where string) (*job.Job, error) {
		if idx < 0 || idx >= len(jobs) {
			return nil, fmt.Errorf("engine: snapshot %s references job index %d of %d", where, idx, len(jobs))
		}
		return jobs[idx], nil
	}

	mach, err := machine.FromSnapshot(sn.Machine)
	if err != nil {
		return fmt.Errorf("engine: restoring machine: %v", err)
	}
	if mach.Total() != s.cfg.M || mach.Unit() != s.cfg.Unit {
		return fmt.Errorf("engine: snapshot machine state is %d/%d, config %d/%d", mach.Total(), mach.Unit(), s.cfg.M, s.cfg.Unit)
	}

	// All validation that can fail is done; commit to the session.
	s.jobs = jobs
	s.sizeCompletionTable(maxID, len(jobs))
	s.mach = mach
	s.ctx.Machine = mach
	s.collector = metrics.NewCollectorFromSnapshot(sn.Metrics)
	if s.cfg.ExportSamples {
		s.collector.RetainSamples()
	}
	if s.cfg.ProcessECC {
		if sn.ECC != nil {
			s.proc = ecc.NewProcessorFromSnapshot(*sn.ECC)
		} else {
			s.proc = ecc.NewProcessor(s.cfg.MaxECCPerJob)
		}
	}
	s.dropped = sn.DroppedECC
	s.cycles = sn.Cycles
	s.fragRejects = sn.FragRejects
	s.peakWaste = sn.PeakWaste

	for _, idx := range sn.Batch {
		j, err := jobAt(idx, "batch queue")
		if err != nil {
			return err
		}
		s.batch.Push(j) // plain tail append: reproduces captured order, rigid prefix included
	}
	for _, idx := range sn.Dedicated {
		j, err := jobAt(idx, "dedicated queue")
		if err != nil {
			return err
		}
		s.ded.Push(j)
	}
	for _, idx := range sn.Active {
		j, err := jobAt(idx, "active list")
		if err != nil {
			return err
		}
		s.active.Insert(j)
	}

	// Re-schedule pending events in captured dispatch order: the kernel
	// assigns sequence numbers monotonically, so this order IS the restored
	// dispatch order.
	for _, ev := range sn.Events {
		if ev.Time < sn.Now {
			return fmt.Errorf("engine: snapshot event at t=%d before snapshot time %d", ev.Time, sn.Now)
		}
		switch ev.Kind {
		case evArrive:
			j, err := jobAt(ev.Job, "arrival event")
			if err != nil {
				return err
			}
			s.eng.AtArg(ev.Time, s.arriveH, j)
		case evComplete:
			j, err := jobAt(ev.Job, "completion event")
			if err != nil {
				return err
			}
			if j.State != job.Running {
				return fmt.Errorf("engine: snapshot completion for job %d in state %v", j.ID, j.State)
			}
			s.setCompletion(j.ID, s.eng.AtArg(ev.Time, s.completeH, j))
		case evCkpt:
			j, err := jobAt(ev.Job, "checkpoint event")
			if err != nil {
				return err
			}
			if j.State != job.Running {
				return fmt.Errorf("engine: snapshot checkpoint for job %d in state %v", j.ID, j.State)
			}
			if s.ckptH == nil {
				return fmt.Errorf("engine: snapshot checkpoint event at t=%d but the config schedules no checkpoints", ev.Time)
			}
			if _, dup := s.ckpt[j.ID]; dup {
				return fmt.Errorf("engine: snapshot has two pending checkpoints for job %d", j.ID)
			}
			s.ckpt[j.ID] = s.eng.AtArg(ev.Time, s.ckptH, j)
		case evCommand:
			if ev.Cmd == nil {
				return fmt.Errorf("engine: snapshot command event at t=%d without a command", ev.Time)
			}
			cp := new(cwf.Command)
			*cp = *ev.Cmd
			s.eng.AtArg(ev.Time, s.commandH, cp)
		case evWake:
			s.eng.At(ev.Time, noopWake)
		case evFail, evRepair:
			if sn.Retry == nil {
				return fmt.Errorf("engine: snapshot %s event at t=%d without fault injection", ev.Kind, ev.Time)
			}
			kind := fault.Fail
			if ev.Kind == evRepair {
				kind = fault.Repair
			}
			fe := &fault.Event{Time: ev.Time, Kind: kind, Groups: append([]int(nil), ev.Groups...)}
			if len(fe.Groups) == 0 {
				return fmt.Errorf("engine: snapshot %s event at t=%d names no groups", ev.Kind, ev.Time)
			}
			for _, g := range fe.Groups {
				if g < 0 || g >= s.mach.NumGroups() {
					return fmt.Errorf("engine: snapshot %s event at t=%d group %d out of range", ev.Kind, ev.Time, g)
				}
			}
			s.eng.AtArg(ev.Time, s.faultH, fe)
		default:
			return fmt.Errorf("engine: snapshot event kind %q unknown", ev.Kind)
		}
	}
	s.eng.RestoreClock(sn.Now, sn.Dispatched)

	if len(sn.SchedState) > 0 && sn.Scheduler == s.cfg.Scheduler.Name() {
		sshot, ok := s.cfg.Scheduler.(sched.Snapshotter)
		if !ok {
			return fmt.Errorf("engine: snapshot carries %s state but the configured policy cannot restore it", sn.Scheduler)
		}
		if err := sshot.RestoreState(sn.SchedState); err != nil {
			return fmt.Errorf("engine: restoring %s state: %v", sn.Scheduler, err)
		}
	}
	if s.st != nil {
		// Arm delta delivery and invalidate any caches: the restore-rebuild
		// rule — delta-maintained state is never carried across sessions, it
		// is rebuilt from the restored queues and active list on the first
		// cycle.
		s.st.ResetDeltas()
	}
	s.loaded = true
	return nil
}
