// Package swf reads and writes the Standard Workload Format (SWF) of the
// Parallel Workloads Archive: one job per line, 18 whitespace-separated
// numeric fields, with ';' header/comment lines. Unknown or unavailable
// values are -1 by convention.
//
// The paper's Cloud Workload Format (package cwf) extends SWF with three
// fields for runtime elasticity; this package handles the classic 18-field
// core so real archive logs can be replayed directly.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one SWF job line. Field numbering follows the SWF definition
// (fields 1-18).
type Record struct {
	JobID          int   // 1
	SubmitTime     int64 // 2: seconds from log start
	WaitTime       int64 // 3
	RunTime        int64 // 4: actual runtime
	UsedProcs      int   // 5: allocated processors
	AvgCPUTime     int64 // 6
	UsedMemory     int64 // 7
	ReqProcs       int   // 8: requested processors
	ReqTime        int64 // 9: user runtime estimate
	ReqMemory      int64 // 10
	Status         int   // 11
	UserID         int   // 12
	GroupID        int   // 13
	ExecutableID   int   // 14
	QueueID        int   // 15
	PartitionID    int   // 16
	PrecedingJobID int   // 17
	ThinkTime      int64 // 18
}

// Unknown is the SWF convention for a missing value.
const Unknown = -1

// NewRecord returns a record with every field set to Unknown except JobID.
func NewRecord(id int) Record {
	return Record{
		JobID: id, SubmitTime: Unknown, WaitTime: Unknown, RunTime: Unknown,
		UsedProcs: Unknown, AvgCPUTime: Unknown, UsedMemory: Unknown,
		ReqProcs: Unknown, ReqTime: Unknown, ReqMemory: Unknown,
		Status: Unknown, UserID: Unknown, GroupID: Unknown,
		ExecutableID: Unknown, QueueID: Unknown, PartitionID: Unknown,
		PrecedingJobID: Unknown, ThinkTime: Unknown,
	}
}

// Processors returns the job's processor demand, preferring the requested
// count and falling back to the used count, as schedulers conventionally do
// when replaying archive logs.
func (r Record) Processors() int {
	if r.ReqProcs > 0 {
		return r.ReqProcs
	}
	return r.UsedProcs
}

// Estimate returns the user runtime estimate, falling back to the actual
// runtime when no estimate was recorded.
func (r Record) Estimate() int64 {
	if r.ReqTime > 0 {
		return r.ReqTime
	}
	return r.RunTime
}

// Fields returns the record's 18 fields in SWF order.
func (r Record) Fields() []int64 {
	return []int64{
		int64(r.JobID), r.SubmitTime, r.WaitTime, r.RunTime,
		int64(r.UsedProcs), r.AvgCPUTime, r.UsedMemory,
		int64(r.ReqProcs), r.ReqTime, r.ReqMemory,
		int64(r.Status), int64(r.UserID), int64(r.GroupID),
		int64(r.ExecutableID), int64(r.QueueID), int64(r.PartitionID),
		int64(r.PrecedingJobID), r.ThinkTime,
	}
}

// Log is a parsed SWF file: header comments plus job records.
type Log struct {
	Header  []string // header comment lines without the leading ';'
	Records []Record
}

// HeaderField returns the value of a "; Name: value" archive header line
// (case-insensitive on the name), or "" if absent.
func (l *Log) HeaderField(name string) string { return FieldFromHeader(l.Header, name) }

// MaxNodes returns the machine size declared in the archive header
// (MaxProcs preferred, falling back to MaxNodes), or 0 when the log does
// not declare one. Replay tools use it to size the simulated machine.
func (l *Log) MaxNodes() int { return MaxNodesFromHeader(l.Header) }

// FieldFromHeader extracts a "Name: value" entry from header lines
// (case-insensitive on the name), or "" if absent.
func FieldFromHeader(header []string, name string) string {
	prefix := strings.ToLower(name) + ":"
	for _, h := range header {
		if len(h) > len(prefix) && strings.HasPrefix(strings.ToLower(h), prefix) {
			return strings.TrimSpace(h[len(prefix):])
		}
	}
	return ""
}

// MaxNodesFromHeader returns the declared machine size (MaxProcs preferred,
// then MaxNodes), or 0.
func MaxNodesFromHeader(header []string) int {
	for _, key := range []string{"MaxProcs", "MaxNodes"} {
		if v := FieldFromHeader(header, key); v != "" {
			if n, err := strconv.Atoi(strings.Fields(v)[0]); err == nil && n > 0 {
				return n
			}
		}
	}
	return 0
}

// ParseFields fills a record from at least 18 numeric tokens.
func ParseFields(tok []string) (Record, error) {
	if len(tok) < 18 {
		return Record{}, fmt.Errorf("swf: %d fields, want >= 18", len(tok))
	}
	var v [18]int64
	for i := 0; i < 18; i++ {
		f, err := strconv.ParseFloat(tok[i], 64)
		if err != nil {
			return Record{}, fmt.Errorf("swf: field %d %q: %v", i+1, tok[i], err)
		}
		v[i] = int64(f)
	}
	return Record{
		JobID: int(v[0]), SubmitTime: v[1], WaitTime: v[2], RunTime: v[3],
		UsedProcs: int(v[4]), AvgCPUTime: v[5], UsedMemory: v[6],
		ReqProcs: int(v[7]), ReqTime: v[8], ReqMemory: v[9],
		Status: int(v[10]), UserID: int(v[11]), GroupID: int(v[12]),
		ExecutableID: int(v[13]), QueueID: int(v[14]), PartitionID: int(v[15]),
		PrecedingJobID: int(v[16]), ThinkTime: v[17],
	}, nil
}

// Parse reads an SWF stream.
func Parse(r io.Reader) (*Log, error) {
	log := &Log{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			log.Header = append(log.Header, strings.TrimSpace(strings.TrimPrefix(line, ";")))
			continue
		}
		rec, err := ParseFields(strings.Fields(line))
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		log.Records = append(log.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return log, nil
}

// Write emits the log in SWF text form.
func Write(w io.Writer, log *Log) error {
	bw := bufio.NewWriter(w)
	for _, h := range log.Header {
		if _, err := fmt.Fprintf(bw, "; %s\n", h); err != nil {
			return err
		}
	}
	for _, rec := range log.Records {
		if err := writeFields(bw, rec.Fields()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeFields(w io.Writer, fields []int64) error {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = strconv.FormatInt(f, 10)
	}
	_, err := fmt.Fprintln(w, strings.Join(parts, " "))
	return err
}

// ScaleArrivals multiplies every submit time by factor, the load-variation
// technique of Shmueli & Feitelson (and the paper's Figure 1): stretching
// inter-arrival gaps lowers the offered load, compressing them raises it.
func ScaleArrivals(log *Log, factor float64) {
	for i := range log.Records {
		if log.Records[i].SubmitTime >= 0 {
			log.Records[i].SubmitTime = int64(float64(log.Records[i].SubmitTime) * factor)
		}
	}
}
