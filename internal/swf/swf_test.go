package swf

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sample = `; Version: 2.2
; MaxNodes: 128
1 0 -1 100 4 -1 -1 4 120 -1 1 1 1 -1 1 -1 -1 -1
2 50 10 200 8 -1 -1 8 250 -1 1 2 1 -1 1 -1 -1 -1
3 90 -1 50 1 -1 -1 -1 -1 -1 0 3 2 -1 2 -1 -1 -1
`

func TestParseSample(t *testing.T) {
	log, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Header) != 2 {
		t.Errorf("header lines = %d, want 2", len(log.Header))
	}
	if log.Header[1] != "MaxNodes: 128" {
		t.Errorf("header[1] = %q", log.Header[1])
	}
	if len(log.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(log.Records))
	}
	r := log.Records[1]
	if r.JobID != 2 || r.SubmitTime != 50 || r.WaitTime != 10 || r.RunTime != 200 ||
		r.UsedProcs != 8 || r.ReqProcs != 8 || r.ReqTime != 250 || r.UserID != 2 {
		t.Errorf("record 2 parsed wrong: %+v", r)
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	log, err := Parse(strings.NewReader("\n\n" + sample + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 3 {
		t.Errorf("records = %d, want 3", len(log.Records))
	}
}

func TestParseTooFewFields(t *testing.T) {
	if _, err := Parse(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line accepted")
	}
}

func TestParseBadNumber(t *testing.T) {
	bad := strings.Replace(sample, "200", "abc", 1)
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestParseFloatFieldsTruncate(t *testing.T) {
	// Some archive logs carry float fields (e.g. average CPU time).
	line := "1 0 -1 100.7 4 12.5 -1 4 120 -1 1 1 1 -1 1 -1 -1 -1"
	log, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if log.Records[0].RunTime != 100 || log.Records[0].AvgCPUTime != 12 {
		t.Errorf("float truncation wrong: %+v", log.Records[0])
	}
}

func TestProcessorsPrefersRequested(t *testing.T) {
	r := NewRecord(1)
	r.UsedProcs = 4
	if r.Processors() != 4 {
		t.Error("should fall back to used procs")
	}
	r.ReqProcs = 8
	if r.Processors() != 8 {
		t.Error("should prefer requested procs")
	}
}

func TestEstimatePrefersRequestedTime(t *testing.T) {
	r := NewRecord(1)
	r.RunTime = 100
	if r.Estimate() != 100 {
		t.Error("should fall back to runtime")
	}
	r.ReqTime = 150
	if r.Estimate() != 150 {
		t.Error("should prefer requested time")
	}
}

func TestNewRecordAllUnknown(t *testing.T) {
	r := NewRecord(5)
	f := r.Fields()
	if f[0] != 5 {
		t.Errorf("field 1 = %d, want 5", f[0])
	}
	for i := 1; i < 18; i++ {
		if f[i] != Unknown {
			t.Errorf("field %d = %d, want -1", i+1, f[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	log, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, log); err != nil {
		t.Fatal(err)
	}
	log2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log2.Records) != len(log.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(log2.Records), len(log.Records))
	}
	for i := range log.Records {
		if log.Records[i] != log2.Records[i] {
			t.Errorf("record %d changed: %+v vs %+v", i, log.Records[i], log2.Records[i])
		}
	}
	if len(log2.Header) != len(log.Header) {
		t.Errorf("header changed: %v vs %v", log2.Header, log.Header)
	}
}

func TestScaleArrivals(t *testing.T) {
	log, _ := Parse(strings.NewReader(sample))
	ScaleArrivals(log, 2.0)
	if log.Records[0].SubmitTime != 0 || log.Records[1].SubmitTime != 100 || log.Records[2].SubmitTime != 180 {
		t.Errorf("scaled submits wrong: %d %d %d",
			log.Records[0].SubmitTime, log.Records[1].SubmitTime, log.Records[2].SubmitTime)
	}
}

func TestScaleArrivalsSkipsUnknown(t *testing.T) {
	log := &Log{Records: []Record{NewRecord(1)}}
	ScaleArrivals(log, 2.0)
	if log.Records[0].SubmitTime != Unknown {
		t.Error("unknown submit time was scaled")
	}
}

func TestParseArchiveSampleFile(t *testing.T) {
	f, err := os.Open("testdata/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 12 {
		t.Fatalf("parsed %d records, want 12", len(log.Records))
	}
	if len(log.Header) != 6 {
		t.Errorf("parsed %d header lines, want 6", len(log.Header))
	}
	// Spot-check the biggest job.
	r := log.Records[9]
	if r.JobID != 10 || r.ReqProcs != 128 || r.RunTime != 10800 || r.WaitTime != 40 {
		t.Errorf("record 10 wrong: %+v", r)
	}
	// Estimates differ from runtimes in this log (real-log property).
	if log.Records[0].Estimate() == log.Records[0].RunTime {
		t.Error("job 1 should have estimate != runtime")
	}
}

func TestHeaderField(t *testing.T) {
	log, _ := Parse(strings.NewReader(sample))
	if got := log.HeaderField("MaxNodes"); got != "128" {
		t.Errorf("HeaderField(MaxNodes) = %q, want 128", got)
	}
	if got := log.HeaderField("maxnodes"); got != "128" {
		t.Errorf("case-insensitive lookup failed: %q", got)
	}
	if got := log.HeaderField("Nope"); got != "" {
		t.Errorf("absent field = %q", got)
	}
}

func TestMaxNodes(t *testing.T) {
	log, _ := Parse(strings.NewReader(sample))
	if got := log.MaxNodes(); got != 128 {
		t.Errorf("MaxNodes = %d, want 128", got)
	}
	// MaxProcs takes precedence when both are present.
	both := "; MaxNodes: 64\n; MaxProcs: 512\n" + "1 0 -1 10 4 -1 -1 4 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	log2, _ := Parse(strings.NewReader(both))
	if got := log2.MaxNodes(); got != 512 {
		t.Errorf("MaxProcs precedence failed: %d", got)
	}
	empty := &Log{}
	if empty.MaxNodes() != 0 {
		t.Error("no header should give 0")
	}
}
