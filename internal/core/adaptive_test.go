package core

import (
	"testing"

	"elastisched/internal/sched"
	"elastisched/internal/testkit"
)

func TestAdaptiveStartsInEASYMode(t *testing.T) {
	a := NewAdaptive(7)
	h := testkit.New(320, 32)
	h.AddBatch(1, 128, 100)
	h.Cycle(a)
	if a.Mode() != "EASY" {
		t.Errorf("initial mode %q, want EASY (optimistic small-job prior)", a.Mode())
	}
	wantIDsOrder(t, h.StartedIDs(), []int{1})
}

func TestAdaptiveSwitchesToDelayedOnLargeJobs(t *testing.T) {
	a := NewAdaptive(7)
	a.Alpha = 0.5 // fast adaptation for the test
	h := testkit.New(320, 32)
	// A stream of large jobs drives the small-job estimate down.
	for i := 1; i <= 8; i++ {
		h.AddBatch(i, 256, 1000)
	}
	h.Cycle(a)
	if a.Mode() != "Delayed-LOS" {
		t.Errorf("mode after large-job burst %q, want Delayed-LOS (est %.3f)", a.Mode(), a.est)
	}
}

func TestAdaptiveObservesEachJobOnce(t *testing.T) {
	a := NewAdaptive(7)
	a.Alpha = 0.5
	h := testkit.New(320, 32)
	h.AddRunning(9, 320, 100) // nothing can start; queue persists
	h.AddBatch(1, 256, 1000)
	h.Cycle(a)
	est1 := a.est
	h.Cycle(a) // same queue re-observed: estimate must not move
	if a.est != est1 {
		t.Errorf("estimate drifted on re-observation: %g -> %g", est1, a.est)
	}
}

func TestAdaptiveDelegatesDelayedPacking(t *testing.T) {
	a := NewAdaptive(7)
	a.Alpha = 1 // adopt the last observation outright
	h := testkit.New(320, 32)
	// Prime with a large job so the selector is in Delayed-LOS mode, then
	// verify the Figure 2 packing.
	h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(a)
	if a.Mode() != "Delayed-LOS" {
		t.Fatalf("mode %q", a.Mode())
	}
	wantIDSet(t, h.StartedIDs(), []int{2, 3})
}

func TestAdaptiveFlags(t *testing.T) {
	a := NewAdaptive(7)
	if a.Name() != "Adaptive" || a.Heterogeneous() {
		t.Error("flags wrong")
	}
}

// The built-in policies honor the scheduler contract; any new policy should
// add an equivalent test (see testkit.CheckSchedulerContract).
func TestDelayedLOSContract(t *testing.T) {
	testkit.CheckSchedulerContract(t, func() sched.Scheduler { return NewDelayedLOS(7) },
		testkit.ContractOptions{Elastic: true})
}

func TestHybridLOSContract(t *testing.T) {
	testkit.CheckSchedulerContract(t, func() sched.Scheduler { return NewHybridLOS(7) },
		testkit.ContractOptions{Heterogeneous: true, Elastic: true})
}

func TestAdaptiveContract(t *testing.T) {
	testkit.CheckSchedulerContract(t, func() sched.Scheduler { return NewAdaptive(7) },
		testkit.ContractOptions{})
}
