// Package core implements the paper's primary contribution: the LOS family
// of dynamic-programming schedulers — LOS (Shmueli & Feitelson's Lookahead
// Optimizing Scheduler, the baseline), Delayed-LOS (Algorithm 1), and
// Hybrid-LOS (Algorithms 2-3) — plus the Basic_DP and Reservation_DP
// packing programs they share.
package core

import (
	"elastisched/internal/job"
)

// DefaultLookahead bounds the DP candidate window, the LOS paper's
// complexity containment (50 jobs keeps packing quality with tractable
// runtime).
const DefaultLookahead = 50

// Scratch holds reusable DP buffers so per-cycle scheduling does not
// allocate. A Scratch (and therefore a scheduler that embeds one) must not
// be shared between concurrently running simulations.
type Scratch struct {
	buf []int32
}

func (s *Scratch) grow(n int) []int32 {
	if cap(s.buf) < n {
		s.buf = make([]int32, n)
	}
	s.buf = s.buf[:n]
	for i := range s.buf {
		s.buf[i] = 0
	}
	return s.buf
}

// gcdInt returns the greatest common divisor of a and b.
func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// quantum returns the largest g dividing every candidate size and every
// capacity bound, used to compress the DP capacity axes. For the simulated
// BlueGene/P (all sizes multiples of 32) this shrinks the Reservation_DP
// state by 32x32.
func quantum(cands []*job.Job, caps ...int) int {
	g := 0
	for _, c := range caps {
		if c > 0 {
			g = gcdInt(g, c)
		}
	}
	for _, j := range cands {
		g = gcdInt(g, j.Size)
	}
	if g <= 0 {
		g = 1
	}
	return g
}

// BasicDP is the paper's Basic_DP: choose the subset of waiting jobs that
// maximizes current utilization, i.e. a 0/1 knapsack over the candidate
// window with weight = value = job size and capacity m. Candidates must
// already fit individually (size <= m); WaitingWindow guarantees that.
//
// The traceback prefers including earlier-queued jobs: the head job is
// selected whenever *some* maximum-utilization subset contains it, which is
// the property Delayed-LOS's skip count relies on.
func BasicDP(cands []*job.Job, m int, s *Scratch) []*job.Job {
	if len(cands) == 0 || m <= 0 {
		return nil
	}
	// Fast path: everything fits together.
	total := 0
	for _, j := range cands {
		total += j.Size
	}
	if total <= m {
		return append([]*job.Job(nil), cands...)
	}

	g := quantum(cands, m)
	n := len(cands)
	C := m / g
	w := make([]int, n)
	for i, j := range cands {
		w[i] = j.Size / g
	}
	// dp[i*(C+1)+c] = max utilization using jobs i..n-1 with capacity c.
	dp := s.grow((n + 1) * (C + 1))
	for i := n - 1; i >= 0; i-- {
		row := dp[i*(C+1):]
		next := dp[(i+1)*(C+1):]
		wi := int32(w[i])
		for c := 0; c <= C; c++ {
			best := next[c]
			if w[i] <= c {
				if v := wi + next[c-w[i]]; v > best {
					best = v
				}
			}
			row[c] = best
		}
	}
	// Traceback, preferring inclusion (earlier jobs first).
	sel := make([]*job.Job, 0, n)
	c := C
	for i := 0; i < n; i++ {
		if w[i] <= c && dp[i*(C+1)+c] == int32(w[i])+dp[(i+1)*(C+1)+c-w[i]] {
			sel = append(sel, cands[i])
			c -= w[i]
		}
	}
	return sel
}

// ReservationDP is the paper's Reservation_DP: maximize current utilization
// subject to two constraints — the current free capacity m, and the freeze
// end capacity frec available at the freeze end time fret. A candidate that
// finishes strictly before fret (now + dur < fret) has zero freeze demand
// (frenum = 0); one that would still run at fret demands its full size from
// the freeze capacity, exactly the paper's
//
//	frenum <- (t + dur < fret) ? 0 : num.
//
// This is a 0/1 knapsack with two capacity dimensions, solved exactly over
// the candidate window.
func ReservationDP(cands []*job.Job, m, frec int, fret, now int64, s *Scratch) []*job.Job {
	if len(cands) == 0 || m <= 0 {
		return nil
	}
	if frec < 0 {
		frec = 0
	}
	// frenum per candidate.
	n := len(cands)
	fnum := make([]int, n)
	total1, total2 := 0, 0
	for i, j := range cands {
		if now+j.Dur < fret {
			fnum[i] = 0
		} else {
			fnum[i] = j.Size
		}
		total1 += j.Size
		total2 += fnum[i]
	}
	// Fast path: all candidates fit both constraints.
	if total1 <= m && total2 <= frec {
		return append([]*job.Job(nil), cands...)
	}

	g := quantum(cands, m, frec)
	C1 := m / g
	C2 := frec / g
	w1 := make([]int, n)
	w2 := make([]int, n)
	for i, j := range cands {
		w1[i] = j.Size / g
		w2[i] = fnum[i] / g
	}
	stride := C2 + 1
	plane := (C1 + 1) * stride
	dp := s.grow((n + 1) * plane)
	for i := n - 1; i >= 0; i-- {
		cur := dp[i*plane : (i+1)*plane]
		next := dp[(i+1)*plane : (i+2)*plane]
		wi1, wi2 := w1[i], w2[i]
		v := int32(wi1)
		for c1 := 0; c1 <= C1; c1++ {
			rowOff := c1 * stride
			for c2 := 0; c2 <= C2; c2++ {
				best := next[rowOff+c2]
				if wi1 <= c1 && wi2 <= c2 {
					if x := v + next[(c1-wi1)*stride+c2-wi2]; x > best {
						best = x
					}
				}
				cur[rowOff+c2] = best
			}
		}
	}
	sel := make([]*job.Job, 0, n)
	c1, c2 := C1, C2
	for i := 0; i < n; i++ {
		if w1[i] <= c1 && w2[i] <= c2 {
			with := int32(w1[i]) + dp[(i+1)*plane+(c1-w1[i])*stride+c2-w2[i]]
			if dp[i*plane+c1*stride+c2] == with {
				sel = append(sel, cands[i])
				c1 -= w1[i]
				c2 -= w2[i]
			}
		}
	}
	return sel
}

// Contains reports whether set includes j (by identity).
func Contains(set []*job.Job, j *job.Job) bool {
	for _, x := range set {
		if x == j {
			return true
		}
	}
	return false
}
