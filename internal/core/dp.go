// Package core implements the paper's primary contribution: the LOS family
// of dynamic-programming schedulers — LOS (Shmueli & Feitelson's Lookahead
// Optimizing Scheduler, the baseline), Delayed-LOS (Algorithm 1), and
// Hybrid-LOS (Algorithms 2-3) — plus the Basic_DP and Reservation_DP
// packing programs they share.
//
// The packing programs run on a fast path engineered for the simulator's
// hot loop (see DESIGN.md, "Packing-engine performance"): a per-Scratch
// cycle memo returns the previous selection in O(n) when the DP inputs are
// unchanged, Reservation_DP collapses to a single knapsack whenever one of
// its two capacity constraints is slack, DP rows are filled only up to the
// running suffix weight, and the steady state allocates nothing. The
// original naive programs are retained in dp_reference.go as the oracle
// for the differential tests.
package core

import (
	"elastisched/internal/job"
)

// DefaultLookahead bounds the DP candidate window, the LOS paper's
// complexity containment (50 jobs keeps packing quality with tractable
// runtime).
const DefaultLookahead = 50

// Scratch holds reusable DP buffers and the single-entry cycle memo so
// per-cycle scheduling does not allocate. A Scratch (and therefore a
// scheduler that embeds one) must not be shared between concurrently
// running simulations.
//
// Aliasing contract: the []*job.Job slice returned by BasicDP and
// ReservationDP is owned by the Scratch and remains valid only until the
// next BasicDP/ReservationDP call on the same Scratch; callers that retain
// a selection across calls must copy it. All in-tree callers consume the
// selection before scheduling again.
type Scratch struct {
	buf    []int32    // DP value table
	ints   []int      // per-candidate weights and suffix weight sums
	sel    []*job.Job // materialized selection handed to the caller
	selIdx []int32    // selection as indices into the candidate window

	// Cycle memo: lastKey fingerprints the previous solve's inputs and
	// selIdx its selection. Consecutive scheduling instants with an
	// unchanged waiting window hit the memo and skip the DP entirely.
	key, lastKey []int64
	memoOK       bool
	hits, misses uint64
}

// Memo key kinds. Basic_DP and Reservation_DP selections are never
// interchangeable, so the kind is part of the fingerprint.
const (
	memoBasic int64 = 1 + iota
	memoReservation
)

// MemoStats reports cycle-memo hits and misses over the Scratch's
// lifetime, for diagnostics and benchmarks.
func (s *Scratch) MemoStats() (hits, misses uint64) { return s.hits, s.misses }

// memoLookup fingerprints the DP inputs that determine a selection and
// reports whether they match the previous solve on this Scratch. The key
// deliberately excludes job identity: the memoized selection is stored as
// window indices, so equal (size, freeze demand) vectors under equal
// capacities select the same indices regardless of which jobs occupy the
// slots. cut is fret-now for Reservation_DP — a candidate with Dur >= cut
// still runs at the freeze end and demands its full size there — and is
// irrelevant for Basic_DP, whose selection depends on sizes only.
func (s *Scratch) memoLookup(kind int64, cands []*job.Job, m, frec int, cut int64) bool {
	k := append(s.key[:0], kind, int64(len(cands)), int64(m), int64(frec))
	if kind == memoReservation {
		for _, j := range cands {
			e := int64(j.Size) << 1
			if j.Dur >= cut {
				e |= 1
			}
			k = append(k, e)
		}
	} else {
		for _, j := range cands {
			k = append(k, int64(j.Size)<<1)
		}
	}
	s.key = k
	if s.memoOK && int64sEqual(k, s.lastKey) {
		s.hits++
		return true
	}
	s.misses++
	return false
}

// memoStore publishes the just-computed selection (already in selIdx) for
// the key built by the preceding memoLookup.
func (s *Scratch) memoStore() {
	s.key, s.lastKey = s.lastKey, s.key
	s.memoOK = true
}

// selection materializes selIdx against the current candidate window into
// the Scratch-owned result slice.
func (s *Scratch) selection(cands []*job.Job) []*job.Job {
	sel := s.sel[:0]
	for _, i := range s.selIdx {
		sel = append(sel, cands[i])
	}
	s.sel = sel
	return sel
}

// selectAll records the whole window as selected.
func (s *Scratch) selectAll(n int) {
	for i := 0; i < n; i++ {
		s.selIdx = append(s.selIdx, int32(i))
	}
}

// growRaw returns an n-element DP buffer WITHOUT zeroing: every DP fill
// writes each cell it later reads (reads beyond a row's clamp are
// redirected into the filled region), so only the base-case cell needs
// initialization.
func (s *Scratch) growRaw(n int) []int32 {
	if cap(s.buf) < n {
		s.buf = make([]int32, n)
	}
	return s.buf[:n]
}

// intsBuf returns an n-element integer scratch buffer (uninitialized).
func (s *Scratch) intsBuf(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	return s.ints[:n]
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gcdInt returns the greatest common divisor of a and b.
func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// quantum returns the largest g dividing every candidate size and every
// capacity bound, used to compress the DP capacity axes. For the simulated
// BlueGene/P (all sizes multiples of 32) this shrinks the Reservation_DP
// state by 32x32.
func quantum(cands []*job.Job, caps ...int) int {
	g := 0
	for _, c := range caps {
		if c > 0 {
			g = gcdInt(g, c)
		}
	}
	for _, j := range cands {
		g = gcdInt(g, j.Size)
	}
	if g <= 0 {
		g = 1
	}
	return g
}

// BasicDP is the paper's Basic_DP: choose the subset of waiting jobs that
// maximizes current utilization, i.e. a 0/1 knapsack over the candidate
// window with weight = value = job size and capacity m. Candidates must
// already fit individually (size <= m); WaitingWindow guarantees that.
//
// The traceback prefers including earlier-queued jobs: the head job is
// selected whenever *some* maximum-utilization subset contains it, which is
// the property Delayed-LOS's skip count relies on.
//
// The returned slice is Scratch-owned; see the Scratch aliasing contract.
func BasicDP(cands []*job.Job, m int, s *Scratch) []*job.Job {
	if len(cands) == 0 || m <= 0 {
		return nil
	}
	if s.memoLookup(memoBasic, cands, m, 0, 0) {
		return s.selection(cands)
	}
	total := 0
	for _, j := range cands {
		total += j.Size
	}
	s.selIdx = s.selIdx[:0]
	n := len(cands)
	if total <= m {
		// Fast path: everything fits together.
		s.selectAll(n)
	} else {
		g := quantum(cands, m)
		bufs := s.intsBuf(2*n + 1)
		w := bufs[:n]
		for i, j := range cands {
			w[i] = j.Size / g
		}
		s.selIdx = s.knapsack1D(w, w, bufs[n:2*n+1], m/g, s.selIdx)
	}
	s.memoStore()
	return s.selection(cands)
}

// knapsack1D solves a 0/1 knapsack (weights w, values v, capacity C) over
// the window and appends the selected indices to sel. suf is an n+1
// scratch buffer for the running suffix weights; each DP row is filled
// only up to min(C, suffix weight) — beyond it the row is constant, so
// reads clamp into the filled region. The traceback prefers including
// earlier-queued jobs, matching the reference implementation exactly.
func (s *Scratch) knapsack1D(w, v, suf []int, C int, sel []int32) []int32 {
	n := len(w)
	suf[n] = 0
	for i := n - 1; i >= 0; i-- {
		suf[i] = suf[i+1] + w[i]
	}
	stride := C + 1
	dp := s.growRaw((n + 1) * stride)
	dp[n*stride] = 0 // base row is always read at its clamp, cell 0
	for i := n - 1; i >= 0; i-- {
		row := dp[i*stride:]
		next := dp[(i+1)*stride:]
		cl := min(C, suf[i])
		cln := min(C, suf[i+1]) // <= cl; next row is constant beyond it
		wi, vi := w[i], int32(v[i])
		// Up to the next row's clamp both reads are direct (c-wi <= c).
		for c := 0; c <= cln; c++ {
			best := next[c]
			if wi <= c {
				if x := vi + next[c-wi]; x > best {
					best = x
				}
			}
			row[c] = best
		}
		// Beyond it the skip-read is the next row's constant tail.
		skip := dp[(i+1)*stride+cln]
		for c := cln + 1; c <= cl; c++ {
			best := skip
			if wi <= c {
				if x := vi + next[min(c-wi, cln)]; x > best {
					best = x
				}
			}
			row[c] = best
		}
	}
	c := min(C, suf[0])
	for i := 0; i < n; i++ {
		if w[i] > c {
			continue
		}
		cur := dp[i*stride+min(c, min(C, suf[i]))]
		with := int32(v[i]) + dp[(i+1)*stride+min(c-w[i], min(C, suf[i+1]))]
		if cur == with {
			sel = append(sel, int32(i))
			c -= w[i]
		}
	}
	return sel
}

// ReservationDP is the paper's Reservation_DP: maximize current utilization
// subject to two constraints — the current free capacity m, and the freeze
// end capacity frec available at the freeze end time fret. A candidate that
// finishes strictly before fret (now + dur < fret) has zero freeze demand
// (frenum = 0); one that would still run at fret demands its full size from
// the freeze capacity, exactly the paper's
//
//	frenum <- (t + dur < fret) ? 0 : num.
//
// This is a 0/1 knapsack with two capacity dimensions, solved exactly over
// the candidate window. The fast path collapses a dimension whenever one
// constraint is slack for every subset:
//
//   - total freeze demand <= frec (in particular, every frenum = 0): the
//     freeze axis never binds and the program degenerates to Basic_DP's
//     single knapsack over m;
//   - total size <= m: the current-capacity axis never binds, leaving one
//     knapsack over frec weighted by freeze demand but valued by size;
//   - every frenum equals the size: both axes consume identically and the
//     program collapses to a single knapsack over min(m, frec).
//
// All collapses provably return the reference implementation's selection
// (see dp_reference.go and FuzzDPEquivalence).
//
// The returned slice is Scratch-owned; see the Scratch aliasing contract.
func ReservationDP(cands []*job.Job, m, frec int, fret, now int64, s *Scratch) []*job.Job {
	if len(cands) == 0 || m <= 0 {
		return nil
	}
	if frec < 0 {
		frec = 0
	}
	cut := fret - now // a candidate with Dur >= cut still runs at the freeze end
	if s.memoLookup(memoReservation, cands, m, frec, cut) {
		return s.selection(cands)
	}
	n := len(cands)
	bufs := s.intsBuf(5*n + 2)
	fnum := bufs[:n]
	total1, total2 := 0, 0
	allFull := true
	for i, j := range cands {
		f := 0
		if j.Dur >= cut {
			f = j.Size
		} else {
			allFull = false
		}
		fnum[i] = f
		total1 += j.Size
		total2 += f
	}
	s.selIdx = s.selIdx[:0]
	switch {
	case total1 <= m && total2 <= frec:
		// Fast path: all candidates fit both constraints.
		s.selectAll(n)

	case total2 <= frec:
		// The freeze constraint is slack for every subset (covers the
		// all-frenum-zero cycle): a single knapsack over m, as Basic_DP.
		g := quantum(cands, m)
		w := bufs[n : 2*n]
		for i, j := range cands {
			w[i] = j.Size / g
		}
		s.selIdx = s.knapsack1D(w, w, bufs[2*n:3*n+1], m/g, s.selIdx)

	case total1 <= m:
		// The current-capacity constraint is slack: a single knapsack over
		// the freeze capacity, weighted by freeze demand but still valued
		// by size (zero-demand candidates are free riders).
		g := quantum(cands, frec)
		w2 := bufs[n : 2*n]
		w1 := bufs[2*n : 3*n]
		for i, j := range cands {
			w2[i] = fnum[i] / g
			w1[i] = j.Size / g
		}
		s.selIdx = s.knapsack1D(w2, w1, bufs[3*n:4*n+1], frec/g, s.selIdx)

	case allFull:
		// Every candidate demands its full size at the freeze end: both
		// axes consume identically, collapsing to one knapsack over
		// min(m, frec).
		c := min(m, frec)
		g := quantum(cands, c)
		w := bufs[n : 2*n]
		for i, j := range cands {
			w[i] = j.Size / g
		}
		s.selIdx = s.knapsack1D(w, w, bufs[2*n:3*n+1], c/g, s.selIdx)

	default:
		s.selIdx = s.reservation2D(cands, fnum, bufs, m, frec, s.selIdx)
	}
	s.memoStore()
	return s.selection(cands)
}

// reservation2D solves the full two-constraint knapsack. Each DP row is
// filled only up to its running suffix weights (reads beyond a clamp land
// in the constant region), and a row's inner loop exits early once the
// max-utilization bound — the row's weight-1 capacity — is reached, since
// the row is non-decreasing in the freeze axis and capped by that bound.
func (s *Scratch) reservation2D(cands []*job.Job, fnum, bufs []int, m, frec int, sel []int32) []int32 {
	n := len(cands)
	g := quantum(cands, m, frec)
	w1 := bufs[n : 2*n]
	w2 := bufs[2*n : 3*n]
	suf1 := bufs[3*n : 4*n+1]
	suf2 := bufs[4*n+1 : 5*n+2]
	for i, j := range cands {
		w1[i] = j.Size / g
		w2[i] = fnum[i] / g
	}
	suf1[n], suf2[n] = 0, 0
	for i := n - 1; i >= 0; i-- {
		suf1[i] = suf1[i+1] + w1[i]
		suf2[i] = suf2[i+1] + w2[i]
	}
	C1 := m / g
	C2 := frec / g
	stride := C2 + 1
	plane := (C1 + 1) * stride
	dp := s.growRaw((n + 1) * plane)
	dp[n*plane] = 0 // base row is always read at its clamp, cell 0
	for i := n - 1; i >= 0; i-- {
		cur := dp[i*plane:]
		next := dp[(i+1)*plane:]
		cl1, cl2 := min(C1, suf1[i]), min(C2, suf2[i])
		nl1, nl2 := min(C1, suf1[i+1]), min(C2, suf2[i+1])
		wi1, wi2 := w1[i], w2[i]
		vi := int32(wi1)
		lim := min(cl2, nl2)
		for c1 := 0; c1 <= cl1; c1++ {
			row := cur[c1*stride : c1*stride+cl2+1]
			skip := next[min(c1, nl1)*stride:]
			var take []int32
			if wi1 <= c1 {
				take = next[min(c1-wi1, nl1)*stride:]
			}
			bound := int32(c1) // utilization can never exceed the capacity used
			done := false
			// Up to the next row's clamp both reads are direct (c2-wi2 <= c2).
			for c2 := 0; c2 <= lim; c2++ {
				best := skip[c2]
				if take != nil && wi2 <= c2 {
					if x := vi + take[c2-wi2]; x > best {
						best = x
					}
				}
				row[c2] = best
				if best == bound {
					// Early exit: the row is non-decreasing in c2 and capped
					// by the bound, so the rest of it equals best.
					for k := c2 + 1; k <= cl2; k++ {
						row[k] = best
					}
					done = true
					break
				}
			}
			if done {
				continue
			}
			// Beyond it the skip-read is the next row's constant tail.
			skipTail := skip[nl2]
			for c2 := lim + 1; c2 <= cl2; c2++ {
				best := skipTail
				if take != nil && wi2 <= c2 {
					if x := vi + take[min(c2-wi2, nl2)]; x > best {
						best = x
					}
				}
				row[c2] = best
				if best == bound {
					for k := c2 + 1; k <= cl2; k++ {
						row[k] = best
					}
					break
				}
			}
		}
	}
	c1, c2 := C1, C2
	for i := 0; i < n; i++ {
		if w1[i] > c1 || w2[i] > c2 {
			continue
		}
		cur := dp[i*plane+min(c1, min(C1, suf1[i]))*stride+min(c2, min(C2, suf2[i]))]
		nl1, nl2 := min(C1, suf1[i+1]), min(C2, suf2[i+1])
		with := int32(w1[i]) + dp[(i+1)*plane+min(c1-w1[i], nl1)*stride+min(c2-w2[i], nl2)]
		if cur == with {
			sel = append(sel, int32(i))
			c1 -= w1[i]
			c2 -= w2[i]
		}
	}
	return sel
}

// Contains reports whether set includes j (by identity).
func Contains(set []*job.Job, j *job.Job) bool {
	for _, x := range set {
		if x == j {
			return true
		}
	}
	return false
}
