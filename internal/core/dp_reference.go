package core

import (
	"elastisched/internal/job"
)

// This file retains the original naive Basic_DP / Reservation_DP programs,
// exactly as first written, as the behavioral oracle for the optimized
// fast paths in dp.go: FuzzDPEquivalence and the randomized differential
// tests assert that BasicDP and ReservationDP return identical selections
// on every window. The oracles are deliberately self-contained — no
// Scratch, no memo, fresh allocations — so a bug in the fast-path plumbing
// cannot mask itself in the oracle.

// referenceBasicDP is the naive Basic_DP: a full (n+1) x (C+1) table with
// no memoization, row clamping, or buffer reuse.
func referenceBasicDP(cands []*job.Job, m int) []*job.Job {
	if len(cands) == 0 || m <= 0 {
		return nil
	}
	total := 0
	for _, j := range cands {
		total += j.Size
	}
	if total <= m {
		return append([]*job.Job(nil), cands...)
	}

	g := quantum(cands, m)
	n := len(cands)
	C := m / g
	w := make([]int, n)
	for i, j := range cands {
		w[i] = j.Size / g
	}
	// dp[i*(C+1)+c] = max utilization using jobs i..n-1 with capacity c.
	dp := make([]int32, (n+1)*(C+1))
	for i := n - 1; i >= 0; i-- {
		row := dp[i*(C+1):]
		next := dp[(i+1)*(C+1):]
		wi := int32(w[i])
		for c := 0; c <= C; c++ {
			best := next[c]
			if w[i] <= c {
				if v := wi + next[c-w[i]]; v > best {
					best = v
				}
			}
			row[c] = best
		}
	}
	// Traceback, preferring inclusion (earlier jobs first).
	sel := make([]*job.Job, 0, n)
	c := C
	for i := 0; i < n; i++ {
		if w[i] <= c && dp[i*(C+1)+c] == int32(w[i])+dp[(i+1)*(C+1)+c-w[i]] {
			sel = append(sel, cands[i])
			c -= w[i]
		}
	}
	return sel
}

// referenceReservationDP is the naive Reservation_DP: the full
// (n+1) x (C1+1) x (C2+1) table with no collapses or clamping.
func referenceReservationDP(cands []*job.Job, m, frec int, fret, now int64) []*job.Job {
	if len(cands) == 0 || m <= 0 {
		return nil
	}
	if frec < 0 {
		frec = 0
	}
	// frenum per candidate.
	n := len(cands)
	fnum := make([]int, n)
	total1, total2 := 0, 0
	for i, j := range cands {
		if now+j.Dur < fret {
			fnum[i] = 0
		} else {
			fnum[i] = j.Size
		}
		total1 += j.Size
		total2 += fnum[i]
	}
	// Fast path: all candidates fit both constraints.
	if total1 <= m && total2 <= frec {
		return append([]*job.Job(nil), cands...)
	}

	g := quantum(cands, m, frec)
	C1 := m / g
	C2 := frec / g
	w1 := make([]int, n)
	w2 := make([]int, n)
	for i, j := range cands {
		w1[i] = j.Size / g
		w2[i] = fnum[i] / g
	}
	stride := C2 + 1
	plane := (C1 + 1) * stride
	dp := make([]int32, (n+1)*plane)
	for i := n - 1; i >= 0; i-- {
		cur := dp[i*plane : (i+1)*plane]
		next := dp[(i+1)*plane : (i+2)*plane]
		wi1, wi2 := w1[i], w2[i]
		v := int32(wi1)
		for c1 := 0; c1 <= C1; c1++ {
			rowOff := c1 * stride
			for c2 := 0; c2 <= C2; c2++ {
				best := next[rowOff+c2]
				if wi1 <= c1 && wi2 <= c2 {
					if x := v + next[(c1-wi1)*stride+c2-wi2]; x > best {
						best = x
					}
				}
				cur[rowOff+c2] = best
			}
		}
	}
	sel := make([]*job.Job, 0, n)
	c1, c2 := C1, C2
	for i := 0; i < n; i++ {
		if w1[i] <= c1 && w2[i] <= c2 {
			with := int32(w1[i]) + dp[(i+1)*plane+(c1-w1[i])*stride+c2-w2[i]]
			if dp[i*plane+c1*stride+c2] == with {
				sel = append(sel, cands[i])
				c1 -= w1[i]
				c2 -= w2[i]
			}
		}
	}
	return sel
}
