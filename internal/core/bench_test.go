package core

import (
	"math/rand"
	"testing"

	"elastisched/internal/job"
)

func randJobs(n int, r *rand.Rand) []*job.Job {
	out := make([]*job.Job, n)
	for i := range out {
		out[i] = &job.Job{
			ID:       i + 1,
			Size:     32 * (1 + r.Intn(10)),
			Dur:      int64(1 + r.Intn(10000)),
			ReqStart: -1,
		}
	}
	return out
}

// BenchmarkBasicDP measures one utilization-maximizing knapsack over the
// LOS paper's 50-job lookahead window on the 320-processor machine. The
// window is identical every iteration — the repeated-window (memo-hit)
// case, i.e. consecutive scheduling instants with an unchanged waiting
// queue. The steady state must allocate nothing.
func BenchmarkBasicDP(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cands := randJobs(50, r)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BasicDP(cands, 320, &s)
	}
}

// BenchmarkBasicDPCold measures the DP itself: alternating between two
// windows defeats the cycle memo, so every call re-solves the knapsack.
func BenchmarkBasicDPCold(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	windows := [2][]*job.Job{randJobs(50, r), randJobs(50, r)}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BasicDP(windows[i&1], 320, &s)
	}
}

// BenchmarkReservationDP measures the two-constraint knapsack (quantized
// to 32-processor node groups) on the repeated-window (memo-hit) case.
func BenchmarkReservationDP(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cands := randJobs(50, r)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(cands, 320, 160, 5000, 0, &s)
	}
}

// BenchmarkReservationDPCold measures the general two-dimensional program
// with the memo defeated: both constraints bind (durations straddle the
// freeze end), so no collapse applies.
func BenchmarkReservationDPCold(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	windows := [2][]*job.Job{randJobs(50, r), randJobs(50, r)}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(windows[i&1], 320, 160, 5000, 0, &s)
	}
}

// BenchmarkReservationDPCollapseSlackFreeze measures the dimension
// collapse when every candidate finishes before the freeze end (frenum
// all zero): the program degenerates to a single knapsack over m. The
// memo is defeated to time the collapse itself.
func BenchmarkReservationDPCollapseSlackFreeze(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	windows := [2][]*job.Job{randJobs(50, r), randJobs(50, r)}
	for _, w := range windows {
		for _, j := range w {
			j.Dur = int64(1 + r.Intn(100)) // all finish before fret
		}
	}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(windows[i&1], 320, 160, 5000, 0, &s)
	}
}

// BenchmarkReservationDPCollapseAllFull measures the collapse when every
// candidate still runs at the freeze end (frenum = size): one knapsack
// over min(m, frec). The memo is defeated to time the collapse itself.
func BenchmarkReservationDPCollapseAllFull(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	windows := [2][]*job.Job{randJobs(50, r), randJobs(50, r)}
	for _, w := range windows {
		for _, j := range w {
			j.Dur = int64(5000 + r.Intn(5000)) // all still running at fret
		}
	}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(windows[i&1], 320, 160, 5000, 0, &s)
	}
}

// BenchmarkReservationDPUnquantized measures the SDSC-like worst case:
// unit-1 sizes blow the DP state up to ~50x129x129 (memo-hit case).
func BenchmarkReservationDPUnquantized(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cands := make([]*job.Job, 50)
	for i := range cands {
		size := 1 << r.Intn(7)
		if r.Float64() < 0.3 {
			size = 1 + r.Intn(127)
		}
		cands[i] = &job.Job{ID: i + 1, Size: size, Dur: int64(1 + r.Intn(10000)), ReqStart: -1}
	}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(cands, 127, 100, 5000, 0, &s)
	}
}

// BenchmarkReservationDPUnquantizedCold is the same worst case with the
// memo defeated: the full 2-D program over the irregular state space.
func BenchmarkReservationDPUnquantizedCold(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var windows [2][]*job.Job
	for w := range windows {
		cands := make([]*job.Job, 50)
		for i := range cands {
			size := 1 << r.Intn(7)
			if r.Float64() < 0.3 {
				size = 1 + r.Intn(127)
			}
			cands[i] = &job.Job{ID: i + 1, Size: size, Dur: int64(1 + r.Intn(10000)), ReqStart: -1}
		}
		windows[w] = cands
	}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(windows[i&1], 127, 100, 5000, 0, &s)
	}
}
