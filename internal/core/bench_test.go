package core

import (
	"math/rand"
	"testing"

	"elastisched/internal/job"
)

func randJobs(n int, r *rand.Rand) []*job.Job {
	out := make([]*job.Job, n)
	for i := range out {
		out[i] = &job.Job{
			ID:       i + 1,
			Size:     32 * (1 + r.Intn(10)),
			Dur:      int64(1 + r.Intn(10000)),
			ReqStart: -1,
		}
	}
	return out
}

// BenchmarkBasicDP measures one utilization-maximizing knapsack over the
// LOS paper's 50-job lookahead window on the 320-processor machine.
func BenchmarkBasicDP(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cands := randJobs(50, r)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BasicDP(cands, 320, &s)
	}
}

// BenchmarkReservationDP measures the two-constraint knapsack (quantized
// to 32-processor node groups).
func BenchmarkReservationDP(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cands := randJobs(50, r)
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(cands, 320, 160, 5000, 0, &s)
	}
}

// BenchmarkReservationDPUnquantized measures the SDSC-like worst case:
// unit-1 sizes blow the DP state up to ~50x129x129.
func BenchmarkReservationDPUnquantized(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	cands := make([]*job.Job, 50)
	for i := range cands {
		size := 1 << r.Intn(7)
		if r.Float64() < 0.3 {
			size = 1 + r.Intn(127)
		}
		cands[i] = &job.Job{ID: i + 1, Size: size, Dur: int64(1 + r.Intn(10000)), ReqStart: -1}
	}
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReservationDP(cands, 127, 100, 5000, 0, &s)
	}
}
