package core

import (
	"math/rand"
	"testing"

	"elastisched/internal/job"
)

func mkJobs(sizes ...int) []*job.Job {
	out := make([]*job.Job, len(sizes))
	for i, s := range sizes {
		out[i] = &job.Job{ID: i + 1, Size: s, Dur: 1000, ReqStart: -1}
	}
	return out
}

func ids(jobs []*job.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func sumSize(jobs []*job.Job) int {
	t := 0
	for _, j := range jobs {
		t += j.Size
	}
	return t
}

func wantIDs(t *testing.T, got []*job.Job, want ...int) {
	t.Helper()
	g := ids(got)
	if len(g) != len(want) {
		t.Fatalf("selected %v, want %v", g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("selected %v, want %v", g, want)
		}
	}
}

func TestBasicDPPaperFigure2(t *testing.T) {
	// The paper's motivating example: free capacity 10 (x32), queue
	// [7, 4, 6]: the optimal packing skips the head and uses 4+6=10.
	var s Scratch
	got := BasicDP(mkJobs(7*32, 4*32, 6*32), 320, &s)
	wantIDs(t, got, 2, 3)
	if sumSize(got) != 320 {
		t.Errorf("utilization %d, want 320", sumSize(got))
	}
}

func TestBasicDPFastPathAllFit(t *testing.T) {
	var s Scratch
	got := BasicDP(mkJobs(32, 64, 96), 320, &s)
	wantIDs(t, got, 1, 2, 3)
}

func TestBasicDPEmpty(t *testing.T) {
	var s Scratch
	if got := BasicDP(nil, 320, &s); got != nil {
		t.Errorf("empty candidates gave %v", got)
	}
	if got := BasicDP(mkJobs(32), 0, &s); got != nil {
		t.Errorf("zero capacity gave %v", got)
	}
}

func TestBasicDPPrefersHeadOnTies(t *testing.T) {
	// Capacity 96: {96} and {32,64} are both optimal; the head must win so
	// Delayed-LOS's skip count is only charged when skipping is necessary.
	var s Scratch
	got := BasicDP(mkJobs(96, 32, 64), 96, &s)
	wantIDs(t, got, 1)
}

func TestBasicDPPrefersEarlierJobsOnTies(t *testing.T) {
	// Capacity 64: {32a,32b} vs {32b,32c} — earlier pair wins.
	var s Scratch
	got := BasicDP(mkJobs(32, 32, 32), 64, &s)
	wantIDs(t, got, 1, 2)
}

func TestBasicDPOptimalValue(t *testing.T) {
	// Brute-force comparison on small instances.
	r := rand.New(rand.NewSource(4))
	var s Scratch
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(10)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 32 * (1 + r.Intn(10))
		}
		m := 32 * (1 + r.Intn(10))
		cands := mkJobs(sizes...)
		eligible := cands[:0]
		for _, j := range cands {
			if j.Size <= m {
				eligible = append(eligible, j)
			}
		}
		got := BasicDP(append([]*job.Job(nil), eligible...), m, &s)
		if sumSize(got) > m {
			t.Fatalf("trial %d: selection %v exceeds capacity %d", trial, ids(got), m)
		}
		best := 0
		for mask := 0; mask < 1<<len(eligible); mask++ {
			tot := 0
			for i := range eligible {
				if mask&(1<<i) != 0 {
					tot += eligible[i].Size
				}
			}
			if tot <= m && tot > best {
				best = tot
			}
		}
		if sumSize(got) != best {
			t.Fatalf("trial %d: DP utilization %d, optimum %d (sizes %v, m %d)",
				trial, sumSize(got), best, sizes, m)
		}
	}
}

func TestReservationDPRespectsBothConstraints(t *testing.T) {
	// fret=100. Job 1 (96, short) ends before fret: frenum 0. Job 2 (96,
	// long): frenum 96. Job 3 (96, long): frenum 96. m=288, frec=96: all
	// three fit m, but only one long job fits the freeze.
	jobs := []*job.Job{
		{ID: 1, Size: 96, Dur: 50, ReqStart: -1},
		{ID: 2, Size: 96, Dur: 500, ReqStart: -1},
		{ID: 3, Size: 96, Dur: 500, ReqStart: -1},
	}
	var s Scratch
	got := ReservationDP(jobs, 288, 96, 100, 0, &s)
	wantIDs(t, got, 1, 2)
}

func TestReservationDPStrictBoundary(t *testing.T) {
	// A job ending exactly at fret consumes freeze capacity (the paper's
	// "t + dur < fret ? 0 : num").
	jobs := []*job.Job{{ID: 1, Size: 96, Dur: 100, ReqStart: -1}}
	var s Scratch
	got := ReservationDP(jobs, 320, 0, 100, 0, &s)
	if len(got) != 0 {
		t.Errorf("boundary job selected against zero freeze capacity: %v", ids(got))
	}
	got = ReservationDP(jobs, 320, 96, 100, 0, &s)
	wantIDs(t, got, 1)
}

func TestReservationDPZeroFreezeOnlyShortJobs(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Size: 160, Dur: 50, ReqStart: -1},
		{ID: 2, Size: 160, Dur: 5000, ReqStart: -1},
	}
	var s Scratch
	got := ReservationDP(jobs, 320, 0, 100, 0, &s)
	wantIDs(t, got, 1)
}

func TestReservationDPNegativeFreezeClamped(t *testing.T) {
	jobs := []*job.Job{{ID: 1, Size: 32, Dur: 10, ReqStart: -1}}
	var s Scratch
	got := ReservationDP(jobs, 320, -50, 100, 0, &s)
	wantIDs(t, got, 1) // short job unaffected by freeze
}

func TestReservationDPFastPath(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Size: 32, Dur: 5000, ReqStart: -1},
		{ID: 2, Size: 64, Dur: 5000, ReqStart: -1},
	}
	var s Scratch
	got := ReservationDP(jobs, 320, 96, 100, 0, &s)
	wantIDs(t, got, 1, 2)
}

func TestReservationDPEmpty(t *testing.T) {
	var s Scratch
	if got := ReservationDP(nil, 320, 100, 50, 0, &s); got != nil {
		t.Error("empty candidates selected something")
	}
}

func TestReservationDPOptimalValue(t *testing.T) {
	// Brute-force the two-constraint knapsack on small instances.
	r := rand.New(rand.NewSource(5))
	var s Scratch
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(9)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = &job.Job{
				ID:       i + 1,
				Size:     32 * (1 + r.Intn(6)),
				Dur:      int64(r.Intn(200)),
				ReqStart: -1,
			}
		}
		m := 32 * (1 + r.Intn(10))
		frec := 32 * r.Intn(8)
		fret := int64(100)
		eligible := jobs[:0]
		for _, j := range jobs {
			if j.Size <= m {
				eligible = append(eligible, j)
			}
		}
		got := ReservationDP(append([]*job.Job(nil), eligible...), m, frec, fret, 0, &s)
		// Feasibility.
		tot1, tot2 := 0, 0
		for _, j := range got {
			tot1 += j.Size
			if j.Dur >= fret {
				tot2 += j.Size
			}
		}
		if tot1 > m || tot2 > frec {
			t.Fatalf("trial %d: infeasible selection (%d/%d, %d/%d)", trial, tot1, m, tot2, frec)
		}
		// Optimality.
		best := 0
		for mask := 0; mask < 1<<len(eligible); mask++ {
			s1, s2 := 0, 0
			for i := range eligible {
				if mask&(1<<i) != 0 {
					s1 += eligible[i].Size
					if eligible[i].Dur >= fret {
						s2 += eligible[i].Size
					}
				}
			}
			if s1 <= m && s2 <= frec && s1 > best {
				best = s1
			}
		}
		if tot1 != best {
			t.Fatalf("trial %d: DP %d, optimum %d", trial, tot1, best)
		}
	}
}

func TestScratchReuseIsDeterministic(t *testing.T) {
	var s Scratch
	jobs := mkJobs(7*32, 4*32, 6*32, 3*32, 5*32)
	a := ids(BasicDP(jobs, 320, &s))
	// Pollute the scratch with a different problem.
	ReservationDP(mkJobs(32, 64), 96, 32, 50, 0, &s)
	b := ids(BasicDP(jobs, 320, &s))
	if len(a) != len(b) {
		t.Fatal("scratch reuse changed the result")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("scratch reuse changed the result")
		}
	}
}

func TestQuantumGCD(t *testing.T) {
	if g := quantum(mkJobs(64, 96), 320); g != 32 {
		t.Errorf("quantum = %d, want 32", g)
	}
	if g := quantum(mkJobs(3, 5), 7); g != 1 {
		t.Errorf("quantum = %d, want 1", g)
	}
	if g := quantum(nil); g != 1 {
		t.Errorf("quantum of nothing = %d, want 1", g)
	}
}

func TestContains(t *testing.T) {
	jobs := mkJobs(32, 64)
	if !Contains(jobs, jobs[0]) || Contains(jobs, &job.Job{ID: 1}) {
		t.Error("Contains uses identity, not ID")
	}
}

func TestBasicDPUnquantizedSizes(t *testing.T) {
	// SDSC-like machine: unit 1, arbitrary power-of-two + serial sizes.
	var s Scratch
	got := BasicDP(mkJobs(100, 17, 11, 3), 128, &s)
	if sumSize(got) != 128 {
		t.Errorf("utilization %d, want 128 (100+17+11)", sumSize(got))
	}
}
