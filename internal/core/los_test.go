package core

import (
	"testing"

	"elastisched/internal/testkit"
)

func wantIDsOrder(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("started %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("started %v, want %v", got, want)
		}
	}
}

func wantIDSet(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("started %v, want set %v", got, want)
	}
	set := map[int]bool{}
	for _, id := range got {
		set[id] = true
	}
	for _, id := range want {
		if !set[id] {
			t.Fatalf("started %v, want set %v", got, want)
		}
	}
}

func TestLOSStartsHeadAggressively(t *testing.T) {
	// The paper's Figure 2 critique: LOS starts the 7-group head right
	// away and reaches utilization 7, not 10.
	h := testkit.New(320, 32)
	h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(NewLOS(false))
	wantIDsOrder(t, h.StartedIDs(), []int{1})
	if h.Mach.Used() != 7*32 {
		t.Errorf("LOS utilization %d, want %d (the paper's Alternative-(a))", h.Mach.Used(), 7*32)
	}
}

func TestLOSDrainsFittingHeads(t *testing.T) {
	h := testkit.New(320, 32)
	h.AddBatch(1, 128, 100)
	h.AddBatch(2, 128, 100)
	h.AddBatch(3, 64, 100)
	h.Cycle(NewLOS(false))
	wantIDsOrder(t, h.StartedIDs(), []int{1, 2, 3})
}

func TestLOSReservationBackfill(t *testing.T) {
	// Head 320 blocked behind a 160-job ending at t=100: shadow (100, 160
	// extra? cum = 160 free + 160 = 320, frec = 0). Backfill picks the
	// max-utilization set among jobs ending before t=100.
	h := testkit.New(320, 32)
	h.AddRunning(9, 160, 100)
	h.AddBatch(1, 320, 1000)
	h.AddBatch(2, 96, 50) // short: eligible
	h.AddBatch(3, 96, 500)
	h.AddBatch(4, 64, 99) // short: eligible
	h.Cycle(NewLOS(false))
	wantIDSet(t, h.StartedIDs(), []int{2, 4})
}

func TestLOSHeadNeverDelayedByBackfill(t *testing.T) {
	// After the backfill above, when the 160-job completes at t=100 the
	// head must start immediately.
	h := testkit.New(320, 32)
	r := h.AddRunning(9, 160, 100)
	h.AddBatch(1, 320, 1000)
	h.AddBatch(2, 96, 50)
	h.Cycle(NewLOS(false))
	h.Complete(h.Started[0], 50) // job 2 done at t=50
	h.Complete(r, 100)
	h.Now = 100
	h.Cycle(NewLOS(false))
	wantIDsOrder(t, h.StartedIDs(), []int{1})
}

func TestLOSDedicatedVariantMovesDue(t *testing.T) {
	h := testkit.New(320, 32)
	h.AddDed(1, 96, 100, 40)
	h.Now = 40
	h.Cycle(NewLOS(true))
	wantIDsOrder(t, h.StartedIDs(), []int{1})
}

func TestLOSDRespectsDedicatedFreeze(t *testing.T) {
	// Dedicated 320 at t=100. Long batch head must not start; short may.
	h := testkit.New(320, 32)
	h.AddDed(1, 320, 100, 100)
	h.AddBatch(2, 64, 5000) // long: blocked by freeze
	h.AddBatch(3, 64, 50)   // short: fine
	h.Cycle(NewLOS(true))
	wantIDSet(t, h.StartedIDs(), []int{3})
}

func TestLOSDHeadWithinFreezeStartsAndPacks(t *testing.T) {
	// Dedicated 96 at t=100 leaves 224 spare: a long head of 128 may
	// start; the DP then fills around the remaining freeze capacity.
	h := testkit.New(320, 32)
	h.AddDed(1, 96, 100, 100)
	h.AddBatch(2, 128, 5000)
	h.AddBatch(3, 96, 5000) // fits remaining freeze 96
	h.AddBatch(4, 64, 5000) // would exceed freeze after 2,3
	h.AddBatch(5, 32, 50)   // short: always fine
	h.Cycle(NewLOS(true))
	wantIDSet(t, h.StartedIDs(), []int{2, 3, 5})
}

func TestLOSNames(t *testing.T) {
	if NewLOS(false).Name() != "LOS" || NewLOS(true).Name() != "LOS-D" {
		t.Error("names wrong")
	}
	if NewLOS(false).Heterogeneous() || !NewLOS(true).Heterogeneous() {
		t.Error("heterogeneous flags wrong")
	}
}

func TestLOSEmptyQueue(t *testing.T) {
	h := testkit.New(320, 32)
	h.Cycle(NewLOS(false))
	if len(h.Started) != 0 {
		t.Error("started jobs from empty queue")
	}
}

func TestHeadShadowComputation(t *testing.T) {
	// free 64; running: 96 ends 100, 128 ends 200, 32 ends 300.
	// head 256: cum 64+96=160 <256; +128=288 >=256 at t=200:
	// fret 200, frec 288-256=32.
	h := testkit.New(320, 32)
	h.AddRunning(1, 96, 100)
	h.AddRunning(2, 128, 200)
	h.AddRunning(3, 32, 300)
	head := h.AddBatch(4, 256, 1000)
	fret, frec, ok := headShadow(h.Ctx(), head)
	if !ok || fret != 200 || frec != 32 {
		t.Errorf("headShadow = (%d, %d, %v), want (200, 32, true)", fret, frec, ok)
	}
}

func TestHeadShadowImpossible(t *testing.T) {
	h := testkit.New(320, 32)
	head := h.AddBatch(1, 352, 1000) // larger than machine
	if _, _, ok := headShadow(h.Ctx(), head); ok {
		t.Error("impossible head got a shadow")
	}
}

func TestLOSPlusFillsAfterHead(t *testing.T) {
	// Unlike LOS (head only), LOS+ packs the remaining capacity in the
	// same cycle: head 7x32 starts AND the 3x32 fits in the 96 left.
	h := testkit.New(320, 32)
	h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000) // 128 > 96 free after head: waits
	h.AddBatch(3, 3*32, 1000) // 96 fits
	h.Cycle(NewLOSPlus())
	wantIDSet(t, h.StartedIDs(), []int{1, 3})
}

func TestLOSPlusStillMissesFigure2Packing(t *testing.T) {
	// LOS+ shares LOS's aggressive head rule, so the Figure 2 example
	// still yields utilization 7, not 10 — only Delayed-LOS fixes that.
	h := testkit.New(320, 32)
	h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(NewLOSPlus())
	if h.Mach.Used() != 7*32 {
		t.Errorf("LOS+ used %d, want %d", h.Mach.Used(), 7*32)
	}
}

func TestLOSPlusReservationWhenHeadBlocked(t *testing.T) {
	h := testkit.New(320, 32)
	h.AddRunning(9, 160, 100)
	h.AddBatch(1, 320, 1000)
	h.AddBatch(2, 96, 50)
	h.Cycle(NewLOSPlus())
	wantIDSet(t, h.StartedIDs(), []int{2})
}

func TestLOSPlusFlags(t *testing.T) {
	l := NewLOSPlus()
	if l.Name() != "LOS+" || l.Heterogeneous() {
		t.Error("flags wrong")
	}
	h := testkit.New(320, 32)
	h.Cycle(l) // empty queue: no-op
	if len(h.Started) != 0 {
		t.Error("idle LOS+ started jobs")
	}
}
