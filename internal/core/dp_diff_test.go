package core

import (
	"math/rand"
	"testing"

	"elastisched/internal/job"
)

// sameSelection fails the test unless the optimized and reference
// selections are identical by pointer sequence.
func sameSelection(t *testing.T, label string, got, want []*job.Job) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: selection length %d, reference %d (got %v, want %v)",
			label, len(got), len(want), ids(got), ids(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: selection[%d] = job %d, reference job %d (got %v, want %v)",
				label, i, got[i].ID, want[i].ID, ids(got), ids(want))
		}
	}
}

// randWindow draws a DP candidate window: a mix of BlueGene-like
// 32-quantized and SDSC-like irregular sizes, short and long durations.
// Windows are kept small enough that the naive reference oracle stays
// cheap — the equivalence argument does not depend on scale, only on
// which fast-path branches are exercised, and all are at these sizes.
func randWindow(r *rand.Rand) []*job.Job {
	n := 1 + r.Intn(8)
	quantized := r.Intn(2) == 0
	cands := make([]*job.Job, n)
	for i := range cands {
		size := 1 + r.Intn(8)
		if quantized {
			size *= 32
		}
		cands[i] = &job.Job{
			ID:       i + 1,
			Size:     size,
			Dur:      int64(1 + r.Intn(200)),
			ReqStart: -1,
		}
	}
	return cands
}

// TestDPEquivalenceRandomized is the differential property test for the
// fast-path packing engine: on >10k randomized windows the optimized
// BasicDP/ReservationDP (memo, dimension collapse, row clamping, early
// exit) must return exactly the reference implementation's selection. A
// quarter of the trials immediately re-solve the same window, driving the
// memo-hit path through the same oracle.
func TestDPEquivalenceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var s Scratch
	const trials = 12000
	for trial := 0; trial < trials; trial++ {
		cands := randWindow(r)
		maxSize, total := 0, 0
		for _, j := range cands {
			if j.Size > maxSize {
				maxSize = j.Size
			}
			total += j.Size
		}
		// m always admits each candidate individually (the WaitingWindow
		// invariant) but usually not the whole window.
		m := maxSize + r.Intn(total+1)

		if trial%2 == 0 {
			got := BasicDP(cands, m, &s)
			want := referenceBasicDP(cands, m)
			sameSelection(t, "BasicDP", got, want)
			if r.Intn(4) == 0 {
				sameSelection(t, "BasicDP memo", BasicDP(cands, m, &s), want)
			}
			continue
		}

		frec := r.Intn(m+1) - 1 // occasionally negative, testing the clamp
		now := int64(r.Intn(100))
		fret := now + int64(r.Intn(250)) // straddles the duration range
		got := ReservationDP(cands, m, frec, fret, now, &s)
		want := referenceReservationDP(cands, m, frec, fret, now)
		sameSelection(t, "ReservationDP", got, want)
		if r.Intn(4) == 0 {
			sameSelection(t, "ReservationDP memo",
				ReservationDP(cands, m, frec, fret, now, &s), want)
		}
	}
}

// TestDPEquivalenceCollapseBranches pins each ReservationDP collapse
// branch against the reference on targeted windows rather than relying on
// random draws to hit them.
func TestDPEquivalenceCollapseBranches(t *testing.T) {
	mk := func(specs ...[2]int64) []*job.Job {
		out := make([]*job.Job, len(specs))
		for i, sp := range specs {
			out[i] = &job.Job{ID: i + 1, Size: int(sp[0]), Dur: sp[1], ReqStart: -1}
		}
		return out
	}
	cases := []struct {
		name    string
		cands   []*job.Job
		m, frec int
		fret    int64
	}{
		// Every candidate finishes before the freeze: frenum all zero.
		{"all-zero-frenum", mk([2]int64{96, 10}, [2]int64{128, 20}, [2]int64{160, 30}, [2]int64{64, 5}), 256, 32, 100},
		// Slack freeze: some frenum nonzero but total demand fits frec.
		{"slack-freeze", mk([2]int64{96, 10}, [2]int64{64, 500}, [2]int64{160, 30}, [2]int64{128, 20}), 256, 64, 100},
		// Slack current capacity: everything fits m, freeze binds.
		{"slack-m", mk([2]int64{96, 500}, [2]int64{64, 500}, [2]int64{32, 10}, [2]int64{64, 600}), 512, 96, 100},
		// Every candidate still runs at the freeze end: frenum = size.
		{"all-full-frenum", mk([2]int64{96, 500}, [2]int64{128, 600}, [2]int64{160, 700}, [2]int64{64, 800}), 256, 160, 100},
		// Mixed: both constraints bind, the genuine 2-D program.
		{"general-2d", mk([2]int64{96, 500}, [2]int64{128, 10}, [2]int64{160, 700}, [2]int64{64, 20}, [2]int64{32, 900}), 288, 96, 100},
		// Zero freeze capacity with long jobs in the window.
		{"frec-zero", mk([2]int64{96, 500}, [2]int64{128, 10}, [2]int64{64, 20}), 224, 0, 100},
	}
	for _, tc := range cases {
		var s Scratch
		got := ReservationDP(tc.cands, tc.m, tc.frec, tc.fret, 0, &s)
		want := referenceReservationDP(tc.cands, tc.m, tc.frec, tc.fret, 0)
		sameSelection(t, tc.name, got, want)
	}
}

// FuzzDPEquivalence fuzzes the optimized packing engine against the
// reference implementations, including an immediate re-solve that drives
// the memo-hit path.
func FuzzDPEquivalence(f *testing.F) {
	f.Add([]byte{3, 32, 5, 64, 200, 96, 50}, uint16(128), int16(64), uint16(100), uint8(10))
	f.Add([]byte{2, 7, 1, 13, 255}, uint16(20), int16(0), uint16(3), uint8(0))
	f.Add([]byte{5, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5}, uint16(7), int16(-3), uint16(0), uint8(50))
	f.Fuzz(func(t *testing.T, data []byte, mRaw uint16, frecRaw int16, fretRaw uint16, nowRaw uint8) {
		if len(data) < 1 {
			return
		}
		n := int(data[0]) % 10
		if len(data) < 1+2*n {
			return
		}
		maxSize := 0
		cands := make([]*job.Job, 0, n)
		for i := 0; i < n; i++ {
			size := int(data[1+2*i])%64 + 1
			dur := int64(data[2+2*i]) + 1
			if size > maxSize {
				maxSize = size
			}
			cands = append(cands, &job.Job{ID: i + 1, Size: size, Dur: dur, ReqStart: -1})
		}
		// Candidates must fit individually, per the WaitingWindow invariant.
		m := maxSize + int(mRaw)%512
		frec := int(frecRaw)
		now := int64(nowRaw)
		fret := now + int64(fretRaw)%300

		var s Scratch
		gotB := BasicDP(cands, m, &s)
		wantB := referenceBasicDP(cands, m)
		sameSelection(t, "BasicDP", gotB, wantB)
		sameSelection(t, "BasicDP memo", BasicDP(cands, m, &s), wantB)

		gotR := ReservationDP(cands, m, frec, fret, now, &s)
		wantR := referenceReservationDP(cands, m, frec, fret, now)
		sameSelection(t, "ReservationDP", gotR, wantR)
		sameSelection(t, "ReservationDP memo", ReservationDP(cands, m, frec, fret, now, &s), wantR)
	})
}

// --- cycle memo behaviour ---

func TestMemoHitOnRepeatedWindow(t *testing.T) {
	var s Scratch
	jobs := mkJobs(7*32, 4*32, 6*32)
	a := ids(BasicDP(jobs, 320, &s))
	b := ids(BasicDP(jobs, 320, &s))
	if len(a) != len(b) {
		t.Fatalf("memo changed the selection: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("memo changed the selection: %v vs %v", a, b)
		}
	}
	hits, misses := s.MemoStats()
	if hits != 1 || misses != 1 {
		t.Errorf("MemoStats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestMemoMissOnChangedInputs(t *testing.T) {
	var s Scratch
	jobs := mkJobs(7*32, 4*32, 6*32)
	BasicDP(jobs, 320, &s)
	BasicDP(jobs, 288, &s) // capacity changed
	jobs[1].Size = 5 * 32
	BasicDP(jobs, 288, &s) // a size changed
	if hits, misses := s.MemoStats(); hits != 0 || misses != 3 {
		t.Errorf("MemoStats = (%d hits, %d misses), want (0, 3)", hits, misses)
	}
}

func TestMemoMissWhenDurationCrossesFreeze(t *testing.T) {
	var s Scratch
	jobs := mkJobs(7*32, 4*32, 6*32)
	for _, j := range jobs {
		j.Dur = 50 // finishes before the freeze end
	}
	a := ids(ReservationDP(jobs, 288, 96, 100, 0, &s))
	jobs[0].Dur = 200 // now demands freeze capacity
	b := ids(ReservationDP(jobs, 288, 96, 100, 0, &s))
	if _, misses := s.MemoStats(); misses != 2 {
		t.Fatalf("duration crossing the freeze must miss the memo (selections %v, %v)", a, b)
	}
	want := referenceReservationDP(jobs, 288, 96, 100, 0)
	got := ReservationDP(jobs, 288, 96, 100, 0, &s)
	sameSelection(t, "after crossing", got, want)
}

// TestMemoSelectionTracksCurrentPointers: the memo keys on sizes and
// freeze demands, not identity, so a hit against a *different* window of
// equal shape must return the current window's jobs.
func TestMemoSelectionTracksCurrentPointers(t *testing.T) {
	var s Scratch
	a := mkJobs(7*32, 4*32, 6*32)
	b := mkJobs(7*32, 4*32, 6*32) // distinct pointers, equal shape
	selA := BasicDP(a, 320, &s)
	_ = selA
	selB := BasicDP(b, 320, &s)
	if hits, _ := s.MemoStats(); hits != 1 {
		t.Fatal("equal-shape window should hit the memo")
	}
	for _, j := range selB {
		if !Contains(b, j) {
			t.Fatalf("memo-hit selection returned a job from the previous window: %v", j)
		}
	}
}

// TestScratchSelectionAliasing pins the documented aliasing contract: the
// returned slice is Scratch-owned and is overwritten by the next call.
func TestScratchSelectionAliasing(t *testing.T) {
	var s Scratch
	first := BasicDP(mkJobs(7*32, 4*32, 6*32), 320, &s)
	if len(first) == 0 {
		t.Fatal("expected a non-empty selection")
	}
	second := BasicDP(mkJobs(3*32, 2*32), 320, &s)
	if len(second) == 0 {
		t.Fatal("expected a non-empty selection")
	}
	if &first[0] != &second[0] {
		t.Error("selections should share the Scratch-owned backing array")
	}
}

// --- quantum edge cases ---

func TestQuantumZeroSizeCandidate(t *testing.T) {
	// gcd(g, 0) = g: a zero-size candidate must not collapse the quantum
	// to 1 (workload validation rejects such jobs, but quantum is total).
	if g := quantum(mkJobs(0, 64), 320); g != 64 {
		t.Errorf("quantum with zero-size candidate = %d, want 64", g)
	}
}

func TestQuantumZeroFrecExcluded(t *testing.T) {
	// Non-positive capacity bounds are ignored, so frec = 0 keeps the
	// 32-processor quantum instead of degenerating.
	if g := quantum(mkJobs(64, 96), 320, 0); g != 32 {
		t.Errorf("quantum with frec=0 = %d, want 32", g)
	}
	if g := quantum(mkJobs(64, 96), 320, -5); g != 32 {
		t.Errorf("quantum with negative cap = %d, want 32", g)
	}
}

func TestQuantumMixedNonMultipleSizes(t *testing.T) {
	// One irregular size drops the quantum to the residual gcd.
	if g := quantum(mkJobs(64, 96, 33), 320); g != 1 {
		t.Errorf("quantum with size 33 = %d, want 1", g)
	}
	if g := quantum(mkJobs(48, 96), 320); g != 16 {
		t.Errorf("quantum with 48/96/320 = %d, want 16", g)
	}
}
